package ofmf_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the ablation benches DESIGN.md §4 calls out. Each
// bench regenerates the corresponding result; run
//
//	go test -bench=. -benchmem
//
// or use cmd/expbench for formatted tables.

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"ofmf/internal/composer"
	"ofmf/internal/core"
	"ofmf/internal/events"
	"ofmf/internal/exp"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/service"
	"ofmf/internal/sim/des"
	"ofmf/internal/sim/workload"
)

// BenchmarkTable1Profiles regenerates Table I's measured isolation column.
func BenchmarkTable1Profiles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range workload.Profiles() {
			_ = p.CoScheduledSlowdown()
			_ = p.Isolation()
		}
	}
	b.ReportMetric(float64(len(workload.Profiles())), "profiles")
}

// BenchmarkTable2HPLParams regenerates Table II from the extrapolation
// rule.
func BenchmarkTable2HPLParams(b *testing.B) {
	rows := workload.HPLTable()
	for i := 0; i < b.N; i++ {
		for _, row := range rows {
			gen := workload.HPLParams(row.Nodes)
			if gen.P != row.P || gen.Q != row.Q {
				b.Fatalf("grid mismatch at n=%d", row.Nodes)
			}
		}
	}
	b.ReportMetric(float64(len(rows)), "rows")
}

// BenchmarkTable3IORParams regenerates Table III.
func BenchmarkTable3IORParams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := workload.DefaultIOR().Rows(); len(rows) != 12 {
			b.Fatal("row count")
		}
	}
}

// BenchmarkFig1Stranding regenerates Figure 1's static-vs-composable
// comparison (uses the real Composability Manager).
func BenchmarkFig1Stranding(b *testing.B) {
	cfg := exp.DefaultFig1()
	cfg.Nodes = 8
	cfg.Jobs = 32
	var last exp.Fig1Result
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.Composable.JobsPlaced), "composable-jobs")
	b.ReportMetric(float64(last.Static.JobsPlaced), "static-jobs")
	b.ReportMetric(last.Static.StrandedFrac*100, "static-stranded-%")
	b.ReportMetric(last.Composable.StrandedFrac*100, "composable-stranded-%")
}

// BenchmarkFig3Multinode regenerates Figure 3's five experiment classes
// at a reduced sweep; the full sweep is cmd/expbench -exp fig3.
func BenchmarkFig3Multinode(b *testing.B) {
	cfg := exp.DefaultFig3()
	cfg.NodeCounts = []int{2, 128}
	cfg.Reps = 7
	var points []exp.Fig3Point
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(20230515 + i)
		points = exp.RunFig3(cfg)
	}
	for _, p := range points {
		if p.Nodes == 128 && p.Class != exp.HPLOnly {
			name := strings.ReplaceAll(p.Class.String(), " ", "_")
			b.ReportMetric(p.Slowdown()*100, fmt.Sprintf("slowdown-%%@128:%s", name))
		}
	}
}

// BenchmarkFig4IdleDaemons regenerates Figure 4's idle-daemon overhead.
func BenchmarkFig4IdleDaemons(b *testing.B) {
	cfg := exp.DefaultFig3()
	cfg.NodeCounts = []int{64}
	cfg.Reps = 8
	var points []exp.Fig4Point
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(99 + i)
		points = exp.RunFig4(cfg)
	}
	if len(points) > 0 {
		b.ReportMetric(points[0].OverheadFrac*100, "idle-daemon-overhead-%@64")
	}
}

// BenchmarkBeeONDLifecycle regenerates the <3 s assembly / <6 s teardown
// sweep.
func BenchmarkBeeONDLifecycle(b *testing.B) {
	cfg := exp.DefaultLifecycle()
	cfg.NodeCounts = []int{128}
	cfg.Reps = 10
	var points []exp.LifecyclePoint
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(42 + i)
		var err error
		points, err = exp.RunLifecycle(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(points) > 0 {
		b.ReportMetric(points[0].Assemble.Mean, "assemble-s@128")
		b.ReportMetric(points[0].Teardown.Mean, "teardown-s@128")
	}
}

// BenchmarkOFMFScaleGet measures tree read latency at 10k resources on
// the path HTTP GET actually serves from: the zero-copy View (the copy
// contract's cost is tracked separately by BenchmarkAblationStoreRead).
func BenchmarkOFMFScaleGet(b *testing.B) {
	svc := service.New(service.Config{DirectWrites: true})
	defer svc.Close()
	st := svc.Store()
	const size = 10000
	ids := make([]odata.ID, size)
	for i := 0; i < size; i++ {
		id := service.ChassisURI.Append(fmt.Sprintf("c%06d", i))
		ids[i] = id
		if err := st.Put(id, redfish.Chassis{
			Resource:    odata.NewResource(id, redfish.TypeChassis, id.Leaf()),
			ChassisType: "Sled",
			Status:      odata.StatusOK(),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		if err := st.View(ids[i%size], func(raw json.RawMessage, _ string) { n += len(raw) }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOFMFScaleCollectionGet measures serving the 10k-member Chassis
// collection through the memoized CollectionView path (steady state: the
// cache is warm, which is the common case between hardware changes).
func BenchmarkOFMFScaleCollectionGet(b *testing.B) {
	svc := service.New(service.Config{DirectWrites: true})
	defer svc.Close()
	st := svc.Store()
	const size = 10000
	for i := 0; i < size; i++ {
		id := service.ChassisURI.Append(fmt.Sprintf("c%06d", i))
		if err := st.Put(id, redfish.Chassis{
			Resource:    odata.NewResource(id, redfish.TypeChassis, id.Leaf()),
			ChassisType: "Sled",
			Status:      odata.StatusOK(),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		if err := st.CollectionView(service.ChassisURI, func(payload []byte, _ string) { n += len(payload) }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOFMFScalePatch measures tree write latency at 10k resources.
func BenchmarkOFMFScalePatch(b *testing.B) {
	svc := service.New(service.Config{DirectWrites: true})
	defer svc.Close()
	st := svc.Store()
	const size = 10000
	ids := make([]odata.ID, size)
	for i := 0; i < size; i++ {
		id := service.ChassisURI.Append(fmt.Sprintf("c%06d", i))
		ids[i] = id
		if err := st.Put(id, redfish.Chassis{
			Resource:    odata.NewResource(id, redfish.TypeChassis, id.Leaf()),
			ChassisType: "Sled",
			Status:      odata.StatusOK(),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Patch(ids[i%size], map[string]any{"Description": "gen"}, ""); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOFMFScaleCompose measures full composition round-trips
// (provision + connect + publish + teardown) through the live stack.
func BenchmarkOFMFScaleCompose(b *testing.B) {
	f, err := core.New(core.Config{Nodes: 8, CXLDeviceMiB: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comp, err := f.Composer.Compose(composer.Request{Cores: 1, FabricMemoryMiB: 64})
		if err != nil {
			b.Fatal(err)
		}
		if err := f.Composer.Decompose(comp.ID); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStorePutSubtree measures the agent-publish primitive: an
// atomic subtree refresh of the given size, the operation every hardware
// state change triggers.
func BenchmarkStorePutSubtree(b *testing.B) {
	for _, size := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("resources-%d", size), func(b *testing.B) {
			svc := service.New(service.Config{})
			defer svc.Close()
			prefix := service.FabricsURI.Append("Bench")
			subtree := make(map[odata.ID]any, size)
			for i := 0; i < size; i++ {
				id := prefix.Append(fmt.Sprintf("Endpoints/e%04d", i))
				subtree[id] = redfish.Endpoint{
					Resource:         odata.NewResource(id, redfish.TypeEndpoint, id.Leaf()),
					EndpointProtocol: redfish.ProtocolCXL,
					Status:           odata.StatusOK(),
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := svc.Store().PutSubtree(prefix, subtree); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// A refresh amid a large unrelated population: the subtree index must
	// keep the cost a function of the subtree, not of the total store, so
	// this should track resources-100, not the 10k crowd.
	b.Run("resources-100-crowded-10k", func(b *testing.B) {
		svc := service.New(service.Config{DirectWrites: true})
		defer svc.Close()
		st := svc.Store()
		for i := 0; i < 10000; i++ {
			id := service.ChassisURI.Append(fmt.Sprintf("c%06d", i))
			if err := st.Put(id, redfish.Chassis{
				Resource:    odata.NewResource(id, redfish.TypeChassis, id.Leaf()),
				ChassisType: "Sled",
				Status:      odata.StatusOK(),
			}); err != nil {
				b.Fatal(err)
			}
		}
		prefix := service.FabricsURI.Append("Bench")
		subtree := make(map[odata.ID]any, 100)
		for i := 0; i < 100; i++ {
			id := prefix.Append(fmt.Sprintf("Endpoints/e%04d", i))
			subtree[id] = redfish.Endpoint{
				Resource:         odata.NewResource(id, redfish.TypeEndpoint, id.Leaf()),
				EndpointProtocol: redfish.ProtocolCXL,
				Status:           odata.StatusOK(),
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := st.PutSubtree(prefix, subtree); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPlacement compares the composer's placement policies
// under a mixed load (DESIGN.md §4).
func BenchmarkAblationPlacement(b *testing.B) {
	policies := map[string]composer.Policy{
		"FirstFit": composer.FirstFit{},
		"BestFit":  composer.BestFit{},
		"WorstFit": composer.WorstFit{},
	}
	for name, policy := range policies {
		b.Run(name, func(b *testing.B) {
			f, err := core.New(core.Config{Nodes: 16, Policy: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			b.ResetTimer()
			placed := 0
			for i := 0; i < b.N; i++ {
				comp, err := f.Composer.Compose(composer.Request{Cores: 1 + i%8})
				if err != nil {
					continue
				}
				placed++
				if err := f.Composer.Decompose(comp.ID); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(placed), "placed")
		})
	}
}

// BenchmarkAblationEventDelivery compares queued per-subscriber delivery
// against synchronous fan-out (DESIGN.md §4).
func BenchmarkAblationEventDelivery(b *testing.B) {
	for _, mode := range []struct {
		name string
		sync bool
	}{{"Queued", false}, {"Synchronous", true}} {
		b.Run(mode.name, func(b *testing.B) {
			bus := events.NewBus(events.Config{Synchronous: mode.sync, QueueDepth: 1 << 16, RetryAttempts: 1})
			defer bus.Close()
			for s := 0; s < 8; s++ {
				if _, err := bus.Subscribe(nopSink{}, events.Filter{}, ""); err != nil {
					b.Fatal(err)
				}
			}
			rec := events.Record(redfish.EventAlert, "bench", "m", "")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bus.Publish(rec)
			}
		})
	}
}

type nopSink struct{}

func (nopSink) Deliver(context.Context, redfish.Event) error { return nil }

// BenchmarkAblationStoreRead compares the copy-on-read path (Get) with
// the zero-copy locked view (View) on the tree read hot path
// (DESIGN.md §4).
func BenchmarkAblationStoreRead(b *testing.B) {
	svc := service.New(service.Config{})
	defer svc.Close()
	st := svc.Store()
	id := service.ChassisURI.Append("c1")
	if err := st.Put(id, redfish.Chassis{
		Resource:    odata.NewResource(id, redfish.TypeChassis, "c1"),
		ChassisType: "Sled",
		Status:      odata.StatusOK(),
	}); err != nil {
		b.Fatal(err)
	}
	b.Run("CopyOnRead", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := st.Get(id); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ZeroCopyView", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			if err := st.View(id, func(raw json.RawMessage, _ string) { n += len(raw) }); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPhases varies the collective-phase granularity of the
// HPL model. The mean slowdown is set by the node count (the expected
// per-phase maximum of the noise), not by how many sync points divide the
// run — phase count only shrinks run-to-run variance. This justifies the
// model's fixed default of 60 phases.
func BenchmarkAblationPhases(b *testing.B) {
	for _, phases := range []int{15, 60, 240} {
		b.Run(fmt.Sprintf("phases-%d", phases), func(b *testing.B) {
			rng := des.NewRNG(77)
			var sum float64
			for i := 0; i < b.N; i++ {
				m := workload.HPLModel{Nodes: 64, BaseSeconds: 100, BaseJitterFrac: 1e-9, Phases: phases}
				sum += m.Run(rng.Split(uint64(i)), func(_, _ int, r *des.RNG) float64 {
					return r.PosNorm(0.004, 0.004)
				})
			}
			b.ReportMetric(sum/float64(b.N)-100, "slowdown-s")
		})
	}
}

// BenchmarkAblationMetaPlacement compares HPL impact with the metadata
// server co-located versus dedicated (DESIGN.md §4).
func BenchmarkAblationMetaPlacement(b *testing.B) {
	cfg := exp.DefaultFig3()
	cfg.NodeCounts = []int{64}
	cfg.Reps = 7
	var points []exp.Fig3Point
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(5 + i)
		points = exp.RunFig3(cfg)
	}
	for _, p := range points {
		switch p.Class {
		case exp.MatchingBeeOND:
			b.ReportMetric(p.Slowdown()*100, "with-meta-%")
		case exp.MatchingBeeONDNoMeta:
			b.ReportMetric(p.Slowdown()*100, "no-meta-%")
		}
	}
}

module ofmf

go 1.22

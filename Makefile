# OFMF build and reproduction targets.

GO ?= go

.PHONY: all build vet test race bench bench-full loadsmoke chaossmoke replsmoke cover reproduce examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Smoke-run the store/serving hot-path benches (one iteration each): a
# fast CI gate that the benchmarked paths still build and execute.
# Compare numbers against BENCH_store.json with a real -benchtime.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkOFMFScale|BenchmarkStorePutSubtree|BenchmarkAblationStoreRead' -benchtime=1x -benchmem .
	$(GO) test -run '^$$' -bench 'BenchmarkStorePutParallel|BenchmarkStoreMixedParallel' -benchtime=1x -benchmem ./internal/store
	$(GO) test -run '^$$' -bench 'BenchmarkWAL' -benchtime=1x -benchmem ./internal/store/persist
	$(GO) test -run '^$$' -bench 'BenchmarkEventFanout' -benchtime=1x -benchmem ./internal/events
	$(GO) test -run '^$$' -bench 'BenchmarkLivenessSweep' -benchtime=1x -benchmem ./internal/service

bench-full:
	$(GO) test -bench=. -benchmem ./...

# Smoke-run the serving-path load harness against the in-process
# testbed: a 2s window whose output is validated (every class saw
# traffic, percentiles are sane, the results file round-trips). The
# write-heavy mix on a sharded store stresses the write path the
# sharding work targets; the events mix adds webhook subscriptions and
# SSE streams over the same churn so event-plane regressions (fan-out,
# marshal-once delivery) fail the gate too. Real baselines go to
# BENCH_serving.json via a plain `go run ./cmd/ofmfload`.
loadsmoke:
	$(GO) run ./cmd/ofmfload -smoke -mix write-heavy -shards 8 -out /tmp/ofmfload-smoke.json
	$(GO) run ./cmd/ofmfload -smoke -mix events -shards 8 -subs 32 -sse 2 -out /tmp/ofmfload-events.json

# Smoke-run the fleet chaos harness under the race detector: 100
# emulated agents through every scripted scenario (crash/restart,
# partition + link flap, heartbeat/registration storm, OFMF
# kill/recover with WAL replay), with end-state invariant checks —
# ghost/duplicate sources, event-count conservation, liveness vs
# ground truth, WAL sequence integrity. Deterministic (-seed 42); a
# violation exits non-zero. Full-scale baselines go to
# BENCH_serving.json via `go run ./cmd/ofmfchaos -agents 10000 -seed 42
# -scenario all -out BENCH_serving.json`.
chaossmoke:
	$(GO) run -race ./cmd/ofmfchaos -agents 100 -seed 42 -scenario all -smoke -out /tmp/ofmfchaos-smoke.json

# Replication failover gate under the race detector: a 1-leader /
# 2-replica in-process cluster loses its leader while four writers
# POST through whichever node answers. A replica must promote into a
# higher epoch, clients must be carried to it, every acknowledged
# (201) write must survive, and the survivors' trees must converge
# byte-identically.
replsmoke:
	$(GO) test -race -count=1 -run 'TestReplSmoke' ./internal/store/repl

cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

# Regenerate every table and figure of the paper's evaluation.
reproduce:
	$(GO) run ./cmd/expbench -exp all

# Run every example end to end.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/memory-failover
	$(GO) run ./examples/storage-compose
	$(GO) run ./examples/burstbuffer
	$(GO) run ./examples/fabric-failover
	$(GO) run ./examples/composable-batch

clean:
	$(GO) clean ./...

// Composable-batch: the paper's end-state — a workload manager as an OFMF
// client. Batch jobs declare disaggregated resource demands through
// constraints; the prolog composes fabric-attached memory, GPU slices and
// storage for each allocated node before the job starts; the epilog
// returns everything to the pools. Three jobs with different shapes share
// one small cluster and one set of pools without stranding anything.
//
//	go run ./examples/composable-batch
package main

import (
	"fmt"
	"log"

	"ofmf/internal/core"
	"ofmf/internal/sim/cluster"
	"ofmf/internal/sim/des"
	"ofmf/internal/sim/slurm"
	"ofmf/internal/wmbridge"
)

func main() {
	f, err := core.New(core.Config{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	sim := &des.Sim{}
	cl := cluster.NewDefault(4)
	m := slurm.NewManager(sim, cl, des.NewRNG(2023))
	bridge := wmbridge.New(f.Composer)
	bridge.Install(m)

	jobs := []struct {
		name       string
		nodes      int
		constraint string
		runtime    float64
	}{
		{"genomics (memory-hungry)", 2, "composable:mem=65536", 300},
		{"training (GPU)", 1, "composable:mem=16384,gpu=4", 500},
		{"checkpointing (storage)", 2, "composable:storage=2147483648", 200},
	}
	for _, j := range jobs {
		runtime := j.runtime
		id, err := m.Submit(slurm.JobSpec{
			Nodes:       j.nodes,
			Constraints: []string{j.constraint},
			Run:         func(slurm.JobContext, *des.RNG) float64 { return runtime },
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("submitted job %d: %s on %d nodes [%s]\n", id, j.name, j.nodes, j.constraint)
	}

	// Watch the pools as the simulated day unfolds.
	for _, tick := range []float64{1, 250, 450, 1200} {
		sim.RunUntil(tick)
		stats := f.Composer.Stats()
		fmt.Printf("\nt=%5.0fs  live compositions: %d   used cores: %d\n",
			sim.Now(), stats.Compositions, stats.UsedCores)
		fmt.Printf("          CXL free %6d MiB   GPU slices free %2d   storage free %d GiB\n",
			stats.FreeMemoryMiB, stats.FreeGPUSlices, stats.FreeStorageB>>30)
	}
	sim.Run()

	fmt.Println("\nfinal accounting:")
	for _, rec := range m.Records() {
		fmt.Printf("  job %d on %-14s %-9s prolog %.2fs run %.0fs epilog %.2fs\n",
			rec.ID, rec.NodeList, rec.State, rec.PrologSeconds, rec.RunSeconds(), rec.EpilogSeconds)
	}
	composed, decomposed, failed := bridge.Stats()
	fmt.Printf("\nbridge: %d compositions made, %d released, %d failed — nothing stranded:\n", composed, decomposed, failed)
	stats := f.Composer.Stats()
	fmt.Printf("  CXL pool restored to %d MiB, GPU pool to %d slices\n", stats.FreeMemoryMiB, stats.FreeGPUSlices)
}

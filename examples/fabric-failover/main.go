// Fabric-failover: the paper's "dynamic network fail-over" scenario. A
// bandwidth-reserved flow crosses a fat-tree fabric; a spine link fails;
// the fabric Agent re-routes the flow over the surviving spine, publishes
// a LinkDown alert through the OFMF event service, and the Redfish tree
// reflects the degraded port. An operator then disables and re-enables
// ports through standard Redfish PATCHes.
//
//	go run ./examples/fabric-failover
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"sync"
	"time"

	"ofmf/internal/client"
	"ofmf/internal/core"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
)

func main() {
	f, err := core.New(core.Config{Nodes: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	c := client.New(srv.URL)
	fabric := f.FabAgent.FabricID()

	// Subscribe to alerts exactly like an external monitoring client.
	var mu sync.Mutex
	var alerts []string
	listener, err := c.SubscribeEvents(redfish.EventDestination{
		EventTypes: []string{redfish.EventAlert},
		Context:    "noc-monitor",
	}, func(ev redfish.Event) {
		mu.Lock()
		for _, rec := range ev.Events {
			alerts = append(alerts, rec.Message)
		}
		mu.Unlock()
	})
	if err != nil {
		log.Fatal(err)
	}
	defer listener.Close()

	// Reserve a flow between two endpoints.
	eps, err := c.Endpoints(fabric)
	if err != nil {
		log.Fatal(err)
	}
	conn, err := c.CreateConnection(fabric, redfish.Connection{
		Links: redfish.ConnectionLinks{
			InitiatorEndpoints: []odata.Ref{odata.NewRef(eps[0].ODataID)},
			TargetEndpoints:    []odata.Ref{odata.NewRef(eps[len(eps)-1].ODataID)},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	before := f.Fabric.Flows()[0]
	fmt.Printf("flow %s routed: %v\n", conn.ID, before.Route)

	// Fail the spine link the flow crosses — hardware-side event, exactly
	// what a cable pull produces.
	spine := before.Route[2]
	leaf := before.Route[1]
	fmt.Printf("\n!!! failing link %s-%s\n\n", leaf, spine)
	if err := f.Fabric.FailLink(leaf, spine); err != nil {
		log.Fatal(err)
	}

	// The agent re-routes and republishes; give async event delivery a
	// moment.
	time.Sleep(100 * time.Millisecond)
	after := f.Fabric.Flows()[0]
	fmt.Printf("flow re-routed:       %v\n", after.Route)

	// The tree shows the degraded port.
	var port redfish.Port
	if err := c.Get(fabric.Append("Switches", leaf, "Ports", spine), &port); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("port %s->%s: LinkStatus=%s Health=%s\n", leaf, spine, port.LinkStatus, port.Status.Health)

	mu.Lock()
	fmt.Printf("alerts delivered to subscriber: %d\n", len(alerts))
	for _, a := range alerts {
		fmt.Printf("  %s\n", a)
	}
	mu.Unlock()

	// Operator repairs the link via Redfish PATCH.
	if err := c.Patch(fabric.Append("Switches", leaf, "Ports", spine), map[string]any{"LinkState": "Enabled"}); err != nil {
		log.Fatal(err)
	}
	if err := c.Get(fabric.Append("Switches", leaf, "Ports", spine), &port); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter repair: port %s->%s LinkStatus=%s\n", leaf, spine, port.LinkStatus)
}

// Burstbuffer: the paper's production BeeOND integration, end to end. A
// job submitted with the "beeond" constraint gets a private node-local
// parallel filesystem assembled by parallel Slurm prolog scripts (lowest
// node = Mgmtd + Meta + OST + client, every other node OST + client) and
// torn down — killed, polled, XFS-reformatted, remounted — by the epilog.
// The run sweeps allocation sizes to show assembly under 3 s and teardown
// under 6 s regardless of scale.
//
//	go run ./examples/burstbuffer
package main

import (
	"fmt"
	"log"

	"ofmf/internal/exp"
	"ofmf/internal/sim/beeond"
	"ofmf/internal/sim/slurm"
)

func main() {
	// One job in detail.
	res, err := exp.RunSlurmLifecycle(16, 600, 2023)
	if err != nil {
		log.Fatal(err)
	}
	rec := res.Record
	fmt.Printf("job %d on %s: %s\n", rec.ID, rec.NodeList, rec.State)
	fmt.Printf("  prolog (filesystem assembly): %.2f s\n", rec.PrologSeconds)
	fmt.Printf("  compute:                      %.0f s\n", rec.RunSeconds())
	fmt.Printf("  epilog (teardown + reformat): %.2f s\n", rec.EpilogSeconds)
	fmt.Printf("  metadata/management node:     %s\n\n", res.MetaNode)

	nodes, err := slurm.Expand(rec.NodeList)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("role assignment (paper §Integration of the BeeOND filesystem with Slurm):")
	for _, n := range nodes[:4] {
		fmt.Printf("  %s: %s\n", n, res.RolesByNode[n])
	}
	fmt.Printf("  ... and %d more storage+client nodes\n\n", len(nodes)-4)

	// IOR striping over the private filesystem.
	fs := beeond.New(beeond.DefaultConfig(), nodes)
	files := fs.Stripe(56 * len(nodes))
	fmt.Printf("file-per-process IOR placement: %d files over %d OSTs (%d per node)\n\n",
		56*len(nodes), len(fs.OSTs()), files[nodes[0]])

	// The scale sweep behind the paper's <3 s / <6 s claim.
	points, err := exp.RunLifecycle(exp.DefaultLifecycle())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(exp.LifecycleTable(points))
}

// Memory-failover: the paper's out-of-memory mitigation scenario.
// A running composition approaches memory exhaustion; the workload
// manager raises an OFMF alert; the Composability Manager's rule engine
// reacts by hot-adding fabric-attached CXL memory to the live system —
// "dynamic provisioning of resources to maintain running client
// computations".
//
//	go run ./examples/memory-failover
package main

import (
	"fmt"
	"log"
	"time"

	"ofmf/internal/composer"
	"ofmf/internal/core"
	"ofmf/internal/redfish"
)

func main() {
	f, err := core.New(core.Config{
		Nodes:        2,
		OOMHotAddMiB: 8192, // the rule hot-adds 8 GiB per alert
	})
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	// A simulation job starts with 16 GiB of fabric memory.
	comp, err := f.Composer.Compose(composer.Request{
		Name:            "climate-sim",
		Cores:           32,
		FabricMemoryMiB: 16 * 1024,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("composed %s on %s with %d MiB fabric memory\n",
		comp.ID, comp.Node, comp.Request.FabricMemoryMiB)
	fmt.Printf("CXL pool free: %d MiB\n\n", f.CXL.FreeMiB())

	// The job's memory footprint grows; the workload manager publishes
	// an out-of-memory alert naming the composition. In a deployment this
	// arrives through the OFMF event service from a node agent.
	for round := 1; round <= 3; round++ {
		fmt.Printf("round %d: memory pressure detected, raising %s\n", round, composer.MessageOutOfMemory)
		f.Service.Bus().Publish(redfish.EventRecord{
			EventType:   redfish.EventAlert,
			EventID:     fmt.Sprintf("oom-%d", round),
			Severity:    "Critical",
			Message:     "composition approaching memory exhaustion",
			MessageID:   composer.MessageOutOfMemory,
			MessageArgs: []string{comp.ID},
		})
		waitForFired(f, round)
		got, err := f.Composer.Get(comp.ID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  rule fired: composition now holds %d memory chunks; CXL pool free %d MiB\n",
			len(got.Resources), f.CXL.FreeMiB())
	}

	got, _ := f.Composer.Get(comp.ID)
	fmt.Printf("\nfinal composition resources:\n")
	for _, r := range got.Resources {
		fmt.Printf("  %s\n", r)
	}
	fmt.Printf("the job survived three memory-pressure episodes without a restart\n")
}

// waitForFired blocks until the OOM rule has fired n times (event
// delivery is asynchronous through the bus).
func waitForFired(f *core.Framework, n int) {
	deadline := time.Now().Add(5 * time.Second)
	for f.Rules.Fired("oom-hot-add") < n {
		if time.Now().After(deadline) {
			log.Fatalf("rule did not fire within deadline")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

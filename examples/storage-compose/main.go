// Storage-compose: drive the Swordfish storage path directly through the
// Redfish API — provision an NVMe-oF volume from the pooled JBOF, zone
// the initiator and target, connect the volume to a compute node, and
// observe the emulated target's state at each step.
//
//	go run ./examples/storage-compose
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"ofmf/internal/client"
	"ofmf/internal/core"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
)

func main() {
	f, err := core.New(core.Config{Nodes: 2, NVMePoolBytes: 4 << 40})
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	c := client.New(srv.URL)

	storage := f.NVMeAgent.StorageID()
	fabric := f.NVMeAgent.FabricID()

	// 1. Inspect the pool through Swordfish.
	var pool redfish.StoragePool
	if err := c.Get(storage.Append("StoragePools", "pool0"), &pool); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pool0: %d bytes provisioned, %d consumed\n",
		pool.Capacity.Data.AllocatedBytes, pool.Capacity.Data.ConsumedBytes)

	// 2. Provision a 256 GiB volume: POST to the Volumes collection; the
	//    NVMe Agent carves the namespace on the emulated target.
	var vol redfish.Volume
	status, err := c.PostJSON(string(storage.Append("Volumes")), map[string]any{"CapacityBytes": int64(256) << 30}, &vol)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created volume %s (%d bytes) — HTTP %d\n", vol.ID, vol.CapacityBytes, status)

	// 3. Connect node001: the agent attaches the namespace to the node's
	//    dedicated subsystem and establishes the host controller.
	conn, err := c.CreateConnection(fabric, redfish.Connection{
		VolumeInfo: []redfish.VolumeInfo{{
			AccessCapabilities: []string{"Read", "Write"},
			Volume:             redfish.Ref(vol.ODataID),
		}},
		Links: redfish.ConnectionLinks{
			InitiatorEndpoints: []odata.Ref{odata.NewRef(fabric.Append("Endpoints", "node001"))},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("connection %s established (%s)\n", conn.ID, conn.ConnectionType)

	// 4. Hardware truth from the emulated target.
	for _, v := range f.NVMe.Volumes() {
		fmt.Printf("target volume %s: %d bytes, subsystem %q\n", v.ID, v.Bytes, v.Subsystem)
		if v.Subsystem != "" {
			sub, err := f.NVMe.SubsystemInfo(v.Subsystem)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  connected hosts: %v\n", sub.Hosts())
		}
	}

	// 5. Tear down in order: connection first, then the volume.
	if err := c.Delete(conn.ODataID); err != nil {
		log.Fatal(err)
	}
	if err := c.Delete(vol.ODataID); err != nil {
		log.Fatal(err)
	}
	var after redfish.StoragePool
	if err := c.Get(storage.Append("StoragePools", "pool0"), &after); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after teardown: pool0 consumed %d bytes, %d namespaces on target\n",
		after.Capacity.Data.ConsumedBytes, len(f.NVMe.Volumes()))
}

// Quickstart: assemble an in-process OFMF testbed, browse the aggregated
// Redfish tree through the HTTP API, compose a system with fabric-attached
// memory, storage and a GPU slice, then tear it down.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"ofmf/internal/client"
	"ofmf/internal/composer"
	"ofmf/internal/core"
	"ofmf/internal/service"
)

func main() {
	// 1. One call brings up the OFMF, four emulated hardware platforms,
	//    their Agents, and the Composability Manager.
	f, err := core.New(core.Config{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	c := client.New(srv.URL)

	// 2. The whole disaggregated infrastructure is one Redfish tree.
	root, err := c.Root()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("service root: %s (Redfish %s)\n", root.Name, root.RedfishVersion)
	fabrics, err := c.Fabrics()
	if err != nil {
		log.Fatal(err)
	}
	for _, fab := range fabrics {
		fmt.Printf("  fabric %-6s type=%s\n", fab.ID, fab.FabricType)
	}
	systems, err := c.Systems()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d physical compute nodes registered\n", len(systems))

	// 3. Compose a system: 8 cores + 8 GiB CXL memory + 1 GiB NVMe volume
	//    + one GPU slice, placed by the composer's policy.
	comp, err := c.Compose(composer.Request{
		Name:            "quickstart-sys",
		Cores:           8,
		FabricMemoryMiB: 8192,
		StorageBytes:    1 << 30,
		GPUSlices:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncomposed %s on %s with %d fabric resources:\n", comp.ID, comp.Node, len(comp.Resources))
	for _, r := range comp.Resources {
		fmt.Printf("  %s\n", r)
	}

	// 4. The composed system is a first-class Redfish resource.
	var sys map[string]any
	if err := c.Get(comp.SystemURI, &sys); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system %v type=%v\n", sys["Id"], sys["SystemType"])

	// 5. Hardware truth: the emulated appliances hold the allocations.
	fmt.Printf("\nCXL pool free: %d MiB, GPU slices free: %d\n", f.CXL.FreeMiB(), f.GPUs.FreeSlices())

	// 6. Decompose; everything returns to the pools.
	if err := c.Decompose(comp.ID); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after decompose — CXL pool free: %d MiB, GPU slices free: %d\n",
		f.CXL.FreeMiB(), f.GPUs.FreeSlices())

	members, err := c.Members(service.SystemsURI)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("systems remaining in tree: %d\n", len(members))
}

// Package ofmf is a from-scratch Go implementation of the OpenFabrics
// Management Framework (OFMF): centralized composable HPC management over
// Redfish/Swordfish, with technology-specific fabric Agents, emulated
// composable hardware (CXL memory, NVMe-oF storage, network fabrics, GPU
// pools), a Composability Manager, and the full evaluation harness
// reproducing the paper's tables and figures. See README.md for the
// architecture overview and DESIGN.md for the per-experiment index.
package ofmf

package ofmf_test

// End-to-end tracing acceptance: one compose request on the demo
// topology must yield a single trace spanning the HTTP middleware, the
// composer, the agents, the store and the WAL, with correct
// parent/child links — and the admin Traces endpoint must serve it.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ofmf/internal/core"
	"ofmf/internal/obsv"
	"ofmf/internal/service"
	"ofmf/internal/store/persist"
)

func TestComposeTraceEndToEnd(t *testing.T) {
	reg := obsv.NewRegistry()
	metrics := obsv.NewMetrics(reg)
	tracer := obsv.NewTracer(reg, obsv.TracerOptions{})
	f, err := core.New(core.Config{
		Nodes:   2,
		Service: service.Config{Metrics: metrics, Tracer: tracer},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Attach a durable backend so the WAL group-commit seam shows up in
	// the trace too.
	backend, err := persist.Open(persist.Options{Dir: t.TempDir(), Fsync: true, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := backend.Recover(f.Service.Store())
	if err != nil {
		t.Fatal(err)
	}
	f.Service.Store().AttachBackend(backend, stats.LastSeq)

	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	body := []byte(`{"Name": "traced", "Cores": 1, "FabricMemoryMiB": 256}`)
	resp, err := http.Post(srv.URL+"/composer/v1/Compose", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		t.Fatalf("compose POST = %d", resp.StatusCode)
	}

	// The middleware finishes the http span after writing the response;
	// poll briefly for it.
	var httpSpan obsv.SpanRecord
	deadline := time.Now().Add(5 * time.Second)
	for httpSpan.SpanID == "" {
		for _, r := range tracer.Dump() {
			if r.Name == "http.Composer" && r.Attrs["path"] == "/composer/v1/Compose" {
				httpSpan = r
			}
		}
		if httpSpan.SpanID == "" {
			if time.Now().After(deadline) {
				t.Fatalf("no http.Composer span in %+v", tracer.Dump())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Collect the whole trace and index it by span id.
	byID := map[string]obsv.SpanRecord{}
	byName := map[string][]obsv.SpanRecord{}
	for _, r := range tracer.Dump() {
		if r.TraceID == httpSpan.TraceID {
			byID[r.SpanID] = r
			byName[r.Name] = append(byName[r.Name], r)
		}
	}

	// Every layer contributed spans to the one trace.
	for _, name := range []string{"compose.compose", "agent.CreateResource", "agent.CreateConnection", "store.create", "wal.commit"} {
		if len(byName[name]) == 0 {
			names := make([]string, 0, len(byID))
			for _, r := range byID {
				names = append(names, r.Name)
			}
			t.Fatalf("trace has no %s span; trace spans: %v", name, names)
		}
	}

	// Parent/child links: compose hangs off the http span, and every
	// other span's parent chain reaches the http span within the trace.
	compose := byName["compose.compose"][0]
	if compose.ParentID != httpSpan.SpanID {
		t.Errorf("compose parent = %s, want http span %s", compose.ParentID, httpSpan.SpanID)
	}
	for _, r := range byID {
		if r.SpanID == httpSpan.SpanID {
			continue
		}
		// Walk to the root, bounded to catch cycles.
		cur, hops := r, 0
		for cur.ParentID != "" && hops < len(byID)+1 {
			parent, ok := byID[cur.ParentID]
			if !ok {
				t.Errorf("span %s (%s) has parent %s outside the trace", r.Name, r.SpanID, cur.ParentID)
				break
			}
			cur, hops = parent, hops+1
		}
		if cur.SpanID != httpSpan.SpanID {
			t.Errorf("span %s does not chain to the http span (stopped at %s)", r.Name, cur.Name)
		}
	}
	// The WAL commit span parents onto a store mutation span.
	wal := byName["wal.commit"][0]
	if parent, ok := byID[wal.ParentID]; !ok || len(parent.Name) < 6 || parent.Name[:6] != "store." {
		t.Errorf("wal.commit parent = %+v, want a store.* span", byID[wal.ParentID])
	}

	// The admin Traces endpoint serves the same trace, and the
	// min-duration filter excludes it when set absurdly high.
	var dump struct {
		Count int
		Spans []obsv.SpanRecord
	}
	getTraces := func(query string) {
		t.Helper()
		resp, err := http.Get(srv.URL + string(service.TracesOemURI) + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("traces GET%s = %d", query, resp.StatusCode)
		}
		dump = struct {
			Count int
			Spans []obsv.SpanRecord
		}{}
		if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
			t.Fatal(err)
		}
	}
	getTraces("?trace=" + httpSpan.TraceID)
	if dump.Count < 5 {
		t.Errorf("traces endpoint returned %d spans for the compose trace, want >= 5", dump.Count)
	}
	for _, sp := range dump.Spans {
		if sp.TraceID != httpSpan.TraceID {
			t.Errorf("trace filter leaked span %+v", sp)
		}
	}
	getTraces(fmt.Sprintf("?trace=%s&min_ms=%d", httpSpan.TraceID, 1<<30))
	if dump.Count != 0 {
		t.Errorf("min_ms filter kept %d spans, want 0", dump.Count)
	}
}

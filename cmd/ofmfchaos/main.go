// Command ofmfchaos drives the fleet chaos harness: a seeded,
// deterministic fleet of emulated agents churning against one
// in-process OFMF, with end-state invariant checking (no ghost or
// duplicate aggregation sources, event-count conservation, liveness
// converged to ground truth, WAL sequence integrity).
//
//	ofmfchaos -agents 10000 -seed 42 -scenario partition
//	ofmfchaos -agents 100 -seed 42 -scenario all -smoke   # CI gate shape
//
// The exit status is the gate: 0 when every scenario converges clean,
// 1 when any invariant is violated. With -out, results are written into
// the file's fleet_churn section (BENCH_serving.json format; the rest
// of the document passes through untouched).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"time"

	"ofmf/internal/fleet"
)

func main() {
	agents := flag.Int("agents", 10000, "fleet size")
	seed := flag.Int64("seed", 0, "deterministic seed (required, non-zero)")
	scenario := flag.String("scenario", "all", "scenario to run: crash|partition|storm|killrecover|all")
	smoke := flag.Bool("smoke", false, "mark the run as a CI smoke gate in the output")
	out := flag.String("out", "", "write results into this file's fleet_churn section (BENCH_serving.json format)")
	verbose := flag.Bool("v", false, "log harness progress")
	flag.Parse()

	if *seed == 0 {
		fmt.Fprintln(os.Stderr, "ofmfchaos: -seed is required: an unseeded chaos run cannot be replayed")
		os.Exit(2)
	}
	names := fleet.ScenarioNames()
	if *scenario != "all" {
		if _, err := fleet.Scenario(*scenario); err != nil {
			fmt.Fprintf(os.Stderr, "ofmfchaos: %v\n", err)
			os.Exit(2)
		}
		names = []string{*scenario}
	}

	// Silent by default: at fleet scale the service logs a WARN line per
	// liveness transition, which is the scenario's whole point.
	var logger *slog.Logger
	if *verbose {
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo}))
	}

	fmt.Printf("ofmfchaos: %d agents, seed %d, scenarios %v\n", *agents, *seed, names)
	var results []fleet.Result
	failed := false
	for _, name := range names {
		res, err := runOne(name, *agents, *seed, logger)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ofmfchaos: %s: harness error: %v\n", name, err)
			os.Exit(1)
		}
		results = append(results, res)
		status := "ok"
		if res.Failed() {
			status = fmt.Sprintf("FAILED (%d violations)", len(res.Violations))
			failed = true
		}
		fmt.Printf("  %-12s reg %8.0f/s  rereg %8.0f/s  sweep p99 %7.2fms  converge %4.0fvs/%6.0fms  events %7d  %s\n",
			name, res.RegistrationPerSec, res.ReregistrationPerSec, res.SweepP99Ms,
			res.ConvergenceVirtualS, res.ConvergenceWallMs, res.EventsPublished, status)
		if name == "killrecover" {
			fmt.Printf("  %-12s WAL replayed %d records in %.0fms\n", "", res.RecoveryReplayed, res.RecoveryMs)
		}
		for _, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "  %s: VIOLATION: %s\n", name, v)
		}
	}

	if *out != "" {
		if err := writeResults(*out, results, *smoke); err != nil {
			fmt.Fprintf(os.Stderr, "ofmfchaos: write %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Printf("ofmfchaos: results written to %s\n", *out)
	}
	if failed {
		os.Exit(1)
	}
}

// runOne builds a fresh fleet (scenarios must not share agent or sink
// state) and runs one scenario.
func runOne(name string, agents int, seed int64, logger *slog.Logger) (fleet.Result, error) {
	opts := fleet.Options{Agents: agents, Seed: seed, Logger: logger}
	if name == "killrecover" {
		dir, err := os.MkdirTemp("", "ofmfchaos-wal-*")
		if err != nil {
			return fleet.Result{}, err
		}
		defer os.RemoveAll(dir)
		opts.PersistDir = dir
	}
	f, err := fleet.New(opts)
	if err != nil {
		return fleet.Result{}, err
	}
	sc, err := fleet.Scenario(name)
	if err != nil {
		return fleet.Result{}, err
	}
	return f.Run(sc)
}

// churnSection is what lands under the output file's fleet_churn key.
type churnSection struct {
	Date       string         `json:"date"`
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Smoke      bool           `json:"smoke,omitempty"`
	Runs       []fleet.Result `json:"runs"`
}

// writeResults replaces the fleet_churn section of the JSON document at
// path, preserving every other key (comment, entries, ...) byte-for-byte
// via RawMessage passthrough.
func writeResults(path string, results []fleet.Result, smoke bool) error {
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("existing document does not parse: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	section, err := json.Marshal(churnSection{
		Date:       time.Now().Format("2006-01-02"),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Smoke:      smoke,
		Runs:       results,
	})
	if err != nil {
		return err
	}
	doc["fleet_churn"] = section
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

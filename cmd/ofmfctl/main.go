// Command ofmfctl is the operator CLI for an OFMF deployment: browse the
// Redfish tree, mutate agent-owned resources, and drive the Composability
// Layer.
//
// Usage:
//
//	ofmfctl [-url http://localhost:8080] [-login user:pass] [-timeout 10s] <command> [args]
//
// Commands:
//
//	root                       print the service root
//	get <path>                 print a resource
//	members <path>             list a collection's members
//	patch <path> <json>        PATCH a resource
//	delete <path>              DELETE a resource
//	compose <json>             submit a composition request
//	decompose <id>             tear a composition down
//	compositions               list live compositions
//	stats                      composability utilization counters
//	replication                replication role, epoch and follower progress
//	events [EventType]         tail the SSE event stream
//	dump [file]                download the whole resource tree (stdout or file)
//	restore <file>             replace the live tree with a dump (atomic)
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"ofmf/internal/client"
	"ofmf/internal/composer"
	"ofmf/internal/odata"
	"ofmf/internal/resilience"
	"ofmf/internal/service"
)

func main() {
	var (
		url     = flag.String("url", "http://localhost:8080", "OFMF base URL")
		login   = flag.String("login", "", "authenticate with user:password")
		timeout = flag.Duration("timeout", 10*time.Second, "per-attempt request timeout")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	policy := resilience.DefaultPolicy()
	policy.AttemptTimeout = *timeout
	c := client.New(*url)
	c.HTTP = resilience.NewHTTPClient(policy)
	if *login != "" {
		user, pass, ok := strings.Cut(*login, ":")
		if !ok {
			log.Fatal("ofmfctl: -login must be user:password")
		}
		if err := c.Login(user, pass); err != nil {
			log.Fatalf("ofmfctl: login: %v", err)
		}
	}

	switch cmd := args[0]; cmd {
	case "root":
		root, err := c.Root()
		check(err)
		dump(root)
	case "get":
		need(args, 2, "get <path>")
		var out map[string]any
		check(c.Get(odata.ID(args[1]), &out))
		dump(out)
	case "members":
		need(args, 2, "members <path>")
		members, err := c.Members(odata.ID(args[1]))
		check(err)
		for _, m := range members {
			fmt.Println(m)
		}
	case "patch":
		need(args, 3, "patch <path> <json>")
		var patch map[string]any
		check(json.Unmarshal([]byte(args[2]), &patch))
		check(c.Patch(odata.ID(args[1]), patch))
		fmt.Println("patched", args[1])
	case "delete":
		need(args, 2, "delete <path>")
		check(c.Delete(odata.ID(args[1])))
		fmt.Println("deleted", args[1])
	case "compose":
		need(args, 2, "compose <json>")
		var req composer.Request
		check(json.Unmarshal([]byte(args[1]), &req))
		comp, err := c.Compose(req)
		check(err)
		dump(comp)
	case "decompose":
		need(args, 2, "decompose <id>")
		check(c.Decompose(args[1]))
		fmt.Println("decomposed", args[1])
	case "compositions":
		comps, err := c.Compositions()
		check(err)
		dump(comps)
	case "stats":
		stats, err := c.ComposerStats()
		check(err)
		dump(stats)
	case "dump":
		data, err := c.ExportTree()
		check(err)
		if len(args) > 1 {
			check(os.WriteFile(args[1], data, 0o644))
			fmt.Fprintln(os.Stderr, "ofmfctl: dumped tree to", args[1])
		} else {
			fmt.Println(string(data))
		}
	case "restore":
		need(args, 2, "restore <file>")
		data, err := os.ReadFile(args[1])
		check(err)
		check(c.ImportTree(data))
		fmt.Println("restored tree from", args[1])
	case "replication":
		// Replication status lives outside the Redfish tree (every node
		// answers, leader or replica, without redirecting).
		resp, err := c.HTTP.Get(*url + "/repl/v1/status")
		check(err)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("ofmfctl: replication status returned %s (is the node running with -role?)", resp.Status)
		}
		var status map[string]any
		check(json.NewDecoder(resp.Body).Decode(&status))
		dump(status)
	case "events":
		streamURL := *url + string(service.SSEURI)
		if len(args) > 1 {
			streamURL += "?EventType=" + args[1]
		}
		req, err := http.NewRequest(http.MethodGet, streamURL, nil)
		check(err)
		if tok := c.Token(); tok != "" {
			req.Header.Set("X-Auth-Token", tok)
		}
		// The event stream is long-lived: no attempt timeout, no retries.
		resp, err := resilience.NewStreamingHTTPClient(policy).Do(req)
		check(err)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("ofmfctl: event stream returned %s", resp.Status)
		}
		fmt.Fprintln(os.Stderr, "ofmfctl: tailing events (ctrl-c to stop)")
		scanner := bufio.NewScanner(resp.Body)
		for scanner.Scan() {
			line := scanner.Text()
			if strings.HasPrefix(line, "data: ") {
				fmt.Println(strings.TrimPrefix(line, "data: "))
			}
		}
		check(scanner.Err())
	default:
		log.Fatalf("ofmfctl: unknown command %q", cmd)
	}
}

func need(args []string, n int, usage string) {
	if len(args) < n {
		log.Fatalf("ofmfctl: usage: %s", usage)
	}
}

func check(err error) {
	if err != nil {
		log.Fatalf("ofmfctl: %v", err)
	}
}

func dump(v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	check(err)
	fmt.Println(string(b))
}

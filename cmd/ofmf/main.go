// Command ofmf runs the OpenFabrics Management Framework service: the
// centralized Redfish/Swordfish tree, session/event/task/telemetry
// services, the aggregation endpoint agents register against, and (with
// -testbed) a fully emulated composable testbed with the Composability
// Layer mounted at /composer/v1.
//
// Observability: every request is traced with an X-Request-Id and logged
// through a structured slog logger (-log-level), Prometheus-format
// metrics are exposed at /metrics (-metrics), and Go profiling at
// /debug/pprof when enabled (-pprof).
//
// Durability: with -data-dir the resource tree survives restarts — every
// mutation is appended to a write-ahead log (group-committed; -fsync
// selects whether commits wait for stable storage), compacted snapshots
// are taken every -snapshot-interval, and boot recovers the newest
// snapshot plus the log tail, truncating records torn by a crash.
// Without -data-dir the store is purely in-memory, as before.
//
// Scaling: -shards partitions the resource tree by top-level URI
// segment into independently locked store shards, each with its own WAL
// stream and group-commit leader, so writers to different subtrees
// (Fabrics vs Systems) never contend. -shards 0 sizes the partition to
// the CPU count; a data dir written at a different shard count is
// migrated automatically at boot.
//
// Usage:
//
//	ofmf -addr :8080                      # bare service, wait for agents
//	ofmf -addr :8080 -testbed -nodes 16   # emulated hardware + composer
//	ofmf -addr :8080 -auth admin:secret   # require session tokens
//	ofmf -addr :8080 -data-dir /var/lib/ofmf   # durable resource tree
//	ofmf -addr :8080 -log-level debug -pprof
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ofmf/internal/core"
	"ofmf/internal/events"
	"ofmf/internal/obsv"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/service"
	"ofmf/internal/sessions"
	"ofmf/internal/store"
	"ofmf/internal/store/persist"
	"ofmf/internal/store/repl"
	"ofmf/internal/telemetry"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		auth         = flag.String("auth", "", "require authentication with user:password")
		testbed      = flag.Bool("testbed", false, "assemble the emulated composable testbed")
		nodes        = flag.Int("nodes", 8, "testbed compute node count")
		oomMiB       = flag.Int64("oom-hot-add", 0, "enable the OOM mitigation rule with this hot-add step (MiB)")
		snapshot     = flag.String("snapshot", "", "tree snapshot file: loaded at startup when present, written on SIGINT/SIGTERM")
		dataDir      = flag.String("data-dir", "", "durable store directory (WAL + snapshots); empty keeps the tree in-memory only")
		fsync        = flag.Bool("fsync", true, "with -data-dir: mutations wait for the WAL fsync (group-committed); false flushes to the OS only")
		snapInterval = flag.Duration("snapshot-interval", 5*time.Minute,
			"with -data-dir: cadence of compacted snapshots and WAL rotation (0 disables the periodic loop)")
		shards = flag.Int("shards", 1,
			"store shard count: independent locks and WAL streams per top-level URI partition; 0 sizes to the CPU count, 1 keeps the single-stream layout")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, error")
		withMetrics = flag.Bool("metrics", true, "expose Prometheus-format metrics at /metrics")
		withPprof   = flag.Bool("pprof", false, "expose Go profiling at /debug/pprof")
		traceSlow   = flag.Duration("trace-slow", 0,
			"log any trace whose entry span exceeds this duration (0 disables slow-trace logging)")

		sweepInterval = flag.Duration("sweep-interval", 10*time.Second,
			"aggregation-source liveness sweep cadence (0 disables the sweeper)")
		heartbeatTimeout = flag.Duration("heartbeat-timeout", 30*time.Second,
			"heartbeat age at which an agent is marked Degraded; 3x marks it Unavailable")
		eventWorkers = flag.Int("event-workers", 0,
			"event delivery worker pool size (0 sizes to the CPU count)")

		role = flag.String("role", "",
			"replication role: leader (read-write, ships its WAL) or replica (read-only, follows the leader; promotes on failover); empty runs unreplicated")
		peers   peerFlag
		selfURL = flag.String("self-url", "",
			"this node's externally reachable base URL, required with -role")
		minSync = flag.Int("repl-min-sync", 0,
			"followers that must acknowledge a write before the client is acknowledged (0 ships asynchronously)")
		syncTimeout = flag.Duration("repl-sync-timeout", 5*time.Second,
			"how long a semi-sync write waits for follower acknowledgements before failing")
		leaseTimeout = flag.Duration("lease-timeout", 3*time.Second,
			"leadership lease: a replica that hears nothing for this long holds an election")
		proxyWrites = flag.Bool("repl-proxy-writes", false,
			"replicas proxy mutations to the leader instead of returning 307 redirects")
	)
	flag.Var(&peers, "peer",
		"base URL of another replication node; repeat per peer, or pass one comma-separated list")
	flag.Parse()

	level, err := obsv.ParseLevel(*logLevel)
	if err != nil {
		slog.Error("ofmf: bad -log-level", "err", err)
		os.Exit(1)
	}
	logger := obsv.NewLogger(os.Stderr, level)
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}

	if *role != "" && *role != "leader" && *role != "replica" {
		fatal("ofmf: -role must be leader or replica", nil)
	}
	if *role != "" && *selfURL == "" {
		fatal("ofmf: -role requires -self-url", nil)
	}
	if *role == "replica" && *testbed {
		fatal("ofmf: a replica cannot assemble the testbed; its tree comes from the leader", nil)
	}
	peerList := []string(peers)

	var creds sessions.Credentials
	if *auth != "" {
		user, pass, ok := strings.Cut(*auth, ":")
		if !ok {
			fatal("ofmf: -auth must be user:password", nil)
		}
		creds = sessions.StaticCredentials(map[string]string{user: pass})
	}

	// Resolve the shard count once: the store and the persistence layer
	// must agree for per-shard WAL streams to engage.
	nShards := *shards
	if nShards <= 0 {
		nShards = runtime.GOMAXPROCS(0)
		if nShards > 16 {
			nShards = 16
		}
	}

	metrics := obsv.NewMetrics(obsv.NewRegistry())
	// One tracer for the whole process: the HTTP middleware, composer,
	// store, WAL and agent edges all record into the same span ring,
	// dumped at /redfish/v1/Oem/OFMF/Admin/Traces.
	tracer := obsv.NewTracer(metrics.Registry(), obsv.TracerOptions{
		SlowThreshold: *traceSlow,
		Logger:        logger,
	})
	svcCfg := service.Config{Credentials: creds, Logger: logger, Metrics: metrics, Tracer: tracer, StoreShards: nShards}
	svcCfg.Events.Workers = *eventWorkers

	mux := http.NewServeMux()
	var tree *store.Store
	var ofmfSvc *service.Service
	if *testbed {
		f, err := core.New(core.Config{
			Nodes:        *nodes,
			Service:      svcCfg,
			OOMHotAddMiB: *oomMiB,
		})
		if err != nil {
			fatal("ofmf: testbed assembly failed", err)
		}
		defer f.Close()
		mux.Handle("/", f.Handler())
		tree = f.Service.Store()
		ofmfSvc = f.Service
		logger.Info("ofmf: testbed assembled",
			"nodes", *nodes, "cxl_free_mib", f.CXL.FreeMiB(), "gpu_free_slices", f.GPUs.FreeSlices())
	} else {
		svc := service.New(svcCfg)
		defer svc.Close()
		mux.Handle("/", svc.Handler())
		tree = svc.Store()
		ofmfSvc = svc

		// The bare service has no testbed telemetry wiring, so close the
		// self-telemetry loop here: the management plane's own metrics
		// become a periodic MetricReport under the Redfish tree.
		telem := telemetry.NewService(service.TelemetryServiceURI,
			func(id odata.ID, res any) { _ = svc.Store().Put(id, res) },
			func(rec redfish.EventRecord) { svc.Bus().Publish(rec) },
		)
		if err := telem.DefineReport("ManagementPlane", 10*time.Second,
			obsv.SelfCollector{Registry: metrics.Registry()}); err != nil {
			fatal("ofmf: self-telemetry", err)
		}
		if _, err := telem.Generate("ManagementPlane"); err != nil {
			fatal("ofmf: self-telemetry", err)
		}
		stop := make(chan struct{})
		defer close(stop)
		go telem.Run(stop)
	}

	// Durable store: recover the tree from the data directory before any
	// request is served, then attach the backend so every subsequent
	// mutation is logged. Recovery replays through the store's normal
	// Put/Delete paths, so indexes and id high-water marks are rebuilt
	// exactly; a StatusChange event and log line make the restore visible
	// to operators.
	// pb tracks the live persist backend — boot-recovered here on a
	// leader (or an unreplicated node), installed at promotion time on a
	// replica — so the replication layer's disk-tail and snapshot
	// closures always see the current one.
	var pb atomic.Pointer[persist.FileBackend]
	var bootStats persist.RecoveryStats
	if *dataDir != "" && *role == "replica" {
		// A replica's tree comes from the leader; its data directory
		// stays untouched until this node is promoted, at which point it
		// is bootstrapped at the replicated sequence number. It must be
		// empty then — a previous life's history cannot be merged with
		// the replicated one.
		logger.Info("ofmf: replica: data dir deferred until promotion", "data_dir", *dataDir)
	} else if *dataDir != "" {
		backend, err := persist.Open(persist.Options{
			Dir:              *dataDir,
			Fsync:            *fsync,
			Shards:           nShards,
			SnapshotInterval: *snapInterval,
			Logger:           logger,
			Metrics:          metrics,
			Tracer:           tracer,
		})
		if err != nil {
			fatal("ofmf: data dir", err)
		}
		stats, err := backend.Recover(tree)
		if err != nil {
			fatal("ofmf: recovery", err)
		}
		if *role == "" {
			// Replicated leaders attach through the replication tee
			// below; unreplicated nodes log straight to disk.
			tree.AttachBackend(backend, stats.LastSeq)
		}
		backend.StartSnapshots(tree)
		pb.Store(backend)
		bootStats = stats
		logger.Info("ofmf: store recovered",
			"data_dir", *dataDir, "resources", stats.Resources,
			"replayed", stats.Replayed, "snapshot_seq", stats.SnapshotSeq,
			"truncated", stats.Truncated, "dropped", stats.Dropped,
			"shards", stats.Shards, "fsync", *fsync,
			"duration", stats.Duration)
		ofmfSvc.Bus().Publish(events.Record(redfish.EventStatusChange, "recovery",
			fmt.Sprintf("OFMF store recovered: %d resources restored, %d WAL records replayed in %s",
				stats.Resources, stats.Replayed, stats.Duration.Round(time.Millisecond)),
			service.RootURI))
	}

	// The liveness sweeper is the OFMF-side half of the heartbeat
	// contract: agents report in; the sweeper downgrades sources whose
	// reports stop arriving. It runs only where registrations land —
	// the leader — so replicas never mark sources stale from a tree
	// they don't own; failover callbacks toggle it.
	var sweepMu sync.Mutex
	var stopSweep func()
	startSweep := func() {
		sweepMu.Lock()
		defer sweepMu.Unlock()
		if stopSweep != nil || *sweepInterval <= 0 {
			return
		}
		sweeper := ofmfSvc.NewLivenessSweeper(service.LivenessConfig{
			Interval:   *sweepInterval,
			StaleAfter: *heartbeatTimeout,
		})
		stopSweep = sweeper.Start()
		logger.Info("ofmf: liveness sweeper running",
			"interval", *sweepInterval, "heartbeat_timeout", *heartbeatTimeout)
	}
	haltSweep := func() {
		sweepMu.Lock()
		defer sweepMu.Unlock()
		if stopSweep != nil {
			stopSweep()
			stopSweep = nil
		}
	}
	defer haltSweep()

	if *role == "" {
		startSweep()
	} else {
		var node *repl.Node
		var inner store.Backend
		if b := pb.Load(); b != nil {
			inner = b
		}
		cfg := repl.Config{
			Store:        tree,
			Self:         strings.TrimRight(*selfURL, "/"),
			Peers:        peerList,
			Leader:       *role == "leader",
			BootEpoch:    bootStats.LastEpoch,
			MinSync:      *minSync,
			SyncTimeout:  *syncTimeout,
			LeaseTimeout: *leaseTimeout,
			Inner:        inner,
			DiskTail: func(from uint64) ([]store.Record, error) {
				if b := pb.Load(); b != nil {
					return b.ReadRecords(from)
				}
				return nil, nil
			},
			DiskFlush: func() error {
				if b := pb.Load(); b != nil {
					return b.Flush()
				}
				return nil
			},
			DiskSnapshot: func() ([]byte, uint64, bool, error) {
				if b := pb.Load(); b != nil {
					return b.LatestSnapshot()
				}
				return nil, 0, false, nil
			},
			OnLeader: func(epoch uint64) {
				ofmfSvc.ClearReplicaMode()
				startSweep()
			},
			OnFollower: func(string) {
				haltSweep()
				ofmfSvc.SetReplicaMode(func() string { return node.LeaderURL() }, *proxyWrites)
			},
			Logger:  logger,
			Metrics: metrics,
		}
		if *dataDir != "" {
			cfg.PromoteBackend = func(st *store.Store, seq uint64) (store.Backend, error) {
				b, err := persist.Open(persist.Options{
					Dir:              *dataDir,
					Fsync:            *fsync,
					Shards:           nShards,
					SnapshotInterval: *snapInterval,
					Logger:           logger,
					Metrics:          metrics,
					Tracer:           tracer,
				})
				if err != nil {
					return nil, err
				}
				if err := b.Bootstrap(st, seq); err != nil {
					b.Close()
					return nil, err
				}
				b.StartSnapshots(st)
				pb.Store(b)
				return b, nil
			}
		}
		node, err = repl.NewNode(cfg)
		if err != nil {
			fatal("ofmf: replication", err)
		}
		mux.Handle(repl.PathPrefix, node.Handler())
		node.Start()
		defer node.Stop()
		logger.Info("ofmf: replication enabled",
			"role", *role, "self", *selfURL, "peers", peerList,
			"min_sync", *minSync, "lease", *leaseTimeout)
	}

	if *withMetrics {
		mux.Handle("/metrics", metrics.Registry().Handler())
	}
	if *withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	// Legacy portable snapshot file: load at startup, write at shutdown.
	// Orthogonal to -data-dir (which owns its own snapshot format); the
	// same export is also reachable over the wire via `ofmfctl dump`.
	if *snapshot != "" {
		if data, err := os.ReadFile(*snapshot); err == nil {
			if err := tree.Import(data); err != nil {
				fatal("ofmf: snapshot import", err)
			}
			logger.Info("ofmf: snapshot restored", "resources", tree.Len(), "file", *snapshot)
		} else if !os.IsNotExist(err) {
			fatal("ofmf: snapshot read", err)
		}
	}

	// Graceful shutdown: stop accepting requests, write the legacy
	// snapshot if configured, then let the deferred closes flush and
	// close the durable backend.
	srv := &http.Server{Addr: *addr, Handler: mux}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		logger.Info("ofmf: shutting down", "signal", s.String())
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("ofmf: shutdown", "err", err)
		}
	}()

	logger.Info("ofmf: serving", "addr", *addr, "root", "/redfish/v1",
		"metrics", *withMetrics, "pprof", *withPprof,
		"durable", *dataDir != "")
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal("ofmf: server failed", err)
	}
	if *snapshot != "" {
		data, err := tree.Export()
		if err == nil {
			err = os.WriteFile(*snapshot, data, 0o644)
		}
		if err != nil {
			logger.Error("ofmf: snapshot write failed", "err", err)
		} else {
			logger.Info("ofmf: snapshot written", "file", *snapshot)
		}
	}
	logger.Info("ofmf: stopped")
}

// peerFlag accumulates -peer values: the flag may be repeated, and each
// value may itself be a comma-separated list. Trailing slashes are
// stripped so peer URLs compare equal to the -self-url other nodes
// advertise.
type peerFlag []string

func (p *peerFlag) String() string { return strings.Join(*p, ",") }

func (p *peerFlag) Set(v string) error {
	for _, u := range strings.Split(v, ",") {
		if u = strings.TrimSpace(u); u != "" {
			*p = append(*p, strings.TrimRight(u, "/"))
		}
	}
	return nil
}

// Command ofmf runs the OpenFabrics Management Framework service: the
// centralized Redfish/Swordfish tree, session/event/task/telemetry
// services, the aggregation endpoint agents register against, and (with
// -testbed) a fully emulated composable testbed with the Composability
// Layer mounted at /composer/v1.
//
// Usage:
//
//	ofmf -addr :8080                      # bare service, wait for agents
//	ofmf -addr :8080 -testbed -nodes 16   # emulated hardware + composer
//	ofmf -addr :8080 -auth admin:secret   # require session tokens
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"ofmf/internal/core"
	"ofmf/internal/service"
	"ofmf/internal/sessions"
	"ofmf/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		auth     = flag.String("auth", "", "require authentication with user:password")
		testbed  = flag.Bool("testbed", false, "assemble the emulated composable testbed")
		nodes    = flag.Int("nodes", 8, "testbed compute node count")
		oomMiB   = flag.Int64("oom-hot-add", 0, "enable the OOM mitigation rule with this hot-add step (MiB)")
		snapshot = flag.String("snapshot", "", "tree snapshot file: loaded at startup when present, written on SIGINT/SIGTERM")
	)
	flag.Parse()

	var creds sessions.Credentials
	if *auth != "" {
		user, pass, ok := strings.Cut(*auth, ":")
		if !ok {
			log.Fatalf("ofmf: -auth must be user:password")
		}
		creds = sessions.StaticCredentials(map[string]string{user: pass})
	}

	var handler http.Handler
	var tree *store.Store
	if *testbed {
		f, err := core.New(core.Config{
			Nodes:        *nodes,
			Service:      service.Config{Credentials: creds},
			OOMHotAddMiB: *oomMiB,
		})
		if err != nil {
			log.Fatalf("ofmf: testbed: %v", err)
		}
		defer f.Close()
		handler = f.Handler()
		tree = f.Service.Store()
		fmt.Printf("ofmf: testbed with %d nodes, CXL pool %d MiB, GPU pool %d slices\n",
			*nodes, f.CXL.FreeMiB(), f.GPUs.FreeSlices())
	} else {
		svc := service.New(service.Config{Credentials: creds})
		defer svc.Close()
		handler = svc.Handler()
		tree = svc.Store()
	}

	if *snapshot != "" {
		if data, err := os.ReadFile(*snapshot); err == nil {
			if err := tree.Import(data); err != nil {
				log.Fatalf("ofmf: snapshot import: %v", err)
			}
			fmt.Printf("ofmf: restored %d resources from %s\n", tree.Len(), *snapshot)
		} else if !os.IsNotExist(err) {
			log.Fatalf("ofmf: snapshot read: %v", err)
		}
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			data, err := tree.Export()
			if err == nil {
				err = os.WriteFile(*snapshot, data, 0o644)
			}
			if err != nil {
				log.Printf("ofmf: snapshot write: %v", err)
				os.Exit(1)
			}
			fmt.Printf("ofmf: snapshot written to %s\n", *snapshot)
			os.Exit(0)
		}()
	}

	fmt.Printf("ofmf: serving Redfish tree on %s (service root /redfish/v1)\n", *addr)
	if err := http.ListenAndServe(*addr, handler); err != nil {
		log.Fatalf("ofmf: %v", err)
	}
}

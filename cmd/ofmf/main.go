// Command ofmf runs the OpenFabrics Management Framework service: the
// centralized Redfish/Swordfish tree, session/event/task/telemetry
// services, the aggregation endpoint agents register against, and (with
// -testbed) a fully emulated composable testbed with the Composability
// Layer mounted at /composer/v1.
//
// Observability: every request is traced with an X-Request-Id and logged
// through a structured slog logger (-log-level), Prometheus-format
// metrics are exposed at /metrics (-metrics), and Go profiling at
// /debug/pprof when enabled (-pprof).
//
// Usage:
//
//	ofmf -addr :8080                      # bare service, wait for agents
//	ofmf -addr :8080 -testbed -nodes 16   # emulated hardware + composer
//	ofmf -addr :8080 -auth admin:secret   # require session tokens
//	ofmf -addr :8080 -log-level debug -pprof
package main

import (
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ofmf/internal/core"
	"ofmf/internal/obsv"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/service"
	"ofmf/internal/sessions"
	"ofmf/internal/store"
	"ofmf/internal/telemetry"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		auth        = flag.String("auth", "", "require authentication with user:password")
		testbed     = flag.Bool("testbed", false, "assemble the emulated composable testbed")
		nodes       = flag.Int("nodes", 8, "testbed compute node count")
		oomMiB      = flag.Int64("oom-hot-add", 0, "enable the OOM mitigation rule with this hot-add step (MiB)")
		snapshot    = flag.String("snapshot", "", "tree snapshot file: loaded at startup when present, written on SIGINT/SIGTERM")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, error")
		withMetrics = flag.Bool("metrics", true, "expose Prometheus-format metrics at /metrics")
		withPprof   = flag.Bool("pprof", false, "expose Go profiling at /debug/pprof")

		sweepInterval = flag.Duration("sweep-interval", 10*time.Second,
			"aggregation-source liveness sweep cadence (0 disables the sweeper)")
		heartbeatTimeout = flag.Duration("heartbeat-timeout", 30*time.Second,
			"heartbeat age at which an agent is marked Degraded; 3x marks it Unavailable")
	)
	flag.Parse()

	level, err := obsv.ParseLevel(*logLevel)
	if err != nil {
		slog.Error("ofmf: bad -log-level", "err", err)
		os.Exit(1)
	}
	logger := obsv.NewLogger(os.Stderr, level)
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}

	var creds sessions.Credentials
	if *auth != "" {
		user, pass, ok := strings.Cut(*auth, ":")
		if !ok {
			fatal("ofmf: -auth must be user:password", nil)
		}
		creds = sessions.StaticCredentials(map[string]string{user: pass})
	}

	metrics := obsv.NewMetrics(obsv.NewRegistry())
	svcCfg := service.Config{Credentials: creds, Logger: logger, Metrics: metrics}

	mux := http.NewServeMux()
	var tree *store.Store
	var ofmfSvc *service.Service
	if *testbed {
		f, err := core.New(core.Config{
			Nodes:        *nodes,
			Service:      svcCfg,
			OOMHotAddMiB: *oomMiB,
		})
		if err != nil {
			fatal("ofmf: testbed assembly failed", err)
		}
		defer f.Close()
		mux.Handle("/", f.Handler())
		tree = f.Service.Store()
		ofmfSvc = f.Service
		logger.Info("ofmf: testbed assembled",
			"nodes", *nodes, "cxl_free_mib", f.CXL.FreeMiB(), "gpu_free_slices", f.GPUs.FreeSlices())
	} else {
		svc := service.New(svcCfg)
		defer svc.Close()
		mux.Handle("/", svc.Handler())
		tree = svc.Store()
		ofmfSvc = svc

		// The bare service has no testbed telemetry wiring, so close the
		// self-telemetry loop here: the management plane's own metrics
		// become a periodic MetricReport under the Redfish tree.
		telem := telemetry.NewService(service.TelemetryServiceURI,
			func(id odata.ID, res any) { _ = svc.Store().Put(id, res) },
			func(rec redfish.EventRecord) { svc.Bus().Publish(rec) },
		)
		if err := telem.DefineReport("ManagementPlane", 10*time.Second,
			obsv.SelfCollector{Registry: metrics.Registry()}); err != nil {
			fatal("ofmf: self-telemetry", err)
		}
		if _, err := telem.Generate("ManagementPlane"); err != nil {
			fatal("ofmf: self-telemetry", err)
		}
		stop := make(chan struct{})
		defer close(stop)
		go telem.Run(stop)
	}

	// The liveness sweeper is the OFMF-side half of the heartbeat
	// contract: agents report in; the sweeper downgrades sources whose
	// reports stop arriving.
	if *sweepInterval > 0 {
		sweeper := ofmfSvc.NewLivenessSweeper(service.LivenessConfig{
			Interval:   *sweepInterval,
			StaleAfter: *heartbeatTimeout,
		})
		stopSweep := sweeper.Start()
		defer stopSweep()
		logger.Info("ofmf: liveness sweeper running",
			"interval", *sweepInterval, "heartbeat_timeout", *heartbeatTimeout)
	}

	if *withMetrics {
		mux.Handle("/metrics", metrics.Registry().Handler())
	}
	if *withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	if *snapshot != "" {
		if data, err := os.ReadFile(*snapshot); err == nil {
			if err := tree.Import(data); err != nil {
				fatal("ofmf: snapshot import", err)
			}
			logger.Info("ofmf: snapshot restored", "resources", tree.Len(), "file", *snapshot)
		} else if !os.IsNotExist(err) {
			fatal("ofmf: snapshot read", err)
		}
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			data, err := tree.Export()
			if err == nil {
				err = os.WriteFile(*snapshot, data, 0o644)
			}
			if err != nil {
				logger.Error("ofmf: snapshot write failed", "err", err)
				os.Exit(1)
			}
			logger.Info("ofmf: snapshot written", "file", *snapshot)
			os.Exit(0)
		}()
	}

	logger.Info("ofmf: serving", "addr", *addr, "root", "/redfish/v1",
		"metrics", *withMetrics, "pprof", *withPprof)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		fatal("ofmf: server failed", err)
	}
}

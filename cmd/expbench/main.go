// Command expbench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index).
//
// Usage:
//
//	expbench                 # everything
//	expbench -exp fig3       # one experiment
//	expbench -exp fig3 -reps 10 -seed 99
//	expbench -parallel 1     # force sequential replications
//
// Experiments: table1, table2, table3, fig1, fig3, fig4, startup,
// ofmfscale, all.
//
// Replications fan out across all cores by default; results are
// bit-identical for a fixed seed regardless of -parallel.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"ofmf/internal/exp"
	"ofmf/internal/obsv"
)

func main() {
	var (
		which    = flag.String("exp", "all", "experiment id (table1|table2|table3|fig1|fig3|fig4|startup|ofmfscale|all)")
		reps     = flag.Int("reps", 0, "override repetition count")
		seed     = flag.Uint64("seed", 0, "override random seed")
		asCSV    = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		nodes    = flag.String("nodes", "", "override fig3/fig4 node counts, comma-separated (e.g. 1,4,16,64,256)")
		logLevel = flag.String("log-level", "warn", "log level: debug, info, warn, error")
		parallel = flag.Int("parallel", 0, "max replication workers (0 = all cores, 1 = sequential)")
	)
	flag.Parse()
	exp.SetMaxWorkers(*parallel)

	level, err := obsv.ParseLevel(*logLevel)
	if err != nil {
		slog.Error("expbench: bad -log-level", "err", err)
		os.Exit(1)
	}
	logger := obsv.NewLogger(os.Stderr, level)
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}

	render := func(t exp.Table) {
		if *asCSV {
			fmt.Print(t.CSV())
			return
		}
		fmt.Println(t)
	}
	run := func(id string) bool { return *which == "all" || *which == id }
	ran := false

	if run("table1") {
		ran = true
		render(exp.Table1())
	}
	if run("table2") {
		ran = true
		render(exp.Table2())
	}
	if run("table3") {
		ran = true
		render(exp.Table3())
	}
	if run("fig1") {
		ran = true
		cfg := exp.DefaultFig1()
		if *seed != 0 {
			cfg.Seed = *seed
		}
		res, err := exp.RunFig1(cfg)
		if err != nil {
			fatal("expbench: fig1 failed", err)
		}
		render(exp.Fig1Table(res))
	}
	if run("fig3") {
		ran = true
		cfg := exp.DefaultFig3()
		if counts := parseCounts(*nodes); counts != nil {
			cfg.NodeCounts = counts
		}
		if *reps > 0 {
			cfg.Reps = *reps
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		render(exp.Fig3Table(exp.RunFig3(cfg)))
	}
	if run("fig4") {
		ran = true
		cfg := exp.DefaultFig3()
		cfg.NodeCounts = []int{1, 2, 4, 8, 16, 32, 64}
		if counts := parseCounts(*nodes); counts != nil {
			cfg.NodeCounts = counts
		}
		if *reps > 0 {
			cfg.Reps = *reps
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		render(exp.Fig4Table(exp.RunFig4(cfg)))
	}
	if run("startup") {
		ran = true
		cfg := exp.DefaultLifecycle()
		if *reps > 0 {
			cfg.Reps = *reps
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		points, err := exp.RunLifecycle(cfg)
		if err != nil {
			fatal("expbench: startup failed", err)
		}
		render(exp.LifecycleTable(points))
	}
	if run("ofmfscale") {
		ran = true
		points, err := exp.RunScale(exp.DefaultScale())
		if err != nil {
			fatal("expbench: ofmfscale failed", err)
		}
		render(exp.ScaleTable(points))
	}
	if !ran {
		logger.Error("expbench: unknown experiment", "exp", *which,
			"want", strings.Join([]string{"table1", "table2", "table3", "fig1", "fig3", "fig4", "startup", "ofmfscale", "all"}, "|"))
		os.Exit(1)
	}
}

// parseCounts parses a comma-separated node-count list; nil when empty or
// malformed.
func parseCounts(s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n := 0
		for _, c := range strings.TrimSpace(part) {
			if c < '0' || c > '9' {
				return nil
			}
			n = n*10 + int(c-'0')
		}
		if n == 0 {
			return nil
		}
		out = append(out, n)
	}
	return out
}

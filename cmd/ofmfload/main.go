// Command ofmfload is a wrk-style closed-loop load harness for the OFMF
// serving path. It drives a mixed workload of three route classes —
// reads (GET on the Redfish tree), writes (PATCH on a computer system)
// and compositions (POST /composer/v1/Compose followed by the matching
// decompose DELETE) — from -conns concurrent connections for -duration,
// then reports throughput, error rate and p50/p99/p999 latency per
// class and appends the run to BENCH_serving.json so serving-latency
// regressions are tracked alongside the store microbenchmarks.
//
// The "events" mix additionally exercises the event plane: it registers
// -subs webhook subscriptions against a local counting sink (most
// filtered to event types the run never publishes, so the subscription
// index is doing real work), opens -sse SSE streams that drain frames,
// and drives the write-heavy mutation mix so every PATCH fans out as a
// ResourceUpdated event. Webhook POST and SSE frame counts land in the
// results entry.
//
// With no -url it boots the in-process emulated testbed behind an
// httptest server, so a single command measures the full HTTP stack
// (middleware, tracing, store, composer, agents) with zero setup:
//
//	go run ./cmd/ofmfload                      # in-process, 10s, 8 conns
//	go run ./cmd/ofmfload -duration 30s -conns 32
//	go run ./cmd/ofmfload -url http://host:8080 -write 0 -compose 0
//	go run ./cmd/ofmfload -mix write-heavy -shards 8   # stress the sharded write path
//	go run ./cmd/ofmfload -mix events -subs 256        # event-plane fan-out under churn
//	go run ./cmd/ofmfload -smoke               # 2s CI gate, validates output
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ofmf/internal/core"
	"ofmf/internal/odata"
	"ofmf/internal/service"
)

// classResult aggregates one route class's outcomes.
type classResult struct {
	Requests  int     `json:"Requests"`
	Errors    int     `json:"Errors"`
	RPS       float64 `json:"RPS"`
	P50Micros float64 `json:"P50Micros"`
	P99Micros float64 `json:"P99Micros"`
	P999Mics  float64 `json:"P999Micros"`
}

// eventsResult summarizes the event-plane side of an events-mix run.
type eventsResult struct {
	Subscriptions int     `json:"Subscriptions"` // registered webhook subscriptions
	Matching      int     `json:"Matching"`      // subscriptions whose filter the run's events match
	SSEConns      int     `json:"SSEConns"`      // open SSE streams
	WebhookPosts  int64   `json:"WebhookPosts"`  // POSTs received by the counting sink
	SSEFrames     int64   `json:"SSEFrames"`     // data frames drained across streams
	WebhookRPS    float64 `json:"WebhookRPS"`
}

// entry is one appended BENCH_serving.json record.
type entry struct {
	Date       string                 `json:"date"`
	GOOS       string                 `json:"goos"`
	GOARCH     string                 `json:"goarch"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	Target     string                 `json:"target"`
	Mix        string                 `json:"mix,omitempty"`
	Shards     int                    `json:"shards,omitempty"`
	DurationS  float64                `json:"duration_s"`
	Conns      int                    `json:"conns"`
	Classes    map[string]classResult `json:"classes"`
	Events     *eventsResult          `json:"events,omitempty"`
}

// benchFile is the whole BENCH_serving.json document. FleetChurn is
// owned by cmd/ofmfchaos; it passes through untouched so appending a
// serving entry never drops the chaos-harness section.
type benchFile struct {
	Comment    string          `json:"comment"`
	Entries    []entry         `json:"entries"`
	FleetChurn json.RawMessage `json:"fleet_churn,omitempty"`
}

// sample is one timed request.
type sample struct {
	class string
	d     time.Duration
	err   bool
}

func main() {
	var (
		url      = flag.String("url", "", "target OFMF base URL; empty boots the in-process testbed")
		duration = flag.Duration("duration", 10*time.Second, "measurement window")
		conns    = flag.Int("conns", 8, "concurrent closed-loop connections")
		readW    = flag.Int("read", 80, "read (GET) weight in the workload mix")
		writeW   = flag.Int("write", 15, "write (PATCH) weight in the workload mix")
		compW    = flag.Int("compose", 5, "compose/decompose weight in the workload mix")
		mix      = flag.String("mix", "", `named class mix overriding -read/-write/-compose: "read-heavy" (80/15/5) or "write-heavy" (20/70/10)`)
		nodes    = flag.Int("nodes", 8, "in-process testbed node count")
		shards   = flag.Int("shards", 1, "in-process testbed store shard count (see ofmf -shards); ignored with -url")
		out      = flag.String("out", "BENCH_serving.json", "results file to append to; empty skips the file")
		smoke    = flag.Bool("smoke", false, "CI smoke mode: cap the window at 2s and validate the results")
		seed     = flag.Int64("seed", 1, "workload RNG seed")
		subs     = flag.Int("subs", 64, "webhook subscriptions registered by -mix events (1 in 8 matches the run's traffic)")
		sseConns = flag.Int("sse", 4, "SSE streams drained by -mix events")
	)
	flag.Parse()

	eventPlane := false
	switch *mix {
	case "":
	case "read-heavy":
		*readW, *writeW, *compW = 80, 15, 5
	case "write-heavy":
		*readW, *writeW, *compW = 20, 70, 10
	case "events":
		// Write-heavy churn: every PATCH publishes a ResourceUpdated
		// event, which is what the subscriptions and SSE streams consume.
		*readW, *writeW, *compW = 20, 70, 10
		eventPlane = true
	default:
		fatal("ofmfload: unknown -mix %q (want read-heavy, write-heavy or events)", *mix)
	}
	if *readW+*writeW+*compW <= 0 {
		fatal("ofmfload: workload mix weights sum to zero")
	}
	if *smoke && *duration > 2*time.Second {
		*duration = 2 * time.Second
	}

	base := *url
	target := base
	if base == "" {
		f, err := core.New(core.Config{Nodes: *nodes, Service: service.Config{StoreShards: *shards}})
		if err != nil {
			fatal("ofmfload: testbed: %v", err)
		}
		defer f.Close()
		srv := httptest.NewServer(f.Handler())
		defer srv.Close()
		base = srv.URL
		target = "in-process"
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConnsPerHost: *conns,
		MaxConnsPerHost:     0,
	}}

	readTargets, writeTargets, err := discover(client, base)
	if err != nil {
		fatal("ofmfload: discover targets: %v", err)
	}
	if *writeW > 0 && len(writeTargets) == 0 {
		fatal("ofmfload: no computer system to PATCH; rerun with -write 0")
	}

	var plane *eventPlaneState
	if eventPlane {
		plane, err = startEventPlane(client, base, *subs, *sseConns)
		if err != nil {
			fatal("ofmfload: event plane: %v", err)
		}
		defer plane.stop()
	}

	// Closed loop: each worker issues one request at a time, choosing the
	// class by weight, and records every sample.
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		samples []sample
	)
	deadline := time.Now().Add(*duration)
	start := time.Now()
	for w := 0; w < *conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			var local []sample
			for time.Now().Before(deadline) {
				pick := rng.Intn(*readW + *writeW + *compW)
				switch {
				case pick < *readW:
					local = append(local, doRead(client, rng, readTargets))
				case pick < *readW+*writeW:
					local = append(local, doWrite(client, rng, base, writeTargets, w))
				default:
					local = append(local, doCompose(client, base, w)...)
				}
			}
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	classes := summarize(samples, elapsed)
	report(os.Stdout, target, elapsed, *conns, classes)

	e := entry{
		Date:       time.Now().Format("2006-01-02"),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Target:     target,
		Mix:        *mix,
		Shards:     *shards,
		DurationS:  elapsed.Seconds(),
		Conns:      *conns,
		Classes:    classes,
	}
	if plane != nil {
		e.Events = plane.result(elapsed)
		fmt.Printf("events: %d subs (%d matching), %d sse conns, %d webhook posts (%.1f/s), %d sse frames\n",
			e.Events.Subscriptions, e.Events.Matching, e.Events.SSEConns,
			e.Events.WebhookPosts, e.Events.WebhookRPS, e.Events.SSEFrames)
	}
	if *out != "" {
		if err := appendEntry(*out, e); err != nil {
			fatal("ofmfload: %v", err)
		}
		fmt.Printf("appended entry to %s\n", *out)
	}
	if *smoke {
		if err := validate(e, *readW, *writeW, *compW, *out); err != nil {
			fatal("ofmfload: smoke validation: %v", err)
		}
		fmt.Println("smoke ok")
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// discover collects GET targets and the PATCH targets from the live
// tree. Every computer system is a write target — spreading PATCHes
// across systems is what lets a sharded store absorb the write class in
// parallel instead of serializing them on one resource's shard.
func discover(client *http.Client, base string) (reads, writes []string, err error) {
	for _, path := range []odata.ID{service.RootURI, service.SystemsURI, service.FabricsURI, service.ChassisURI} {
		reads = append(reads, base+string(path))
	}
	var systems struct {
		Members []odata.Ref `json:"Members"`
	}
	if err := getJSON(client, base+string(service.SystemsURI), &systems); err != nil {
		return nil, nil, err
	}
	for _, m := range systems.Members {
		reads = append(reads, base+string(m.ODataID))
		writes = append(writes, string(m.ODataID))
	}
	return reads, writes, nil
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// timed issues req and drains the response, classifying 5xx and transport
// failures as errors (4xx are the workload's own fault and count too).
func timed(client *http.Client, class string, req *http.Request) sample {
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return sample{class: class, d: time.Since(start), err: true}
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return sample{class: class, d: time.Since(start), err: resp.StatusCode >= 400}
}

func doRead(client *http.Client, rng *rand.Rand, targets []string) sample {
	req, _ := http.NewRequest(http.MethodGet, targets[rng.Intn(len(targets))], nil)
	return timed(client, "read", req)
}

func doWrite(client *http.Client, rng *rand.Rand, base string, targets []string, w int) sample {
	body := fmt.Sprintf(`{"Oem": {"OFMFLoad": {"Worker": %d, "Seq": %d}}}`, w, rng.Int63())
	req, _ := http.NewRequest(http.MethodPatch, base+targets[rng.Intn(len(targets))], bytes.NewReader([]byte(body)))
	req.Header.Set("Content-Type", "application/json")
	return timed(client, "write", req)
}

// doCompose composes a minimal one-core system and immediately decomposes
// it; both round-trips are samples of the compose class.
func doCompose(client *http.Client, base string, w int) []sample {
	body := fmt.Sprintf(`{"Name": "load-w%d-%d", "Cores": 1}`, w, time.Now().UnixNano())
	req, _ := http.NewRequest(http.MethodPost, base+"/composer/v1/Compose", bytes.NewReader([]byte(body)))
	req.Header.Set("Content-Type", "application/json")

	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return []sample{{class: "compose", d: time.Since(start), err: true}}
	}
	var comp struct {
		ID string `json:"Id"`
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	composeSample := sample{class: "compose", d: time.Since(start), err: resp.StatusCode >= 400}
	if composeSample.err || json.Unmarshal(data, &comp) != nil || comp.ID == "" {
		composeSample.err = true
		return []sample{composeSample}
	}
	del, _ := http.NewRequest(http.MethodDelete, base+"/composer/v1/Compositions/"+comp.ID, nil)
	return []sample{composeSample, timed(client, "compose", del)}
}

// summarize folds samples into per-class percentiles and rates.
func summarize(samples []sample, elapsed time.Duration) map[string]classResult {
	byClass := map[string][]time.Duration{}
	errs := map[string]int{}
	for _, s := range samples {
		byClass[s.class] = append(byClass[s.class], s.d)
		if s.err {
			errs[s.class]++
		}
	}
	out := make(map[string]classResult, len(byClass))
	for class, ds := range byClass {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		out[class] = classResult{
			Requests:  len(ds),
			Errors:    errs[class],
			RPS:       float64(len(ds)) / elapsed.Seconds(),
			P50Micros: micros(percentile(ds, 0.50)),
			P99Micros: micros(percentile(ds, 0.99)),
			P999Mics:  micros(percentile(ds, 0.999)),
		}
	}
	return out
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func report(w io.Writer, target string, elapsed time.Duration, conns int, classes map[string]classResult) {
	fmt.Fprintf(w, "target %s, %d conns, %.1fs\n", target, conns, elapsed.Seconds())
	fmt.Fprintf(w, "%-10s %10s %8s %12s %12s %12s %12s\n",
		"class", "requests", "errors", "rps", "p50(µs)", "p99(µs)", "p999(µs)")
	order := []string{"read", "write", "compose"}
	for _, class := range order {
		c, ok := classes[class]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "%-10s %10d %8d %12.1f %12.1f %12.1f %12.1f\n",
			class, c.Requests, c.Errors, c.RPS, c.P50Micros, c.P99Micros, c.P999Mics)
	}
}

// eventPlaneState is the -mix events harness: a local webhook sink
// counting bus deliveries, the registered subscriptions, and SSE drain
// goroutines counting frames.
type eventPlaneState struct {
	sinkSrv      *httptest.Server
	webhookPosts atomic.Int64
	sseFrames    atomic.Int64
	subs         int
	matching     int
	sseConns     int
	cancel       context.CancelFunc
	wg           sync.WaitGroup
}

// startEventPlane registers subs webhook subscriptions against a local
// counting sink and opens sseConns draining SSE streams. One in eight
// subscriptions is filtered to ResourceUpdated (the event type the
// write mix actually publishes); the rest listen for Alert, which never
// fires — they exist to prove fan-out cost tracks matching subscribers,
// not the subscription count. One SSE stream exercises the
// comma-separated multi-type filter.
func startEventPlane(client *http.Client, base string, subs, sseConns int) (*eventPlaneState, error) {
	p := &eventPlaneState{subs: subs, sseConns: sseConns}
	p.sinkSrv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		p.webhookPosts.Add(1)
		w.WriteHeader(http.StatusNoContent)
	}))
	for i := 0; i < subs; i++ {
		types := []string{"Alert"}
		if i%8 == 0 {
			types = []string{"ResourceUpdated"}
			p.matching++
		}
		body, _ := json.Marshal(map[string]any{
			"Destination": p.sinkSrv.URL,
			"Protocol":    "Redfish",
			"Context":     fmt.Sprintf("ofmfload-%d", i),
			"EventTypes":  types,
		})
		req, _ := http.NewRequest(http.MethodPost, base+string(service.SubscriptionsURI), bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			p.sinkSrv.Close()
			return nil, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			p.sinkSrv.Close()
			return nil, fmt.Errorf("subscription %d: %s", i, resp.Status)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	p.cancel = cancel
	for i := 0; i < sseConns; i++ {
		uri := base + string(service.SSEURI)
		if i == 0 {
			uri += "?EventType=ResourceUpdated,ResourceAdded"
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, uri, nil)
		if err != nil {
			cancel()
			p.sinkSrv.Close()
			return nil, err
		}
		resp, err := client.Do(req)
		if err != nil {
			cancel()
			p.sinkSrv.Close()
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			cancel()
			p.sinkSrv.Close()
			return nil, fmt.Errorf("sse stream %d: %s", i, resp.Status)
		}
		p.wg.Add(1)
		go func(body io.ReadCloser) {
			defer p.wg.Done()
			defer body.Close()
			rd := bufio.NewReader(body)
			for {
				line, err := rd.ReadString('\n')
				if err != nil {
					return
				}
				if strings.HasPrefix(line, "data: ") {
					p.sseFrames.Add(1)
				}
			}
		}(resp.Body)
	}
	return p, nil
}

func (p *eventPlaneState) result(elapsed time.Duration) *eventsResult {
	posts := p.webhookPosts.Load()
	return &eventsResult{
		Subscriptions: p.subs,
		Matching:      p.matching,
		SSEConns:      p.sseConns,
		WebhookPosts:  posts,
		SSEFrames:     p.sseFrames.Load(),
		WebhookRPS:    float64(posts) / elapsed.Seconds(),
	}
}

func (p *eventPlaneState) stop() {
	p.cancel()
	p.wg.Wait()
	p.sinkSrv.Close()
}

// appendEntry loads (or creates) the results file and appends e.
func appendEntry(path string, e entry) error {
	doc := benchFile{
		Comment: "OFMF serving-path latency under mixed load. Regenerate with: go run ./cmd/ofmfload",
	}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	doc.Entries = append(doc.Entries, e)
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// validate is the -smoke gate: every exercised class produced traffic
// with sane percentiles, nothing errored wholesale, and the results file
// round-trips as JSON.
func validate(e entry, readW, writeW, compW int, out string) error {
	check := func(class string, weight int) error {
		if weight == 0 {
			return nil
		}
		c, ok := e.Classes[class]
		if !ok || c.Requests == 0 {
			return fmt.Errorf("class %s saw no traffic", class)
		}
		if c.Errors == c.Requests {
			return fmt.Errorf("class %s: every request failed", class)
		}
		if c.P99Micros <= 0 || c.P50Micros > c.P99Micros || c.P99Micros > c.P999Mics {
			return fmt.Errorf("class %s: implausible percentiles p50=%.1f p99=%.1f p999=%.1f",
				class, c.P50Micros, c.P99Micros, c.P999Mics)
		}
		return nil
	}
	for class, weight := range map[string]int{"read": readW, "write": writeW, "compose": compW} {
		if err := check(class, weight); err != nil {
			return err
		}
	}
	if e.Events != nil {
		if e.Events.WebhookPosts == 0 {
			return fmt.Errorf("events mix: the webhook sink received no POSTs")
		}
		if e.Events.SSEFrames == 0 {
			return fmt.Errorf("events mix: no SSE frames were drained")
		}
	}
	if out != "" {
		data, err := os.ReadFile(out)
		if err != nil {
			return err
		}
		var doc benchFile
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("results file does not round-trip: %w", err)
		}
		if len(doc.Entries) == 0 {
			return fmt.Errorf("results file has no entries")
		}
	}
	return nil
}

// Command ofmf-agent runs a standalone OFMF Agent: it registers with a
// remote OFMF over HTTP, publishes the resource subtree of its emulated
// hardware, serves the ops endpoint the OFMF forwards fabric mutations
// to, and pushes hardware events upward — the right-hand column of the
// paper's architecture, as its own process.
//
// The ops server is instrumented like the OFMF itself: structured slog
// logging (-log-level), /metrics exposition (-metrics), /debug/pprof
// profiling (-pprof), and per-request X-Request-Id tracing.
//
// Usage:
//
//	ofmf-agent -ofmf http://localhost:8080 -kind cxl   -listen :9001
//	ofmf-agent -ofmf http://localhost:8080 -kind nvme  -listen :9002
//	ofmf-agent -ofmf http://localhost:8080 -kind fabric -listen :9003
//	ofmf-agent -ofmf http://localhost:8080 -kind gpu   -listen :9004
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"ofmf/internal/agent"
	"ofmf/internal/agent/cxlagent"
	"ofmf/internal/agent/fabagent"
	"ofmf/internal/agent/gpuagent"
	"ofmf/internal/agent/nvmeagent"
	"ofmf/internal/emul/cxlsim"
	"ofmf/internal/emul/fabsim"
	"ofmf/internal/emul/gpusim"
	"ofmf/internal/emul/nvmesim"
	"ofmf/internal/obsv"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
)

func main() {
	var (
		ofmfURL     = flag.String("ofmf", "http://localhost:8080", "OFMF base URL")
		kind        = flag.String("kind", "cxl", "agent kind: cxl, nvme, fabric, gpu")
		listen      = flag.String("listen", ":9001", "ops server listen address")
		name        = flag.String("name", "", "fabric name (defaults per kind)")
		nodes       = flag.Int("nodes", 8, "emulated host attach points")
		capacity    = flag.Int64("capacity", 0, "emulated capacity (MiB for cxl, bytes for nvme)")
		token       = flag.String("token", "", "X-Auth-Token for an authenticated OFMF")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, error")
		withMetrics = flag.Bool("metrics", true, "expose Prometheus-format metrics at /metrics")
		withPprof   = flag.Bool("pprof", false, "expose Go profiling at /debug/pprof")
	)
	flag.Parse()

	level, err := obsv.ParseLevel(*logLevel)
	if err != nil {
		slog.Error("ofmf-agent: bad -log-level", "err", err)
		os.Exit(1)
	}
	logger := obsv.NewLogger(os.Stderr, level)
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}
	must := func(err error) {
		if err != nil {
			fatal("ofmf-agent: setup failed", err)
		}
	}

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal("ofmf-agent: listen failed", err)
	}
	callback := "http://" + lis.Addr().String()
	remote := &agent.Remote{BaseURL: *ofmfURL, CallbackURL: callback, Token: *token}

	var start func() error
	var sourceURI func() odata.ID
	switch *kind {
	case "cxl":
		app := cxlsim.New()
		capMiB := *capacity
		if capMiB <= 0 {
			capMiB = 256 * 1024
		}
		for i := 0; i < 4; i++ {
			must(app.AddDevice(fmt.Sprintf("dev%d", i), capMiB/4, "DRAM"))
		}
		for i := 0; i < *nodes; i++ {
			must(app.AddPort(fmt.Sprintf("node%03d", i+1)))
		}
		fab := pick(*name, "CXL")
		ag := cxlagent.New(remote, app, fab, fab+"MemoryAppliance")
		start = ag.Start
		sourceURI = ag.SourceURI
	case "nvme":
		target := nvmesim.New()
		capBytes := *capacity
		if capBytes <= 0 {
			capBytes = 16 << 40
		}
		must(target.AddPool("pool0", capBytes))
		fab := pick(*name, "NVMe")
		ag := nvmeagent.New(remote, target, fab, "JBOF1")
		for i := 0; i < *nodes; i++ {
			ag.RegisterHost(fmt.Sprintf("node%03d", i+1))
		}
		start = ag.Start
		sourceURI = ag.SourceURI
	case "fabric":
		fabric := fabsim.New()
		if _, err := fabsim.BuildFatTree(fabric, "port-", 2, 2, (*nodes+1)/2, 100, 400); err != nil {
			fatal("ofmf-agent: topology build failed", err)
		}
		fab := pick(*name, "HPC")
		ag := fabagent.New(remote, fabric, fab, redfish.ProtocolInfiniBand)
		start = ag.Start
		sourceURI = ag.SourceURI
	case "gpu":
		pool := gpusim.New()
		for i := 0; i < 8; i++ {
			must(pool.AddGPU(fmt.Sprintf("gpu%d", i), "A100", 40960, 7))
		}
		fab := pick(*name, "PCIe")
		ag := gpuagent.New(remote, pool, fab, "GPUPool")
		start = ag.Start
		sourceURI = ag.SourceURI
	default:
		fatal("ofmf-agent: unknown -kind "+*kind, nil)
	}

	// Instrument the ops server with the same middleware stack as the
	// OFMF, so forwarded fabric mutations are traced end to end: the
	// request id minted by the OFMF's middleware propagates here through
	// the X-Request-Id header.
	metrics := obsv.NewMetrics(obsv.NewRegistry())
	// Self-telemetry for the management-path edge: how many events are
	// waiting for the OFMF to come back, and how many fell off the spool.
	metrics.Registry().GaugeFunc("ofmf_agent_event_backlog",
		"Events spooled awaiting delivery to the OFMF.",
		func() float64 { return float64(remote.EventBacklog()) })
	metrics.Registry().CounterFunc("ofmf_agent_events_dropped_total",
		"Events evicted from the full delivery spool.",
		func() float64 { return float64(remote.EventsDropped()) })
	// The agent keeps its own tracer: spans adopted from the OFMF's
	// traceparent header land in this ring, inspectable via the span dump
	// rendered by /metrics consumers or a debugger.
	tracer := obsv.NewTracer(metrics.Registry(), obsv.TracerOptions{Logger: logger})
	mux := http.NewServeMux()
	mux.Handle("/agent/ops", obsv.Middleware(remote.Handler(), metrics, logger,
		func(string) string { return "AgentOps" }, tracer))
	if *withMetrics {
		mux.Handle("/metrics", metrics.Registry().Handler())
	}
	if *withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	// Serve the ops endpoint before registering so forwarded operations
	// never race the registration.
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(lis); err != http.ErrServerClosed {
			fatal("ofmf-agent: ops server failed", err)
		}
	}()
	if err := start(); err != nil {
		fatal("ofmf-agent: agent start failed", err)
	}
	stopHeartbeat := agent.StartHeartbeat(remote, sourceURI(), 10*time.Second,
		agent.WithHeartbeatReport(func(consecutive int, err error) {
			if err != nil {
				logger.Warn("ofmf-agent: heartbeat failed", "consecutive", consecutive, "err", err)
			} else if consecutive == 0 {
				logger.Debug("ofmf-agent: heartbeat ok", "backlog", remote.EventBacklog())
			}
		}))
	defer stopHeartbeat()
	logger.Info("ofmf-agent: registered", "kind", *kind, "ofmf", *ofmfURL, "ops", callback)
	select {}
}

func pick(override, def string) string {
	if override != "" {
		return override
	}
	return def
}

// Command ofmf-agent runs a standalone OFMF Agent: it registers with a
// remote OFMF over HTTP, publishes the resource subtree of its emulated
// hardware, serves the ops endpoint the OFMF forwards fabric mutations
// to, and pushes hardware events upward — the right-hand column of the
// paper's architecture, as its own process.
//
// Usage:
//
//	ofmf-agent -ofmf http://localhost:8080 -kind cxl   -listen :9001
//	ofmf-agent -ofmf http://localhost:8080 -kind nvme  -listen :9002
//	ofmf-agent -ofmf http://localhost:8080 -kind fabric -listen :9003
//	ofmf-agent -ofmf http://localhost:8080 -kind gpu   -listen :9004
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"ofmf/internal/agent"
	"ofmf/internal/agent/cxlagent"
	"ofmf/internal/agent/fabagent"
	"ofmf/internal/agent/gpuagent"
	"ofmf/internal/agent/nvmeagent"
	"ofmf/internal/emul/cxlsim"
	"ofmf/internal/emul/fabsim"
	"ofmf/internal/emul/gpusim"
	"ofmf/internal/emul/nvmesim"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
)

func main() {
	var (
		ofmfURL  = flag.String("ofmf", "http://localhost:8080", "OFMF base URL")
		kind     = flag.String("kind", "cxl", "agent kind: cxl, nvme, fabric, gpu")
		listen   = flag.String("listen", ":9001", "ops server listen address")
		name     = flag.String("name", "", "fabric name (defaults per kind)")
		nodes    = flag.Int("nodes", 8, "emulated host attach points")
		capacity = flag.Int64("capacity", 0, "emulated capacity (MiB for cxl, bytes for nvme)")
		token    = flag.String("token", "", "X-Auth-Token for an authenticated OFMF")
	)
	flag.Parse()

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("ofmf-agent: listen: %v", err)
	}
	callback := "http://" + lis.Addr().String()
	remote := &agent.Remote{BaseURL: *ofmfURL, CallbackURL: callback, Token: *token}

	var start func() error
	var sourceURI func() odata.ID
	switch *kind {
	case "cxl":
		app := cxlsim.New()
		capMiB := *capacity
		if capMiB <= 0 {
			capMiB = 256 * 1024
		}
		for i := 0; i < 4; i++ {
			must(app.AddDevice(fmt.Sprintf("dev%d", i), capMiB/4, "DRAM"))
		}
		for i := 0; i < *nodes; i++ {
			must(app.AddPort(fmt.Sprintf("node%03d", i+1)))
		}
		fab := pick(*name, "CXL")
		ag := cxlagent.New(remote, app, fab, fab+"MemoryAppliance")
		start = ag.Start
		sourceURI = ag.SourceURI
	case "nvme":
		target := nvmesim.New()
		capBytes := *capacity
		if capBytes <= 0 {
			capBytes = 16 << 40
		}
		must(target.AddPool("pool0", capBytes))
		fab := pick(*name, "NVMe")
		ag := nvmeagent.New(remote, target, fab, "JBOF1")
		for i := 0; i < *nodes; i++ {
			ag.RegisterHost(fmt.Sprintf("node%03d", i+1))
		}
		start = ag.Start
		sourceURI = ag.SourceURI
	case "fabric":
		fabric := fabsim.New()
		if _, err := fabsim.BuildFatTree(fabric, "port-", 2, 2, (*nodes+1)/2, 100, 400); err != nil {
			log.Fatalf("ofmf-agent: topology: %v", err)
		}
		fab := pick(*name, "HPC")
		ag := fabagent.New(remote, fabric, fab, redfish.ProtocolInfiniBand)
		start = ag.Start
		sourceURI = ag.SourceURI
	case "gpu":
		pool := gpusim.New()
		for i := 0; i < 8; i++ {
			must(pool.AddGPU(fmt.Sprintf("gpu%d", i), "A100", 40960, 7))
		}
		fab := pick(*name, "PCIe")
		ag := gpuagent.New(remote, pool, fab, "GPUPool")
		start = ag.Start
		sourceURI = ag.SourceURI
	default:
		log.Fatalf("ofmf-agent: unknown kind %q", *kind)
	}

	// Serve the ops endpoint before registering so forwarded operations
	// never race the registration.
	srv := &http.Server{Handler: remote.Handler()}
	go func() {
		if err := srv.Serve(lis); err != http.ErrServerClosed {
			log.Fatalf("ofmf-agent: serve: %v", err)
		}
	}()
	if err := start(); err != nil {
		log.Fatalf("ofmf-agent: start: %v", err)
	}
	stopHeartbeat := agent.StartHeartbeat(remote, sourceURI(), 10*time.Second)
	defer stopHeartbeat()
	fmt.Printf("ofmf-agent: %s agent registered with %s, ops server on %s\n", *kind, *ofmfURL, callback)
	select {}
}

func pick(override, def string) string {
	if override != "" {
		return override
	}
	return def
}

func must(err error) {
	if err != nil {
		log.Fatalf("ofmf-agent: %v", err)
	}
}

package cluster

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestNewDefault(t *testing.T) {
	c := NewDefault(4)
	if c.Size() != 4 {
		t.Fatalf("size = %d", c.Size())
	}
	n, err := c.Node("node001")
	if err != nil {
		t.Fatal(err)
	}
	if n.Cores != DefaultCores || n.MemoryMiB != DefaultMemoryMiB || n.SSDBytes != DefaultSSDBytes {
		t.Errorf("node = %+v", n)
	}
	if _, err := c.Node("ghost"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("err = %v", err)
	}
}

func TestAllocateReleaseCycle(t *testing.T) {
	c := NewDefault(4)
	nodes, err := c.Allocate(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 || nodes[0] != "node001" || nodes[1] != "node002" {
		t.Fatalf("nodes = %v", nodes)
	}
	if free := c.FreeNodes(); len(free) != 2 {
		t.Errorf("free = %v", free)
	}
	if _, err := c.Allocate(3); !errors.Is(err, ErrTooFew) {
		t.Errorf("err = %v", err)
	}
	if err := c.Release(nodes); err != nil {
		t.Fatal(err)
	}
	if free := c.FreeNodes(); len(free) != 4 {
		t.Errorf("free = %v", free)
	}
}

func TestAllocateContiguityPreference(t *testing.T) {
	c := NewDefault(8)
	// Fragment: occupy 1,2 then 5.
	first, _ := c.Allocate(2) // 001,002
	mid, _ := c.Allocate(1)   // 003
	_ = mid
	if err := c.Release(first); err != nil {
		t.Fatal(err)
	}
	// Free: 001,002,004..008. A request for 3 should prefer 004-006 (contiguous)
	// over 001,002,004.
	got, err := c.Allocate(3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != "node004" || got[2] != "node006" {
		t.Errorf("allocation = %v", got)
	}
}

func TestAllocateFallsBackToFragmented(t *testing.T) {
	c := NewDefault(4)
	if _, err := c.Allocate(1); err != nil { // 001
		t.Fatal(err)
	}
	a2, _ := c.Allocate(1)                   // 002
	if _, err := c.Allocate(1); err != nil { // 003
		t.Fatal(err)
	}
	if err := c.Release(a2); err != nil { // free: 002, 004 — not contiguous
		t.Fatal(err)
	}
	got, err := c.Allocate(2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != "node002" || got[1] != "node004" {
		t.Errorf("allocation = %v", got)
	}
}

func TestDrainExcludesFromAllocation(t *testing.T) {
	c := NewDefault(3)
	if err := c.Drain("node002", "bad ssd"); err != nil {
		t.Fatal(err)
	}
	nodes, err := c.Allocate(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if n == "node002" {
			t.Error("drained node allocated")
		}
	}
	d := c.Drained()
	if len(d) != 1 || d[0] != "node002" {
		t.Errorf("drained = %v", d)
	}
	if err := c.Undrain("node002"); err != nil {
		t.Fatal(err)
	}
	if len(c.Drained()) != 0 {
		t.Error("undrain failed")
	}
	n, _ := c.Node("node002")
	if n.DrainReason != "" {
		t.Errorf("reason = %q", n.DrainReason)
	}
}

func TestPropertyAllocationConservation(t *testing.T) {
	f := func(sizes []uint8) bool {
		c := NewDefault(64)
		var held [][]string
		total := 0
		for _, s := range sizes {
			n := int(s)%8 + 1
			if total+n > 64 {
				break
			}
			nodes, err := c.Allocate(n)
			if err != nil {
				return false
			}
			held = append(held, nodes)
			total += n
		}
		if len(c.FreeNodes()) != 64-total {
			return false
		}
		for _, h := range held {
			if err := c.Release(h); err != nil {
				return false
			}
		}
		return len(c.FreeNodes()) == 64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Package cluster models the simulated HPC machine the evaluation runs
// on: named compute nodes with cores, memory and node-local SSDs, plus
// drain bookkeeping, mirroring the paper's production platform (dual-
// socket 56-core ThunderX2 nodes with 894 GiB XFS-formatted SSD
// partitions behind /dev/beeond_store).
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Sentinel errors.
var (
	ErrUnknownNode = errors.New("cluster: unknown node")
	ErrTooFew      = errors.New("cluster: not enough free nodes")
)

// Node is one compute node.
type Node struct {
	Name      string
	Cores     int
	MemoryMiB int64
	SSDBytes  int64

	Drained     bool
	DrainReason string
	Allocated   bool
}

// Cluster is a set of nodes.
type Cluster struct {
	mu     sync.Mutex
	nodes  []*Node
	byName map[string]*Node
}

// NodeName formats the canonical node name for index i (0-based).
func NodeName(i int) string { return fmt.Sprintf("node%03d", i+1) }

// New builds a homogeneous cluster of n nodes.
func New(n, cores int, memoryMiB, ssdBytes int64) *Cluster {
	c := &Cluster{byName: make(map[string]*Node, n)}
	for i := 0; i < n; i++ {
		node := &Node{Name: NodeName(i), Cores: cores, MemoryMiB: memoryMiB, SSDBytes: ssdBytes}
		c.nodes = append(c.nodes, node)
		c.byName[node.Name] = node
	}
	return c
}

// Paper-platform defaults: 56 cores (2×28 ThunderX2), 128 GiB, 894 GiB SSD.
const (
	DefaultCores     = 56
	DefaultMemoryMiB = 128 * 1024
	DefaultSSDBytes  = 894 << 30
)

// NewDefault builds a cluster of n paper-platform nodes.
func NewDefault(n int) *Cluster {
	return New(n, DefaultCores, DefaultMemoryMiB, DefaultSSDBytes)
}

// Size returns the total node count.
func (c *Cluster) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.nodes)
}

// Node returns a snapshot of the named node.
func (c *Cluster) Node(name string) (Node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.byName[name]
	if !ok {
		return Node{}, fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	return *n, nil
}

// Names returns all node names in order.
func (c *Cluster) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.Name
	}
	return out
}

// FreeNodes returns the names of nodes that are neither allocated nor
// drained, in name order.
func (c *Cluster) FreeNodes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for _, n := range c.nodes {
		if !n.Allocated && !n.Drained {
			out = append(out, n.Name)
		}
	}
	return out
}

// Allocate reserves count free nodes, preferring a contiguous run (Slurm's
// affinity for contiguous allocations) and falling back to the lowest free
// names. It returns the allocated names in order.
func (c *Cluster) Allocate(count int) ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	free := make([]int, 0, len(c.nodes))
	for i, n := range c.nodes {
		if !n.Allocated && !n.Drained {
			free = append(free, i)
		}
	}
	if len(free) < count {
		return nil, fmt.Errorf("%w: %d free, need %d", ErrTooFew, len(free), count)
	}
	// Look for a contiguous run of length count.
	start := -1
	run := 0
	for i := 1; i <= len(free); i++ {
		if i < len(free) && free[i] == free[i-1]+1 {
			run++
			continue
		}
		if run+1 >= count {
			start = free[i-1-run]
			break
		}
		run = 0
	}
	var chosen []int
	if start >= 0 {
		for i := start; len(chosen) < count; i++ {
			chosen = append(chosen, i)
		}
	} else {
		chosen = free[:count]
	}
	names := make([]string, count)
	for i, idx := range chosen {
		c.nodes[idx].Allocated = true
		names[i] = c.nodes[idx].Name
	}
	sort.Strings(names)
	return names, nil
}

// Release frees the named nodes.
func (c *Cluster) Release(names []string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, name := range names {
		n, ok := c.byName[name]
		if !ok {
			return fmt.Errorf("%w: %s", ErrUnknownNode, name)
		}
		n.Allocated = false
	}
	return nil
}

// Drain marks a node unavailable with a reason (the paper drains nodes on
// filesystem start-up failure for inspection).
func (c *Cluster) Drain(name, reason string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.byName[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	n.Drained = true
	n.DrainReason = reason
	return nil
}

// Undrain returns a drained node to service.
func (c *Cluster) Undrain(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.byName[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	n.Drained = false
	n.DrainReason = ""
	return nil
}

// Drained returns the names of drained nodes.
func (c *Cluster) Drained() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for _, n := range c.nodes {
		if n.Drained {
			out = append(out, n.Name)
		}
	}
	return out
}

package slurm

import (
	"testing"
)

// FuzzExpand exercises the hostlist parser: it must never panic, and any
// successfully expanded list must compress and re-expand to the same
// hosts.
func FuzzExpand(f *testing.F) {
	for _, seed := range []string{
		"node[001-003]",
		"node[001-002,005,007-008]",
		"node001,node002",
		"login,node[01-04]",
		"node[1-1]",
		"a[001-100],b[001-100]",
		"",
		"node[",
		"node]0[",
		"node[9-1]",
		"node[0a]",
		"n[0-2],m[3-4],plainhost",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, list string) {
		hosts, err := Expand(list)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if len(hosts) > 100000 {
			return // pathological ranges; skip round-trip cost
		}
		// Round-trip through Compress only for unique host sets.
		seen := make(map[string]bool, len(hosts))
		unique := true
		for _, h := range hosts {
			if h == "" || seen[h] {
				unique = false
				break
			}
			seen[h] = true
		}
		if !unique {
			return
		}
		back, err := Expand(Compress(hosts))
		if err != nil {
			t.Fatalf("re-expand failed for %q: %v", Compress(hosts), err)
		}
		if len(back) != len(hosts) {
			t.Fatalf("round trip %q: %d hosts -> %d", list, len(hosts), len(back))
		}
		for _, h := range back {
			if !seen[h] {
				t.Fatalf("round trip %q invented host %q", list, h)
			}
		}
	})
}

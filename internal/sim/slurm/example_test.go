package slurm_test

import (
	"fmt"

	"ofmf/internal/sim/slurm"
)

func ExampleCompress() {
	hosts := []string{"node001", "node002", "node003", "node007", "login"}
	fmt.Println(slurm.Compress(hosts))
	// Output: node[001-003,007],login
}

func ExampleExpand() {
	hosts, err := slurm.Expand("node[001-002,005]")
	if err != nil {
		panic(err)
	}
	for _, h := range hosts {
		fmt.Println(h)
	}
	// Output:
	// node001
	// node002
	// node005
}

func ExampleLowest() {
	// The paper assigns the Mgmtd/metadata role to the lowest node of the
	// allocation.
	fmt.Println(slurm.Lowest([]string{"node009", "node002", "node005"}))
	// Output: node002
}

package slurm

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Hostlist utilities implement the SLURM_NODELIST notation the paper's
// prolog scripts parse with the hostlist tool: "node[001-003,007]"
// expands to node001 node002 node003 node007.

var hostPattern = regexp.MustCompile(`^(\D*)(\d+)$`)

// maxHostlistExpansion bounds Expand so a malformed range cannot allocate
// unbounded memory; it comfortably exceeds any real machine's node count.
const maxHostlistExpansion = 1 << 20

// Compress renders a list of hostnames in hostlist notation. Hosts that
// do not end in digits pass through verbatim, comma-separated.
func Compress(hosts []string) string {
	type numbered struct {
		prefix string
		num    int
		width  int
	}
	byPrefix := make(map[string][]numbered)
	var plain []string
	var prefixOrder []string
	for _, h := range hosts {
		m := hostPattern.FindStringSubmatch(h)
		if m == nil {
			plain = append(plain, h)
			continue
		}
		n, err := strconv.Atoi(m[2])
		if err != nil {
			// Numeric suffix too large to treat as a range index; keep
			// the host verbatim.
			plain = append(plain, h)
			continue
		}
		key := m[1] + "/" + strconv.Itoa(len(m[2]))
		if _, ok := byPrefix[key]; !ok {
			prefixOrder = append(prefixOrder, key)
		}
		byPrefix[key] = append(byPrefix[key], numbered{prefix: m[1], num: n, width: len(m[2])})
	}
	var parts []string
	sort.Strings(prefixOrder)
	for _, key := range prefixOrder {
		group := byPrefix[key]
		sort.Slice(group, func(i, j int) bool { return group[i].num < group[j].num })
		var ranges []string
		for i := 0; i < len(group); {
			j := i
			for j+1 < len(group) && group[j+1].num == group[j].num+1 {
				j++
			}
			lo := fmt.Sprintf("%0*d", group[i].width, group[i].num)
			if j == i {
				ranges = append(ranges, lo)
			} else {
				hi := fmt.Sprintf("%0*d", group[j].width, group[j].num)
				ranges = append(ranges, lo+"-"+hi)
			}
			i = j + 1
		}
		prefix := group[0].prefix
		if len(ranges) == 1 && !strings.Contains(ranges[0], "-") {
			parts = append(parts, prefix+ranges[0])
		} else {
			parts = append(parts, prefix+"["+strings.Join(ranges, ",")+"]")
		}
	}
	parts = append(parts, plain...)
	return strings.Join(parts, ",")
}

// Expand parses hostlist notation back into individual hostnames.
func Expand(list string) ([]string, error) {
	var out []string
	rest := list
	for rest != "" {
		var token string
		if i := strings.Index(rest, "["); i >= 0 && (strings.Index(rest, ",") == -1 || strings.Index(rest, ",") > i) {
			// Token with a bracketed range set.
			j := strings.Index(rest, "]")
			if j < i {
				return nil, fmt.Errorf("slurm: unbalanced brackets in %q", list)
			}
			token = rest[:j+1]
			rest = strings.TrimPrefix(rest[j+1:], ",")
		} else if i := strings.Index(rest, ","); i >= 0 {
			token = rest[:i]
			rest = rest[i+1:]
		} else {
			token = rest
			rest = ""
		}
		hosts, err := expandToken(token)
		if err != nil {
			return nil, err
		}
		out = append(out, hosts...)
	}
	return out, nil
}

func expandToken(token string) ([]string, error) {
	open := strings.Index(token, "[")
	if open < 0 {
		if token == "" {
			return nil, nil
		}
		return []string{token}, nil
	}
	closeIdx := strings.LastIndex(token, "]")
	if closeIdx < open {
		return nil, fmt.Errorf("slurm: unbalanced brackets in %q", token)
	}
	prefix := token[:open]
	spec := token[open+1 : closeIdx]
	var out []string
	for _, r := range strings.Split(spec, ",") {
		bounds := strings.SplitN(r, "-", 2)
		lo, err := strconv.Atoi(bounds[0])
		if err != nil {
			return nil, fmt.Errorf("slurm: bad range %q in %q", r, token)
		}
		hi := lo
		width := len(bounds[0])
		if len(bounds) == 2 {
			hi, err = strconv.Atoi(bounds[1])
			if err != nil {
				return nil, fmt.Errorf("slurm: bad range %q in %q", r, token)
			}
		}
		if hi < lo {
			return nil, fmt.Errorf("slurm: inverted range %q in %q", r, token)
		}
		if hi-lo+1 > maxHostlistExpansion-len(out) {
			return nil, fmt.Errorf("slurm: hostlist %q expands beyond %d hosts", token, maxHostlistExpansion)
		}
		for n := lo; n <= hi; n++ {
			out = append(out, fmt.Sprintf("%s%0*d", prefix, width, n))
		}
	}
	return out, nil
}

// Lowest returns the lexically lowest host in the list — the node the
// paper's scripts pick as the combined Mgmtd/metadata server.
func Lowest(hosts []string) string {
	if len(hosts) == 0 {
		return ""
	}
	low := hosts[0]
	for _, h := range hosts[1:] {
		if h < low {
			low = h
		}
	}
	return low
}

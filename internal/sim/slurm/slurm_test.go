package slurm

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"ofmf/internal/sim/cluster"
	"ofmf/internal/sim/des"
)

func TestHostlistCompress(t *testing.T) {
	cases := []struct {
		in   []string
		want string
	}{
		{[]string{"node001", "node002", "node003"}, "node[001-003]"},
		{[]string{"node001", "node003"}, "node[001,003]"},
		{[]string{"node001"}, "node001"},
		{[]string{"node001", "node002", "node005", "node007", "node008"}, "node[001-002,005,007-008]"},
		{[]string{"login"}, "login"},
	}
	for _, c := range cases {
		if got := Compress(c.in); got != c.want {
			t.Errorf("Compress(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestHostlistExpand(t *testing.T) {
	got, err := Expand("node[001-003,007]")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"node001", "node002", "node003", "node007"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got[%d] = %q", i, got[i])
		}
	}
}

func TestHostlistExpandErrors(t *testing.T) {
	for _, bad := range []string{"node[001", "node[0a-3]", "node[005-002]"} {
		if _, err := Expand(bad); err == nil {
			t.Errorf("Expand(%q) succeeded", bad)
		}
	}
}

func TestHostlistRoundTrip(t *testing.T) {
	f := func(picks []uint8) bool {
		seen := make(map[string]bool)
		var hosts []string
		for _, p := range picks {
			h := fmt.Sprintf("node%03d", int(p)%200+1)
			if !seen[h] {
				seen[h] = true
				hosts = append(hosts, h)
			}
		}
		if len(hosts) == 0 {
			return true
		}
		expanded, err := Expand(Compress(hosts))
		if err != nil {
			return false
		}
		if len(expanded) != len(hosts) {
			return false
		}
		back := make(map[string]bool)
		for _, h := range expanded {
			back[h] = true
		}
		for _, h := range hosts {
			if !back[h] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLowest(t *testing.T) {
	if got := Lowest([]string{"node005", "node002", "node009"}); got != "node002" {
		t.Errorf("Lowest = %q", got)
	}
	if got := Lowest(nil); got != "" {
		t.Errorf("Lowest(nil) = %q", got)
	}
}

func newManager(nodes int) (*des.Sim, *cluster.Cluster, *Manager) {
	sim := &des.Sim{}
	cl := cluster.NewDefault(nodes)
	return sim, cl, NewManager(sim, cl, des.NewRNG(1))
}

func TestJobLifecycle(t *testing.T) {
	sim, _, m := newManager(4)
	m.Prolog = func(ctx JobContext, node string, rng *des.RNG) (float64, error) { return 2, nil }
	m.Epilog = func(ctx JobContext, node string, rng *des.RNG) (float64, error) { return 3, nil }
	id, err := m.Submit(JobSpec{
		Nodes:       2,
		Constraints: []string{"beeond"},
		Run:         func(ctx JobContext, rng *des.RNG) float64 { return 100 },
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	rec, err := m.Record(id)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateCompleted {
		t.Fatalf("state = %s (%s)", rec.State, rec.FailureReason)
	}
	if rec.StartTime != 2 || rec.EndTime != 102 || rec.ReleaseTime != 105 {
		t.Errorf("times = %f/%f/%f", rec.StartTime, rec.EndTime, rec.ReleaseTime)
	}
	if rec.RunSeconds() != 100 {
		t.Errorf("run = %f", rec.RunSeconds())
	}
	if rec.NodeList != "node[001-002]" {
		t.Errorf("nodelist = %q", rec.NodeList)
	}
}

func TestConstraintVisibleToHooks(t *testing.T) {
	sim, _, m := newManager(2)
	sawConstraint := false
	m.Prolog = func(ctx JobContext, node string, rng *des.RNG) (float64, error) {
		if ctx.HasConstraint("beeond") {
			sawConstraint = true
		}
		return 0, nil
	}
	if _, err := m.Submit(JobSpec{Nodes: 1, Constraints: []string{"beeond"}}); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if !sawConstraint {
		t.Error("constraint not visible in prolog")
	}
}

func TestFIFOQueueing(t *testing.T) {
	sim, _, m := newManager(2)
	run := func(d float64) RunFunc { return func(JobContext, *des.RNG) float64 { return d } }
	j1, _ := m.Submit(JobSpec{Nodes: 2, Run: run(10)})
	j2, _ := m.Submit(JobSpec{Nodes: 2, Run: run(10)})
	sim.Run()
	r1, _ := m.Record(j1)
	r2, _ := m.Record(j2)
	if r1.State != StateCompleted || r2.State != StateCompleted {
		t.Fatalf("states = %s, %s", r1.State, r2.State)
	}
	if r2.StartTime < r1.ReleaseTime {
		t.Errorf("j2 started at %f before j1 released at %f", r2.StartTime, r1.ReleaseTime)
	}
}

func TestContiguousAllocationPreferred(t *testing.T) {
	sim := &des.Sim{}
	cl := cluster.NewDefault(8)
	m := NewManager(sim, cl, des.NewRNG(1))
	// Occupy node001-node002 via an allocation we hold.
	if _, err := cl.Allocate(2); err != nil {
		t.Fatal(err)
	}
	id, _ := m.Submit(JobSpec{Nodes: 3, Run: func(JobContext, *des.RNG) float64 { return 1 }})
	sim.Run()
	rec, _ := m.Record(id)
	if rec.NodeList != "node[003-005]" {
		t.Errorf("nodelist = %q", rec.NodeList)
	}
}

func TestPrologFailureDrainsNode(t *testing.T) {
	sim, cl, m := newManager(4)
	m.Prolog = func(ctx JobContext, node string, rng *des.RNG) (float64, error) {
		if node == "node002" {
			return 1, errors.New("udev rule failed: /dev/beeond_store missing")
		}
		return 1, nil
	}
	id, _ := m.Submit(JobSpec{Nodes: 3, Run: func(JobContext, *des.RNG) float64 { return 100 }})
	sim.Run()
	rec, _ := m.Record(id)
	if rec.State != StateFailed {
		t.Fatalf("state = %s", rec.State)
	}
	drained := cl.Drained()
	if len(drained) != 1 || drained[0] != "node002" {
		t.Errorf("drained = %v", drained)
	}
	// Remaining nodes were released.
	if free := len(cl.FreeNodes()); free != 3 {
		t.Errorf("free = %d", free)
	}
}

func TestJobTooLarge(t *testing.T) {
	_, _, m := newManager(2)
	if _, err := m.Submit(JobSpec{Nodes: 3}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v", err)
	}
}

func TestParallelPrologTakesMax(t *testing.T) {
	sim, _, m := newManager(4)
	durs := map[string]float64{"node001": 1, "node002": 5, "node003": 2, "node004": 1}
	m.Prolog = func(ctx JobContext, node string, rng *des.RNG) (float64, error) {
		return durs[node], nil
	}
	id, _ := m.Submit(JobSpec{Nodes: 4, Run: func(JobContext, *des.RNG) float64 { return 0 }})
	sim.Run()
	rec, _ := m.Record(id)
	if rec.PrologSeconds != 5 {
		t.Errorf("prolog = %f, want max 5", rec.PrologSeconds)
	}
	if rec.StartTime != 5 {
		t.Errorf("start = %f", rec.StartTime)
	}
}

func TestDrainedNodesSkipped(t *testing.T) {
	sim := &des.Sim{}
	cl := cluster.NewDefault(3)
	if err := cl.Drain("node001", "maintenance"); err != nil {
		t.Fatal(err)
	}
	m := NewManager(sim, cl, des.NewRNG(1))
	id, _ := m.Submit(JobSpec{Nodes: 2, Run: func(JobContext, *des.RNG) float64 { return 1 }})
	sim.Run()
	rec, _ := m.Record(id)
	if rec.NodeList != "node[002-003]" {
		t.Errorf("nodelist = %q", rec.NodeList)
	}
}

// Package slurm simulates the workload-manager behaviours the paper's
// BeeOND integration relies on: FIFO allocation with contiguous-node
// affinity, constraint gating (the "beeond" constraint toggling the
// private filesystem), parallel per-node prolog and epilog hooks, error
// handling that drains failing nodes, and SLURM_NODELIST hostlist
// notation. Jobs run on the des kernel so experiments are deterministic.
package slurm

import (
	"errors"
	"fmt"
	"sort"

	"ofmf/internal/sim/cluster"
	"ofmf/internal/sim/des"
)

// Sentinel errors.
var (
	ErrTooLarge = errors.New("slurm: job larger than the partition")
)

// JobState tracks a job through its lifecycle.
type JobState int

// Job states.
const (
	StatePending JobState = iota
	StateConfiguring
	StateRunning
	StateCompleting
	StateCompleted
	StateFailed
)

// String names the state like sinfo does.
func (s JobState) String() string {
	switch s {
	case StatePending:
		return "PENDING"
	case StateConfiguring:
		return "CONFIGURING"
	case StateRunning:
		return "RUNNING"
	case StateCompleting:
		return "COMPLETING"
	case StateCompleted:
		return "COMPLETED"
	case StateFailed:
		return "FAILED"
	default:
		return fmt.Sprintf("JobState(%d)", int(s))
	}
}

// JobContext is what prolog/epilog hooks and the run function see — the
// analogue of the Slurm environment (SLURM_JOB_ID, SLURM_NODELIST,
// SLURM_JOB_CONSTRAINTS).
type JobContext struct {
	JobID       int
	NodeList    string // compressed hostlist
	Nodes       []string
	Constraints []string
}

// HasConstraint reports whether the job requested the named constraint
// (the paper checks SLURM_JOB_CONSTRAINTS for "beeond").
func (c JobContext) HasConstraint(name string) bool {
	for _, con := range c.Constraints {
		if con == name {
			return true
		}
	}
	return false
}

// NodeHook runs on one node during prolog or epilog; it returns the
// simulated duration and an error. Hooks run in parallel across the
// allocation, as Slurm prolog/epilog scripts do.
type NodeHook func(ctx JobContext, node string, rng *des.RNG) (seconds float64, err error)

// RunFunc computes the job's running time once the allocation is
// configured.
type RunFunc func(ctx JobContext, rng *des.RNG) (seconds float64)

// JobSpec describes a submission.
type JobSpec struct {
	Nodes       int
	Constraints []string
	Run         RunFunc
}

// JobRecord is the accounting record of one job.
type JobRecord struct {
	ID          int
	State       JobState
	Nodes       []string
	NodeList    string
	Constraints []string

	SubmitTime    float64
	StartTime     float64 // after prolog
	EndTime       float64 // end of compute
	ReleaseTime   float64 // after epilog
	PrologSeconds float64
	EpilogSeconds float64
	FailureReason string
}

// RunSeconds is the job's measured compute duration.
func (r JobRecord) RunSeconds() float64 { return r.EndTime - r.StartTime }

// Manager is the simulated workload manager.
type Manager struct {
	sim     *des.Sim
	cluster *cluster.Cluster
	rng     *des.RNG

	// Prolog and Epilog run on every allocated node in parallel; nil
	// hooks take zero time.
	Prolog NodeHook
	Epilog NodeHook

	nextID  int
	queue   []*queued
	records map[int]*JobRecord
}

type queued struct {
	id   int
	spec JobSpec
}

// NewManager creates a manager over the cluster, driven by sim, seeded by
// rng.
func NewManager(sim *des.Sim, cl *cluster.Cluster, rng *des.RNG) *Manager {
	return &Manager{sim: sim, cluster: cl, rng: rng, records: make(map[int]*JobRecord)}
}

// Submit queues a job and returns its id. The job starts as soon as
// enough nodes are free (FIFO order).
func (m *Manager) Submit(spec JobSpec) (int, error) {
	if spec.Nodes > m.cluster.Size() {
		return 0, fmt.Errorf("%w: %d nodes requested, partition has %d", ErrTooLarge, spec.Nodes, m.cluster.Size())
	}
	m.nextID++
	id := m.nextID
	m.records[id] = &JobRecord{
		ID:          id,
		State:       StatePending,
		Constraints: spec.Constraints,
		SubmitTime:  m.sim.Now(),
	}
	m.queue = append(m.queue, &queued{id: id, spec: spec})
	m.sim.After(0, m.schedule)
	return id, nil
}

// Record returns the accounting record for a job.
func (m *Manager) Record(id int) (JobRecord, error) {
	r, ok := m.records[id]
	if !ok {
		return JobRecord{}, fmt.Errorf("slurm: unknown job %d", id)
	}
	return *r, nil
}

// Records returns all job records sorted by id.
func (m *Manager) Records() []JobRecord {
	ids := make([]int, 0, len(m.records))
	for id := range m.records {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]JobRecord, len(ids))
	for i, id := range ids {
		out[i] = *m.records[id]
	}
	return out
}

// schedule starts queued jobs FIFO while nodes are available.
func (m *Manager) schedule() {
	for len(m.queue) > 0 {
		head := m.queue[0]
		nodes, err := m.cluster.Allocate(head.spec.Nodes)
		if err != nil {
			return // head blocked; strict FIFO
		}
		m.queue = m.queue[1:]
		m.launch(head.id, head.spec, nodes)
	}
}

func (m *Manager) launch(id int, spec JobSpec, nodes []string) {
	rec := m.records[id]
	rec.State = StateConfiguring
	rec.Nodes = nodes
	rec.NodeList = Compress(nodes)
	ctx := JobContext{JobID: id, NodeList: rec.NodeList, Nodes: nodes, Constraints: spec.Constraints}

	// Prolog: parallel across nodes; duration is the max; any failure
	// fails the job and drains the offending node.
	prologDur, failedNode, err := m.runHook(m.Prolog, ctx)
	rec.PrologSeconds = prologDur
	if err != nil {
		m.sim.After(prologDur, func() {
			rec.State = StateFailed
			rec.FailureReason = fmt.Sprintf("prolog on %s: %v", failedNode, err)
			_ = m.cluster.Drain(failedNode, rec.FailureReason)
			_ = m.cluster.Release(nodes)
			rec.ReleaseTime = m.sim.Now()
			m.schedule()
		})
		return
	}

	m.sim.After(prologDur, func() {
		rec.State = StateRunning
		rec.StartTime = m.sim.Now()
		runSeconds := 0.0
		if spec.Run != nil {
			runSeconds = spec.Run(ctx, m.rng.Split(uint64(id)))
		}
		m.sim.After(runSeconds, func() {
			rec.State = StateCompleting
			rec.EndTime = m.sim.Now()
			epilogDur, failedNode, err := m.runHook(m.Epilog, ctx)
			rec.EpilogSeconds = epilogDur
			m.sim.After(epilogDur, func() {
				if err != nil {
					rec.State = StateFailed
					rec.FailureReason = fmt.Sprintf("epilog on %s: %v", failedNode, err)
					_ = m.cluster.Drain(failedNode, rec.FailureReason)
				} else {
					rec.State = StateCompleted
				}
				_ = m.cluster.Release(nodes)
				rec.ReleaseTime = m.sim.Now()
				m.schedule()
			})
		})
	})
}

// runHook executes the hook on every node in parallel, returning the
// maximum duration and the first failure.
func (m *Manager) runHook(hook NodeHook, ctx JobContext) (maxDur float64, failedNode string, err error) {
	if hook == nil {
		return 0, "", nil
	}
	for _, node := range ctx.Nodes {
		dur, herr := hook(ctx, node, m.rng.Split(hash(node)^uint64(ctx.JobID)))
		if dur > maxDur {
			maxDur = dur
		}
		if herr != nil && err == nil {
			failedNode, err = node, herr
		}
	}
	return maxDur, failedNode, err
}

func hash(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

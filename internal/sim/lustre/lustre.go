// Package lustre models the shared central parallel filesystem the paper
// uses as its baseline ("Matching Lustre"): external OSS/MDS servers
// reached over the fabric, so compute nodes run no filesystem daemons and
// IOR traffic imposes only marginal network-level interference on jobs
// running on other nodes.
package lustre

import "ofmf/internal/sim/des"

// Config sizes the central filesystem.
type Config struct {
	// OSSCount is the number of external object storage servers.
	OSSCount int
	// MDSCount is the number of external metadata servers.
	MDSCount int
	// PerOSSOpsPerSec caps each server's small-sync-write service rate.
	PerOSSOpsPerSec float64
	// ComputeImpact is the residual per-node slowdown fraction imposed on
	// unrelated compute nodes by filesystem traffic crossing the shared
	// fabric (mean of a small positive distribution).
	ComputeImpact float64
	// ComputeImpactSD is the jitter of that residual impact.
	ComputeImpactSD float64
}

// DefaultConfig matches a mid-size production Lustre: 16 OSS, 2 MDS.
func DefaultConfig() Config {
	return Config{
		OSSCount:        16,
		MDSCount:        2,
		PerOSSOpsPerSec: 40000,
		ComputeImpact:   0.0005,
		ComputeImpactSD: 0.0005,
	}
}

// FS is the central filesystem.
type FS struct {
	cfg Config
}

// New creates a central filesystem.
func New(cfg Config) *FS {
	if cfg.OSSCount <= 0 {
		cfg = DefaultConfig()
	}
	return &FS{cfg: cfg}
}

// Servers returns the external server counts.
func (f *FS) Servers() (oss, mds int) { return f.cfg.OSSCount, f.cfg.MDSCount }

// SaturatedShare reports the fraction of offered small-sync-write load
// the servers can absorb; clients self-throttle to this share (sync
// writes block), so offered load beyond capacity stretches IOR, not the
// servers.
func (f *FS) SaturatedShare(offeredOpsPerSec float64) float64 {
	capacity := float64(f.cfg.OSSCount) * f.cfg.PerOSSOpsPerSec
	if offeredOpsPerSec <= capacity || offeredOpsPerSec == 0 {
		return 1
	}
	return capacity / offeredOpsPerSec
}

// ComputeSteal samples the residual slowdown fraction filesystem traffic
// imposes on a compute node that is not running any filesystem daemons —
// the "Matching Lustre" control arm of the experiment.
func (f *FS) ComputeSteal(rng *des.RNG) float64 {
	return rng.PosNorm(f.cfg.ComputeImpact, f.cfg.ComputeImpactSD)
}

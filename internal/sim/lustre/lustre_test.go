package lustre

import (
	"testing"

	"ofmf/internal/sim/des"
)

func TestDefaults(t *testing.T) {
	fs := New(Config{})
	oss, mds := fs.Servers()
	if oss != 16 || mds != 2 {
		t.Errorf("servers = %d/%d", oss, mds)
	}
}

func TestSaturatedShare(t *testing.T) {
	fs := New(DefaultConfig())
	if got := fs.SaturatedShare(0); got != 1 {
		t.Errorf("share(0) = %f", got)
	}
	capacity := 16.0 * 40000
	if got := fs.SaturatedShare(capacity / 2); got != 1 {
		t.Errorf("under capacity share = %f", got)
	}
	if got := fs.SaturatedShare(capacity * 2); got != 0.5 {
		t.Errorf("over capacity share = %f", got)
	}
}

func TestComputeStealTiny(t *testing.T) {
	fs := New(DefaultConfig())
	rng := des.NewRNG(1)
	var sum float64
	const n = 5000
	for i := 0; i < n; i++ {
		s := fs.ComputeSteal(rng)
		if s < 0 {
			t.Fatalf("negative steal %f", s)
		}
		sum += s
	}
	mean := sum / n
	if mean > 0.002 {
		t.Errorf("mean residual steal = %f, should be well under idle-daemon cost", mean)
	}
}

// Package interfere models how co-located filesystem services steal
// compute capacity from HPC tasks — the phenomenon the paper's evaluation
// measures. Three mechanisms are modeled, each sampled per node per
// collective phase so the HPL model's max-over-nodes amplifies them with
// scale exactly as OS-noise theory (and the paper's data) predicts:
//
//  1. Idle daemon overhead: BeeOND daemons that are merely resident
//     (heartbeats, connection keep-alives) steal a fraction of a percent,
//     which grows to a measurable slowdown at scale.
//  2. Object-storage service demand: each active IOR file hosted on a
//     node's OST costs CPU and memory bandwidth; the demand saturates at a
//     cap set by how many cores the daemons can monopolize.
//  3. Metadata service demand: the node hosting Mgmtd/Meta pays a small
//     extra cost under file-per-process load.
package interfere

import "ofmf/internal/sim/des"

// Config calibrates the interference model. The defaults reproduce the
// paper's reported effect sizes: idle daemons cost ≈0.9–2.5 % at 64
// nodes; a single-node IOR costs ≈7–13 % at 128 nodes; matching IOR
// saturates at ≈47–52 %.
type Config struct {
	// IdleDaemonMean/SD: per-node, per-phase steal fraction of resident
	// BeeOND daemons with no filesystem traffic.
	IdleDaemonMean float64
	IdleDaemonSD   float64

	// PerFileDemandMean/SD: steal fraction each active IOR file imposes on
	// the node hosting its OST (sync 512 B writes are latency-bound, so
	// per-file demand is roughly constant).
	PerFileDemandMean float64
	PerFileDemandSD   float64

	// IOStealCap bounds total OST service steal: the daemons cannot
	// monopolize more than this fraction of the node.
	IOStealCap float64
	// IOJitterSD is extra per-phase variation under I/O load (queue
	// oscillation); it survives the cap, producing the mild growth of
	// saturated-load impact with scale.
	IOJitterSD float64

	// MetaDemandMean/SD: extra steal on the metadata/management node while
	// IOR runs.
	MetaDemandMean float64
	MetaDemandSD   float64
}

// DefaultConfig returns the calibrated model.
func DefaultConfig() Config {
	return Config{
		IdleDaemonMean:    0.004,
		IdleDaemonSD:      0.004,
		PerFileDemandMean: 0.065,
		PerFileDemandSD:   0.010,
		IOStealCap:        0.315,
		IOJitterSD:        0.008,
		MetaDemandMean:    0.012,
		MetaDemandSD:      0.006,
	}
}

// NodeLoad describes the filesystem work co-located on one compute node.
type NodeLoad struct {
	// DaemonsResident marks BeeOND daemons present (even if idle).
	DaemonsResident bool
	// ActiveFiles is the number of IOR files whose OST lives on this node.
	ActiveFiles int
	// MetaServer marks the node as hosting the metadata/management
	// services while I/O load is active.
	MetaServer bool
	// ExternalResidual is a base steal from traffic on the shared fabric
	// (the Lustre arm's only term).
	ExternalResidual   float64
	ExternalResidualSD float64
}

// Sample draws the steal fraction for one node for one phase.
func Sample(cfg Config, load NodeLoad, rng *des.RNG) float64 {
	s := 0.0
	if load.ExternalResidual > 0 || load.ExternalResidualSD > 0 {
		s += rng.PosNorm(load.ExternalResidual, load.ExternalResidualSD)
	}
	if load.DaemonsResident {
		s += rng.PosNorm(cfg.IdleDaemonMean, cfg.IdleDaemonSD)
	}
	if load.ActiveFiles > 0 {
		demand := float64(load.ActiveFiles) * rng.PosNorm(cfg.PerFileDemandMean, cfg.PerFileDemandSD)
		if demand > cfg.IOStealCap {
			demand = cfg.IOStealCap
		}
		demand += rng.PosNorm(0, cfg.IOJitterSD)
		s += demand
		if load.MetaServer {
			s += rng.PosNorm(cfg.MetaDemandMean, cfg.MetaDemandSD)
		}
	} else if load.MetaServer && load.DaemonsResident {
		// Idle metadata server: counted within the idle daemon term.
		s += rng.PosNorm(cfg.MetaDemandMean/4, cfg.MetaDemandSD/4)
	}
	if s > 0.95 {
		s = 0.95
	}
	return s
}

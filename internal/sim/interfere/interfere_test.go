package interfere

import (
	"testing"

	"ofmf/internal/sim/des"
)

func meanSteal(t *testing.T, load NodeLoad, reps int) float64 {
	t.Helper()
	rng := des.NewRNG(11)
	cfg := DefaultConfig()
	var sum float64
	for i := 0; i < reps; i++ {
		sum += Sample(cfg, load, rng)
	}
	return sum / float64(reps)
}

func TestNoLoadNoSteal(t *testing.T) {
	if got := meanSteal(t, NodeLoad{}, 1000); got != 0 {
		t.Errorf("steal = %f", got)
	}
}

func TestIdleDaemonStealSmall(t *testing.T) {
	got := meanSteal(t, NodeLoad{DaemonsResident: true}, 5000)
	if got < 0.002 || got > 0.01 {
		t.Errorf("idle steal = %.4f, want fraction of a percent", got)
	}
}

func TestSingleFileSteal(t *testing.T) {
	got := meanSteal(t, NodeLoad{DaemonsResident: true, ActiveFiles: 1}, 5000)
	if got < 0.05 || got > 0.12 {
		t.Errorf("single-file steal = %.4f, want ≈6–10%%", got)
	}
}

func TestHeavyLoadSaturatesAtCap(t *testing.T) {
	cfg := DefaultConfig()
	heavy := meanSteal(t, NodeLoad{DaemonsResident: true, ActiveFiles: 56}, 5000)
	heavier := meanSteal(t, NodeLoad{DaemonsResident: true, ActiveFiles: 500}, 5000)
	if heavy < cfg.IOStealCap*0.9 {
		t.Errorf("heavy steal = %.3f, should approach cap %.3f", heavy, cfg.IOStealCap)
	}
	if heavier-heavy > 0.02 {
		t.Errorf("cap not enforced: 56 files %.3f vs 500 files %.3f", heavy, heavier)
	}
}

func TestMonotoneInFiles(t *testing.T) {
	one := meanSteal(t, NodeLoad{DaemonsResident: true, ActiveFiles: 1}, 5000)
	two := meanSteal(t, NodeLoad{DaemonsResident: true, ActiveFiles: 2}, 5000)
	if two <= one {
		t.Errorf("steal not monotone: %f vs %f", one, two)
	}
}

func TestMetaServerAddsUnderLoad(t *testing.T) {
	plain := meanSteal(t, NodeLoad{DaemonsResident: true, ActiveFiles: 1}, 8000)
	meta := meanSteal(t, NodeLoad{DaemonsResident: true, ActiveFiles: 1, MetaServer: true}, 8000)
	if meta <= plain {
		t.Errorf("meta demand missing: %f vs %f", plain, meta)
	}
	if meta-plain > 0.03 {
		t.Errorf("meta demand too large for 'no definitive difference': %f", meta-plain)
	}
}

func TestExternalResidualOnly(t *testing.T) {
	got := meanSteal(t, NodeLoad{ExternalResidual: 0.0005, ExternalResidualSD: 0.0005}, 5000)
	if got <= 0 || got > 0.002 {
		t.Errorf("residual steal = %f", got)
	}
}

func TestStealNeverExceedsClamp(t *testing.T) {
	rng := des.NewRNG(3)
	cfg := DefaultConfig()
	for i := 0; i < 10000; i++ {
		s := Sample(cfg, NodeLoad{DaemonsResident: true, ActiveFiles: 10000, MetaServer: true, ExternalResidual: 0.5, ExternalResidualSD: 0.5}, rng)
		if s < 0 || s > 0.95 {
			t.Fatalf("steal out of range: %f", s)
		}
	}
}

// Package beeond simulates the node-local BeeOND parallel filesystem the
// paper builds on Slurm: per-node management (Mgmtd), metadata (Meta),
// object storage (Storage/OST) and client helper (Helperd) services,
// assembled in the paper's prescribed serialized order during parallel
// prolog scripts, and torn down (kill, poll, XFS reformat, remount) in the
// epilog. Role assignment follows the paper exactly: the lowest node in
// the allocation becomes the Mgmtd server, the metadata server, an OST and
// a client; every other node becomes an OST server and a client.
package beeond

import (
	"errors"
	"fmt"
	"sort"

	"ofmf/internal/sim/des"
)

// ErrStartFailure marks a hardware-related service start failure (the
// paper's prolog reports these to Slurm, which drains the node).
var ErrStartFailure = errors.New("beeond: service failed to start")

// Role describes the services a node runs.
type Role struct {
	Mgmtd   bool
	Meta    bool
	Storage bool
	Client  bool
}

// String renders the role like "mgmtd+meta+storage+client".
func (r Role) String() string {
	var parts []string
	if r.Mgmtd {
		parts = append(parts, "mgmtd")
	}
	if r.Meta {
		parts = append(parts, "meta")
	}
	if r.Storage {
		parts = append(parts, "storage")
	}
	if r.Client {
		parts = append(parts, "client")
	}
	if len(parts) == 0 {
		return "none"
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out += "+" + p
	}
	return out
}

// Plan assigns roles per the paper's layout: lowest node gets everything,
// the rest are storage+client.
func Plan(nodes []string) map[string]Role {
	roles := make(map[string]Role, len(nodes))
	if len(nodes) == 0 {
		return roles
	}
	lowest := nodes[0]
	for _, n := range nodes[1:] {
		if n < lowest {
			lowest = n
		}
	}
	for _, n := range nodes {
		if n == lowest {
			roles[n] = Role{Mgmtd: true, Meta: true, Storage: true, Client: true}
		} else {
			roles[n] = Role{Storage: true, Client: true}
		}
	}
	return roles
}

// Config gives the per-service timing model. Durations are seconds; each
// sample is PosNorm(mean, jitter). Defaults are calibrated so a full
// assembly completes in under 3 s and teardown in under 6 s regardless of
// allocation size, matching the paper's measurements.
type Config struct {
	MgmtdStart   float64 // management daemon start
	MetaStart    float64 // metadata daemon start
	StorageStart float64 // OSS/OST daemon start
	HelperdStart float64 // client helper start
	MountTime    float64 // beeond_mount
	Jitter       float64 // per-sample standard deviation

	KillTime    float64 // fuser kill signal delivery
	PollTime    float64 // polling until processes exit
	MkfsTime    float64 // XFS reformat of the SSD partition
	RemountTime float64 // remount of /dev/beeond_store

	// StartFailProb is the per-node probability of a hardware-related
	// start failure (UDEV rule, kernel module mismatch, dead SSD).
	StartFailProb float64
}

// DefaultConfig returns the calibrated timing model.
func DefaultConfig() Config {
	return Config{
		MgmtdStart:   0.25,
		MetaStart:    0.30,
		StorageStart: 0.40,
		HelperdStart: 0.20,
		MountTime:    0.45,
		Jitter:       0.05,
		KillTime:     0.30,
		PollTime:     0.60,
		MkfsTime:     2.60,
		RemountTime:  0.40,
	}
}

// FS is one private BeeOND filesystem instance over an allocation.
type FS struct {
	cfg   Config
	nodes []string
	roles map[string]Role
}

// New plans a filesystem over the allocation.
func New(cfg Config, nodes []string) *FS {
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	return &FS{cfg: cfg, nodes: sorted, roles: Plan(sorted)}
}

// Nodes returns the allocation, sorted.
func (f *FS) Nodes() []string { return append([]string(nil), f.nodes...) }

// RoleOf returns the role of the named node.
func (f *FS) RoleOf(node string) (Role, error) {
	r, ok := f.roles[node]
	if !ok {
		return Role{}, fmt.Errorf("beeond: node %s not in allocation", node)
	}
	return r, nil
}

// OSTs returns the storage-server nodes (every node, in this layout).
func (f *FS) OSTs() []string {
	var out []string
	for _, n := range f.nodes {
		if f.roles[n].Storage {
			out = append(out, n)
		}
	}
	return out
}

// MetaNode returns the node hosting the metadata (and management) server.
func (f *FS) MetaNode() string {
	for _, n := range f.nodes {
		if f.roles[n].Meta {
			return n
		}
	}
	return ""
}

// StartNode simulates the per-node portion of the prolog: the serialized
// start of the node's services followed by the client mount. The caller
// (the Slurm prolog) runs these in parallel across nodes; the assembly
// time is the maximum of the returned durations.
func (f *FS) StartNode(node string, rng *des.RNG) (float64, error) {
	role, ok := f.roles[node]
	if !ok {
		return 0, fmt.Errorf("beeond: node %s not in allocation", node)
	}
	if f.cfg.StartFailProb > 0 && rng.Float64() < f.cfg.StartFailProb {
		return rng.PosNorm(f.cfg.StorageStart, f.cfg.Jitter),
			fmt.Errorf("%w on %s", ErrStartFailure, node)
	}
	total := 0.0
	sample := func(mean float64) { total += rng.PosNorm(mean, f.cfg.Jitter) }
	if role.Mgmtd {
		sample(f.cfg.MgmtdStart)
	}
	if role.Meta {
		sample(f.cfg.MetaStart)
	}
	if role.Storage {
		sample(f.cfg.StorageStart)
	}
	if role.Client {
		sample(f.cfg.HelperdStart)
		sample(f.cfg.MountTime)
	}
	return total, nil
}

// StopNode simulates the per-node portion of the epilog: the kill signal,
// the poll loop waiting for processes to exit, the XFS reformat and the
// remount readying the SSD for the next allocation.
func (f *FS) StopNode(node string, rng *des.RNG) (float64, error) {
	if _, ok := f.roles[node]; !ok {
		return 0, fmt.Errorf("beeond: node %s not in allocation", node)
	}
	total := rng.PosNorm(f.cfg.KillTime, f.cfg.Jitter)
	total += rng.PosNorm(f.cfg.PollTime, f.cfg.Jitter)
	total += rng.PosNorm(f.cfg.MkfsTime, 4*f.cfg.Jitter)
	total += rng.PosNorm(f.cfg.RemountTime, f.cfg.Jitter)
	return total, nil
}

// Assemble simulates the whole parallel prolog and returns the wall-clock
// assembly time (max across nodes).
func (f *FS) Assemble(rng *des.RNG) (float64, error) {
	var wall float64
	for i, n := range f.nodes {
		d, err := f.StartNode(n, rng.Split(uint64(i)))
		if err != nil {
			return 0, err
		}
		if d > wall {
			wall = d
		}
	}
	return wall, nil
}

// Disassemble simulates the whole parallel epilog and returns the
// wall-clock teardown time.
func (f *FS) Disassemble(rng *des.RNG) (float64, error) {
	var wall float64
	for i, n := range f.nodes {
		d, err := f.StopNode(n, rng.Split(uint64(i)^0xbee))
		if err != nil {
			return 0, err
		}
		if d > wall {
			wall = d
		}
	}
	return wall, nil
}

// Stripe places count files over the filesystem's OSTs round-robin (the
// file-per-process, stripe-count-1 layout the paper's IOR configuration
// produces) and returns files per node.
func (f *FS) Stripe(count int) map[string]int {
	out := make(map[string]int)
	osts := f.OSTs()
	if len(osts) == 0 {
		return out
	}
	for i := 0; i < count; i++ {
		out[osts[i%len(osts)]]++
	}
	return out
}

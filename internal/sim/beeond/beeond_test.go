package beeond

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"ofmf/internal/sim/des"
)

func nodeNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("node%03d", i+1)
	}
	return names
}

func TestPlanRoles(t *testing.T) {
	roles := Plan([]string{"node003", "node001", "node002"})
	low := roles["node001"]
	if !low.Mgmtd || !low.Meta || !low.Storage || !low.Client {
		t.Errorf("lowest role = %+v", low)
	}
	for _, n := range []string{"node002", "node003"} {
		r := roles[n]
		if r.Mgmtd || r.Meta {
			t.Errorf("%s unexpectedly hosts management: %+v", n, r)
		}
		if !r.Storage || !r.Client {
			t.Errorf("%s missing storage/client: %+v", n, r)
		}
	}
	if len(Plan(nil)) != 0 {
		t.Error("empty plan not empty")
	}
}

func TestRoleString(t *testing.T) {
	if got := (Role{Mgmtd: true, Meta: true, Storage: true, Client: true}).String(); got != "mgmtd+meta+storage+client" {
		t.Errorf("role = %q", got)
	}
	if got := (Role{}).String(); got != "none" {
		t.Errorf("empty role = %q", got)
	}
}

func TestFSAccessors(t *testing.T) {
	fs := New(DefaultConfig(), []string{"node002", "node001"})
	if got := fs.MetaNode(); got != "node001" {
		t.Errorf("meta = %q", got)
	}
	if got := fs.OSTs(); len(got) != 2 {
		t.Errorf("osts = %v", got)
	}
	if _, err := fs.RoleOf("ghost"); err == nil {
		t.Error("unknown node accepted")
	}
	role, err := fs.RoleOf("node001")
	if err != nil || !role.Mgmtd {
		t.Errorf("role = %+v, %v", role, err)
	}
}

func TestAssembleUnderThreeSeconds(t *testing.T) {
	rng := des.NewRNG(1)
	for _, n := range []int{2, 16, 128, 512} {
		fs := New(DefaultConfig(), nodeNames(n))
		for rep := 0; rep < 20; rep++ {
			d, err := fs.Assemble(rng.Split(uint64(n*100 + rep)))
			if err != nil {
				t.Fatal(err)
			}
			if d >= 3 {
				t.Errorf("assemble %d nodes took %.2f s", n, d)
			}
			if d <= 0 {
				t.Errorf("assemble %d nodes took %.2f s (non-positive)", n, d)
			}
		}
	}
}

func TestDisassembleUnderSixSeconds(t *testing.T) {
	rng := des.NewRNG(2)
	for _, n := range []int{2, 128, 512} {
		fs := New(DefaultConfig(), nodeNames(n))
		for rep := 0; rep < 20; rep++ {
			d, err := fs.Disassemble(rng.Split(uint64(n*100 + rep)))
			if err != nil {
				t.Fatal(err)
			}
			if d >= 6 {
				t.Errorf("disassemble %d nodes took %.2f s", n, d)
			}
		}
	}
}

func TestScaleIndependence(t *testing.T) {
	// Assembly time must not grow with allocation size (parallel prolog).
	rng := des.NewRNG(3)
	mean := func(n int) float64 {
		fs := New(DefaultConfig(), nodeNames(n))
		var sum float64
		const reps = 30
		for rep := 0; rep < reps; rep++ {
			d, err := fs.Assemble(rng.Split(uint64(n)<<16 ^ uint64(rep)))
			if err != nil {
				t.Fatal(err)
			}
			sum += d
		}
		return sum / reps
	}
	small, large := mean(2), mean(512)
	if large > small*1.3 {
		t.Errorf("assembly grew with scale: %.2f s @2 vs %.2f s @512", small, large)
	}
}

func TestLowestNodeDominatesAssembly(t *testing.T) {
	// The lowest node starts mgmtd+meta+storage+helperd+mount; others only
	// storage+helperd+mount, so the lowest node's duration is the maximum
	// (up to jitter).
	cfg := DefaultConfig()
	cfg.Jitter = 0
	fs := New(cfg, nodeNames(4))
	rng := des.NewRNG(4)
	low, err := fs.StartNode("node001", rng)
	if err != nil {
		t.Fatal(err)
	}
	other, err := fs.StartNode("node002", rng)
	if err != nil {
		t.Fatal(err)
	}
	if low <= other {
		t.Errorf("lowest %.2f s not above other %.2f s", low, other)
	}
	wantLow := cfg.MgmtdStart + cfg.MetaStart + cfg.StorageStart + cfg.HelperdStart + cfg.MountTime
	if low != wantLow {
		t.Errorf("lowest = %.2f, want %.2f", low, wantLow)
	}
}

func TestStartFailure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StartFailProb = 1
	fs := New(cfg, nodeNames(2))
	if _, err := fs.StartNode("node001", des.NewRNG(5)); !errors.Is(err, ErrStartFailure) {
		t.Errorf("err = %v", err)
	}
	if _, err := fs.Assemble(des.NewRNG(5)); !errors.Is(err, ErrStartFailure) {
		t.Errorf("assemble err = %v", err)
	}
}

func TestUnknownNodeErrors(t *testing.T) {
	fs := New(DefaultConfig(), nodeNames(2))
	if _, err := fs.StartNode("ghost", des.NewRNG(1)); err == nil {
		t.Error("start on unknown node accepted")
	}
	if _, err := fs.StopNode("ghost", des.NewRNG(1)); err == nil {
		t.Error("stop on unknown node accepted")
	}
}

func TestStripeRoundRobin(t *testing.T) {
	fs := New(DefaultConfig(), nodeNames(4))
	files := fs.Stripe(10)
	// 10 files over 4 OSTs: 3,3,2,2.
	if files["node001"] != 3 || files["node002"] != 3 || files["node003"] != 2 || files["node004"] != 2 {
		t.Errorf("stripe = %v", files)
	}
}

func TestStripeProperty(t *testing.T) {
	// All files placed; per-node counts differ by at most one.
	f := func(count uint16, width uint8) bool {
		n := int(width)%63 + 2
		fs := New(DefaultConfig(), nodeNames(n))
		files := fs.Stripe(int(count) % 5000)
		total, mn, mx := 0, 1<<30, 0
		for _, node := range fs.OSTs() {
			c := files[node]
			total += c
			if c < mn {
				mn = c
			}
			if c > mx {
				mx = c
			}
		}
		return total == int(count)%5000 && mx-mn <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

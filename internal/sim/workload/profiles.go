package workload

// Profile is one row of Table I: a performance profile with its leading
// benchmark and the demand it places on each class of resource (0..1
// shares). Isolation is derived from the contention model below, not
// hardcoded, so the table's last column is a measured output.
type Profile struct {
	Name        string
	Description string
	Benchmark   string

	// Demand shares on each resource class when the profile runs.
	CPU       float64
	Memory    float64
	Network   float64
	IOPS      float64
	Bandwidth float64
	Metadata  float64
}

// Profiles returns the six Table I profiles with demand vectors for the
// contention model.
func Profiles() []Profile {
	return []Profile{
		{
			Name: "CPU-bound", Description: "Heavy use of CPU and accelerators",
			Benchmark: "HPL", CPU: 0.95, Memory: 0.30, Network: 0.15,
		},
		{
			Name: "Memory-bound", Description: "Reads and writes to main memory",
			Benchmark: "STREAM, HPCG", CPU: 0.40, Memory: 0.95, Network: 0.10,
		},
		{
			Name: "Network-bound", Description: "Sending and receiving data among nodes in a task",
			Benchmark: "Intel MPI Benchmarks", CPU: 0.25, Memory: 0.20, Network: 0.90,
		},
		{
			Name: "IOPs-bound", Description: "Many small reads/writes to a few files",
			Benchmark: "IOR-hard", CPU: 0.15, Memory: 0.10, IOPS: 0.95,
		},
		{
			Name: "Bandwidth-bound", Description: "Large reads/writes to a few files",
			Benchmark: "IOR-easy", CPU: 0.10, Memory: 0.15, Bandwidth: 0.95,
		},
		{
			Name: "Metadata-bound", Description: "Many small reads/writes to many files",
			Benchmark: "mdtest", CPU: 0.15, Memory: 0.10, Metadata: 0.95, IOPS: 0.40,
		},
	}
}

// Contention weights: CPU and memory are node-private under exclusive
// allocation (strong isolation); the network fabric is shared but
// path-diverse; filesystem daemons and metadata servers are fully shared.
const (
	cpuContention  = 0.00
	memContention  = 0.02
	netContention  = 0.25
	iopsContention = 1.00
	bwContention   = 0.90
	metaContention = 1.00
)

// CoScheduledSlowdown estimates the fractional slowdown this profile
// suffers when an identical instance runs concurrently elsewhere on the
// machine: shared-resource demand products weighted by how contended each
// resource class is.
func (p Profile) CoScheduledSlowdown() float64 {
	return cpuContention*p.CPU*p.CPU +
		memContention*p.Memory*p.Memory +
		netContention*p.Network*p.Network +
		iopsContention*p.IOPS*p.IOPS +
		bwContention*p.Bandwidth*p.Bandwidth +
		metaContention*p.Metadata*p.Metadata
}

// Isolation classifies the expected performance isolation the way Table I
// reports it, from the measured co-scheduled slowdown.
func (p Profile) Isolation() string {
	s := p.CoScheduledSlowdown()
	switch {
	case s < 0.05:
		return "Strong"
	case s < 0.35:
		return "Medium-to-Strong"
	default:
		return "Weak"
	}
}

// Package workload models the benchmarks the paper's evaluation runs: the
// HPL compute task with its collective-phase structure and the problem
// sizes of Table II, the IOR small-sync-write task of Table III, and the
// six performance profiles of Table I.
package workload

import (
	"fmt"
	"math"

	"ofmf/internal/sim/des"
)

// HPLRow is one row of Table II.
type HPLRow struct {
	Nodes int
	N     int // row count
	P     int // grid P
	Q     int // grid Q
}

// HPLTable returns Table II verbatim: the problem sizes the paper used,
// extrapolated from a well-performing single-node run (N₁ = 91048 using
// most of 128 GiB) by approximately preserving per-node work (N ∝ n^⅓)
// with a P×Q grid covering the 56·n cores.
func HPLTable() []HPLRow {
	return []HPLRow{
		{1, 91048, 7, 8},
		{2, 114713, 14, 8},
		{4, 144529, 14, 16},
		{8, 182096, 28, 16},
		{16, 229427, 28, 32},
		{32, 289059, 56, 32},
		{64, 364192, 56, 64},
		{128, 458853, 112, 64},
	}
}

// HPLParams extrapolates the paper's sizing rule to an arbitrary node
// count: N = round(N₁·n^⅓) and a P×Q grid filling 56·n ranks built by
// doubling P and Q alternately from the single-node 7×8 grid.
func HPLParams(nodes int) HPLRow {
	if nodes < 1 {
		nodes = 1
	}
	n := int(math.Round(91048 * math.Cbrt(float64(nodes))))
	p, q := 7, 8
	for pq := 1; pq < nodes; pq *= 2 {
		if p < q { // double the smaller dimension (7×8 → 14×8 → 14×16 → ...)
			p *= 2
		} else {
			q *= 2
		}
	}
	return HPLRow{Nodes: nodes, N: n, P: p, Q: q}
}

// HPLModel is the phase-structured compute model: the run is a sequence of
// compute phases separated by collective synchronization points, so each
// phase completes at the pace of the slowest node. This is the mechanism
// through which per-node interference (daemon CPU steal, I/O service
// work, OS noise) amplifies with scale.
type HPLModel struct {
	// Nodes is the HPL node count.
	Nodes int
	// Phases is the number of collective sync points (panel factorization
	// steps bucketed; default 60).
	Phases int
	// BaseSeconds is the interference-free runtime; default derives from
	// Table II sizing at ~585 GF/node effective, ≈860 s ("less than 15
	// minutes") for every row.
	BaseSeconds float64
	// BaseJitterFrac is run-to-run variation of the base time (default 0.4%).
	BaseJitterFrac float64
}

// effective per-node HPL rate calibrated so Table II sizes run in ≈860 s.
const hplNodeFlops = 5.85e11

// BaseRuntime computes the interference-free runtime for a Table II-sized
// run on n nodes.
func BaseRuntime(nodes int) float64 {
	row := HPLParams(nodes)
	n := float64(row.N)
	return (2.0 / 3.0) * n * n * n / (float64(nodes) * hplNodeFlops)
}

// StealFunc samples the fraction of a node's compute capacity stolen by
// co-located services during one phase. node indexes the HPL nodes.
type StealFunc func(node, phase int, rng *des.RNG) float64

// Run simulates one HPL execution under the given interference and
// returns the wall-clock seconds. Each phase's wall time is the maximum
// over nodes of the phase work divided by the node's effective rate.
func (m HPLModel) Run(rng *des.RNG, steal StealFunc) float64 {
	phases := m.Phases
	if phases <= 0 {
		phases = 60
	}
	base := m.BaseSeconds
	if base <= 0 {
		base = BaseRuntime(m.Nodes)
	}
	jitter := m.BaseJitterFrac
	if jitter <= 0 {
		jitter = 0.004
	}
	base *= 1 + rng.Norm(0, jitter)
	tau := base / float64(phases)

	var wall float64
	for k := 0; k < phases; k++ {
		worst := 0.0
		for i := 0; i < m.Nodes; i++ {
			s := 0.0
			if steal != nil {
				s = steal(i, k, rng)
			}
			if s > 0.95 {
				s = 0.95
			}
			if s > worst {
				worst = s
			}
		}
		wall += tau / (1 - worst)
	}
	return wall
}

// String renders a row like the paper's table.
func (r HPLRow) String() string {
	return fmt.Sprintf("%d nodes: N=%d P=%d Q=%d", r.Nodes, r.N, r.P, r.Q)
}

package workload

import (
	"math"
	"testing"
	"testing/quick"

	"ofmf/internal/sim/des"
)

func TestHPLTableShape(t *testing.T) {
	rows := HPLTable()
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.P*r.Q != 56*r.Nodes {
			t.Errorf("n=%d: %dx%d != %d ranks", r.Nodes, r.P, r.Q, 56*r.Nodes)
		}
	}
	if rows[0].N != 91048 || rows[7].N != 458853 {
		t.Errorf("endpoint sizes wrong: %d, %d", rows[0].N, rows[7].N)
	}
}

func TestHPLParamsExtrapolation(t *testing.T) {
	for _, r := range HPLTable() {
		gen := HPLParams(r.Nodes)
		if gen.P != r.P || gen.Q != r.Q {
			t.Errorf("n=%d: grid %dx%d, want %dx%d", r.Nodes, gen.P, gen.Q, r.P, r.Q)
		}
		if d := gen.N - r.N; d < -2 || d > 2 {
			t.Errorf("n=%d: N=%d, want %d±2", r.Nodes, gen.N, r.N)
		}
	}
	// Extrapolation beyond the table (the paper's commented-out 256 row).
	gen := HPLParams(256)
	if gen.P*gen.Q != 56*256 {
		t.Errorf("256-node grid %dx%d", gen.P, gen.Q)
	}
	if math.Abs(float64(gen.N)-578119) > 20 {
		t.Errorf("256-node N = %d, paper draft had 578119", gen.N)
	}
	if got := HPLParams(0); got.Nodes != 1 {
		t.Errorf("clamp failed: %+v", got)
	}
}

func TestHPLRowString(t *testing.T) {
	s := HPLRow{Nodes: 2, N: 114713, P: 14, Q: 8}.String()
	if s != "2 nodes: N=114713 P=14 Q=8" {
		t.Errorf("string = %q", s)
	}
}

func TestBaseRuntimeConstantAcrossScale(t *testing.T) {
	base := BaseRuntime(1)
	if base < 600 || base > 900 {
		t.Errorf("single-node base = %.0f s, want <15 min and realistic", base)
	}
	for _, r := range HPLTable() {
		rt := BaseRuntime(r.Nodes)
		if math.Abs(rt-base)/base > 0.02 {
			t.Errorf("n=%d: base %.0f s deviates from %.0f s", r.Nodes, rt, base)
		}
	}
}

func TestHPLModelNoInterference(t *testing.T) {
	m := HPLModel{Nodes: 4, BaseSeconds: 100, BaseJitterFrac: 1e-9}
	got := m.Run(des.NewRNG(1), nil)
	if math.Abs(got-100) > 0.1 {
		t.Errorf("runtime = %f", got)
	}
}

func TestHPLModelUniformSteal(t *testing.T) {
	m := HPLModel{Nodes: 4, BaseSeconds: 100, BaseJitterFrac: 1e-9}
	got := m.Run(des.NewRNG(1), func(int, int, *des.RNG) float64 { return 0.5 })
	if math.Abs(got-200) > 0.5 {
		t.Errorf("runtime = %f, want 200", got)
	}
}

func TestHPLModelMaxAmplification(t *testing.T) {
	// One slow node out of many dictates the pace.
	m := HPLModel{Nodes: 64, BaseSeconds: 100, BaseJitterFrac: 1e-9}
	got := m.Run(des.NewRNG(1), func(node, _ int, _ *des.RNG) float64 {
		if node == 13 {
			return 0.25
		}
		return 0
	})
	want := 100 / (1 - 0.25)
	if math.Abs(got-want) > 0.5 {
		t.Errorf("runtime = %f, want %f", got, want)
	}
}

func TestHPLModelScaleAmplifiesNoise(t *testing.T) {
	// Same per-node noise distribution slows larger jobs more.
	mean := func(nodes int) float64 {
		m := HPLModel{Nodes: nodes, BaseSeconds: 100, BaseJitterFrac: 1e-9}
		rng := des.NewRNG(7)
		var sum float64
		const reps = 20
		for i := 0; i < reps; i++ {
			sum += m.Run(rng.Split(uint64(i)), func(_, _ int, r *des.RNG) float64 {
				return r.PosNorm(0.004, 0.004)
			})
		}
		return sum / reps
	}
	small, large := mean(2), mean(128)
	if large <= small {
		t.Errorf("noise not amplified: %.2f s @2 vs %.2f s @128", small, large)
	}
}

func TestHPLModelStealClamped(t *testing.T) {
	m := HPLModel{Nodes: 1, BaseSeconds: 10, BaseJitterFrac: 1e-9}
	got := m.Run(des.NewRNG(1), func(int, int, *des.RNG) float64 { return 5.0 })
	want := 10 / (1 - 0.95)
	if math.Abs(got-want) > 1 {
		t.Errorf("runtime = %f, want clamp at %f", got, want)
	}
}

func TestIORFiles(t *testing.T) {
	cfg := DefaultIOR()
	if cfg.Files(2) != 112 {
		t.Errorf("files = %d", cfg.Files(2))
	}
	cfg.FilePerProcess = false
	if cfg.Files(2) != 1 {
		t.Errorf("shared-file files = %d", cfg.Files(2))
	}
}

func TestIORRowsComplete(t *testing.T) {
	rows := DefaultIOR().Rows()
	params := map[string]bool{}
	for _, r := range rows {
		if r.Parameter == "" || r.Description == "" || r.Value == "" {
			t.Errorf("incomplete row %+v", r)
		}
		params[r.Parameter] = true
	}
	for _, want := range []string{"[srun] -n", "-t", "-T", "-D", "-i", "-e", "-C", "-w", "-a", "-s", "-F", "-Y"} {
		if !params[want] {
			t.Errorf("missing parameter %s", want)
		}
	}
}

func TestIORThroughputUnsaturated(t *testing.T) {
	cfg := DefaultIOR()
	stats := cfg.Throughput(2, 2000, 1)
	if stats.Procs != 112 {
		t.Errorf("procs = %d", stats.Procs)
	}
	if stats.OpsPerSec != 112*2000 {
		t.Errorf("ops = %f", stats.OpsPerSec)
	}
	if stats.BytesPerSec != 112*2000*512 {
		t.Errorf("bw = %f", stats.BytesPerSec)
	}
	if stats.Throttled {
		t.Error("unsaturated run marked throttled")
	}
	if stats.RunSeconds != 60 { // stonewall under the 20-minute cap
		t.Errorf("run = %f", stats.RunSeconds)
	}
}

func TestIORThroughputSaturated(t *testing.T) {
	cfg := DefaultIOR()
	stats := cfg.Throughput(128, 2000, 0.5)
	if !stats.Throttled {
		t.Error("saturated run not marked throttled")
	}
	if stats.OpsPerSec != 128*56*2000*0.5 {
		t.Errorf("ops = %f", stats.OpsPerSec)
	}
	// Degenerate shares clamp.
	if s := cfg.Throughput(1, 2000, 2); s.Throttled || s.OpsPerSec != 56*2000 {
		t.Errorf("over-share = %+v", s)
	}
	if s := cfg.Throughput(1, 2000, -1); s.OpsPerSec != 0 {
		t.Errorf("negative share = %+v", s)
	}
}

func TestProfilesCount(t *testing.T) {
	if got := len(Profiles()); got != 6 {
		t.Errorf("profiles = %d", got)
	}
}

func TestProfileOrdering(t *testing.T) {
	// Compute-dominant profiles must isolate better than IO-dominant ones.
	byName := make(map[string]Profile)
	for _, p := range Profiles() {
		byName[p.Name] = p
	}
	if byName["CPU-bound"].CoScheduledSlowdown() >= byName["Network-bound"].CoScheduledSlowdown() {
		t.Error("CPU-bound should isolate better than network-bound")
	}
	if byName["Network-bound"].CoScheduledSlowdown() >= byName["IOPs-bound"].CoScheduledSlowdown() {
		t.Error("network-bound should isolate better than IOPs-bound")
	}
}

func TestPropertyHPLGridCoversRanks(t *testing.T) {
	f := func(exp uint8) bool {
		nodes := 1 << (exp % 10)
		row := HPLParams(nodes)
		return row.P*row.Q == 56*nodes && row.N > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyHPLMonotoneN(t *testing.T) {
	f := func(a, b uint8) bool {
		na, nb := int(a)+1, int(b)+1
		if na > nb {
			na, nb = nb, na
		}
		return HPLParams(na).N <= HPLParams(nb).N
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package workload

// IORConfig reproduces Table III: the parameters the paper chose to make
// IOR "as disruptive to object storage daemons as possible" — many small
// synchronous writes from as many processes as possible for the entire
// compute-task runtime.
type IORConfig struct {
	ProcsPerNode     int    // [srun] -n, per node
	TransferBytes    int    // -t
	MaxRunMinutes    int    // -T
	StonewallSeconds int    // -D
	Repetitions      int    // -i
	SyncAfterPhase   bool   // -e
	ReorderTasks     bool   // -C
	WriteTest        bool   // -w
	AccessMethod     string // -a
	Segments         int    // -s
	FilePerProcess   bool   // -F
	SyncEveryWrite   bool   // -Y
}

// DefaultIOR returns the exact Table III configuration.
func DefaultIOR() IORConfig {
	return IORConfig{
		ProcsPerNode:     56,
		TransferBytes:    512,
		MaxRunMinutes:    20,
		StonewallSeconds: 60,
		Repetitions:      1048576,
		SyncAfterPhase:   true,
		ReorderTasks:     true,
		WriteTest:        true,
		AccessMethod:     "POSIX",
		Segments:         1024,
		FilePerProcess:   true,
		SyncEveryWrite:   true,
	}
}

// IORRow is one row of Table III.
type IORRow struct {
	Parameter   string
	Description string
	Value       string
}

// Rows renders the configuration as Table III.
func (c IORConfig) Rows() []IORRow {
	enabled := func(b bool) string {
		if b {
			return "enabled"
		}
		return "disabled"
	}
	return []IORRow{
		{"[srun] -n", "Processes (per node)", itoa(c.ProcsPerNode)},
		{"-t", "Transfer size (bytes)", itoa(c.TransferBytes)},
		{"-T", "Maximum run duration (minutes)", itoa(c.MaxRunMinutes)},
		{"-D", "Stonewalling deadline (seconds)", itoa(c.StonewallSeconds)},
		{"-i", "Test repetitions", itoa(c.Repetitions)},
		{"-e", "Sync after each write phase", enabled(c.SyncAfterPhase)},
		{"-C", "Reorder tasks", enabled(c.ReorderTasks)},
		{"-w", "Perform write test", enabled(c.WriteTest)},
		{"-a", "Access method", c.AccessMethod},
		{"-s", "Number of segments", itoa(c.Segments)},
		{"-F", "Use file-per-process", enabled(c.FilePerProcess)},
		{"-Y", "Sync after every write", enabled(c.SyncEveryWrite)},
	}
}

// Files returns the number of files an m-node IOR run creates under
// file-per-process.
func (c IORConfig) Files(nodes int) int {
	if !c.FilePerProcess {
		return 1
	}
	return c.ProcsPerNode * nodes
}

// IORStats summarizes a simulated IOR run.
type IORStats struct {
	// OpsPerSec is the aggregate achieved small-write rate.
	OpsPerSec float64
	// BytesPerSec is the aggregate achieved bandwidth.
	BytesPerSec float64
	// Procs is the total writer count.
	Procs int
	// Throttled reports whether the servers saturated: sync writes block,
	// so clients self-throttle instead of overrunning the filesystem.
	Throttled bool
	// RunSeconds is how long the run lasted (stonewall or -T cap).
	RunSeconds float64
	// BytesWritten is the total data the run produced.
	BytesWritten float64
}

// Throughput models an IOR run from Table III's configuration: each
// process issues synchronous small writes at perProcOpsPerSec (latency-
// bound, ≈1/RTT); serverShare is the fraction of offered load the
// filesystem can absorb (1 = unsaturated; see lustre.SaturatedShare).
// The run length is the stonewall deadline per repetition, capped by -T.
func (c IORConfig) Throughput(nodes int, perProcOpsPerSec, serverShare float64) IORStats {
	if serverShare > 1 {
		serverShare = 1
	}
	if serverShare < 0 {
		serverShare = 0
	}
	procs := c.ProcsPerNode * nodes
	offered := float64(procs) * perProcOpsPerSec
	achieved := offered * serverShare

	run := float64(c.StonewallSeconds)
	capSeconds := float64(c.MaxRunMinutes) * 60
	if capSeconds > 0 && run > capSeconds {
		run = capSeconds
	}
	return IORStats{
		OpsPerSec:    achieved,
		BytesPerSec:  achieved * float64(c.TransferBytes),
		Procs:        procs,
		Throttled:    serverShare < 1,
		RunSeconds:   run,
		BytesWritten: achieved * float64(c.TransferBytes) * run,
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

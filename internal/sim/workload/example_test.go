package workload_test

import (
	"fmt"

	"ofmf/internal/sim/workload"
)

func ExampleHPLParams() {
	// Reproduce Table II's 64-node row from the sizing rule.
	row := workload.HPLParams(64)
	fmt.Println(row)
	// Output: 64 nodes: N=364192 P=56 Q=64
}

func ExampleIORConfig_Files() {
	// Table III's file-per-process layout on a 128-node IOR run.
	cfg := workload.DefaultIOR()
	fmt.Println(cfg.Files(128), "files")
	// Output: 7168 files
}

func ExampleProfile_Isolation() {
	for _, p := range workload.Profiles() {
		fmt.Printf("%s: %s\n", p.Name, p.Isolation())
	}
	// Output:
	// CPU-bound: Strong
	// Memory-bound: Strong
	// Network-bound: Medium-to-Strong
	// IOPs-bound: Weak
	// Bandwidth-bound: Weak
	// Metadata-bound: Weak
}

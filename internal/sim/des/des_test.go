package des

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	var s Sim
	var order []int
	s.At(3, func() { order = append(order, 3) })
	s.At(1, func() { order = append(order, 1) })
	s.At(2, func() { order = append(order, 2) })
	end := s.Run()
	if end != 3 {
		t.Errorf("end time = %f", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
}

func TestTieBreakFIFO(t *testing.T) {
	var s Sim
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(1, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	var s Sim
	var times []float64
	s.After(1, func() {
		times = append(times, s.Now())
		s.After(2, func() { times = append(times, s.Now()) })
	})
	s.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Errorf("times = %v", times)
	}
}

func TestPastSchedulingClamped(t *testing.T) {
	var s Sim
	fired := -1.0
	s.At(5, func() {
		s.At(1, func() { fired = s.Now() }) // in the past → runs now
	})
	s.Run()
	if fired != 5 {
		t.Errorf("fired at %f", fired)
	}
}

func TestRunUntil(t *testing.T) {
	var s Sim
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(float64(i), func() { count++ })
	}
	s.RunUntil(5.5)
	if count != 5 {
		t.Errorf("count = %d", count)
	}
	if s.Now() != 5.5 {
		t.Errorf("now = %f", s.Now())
	}
	if s.Pending() != 5 {
		t.Errorf("pending = %d", s.Pending())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(1)
	c1 := r.Split(1)
	c2 := r.Split(2)
	equal := 0
	for i := 0; i < 100; i++ {
		if c1.Float64() == c2.Float64() {
			equal++
		}
	}
	if equal > 2 {
		t.Errorf("child streams overlap: %d equal draws", equal)
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(7)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("mean = %f", mean)
	}
	if math.Abs(sd-2) > 0.05 {
		t.Errorf("sd = %f", sd)
	}
}

func TestPosNormNonNegative(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		if v := r.PosNorm(0.001, 0.01); v < 0 {
			t.Fatal("negative value")
		}
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(3)
	}
	if mean := sum / n; math.Abs(mean-3) > 0.05 {
		t.Errorf("mean = %f", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(13)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("coverage = %d/7", len(seen))
	}
	if r.Intn(0) != 0 {
		t.Error("Intn(0) != 0")
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		p := r.Perm(20)
		sorted := append([]int(nil), p...)
		sort.Ints(sorted)
		for i, v := range sorted {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Package des provides a small discrete-event simulation kernel: a
// time-ordered event queue with deterministic tie-breaking, and seeded
// random-number streams (splitmix64-based) with the distributions the
// cluster and filesystem simulators draw from. Every experiment in the
// evaluation harness runs on this kernel so results are reproducible from
// a seed.
package des

import (
	"container/heap"
	"math"
)

// Sim is a discrete-event simulator. The zero value is ready to use.
type Sim struct {
	now   float64
	seq   int64
	queue eventQueue
}

type event struct {
	time float64
	seq  int64
	fn   func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Now returns the current simulation time in seconds.
func (s *Sim) Now() float64 { return s.now }

// At schedules fn at absolute time t (clamped to now).
func (s *Sim) At(t float64, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.queue, &event{time: t, seq: s.seq, fn: fn})
}

// After schedules fn d seconds from now.
func (s *Sim) After(d float64, fn func()) { s.At(s.now+d, fn) }

// Step executes the next event; it reports whether one was executed.
func (s *Sim) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*event)
	s.now = e.time
	e.fn()
	return true
}

// Run executes events until the queue drains and returns the final time.
func (s *Sim) Run() float64 {
	for s.Step() {
	}
	return s.now
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
func (s *Sim) RunUntil(t float64) {
	for s.queue.Len() > 0 && s.queue[0].time <= t {
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// Pending reports the number of queued events.
func (s *Sim) Pending() int { return s.queue.Len() }

// RNG is a small, fast, seedable generator (splitmix64) with the
// distributions the simulators need. Distinct streams come from distinct
// seeds; Split derives independent child streams.
type RNG struct {
	state uint64
	// cached spare normal variate for Box-Muller
	spare    float64
	hasSpare bool
}

// NewRNG creates a generator from a seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Split derives an independent child stream keyed by id.
func (r *RNG) Split(id uint64) *RNG {
	return NewRNG(r.next() ^ (id * 0x9e3779b97f4a7c15))
}

func (r *RNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns a uniformly random 64-bit value.
func (r *RNG) Uint64() uint64 { return r.next() }

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Norm returns a normal variate with the given mean and standard
// deviation (Box-Muller).
func (r *RNG) Norm(mean, sd float64) float64 {
	if r.hasSpare {
		r.hasSpare = false
		return mean + sd*r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return mean + sd*u*m
}

// PosNorm returns a normal variate truncated at zero.
func (r *RNG) PosNorm(mean, sd float64) float64 {
	v := r.Norm(mean, sd)
	if v < 0 {
		return 0
	}
	return v
}

// LogNorm returns a log-normal variate parameterized by the mean and
// standard deviation of the underlying normal.
func (r *RNG) LogNorm(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Exp returns an exponential variate with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

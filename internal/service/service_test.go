package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/sessions"
)

func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return svc, srv
}

func doJSON(t *testing.T, method, url string, body any, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := (&http.Client{}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestServiceRootGet(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	resp, body := doJSON(t, http.MethodGet, srv.URL+"/redfish/v1", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var root redfish.Root
	if err := json.Unmarshal(body, &root); err != nil {
		t.Fatal(err)
	}
	if root.RedfishVersion != "1.15.0" {
		t.Errorf("version = %s", root.RedfishVersion)
	}
	if root.Fabrics == nil || root.Fabrics.ODataID != FabricsURI {
		t.Errorf("fabrics link = %v", root.Fabrics)
	}
	if resp.Header.Get("ETag") == "" {
		t.Error("missing ETag header")
	}
}

func TestVersionsEndpoint(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	resp, body := doJSON(t, http.MethodGet, srv.URL+"/redfish", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var m map[string]string
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m["v1"] != "/redfish/v1/" {
		t.Errorf("versions = %v", m)
	}
}

func TestCollectionsBootstrap(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	for _, uri := range []odata.ID{SystemsURI, ChassisURI, FabricsURI, SubscriptionsURI, TasksURI, SessionsURI, ResourceBlocksURI} {
		resp, body := doJSON(t, http.MethodGet, srv.URL+string(uri), nil, nil)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d: %s", uri, resp.StatusCode, body)
			continue
		}
		var coll odata.Collection
		if err := json.Unmarshal(body, &coll); err != nil {
			t.Errorf("GET %s: %v", uri, err)
		}
		if coll.Count != 0 {
			t.Errorf("GET %s: count = %d", uri, coll.Count)
		}
	}
}

func TestNotFound(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	resp, body := doJSON(t, http.MethodGet, srv.URL+"/redfish/v1/Systems/Nope", nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var env odata.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "Base.1.0.ResourceMissingAtURI" {
		t.Errorf("code = %s", env.Error.Code)
	}
}

func TestEtagConditionalGet(t *testing.T) {
	svc, srv := newTestServer(t, Config{})
	id := SystemsURI.Append("S1")
	if err := svc.Store().Put(id, redfish.ComputerSystem{
		Resource:   odata.NewResource(id, redfish.TypeComputerSystem, "S1"),
		SystemType: redfish.SystemTypePhysical,
		Status:     odata.StatusOK(),
	}); err != nil {
		t.Fatal(err)
	}
	resp, _ := doJSON(t, http.MethodGet, srv.URL+string(id), nil, nil)
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no etag")
	}
	resp, _ = doJSON(t, http.MethodGet, srv.URL+string(id), nil, map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("status = %d, want 304", resp.StatusCode)
	}
}

func TestCollectionConditionalGet(t *testing.T) {
	svc, srv := newTestServer(t, Config{})
	put := func(name string) {
		id := SystemsURI.Append(name)
		if err := svc.Store().Put(id, redfish.ComputerSystem{
			Resource:   odata.NewResource(id, redfish.TypeComputerSystem, name),
			SystemType: redfish.SystemTypePhysical,
			Status:     odata.StatusOK(),
		}); err != nil {
			t.Fatal(err)
		}
	}
	put("S1")

	resp, _ := doJSON(t, http.MethodGet, srv.URL+string(SystemsURI), nil, nil)
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no collection etag")
	}
	resp, body := doJSON(t, http.MethodGet, srv.URL+string(SystemsURI), nil, map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("status = %d, want 304", resp.StatusCode)
	}
	if len(body) != 0 {
		t.Errorf("304 carried a body: %q", body)
	}

	// Membership change must rotate the collection ETag.
	put("S2")
	resp, body = doJSON(t, http.MethodGet, srv.URL+string(SystemsURI), nil, map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status after member add = %d, want 200", resp.StatusCode)
	}
	if newTag := resp.Header.Get("ETag"); newTag == "" || newTag == etag {
		t.Errorf("etag did not rotate: %q", newTag)
	}
	var coll odata.Collection
	if err := json.Unmarshal(body, &coll); err != nil {
		t.Fatal(err)
	}
	if coll.Count != 2 || len(coll.Members) != 2 {
		t.Errorf("count = %d, members = %d", coll.Count, len(coll.Members))
	}
}

func TestSessionLoginFlow(t *testing.T) {
	creds := sessions.StaticCredentials(map[string]string{"admin": "pw"})
	_, srv := newTestServer(t, Config{Credentials: creds})

	// Unauthenticated request to a protected resource is rejected.
	resp, _ := doJSON(t, http.MethodGet, srv.URL+string(SystemsURI), nil, nil)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated status = %d", resp.StatusCode)
	}

	// Service root remains reachable.
	resp, _ = doJSON(t, http.MethodGet, srv.URL+string(RootURI), nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("root status = %d", resp.StatusCode)
	}

	// Bad credentials rejected.
	resp, _ = doJSON(t, http.MethodPost, srv.URL+string(SessionsURI),
		map[string]string{"UserName": "admin", "Password": "wrong"}, nil)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bad login status = %d", resp.StatusCode)
	}

	// Good credentials produce a token.
	resp, body := doJSON(t, http.MethodPost, srv.URL+string(SessionsURI),
		map[string]string{"UserName": "admin", "Password": "pw"}, nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("login status = %d: %s", resp.StatusCode, body)
	}
	token := resp.Header.Get("X-Auth-Token")
	if token == "" {
		t.Fatal("no token issued")
	}
	loc := resp.Header.Get("Location")
	if loc == "" {
		t.Fatal("no Location header")
	}

	// Token grants access.
	resp, _ = doJSON(t, http.MethodGet, srv.URL+string(SystemsURI), nil, map[string]string{"X-Auth-Token": token})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authenticated status = %d", resp.StatusCode)
	}

	// Logout; token stops working.
	resp, _ = doJSON(t, http.MethodDelete, srv.URL+loc, nil, map[string]string{"X-Auth-Token": token})
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("logout status = %d", resp.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodGet, srv.URL+string(SystemsURI), nil, map[string]string{"X-Auth-Token": token})
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("post-logout status = %d", resp.StatusCode)
	}
}

func TestSubscriptionLifecycleAndDelivery(t *testing.T) {
	var mu sync.Mutex
	var received []redfish.Event
	sink := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var ev redfish.Event
		_ = json.NewDecoder(r.Body).Decode(&ev)
		mu.Lock()
		received = append(received, ev)
		mu.Unlock()
		w.WriteHeader(http.StatusOK)
	}))
	defer sink.Close()

	svc, srv := newTestServer(t, Config{DirectWrites: true})
	resp, body := doJSON(t, http.MethodPost, srv.URL+string(SubscriptionsURI), redfish.EventDestination{
		Destination: sink.URL,
		EventTypes:  []string{redfish.EventResourceAdded},
		Context:     "test-sub",
	}, nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("subscribe status = %d: %s", resp.StatusCode, body)
	}
	loc := resp.Header.Get("Location")

	// A store mutation produces a ResourceAdded event delivered to the sink.
	id := SystemsURI.Append("S1")
	if err := svc.Store().Put(id, redfish.ComputerSystem{
		Resource: odata.NewResource(id, redfish.TypeComputerSystem, "S1"),
		Status:   odata.StatusOK(),
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(received)
		mu.Unlock()
		if n >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no event delivered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	ev := received[0]
	mu.Unlock()
	if ev.Context != "test-sub" {
		t.Errorf("context = %q", ev.Context)
	}
	if ev.Events[0].EventType != redfish.EventResourceAdded {
		t.Errorf("event type = %s", ev.Events[0].EventType)
	}
	if ev.Events[0].OriginOfCondition.ODataID != id {
		t.Errorf("origin = %v", ev.Events[0].OriginOfCondition)
	}

	// Deleting the subscription stops delivery.
	resp, _ = doJSON(t, http.MethodDelete, srv.URL+loc, nil, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("unsubscribe status = %d", resp.StatusCode)
	}
	if got := len(svc.Bus().Subscriptions()); got != 0 {
		t.Errorf("subscriptions remaining = %d", got)
	}
}

func TestSubscriptionRequiresDestination(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	resp, _ := doJSON(t, http.MethodPost, srv.URL+string(SubscriptionsURI), map[string]string{}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

// fakeHandler records forwarded fabric operations.
type fakeHandler struct {
	fabric  odata.ID
	mu      sync.Mutex
	created []string
	deleted []string
	patched []odata.ID
	fail    bool
}

func (f *fakeHandler) FabricID() odata.ID { return f.fabric }

func (f *fakeHandler) CreateConnection(c *redfish.Connection) error {
	if f.fail {
		return errors.New("no path between endpoints")
	}
	f.mu.Lock()
	f.created = append(f.created, "conn:"+string(c.ODataID))
	f.mu.Unlock()
	c.Desc = "established by agent"
	return nil
}

func (f *fakeHandler) DeleteConnection(id odata.ID) error {
	if f.fail {
		return errors.New("busy")
	}
	f.mu.Lock()
	f.deleted = append(f.deleted, "conn:"+string(id))
	f.mu.Unlock()
	return nil
}

func (f *fakeHandler) CreateZone(z *redfish.Zone) error {
	if f.fail {
		return errors.New("zone limit reached")
	}
	f.mu.Lock()
	f.created = append(f.created, "zone:"+string(z.ODataID))
	f.mu.Unlock()
	return nil
}

func (f *fakeHandler) DeleteZone(id odata.ID) error {
	f.mu.Lock()
	f.deleted = append(f.deleted, "zone:"+string(id))
	f.mu.Unlock()
	return nil
}

func (f *fakeHandler) Patch(id odata.ID, patch map[string]any) error {
	if f.fail {
		return errors.New("unsupported property")
	}
	f.mu.Lock()
	f.patched = append(f.patched, id)
	f.mu.Unlock()
	return nil
}

func setupFabric(t *testing.T, svc *Service, name string) odata.ID {
	t.Helper()
	fab := FabricsURI.Append(name)
	if err := svc.Store().Put(fab, redfish.Fabric{
		Resource:    odata.NewResource(fab, redfish.TypeFabric, name),
		FabricType:  redfish.ProtocolCXL,
		Status:      odata.StatusOK(),
		Zones:       redfish.Ref(fab.Append("Zones")),
		Connections: redfish.Ref(fab.Append("Connections")),
	}); err != nil {
		t.Fatal(err)
	}
	svc.Store().RegisterCollection(fab.Append("Zones"), redfish.TypeZoneCollection, "Zones")
	svc.Store().RegisterCollection(fab.Append("Connections"), redfish.TypeConnectionCollection, "Connections")
	return fab
}

func TestZoneForwardedToAgent(t *testing.T) {
	svc, srv := newTestServer(t, Config{})
	fab := setupFabric(t, svc, "CXL")
	h := &fakeHandler{fabric: fab}
	svc.RegisterFabricHandler(h)

	resp, body := doJSON(t, http.MethodPost, srv.URL+string(fab.Append("Zones")), redfish.Zone{}, nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var zone redfish.Zone
	if err := json.Unmarshal(body, &zone); err != nil {
		t.Fatal(err)
	}
	if zone.ZoneType != redfish.ZoneTypeZoneOfEndpoints {
		t.Errorf("zone type = %s", zone.ZoneType)
	}
	h.mu.Lock()
	created := len(h.created)
	h.mu.Unlock()
	if created != 1 {
		t.Errorf("agent saw %d creates", created)
	}

	// Delete forwards too.
	resp, _ = doJSON(t, http.MethodDelete, srv.URL+string(zone.ODataID), nil, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	h.mu.Lock()
	deleted := len(h.deleted)
	h.mu.Unlock()
	if deleted != 1 {
		t.Errorf("agent saw %d deletes", deleted)
	}
}

func TestConnectionAgentRejection(t *testing.T) {
	svc, srv := newTestServer(t, Config{})
	fab := setupFabric(t, svc, "CXL")
	svc.RegisterFabricHandler(&fakeHandler{fabric: fab, fail: true})

	resp, body := doJSON(t, http.MethodPost, srv.URL+string(fab.Append("Connections")), redfish.Connection{}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	// Nothing stored on rejection.
	members, err := svc.Store().Members(fab.Append("Connections"))
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 0 {
		t.Errorf("rejected connection was stored: %v", members)
	}
}

func TestConnectionAgentMutatesPayload(t *testing.T) {
	svc, srv := newTestServer(t, Config{})
	fab := setupFabric(t, svc, "CXL")
	svc.RegisterFabricHandler(&fakeHandler{fabric: fab})

	resp, body := doJSON(t, http.MethodPost, srv.URL+string(fab.Append("Connections")), redfish.Connection{ConnectionType: "Memory"}, nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var conn redfish.Connection
	if err := json.Unmarshal(body, &conn); err != nil {
		t.Fatal(err)
	}
	if conn.Desc != "established by agent" {
		t.Errorf("agent mutation lost: %+v", conn)
	}
}

func TestPatchForwardedToAgent(t *testing.T) {
	svc, srv := newTestServer(t, Config{})
	fab := setupFabric(t, svc, "CXL")
	h := &fakeHandler{fabric: fab}
	svc.RegisterFabricHandler(h)
	port := fab.Append("Switches/SW1/Ports/P1")
	if err := svc.Store().Put(port, redfish.Port{
		Resource: odata.NewResource(port, redfish.TypePort, "P1"),
		Status:   odata.StatusOK(),
	}); err != nil {
		t.Fatal(err)
	}
	resp, _ := doJSON(t, http.MethodPatch, srv.URL+string(port), map[string]any{"LinkState": "Disabled"}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.patched) != 1 || h.patched[0] != port {
		t.Errorf("patched = %v", h.patched)
	}
}

func TestDirectWritesGate(t *testing.T) {
	// Without DirectWrites, generic mutation is rejected.
	svc, srv := newTestServer(t, Config{})
	id := SystemsURI.Append("S1")
	if err := svc.Store().Put(id, redfish.ComputerSystem{
		Resource: odata.NewResource(id, redfish.TypeComputerSystem, "S1"),
		Status:   odata.StatusOK(),
	}); err != nil {
		t.Fatal(err)
	}
	resp, _ := doJSON(t, http.MethodPatch, srv.URL+string(id), map[string]any{"HostName": "x"}, nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("patch status = %d", resp.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodDelete, srv.URL+string(id), nil, nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("delete status = %d", resp.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodPost, srv.URL+string(SystemsURI), map[string]any{"Name": "S2"}, nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("post status = %d", resp.StatusCode)
	}
}

func TestDirectWritesCRUD(t *testing.T) {
	_, srv := newTestServer(t, Config{DirectWrites: true})
	// Create.
	resp, body := doJSON(t, http.MethodPost, srv.URL+string(SystemsURI), map[string]any{"Name": "S"}, nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("post = %d: %s", resp.StatusCode, body)
	}
	loc := resp.Header.Get("Location")
	if loc == "" {
		t.Fatal("no Location")
	}
	// Patch with stale If-Match fails.
	resp, _ = doJSON(t, http.MethodPatch, srv.URL+loc, map[string]any{"Name": "S2"}, map[string]string{"If-Match": `"stale"`})
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Errorf("stale patch = %d", resp.StatusCode)
	}
	// Patch with correct etag succeeds.
	resp, _ = doJSON(t, http.MethodGet, srv.URL+loc, nil, nil)
	etag := resp.Header.Get("ETag")
	resp, body = doJSON(t, http.MethodPatch, srv.URL+loc, map[string]any{"Name": "S2"}, map[string]string{"If-Match": etag})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("patch = %d: %s", resp.StatusCode, body)
	}
	var got map[string]any
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got["Name"] != "S2" {
		t.Errorf("patched Name = %v", got["Name"])
	}
	// Delete.
	resp, _ = doJSON(t, http.MethodDelete, srv.URL+loc, nil, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("delete = %d", resp.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodGet, srv.URL+loc, nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("get after delete = %d", resp.StatusCode)
	}
}

func TestAggregationSourceRegistrationAndRemoval(t *testing.T) {
	svc, srv := newTestServer(t, Config{})
	fab := FabricsURI.Append("NVMe")
	// Register the agent, claiming the NVMe fabric subtree.
	src := redfish.AggregationSource{
		HostName: "http://127.0.0.1:9001",
		Oem:      redfish.AggSourceOem{OFMF: &redfish.AgentDescriptor{Technology: redfish.ProtocolNVMeOF}},
		Links:    redfish.AggSourceLinks{ResourcesAccessed: []odata.Ref{odata.NewRef(fab)}},
	}
	resp, body := doJSON(t, http.MethodPost, srv.URL+string(AggregationSourcesURI), src, nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register = %d: %s", resp.StatusCode, body)
	}
	loc := resp.Header.Get("Location")

	// Agent publishes its subtree (in-process path).
	err := svc.Store().PutSubtree(fab, map[odata.ID]any{
		fab: redfish.Fabric{
			Resource:   odata.NewResource(fab, redfish.TypeFabric, "NVMe"),
			FabricType: redfish.ProtocolNVMeOF,
			Status:     odata.StatusOK(),
		},
		fab.Append("Endpoints/E1"): redfish.Endpoint{
			Resource:         odata.NewResource(fab.Append("Endpoints/E1"), redfish.TypeEndpoint, "E1"),
			EndpointProtocol: redfish.ProtocolNVMeOF,
			Status:           odata.StatusOK(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, _ = doJSON(t, http.MethodGet, srv.URL+string(fab.Append("Endpoints/E1")), nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("aggregated resource not served: %d", resp.StatusCode)
	}

	// Deleting the aggregation source drops the subtree.
	resp, _ = doJSON(t, http.MethodDelete, srv.URL+loc, nil, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("deregister = %d", resp.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodGet, srv.URL+string(fab), nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("subtree survived deregistration: %d", resp.StatusCode)
	}
}

func TestTaskMirroredIntoTree(t *testing.T) {
	svc, srv := newTestServer(t, Config{})
	task := svc.Tasks().Start("compose system")
	resp, body := doJSON(t, http.MethodGet, srv.URL+string(task.URI()), nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var rt redfish.Task
	if err := json.Unmarshal(body, &rt); err != nil {
		t.Fatal(err)
	}
	if rt.TaskState != redfish.TaskRunning {
		t.Errorf("state = %s", rt.TaskState)
	}
	if err := task.Complete("ok"); err != nil {
		t.Fatal(err)
	}
	_, body = doJSON(t, http.MethodGet, srv.URL+string(task.URI()), nil, nil)
	if err := json.Unmarshal(body, &rt); err != nil {
		t.Fatal(err)
	}
	if rt.TaskState != redfish.TaskCompleted {
		t.Errorf("state = %s", rt.TaskState)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	req, _ := http.NewRequest("PUT", srv.URL+string(RootURI), bytes.NewReader([]byte("{}")))
	resp, err := (&http.Client{}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestCollectionMutationRejected(t *testing.T) {
	_, srv := newTestServer(t, Config{DirectWrites: true})
	resp, _ := doJSON(t, http.MethodPatch, srv.URL+string(SystemsURI), map[string]any{"Name": "x"}, nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("patch collection = %d", resp.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodDelete, srv.URL+string(SystemsURI), nil, nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("delete collection = %d", resp.StatusCode)
	}
}

func TestMalformedJSON(t *testing.T) {
	_, srv := newTestServer(t, Config{DirectWrites: true})
	req, _ := http.NewRequest(http.MethodPost, srv.URL+string(SystemsURI), bytes.NewReader([]byte("{not json")))
	resp, err := (&http.Client{}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestTrailingSlashEquivalent(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	resp, _ := doJSON(t, http.MethodGet, srv.URL+"/redfish/v1/", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestConcurrentClients(t *testing.T) {
	svc, srv := newTestServer(t, Config{DirectWrites: true})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, _ := doJSON(t, http.MethodPost, srv.URL+string(ChassisURI), map[string]any{"Name": fmt.Sprintf("c%d-%d", g, i)}, nil)
				if resp.StatusCode != http.StatusCreated {
					t.Errorf("post = %d", resp.StatusCode)
					return
				}
				resp, _ = doJSON(t, http.MethodGet, srv.URL+string(ChassisURI), nil, nil)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("get = %d", resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	members, err := svc.Store().Members(ChassisURI)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 160 {
		t.Errorf("members = %d, want 160", len(members))
	}
}

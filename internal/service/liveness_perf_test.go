package service

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"ofmf/internal/odata"
	"ofmf/internal/redfish"
)

// putSource writes an aggregation source straight into the store,
// bypassing HTTP — the bulk-registration path for sweep benchmarks.
func putSource(svc *Service, name string, beat time.Time) odata.ID {
	uri := AggregationSourcesURI.Append(name)
	src := redfish.AggregationSource{
		Resource: odata.NewResource(uri, "#AggregationSource.v1_2_0.AggregationSource", "Agent "+name),
		HostName: "http://" + name + ".example",
		Status:   odata.StatusOK(),
		Oem: redfish.AggSourceOem{OFMF: &redfish.AgentDescriptor{
			Technology:    "CXL",
			LastHeartbeat: redfish.Timestamp(beat),
		}},
	}
	if err := svc.store.Put(uri, src); err != nil {
		panic(err)
	}
	return uri
}

// TestSweepSteadyStateNoStoreReads is the O(changed) proof: once the
// heartbeat index is seeded, sweeps over a healthy fleet perform zero
// store operations — no Members scan, no per-source decode.
func TestSweepSteadyStateNoStoreReads(t *testing.T) {
	svc, srv := newTestServer(t, Config{})
	start := time.Unix(1_700_000_000, 0)
	for i := 0; i < 8; i++ {
		postSource(t, srv.URL, fmt.Sprintf("http://agent-%d.example", i), start)
	}

	now := start
	sweeper := svc.NewLivenessSweeper(LivenessConfig{StaleAfter: time.Minute})
	sweeper.SetClock(func() time.Time { return now })
	sweeper.Sweep() // seeds the index: store reads expected here

	var reads int64
	svc.store.SetOpHook(func(op string, _ int) {
		switch op {
		case "get", "members", "view", "collection", "collection_cached":
			atomic.AddInt64(&reads, 1)
		}
	})
	for i := 0; i < 5; i++ {
		now = now.Add(time.Second)
		sweeper.Sweep()
	}
	if got := atomic.LoadInt64(&reads); got != 0 {
		t.Fatalf("steady-state sweeps performed %d store reads, want 0", got)
	}
}

// TestSweepAfterDeletion checks the change stream evicts deleted
// sources: a source removed after seeding is never swept again and its
// pending deadline is orphaned.
func TestSweepAfterDeletion(t *testing.T) {
	svc, srv := newTestServer(t, Config{})
	start := time.Unix(1_700_000_000, 0)
	uri := postSource(t, srv.URL, "http://agent-gone.example", start)

	now := start
	sweeper := svc.NewLivenessSweeper(LivenessConfig{StaleAfter: time.Minute})
	sweeper.SetClock(func() time.Time { return now })
	sweeper.Sweep()

	if err := svc.store.Delete(uri); err != nil {
		t.Fatal(err)
	}
	// Way past every threshold: the sweep must not resurrect or patch
	// the deleted source.
	now = start.Add(time.Hour)
	sweeper.Sweep()
	var src redfish.AggregationSource
	if err := svc.store.GetAs(uri, &src); err == nil {
		t.Fatalf("deleted source reappeared: %+v", src)
	}
}

// BenchmarkLivenessSweep measures steady-state sweep cost over a 10k
// source fleet with fresh heartbeats: after the seed pass, nothing is
// due, so each sweep is one heap peek — independent of fleet size and
// free of store decodes (the old sweeper JSON-decoded all 10k sources
// every tick).
func BenchmarkLivenessSweep(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("sources=%d", n), func(b *testing.B) {
			svc := New(Config{})
			defer svc.Close()
			start := time.Unix(1_700_000_000, 0)
			for i := 0; i < n; i++ {
				putSource(svc, fmt.Sprintf("src-%d", i), start)
			}
			now := start
			sweeper := svc.NewLivenessSweeper(LivenessConfig{StaleAfter: time.Hour})
			sweeper.SetClock(func() time.Time { return now })
			sweeper.Sweep() // seed
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now = now.Add(time.Millisecond)
				sweeper.Sweep()
			}
		})
	}
}

package service

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"ofmf/internal/redfish"
	"ofmf/internal/store"
)

// TestRegisterConcurrentSameHost is the regression test for the
// registration race: the HostName dedup lookup used to run outside
// allocMu, so concurrent registrations of one HostName could both miss
// the existing source and mint duplicates. 100 goroutines registering
// the same callback URL must converge on exactly one source.
func TestRegisterConcurrentSameHost(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()

	const goroutines = 100
	const host = "http://agent-1.example:9000"
	uris := make([]string, goroutines)
	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait()
			src, _, err := svc.RegisterAggregationSource(context.Background(),
				redfish.AggregationSource{HostName: host})
			if err != nil {
				t.Errorf("register %d: %v", i, err)
				return
			}
			uris[i] = string(src.ODataID)
		}(i)
	}
	start.Done()
	wg.Wait()

	members, err := svc.Store().Members(AggregationSourcesURI)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 1 {
		t.Fatalf("want exactly 1 aggregation source, got %d: %v", len(members), members)
	}
	for i, uri := range uris {
		if uri != string(members[0]) {
			t.Fatalf("goroutine %d got URI %q, want %q", i, uri, members[0])
		}
	}
	var stored redfish.AggregationSource
	if err := svc.Store().GetAs(members[0], &stored); err != nil {
		t.Fatal(err)
	}
	if stored.HostName != host {
		t.Fatalf("stored HostName = %q, want %q", stored.HostName, host)
	}
}

// TestRegisterManyHostsConcurrent checks that distinct hosts never
// collide on allocated ids and each maps to its own source.
func TestRegisterManyHostsConcurrent(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()

	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			host := fmt.Sprintf("http://agent-%d.example:9000", i)
			// Register twice: the second must revive, not duplicate.
			if _, created, err := svc.RegisterAggregationSource(context.Background(),
				redfish.AggregationSource{HostName: host}); err != nil || !created {
				t.Errorf("host %d first register: created=%v err=%v", i, created, err)
			}
			if _, created, err := svc.RegisterAggregationSource(context.Background(),
				redfish.AggregationSource{HostName: host}); err != nil || created {
				t.Errorf("host %d second register: created=%v err=%v", i, created, err)
			}
		}(i)
	}
	wg.Wait()

	members, err := svc.Store().Members(AggregationSourcesURI)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != n {
		t.Fatalf("want %d aggregation sources, got %d", n, len(members))
	}
}

// TestHostIndexDeleteRecreate drives the host index with a
// delete-then-recreate cycle at the same HostName and checks the index
// tracks the live source, including when a stale pre-delete
// notification replays after the delete (the seq gate).
func TestHostIndexDeleteRecreate(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	ctx := context.Background()
	const host = "http://churn.example:9000"

	first, _, err := svc.RegisterAggregationSource(ctx, redfish.AggregationSource{HostName: host})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Store().Delete(first.ODataID); err != nil {
		t.Fatal(err)
	}
	if uri, ok := svc.hosts.lookup(host); ok {
		t.Fatalf("host still indexed after delete: %s", uri)
	}
	second, created, err := svc.RegisterAggregationSource(ctx, redfish.AggregationSource{HostName: host})
	if err != nil || !created {
		t.Fatalf("re-register after delete: created=%v err=%v", created, err)
	}
	if second.ODataID == first.ODataID {
		t.Fatalf("recreated source reused deleted URI %s", first.ODataID)
	}
	if uri, ok := svc.hosts.lookup(host); !ok || uri != second.ODataID {
		t.Fatalf("index maps %q to %q, want %q", host, uri, second.ODataID)
	}

	// A stale pre-delete notification (lower seq than the recreate) must
	// not clobber the live mapping.
	svc.hosts.onChange(store.Change{Kind: store.Updated, ID: first.ODataID, Seq: 1})
	if uri, ok := svc.hosts.lookup(host); !ok || uri != second.ODataID {
		t.Fatalf("stale notification clobbered index: %q → %q, want %q", host, uri, second.ODataID)
	}
}

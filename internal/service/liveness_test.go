package service

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"ofmf/internal/events"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
)

// postSource registers an aggregation source with a heartbeat stamped at
// the given time and returns its URI.
func postSource(t *testing.T, srvURL string, host string, beat time.Time) odata.ID {
	t.Helper()
	resp, body := doJSON(t, http.MethodPost, srvURL+string(AggregationSourcesURI), map[string]any{
		"HostName": host,
		"Name":     "Agent " + host,
		"Oem": map[string]any{"OFMF": map[string]any{
			"Technology":    "CXL",
			"LastHeartbeat": redfish.Timestamp(beat),
		}},
	}, nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d: %s", resp.StatusCode, body)
	}
	var src redfish.AggregationSource
	if err := json.Unmarshal(body, &src); err != nil {
		t.Fatal(err)
	}
	return src.ODataID
}

func sourceStatus(t *testing.T, svc *Service, uri odata.ID) odata.Status {
	t.Helper()
	var src redfish.AggregationSource
	if err := svc.store.GetAs(uri, &src); err != nil {
		t.Fatal(err)
	}
	return src.Status
}

// TestLivenessSweeperTransitions walks one source through the full
// verdict ladder: OK → Degraded → Unavailable → (heartbeat resumes) OK,
// checking the stored Status and the StatusChange events at each step.
func TestLivenessSweeperTransitions(t *testing.T) {
	svc, srv := newTestServer(t, Config{})

	var mu sync.Mutex
	var transitions []string
	if _, err := svc.Bus().Subscribe(events.SinkFunc(func(_ context.Context, ev redfish.Event) error {
		mu.Lock()
		defer mu.Unlock()
		for _, rec := range ev.Events {
			transitions = append(transitions, rec.Message)
		}
		return nil
	}), events.Filter{EventTypes: []string{redfish.EventStatusChange}}, "liveness-test"); err != nil {
		t.Fatal(err)
	}

	start := time.Unix(1_700_000_000, 0)
	uri := postSource(t, srv.URL, "http://agent-a.example", start)

	now := start
	sweeper := svc.NewLivenessSweeper(LivenessConfig{
		Interval:         10 * time.Millisecond,
		StaleAfter:       time.Minute,
		UnavailableAfter: 3 * time.Minute,
	})
	sweeper.SetClock(func() time.Time { return now })

	sweeper.Sweep()
	if st := sourceStatus(t, svc, uri); st != odata.StatusOK() {
		t.Fatalf("fresh source status = %+v", st)
	}

	// Stale past StaleAfter: Degraded, still Enabled.
	now = start.Add(90 * time.Second)
	sweeper.Sweep()
	if st := sourceStatus(t, svc, uri); st.State != odata.StateEnabled || st.Health != odata.HealthWarning {
		t.Fatalf("stale source status = %+v, want Enabled/Warning", st)
	}

	// A second sweep at the same level must not re-fire the transition.
	sweeper.Sweep()

	// Stale past UnavailableAfter: Unavailable/Critical.
	now = start.Add(5 * time.Minute)
	sweeper.Sweep()
	if st := sourceStatus(t, svc, uri); st.State != odata.StateUnavailable || st.Health != odata.HealthCritical {
		t.Fatalf("dead source status = %+v, want UnavailableOffline/Critical", st)
	}

	// Heartbeat resumes: next sweep restores OK.
	if err := svc.store.Patch(uri, map[string]any{
		"Oem": map[string]any{"OFMF": map[string]any{"LastHeartbeat": redfish.Timestamp(now)}},
	}, ""); err != nil {
		t.Fatal(err)
	}
	sweeper.Sweep()
	if st := sourceStatus(t, svc, uri); st != odata.StatusOK() {
		t.Fatalf("recovered source status = %+v", st)
	}

	want := []string{"Degraded", "Unavailable", "OK"}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(transitions)
		mu.Unlock()
		if n >= len(want) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("saw %d transition events, want %d", n, len(want))
		}
		time.Sleep(2 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(transitions) != len(want) {
		t.Fatalf("transition events = %q, want %d", transitions, len(want))
	}
	for i, word := range want {
		if !strings.Contains(transitions[i], " is "+word+" ") {
			t.Errorf("transition %d = %q, want %q", i, transitions[i], word)
		}
	}
}

// TestLivenessSweeperDetectsSilentSinceRegistration covers agents that
// register and then never beat: staleness is anchored at first sight.
func TestLivenessSweeperDetectsSilentSinceRegistration(t *testing.T) {
	svc, srv := newTestServer(t, Config{})

	// Register without any heartbeat field at all.
	resp, body := doJSON(t, http.MethodPost, srv.URL+string(AggregationSourcesURI), map[string]any{
		"HostName": "http://mute.example", "Name": "Mute Agent",
	}, nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d: %s", resp.StatusCode, body)
	}
	var src redfish.AggregationSource
	if err := json.Unmarshal(body, &src); err != nil {
		t.Fatal(err)
	}

	start := time.Unix(1_700_000_000, 0)
	now := start
	sweeper := svc.NewLivenessSweeper(LivenessConfig{StaleAfter: time.Minute})
	sweeper.SetClock(func() time.Time { return now })

	sweeper.Sweep() // anchors firstSeen
	if st := sourceStatus(t, svc, src.ODataID); st != odata.StatusOK() {
		t.Fatalf("just-seen source status = %+v", st)
	}
	now = start.Add(2 * time.Minute)
	sweeper.Sweep()
	if st := sourceStatus(t, svc, src.ODataID); st.Health != odata.HealthWarning {
		t.Fatalf("silent source status = %+v, want Warning", st)
	}
}

// TestLivenessSweeperStartStop exercises the ticker path end to end with
// real (short) intervals.
func TestLivenessSweeperStartStop(t *testing.T) {
	svc, srv := newTestServer(t, Config{})
	uri := postSource(t, srv.URL, "http://agent-b.example", time.Now().Add(-time.Hour))

	sweeper := svc.NewLivenessSweeper(LivenessConfig{
		Interval:         2 * time.Millisecond,
		StaleAfter:       10 * time.Millisecond,
		UnavailableAfter: 20 * time.Millisecond,
	})
	stop := sweeper.Start()
	defer stop()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := sourceStatus(t, svc, uri); st.State == odata.StateUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweeper never marked the hour-stale source Unavailable")
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop() // idempotent
}

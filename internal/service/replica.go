package service

import (
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync"
)

// replicaMode is the service's read-replica serving state. GET and HEAD
// are answered from the local store — a replica's tree is the leader's,
// applied in commit order by the replication stream — while mutations
// and SSE (whose event sequence is leader-owned) go to the leader,
// either as a 307 redirect the client follows itself or through a
// reverse proxy when clients cannot chase redirects.
//
// Sessions are node-local: a token minted by the leader does not
// validate on a replica. Replicated read scale-out therefore pairs with
// either tokenless deployments (trusted management network) or clients
// that pin reads to one node per session.
type replicaMode struct {
	// leader returns the current leader's base URL ("" while the
	// replication layer is between leaders).
	leader func() string
	// proxyWrites forwards mutations through this node instead of
	// redirecting the client.
	proxyWrites bool

	mu      sync.Mutex
	proxies map[string]*httputil.ReverseProxy
}

// SetReplicaMode switches the service into replica serving: local
// reads, forwarded writes. leader is consulted per request, so a
// failover needs no re-arm — the replication layer just starts
// returning the new leader's URL.
func (s *Service) SetReplicaMode(leader func() string, proxyWrites bool) {
	s.replica.Store(&replicaMode{
		leader:      leader,
		proxyWrites: proxyWrites,
		proxies:     make(map[string]*httputil.ReverseProxy),
	})
	s.log.Info("service: replica mode on", "proxy_writes", proxyWrites)
}

// ClearReplicaMode returns the service to normal read-write serving;
// the replication layer calls it on promotion.
func (s *Service) ClearReplicaMode() {
	if s.replica.Swap(nil) != nil {
		s.log.Info("service: replica mode off (promoted)")
	}
}

// forwardToLeader hands a request the replica must not serve to the
// leader. The redirect carries the original path and query, so any
// Redfish client that follows 307s (curl -L, the Go default client)
// keeps working unchanged against a replica endpoint.
func (s *Service) forwardToLeader(w http.ResponseWriter, r *http.Request, rm *replicaMode) {
	leaderURL := rm.leader()
	if leaderURL == "" {
		s.error(w, r, http.StatusServiceUnavailable, "Base.1.0.ServiceTemporarilyUnavailable",
			"replica has no leader to forward to; retry shortly")
		return
	}
	if !rm.proxyWrites {
		w.Header().Set("Location", leaderURL+r.URL.RequestURI())
		w.WriteHeader(http.StatusTemporaryRedirect)
		return
	}
	target, err := url.Parse(leaderURL)
	if err != nil {
		s.error(w, r, http.StatusBadGateway, "Base.1.0.GeneralError", "bad leader URL")
		return
	}
	rm.mu.Lock()
	proxy := rm.proxies[leaderURL]
	if proxy == nil {
		proxy = httputil.NewSingleHostReverseProxy(target)
		rm.proxies[leaderURL] = proxy
	}
	rm.mu.Unlock()
	proxy.ServeHTTP(w, r)
}

package service

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"ofmf/internal/events"
	"ofmf/internal/redfish"
)

func TestSSEStreamDeliversEvents(t *testing.T) {
	svc, srv := newTestServer(t, Config{})

	resp, err := http.Get(srv.URL + string(SSEURI))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %s", ct)
	}

	// Give the subscription a moment to register, then publish.
	deadline := time.Now().Add(2 * time.Second)
	for len(svc.Bus().Subscriptions()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("SSE subscription never registered")
		}
		time.Sleep(2 * time.Millisecond)
	}
	svc.Bus().Publish(events.Record(redfish.EventAlert, "sse-1", "link degraded", "/redfish/v1/Fabrics/X"))

	reader := bufio.NewReader(resp.Body)
	var dataLine string
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			line, err := reader.ReadString('\n')
			if err != nil {
				return
			}
			if strings.HasPrefix(line, "data: ") {
				dataLine = strings.TrimSpace(strings.TrimPrefix(line, "data: "))
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("no SSE frame received")
	}
	var ev redfish.Event
	if err := json.Unmarshal([]byte(dataLine), &ev); err != nil {
		t.Fatalf("bad frame %q: %v", dataLine, err)
	}
	if len(ev.Events) != 1 || ev.Events[0].EventID != "sse-1" {
		t.Errorf("event = %+v", ev)
	}
}

func TestSSEAdvertisedInEventService(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	resp, body := doJSON(t, http.MethodGet, srv.URL+string(EventServiceURI), nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var es redfish.EventService
	if err := json.Unmarshal(body, &es); err != nil {
		t.Fatal(err)
	}
	if es.ServerSentEventURI != string(SSEURI) {
		t.Errorf("ServerSentEventUri = %q", es.ServerSentEventURI)
	}
}

func TestSSERejectsPost(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	resp, _ := doJSON(t, http.MethodPost, srv.URL+string(SSEURI), map[string]any{}, nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestSSEUnsubscribesOnDisconnect(t *testing.T) {
	svc, srv := newTestServer(t, Config{})
	resp, err := http.Get(srv.URL + string(SSEURI))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(svc.Bus().Subscriptions()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription never appeared")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp.Body.Close() // client disconnects
	deadline = time.Now().Add(2 * time.Second)
	for len(svc.Bus().Subscriptions()) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription leaked after disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

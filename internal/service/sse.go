package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"ofmf/internal/events"
	"ofmf/internal/redfish"
)

// SSEURI is the EventService's server-sent-event stream: clients GET it
// and receive every matching event as an SSE "data:" frame, the push
// alternative to webhook subscriptions for monitoring dashboards.
const SSEURI = EventServiceURI + "/SSE"

// sseFrame is one queued server-sent event: the frame id plus the
// publish's shared payload bytes (see events.BytesSink) — the stream
// writer never re-marshals an event.
type sseFrame struct {
	id      string
	payload []byte
}

// sseSink bridges the event bus to one SSE stream. It implements
// events.BytesSink, so frames carry the publish's marshal-once payload;
// a full queue drops the frame (counted per stream and globally) rather
// than stalling a shared bus worker on one slow browser.
type sseSink struct {
	ch      chan sseFrame
	dropped atomic.Int64
	global  interface{ Inc() }
}

func (k *sseSink) DeliverBytes(_ context.Context, eventID string, payload []byte) error {
	select {
	case k.ch <- sseFrame{id: eventID, payload: payload}:
	default: // slow consumer: drop rather than stall the bus worker
		k.dropped.Add(1)
		k.global.Inc()
	}
	return nil
}

// Deliver exists to satisfy events.Sink; the bus always prefers the
// BytesSink path above.
func (k *sseSink) Deliver(ctx context.Context, ev redfish.Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	return k.DeliverBytes(ctx, ev.ID, data)
}

// parseSSEFilter builds the subscription filter from the optional
// ?EventType= query: repeated parameters and comma-separated lists both
// work, mirroring the list filters webhook subscriptions take.
func parseSSEFilter(query []string) events.Filter {
	var filter events.Filter
	for _, v := range query {
		for _, t := range strings.Split(v, ",") {
			if t = strings.TrimSpace(t); t != "" {
				filter.EventTypes = append(filter.EventTypes, t)
			}
		}
	}
	return filter
}

func (s *Service) handleSSE(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.error(w, r, http.StatusMethodNotAllowed, "Base.1.0.OperationNotAllowed", "GET only")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.error(w, r, http.StatusNotImplemented, "Base.1.0.NotImplemented", "streaming unsupported by transport")
		return
	}

	filter := parseSSEFilter(r.URL.Query()["EventType"])
	sink := &sseSink{ch: make(chan sseFrame, 64), global: s.metrics.SSEDropped}
	// Empty Context: the stream shares each publish's base payload bytes
	// with every other context-free subscriber.
	sub, err := s.bus.Subscribe(sink, filter, "")
	if err != nil {
		s.error(w, r, http.StatusServiceUnavailable, "Base.1.0.ServiceShuttingDown", err.Error())
		return
	}
	s.metrics.SSESubscribers.Inc()
	defer s.metrics.SSESubscribers.Dec()
	defer func() {
		_ = s.bus.Unsubscribe(sub.ID)
		if n := sink.dropped.Load(); n > 0 {
			s.log.LogAttrs(r.Context(), slog.LevelWarn, "sse stream dropped events",
				slog.String("subscription", sub.ID), slog.Int64("dropped", n))
		}
	}()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// Periodic comment frames detect clients that vanished without closing
	// the connection: the first write to a dead peer fails and ends the
	// stream, releasing its bus subscription. A write error on an event
	// frame means nothing further can ever be delivered, so the stream
	// terminates rather than silently discarding events.
	keepalive := s.cfg.SSEKeepalive
	if keepalive == 0 {
		keepalive = 15 * time.Second
	}
	var keepaliveC <-chan time.Time
	if keepalive > 0 {
		tick := time.NewTicker(keepalive)
		defer tick.Stop()
		keepaliveC = tick.C
	}

	for {
		select {
		case <-r.Context().Done():
			return
		case <-keepaliveC:
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case fr := <-sink.ch:
			if _, err := fmt.Fprintf(w, "id: %s\ndata: %s\n\n", fr.id, fr.payload); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

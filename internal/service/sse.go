package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"ofmf/internal/events"
	"ofmf/internal/redfish"
)

// SSEURI is the EventService's server-sent-event stream: clients GET it
// and receive every matching event as an SSE "data:" frame, the push
// alternative to webhook subscriptions for monitoring dashboards.
const SSEURI = EventServiceURI + "/SSE"

func (s *Service) handleSSE(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.error(w, r, http.StatusMethodNotAllowed, "Base.1.0.OperationNotAllowed", "GET only")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.error(w, r, http.StatusNotImplemented, "Base.1.0.NotImplemented", "streaming unsupported by transport")
		return
	}

	// Optional ?EventType=Alert filter, mirroring subscription filters.
	var filter events.Filter
	if et := r.URL.Query().Get("EventType"); et != "" {
		filter.EventTypes = []string{et}
	}

	ch := make(chan redfish.Event, 64)
	sub, err := s.bus.Subscribe(events.SinkFunc(func(_ context.Context, ev redfish.Event) error {
		select {
		case ch <- ev:
		default: // slow consumer: drop rather than stall the bus worker
			s.metrics.SSEDropped.Inc()
		}
		return nil
	}), filter, "sse")
	if err != nil {
		s.error(w, r, http.StatusServiceUnavailable, "Base.1.0.ServiceShuttingDown", err.Error())
		return
	}
	s.metrics.SSESubscribers.Inc()
	defer s.metrics.SSESubscribers.Dec()
	defer func() { _ = s.bus.Unsubscribe(sub.ID) }()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// Periodic comment frames detect clients that vanished without closing
	// the connection: the first write to a dead peer fails and ends the
	// stream, releasing its bus subscription. A write error on an event
	// frame means nothing further can ever be delivered, so the stream
	// terminates rather than silently discarding events.
	keepalive := s.cfg.SSEKeepalive
	if keepalive == 0 {
		keepalive = 15 * time.Second
	}
	var keepaliveC <-chan time.Time
	if keepalive > 0 {
		tick := time.NewTicker(keepalive)
		defer tick.Stop()
		keepaliveC = tick.C
	}

	for {
		select {
		case <-r.Context().Done():
			return
		case <-keepaliveC:
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case ev := <-ch:
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "id: %s\ndata: %s\n\n", ev.ID, data); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"ofmf/internal/events"
	"ofmf/internal/redfish"
)

// SSEURI is the EventService's server-sent-event stream: clients GET it
// and receive every matching event as an SSE "data:" frame, the push
// alternative to webhook subscriptions for monitoring dashboards.
const SSEURI = EventServiceURI + "/SSE"

func (s *Service) handleSSE(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.error(w, r, http.StatusMethodNotAllowed, "Base.1.0.OperationNotAllowed", "GET only")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.error(w, r, http.StatusNotImplemented, "Base.1.0.NotImplemented", "streaming unsupported by transport")
		return
	}

	// Optional ?EventType=Alert filter, mirroring subscription filters.
	var filter events.Filter
	if et := r.URL.Query().Get("EventType"); et != "" {
		filter.EventTypes = []string{et}
	}

	ch := make(chan redfish.Event, 64)
	sub, err := s.bus.Subscribe(events.SinkFunc(func(_ context.Context, ev redfish.Event) error {
		select {
		case ch <- ev:
		default: // slow consumer: drop rather than stall the bus worker
			s.metrics.SSEDropped.Inc()
		}
		return nil
	}), filter, "sse")
	if err != nil {
		s.error(w, r, http.StatusServiceUnavailable, "Base.1.0.ServiceShuttingDown", err.Error())
		return
	}
	s.metrics.SSESubscribers.Inc()
	defer s.metrics.SSESubscribers.Dec()
	defer func() { _ = s.bus.Unsubscribe(sub.ID) }()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "id: %s\ndata: %s\n\n", ev.ID, data)
			flusher.Flush()
		}
	}
}

package service

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ofmf/internal/events"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/store"
)

// Liveness verdict levels, in order of decreasing health.
const (
	liveOK = iota
	liveDegraded
	liveUnavailable
)

// Exported liveness levels for introspection consumers: the chaos
// harness compares SourcesSnapshot verdicts against its ground truth.
const (
	LiveOK          = liveOK
	LiveDegraded    = liveDegraded
	LiveUnavailable = liveUnavailable
)

// LivenessConfig tunes the aggregation-source liveness sweeper.
type LivenessConfig struct {
	// Interval is the sweep cadence (default 10s).
	Interval time.Duration
	// StaleAfter is the heartbeat age at which a source is marked
	// Degraded (default 3×Interval).
	StaleAfter time.Duration
	// UnavailableAfter is the heartbeat age at which a Degraded source
	// is marked Unavailable (default 3×StaleAfter).
	UnavailableAfter time.Duration
}

func (c LivenessConfig) withDefaults() LivenessConfig {
	if c.Interval <= 0 {
		c.Interval = 10 * time.Second
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = 3 * c.Interval
	}
	if c.UnavailableAfter <= 0 {
		c.UnavailableAfter = 3 * c.StaleAfter
	}
	return c
}

// LivenessSweeper watches every AggregationSource's
// Oem.OFMF.LastHeartbeat and flips the source's Status as heartbeats go
// stale — Degraded (Health Warning) after StaleAfter, Unavailable
// (State UnavailableOffline, Health Critical) after UnavailableAfter —
// and back to OK when they resume. Every transition publishes a
// StatusChange event and refreshes the ofmf_agent_liveness gauge, so
// both subscribers and scrapers see dead agents without polling the
// tree. This closes the paper's centralization loop: the OFMF owns all
// composition state, so it must also own the authoritative view of
// which agents still answer for theirs.
//
// The sweeper keeps its own heartbeat index, fed by the store's change
// stream (registrations, heartbeat patches, deletions all pass through
// the store), plus a min-heap of next-transition deadlines. A sweep
// therefore pops only the sources whose verdict can have changed since
// the last pass — O(changed), not O(fleet) — and never decodes the
// AggregationSources collection in steady state. Store writes, event
// publishes and logging all happen after the sweeper mutex is
// released, so a slow store can't back up the heartbeat path.
type LivenessSweeper struct {
	svc *Service
	cfg LivenessConfig

	mu  sync.Mutex
	now func() time.Time
	// sources is the in-memory heartbeat index, keyed by source URI.
	sources map[odata.ID]*sourceEntry
	// deadlines orders sources by the earliest instant their verdict can
	// change. Entries are invalidated lazily: each (re)schedule bumps the
	// entry's gen, and popped items whose gen no longer matches are
	// skipped.
	deadlines deadlineHeap
	// tombs records the Change.Seq of each evicted source URI. The store
	// notifies watchers after releasing its shard lock, so notifications
	// for one URI can interleave across goroutines; without the
	// tombstone, a delete-then-recreate at the same URI whose stale
	// pre-delete notification replayed last would resurrect the old
	// entry — and its old deadline — firing a spurious Degraded for a
	// source that is beating fine.
	tombs map[odata.ID]uint64
	// seeded flips once the index has been primed from the store; seeding
	// is lazy so a sweeper built before a test clock is installed anchors
	// never-beaten sources against the right epoch.
	seeded  bool
	nextGen uint64

	seq int64 // event-id sequence (atomic)
}

// sourceEntry is one aggregation source's liveness state.
type sourceEntry struct {
	lastBeat time.Time // zero if the source has never sent a heartbeat
	// anchor is when the sweeper first saw the source; staleness for
	// never-beaten sources is measured from it, so an agent that dies
	// between registration and its first beat is still detected.
	anchor time.Time
	level  int
	// local marks in-process agents (no callback URL): they share the
	// OFMF's process fate, so there is no management path to lose and
	// they are live by construction, never swept.
	local bool
	gen   uint64 // matches the entry's one live deadline item, if any
	// seq is the Change.Seq of the newest change applied to this entry;
	// older reordered notifications are discarded against it. Zero for
	// entries primed by seedLocked (the store read is authoritative).
	seq uint64
}

// deadlineItem schedules one source for re-evaluation at a given time.
type deadlineItem struct {
	at  time.Time
	uri odata.ID
	gen uint64
}

// deadlineHeap is a min-heap of deadline items ordered by time.
type deadlineHeap []deadlineItem

func (h deadlineHeap) Len() int           { return len(h) }
func (h deadlineHeap) Less(i, j int) bool { return h[i].at.Before(h[j].at) }
func (h deadlineHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *deadlineHeap) Push(x any)        { *h = append(*h, x.(deadlineItem)) }
func (h *deadlineHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = deadlineItem{}
	*h = old[:n-1]
	return it
}

// aggSourcesPrefix prefixes every aggregation-source URI; precomputed so
// the change-stream filter on the store's hot mutation path is a plain
// string check with no allocation.
var aggSourcesPrefix = string(AggregationSourcesURI) + "/"

// NewLivenessSweeper builds a sweeper over the service's aggregation
// sources and subscribes it to the store's change stream. Start it with
// Start, or drive sweeps manually with Sweep.
func (s *Service) NewLivenessSweeper(cfg LivenessConfig) *LivenessSweeper {
	w := &LivenessSweeper{
		svc:     s,
		cfg:     cfg.withDefaults(),
		now:     time.Now,
		sources: make(map[odata.ID]*sourceEntry),
		tombs:   make(map[odata.ID]uint64),
	}
	s.store.Watch(w.onChange)
	return w
}

// SetClock overrides the sweeper's time source (tests).
func (w *LivenessSweeper) SetClock(now func() time.Time) {
	w.mu.Lock()
	w.now = now
	w.mu.Unlock()
}

// Start runs the sweeper at its configured interval until the returned
// stop function is called.
func (w *LivenessSweeper) Start() (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(w.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				w.Sweep()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
}

// onChange maintains the heartbeat index from the store's change
// stream: registrations and heartbeat patches upsert, deletions evict.
func (w *LivenessSweeper) onChange(c store.Change) {
	// Cheap reject for the overwhelming majority of mutations: only
	// direct children of the AggregationSources collection matter.
	id := string(c.ID)
	if !strings.HasPrefix(id, aggSourcesPrefix) {
		return
	}
	if rest := id[len(aggSourcesPrefix):]; rest == "" || strings.Contains(rest, "/") {
		return
	}
	if c.Kind == store.Removed {
		w.mu.Lock()
		if e, ok := w.sources[c.ID]; ok {
			if c.Seq > e.seq {
				delete(w.sources, c.ID)
				w.nextGen++
				e.gen = w.nextGen // orphan any scheduled deadline
				w.tombs[c.ID] = c.Seq
			}
			// else: stale delete ordered before the entry's newest state
			// (the source was recreated); keep the live entry.
		} else if c.Seq > w.tombs[c.ID] {
			w.tombs[c.ID] = c.Seq
		}
		w.mu.Unlock()
		return
	}
	// The read can observe a state newer than this change; that is safe:
	// the newer mutation's own (higher-seq) notification re-applies it,
	// and the seq gate below keeps this one from clobbering it.
	var src redfish.AggregationSource
	if err := w.svc.store.GetAs(c.ID, &src); err != nil {
		return
	}
	w.mu.Lock()
	w.upsertLocked(c.ID, &src, w.now(), c.Seq)
	w.mu.Unlock()
}

// upsertLocked reconciles one source's index entry against its stored
// form and (re)schedules its next deadline. seq is the triggering
// Change.Seq (zero when priming from a direct store read); stale
// reordered notifications — including upserts ordered before a delete —
// are discarded so a recreate at the same URI starts from a fresh
// entry instead of resurrecting the old one's deadline. Callers hold
// w.mu.
func (w *LivenessSweeper) upsertLocked(uri odata.ID, src *redfish.AggregationSource, now time.Time, seq uint64) {
	e, ok := w.sources[uri]
	if !ok {
		if seq != 0 && seq <= w.tombs[uri] {
			return // pre-delete notification arriving after the delete
		}
		delete(w.tombs, uri)
		e = &sourceEntry{anchor: now}
		w.sources[uri] = e
	} else if seq != 0 && seq <= e.seq {
		return // stale reordered notification
	}
	if seq > e.seq {
		e.seq = seq
	}
	w.nextGen++
	e.gen = w.nextGen // supersede any previously scheduled deadline
	if src.HostName == "" {
		e.local = true
		w.svc.metrics.AgentLiveness.With(uri.Leaf()).Set(1)
		return
	}
	e.local = false
	e.lastBeat = time.Time{}
	if src.Oem.OFMF != nil && src.Oem.OFMF.LastHeartbeat != "" {
		if t, err := time.Parse(time.RFC3339, src.Oem.OFMF.LastHeartbeat); err == nil {
			e.lastBeat = t
		}
	}
	e.level = levelOf(src.Status)
	w.svc.metrics.AgentLiveness.With(uri.Leaf()).Set(livenessValue(e.level))
	if w.ageLevelLocked(e, now) != e.level {
		// The stored status already disagrees with the heartbeat age
		// (fresh beat on a downed source, or a source registered stale):
		// have the next sweep reconcile it immediately.
		heap.Push(&w.deadlines, deadlineItem{at: now, uri: uri, gen: e.gen})
		return
	}
	w.scheduleLocked(uri, e)
}

// scheduleLocked pushes the entry's next possible-transition deadline,
// derived from its current level and heartbeat anchor. Unavailable is
// terminal by age alone — only a fresh heartbeat (which arrives through
// onChange) can move it, so nothing is scheduled. Callers hold w.mu and
// have already bumped e.gen for this schedule.
func (w *LivenessSweeper) scheduleLocked(uri odata.ID, e *sourceEntry) {
	base := e.lastBeat
	if base.IsZero() {
		base = e.anchor
	}
	var at time.Time
	switch e.level {
	case liveOK:
		at = base.Add(w.cfg.StaleAfter)
	case liveDegraded:
		at = base.Add(w.cfg.UnavailableAfter)
	default:
		return
	}
	heap.Push(&w.deadlines, deadlineItem{at: at, uri: uri, gen: e.gen})
}

// ageLevelLocked computes the verdict the source's heartbeat age alone
// implies at the given instant. Callers hold w.mu.
func (w *LivenessSweeper) ageLevelLocked(e *sourceEntry, now time.Time) int {
	age := w.ageLocked(e, now)
	switch {
	case age >= w.cfg.UnavailableAfter:
		return liveUnavailable
	case age >= w.cfg.StaleAfter:
		return liveDegraded
	}
	return liveOK
}

// ageLocked is the source's heartbeat age (anchor-relative when it has
// never beaten). Callers hold w.mu.
func (w *LivenessSweeper) ageLocked(e *sourceEntry, now time.Time) time.Duration {
	base := e.lastBeat
	if base.IsZero() {
		base = e.anchor
	}
	return now.Sub(base)
}

// seedLocked primes the index from the store. It runs once, on the
// first sweep; afterwards the change stream keeps the index current and
// sweeps touch the store only to apply transitions. Callers hold w.mu.
func (w *LivenessSweeper) seedLocked(now time.Time) {
	members, err := w.svc.store.Members(AggregationSourcesURI)
	if err != nil {
		return
	}
	for _, uri := range members {
		if _, ok := w.sources[uri]; ok {
			continue // already indexed by a change-stream event
		}
		var src redfish.AggregationSource
		if err := w.svc.store.GetAs(uri, &src); err != nil {
			continue
		}
		w.upsertLocked(uri, &src, now, 0)
	}
	w.seeded = true
}

// transition is one verdict change collected under the sweeper mutex
// and applied (store patch, event, log) after it is released.
type transition struct {
	uri      odata.ID
	from, to int
	age      time.Duration
}

// Sweep performs one liveness pass. It pops only the sources whose
// deadline has arrived; everything else is untouched.
func (w *LivenessSweeper) Sweep() {
	start := time.Now()
	w.mu.Lock()
	now := w.now()
	if !w.seeded {
		w.seedLocked(now)
	}
	var due []transition
	for len(w.deadlines) > 0 && !w.deadlines[0].at.After(now) {
		it := heap.Pop(&w.deadlines).(deadlineItem)
		e, ok := w.sources[it.uri]
		if !ok || e.gen != it.gen || e.local {
			continue // superseded, evicted, or became in-process
		}
		level := w.ageLevelLocked(e, now)
		w.nextGen++
		e.gen = w.nextGen
		if level != e.level {
			due = append(due, transition{uri: it.uri, from: e.level, to: level, age: w.ageLocked(e, now)})
			e.level = level
		}
		w.scheduleLocked(it.uri, e)
	}
	w.mu.Unlock()
	for _, tr := range due {
		w.apply(tr)
	}
	if w.svc.metrics.SweepSeconds != nil {
		w.svc.metrics.SweepSeconds.Observe(time.Since(start).Seconds())
	}
}

// apply writes one transition to the store and announces it. Runs with
// w.mu released: store I/O, event fan-out and logging never block the
// heartbeat path through onChange.
func (w *LivenessSweeper) apply(tr transition) {
	status, word, severity := statusFor(tr.to)
	if err := w.svc.store.Patch(tr.uri, map[string]any{"Status": map[string]any{
		"State": status.State, "Health": status.Health,
	}}, ""); err != nil {
		w.mu.Lock()
		if e, ok := w.sources[tr.uri]; ok && !e.local {
			if errors.Is(err, store.ErrNotFound) {
				// The source is gone and its Removed notification may have
				// been processed before this sweep's transition was
				// collected: drop the entry. Reverting and rescheduling
				// here would retry the patch of a deleted source forever.
				delete(w.sources, tr.uri)
				w.nextGen++
				e.gen = w.nextGen
			} else {
				// Transient store error: revert the index so the next
				// sweep retries rather than believing the write.
				e.level = tr.from
				w.nextGen++
				e.gen = w.nextGen
				heap.Push(&w.deadlines, deadlineItem{at: w.now(), uri: tr.uri, gen: e.gen})
			}
		}
		w.mu.Unlock()
		return
	}
	w.svc.metrics.AgentLiveness.With(tr.uri.Leaf()).Set(livenessValue(tr.to))
	seq := atomic.AddInt64(&w.seq, 1)
	rec := events.Record(redfish.EventStatusChange, fmt.Sprintf("liveness-%d", seq),
		fmt.Sprintf("aggregation source %s is %s (heartbeat age %s)", tr.uri.Leaf(), word, tr.age.Round(time.Second)), tr.uri)
	rec.Severity = severity
	w.svc.bus.Publish(rec)
	w.svc.log.LogAttrs(context.Background(), slog.LevelWarn, "agent liveness transition",
		slog.String("source", string(tr.uri)),
		slog.String("to", word),
		slog.Duration("heartbeat_age", tr.age),
	)
}

// SourcesSnapshot returns the sweeper's current verdict for every
// indexed source (LiveOK/LiveDegraded/LiveUnavailable). The chaos
// harness diffs it against the store's members and its own ground
// truth after churn: a key the store lacks is a ghost entry, a missing
// key is a lost registration, a wrong level is a convergence failure.
func (w *LivenessSweeper) SourcesSnapshot() map[odata.ID]int {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[odata.ID]int, len(w.sources))
	for uri, e := range w.sources {
		out[uri] = e.level
	}
	return out
}

// PendingDeadlines returns the deadline heap's length (live plus
// lazily-invalidated entries) — a churn-leak signal for the harness.
func (w *LivenessSweeper) PendingDeadlines() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.deadlines)
}

// Tombstones returns the number of deletion tombstones held.
func (w *LivenessSweeper) Tombstones() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.tombs)
}

// levelOf maps a stored Status back to a liveness level.
func levelOf(st odata.Status) int {
	switch {
	case st.State == odata.StateUnavailable || st.Health == odata.HealthCritical:
		return liveUnavailable
	case st.Health == odata.HealthWarning:
		return liveDegraded
	}
	return liveOK
}

// statusFor maps a liveness level to the Redfish status written to the
// source, the transition word used in events, and the event severity.
func statusFor(level int) (odata.Status, string, string) {
	switch level {
	case liveUnavailable:
		return odata.Status{State: odata.StateUnavailable, Health: odata.HealthCritical}, "Unavailable", "Critical"
	case liveDegraded:
		return odata.Status{State: odata.StateEnabled, Health: odata.HealthWarning}, "Degraded", "Warning"
	}
	return odata.StatusOK(), "OK", "OK"
}

// livenessValue renders a level as the ofmf_agent_liveness gauge value.
func livenessValue(level int) float64 {
	switch level {
	case liveUnavailable:
		return 0
	case liveDegraded:
		return 0.5
	}
	return 1
}

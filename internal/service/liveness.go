package service

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"ofmf/internal/events"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
)

// Liveness verdict levels, in order of decreasing health.
const (
	liveOK = iota
	liveDegraded
	liveUnavailable
)

// LivenessConfig tunes the aggregation-source liveness sweeper.
type LivenessConfig struct {
	// Interval is the sweep cadence (default 10s).
	Interval time.Duration
	// StaleAfter is the heartbeat age at which a source is marked
	// Degraded (default 3×Interval).
	StaleAfter time.Duration
	// UnavailableAfter is the heartbeat age at which a Degraded source
	// is marked Unavailable (default 3×StaleAfter).
	UnavailableAfter time.Duration
}

func (c LivenessConfig) withDefaults() LivenessConfig {
	if c.Interval <= 0 {
		c.Interval = 10 * time.Second
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = 3 * c.Interval
	}
	if c.UnavailableAfter <= 0 {
		c.UnavailableAfter = 3 * c.StaleAfter
	}
	return c
}

// LivenessSweeper watches every AggregationSource's
// Oem.OFMF.LastHeartbeat and flips the source's Status as heartbeats go
// stale — Degraded (Health Warning) after StaleAfter, Unavailable
// (State UnavailableOffline, Health Critical) after UnavailableAfter —
// and back to OK when they resume. Every transition publishes a
// StatusChange event and each sweep refreshes the ofmf_agent_liveness
// gauge, so both subscribers and scrapers see dead agents without
// polling the tree. This closes the paper's centralization loop: the
// OFMF owns all composition state, so it must also own the authoritative
// view of which agents still answer for theirs.
type LivenessSweeper struct {
	svc *Service
	cfg LivenessConfig
	now func() time.Time

	mu sync.Mutex
	// firstSeen anchors staleness for sources that have never sent a
	// heartbeat, so an agent that dies between registration and its
	// first beat is still detected.
	firstSeen map[odata.ID]time.Time
	seq       int64
}

// NewLivenessSweeper builds a sweeper over the service's aggregation
// sources. Start it with Start, or drive sweeps manually with Sweep.
func (s *Service) NewLivenessSweeper(cfg LivenessConfig) *LivenessSweeper {
	return &LivenessSweeper{
		svc:       s,
		cfg:       cfg.withDefaults(),
		now:       time.Now,
		firstSeen: make(map[odata.ID]time.Time),
	}
}

// SetClock overrides the sweeper's time source (tests).
func (w *LivenessSweeper) SetClock(now func() time.Time) { w.now = now }

// Start runs the sweeper at its configured interval until the returned
// stop function is called.
func (w *LivenessSweeper) Start() (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(w.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				w.Sweep()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
}

// Sweep performs one liveness pass over all aggregation sources.
func (w *LivenessSweeper) Sweep() {
	now := w.now()
	members, err := w.svc.store.Members(AggregationSourcesURI)
	if err != nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	seen := make(map[odata.ID]bool, len(members))
	for _, uri := range members {
		seen[uri] = true
		w.sweepSourceLocked(uri, now)
	}
	// Forget deleted sources so their anchors don't accumulate.
	for uri := range w.firstSeen {
		if !seen[uri] {
			delete(w.firstSeen, uri)
		}
	}
}

func (w *LivenessSweeper) sweepSourceLocked(uri odata.ID, now time.Time) {
	var src redfish.AggregationSource
	if err := w.svc.store.GetAs(uri, &src); err != nil {
		return
	}
	// In-process agents (no callback URL) share the OFMF's process fate:
	// there is no management path to lose, so they are live by
	// construction and never swept.
	if src.HostName == "" {
		w.svc.metrics.AgentLiveness.With(uri.Leaf()).Set(1)
		delete(w.firstSeen, uri)
		return
	}
	var last time.Time
	if src.Oem.OFMF != nil && src.Oem.OFMF.LastHeartbeat != "" {
		t, err := time.Parse(time.RFC3339, src.Oem.OFMF.LastHeartbeat)
		if err == nil {
			last = t
			delete(w.firstSeen, uri)
		}
	}
	if last.IsZero() {
		// Never beaten: measure staleness from when the sweeper first
		// saw the source.
		anchor, ok := w.firstSeen[uri]
		if !ok {
			w.firstSeen[uri] = now
			anchor = now
		}
		last = anchor
	}

	age := now.Sub(last)
	level := liveOK
	switch {
	case age >= w.cfg.UnavailableAfter:
		level = liveUnavailable
	case age >= w.cfg.StaleAfter:
		level = liveDegraded
	}
	w.svc.metrics.AgentLiveness.With(uri.Leaf()).Set(livenessValue(level))
	current := levelOf(src.Status)
	if level == current {
		return
	}

	status, word, severity := statusFor(level)
	if err := w.svc.store.Patch(uri, map[string]any{"Status": map[string]any{
		"State": status.State, "Health": status.Health,
	}}, ""); err != nil {
		return
	}
	w.seq++
	rec := events.Record(redfish.EventStatusChange, fmt.Sprintf("liveness-%d", w.seq),
		fmt.Sprintf("aggregation source %s is %s (heartbeat age %s)", uri.Leaf(), word, age.Round(time.Second)), uri)
	rec.Severity = severity
	w.svc.bus.Publish(rec)
	w.svc.log.LogAttrs(context.Background(), slog.LevelWarn, "agent liveness transition",
		slog.String("source", string(uri)),
		slog.String("to", word),
		slog.Duration("heartbeat_age", age),
	)
}

// levelOf maps a stored Status back to a liveness level.
func levelOf(st odata.Status) int {
	switch {
	case st.State == odata.StateUnavailable || st.Health == odata.HealthCritical:
		return liveUnavailable
	case st.Health == odata.HealthWarning:
		return liveDegraded
	}
	return liveOK
}

// statusFor maps a liveness level to the Redfish status written to the
// source, the transition word used in events, and the event severity.
func statusFor(level int) (odata.Status, string, string) {
	switch level {
	case liveUnavailable:
		return odata.Status{State: odata.StateUnavailable, Health: odata.HealthCritical}, "Unavailable", "Critical"
	case liveDegraded:
		return odata.Status{State: odata.StateEnabled, Health: odata.HealthWarning}, "Degraded", "Warning"
	}
	return odata.StatusOK(), "OK", "OK"
}

// livenessValue renders a level as the ofmf_agent_liveness gauge value.
func livenessValue(level int) float64 {
	switch level {
	case liveUnavailable:
		return 0
	case liveDegraded:
		return 0.5
	}
	return 1
}

package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ofmf/internal/events"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
)

func TestSubtreePushEndpoint(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	fab := FabricsURI.Append("X")
	payload := SubtreePayload{
		Prefix: fab,
		Resources: map[odata.ID]json.RawMessage{
			fab:                       json.RawMessage(`{"Name":"X","FabricType":"CXL"}`),
			fab.Append("Endpoints/E"): json.RawMessage(`{"Name":"E"}`),
		},
	}
	resp, body := doJSON(t, http.MethodPost, srv.URL+string(SubtreeOemURI), payload, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("push = %d: %s", resp.StatusCode, body)
	}
	resp, _ = doJSON(t, http.MethodGet, srv.URL+string(fab.Append("Endpoints/E")), nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pushed resource GET = %d", resp.StatusCode)
	}
	// A second push without the endpoint removes it.
	payload.Resources = map[odata.ID]json.RawMessage{fab: json.RawMessage(`{"Name":"X"}`)}
	resp, _ = doJSON(t, http.MethodPost, srv.URL+string(SubtreeOemURI), payload, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("refresh = %d", resp.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodGet, srv.URL+string(fab.Append("Endpoints/E")), nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("stale resource GET = %d", resp.StatusCode)
	}
}

func TestSubtreePushValidation(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	// Prefix outside the service root.
	resp, _ := doJSON(t, http.MethodPost, srv.URL+string(SubtreeOemURI),
		SubtreePayload{Prefix: "/elsewhere"}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad prefix = %d", resp.StatusCode)
	}
	// GET not allowed.
	resp, _ = doJSON(t, http.MethodGet, srv.URL+string(SubtreeOemURI), nil, nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET = %d", resp.StatusCode)
	}
}

func TestEventPushEndpoint(t *testing.T) {
	svc, srv := newTestServer(t, Config{})
	before := svc.Bus().Stats().Published
	resp, _ := doJSON(t, http.MethodPost, srv.URL+string(EventsOemURI),
		redfish.EventRecord{EventType: redfish.EventAlert, EventID: "x", Message: "m"}, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("push = %d", resp.StatusCode)
	}
	if after := svc.Bus().Stats().Published; after != before+1 {
		t.Errorf("published %d -> %d", before, after)
	}
}

func TestCollectionsPushEndpoint(t *testing.T) {
	svc, srv := newTestServer(t, Config{})
	coll := FabricsURI.Append("Y", "Endpoints")
	resp, _ := doJSON(t, http.MethodPost, srv.URL+string(CollectionsOemURI),
		CollectionsPayload{coll: {redfish.TypeEndpointCollection, "Endpoints"}}, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("push = %d", resp.StatusCode)
	}
	if !svc.Store().IsCollection(coll) {
		t.Error("collection not registered")
	}
	resp, _ = doJSON(t, http.MethodGet, srv.URL+string(coll), nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("collection GET = %d", resp.StatusCode)
	}
	// Outside the root rejected.
	resp, _ = doJSON(t, http.MethodPost, srv.URL+string(CollectionsOemURI),
		CollectionsPayload{"/elsewhere": {"t", "n"}}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad collection = %d", resp.StatusCode)
	}
}

func TestSubscriptionHealthDegrades(t *testing.T) {
	svc, srv := newTestServer(t, Config{Events: eventsFastRetry()})
	// Subscribe a destination that refuses everything.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadGateway)
	}))
	defer dead.Close()
	resp, body := doJSON(t, http.MethodPost, srv.URL+string(SubscriptionsURI),
		redfish.EventDestination{Destination: dead.URL}, nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("subscribe = %d: %s", resp.StatusCode, body)
	}
	var sub redfish.EventDestination
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	// Publish enough events to exhaust retries three times.
	for i := 0; i < 3; i++ {
		svc.Bus().Publish(events.Record(redfish.EventAlert, "x", "m", ""))
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		var got redfish.EventDestination
		if err := svc.Store().GetAs(sub.ODataID, &got); err != nil {
			t.Fatal(err)
		}
		if got.Status.Health == odata.HealthCritical {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("health = %s, want Critical", got.Status.Health)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func eventsFastRetry() events.Config {
	return events.Config{RetryAttempts: 1, RetryInterval: time.Millisecond}
}

func TestMessageRegistryServed(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	resp, body := doJSON(t, http.MethodGet, srv.URL+string(RegistriesURI.Append("OFMF.1.0")), nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var reg redfish.MessageRegistry
	if err := json.Unmarshal(body, &reg); err != nil {
		t.Fatal(err)
	}
	if reg.RegistryPrefix != "OFMF" || reg.RegistryVersion != "1.0" {
		t.Errorf("registry = %+v", reg)
	}
	for _, msg := range []string{"SystemComposed", "OutOfMemory", "FabricLinkDown", "MemoryHotAdded"} {
		if _, ok := reg.Messages[msg]; !ok {
			t.Errorf("missing message %s", msg)
		}
	}
	// The collection lists it.
	resp, body = doJSON(t, http.MethodGet, srv.URL+string(RegistriesURI), nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("collection = %d", resp.StatusCode)
	}
	var coll odata.Collection
	if err := json.Unmarshal(body, &coll); err != nil {
		t.Fatal(err)
	}
	if coll.Count != 1 {
		t.Errorf("registries = %d", coll.Count)
	}
}

func TestCollectionPaging(t *testing.T) {
	svc, srv := newTestServer(t, Config{})
	for i := 0; i < 5; i++ {
		id := SystemsURI.Append(string(rune('A' + i)))
		if err := svc.Store().Put(id, redfish.ComputerSystem{
			Resource: odata.NewResource(id, redfish.TypeComputerSystem, id.Leaf()),
			Status:   odata.StatusOK(),
		}); err != nil {
			t.Fatal(err)
		}
	}
	resp, body := doJSON(t, http.MethodGet, srv.URL+string(SystemsURI)+"?$skip=1&$top=2", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var page struct {
		Count    int `json:"Members@odata.count"`
		Members  []odata.Ref
		NextLink string `json:"Members@odata.nextLink"`
	}
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatal(err)
	}
	if page.Count != 5 {
		t.Errorf("count = %d, want total", page.Count)
	}
	if len(page.Members) != 2 || page.Members[0].ODataID != SystemsURI.Append("B") {
		t.Errorf("members = %v", page.Members)
	}
	if page.NextLink == "" {
		t.Fatal("missing nextLink")
	}
	// Follow the continuation to exhaustion.
	resp, body = doJSON(t, http.MethodGet, srv.URL+page.NextLink, nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("next page = %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Members) != 2 || page.Members[0].ODataID != SystemsURI.Append("D") {
		t.Errorf("page 2 members = %v", page.Members)
	}
	// Over-skip yields an empty page, no error.
	resp, body = doJSON(t, http.MethodGet, srv.URL+string(SystemsURI)+"?$skip=99", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("overskip = %d", resp.StatusCode)
	}
	var over struct {
		Members []odata.Ref
	}
	if err := json.Unmarshal(body, &over); err != nil {
		t.Fatal(err)
	}
	if len(over.Members) != 0 {
		t.Errorf("overskip members = %v", over.Members)
	}
}

func TestExpandCollection(t *testing.T) {
	svc, srv := newTestServer(t, Config{})
	for _, n := range []string{"A", "B"} {
		id := SystemsURI.Append(n)
		if err := svc.Store().Put(id, redfish.ComputerSystem{
			Resource:   odata.NewResource(id, redfish.TypeComputerSystem, n),
			SystemType: redfish.SystemTypePhysical,
			Status:     odata.StatusOK(),
		}); err != nil {
			t.Fatal(err)
		}
	}
	resp, body := doJSON(t, http.MethodGet, srv.URL+string(SystemsURI)+"?$expand=.", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out struct {
		Count   int              `json:"Members@odata.count"`
		Members []map[string]any `json:"Members"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 2 || len(out.Members) != 2 {
		t.Fatalf("expanded = %+v", out)
	}
	if out.Members[0]["SystemType"] != "Physical" {
		t.Errorf("member not inlined: %v", out.Members[0])
	}
	// Unexpanded still returns references.
	resp, body = doJSON(t, http.MethodGet, srv.URL+string(SystemsURI), nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatal("plain GET failed")
	}
	var plain odata.Collection
	if err := json.Unmarshal(body, &plain); err != nil {
		t.Fatal(err)
	}
	if len(plain.Members) != 2 || plain.Members[0].ODataID == "" {
		t.Errorf("plain members = %+v", plain.Members)
	}
}

func TestAdminTreeDumpRestore(t *testing.T) {
	_, srvA := newTestServer(t, Config{})
	check := func(resp *http.Response, body []byte, want int, what string) {
		t.Helper()
		if resp.StatusCode != want {
			t.Fatalf("%s = %d: %s", what, resp.StatusCode, body)
		}
	}

	// Seed A with an extra resource beyond the bootstrap tree, dump it.
	extra := SystemsURI.Append("Imported1")
	resp, body := doJSON(t, http.MethodPost, srvA.URL+string(SubtreeOemURI), SubtreePayload{
		Prefix:    extra,
		Resources: map[odata.ID]json.RawMessage{extra: json.RawMessage(`{"Name":"Imported1"}`)},
	}, nil)
	check(resp, body, http.StatusNoContent, "seed push")
	resp, dump := doJSON(t, http.MethodGet, srvA.URL+string(AdminTreeOemURI), nil, nil)
	check(resp, dump, http.StatusOK, "dump")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("dump content-type = %q", ct)
	}

	// Restore into a second deployment: the extra resource must appear
	// there and the restored store must stay coherent. Restore has
	// replace semantics, so a resource that exists only in B must vanish.
	_, srvB := newTestServer(t, Config{})
	stale := SystemsURI.Append("StaleB")
	resp, body = doJSON(t, http.MethodPost, srvB.URL+string(SubtreeOemURI), SubtreePayload{
		Prefix:    stale,
		Resources: map[odata.ID]json.RawMessage{stale: json.RawMessage(`{"Name":"StaleB"}`)},
	}, nil)
	check(resp, body, http.StatusNoContent, "seed B")
	req, err := http.NewRequest(http.MethodPost, srvB.URL+string(AdminTreeOemURI), bytes.NewReader(dump))
	if err != nil {
		t.Fatal(err)
	}
	restoreResp, err := (&http.Client{}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	restoreResp.Body.Close()
	if restoreResp.StatusCode != http.StatusNoContent {
		t.Fatalf("restore = %d", restoreResp.StatusCode)
	}
	resp, body = doJSON(t, http.MethodGet, srvB.URL+string(extra), nil, nil)
	check(resp, body, http.StatusOK, "restored resource")
	resp, body = doJSON(t, http.MethodGet, srvB.URL+string(stale), nil, nil)
	check(resp, body, http.StatusNotFound, "stale resource after replace-restore")

	// Bad payloads and methods are rejected cleanly, leaving the tree
	// untouched — restore is all-or-nothing.
	resp, body = doJSON(t, http.MethodPost, srvB.URL+string(AdminTreeOemURI), "not a tree", nil)
	check(resp, body, http.StatusBadRequest, "restore of non-object")
	resp, body = doJSON(t, http.MethodPost, srvB.URL+string(AdminTreeOemURI),
		map[string]any{"/redfish/v1/Systems/Orphan": map[string]any{"Name": "Orphan"}}, nil)
	check(resp, body, http.StatusBadRequest, "restore without service root")
	resp, body = doJSON(t, http.MethodGet, srvB.URL+string(extra), nil, nil)
	check(resp, body, http.StatusOK, "tree intact after rejected restore")
	resp, body = doJSON(t, http.MethodDelete, srvB.URL+string(AdminTreeOemURI), nil, nil)
	check(resp, body, http.StatusMethodNotAllowed, "delete")
}

package service

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"ofmf/internal/odata"
)

// TestErrorEnvelopeShape drives every class of failing request and checks
// each error body is the same Redfish extended-error envelope: a top-level
// "error" object whose @Message.ExtendedInfo entry repeats the registry
// code as MessageId and maps the HTTP status to a severity.
func TestErrorEnvelopeShape(t *testing.T) {
	cases := []struct {
		name         string
		cfg          Config
		method, path string
		body         string
		wantStatus   int
		wantCode     string
		wantSeverity string
	}{
		{
			name:   "missing resource",
			method: http.MethodGet, path: "/redfish/v1/Systems/nope",
			wantStatus: http.StatusNotFound,
			wantCode:   "Base.1.0.ResourceMissingAtURI", wantSeverity: "Warning",
		},
		{
			name:   "method not allowed",
			method: http.MethodDelete, path: "/redfish/v1",
			wantStatus: http.StatusMethodNotAllowed,
			wantCode:   "Base.1.0.OperationNotAllowed", wantSeverity: "Warning",
		},
		{
			name:   "malformed json",
			method: http.MethodPost, path: "/redfish/v1/EventService/Subscriptions",
			body:       "{not json",
			wantStatus: http.StatusBadRequest,
			wantCode:   "Base.1.0.MalformedJSON", wantSeverity: "Warning",
		},
		{
			name:   "etag mismatch",
			cfg:    Config{DirectWrites: true},
			method: http.MethodPatch, path: "/redfish/v1",
			body:       `{"Name":"x"}`,
			wantStatus: http.StatusPreconditionFailed,
			wantCode:   "Base.1.0.PreconditionFailed", wantSeverity: "Warning",
		},
		{
			name:   "post to read-only collection",
			method: http.MethodPost, path: "/redfish/v1/Systems",
			body:       `{"Cores":1}`,
			wantStatus: http.StatusMethodNotAllowed,
			wantCode:   "Base.1.0.OperationNotAllowed", wantSeverity: "Warning",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, srv := newTestServer(t, tc.cfg)
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if tc.wantCode == "Base.1.0.PreconditionFailed" {
				req.Header.Set("If-Match", `"bogus-etag"`)
			}
			resp, err := (&http.Client{}).Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			var env odata.ErrorEnvelope
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatalf("body is not an error envelope: %v", err)
			}
			if env.Error.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", env.Error.Code, tc.wantCode)
			}
			if len(env.Error.Info) != 1 {
				t.Fatalf("@Message.ExtendedInfo entries = %d, want 1", len(env.Error.Info))
			}
			info := env.Error.Info[0]
			if info.MessageID != tc.wantCode {
				t.Errorf("MessageId = %q, want %q", info.MessageID, tc.wantCode)
			}
			if info.Severity != tc.wantSeverity {
				t.Errorf("Severity = %q, want %q", info.Severity, tc.wantSeverity)
			}
			if info.Message == "" || info.Resolution == "" {
				t.Errorf("incomplete ExtendedInfo: %+v", info)
			}
		})
	}
}

func TestRedfishErrorSeverities(t *testing.T) {
	for status, want := range map[int]string{
		http.StatusOK:                  "OK",
		http.StatusNotFound:            "Warning",
		http.StatusConflict:            "Warning",
		http.StatusInternalServerError: "Critical",
		http.StatusNotImplemented:      "Critical",
	} {
		env := RedfishError(status, "C", "m")
		if got := env.Error.Info[0].Severity; got != want {
			t.Errorf("severityFor(%d) = %q, want %q", status, got, want)
		}
	}
}

func TestRouteClass(t *testing.T) {
	for path, want := range map[string]string{
		"/redfish":                              "Versions",
		"/redfish/v1":                           "ServiceRoot",
		"/redfish/v1/":                          "ServiceRoot",
		"/redfish/v1/Systems":                   "Systems",
		"/redfish/v1/Systems/node001":           "Systems",
		"/redfish/v1/Fabrics":                   "Fabrics",
		"/redfish/v1/Fabrics/CXL":               "Fabrics",
		"/redfish/v1/Fabrics/CXL/Connections/7": "Fabrics.Connections",
		"/redfish/v1/Fabrics/CXL/Zones":         "Fabrics.Zones",
		"/redfish/v1/Oem/OFMF/Subtree":          "Oem",
		"/redfish/v1/$metadata":                 "Metadata",
		"/redfish/v1/TelemetryService/MetricReports/ManagementPlane": "TelemetryService",
		"/composer/v1/Compose": "Composer",
		"/elsewhere":           "Other",
	} {
		if got := RouteClass(path); got != want {
			t.Errorf("RouteClass(%q) = %q, want %q", path, got, want)
		}
	}
}

package service

import (
	"testing"
	"time"

	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/store"
)

// churnSource builds a minimal remote aggregation source at uri with
// the given heartbeat timestamp.
func churnSource(uri odata.ID, beat time.Time) redfish.AggregationSource {
	return redfish.AggregationSource{
		Resource: odata.NewResource(uri, redfish.TypeAggregationSource, "Agent "+uri.Leaf()),
		HostName: "http://" + uri.Leaf() + ".example:9000",
		Status:   odata.StatusOK(),
		Oem:      redfish.AggSourceOem{OFMF: &redfish.AgentDescriptor{LastHeartbeat: redfish.Timestamp(beat)}},
	}
}

// TestLivenessDeleteRecreateChurn is the regression test for the
// sweeper's delete-then-recreate race: when a source was deleted and a
// new one recreated at the same URI, a stale (reordered) notification
// from the old incarnation used to resurrect the old entry — and its
// old heartbeat deadline — firing a spurious Degraded transition for a
// source that was beating fine. All changes are seq-gated now.
func TestLivenessDeleteRecreateChurn(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	w := svc.NewLivenessSweeper(LivenessConfig{Interval: time.Second})
	base := time.Unix(1700000000, 0).UTC()
	now := base
	w.SetClock(func() time.Time { return now })

	uri := AggregationSourcesURI.Append("1")
	st := svc.Store()

	// First incarnation, heartbeat already stale at its creation.
	if err := st.Put(uri, churnSource(uri, base.Add(-time.Hour))); err != nil {
		t.Fatal(err)
	}
	w.Sweep() // seeds the index
	// Delete it, then recreate the same URI with a fresh heartbeat.
	if err := st.Delete(uri); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(uri, churnSource(uri, now)); err != nil {
		t.Fatal(err)
	}
	snap := w.SourcesSnapshot()
	if lvl, ok := snap[uri]; !ok || lvl != LiveOK {
		t.Fatalf("after recreate: snapshot[%s] = %d,%v, want LiveOK", uri, lvl, ok)
	}

	// Replay the first incarnation's notifications out of order: a stale
	// update and a stale delete, both with seqs from before the recreate.
	w.onChange(store.Change{Kind: store.Updated, ID: uri, Seq: 1})
	w.onChange(store.Change{Kind: store.Removed, ID: uri, Seq: 2})
	snap = w.SourcesSnapshot()
	if lvl, ok := snap[uri]; !ok || lvl != LiveOK {
		t.Fatalf("after stale replay: snapshot[%s] = %d,%v, want LiveOK", uri, lvl, ok)
	}

	// A sweep within the fresh heartbeat's window must not transition.
	now = now.Add(2 * time.Second)
	w.Sweep()
	var src redfish.AggregationSource
	if err := st.GetAs(uri, &src); err != nil {
		t.Fatal(err)
	}
	if src.Status != odata.StatusOK() {
		t.Fatalf("spurious transition: status = %+v, want OK", src.Status)
	}

	// The old incarnation's stale deadline (heartbeat an hour old) must
	// not fire either: advance past StaleAfter relative to the OLD beat
	// but inside the window of the fresh one.
	now = now.Add(500 * time.Millisecond)
	w.Sweep()
	if err := st.GetAs(uri, &src); err != nil {
		t.Fatal(err)
	}
	if src.Status != odata.StatusOK() {
		t.Fatalf("old incarnation's deadline fired: status = %+v, want OK", src.Status)
	}
}

// TestLivenessTombstoneBlocksPreDeleteUpsert checks that an upsert
// notification ordered before a delete cannot re-admit the source after
// the delete was processed, and that a genuinely newer upsert can.
func TestLivenessTombstoneBlocksPreDeleteUpsert(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	w := svc.NewLivenessSweeper(LivenessConfig{Interval: time.Second})
	now := time.Unix(1700000000, 0).UTC()
	w.SetClock(func() time.Time { return now })

	uri := AggregationSourcesURI.Append("1")
	st := svc.Store()
	if err := st.Put(uri, churnSource(uri, now)); err != nil {
		t.Fatal(err)
	}
	// Synthetic delete with a far-future seq: everything the first
	// incarnation ever published is now stale.
	w.onChange(store.Change{Kind: store.Removed, ID: uri, Seq: 1 << 40})
	if _, ok := w.SourcesSnapshot()[uri]; ok {
		t.Fatal("entry survived delete")
	}
	if w.Tombstones() != 1 {
		t.Fatalf("tombstones = %d, want 1", w.Tombstones())
	}
	// The pre-delete upsert replays late (resource still in the store,
	// so GetAs succeeds — only the tombstone can reject it).
	w.onChange(store.Change{Kind: store.Updated, ID: uri, Seq: 7})
	if _, ok := w.SourcesSnapshot()[uri]; ok {
		t.Fatal("tombstoned source resurrected by stale upsert")
	}
	// A recreate with a newer seq re-admits and clears the tombstone.
	w.onChange(store.Change{Kind: store.Updated, ID: uri, Seq: 1<<40 + 1})
	if lvl, ok := w.SourcesSnapshot()[uri]; !ok || lvl != LiveOK {
		t.Fatalf("recreate not admitted: lvl=%d ok=%v", lvl, ok)
	}
	if w.Tombstones() != 0 {
		t.Fatalf("tombstone not cleared: %d", w.Tombstones())
	}
}

// TestLivenessApplyDropsDeletedSource checks that a transition whose
// store patch fails with ErrNotFound (source deleted mid-sweep) drops
// the index entry instead of rescheduling the patch forever.
func TestLivenessApplyDropsDeletedSource(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	w := svc.NewLivenessSweeper(LivenessConfig{Interval: time.Second})
	base := time.Unix(1700000000, 0).UTC()
	now := base
	w.SetClock(func() time.Time { return now })

	uri := AggregationSourcesURI.Append("1")
	st := svc.Store()
	if err := st.Put(uri, churnSource(uri, base)); err != nil {
		t.Fatal(err)
	}
	w.Sweep()
	// Delete behind the sweeper's back: bypass the change stream by
	// replaying the delete only to the store... the watcher fires on
	// Delete, so instead simulate the race by deleting the entry's
	// backing resource and re-adding the index entry with a stale seq.
	if err := st.Delete(uri); err != nil {
		t.Fatal(err)
	}
	// Resurrect the entry as the pre-fix code could have (stale upsert
	// with the tombstone absent): inject directly.
	w.mu.Lock()
	w.nextGen++
	e := &sourceEntry{anchor: base.Add(-time.Hour), gen: w.nextGen, level: liveOK}
	w.sources[uri] = e
	w.deadlines = append(w.deadlines, deadlineItem{at: now, uri: uri, gen: e.gen})
	w.mu.Unlock()

	// The sweep computes a transition, the patch hits ErrNotFound, and
	// the entry must be dropped — not rescheduled.
	now = now.Add(time.Hour)
	w.Sweep()
	if _, ok := w.SourcesSnapshot()[uri]; ok {
		t.Fatal("deleted source still indexed after failed patch")
	}
	w.Sweep()
	if n := w.PendingDeadlines(); n > 0 {
		// Lazily invalidated items may linger one pass; a second sweep at
		// a later instant must have drained them.
		now = now.Add(time.Hour)
		w.Sweep()
		if n = w.PendingDeadlines(); n > 0 {
			t.Fatalf("deadline heap not drained: %d", n)
		}
	}
}

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"

	"ofmf/internal/events"
	"ofmf/internal/obsv"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/sessions"
	"ofmf/internal/store"
)

// maxBodyBytes bounds request payload size.
const maxBodyBytes = 4 << 20

// bufPool recycles response-encoding buffers so the GET hot path does no
// per-request heap allocation; buffers that grew past maxPooledBuf are
// dropped instead of pinned.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledBuf = 1 << 20

func getBuf() *bytes.Buffer {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putBuf(b *bytes.Buffer) {
	if b.Cap() <= maxPooledBuf {
		bufPool.Put(b)
	}
}

// Handler returns the service's HTTP handler. Every request passes
// through the observability middleware: it is assigned (or keeps) an
// X-Request-Id, is logged with that id, and lands in the ofmf_http_*
// metrics under its bounded route class.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/redfish", s.handleVersions)
	mux.HandleFunc("/redfish/", s.dispatch)
	return obsv.Middleware(mux, s.metrics, s.log, RouteClass, s.tracer)
}

// RouteClass maps a request path to a bounded route class used as the
// "class" metric label, collapsing per-resource ids so cardinality stays
// fixed: /redfish/v1/Systems/node001 -> Systems,
// /redfish/v1/Fabrics/CXL/Connections/7 -> Fabrics.Connections.
func RouteClass(path string) string {
	path = strings.TrimSuffix(path, "/")
	switch path {
	case "", "/":
		return "Root"
	case "/redfish":
		return "Versions"
	}
	if strings.HasPrefix(path, "/composer") {
		return "Composer"
	}
	rel := strings.TrimPrefix(path, string(RootURI))
	if rel == path {
		return "Other"
	}
	rel = strings.TrimPrefix(rel, "/")
	if rel == "" {
		return "ServiceRoot"
	}
	seg := strings.SplitN(rel, "/", 4)
	switch seg[0] {
	case "$metadata", "odata":
		return "Metadata"
	case "Oem":
		return "Oem"
	case "Fabrics":
		// Fabric sub-collections (Zones, Connections, Endpoints,
		// Switches, Ports, ...) are the forwarding hot paths; keep them
		// distinguishable per collection, not per fabric.
		if len(seg) >= 3 {
			return "Fabrics." + seg[2]
		}
		return "Fabrics"
	}
	return seg[0]
}

func (s *Service) handleVersions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		s.error(w, r, http.StatusMethodNotAllowed, "Base.1.0.OperationNotAllowed", "only GET is supported")
		return
	}
	s.json(w, http.StatusOK, map[string]string{"v1": "/redfish/v1/"})
}

func (s *Service) dispatch(w http.ResponseWriter, r *http.Request) {
	id := odata.ID(strings.TrimSuffix(r.URL.Path, "/"))
	if id == "/redfish" {
		s.handleVersions(w, r)
		return
	}
	if id == RootURI+"/$metadata" || id == RootURI+"/odata" {
		s.json(w, http.StatusOK, map[string]string{"@odata.context": string(RootURI) + "/$metadata"})
		return
	}
	if !s.authorize(w, r, id) {
		return
	}
	// Replica serving: reads come from the local replicated tree;
	// mutations and SSE (the event plane is leader-owned) forward to
	// the leader. One atomic load — the GET hot path stays allocation
	// free when the pointer is nil (the normal, non-replica case).
	if rm := s.replica.Load(); rm != nil {
		if (r.Method != http.MethodGet && r.Method != http.MethodHead) || id == SSEURI {
			s.forwardToLeader(w, r, rm)
			return
		}
	}
	switch id {
	case SubtreeOemURI:
		s.handleSubtreePush(w, r)
		return
	case EventsOemURI:
		s.handleEventPush(w, r)
		return
	case CollectionsOemURI:
		s.handleCollectionsPush(w, r)
		return
	case AdminTreeOemURI:
		s.handleAdminTree(w, r)
		return
	case TracesOemURI:
		s.handleTraces(w, r)
		return
	case SSEURI:
		s.handleSSE(w, r)
		return
	}
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		s.handleGet(w, r, id)
	case http.MethodPost:
		s.handlePost(w, r, id)
	case http.MethodPatch:
		s.handlePatch(w, r, id)
	case http.MethodDelete:
		s.handleDelete(w, r, id)
	default:
		s.error(w, r, http.StatusMethodNotAllowed, "Base.1.0.OperationNotAllowed", r.Method+" not supported")
	}
}

// authorize enforces token auth when credentials are configured. The
// service root and session creation remain reachable without a token, as
// the Redfish protocol requires.
func (s *Service) authorize(w http.ResponseWriter, r *http.Request, id odata.ID) bool {
	if s.cfg.Credentials == nil {
		return true
	}
	if id == RootURI {
		return true
	}
	if r.Method == http.MethodPost && id == SessionsURI {
		return true
	}
	token := r.Header.Get("X-Auth-Token")
	if token == "" {
		s.error(w, r, http.StatusUnauthorized, "Base.1.0.NoValidSession", "X-Auth-Token required")
		return false
	}
	if _, err := s.sessions.Validate(token); err != nil {
		s.error(w, r, http.StatusUnauthorized, "Base.1.0.NoValidSession", "invalid or expired token")
		return false
	}
	return true
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request, id odata.ID) {
	if s.store.IsCollection(id) {
		// The overwhelmingly common collection GET carries no query
		// options: serve the store's memoized payload bytes directly —
		// no member re-sort, no encoding, no copy.
		if r.URL.RawQuery == "" {
			s.serveCollection(w, r, id)
			return
		}
		coll, err := s.store.Collection(id)
		if err != nil {
			s.storeError(w, r, err)
			return
		}
		query := r.URL.Query()
		// $skip / $top paging per the Redfish query spec. Members@odata.count
		// keeps the total size; nextLink carries the continuation.
		skip, top := parsePaging(query.Get("$skip")), parsePaging(query.Get("$top"))
		nextLink := ""
		if skip > 0 || top > 0 {
			total := len(coll.Members)
			if skip > total {
				skip = total
			}
			end := total
			if top > 0 && skip+top < total {
				end = skip + top
				nextLink = fmt.Sprintf("%s?$skip=%d&$top=%d", id, end, top)
			}
			coll.Members = coll.Members[skip:end]
		}
		// $expand inlines member payloads (the ?$expand=. / ?$expand=*
		// subset of the Redfish query spec).
		if v := query.Get("$expand"); v == "." || v == "*" || v == "Members" {
			s.expandedCollection(w, coll)
			return
		}
		if nextLink != "" {
			s.json(w, http.StatusOK, pagedCollection{Collection: coll, NextLink: nextLink})
			return
		}
		s.json(w, http.StatusOK, coll)
		return
	}
	s.serveResource(w, r, id)
}

// serveCollection writes the collection's memoized payload straight to
// the wire. If-None-Match is answered from the cached entity tag alone,
// without touching the payload.
func (s *Service) serveCollection(w http.ResponseWriter, r *http.Request, id odata.ID) {
	match := r.Header.Get("If-None-Match")
	err := s.store.CollectionView(id, func(payload []byte, etag string) {
		if match != "" && match == etag {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("ETag", etag)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		if r.Method != http.MethodHead {
			_, _ = w.Write(payload)
		}
	})
	if err != nil {
		s.storeError(w, r, err)
	}
}

// serveResource streams a resource through the store's zero-copy view: a
// single locked lookup checks If-None-Match against the entity tag before
// any bytes are materialized, and a hit copies the payload once into a
// pooled buffer (never to a fresh heap slice). The buffer, not the store's
// internal slice, is what reaches the (possibly slow) client.
func (s *Service) serveResource(w http.ResponseWriter, r *http.Request, id odata.ID) {
	match := r.Header.Get("If-None-Match")
	buf := getBuf()
	defer putBuf(buf)
	etag := ""
	notModified := false
	err := s.store.View(id, func(raw json.RawMessage, tag string) {
		etag = tag
		if match != "" && match == tag {
			notModified = true
			return
		}
		if r.Method != http.MethodHead {
			buf.Write(raw)
		}
	})
	if err != nil {
		s.storeError(w, r, err)
		return
	}
	if notModified {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("ETag", etag)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		_, _ = w.Write(buf.Bytes())
	}
}

// pagedCollection decorates a collection with the continuation link.
type pagedCollection struct {
	odata.Collection
	NextLink string `json:"Members@odata.nextLink,omitempty"`
}

// parsePaging parses a non-negative integer query value; malformed or
// missing values yield zero (no paging).
func parsePaging(v string) int {
	if v == "" {
		return 0
	}
	n := 0
	for _, c := range v {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
		if n > 1<<30 {
			return 1 << 30
		}
	}
	return n
}

// expandedCollection renders a collection with member resources inlined.
// Member payloads are gathered through the store's zero-copy view into a
// single pooled arena buffer instead of N per-member heap copies.
func (s *Service) expandedCollection(w http.ResponseWriter, coll odata.Collection) {
	type expanded struct {
		ODataID   odata.ID          `json:"@odata.id"`
		ODataType string            `json:"@odata.type"`
		Name      string            `json:"Name"`
		Count     int               `json:"Members@odata.count"`
		Members   []json.RawMessage `json:"Members"`
	}
	out := expanded{
		ODataID:   coll.ODataID,
		ODataType: coll.ODataType,
		Name:      coll.Name,
		Count:     coll.Count,
		Members:   make([]json.RawMessage, 0, len(coll.Members)),
	}
	arena := getBuf()
	defer putBuf(arena)
	var offsets []int
	for _, ref := range coll.Members {
		start := arena.Len()
		err := s.store.View(ref.ODataID, func(raw json.RawMessage, _ string) {
			arena.Write(raw)
		})
		if err != nil {
			continue // member raced a delete; omit it
		}
		offsets = append(offsets, start, arena.Len())
	}
	// Slice the arena only after all writes: growth may have reallocated
	// the backing array, so offsets are resolved against the final bytes.
	all := arena.Bytes()
	for i := 0; i < len(offsets); i += 2 {
		out.Members = append(out.Members, json.RawMessage(all[offsets[i]:offsets[i+1]]))
	}
	out.Count = len(out.Members)
	s.json(w, http.StatusOK, out)
}

func (s *Service) handlePost(w http.ResponseWriter, r *http.Request, id odata.ID) {
	switch {
	case id == SystemsURI && s.systemComposer() != nil:
		s.postComposeSystem(w, r)
	case id == SessionsURI:
		s.postSession(w, r)
	case id == SubscriptionsURI:
		s.postSubscription(w, r)
	case id == AggregationSourcesURI:
		s.postAggregationSource(w, r)
	case s.isFabricCollection(id, "Zones"):
		s.postZone(w, r, id)
	case s.isFabricCollection(id, "Connections"):
		s.postConnection(w, r, id)
	case s.store.IsCollection(id) && s.ownedByProvisioner(id):
		s.postProvision(w, r, id)
	case s.store.IsCollection(id) && s.cfg.DirectWrites:
		s.postGeneric(w, r, id)
	case s.store.IsCollection(id):
		s.error(w, r, http.StatusMethodNotAllowed, "Base.1.0.OperationNotAllowed", "collection does not accept POST")
	default:
		s.error(w, r, http.StatusMethodNotAllowed, "Base.1.0.OperationNotAllowed", "resource does not accept POST")
	}
}

// ownedByProvisioner reports whether id lies in a subtree whose agent can
// provision resources.
func (s *Service) ownedByProvisioner(id odata.ID) bool {
	h, ok := s.handlerFor(id)
	if !ok {
		return false
	}
	_, ok = h.(ResourceProvisioner)
	return ok
}

func (s *Service) postProvision(w http.ResponseWriter, r *http.Request, coll odata.ID) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		s.error(w, r, http.StatusBadRequest, "Base.1.0.MalformedJSON", "unreadable body")
		return
	}
	uri, err := s.ProvisionResource(r.Context(), coll, body)
	if err != nil {
		if IsAgentError(err) {
			s.agentError(w, r, err)
			return
		}
		s.storeError(w, r, err)
		return
	}
	raw, _, err := s.store.Get(uri)
	if err != nil {
		s.storeError(w, r, err)
		return
	}
	w.Header().Set("Location", string(uri))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	_, _ = w.Write(raw)
}

// isFabricCollection reports whether id is /redfish/v1/Fabrics/{f}/{leaf}.
func (s *Service) isFabricCollection(id odata.ID, leaf string) bool {
	if id.Leaf() != leaf {
		return false
	}
	fab := id.Parent()
	return fab.Parent() == FabricsURI
}

func (s *Service) decode(w http.ResponseWriter, r *http.Request, out any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		s.error(w, r, http.StatusBadRequest, "Base.1.0.MalformedJSON", "unreadable body")
		return false
	}
	if err := json.Unmarshal(body, out); err != nil {
		s.error(w, r, http.StatusBadRequest, "Base.1.0.MalformedJSON", err.Error())
		return false
	}
	return true
}

// postComposeSystem realizes the DMTF specific-composition pattern: the
// POSTed payload describes the wanted system; the Composability Manager
// assembles it and the created system is returned.
func (s *Service) postComposeSystem(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		s.error(w, r, http.StatusBadRequest, "Base.1.0.MalformedJSON", "unreadable body")
		return
	}
	sysURI, err := s.systemComposer().ComposeSystem(r.Context(), body)
	if err != nil {
		s.error(w, r, http.StatusConflict, "OFMF.1.0.CompositionFailed", err.Error())
		return
	}
	raw, _, err := s.store.Get(sysURI)
	if err != nil {
		s.storeError(w, r, err)
		return
	}
	w.Header().Set("Location", string(sysURI))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	_, _ = w.Write(raw)
}

func (s *Service) postSession(w http.ResponseWriter, r *http.Request) {
	var creds struct {
		UserName string `json:"UserName"`
		Password string `json:"Password"`
	}
	if !s.decode(w, r, &creds) {
		return
	}
	sess, err := s.sessions.Login(creds.UserName, creds.Password)
	if err != nil {
		s.error(w, r, http.StatusUnauthorized, "Base.1.0.NoValidSession", "invalid credentials")
		return
	}
	uri := SessionsURI.Append(sess.ID)
	res := redfish.Session{
		Resource:    odata.NewResource(uri, redfish.TypeSession, "Session "+sess.ID),
		UserName:    sess.User,
		CreatedTime: redfish.Timestamp(sess.Created),
	}
	if err := s.store.PutCtx(r.Context(), uri, res); err != nil {
		s.storeError(w, r, err)
		return
	}
	w.Header().Set("X-Auth-Token", sess.Token)
	w.Header().Set("Location", string(uri))
	s.json(w, http.StatusCreated, res)
}

func (s *Service) postSubscription(w http.ResponseWriter, r *http.Request) {
	var dest redfish.EventDestination
	if !s.decode(w, r, &dest) {
		return
	}
	if dest.Destination == "" {
		s.error(w, r, http.StatusBadRequest, "Base.1.0.PropertyMissing", "Destination is required")
		return
	}
	filter := events.Filter{
		EventTypes:  dest.EventTypes,
		Origins:     odata.IDsOf(dest.OriginResources),
		Subordinate: dest.SubordinateResources,
	}
	sub, err := s.bus.Subscribe(&events.HTTPSink{URL: dest.Destination}, filter, dest.Context)
	if err != nil {
		s.error(w, r, http.StatusServiceUnavailable, "Base.1.0.ServiceShuttingDown", err.Error())
		return
	}
	uri := SubscriptionsURI.Append(sub.ID)
	dest.Resource = odata.NewResource(uri, redfish.TypeEventDestination, "Subscription "+sub.ID)
	dest.Protocol = "Redfish"
	dest.Status = odata.StatusOK()
	if err := s.store.PutCtx(r.Context(), uri, dest); err != nil {
		s.storeError(w, r, err)
		return
	}
	w.Header().Set("Location", string(uri))
	s.json(w, http.StatusCreated, dest)
}

// createInCollection atomically allocates the next id in coll, invokes
// build with the resulting URI (build may forward to an agent and mutate
// the payload), and stores the built resource. Allocation is serialized so
// concurrent POSTs never collide.
func (s *Service) createInCollection(ctx context.Context, coll odata.ID, build func(uri odata.ID) (any, error)) (odata.ID, error) {
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	id := s.store.NextID(coll)
	uri := coll.Append(id)
	v, err := build(uri)
	if err != nil {
		return "", err
	}
	// Put rather than Create: a provisioning agent may have already
	// republished its subtree (including the new resource) before build
	// returned; allocation collisions are excluded by allocMu.
	if err := s.store.PutCtx(ctx, uri, v); err != nil {
		return "", err
	}
	return uri, nil
}

func (s *Service) postAggregationSource(w http.ResponseWriter, r *http.Request) {
	var src redfish.AggregationSource
	if !s.decode(w, r, &src) {
		return
	}
	src, created, err := s.RegisterAggregationSource(r.Context(), src)
	if err != nil {
		s.storeError(w, r, err)
		return
	}
	// A remote agent advertising a callback URL gets fabric mutations for
	// its claimed subtrees forwarded over HTTP.
	if src.HostName != "" {
		for _, res := range src.Links.ResourcesAccessed {
			s.RegisterFabricHandler(NewRemoteFabricHandler(res.ODataID, src.HostName))
		}
	}
	w.Header().Set("Location", string(src.ODataID))
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	s.json(w, status, src)
}

func (s *Service) postZone(w http.ResponseWriter, r *http.Request, coll odata.ID) {
	var zone redfish.Zone
	if !s.decode(w, r, &zone) {
		return
	}
	zone, err := s.CreateZone(r.Context(), coll, zone)
	if err != nil {
		if IsAgentError(err) {
			s.agentError(w, r, err)
			return
		}
		s.storeError(w, r, err)
		return
	}
	w.Header().Set("Location", string(zone.ODataID))
	s.json(w, http.StatusCreated, zone)
}

func (s *Service) postConnection(w http.ResponseWriter, r *http.Request, coll odata.ID) {
	var conn redfish.Connection
	if !s.decode(w, r, &conn) {
		return
	}
	conn, err := s.CreateConnection(r.Context(), coll, conn)
	if err != nil {
		if IsAgentError(err) {
			s.agentError(w, r, err)
			return
		}
		s.storeError(w, r, err)
		return
	}
	w.Header().Set("Location", string(conn.ODataID))
	s.json(w, http.StatusCreated, conn)
}

func (s *Service) postGeneric(w http.ResponseWriter, r *http.Request, coll odata.ID) {
	var payload map[string]any
	if !s.decode(w, r, &payload) {
		return
	}
	uri, err := s.createInCollection(r.Context(), coll, func(uri odata.ID) (any, error) {
		payload["@odata.id"] = string(uri)
		if _, ok := payload["Id"]; !ok {
			payload["Id"] = uri.Leaf()
		}
		return payload, nil
	})
	if err != nil {
		s.storeError(w, r, err)
		return
	}
	w.Header().Set("Location", string(uri))
	s.json(w, http.StatusCreated, payload)
}

func (s *Service) handlePatch(w http.ResponseWriter, r *http.Request, id odata.ID) {
	if s.store.IsCollection(id) {
		s.error(w, r, http.StatusMethodNotAllowed, "Base.1.0.OperationNotAllowed", "collections cannot be patched")
		return
	}
	var patch map[string]any
	if !s.decode(w, r, &patch) {
		return
	}
	if _, owned := s.handlerFor(id); !owned && !s.cfg.DirectWrites && !s.patchableAlways(id) {
		s.error(w, r, http.StatusMethodNotAllowed, "Base.1.0.OperationNotAllowed", "resource is read-only")
		return
	}
	if err := s.PatchResource(r.Context(), id, patch, r.Header.Get("If-Match")); err != nil {
		if IsAgentError(err) {
			s.agentError(w, r, err)
			return
		}
		s.storeError(w, r, err)
		return
	}
	s.handleGet(w, r, id)
}

// patchableAlways lists resources clients may patch even without
// DirectWrites: their own subscriptions, and aggregation sources (agents
// refresh their heartbeat there).
func (s *Service) patchableAlways(id odata.ID) bool {
	return id.Parent() == SubscriptionsURI || id.Parent() == AggregationSourcesURI
}

func (s *Service) handleDelete(w http.ResponseWriter, r *http.Request, id odata.ID) {
	if s.store.IsCollection(id) {
		s.error(w, r, http.StatusMethodNotAllowed, "Base.1.0.OperationNotAllowed", "collections cannot be deleted")
		return
	}
	parent := id.Parent()
	switch {
	case parent == SessionsURI:
		if err := s.sessions.Logout(id.Leaf()); err != nil && !errors.Is(err, sessions.ErrNotFound) {
			s.error(w, r, http.StatusInternalServerError, "Base.1.0.InternalError", err.Error())
			return
		}
	case parent == SubscriptionsURI:
		if err := s.bus.Unsubscribe(id.Leaf()); err != nil {
			s.error(w, r, http.StatusNotFound, "Base.1.0.ResourceMissingAtURI", err.Error())
			return
		}
	case parent == AggregationSourcesURI:
		// Deleting an aggregation source also drops its aggregated subtree.
		var src redfish.AggregationSource
		if err := s.store.GetAs(id, &src); err == nil {
			for _, res := range src.Links.ResourcesAccessed {
				if _, err := s.store.DeleteSubtreeCtx(r.Context(), res.ODataID); err != nil {
					s.storeError(w, r, err)
					return
				}
				s.UnregisterFabricHandler(res.ODataID)
			}
		}
	default:
		// DELETE of a composed system routes through the Composability
		// Manager, releasing its resources.
		if parent == SystemsURI && s.systemComposer() != nil && s.isComposedSystem(id) {
			if err := s.systemComposer().DecomposeSystem(r.Context(), id); err != nil {
				s.error(w, r, http.StatusConflict, "OFMF.1.0.DecompositionFailed", err.Error())
				return
			}
			// The composer removed the resource itself.
			if err := s.store.DeleteCtx(r.Context(), id); err != nil && !errors.Is(err, store.ErrNotFound) {
				s.storeError(w, r, err)
				return
			}
			w.WriteHeader(http.StatusNoContent)
			return
		}
		if h, ok := s.handlerFor(id); ok {
			var err error
			switch {
			case parent.Leaf() == "Connections":
				err = s.DeleteConnection(r.Context(), id)
			case parent.Leaf() == "Zones":
				err = s.DeleteZone(r.Context(), id)
			default:
				if _, ok := h.(ResourceProvisioner); ok {
					err = s.DeprovisionResource(r.Context(), id)
				} else {
					s.error(w, r, http.StatusMethodNotAllowed, "Base.1.0.OperationNotAllowed", "agent-owned resource cannot be deleted")
					return
				}
			}
			if err != nil {
				if IsAgentError(err) {
					s.agentError(w, r, err)
					return
				}
				s.storeError(w, r, err)
				return
			}
			w.WriteHeader(http.StatusNoContent)
			return
		} else if !s.cfg.DirectWrites {
			s.error(w, r, http.StatusMethodNotAllowed, "Base.1.0.OperationNotAllowed", "resource is read-only")
			return
		}
	}
	if err := s.store.DeleteCtx(r.Context(), id); err != nil {
		s.storeError(w, r, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// isComposedSystem reports whether id is a ComputerSystem with
// SystemType "Composed".
func (s *Service) isComposedSystem(id odata.ID) bool {
	var sys struct {
		SystemType string `json:"SystemType"`
	}
	if err := s.store.GetAs(id, &sys); err != nil {
		return false
	}
	return sys.SystemType == redfish.SystemTypeComposed
}

// json encodes v into a pooled buffer and writes it in one shot, so slow
// clients never stall inside the encoder and the hot path avoids
// per-response encoder allocations.
func (s *Service) json(w http.ResponseWriter, status int, v any) {
	buf := getBuf()
	defer putBuf(buf)
	_ = json.NewEncoder(buf).Encode(v)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

// error emits the Redfish extended-error envelope. Every error body
// carries a @Message.ExtendedInfo entry whose MessageId repeats the
// message registry code, so clients get one consistent shape regardless
// of which handler failed; the failure is also logged with the request id.
func (s *Service) error(w http.ResponseWriter, r *http.Request, status int, code, message string) {
	s.json(w, status, RedfishError(status, code, message))
	if r != nil {
		s.log.LogAttrs(r.Context(), slog.LevelDebug, "request error",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.String("code", code),
			slog.String("message", message),
		)
	}
}

// RedfishError builds the extended-error envelope used for every failed
// request, including the consistent @Message.ExtendedInfo entry.
func RedfishError(status int, code, message string) odata.ErrorEnvelope {
	return odata.NewError(code, message, odata.Message{
		MessageID:  code,
		Message:    message,
		Severity:   severityFor(status),
		Resolution: "None",
	})
}

// severityFor maps an HTTP status to the Redfish message severity.
func severityFor(status int) string {
	switch {
	case status >= 500:
		return "Critical"
	case status >= 400:
		return "Warning"
	}
	return "OK"
}

func (s *Service) storeError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, store.ErrNotFound), errors.Is(err, store.ErrNotCollection):
		s.error(w, r, http.StatusNotFound, "Base.1.0.ResourceMissingAtURI", err.Error())
	case errors.Is(err, store.ErrEtagMismatch):
		s.error(w, r, http.StatusPreconditionFailed, "Base.1.0.PreconditionFailed", err.Error())
	case errors.Is(err, store.ErrExists):
		s.error(w, r, http.StatusConflict, "Base.1.0.ResourceAlreadyExists", err.Error())
	case errors.Is(err, store.ErrBadPayload):
		s.error(w, r, http.StatusBadRequest, "Base.1.0.MalformedJSON", err.Error())
	default:
		s.error(w, r, http.StatusInternalServerError, "Base.1.0.InternalError", err.Error())
	}
}

func (s *Service) agentError(w http.ResponseWriter, r *http.Request, err error) {
	s.error(w, r, http.StatusBadRequest, "OFMF.1.0.AgentRejectedRequest", fmt.Sprintf("fabric agent rejected request: %v", err))
}

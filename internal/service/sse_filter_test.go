package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"ofmf/internal/events"
	"ofmf/internal/redfish"
)

func TestParseSSEFilter(t *testing.T) {
	cases := []struct {
		in   []string
		want []string
	}{
		{nil, nil},
		{[]string{"Alert"}, []string{"Alert"}},
		{[]string{"Alert,StatusChange"}, []string{"Alert", "StatusChange"}},
		{[]string{" Alert , StatusChange "}, []string{"Alert", "StatusChange"}},
		{[]string{"Alert", "StatusChange,ResourceUpdated"}, []string{"Alert", "StatusChange", "ResourceUpdated"}},
		{[]string{",", ""}, nil},
	}
	for _, c := range cases {
		got := parseSSEFilter(c.in).EventTypes
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseSSEFilter(%q).EventTypes = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestSSEMultiValueEventTypeFilter opens a stream filtered to two event
// types at once via a comma-separated ?EventType= and checks both pass
// while a third is rejected.
func TestSSEMultiValueEventTypeFilter(t *testing.T) {
	svc, srv := newTestServer(t, Config{})
	resp, err := http.Get(srv.URL + string(SSEURI) + "?EventType=Alert,StatusChange")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(svc.Bus().Subscriptions()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("SSE subscription never registered")
		}
		time.Sleep(2 * time.Millisecond)
	}
	svc.Bus().Publish(events.Record(redfish.EventResourceUpdated, "f-1", "filtered out", "/redfish/v1/Systems/S1"))
	svc.Bus().Publish(events.Record(redfish.EventAlert, "f-2", "link degraded", "/redfish/v1/Fabrics/X"))
	svc.Bus().Publish(events.Record(redfish.EventStatusChange, "f-3", "agent down", "/redfish/v1/Systems/S1"))

	reader := bufio.NewReader(resp.Body)
	var got []string
	done := make(chan struct{})
	go func() {
		defer close(done)
		for len(got) < 2 {
			line, err := reader.ReadString('\n')
			if err != nil {
				return
			}
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev redfish.Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(strings.TrimSpace(line), "data: ")), &ev); err != nil {
				return
			}
			got = append(got, ev.Events[0].EventID)
		}
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatalf("stream stalled; frames so far: %q", got)
	}
	if !reflect.DeepEqual(got, []string{"f-2", "f-3"}) {
		t.Fatalf("stream delivered %q, want [f-2 f-3] (ResourceUpdated must be filtered)", got)
	}
}

// TestSSESinkCountsDrops fills an sseSink's queue past capacity and
// checks overflow is counted per stream and globally instead of
// blocking the delivering worker.
func TestSSESinkCountsDrops(t *testing.T) {
	var global counterStub
	sink := &sseSink{ch: make(chan sseFrame, 2), global: &global}
	for i := 0; i < 5; i++ {
		if err := sink.DeliverBytes(context.Background(), "id", []byte("{}")); err != nil {
			t.Fatal(err)
		}
	}
	if got := sink.dropped.Load(); got != 3 {
		t.Fatalf("per-stream dropped = %d, want 3", got)
	}
	if global.n != 3 {
		t.Fatalf("global dropped = %d, want 3", global.n)
	}
	if len(sink.ch) != 2 {
		t.Fatalf("queued frames = %d, want 2", len(sink.ch))
	}
}

type counterStub struct{ n int }

func (c *counterStub) Inc() { c.n++ }

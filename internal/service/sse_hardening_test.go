package service

import (
	"bufio"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ofmf/internal/events"
	"ofmf/internal/redfish"
)

// brokenWriter accepts the SSE preamble, then fails every subsequent
// write — a client whose socket died without closing the request.
type brokenWriter struct {
	hdr http.Header

	mu     sync.Mutex
	writes int
	broken bool
}

func (b *brokenWriter) Header() http.Header { return b.hdr }
func (b *brokenWriter) WriteHeader(int)     {}
func (b *brokenWriter) Flush()              {}

func (b *brokenWriter) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.writes++
	if b.broken {
		return 0, errors.New("write on dead connection")
	}
	return len(p), nil
}

func (b *brokenWriter) breakPipe() {
	b.mu.Lock()
	b.broken = true
	b.mu.Unlock()
}

// TestSSETerminatesOnWriteError verifies a stream whose peer is gone is
// torn down on the first failed write — releasing its bus subscription —
// instead of pumping events into the void forever.
func TestSSETerminatesOnWriteError(t *testing.T) {
	svc := New(Config{})
	t.Cleanup(svc.Close)

	w := &brokenWriter{hdr: make(http.Header)}
	r := httptest.NewRequest(http.MethodGet, string(SSEURI), nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		svc.handleSSE(w, r)
	}()

	deadline := time.Now().Add(5 * time.Second)
	for len(svc.Bus().Subscriptions()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("SSE subscription never registered")
		}
		time.Sleep(2 * time.Millisecond)
	}

	w.breakPipe()
	svc.Bus().Publish(events.Record(redfish.EventAlert, "dead-1", "event for a dead client", ""))

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler kept streaming after the write error")
	}
	deadline = time.Now().Add(5 * time.Second)
	for len(svc.Bus().Subscriptions()) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("dead stream's subscription leaked")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSSEKeepaliveFrames verifies idle streams carry periodic comment
// frames, the probe that surfaces dead clients to the write path.
func TestSSEKeepaliveFrames(t *testing.T) {
	_, srv := newTestServer(t, Config{SSEKeepalive: 5 * time.Millisecond})

	resp, err := http.Get(srv.URL + string(SSEURI))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	got := make(chan string, 1)
	go func() {
		reader := bufio.NewReader(resp.Body)
		for {
			line, err := reader.ReadString('\n')
			if err != nil {
				return
			}
			if strings.HasPrefix(line, ":") {
				got <- strings.TrimSpace(line)
				return
			}
		}
	}()
	select {
	case line := <-got:
		if line != ": keepalive" {
			t.Errorf("comment frame = %q", line)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no keepalive frame on an idle stream")
	}
}

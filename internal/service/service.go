// Package service implements the OFMF itself: the centralized Redfish/
// Swordfish management service. It assembles the resource store into a
// service root, serves the Redfish REST protocol over net/http, hosts the
// event, task, session, telemetry, aggregation and composition services,
// and forwards fabric mutations (zones, connections, port state) to the
// technology-specific Agents that registered the affected fabric.
//
// The design follows the paper's architecture: clients talk to one Redfish
// tree ("an HPC disaggregated infrastructure is represented under a single
// Redfish tree that includes all the fabrics and resources available");
// requests touching agent-owned resources "are forwarded to the
// appropriate fabric manager via dedicated light-weight technology-
// specific Agents".
package service

import (
	"context"
	"fmt"
	"log/slog"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ofmf/internal/events"
	"ofmf/internal/obsv"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/sessions"
	"ofmf/internal/store"
	"ofmf/internal/tasks"
)

// Well-known URIs of the service tree.
const (
	RootURI               = odata.ID("/redfish/v1")
	SystemsURI            = RootURI + "/Systems"
	ChassisURI            = RootURI + "/Chassis"
	FabricsURI            = RootURI + "/Fabrics"
	StorageURI            = RootURI + "/Storage"
	EventServiceURI       = RootURI + "/EventService"
	SubscriptionsURI      = EventServiceURI + "/Subscriptions"
	TaskServiceURI        = RootURI + "/TaskService"
	TasksURI              = TaskServiceURI + "/Tasks"
	SessionServiceURI     = RootURI + "/SessionService"
	SessionsURI           = SessionServiceURI + "/Sessions"
	TelemetryServiceURI   = RootURI + "/TelemetryService"
	MetricDefinitionsURI  = TelemetryServiceURI + "/MetricDefinitions"
	MetricReportDefsURI   = TelemetryServiceURI + "/MetricReportDefinitions"
	MetricReportsURI      = TelemetryServiceURI + "/MetricReports"
	AggregationServiceURI = RootURI + "/AggregationService"
	AggregationSourcesURI = AggregationServiceURI + "/AggregationSources"
	CompositionServiceURI = RootURI + "/CompositionService"
	ResourceBlocksURI     = CompositionServiceURI + "/ResourceBlocks"
	ResourceZonesURI      = CompositionServiceURI + "/ResourceZones"
	RegistriesURI         = RootURI + "/Registries"
)

// SystemComposer handles Redfish-native composition: a POST to the
// Systems collection becomes a composition request, and a DELETE of a
// composed system becomes decomposition. The Composability Manager
// implements it; the service stays policy-free.
type SystemComposer interface {
	// ComposeSystem realizes the request payload and returns the composed
	// system's URI. ctx carries the request id for trace correlation.
	ComposeSystem(ctx context.Context, payload []byte) (odata.ID, error)
	// DecomposeSystem releases the composed system at the URI.
	DecomposeSystem(ctx context.Context, systemURI odata.ID) error
}

// FabricHandler is implemented by Agents. The service forwards mutations of
// agent-owned fabric resources to the owning handler; the handler applies
// the change to its hardware (emulated or real) and republishes its
// subtree before returning, so the store reflects hardware truth.
type FabricHandler interface {
	// FabricID is the fabric subtree root this handler owns, e.g.
	// /redfish/v1/Fabrics/CXL.
	FabricID() odata.ID
	// CreateConnection establishes the requested connection in hardware.
	// The handler may mutate conn (fill identifiers, status) before it is
	// stored.
	CreateConnection(conn *redfish.Connection) error
	// DeleteConnection tears the connection down in hardware.
	DeleteConnection(id odata.ID) error
	// CreateZone establishes the zone in hardware.
	CreateZone(zone *redfish.Zone) error
	// DeleteZone removes the zone from hardware.
	DeleteZone(id odata.ID) error
	// Patch applies an arbitrary property patch to an agent-owned resource
	// (e.g. disabling a Port).
	Patch(id odata.ID, patch map[string]any) error
}

// Config parameterizes the service.
type Config struct {
	// Name is the service root display name.
	Name string
	// UUID identifies the service instance.
	UUID string
	// Credentials enables authentication when non-nil: every request
	// except the service root, $metadata and session creation must carry a
	// valid X-Auth-Token.
	Credentials sessions.Credentials
	// SessionTimeout bounds session lifetime (default 30 minutes).
	SessionTimeout time.Duration
	// Events tunes the event bus.
	Events events.Config
	// SSEKeepalive is the interval between comment frames written to idle
	// SSE streams so dead clients are detected and reaped instead of
	// holding a subscription forever (default 15s; negative disables).
	SSEKeepalive time.Duration
	// DirectWrites permits generic POST/PATCH/DELETE on resources that are
	// not handled by a dedicated endpoint or fabric agent. The in-process
	// testbed and the composer use this; it mirrors the reference OFMF
	// emulator's permissive mode.
	DirectWrites bool
	// ChangeEvents publishes ResourceAdded/Updated/Removed on every store
	// mutation (default on).
	ChangeEvents *bool
	// Logger receives the service's structured log output (default: drop
	// everything). Request-scoped lines carry the request_id attribute.
	Logger *slog.Logger
	// Metrics is the instrument bundle the service records into; when nil
	// a private registry is created. Expose it at /metrics via
	// Metrics.Registry().Handler().
	Metrics *obsv.Metrics
	// Tracer records request spans; when nil one is created on the
	// metrics registry with default options (traces buffered, no slow
	// logging). It is shared with the store, the event bus and the
	// composer so one request yields one linked trace.
	Tracer *obsv.Tracer
	// StoreShards partitions the resource store into this many
	// independently locked shards (see store.NewSharded). Zero or
	// negative selects the store's default (1, or the OFMF_STORE_SHARDS
	// environment override).
	StoreShards int
}

// Service is the OFMF instance.
type Service struct {
	cfg Config

	store    *store.Store
	bus      *events.Bus
	tasks    *tasks.Service
	sessions *sessions.Service
	log      *slog.Logger
	metrics  *obsv.Metrics
	tracer   *obsv.Tracer

	mu       sync.RWMutex
	handlers map[odata.ID]FabricHandler
	composer SystemComposer
	eventSeq int64

	// hosts indexes AggregationSource.HostName → source URI for O(1)
	// registration dedup (see hostIndex).
	hosts *hostIndex

	// allocMu serializes id allocation for POSTed resources so concurrent
	// creations in one collection cannot collide.
	allocMu sync.Mutex

	// replica, when non-nil, puts the service in replica serving mode:
	// reads are served from the local (replicated) tree, everything
	// else is forwarded to the leader (see replica.go). An atomic
	// pointer so the hot GET path pays one load, no lock.
	replica atomic.Pointer[replicaMode]
}

// SetSystemComposer wires Redfish-native composition: subsequent POSTs to
// /redfish/v1/Systems and DELETEs of composed systems route through c.
func (s *Service) SetSystemComposer(c SystemComposer) {
	s.mu.Lock()
	s.composer = c
	s.mu.Unlock()
}

func (s *Service) systemComposer() SystemComposer {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.composer
}

// New assembles an OFMF service and bootstraps its resource tree.
func New(cfg Config) *Service {
	if cfg.Name == "" {
		cfg.Name = "OpenFabrics Management Framework"
	}
	if cfg.UUID == "" {
		cfg.UUID = "00000000-0000-0000-0000-000000000001"
	}
	if cfg.SessionTimeout <= 0 {
		cfg.SessionTimeout = 30 * time.Minute
	}
	if cfg.Logger == nil {
		cfg.Logger = obsv.NopLogger()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obsv.NewMetrics(obsv.NewRegistry())
	}
	if cfg.Tracer == nil {
		cfg.Tracer = obsv.NewTracer(cfg.Metrics.Registry(), obsv.TracerOptions{Logger: cfg.Logger})
	}
	s := &Service{
		cfg:      cfg,
		store:    store.NewSharded(cfg.StoreShards),
		log:      cfg.Logger,
		metrics:  cfg.Metrics,
		tracer:   cfg.Tracer,
		handlers: make(map[odata.ID]FabricHandler),
	}
	// The host index watches from the very first mutation (before
	// bootstrap), so it also covers sources re-created by WAL recovery
	// replay and never needs to scan the collection.
	s.hosts = newHostIndex(s.store)
	s.store.Watch(s.hosts.onChange)
	// Shard labels are precomputed so the hooks on the store's hot paths
	// never format strings; index -1 is the cross-shard ("all") label.
	shardLabels := make([]string, s.store.ShardCount()+1)
	shardLabels[0] = "all"
	for i := 1; i < len(shardLabels); i++ {
		shardLabels[i] = strconv.Itoa(i - 1)
	}
	// Counters are resolved per (op, shard) up front: With joins its two
	// label values into a fresh key string on every call, which would put
	// an allocation on the zero-alloc read path.
	opCounters := make(map[string][]*obsv.Counter, len(store.OpNames))
	for _, op := range store.OpNames {
		cs := make([]*obsv.Counter, len(shardLabels))
		for i, lbl := range shardLabels {
			cs[i] = s.metrics.StoreOps.With(op, lbl)
		}
		opCounters[op] = cs
	}
	s.store.SetOpHook(func(op string, shard int) {
		if cs, ok := opCounters[op]; ok {
			cs[shard+1].Inc()
			return
		}
		s.metrics.StoreOps.With(op, shardLabels[shard+1]).Inc()
	})
	s.store.SetLockWaitHook(func(shard int, wait time.Duration) {
		s.metrics.StoreLockWait.With(shardLabels[shard+1]).Observe(wait.Seconds())
	})
	s.store.SetTracer(s.tracer)
	s.metrics.StoreShards.Set(float64(s.store.ShardCount()))
	for i := 0; i < s.store.ShardCount(); i++ {
		i := i
		s.metrics.Registry().LabeledGaugeFunc("ofmf_store_shard_entries",
			"Resources held by each store shard.",
			[]string{"shard"}, []string{shardLabels[i+1]},
			func() float64 { return float64(s.store.ShardLen(i)) })
	}
	// Degrade a subscription's advertised health as deliveries fail, so
	// monitoring clients can see dead destinations in the tree.
	evCfg := cfg.Events
	if evCfg.Tracer == nil {
		evCfg.Tracer = s.tracer
	}
	if evCfg.OnDeliveryFailure == nil {
		evCfg.OnDeliveryFailure = func(subID string, consecutive int) {
			health := odata.HealthWarning
			if consecutive >= 3 {
				health = odata.HealthCritical
			}
			// SSE subscriptions have no stored resource; ignore misses.
			_ = s.store.Patch(SubscriptionsURI.Append(subID),
				map[string]any{"Status": map[string]any{"Health": health}}, "")
		}
	}
	if evCfg.PublishObserver == nil {
		evCfg.PublishObserver = func(d time.Duration) {
			s.metrics.EventPublishSeconds.Observe(d.Seconds())
		}
	}
	s.bus = events.NewBus(evCfg)
	// Event-bus statistics surface as function metrics read at scrape
	// time, so the bus keeps sole ownership of its counters.
	reg := s.metrics.Registry()
	reg.CounterFunc("ofmf_events_published_total",
		"Events published on the bus.",
		func() float64 { return float64(s.bus.Stats().Published) })
	reg.CounterFunc("ofmf_events_delivered_total",
		"Successful event deliveries across subscriptions.",
		func() float64 { return float64(s.bus.Stats().Delivered) })
	reg.CounterFunc("ofmf_events_failed_total",
		"Event deliveries abandoned after exhausting retries.",
		func() float64 { return float64(s.bus.Stats().Failed) })
	reg.CounterFunc("ofmf_events_dropped_total",
		"Events dropped on full subscription queues.",
		func() float64 { return float64(s.bus.Stats().Dropped) })
	reg.CounterFunc("ofmf_events_dropped_closed_total",
		"Events discarded because their subscription was closed.",
		func() float64 { return float64(s.bus.Stats().DroppedClosed) })
	reg.GaugeFunc("ofmf_event_subscribers",
		"Registered event subscriptions.",
		func() float64 { return float64(len(s.bus.Subscriptions())) })
	reg.CounterFunc("ofmf_event_encodes_total",
		"Event envelope encodings (one per publish reaching a byte sink).",
		func() float64 { return float64(s.bus.Stats().Encodes) })
	reg.GaugeFunc("ofmf_event_workers",
		"Delivery worker pool size.",
		func() float64 { return float64(s.bus.Pool().Workers) })
	reg.GaugeFunc("ofmf_event_workers_busy",
		"Delivery workers currently mid-delivery.",
		func() float64 { return float64(s.bus.Pool().Busy) })
	reg.GaugeFunc("ofmf_event_queue_depth",
		"Events waiting across all subscription queues.",
		func() float64 { return float64(s.bus.Pool().Queued) })
	s.tasks = tasks.NewService(TasksURI,
		tasks.WithMirror(func(id odata.ID, task redfish.Task) { _ = s.store.Put(id, task) }),
		tasks.WithNotifier(func(rec redfish.EventRecord) { s.bus.Publish(rec) }),
	)
	check := cfg.Credentials
	if check == nil {
		check = func(string, string) bool { return true }
	}
	s.sessions = sessions.NewService(check, cfg.SessionTimeout)
	s.bootstrap()
	if cfg.ChangeEvents == nil || *cfg.ChangeEvents {
		s.store.Watch(s.publishChange)
	}
	return s
}

// Store exposes the resource repository for in-process components (the
// composer, in-process agents, tests).
func (s *Service) Store() *store.Store { return s.store }

// Bus exposes the event bus for in-process subscribers.
func (s *Service) Bus() *events.Bus { return s.bus }

// Tasks exposes the task service.
func (s *Service) Tasks() *tasks.Service { return s.tasks }

// Sessions exposes the session service.
func (s *Service) Sessions() *sessions.Service { return s.sessions }

// Logger exposes the service's structured logger so in-process
// components (composer, agents) log into the same correlated stream.
func (s *Service) Logger() *slog.Logger { return s.log }

// Metrics exposes the service's instrument bundle.
func (s *Service) Metrics() *obsv.Metrics { return s.metrics }

// Tracer exposes the service's span tracer so in-process components
// (composer, agents, the testbed) record into the same trace ring.
func (s *Service) Tracer() *obsv.Tracer { return s.tracer }

// Close releases the service's background resources: the event bus, and
// the store's durability backend if one is attached — flushing its
// write-ahead log and taking a final snapshot, so a graceful shutdown
// restarts without replay.
func (s *Service) Close() {
	s.bus.Close()
	if err := s.store.Close(); err != nil {
		s.log.Error("service: store backend close failed", "err", err)
	}
}

func (s *Service) bootstrap() {
	st := s.store
	// Collections.
	st.RegisterCollection(SystemsURI, redfish.TypeComputerSystemCollection, "Computer System Collection")
	st.RegisterCollection(ChassisURI, redfish.TypeChassisCollection, "Chassis Collection")
	st.RegisterCollection(FabricsURI, redfish.TypeFabricCollection, "Fabric Collection")
	st.RegisterCollection(StorageURI, redfish.TypeStorageCollection, "Storage Collection")
	st.RegisterCollection(SubscriptionsURI, redfish.TypeEventDestCollection, "Event Subscriptions")
	st.RegisterCollection(TasksURI, redfish.TypeTaskCollection, "Task Collection")
	st.RegisterCollection(SessionsURI, redfish.TypeSessionCollection, "Session Collection")
	st.RegisterCollection(MetricDefinitionsURI, redfish.TypeMetricDefCollection, "Metric Definitions")
	st.RegisterCollection(MetricReportDefsURI, redfish.TypeMetricReportDefCollection, "Metric Report Definitions")
	st.RegisterCollection(MetricReportsURI, redfish.TypeMetricReportCollection, "Metric Reports")
	st.RegisterCollection(AggregationSourcesURI, redfish.TypeAggregationSrcCollection, "Aggregation Sources")
	st.RegisterCollection(ResourceBlocksURI, redfish.TypeResourceBlockCollection, "Resource Blocks")
	st.RegisterCollection(ResourceZonesURI, redfish.TypeResourceZoneCollection, "Resource Zones")

	// Service root and the fixed service resources.
	root := redfish.Root{
		Resource:           odata.NewResource(RootURI, redfish.TypeServiceRoot, s.cfg.Name),
		RedfishVersion:     "1.15.0",
		UUID:               s.cfg.UUID,
		Systems:            redfish.Ref(SystemsURI),
		Chassis:            redfish.Ref(ChassisURI),
		Fabrics:            redfish.Ref(FabricsURI),
		Storage:            redfish.Ref(StorageURI),
		EventService:       redfish.Ref(EventServiceURI),
		TaskService:        redfish.Ref(TaskServiceURI),
		SessionService:     redfish.Ref(SessionServiceURI),
		TelemetryService:   redfish.Ref(TelemetryServiceURI),
		AggregationService: redfish.Ref(AggregationServiceURI),
		CompositionService: redfish.Ref(CompositionServiceURI),
		Links:              redfish.RootLinks{Sessions: odata.NewRef(SessionsURI)},
	}
	must(st.Put(RootURI, root))

	must(st.Put(EventServiceURI, redfish.EventService{
		Resource:                     odata.NewResource(EventServiceURI, redfish.TypeEventService, "Event Service"),
		ServiceEnabled:               true,
		DeliveryRetryAttempts:        events.DefaultConfig().RetryAttempts,
		DeliveryRetryIntervalSeconds: int(events.DefaultConfig().RetryInterval / time.Second),
		EventTypesForSubscription: []string{
			redfish.EventResourceAdded, redfish.EventResourceRemoved,
			redfish.EventResourceUpdated, redfish.EventStatusChange,
			redfish.EventAlert, redfish.EventMetricReport,
		},
		ServerSentEventURI: string(SSEURI),
		Status:             odata.StatusOK(),
		Subscriptions:      redfish.Ref(SubscriptionsURI),
	}))

	must(st.Put(TaskServiceURI, redfish.TaskService{
		Resource:                        odata.NewResource(TaskServiceURI, redfish.TypeTaskService, "Task Service"),
		ServiceEnabled:                  true,
		CompletedTaskOverWritePolicy:    "Oldest",
		LifeCycleEventOnTaskStateChange: true,
		Status:                          odata.StatusOK(),
		Tasks:                           redfish.Ref(TasksURI),
	}))

	must(st.Put(SessionServiceURI, redfish.SessionService{
		Resource:       odata.NewResource(SessionServiceURI, redfish.TypeSessionService, "Session Service"),
		ServiceEnabled: true,
		SessionTimeout: int(s.cfg.SessionTimeout / time.Second),
		Status:         odata.StatusOK(),
		Sessions:       redfish.Ref(SessionsURI),
	}))

	must(st.Put(TelemetryServiceURI, redfish.TelemetryService{
		Resource:                odata.NewResource(TelemetryServiceURI, redfish.TypeTelemetryService, "Telemetry Service"),
		Status:                  odata.StatusOK(),
		MinCollectionInterval:   "PT1S",
		MetricDefinitions:       redfish.Ref(MetricDefinitionsURI),
		MetricReportDefinitions: redfish.Ref(MetricReportDefsURI),
		MetricReports:           redfish.Ref(MetricReportsURI),
	}))

	must(st.Put(AggregationServiceURI, redfish.AggregationService{
		Resource:           odata.NewResource(AggregationServiceURI, redfish.TypeAggregationSvc, "Aggregation Service"),
		ServiceEnabled:     true,
		Status:             odata.StatusOK(),
		AggregationSources: redfish.Ref(AggregationSourcesURI),
	}))

	st.RegisterCollection(RegistriesURI, "#MessageRegistryCollection.MessageRegistryCollection", "Registries")
	must(st.Put(RegistriesURI.Append("OFMF.1.0"), redfish.OFMFRegistry(RegistriesURI.Append("OFMF.1.0"))))

	must(st.Put(CompositionServiceURI, redfish.CompositionService{
		Resource:       odata.NewResource(CompositionServiceURI, redfish.TypeCompositionSvc, "Composition Service"),
		ServiceEnabled: true,
		Status:         odata.StatusOK(),
		ResourceBlocks: redfish.Ref(ResourceBlocksURI),
		ResourceZones:  redfish.Ref(ResourceZonesURI),
	}))
}

func must(err error) {
	if err != nil {
		panic(fmt.Sprintf("service: bootstrap: %v", err))
	}
}

func (s *Service) publishChange(c store.Change) {
	// Task resources already produce dedicated task events; subscription
	// and session churn is excluded to avoid event-about-event feedback.
	if c.ID.Under(TasksURI) || c.ID.Under(SubscriptionsURI) || c.ID.Under(SessionsURI) {
		return
	}
	s.mu.Lock()
	s.eventSeq++
	id := s.eventSeq
	s.mu.Unlock()
	ctx := c.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	s.bus.PublishCtx(ctx, events.Record(c.Kind.String(), fmt.Sprintf("%d", id), fmt.Sprintf("%s: %s", c.Kind, c.ID), c.ID))
}

// RegisterFabricHandler attaches an Agent's handler for its fabric
// subtree. Subsequent zone/connection/patch requests under that fabric are
// forwarded to it.
func (s *Service) RegisterFabricHandler(h FabricHandler) {
	s.mu.Lock()
	s.handlers[h.FabricID()] = h
	s.mu.Unlock()
}

// UnregisterFabricHandler detaches the handler for the given fabric.
func (s *Service) UnregisterFabricHandler(fabricID odata.ID) {
	s.mu.Lock()
	delete(s.handlers, fabricID)
	s.mu.Unlock()
}

// handlerFor returns the fabric handler owning id, if any.
func (s *Service) handlerFor(id odata.ID) (FabricHandler, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for fid, h := range s.handlers {
		if id.Under(fid) {
			return h, true
		}
	}
	return nil, false
}

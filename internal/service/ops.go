package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"ofmf/internal/obsv"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/store"
)

// AgentError wraps a rejection from a fabric agent so callers can
// distinguish hardware-level refusals from store errors.
type AgentError struct{ Err error }

// Error returns the wrapped message.
func (e *AgentError) Error() string { return fmt.Sprintf("agent rejected request: %v", e.Err) }

// Unwrap exposes the underlying agent error.
func (e *AgentError) Unwrap() error { return e.Err }

// IsAgentError reports whether err originated from a fabric agent.
func IsAgentError(err error) bool {
	var ae *AgentError
	return errors.As(err, &ae)
}

// ctxBinder is an optional FabricHandler extension implemented by
// handlers that forward over HTTP: WithOpContext returns a handler
// bound to the request context, so the forwarded call carries the
// request's deadline and trace identity (see remoteHandler).
type ctxBinder interface {
	WithOpContext(ctx context.Context) FabricHandler
}

// bindCtx binds h to ctx when h supports it.
func bindCtx(ctx context.Context, h FabricHandler) FabricHandler {
	if b, ok := h.(ctxBinder); ok {
		return b.WithOpContext(ctx)
	}
	return h
}

// bindProvisionerCtx is bindCtx for the provisioning extension.
func bindProvisionerCtx(ctx context.Context, p ResourceProvisioner) ResourceProvisioner {
	if b, ok := p.(ctxBinder); ok {
		if bp, ok := b.WithOpContext(ctx).(ResourceProvisioner); ok {
			return bp
		}
	}
	return p
}

// observeAgentOp times one forwarded agent operation, feeding the
// ofmf_agent_* metrics, recording an agent.<op> span when the request
// is traced, and emitting a debug log line correlated with the request
// id in ctx. fn receives the (possibly span-carrying) context so it can
// bind it into the forwarded call.
func (s *Service) observeAgentOp(ctx context.Context, fabric odata.ID, op string, fn func(ctx context.Context) error) error {
	ctx, span := s.tracer.StartIfTraced(ctx, "agent."+op)
	span.SetAttr("fabric", string(fabric))
	start := time.Now()
	err := fn(ctx)
	elapsed := time.Since(start)
	span.EndErr(err)
	outcome := obsv.Outcome(err)
	s.metrics.AgentOps.With(fabric.Leaf(), op, outcome).Inc()
	s.metrics.AgentOpDuration.With(fabric.Leaf(), op).Observe(elapsed.Seconds())
	s.log.LogAttrs(ctx, slog.LevelDebug, "agent op",
		slog.String("fabric", string(fabric)),
		slog.String("op", op),
		slog.String("outcome", outcome),
		slog.Duration("duration", elapsed),
	)
	return err
}

// recordHeartbeat updates agent liveness metrics when a patch carries the
// Oem.OFMF.LastHeartbeat shape used by agent heartbeats. Both local
// (in-process) and remote (HTTP PATCH) heartbeats flow through
// PatchResource, so this single detection point covers every deployment.
func (s *Service) recordHeartbeat(id odata.ID, patch map[string]any) {
	if !id.Under(AggregationSourcesURI) {
		return
	}
	oem, ok := patch["Oem"].(map[string]any)
	if !ok {
		return
	}
	ofmf, ok := oem["OFMF"].(map[string]any)
	if !ok {
		return
	}
	if _, ok := ofmf["LastHeartbeat"]; !ok {
		return
	}
	source := id.Leaf()
	s.metrics.AgentHeartbeats.With(source).Inc()
	s.metrics.AgentLastHeartbeat.With(source).Set(float64(time.Now().UnixNano()) / 1e9)
}

// RegisterAggregationSource registers an agent's aggregation source,
// returning the stored source and whether it was newly created (false
// means an existing registration for the same HostName was revived).
//
// Registration is idempotent per HostName: agents retry the POST
// through their resilient transport, and a retry of a POST that in fact
// succeeded must not mint a duplicate source. The dedup lookup and the
// create both run under allocMu — the lookup used to happen outside it,
// so two concurrent registrations of one HostName could both miss and
// mint duplicates. The change-stream-fed host index makes the lookup
// O(1); the store notifies watchers synchronously on the mutating
// goroutine, so by the time allocMu is released the index already
// reflects this registration and the next holder cannot race past it.
func (s *Service) RegisterAggregationSource(ctx context.Context, src redfish.AggregationSource) (redfish.AggregationSource, bool, error) {
	start := time.Now()
	created, err := s.registerSourceLocked(ctx, &src)
	outcome := "created"
	switch {
	case err != nil:
		outcome = "error"
	case !created:
		outcome = "revived"
	}
	s.metrics.Registrations.With(outcome).Inc()
	s.metrics.RegistrationSeconds.Observe(time.Since(start).Seconds())
	return src, created, err
}

// registerSourceLocked is RegisterAggregationSource's critical section:
// dedup, revive-or-create, store write, all under allocMu.
func (s *Service) registerSourceLocked(ctx context.Context, src *redfish.AggregationSource) (bool, error) {
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	if src.HostName != "" {
		if uri, ok := s.hosts.lookup(src.HostName); ok {
			var existing redfish.AggregationSource
			if err := s.store.GetAs(uri, &existing); err == nil {
				// Re-registering an existing HostName updates the record in
				// place and revives it.
				src.Resource = existing.Resource
				if src.Name == "" {
					src.Name = existing.Name
				}
				src.Status = odata.StatusOK()
				if src.Oem.OFMF != nil && src.Oem.OFMF.LastHeartbeat == "" {
					src.Oem.OFMF.LastHeartbeat = redfish.Timestamp(time.Now())
				}
				return false, s.store.PutCtx(ctx, uri, *src)
			}
		}
	}
	id := s.store.NextID(AggregationSourcesURI)
	uri := AggregationSourcesURI.Append(id)
	name := src.Name
	if name == "" {
		name = "Agent " + id
	}
	src.Resource = odata.NewResource(uri, redfish.TypeAggregationSource, name)
	src.Status = odata.StatusOK()
	return true, s.store.PutCtx(ctx, uri, *src)
}

// ResourceProvisioner is an optional extension of FabricHandler: agents
// whose hardware can provision resources (memory chunks, volumes, GPU
// partitions) implement it so POSTs to their collections carve real
// capacity. The returned value is stored at the allocated URI.
type ResourceProvisioner interface {
	CreateResource(coll odata.ID, uri odata.ID, payload json.RawMessage) (any, error)
	DeleteResource(id odata.ID) error
}

// CreateZone creates a zone in the given zone collection, forwarding to
// the owning agent when one is registered.
func (s *Service) CreateZone(ctx context.Context, coll odata.ID, zone redfish.Zone) (redfish.Zone, error) {
	var agentErr error
	_, err := s.createInCollection(ctx, coll, func(uri odata.ID) (any, error) {
		name := zone.Name
		if name == "" {
			name = "Zone " + uri.Leaf()
		}
		zone.Resource = odata.NewResource(uri, redfish.TypeZone, name)
		if zone.ZoneType == "" {
			zone.ZoneType = redfish.ZoneTypeZoneOfEndpoints
		}
		zone.Status = odata.StatusOK()
		if h, ok := s.handlerFor(uri); ok {
			if err := s.observeAgentOp(ctx, h.FabricID(), "CreateZone", func(ctx context.Context) error {
				return bindCtx(ctx, h).CreateZone(&zone)
			}); err != nil {
				agentErr = err
				return nil, err
			}
		}
		return zone, nil
	})
	if agentErr != nil {
		return zone, &AgentError{Err: agentErr}
	}
	return zone, err
}

// DeleteZone removes a zone, forwarding to the owning agent. Deletion is
// serialized with id allocation so a freed URI cannot be reused until the
// old resource is fully gone.
func (s *Service) DeleteZone(ctx context.Context, id odata.ID) error {
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	if h, ok := s.handlerFor(id); ok {
		if err := s.observeAgentOp(ctx, h.FabricID(), "DeleteZone", func(ctx context.Context) error {
			return bindCtx(ctx, h).DeleteZone(id)
		}); err != nil {
			return &AgentError{Err: err}
		}
	}
	return s.store.DeleteCtx(ctx, id)
}

// CreateConnection creates a connection in the given collection,
// forwarding to the owning agent so the hardware attachment is made
// before the resource becomes visible.
func (s *Service) CreateConnection(ctx context.Context, coll odata.ID, conn redfish.Connection) (redfish.Connection, error) {
	var agentErr error
	_, err := s.createInCollection(ctx, coll, func(uri odata.ID) (any, error) {
		name := conn.Name
		if name == "" {
			name = "Connection " + uri.Leaf()
		}
		conn.Resource = odata.NewResource(uri, redfish.TypeConnection, name)
		conn.Status = odata.StatusOK()
		if h, ok := s.handlerFor(uri); ok {
			if err := s.observeAgentOp(ctx, h.FabricID(), "CreateConnection", func(ctx context.Context) error {
				return bindCtx(ctx, h).CreateConnection(&conn)
			}); err != nil {
				agentErr = err
				return nil, err
			}
		}
		return conn, nil
	})
	if agentErr != nil {
		return conn, &AgentError{Err: agentErr}
	}
	return conn, err
}

// DeleteConnection tears down a connection, forwarding to the owning
// agent so the hardware detachment happens first. Serialized with id
// allocation (see DeleteZone).
func (s *Service) DeleteConnection(ctx context.Context, id odata.ID) error {
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	if h, ok := s.handlerFor(id); ok {
		if err := s.observeAgentOp(ctx, h.FabricID(), "DeleteConnection", func(ctx context.Context) error {
			return bindCtx(ctx, h).DeleteConnection(id)
		}); err != nil {
			return &AgentError{Err: err}
		}
	}
	return s.store.DeleteCtx(ctx, id)
}

// PatchResource applies a patch, forwarding to the owning agent for
// agent-owned resources. For store-resident resources the patch is applied
// directly with optional If-Match semantics.
func (s *Service) PatchResource(ctx context.Context, id odata.ID, patch map[string]any, ifMatch string) error {
	s.recordHeartbeat(id, patch)
	if h, ok := s.handlerFor(id); ok {
		if err := s.observeAgentOp(ctx, h.FabricID(), "Patch", func(ctx context.Context) error {
			return bindCtx(ctx, h).Patch(id, patch)
		}); err != nil {
			return &AgentError{Err: err}
		}
		return nil
	}
	return s.store.PatchCtx(ctx, id, patch, ifMatch)
}

// ProvisionResource creates a resource in an agent-owned collection by
// forwarding to the agent's provisioner; the agent carves real capacity
// and returns the resource to store. It fails when the owning agent does
// not support provisioning.
func (s *Service) ProvisionResource(ctx context.Context, coll odata.ID, payload json.RawMessage) (odata.ID, error) {
	h, ok := s.handlerFor(coll)
	if !ok {
		return "", fmt.Errorf("service: no agent owns %s", coll)
	}
	prov, ok := h.(ResourceProvisioner)
	if !ok {
		return "", fmt.Errorf("service: agent for %s cannot provision resources", coll)
	}
	var agentErr error
	uri, err := s.createInCollection(ctx, coll, func(uri odata.ID) (any, error) {
		var res any
		err := s.observeAgentOp(ctx, h.FabricID(), "CreateResource", func(ctx context.Context) error {
			var err error
			res, err = bindProvisionerCtx(ctx, prov).CreateResource(coll, uri, payload)
			return err
		})
		if err != nil {
			agentErr = err
			return nil, err
		}
		return res, nil
	})
	if agentErr != nil {
		return "", &AgentError{Err: agentErr}
	}
	return uri, err
}

// DeprovisionResource deletes an agent-provisioned resource, releasing
// the hardware capacity first. Serialized with id allocation so the
// trailing store delete can never clobber a reused URI's new resource.
func (s *Service) DeprovisionResource(ctx context.Context, id odata.ID) error {
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	h, ok := s.handlerFor(id)
	if !ok {
		return fmt.Errorf("service: no agent owns %s", id)
	}
	prov, ok := h.(ResourceProvisioner)
	if !ok {
		return fmt.Errorf("service: agent for %s cannot provision resources", id)
	}
	if err := s.observeAgentOp(ctx, h.FabricID(), "DeleteResource", func(ctx context.Context) error {
		return bindProvisionerCtx(ctx, prov).DeleteResource(id)
	}); err != nil {
		return &AgentError{Err: err}
	}
	// The agent's republish may already have dropped the resource.
	if err := s.store.DeleteCtx(ctx, id); err != nil && !errors.Is(err, store.ErrNotFound) {
		return err
	}
	return nil
}

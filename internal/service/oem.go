package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"ofmf/internal/obsv"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/resilience"
)

// OEM extension URIs used by out-of-process Agents. The reference OFMF
// exposes equivalent internal interfaces for its agents; they are not part
// of the standard Redfish surface.
const (
	SubtreeOemURI     = RootURI + "/Oem/OFMF/Subtree"
	EventsOemURI      = RootURI + "/Oem/OFMF/Events"
	CollectionsOemURI = RootURI + "/Oem/OFMF/Collections"
	// AdminTreeOemURI is the operator backup endpoint: GET downloads the
	// whole resource tree as portable JSON (the store's Export format,
	// independent of the WAL's on-disk layout), POST/PUT restores one.
	// Restore has replace semantics — the resource tree afterwards is
	// exactly the dumped tree, resources absent from the dump included —
	// and is all-or-nothing: the dump is fully decoded and validated
	// before the store is touched, and then applied as one atomic batch.
	// ofmfctl dump/restore drive it.
	AdminTreeOemURI = RootURI + "/Oem/OFMF/Admin/Tree"
	// TracesOemURI is the operator tracing endpoint: GET dumps the
	// tracer's ring buffer of finished spans as JSON, newest trace
	// first. Query parameters: min_ms filters to spans at least that
	// many milliseconds long, trace selects one trace id, limit caps the
	// span count (default 1000).
	TracesOemURI = RootURI + "/Oem/OFMF/Admin/Traces"
)

// maxRestoreBytes bounds an uploaded tree dump. Dumps are whole-tree, so
// the ceiling is far above the general request bound.
const maxRestoreBytes = 256 << 20

func (s *Service) handleAdminTree(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		data, err := s.store.Export()
		if err != nil {
			s.error(w, r, http.StatusInternalServerError, "Base.1.0.InternalError", err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		if r.Method != http.MethodHead {
			_, _ = w.Write(data)
		}
	case http.MethodPost, http.MethodPut:
		data, err := io.ReadAll(io.LimitReader(r.Body, maxRestoreBytes+1))
		if err != nil {
			s.error(w, r, http.StatusBadRequest, "Base.1.0.MalformedJSON", err.Error())
			return
		}
		if len(data) > maxRestoreBytes {
			s.error(w, r, http.StatusRequestEntityTooLarge, "Base.1.0.PropertyValueError",
				fmt.Sprintf("dump exceeds %d bytes", maxRestoreBytes))
			return
		}
		// Stage the whole dump before touching the live tree: decode it,
		// check every URI, and only then hand it to PutSubtree, which
		// canonicalizes every payload up front and installs the lot under
		// one write lock — a malformed dump is rejected with the store
		// unchanged, never half-applied.
		var dump map[odata.ID]json.RawMessage
		if err := json.Unmarshal(data, &dump); err != nil {
			s.error(w, r, http.StatusBadRequest, "Base.1.0.MalformedJSON", err.Error())
			return
		}
		if _, ok := dump[RootURI]; !ok {
			s.error(w, r, http.StatusBadRequest, "Base.1.0.PropertyValueError",
				"dump does not contain the service root; not a tree dump")
			return
		}
		resources := make(map[odata.ID]any, len(dump))
		for id, raw := range dump {
			if !id.Under(RootURI) {
				s.error(w, r, http.StatusBadRequest, "Base.1.0.PropertyValueError",
					"resource outside service root: "+string(id))
				return
			}
			resources[id] = raw
		}
		if err := s.store.PutSubtreeCtx(r.Context(), RootURI, resources); err != nil {
			// URIs and payload JSON were validated above, so a failure
			// here is a durability fault, not a bad request.
			s.error(w, r, http.StatusInternalServerError, "Base.1.0.InternalError", err.Error())
			return
		}
		s.log.Info("service: tree restored via admin endpoint",
			"resources", s.store.Len(), "request_id", obsv.RequestIDFrom(r.Context()))
		w.WriteHeader(http.StatusNoContent)
	default:
		s.error(w, r, http.StatusMethodNotAllowed, "Base.1.0.OperationNotAllowed", "GET, POST or PUT only")
	}
}

// handleTraces serves the tracer's ring buffer: a JSON dump of finished
// spans, newest first, filterable by minimum duration (min_ms), trace
// id (trace) and span count (limit).
func (s *Service) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		s.error(w, r, http.StatusMethodNotAllowed, "Base.1.0.OperationNotAllowed", "GET only")
		return
	}
	q := r.URL.Query()
	var minDur time.Duration
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			s.error(w, r, http.StatusBadRequest, "Base.1.0.PropertyValueError", "min_ms must be a non-negative number")
			return
		}
		minDur = time.Duration(ms * float64(time.Millisecond))
	}
	limit := 1000
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			s.error(w, r, http.StatusBadRequest, "Base.1.0.PropertyValueError", "limit must be a positive integer")
			return
		}
		limit = n
	}
	traceID := q.Get("trace")
	spans := s.tracer.Dump() // oldest first
	out := make([]obsv.SpanRecord, 0, min(len(spans), limit))
	for i := len(spans) - 1; i >= 0 && len(out) < limit; i-- {
		sp := spans[i]
		if sp.Duration < minDur || (traceID != "" && sp.TraceID != traceID) {
			continue
		}
		out = append(out, sp)
	}
	s.json(w, http.StatusOK, map[string]any{
		"Name":  "OFMF Trace Ring",
		"Count": len(out),
		"Spans": out,
	})
}

// CollectionsPayload declares the collections an agent's subtree
// contains, so the OFMF serves them as browsable (and POSTable)
// collection resources. Each value is [@odata.type, display name].
type CollectionsPayload map[odata.ID][2]string

// SubtreePayload is the wire format of an agent subtree push. Keep lists
// sub-prefixes whose existing resources must survive the refresh (the
// OFMF-stored Zones and Connections under the agent's fabric).
type SubtreePayload struct {
	Prefix    odata.ID                     `json:"Prefix"`
	Keep      []odata.ID                   `json:"Keep,omitempty"`
	Resources map[odata.ID]json.RawMessage `json:"Resources"`
}

// OpRequest is the wire format of a fabric operation forwarded to a
// remote agent's ops server.
type OpRequest struct {
	Op       string          `json:"Op"` // CreateZone, DeleteZone, CreateConnection, DeleteConnection, Patch, CreateResource, DeleteResource
	Target   odata.ID        `json:"Target"`
	URI      odata.ID        `json:"URI,omitempty"` // allocated resource URI for CreateResource
	Resource json.RawMessage `json:"Resource,omitempty"`
	Patch    map[string]any  `json:"Patch,omitempty"`
}

// OpResponse carries the (possibly mutated) resource back from the agent.
type OpResponse struct {
	Resource json.RawMessage `json:"Resource,omitempty"`
}

func (s *Service) handleSubtreePush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.error(w, r, http.StatusMethodNotAllowed, "Base.1.0.OperationNotAllowed", "POST only")
		return
	}
	var payload SubtreePayload
	if !s.decode(w, r, &payload) {
		return
	}
	if payload.Prefix.IsZero() || !payload.Prefix.Under(RootURI) {
		s.error(w, r, http.StatusBadRequest, "Base.1.0.PropertyValueError", "Prefix must lie under the service root")
		return
	}
	resources := make(map[odata.ID]any, len(payload.Resources))
	for id, raw := range payload.Resources {
		resources[id] = raw
	}
	if err := s.store.PutSubtreeCtx(r.Context(), payload.Prefix, resources, payload.Keep...); err != nil {
		s.error(w, r, http.StatusBadRequest, "Base.1.0.PropertyValueError", err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) handleCollectionsPush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.error(w, r, http.StatusMethodNotAllowed, "Base.1.0.OperationNotAllowed", "POST only")
		return
	}
	var payload CollectionsPayload
	if !s.decode(w, r, &payload) {
		return
	}
	for uri, meta := range payload {
		if !uri.Under(RootURI) {
			s.error(w, r, http.StatusBadRequest, "Base.1.0.PropertyValueError", "collection outside service root: "+string(uri))
			return
		}
		s.store.RegisterCollection(uri, meta[0], meta[1])
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) handleEventPush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.error(w, r, http.StatusMethodNotAllowed, "Base.1.0.OperationNotAllowed", "POST only")
		return
	}
	var rec redfish.EventRecord
	if !s.decode(w, r, &rec) {
		return
	}
	s.bus.PublishCtx(r.Context(), rec)
	w.WriteHeader(http.StatusNoContent)
}

// maxAgentResponseBytes bounds agent ops responses so a confused agent
// cannot exhaust OFMF memory.
const maxAgentResponseBytes = 8 << 20

// defaultAgentClient lazily builds the shared client for forwarded fabric
// operations: per-attempt timeouts and a per-agent circuit breaker, but
// no transport retries — fabric mutations (CreateConnection etc.) are not
// idempotent, so retry decisions stay with the composition layer.
var defaultAgentClient = sync.OnceValue(func() *http.Client {
	p := resilience.DefaultPolicy()
	p.MaxAttempts = 1
	return resilience.NewHTTPClient(p)
})

// remoteHandler forwards fabric operations to a remote agent's ops server.
type remoteHandler struct {
	fabric odata.ID
	url    string // agent callback base URL
	client *http.Client
	// ctx, when non-nil, is the request context the next forwarded call
	// runs under (see WithOpContext); it carries the caller's trace
	// identity onto the wire.
	ctx context.Context
}

// NewRemoteFabricHandler builds a FabricHandler that forwards operations
// to the agent ops server at callbackURL.
func NewRemoteFabricHandler(fabricID odata.ID, callbackURL string) FabricHandler {
	return &remoteHandler{fabric: fabricID, url: callbackURL}
}

func (h *remoteHandler) FabricID() odata.ID { return h.fabric }

// WithOpContext implements ctxBinder: it returns a copy of the handler
// whose forwarded calls run under ctx, so the OFMF->agent POST carries
// the request's trace context and cancellation.
func (h *remoteHandler) WithOpContext(ctx context.Context) FabricHandler {
	c := *h
	c.ctx = ctx
	return &c
}

func (h *remoteHandler) post(op OpRequest, out any) error {
	body, err := json.Marshal(op)
	if err != nil {
		return err
	}
	client := h.client
	if client == nil {
		client = defaultAgentClient()
	}
	ctx := h.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.url+"/agent/ops", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	obsv.InjectHeaders(ctx, req.Header)
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxAgentResponseBytes+1))
	if err != nil {
		return err
	}
	if len(data) > maxAgentResponseBytes {
		return fmt.Errorf("agent at %s: response exceeds %d bytes", h.url, maxAgentResponseBytes)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("agent at %s: %s: %s", h.url, resp.Status, bytes.TrimSpace(data))
	}
	if out != nil {
		var opResp OpResponse
		if err := json.Unmarshal(data, &opResp); err != nil {
			return err
		}
		if len(opResp.Resource) > 0 {
			return json.Unmarshal(opResp.Resource, out)
		}
	}
	return nil
}

func (h *remoteHandler) CreateZone(zone *redfish.Zone) error {
	raw, err := json.Marshal(zone)
	if err != nil {
		return err
	}
	return h.post(OpRequest{Op: "CreateZone", Target: zone.ODataID, Resource: raw}, zone)
}

func (h *remoteHandler) DeleteZone(id odata.ID) error {
	return h.post(OpRequest{Op: "DeleteZone", Target: id}, nil)
}

func (h *remoteHandler) CreateConnection(conn *redfish.Connection) error {
	raw, err := json.Marshal(conn)
	if err != nil {
		return err
	}
	return h.post(OpRequest{Op: "CreateConnection", Target: conn.ODataID, Resource: raw}, conn)
}

func (h *remoteHandler) DeleteConnection(id odata.ID) error {
	return h.post(OpRequest{Op: "DeleteConnection", Target: id}, nil)
}

func (h *remoteHandler) Patch(id odata.ID, patch map[string]any) error {
	return h.post(OpRequest{Op: "Patch", Target: id, Patch: patch}, nil)
}

// CreateResource forwards a provisioning request; the remote agent carves
// capacity and returns the resource to store.
func (h *remoteHandler) CreateResource(coll, uri odata.ID, payload json.RawMessage) (any, error) {
	var out json.RawMessage
	err := h.post(OpRequest{Op: "CreateResource", Target: coll, URI: uri, Resource: payload}, &out)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DeleteResource forwards a deprovisioning request.
func (h *remoteHandler) DeleteResource(id odata.ID) error {
	return h.post(OpRequest{Op: "DeleteResource", Target: id}, nil)
}

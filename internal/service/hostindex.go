package service

import (
	"strings"
	"sync"

	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/store"
)

// hostIndex maps agent callback URLs (AggregationSource.HostName) to
// source URIs, so registration dedup is one map lookup instead of a
// decode of every member of the AggregationSources collection — the
// scan that made mass fleet registration O(n²) and, worse, ran outside
// the allocation lock, letting two concurrent registrations of the same
// HostName both miss and mint duplicate sources.
//
// The index is fed by the store's change stream. Notifications for one
// URI can arrive out of order across goroutines (the store releases its
// shard lock before notifying), so every application is gated on
// Change.Seq: a change older than what the index already reflects for
// that URI is discarded, and deletions leave a tombstone so a late
// pre-delete upsert cannot resurrect the mapping.
type hostIndex struct {
	st *store.Store

	mu     sync.Mutex
	byHost map[string]odata.ID
	byURI  map[odata.ID]hostEntry
	// tombs records the deletion seq of evicted URIs; an upsert must
	// carry a newer seq to re-admit the URI (delete-then-recreate).
	tombs map[odata.ID]uint64
	// lastSeq is the highest change seq observed; tombstones are
	// garbage-collected once the stream has moved tombRetainSeqs past
	// them (see gcTombsLocked).
	lastSeq uint64
	// sweepAfter throttles GC sweeps: no sweep before lastSeq passes it.
	sweepAfter uint64
}

// Tombstone GC tuning. A tombstone only matters while an out-of-order
// pre-delete notification for its URI can still arrive; notifications
// trail their mutation by goroutine-scheduling delays, not by thousands
// of commits, so once the stream has advanced tombRetainSeqs past a
// deletion its tombstone is dead weight. Sweeps are amortized: only
// when the map has at least tombSweepLen entries, and at most once per
// tombSweepEvery observed seqs — delete/recreate churn therefore holds
// the map near tombRetainSeqs entries instead of growing it forever.
const (
	tombRetainSeqs = 1024
	tombSweepLen   = 256
	tombSweepEvery = 64
)

// gcTombsLocked drops tombstones the change stream has long passed.
// Caller holds x.mu.
func (x *hostIndex) gcTombsLocked() {
	if len(x.tombs) < tombSweepLen || x.lastSeq < x.sweepAfter {
		return
	}
	for id, seq := range x.tombs {
		if seq+tombRetainSeqs <= x.lastSeq {
			delete(x.tombs, id)
		}
	}
	x.sweepAfter = x.lastSeq + tombSweepEvery
}

// hostEntry is the index's view of one aggregation source.
type hostEntry struct {
	host string
	seq  uint64
}

func newHostIndex(st *store.Store) *hostIndex {
	return &hostIndex{
		st:     st,
		byHost: make(map[string]odata.ID),
		byURI:  make(map[odata.ID]hostEntry),
		tombs:  make(map[odata.ID]uint64),
	}
}

// lookup returns the source URI registered for the callback URL, if any.
func (x *hostIndex) lookup(host string) (odata.ID, bool) {
	x.mu.Lock()
	defer x.mu.Unlock()
	uri, ok := x.byHost[host]
	return uri, ok
}

// onChange keeps the index current from the store's change stream. It
// is registered before the service tree is bootstrapped, so it also
// observes WAL recovery replay — the index never needs a store scan.
func (x *hostIndex) onChange(c store.Change) {
	id := string(c.ID)
	if !strings.HasPrefix(id, aggSourcesPrefix) {
		return
	}
	if rest := id[len(aggSourcesPrefix):]; rest == "" || strings.Contains(rest, "/") {
		return
	}
	if c.Kind == store.Removed {
		x.mu.Lock()
		if c.Seq > x.lastSeq {
			x.lastSeq = c.Seq
		}
		if e, ok := x.byURI[c.ID]; ok && c.Seq > e.seq {
			if x.byHost[e.host] == c.ID {
				delete(x.byHost, e.host)
			}
			delete(x.byURI, c.ID)
			x.tombs[c.ID] = c.Seq
		} else if !ok && c.Seq > x.tombs[c.ID] {
			x.tombs[c.ID] = c.Seq
		}
		x.gcTombsLocked()
		x.mu.Unlock()
		return
	}
	// The read can observe a state newer than this change; that is safe
	// because the newer mutation's own (higher-seq) notification will
	// re-apply it, and the seq gate keeps this one from clobbering it.
	var src redfish.AggregationSource
	if err := x.st.GetAs(c.ID, &src); err != nil {
		return
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if c.Seq > x.lastSeq {
		x.lastSeq = c.Seq
	}
	if e, ok := x.byURI[c.ID]; ok {
		if c.Seq <= e.seq {
			return // stale reordered notification
		}
		if e.host != src.HostName && x.byHost[e.host] == c.ID {
			delete(x.byHost, e.host)
		}
	} else if c.Seq <= x.tombs[c.ID] {
		return // pre-delete notification arriving after the delete
	} else {
		delete(x.tombs, c.ID)
	}
	x.byURI[c.ID] = hostEntry{host: src.HostName, seq: c.Seq}
	if src.HostName != "" {
		x.byHost[src.HostName] = c.ID
	}
}

package service

import (
	"context"
	"fmt"
	"testing"

	"ofmf/internal/redfish"
)

// TestHostIndexTombstoneGC is the regression test for unbounded
// tombstone growth: every deleted aggregation source left a permanent
// entry in hostIndex.tombs, so fleets that register and deregister
// agents in steady state (spot instances, maintenance rotation) leaked
// one map entry per deletion forever. The GC drops tombstones once the
// change stream has moved tombRetainSeqs past them; sustained
// delete/recreate churn must hold the map near that window, not grow
// it linearly.
func TestHostIndexTombstoneGC(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	st := svc.Store()

	const churn = 5000
	for i := 0; i < churn; i++ {
		src, _, err := svc.RegisterAggregationSource(context.Background(),
			redfish.AggregationSource{HostName: fmt.Sprintf("http://agent-%d.example:9000", i)})
		if err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
		if err := st.Delete(src.ODataID); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}

	svc.hosts.mu.Lock()
	tombs := len(svc.hosts.tombs)
	entries := len(svc.hosts.byURI)
	svc.hosts.mu.Unlock()
	if entries != 0 {
		t.Fatalf("byURI should be empty after full churn, holds %d", entries)
	}
	// The retention window plus one sweep interval of slack; without GC
	// this would be the full churn count.
	const bound = tombRetainSeqs + tombSweepLen + tombSweepEvery
	if tombs > bound {
		t.Fatalf("tombstone map grew to %d entries after %d delete/recreate cycles (want <= %d)",
			tombs, churn, bound)
	}

	// The window must still do its job: a tombstone inside it keeps
	// blocking resurrection by late out-of-order upserts (covered by
	// the seq-gating tests); a fresh registration after churn works.
	src, created, err := svc.RegisterAggregationSource(context.Background(),
		redfish.AggregationSource{HostName: "http://agent-fresh.example:9000"})
	if err != nil || !created {
		t.Fatalf("fresh registration after churn: created=%v err=%v", created, err)
	}
	if uri, ok := svc.hosts.lookup("http://agent-fresh.example:9000"); !ok || uri != src.ODataID {
		t.Fatalf("host index lookup after churn: ok=%v uri=%s want %s", ok, uri, src.ODataID)
	}
}

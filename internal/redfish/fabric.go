package redfish

import "ofmf/internal/odata"

// FabricType enumerates Protocol values for fabrics, ports and endpoints.
const (
	ProtocolCXL        = "CXL"
	ProtocolNVMeOF     = "NVMeOverFabrics"
	ProtocolInfiniBand = "InfiniBand"
	ProtocolEthernet   = "Ethernet"
	ProtocolGenZ       = "GenZ"
	ProtocolPCIe       = "PCIe"
)

// Fabric is the top-level container for one managed interconnect: its
// switches, endpoints, zones and connections.
type Fabric struct {
	odata.Resource
	FabricType string       `json:"FabricType"`
	MaxZones   int          `json:"MaxZones,omitempty"`
	Status     odata.Status `json:"Status"`

	Switches    *odata.Ref `json:"Switches,omitempty"`
	Endpoints   *odata.Ref `json:"Endpoints,omitempty"`
	Zones       *odata.Ref `json:"Zones,omitempty"`
	Connections *odata.Ref `json:"Connections,omitempty"`
}

// Switch models a fabric switch with its port collection.
type Switch struct {
	odata.Resource
	SwitchType       string       `json:"SwitchType"`
	Manufacturer     string       `json:"Manufacturer,omitempty"`
	Model            string       `json:"Model,omitempty"`
	TotalSwitchWidth int          `json:"TotalSwitchWidth,omitempty"`
	Status           odata.Status `json:"Status"`
	Ports            *odata.Ref   `json:"Ports,omitempty"`
	Links            SwitchLinks  `json:"Links"`
}

// SwitchLinks connects a switch to its chassis.
type SwitchLinks struct {
	Chassis *odata.Ref `json:"Chassis,omitempty"`
}

// Port models one switch or device port.
type Port struct {
	odata.Resource
	PortID           string       `json:"PortId,omitempty"`
	PortProtocol     string       `json:"PortProtocol,omitempty"`
	PortType         string       `json:"PortType,omitempty"` // UpstreamPort, DownstreamPort, InterswitchPort
	CurrentSpeedGbps float64      `json:"CurrentSpeedGbps,omitempty"`
	MaxSpeedGbps     float64      `json:"MaxSpeedGbps,omitempty"`
	Width            int          `json:"Width,omitempty"`
	LinkState        string       `json:"LinkState,omitempty"`  // Enabled, Disabled
	LinkStatus       string       `json:"LinkStatus,omitempty"` // LinkUp, LinkDown, NoLink
	Status           odata.Status `json:"Status"`
	Links            PortLinks    `json:"Links"`
}

// PortLinks connects a port to its peers and endpoints.
type PortLinks struct {
	AssociatedEndpoints []odata.Ref `json:"AssociatedEndpoints,omitempty"`
	ConnectedPorts      []odata.Ref `json:"ConnectedPorts,omitempty"`
	ConnectedSwitches   []odata.Ref `json:"ConnectedSwitches,omitempty"`
}

// Endpoint models a fabric endpoint: the attachment point of a host,
// memory device, drive, or processor to the fabric.
type Endpoint struct {
	odata.Resource
	EndpointProtocol  string            `json:"EndpointProtocol"`
	ConnectedEntities []ConnectedEntity `json:"ConnectedEntities,omitempty"`
	Identifiers       []Identifier      `json:"Identifiers,omitempty"`
	Status            odata.Status      `json:"Status"`
	Links             EndpointLinks     `json:"Links"`
}

// ConnectedEntity names the resource behind an endpoint.
type ConnectedEntity struct {
	EntityType string     `json:"EntityType"` // Processor, Volume, Memory, Drive, ComputerSystem
	EntityRole string     `json:"EntityRole"` // Initiator, Target, Both
	EntityLink *odata.Ref `json:"EntityLink,omitempty"`
}

// Identifier is a durable name (NQN, GUID, UUID) for an endpoint.
type Identifier struct {
	DurableName       string `json:"DurableName"`
	DurableNameFormat string `json:"DurableNameFormat"` // NQN, UUID, EUI, iQN
}

// EndpointLinks connects an endpoint to ports and zones.
type EndpointLinks struct {
	Ports          []odata.Ref `json:"Ports,omitempty"`
	ConnectedPorts []odata.Ref `json:"ConnectedPorts,omitempty"`
	Zones          []odata.Ref `json:"Zones,omitempty"`
}

// ZoneType enumerates Zone.ZoneType values.
const (
	ZoneTypeDefault              = "Default"
	ZoneTypeZoneOfEndpoints      = "ZoneOfEndpoints"
	ZoneTypeZoneOfZones          = "ZoneOfZones"
	ZoneTypeZoneOfResourceBlocks = "ZoneOfResourceBlocks"
)

// Zone groups endpoints that are permitted to communicate.
type Zone struct {
	odata.Resource
	ZoneType string       `json:"ZoneType"`
	Status   odata.Status `json:"Status"`
	Links    ZoneLinks    `json:"Links"`
}

// ZoneLinks lists a zone's member endpoints and resource blocks.
type ZoneLinks struct {
	Endpoints        []odata.Ref `json:"Endpoints,omitempty"`
	ResourceBlocks   []odata.Ref `json:"ResourceBlocks,omitempty"`
	ContainedByZones []odata.Ref `json:"ContainedByZones,omitempty"`
}

// Connection grants initiator endpoints access to target resources; it is
// the resource the OFMF manipulates to attach memory or volumes to hosts.
type Connection struct {
	odata.Resource
	ConnectionType  string            `json:"ConnectionType"` // Storage, Memory
	Status          odata.Status      `json:"Status"`
	MemoryChunkInfo []MemoryChunkInfo `json:"MemoryChunkInfo,omitempty"`
	VolumeInfo      []VolumeInfo      `json:"VolumeInfo,omitempty"`
	Links           ConnectionLinks   `json:"Links"`
}

// MemoryChunkInfo grants access to a memory chunk.
type MemoryChunkInfo struct {
	AccessCapabilities []string   `json:"AccessCapabilities,omitempty"` // Read, Write
	MemoryChunk        *odata.Ref `json:"MemoryChunk,omitempty"`
}

// VolumeInfo grants access to a storage volume.
type VolumeInfo struct {
	AccessCapabilities []string   `json:"AccessCapabilities,omitempty"`
	Volume             *odata.Ref `json:"Volume,omitempty"`
}

// ConnectionLinks lists the initiator and target endpoints of a connection.
type ConnectionLinks struct {
	InitiatorEndpoints []odata.Ref `json:"InitiatorEndpoints,omitempty"`
	TargetEndpoints    []odata.Ref `json:"TargetEndpoints,omitempty"`
}

package redfish

import "ofmf/internal/odata"

// Storage models a storage subsystem (Swordfish): an NVMe-oF target's
// storage service with its pools, volumes and drives.
type Storage struct {
	odata.Resource
	Status       odata.Status `json:"Status"`
	StoragePools *odata.Ref   `json:"StoragePools,omitempty"`
	Volumes      *odata.Ref   `json:"Volumes,omitempty"`
	Drives       []odata.Ref  `json:"Drives,omitempty"`
	Links        StorageLinks `json:"Links"`
}

// StorageLinks connects storage to the enclosing chassis.
type StorageLinks struct {
	Enclosures []odata.Ref `json:"Enclosures,omitempty"`
}

// StoragePool is a Swordfish capacity pool volumes are carved from.
type StoragePool struct {
	odata.Resource
	Status             odata.Status `json:"Status"`
	Capacity           Capacity     `json:"Capacity"`
	SupportedRAIDTypes []string     `json:"SupportedRAIDTypes,omitempty"`
	AllocatedVolumes   *odata.Ref   `json:"AllocatedVolumes,omitempty"`
}

// Capacity is the Swordfish capacity block.
type Capacity struct {
	Data CapacityInfo `json:"Data"`
}

// CapacityInfo reports allocated vs consumed bytes.
type CapacityInfo struct {
	AllocatedBytes  int64 `json:"AllocatedBytes"`
	ConsumedBytes   int64 `json:"ConsumedBytes,omitempty"`
	GuaranteedBytes int64 `json:"GuaranteedBytes,omitempty"`
}

// Volume is a provisioned logical volume (an NVMe namespace when exported
// over NVMe-oF).
type Volume struct {
	odata.Resource
	Status        odata.Status `json:"Status"`
	CapacityBytes int64        `json:"CapacityBytes"`
	RAIDType      string       `json:"RAIDType,omitempty"`
	Identifiers   []Identifier `json:"Identifiers,omitempty"`
	Links         VolumeLinks  `json:"Links"`
}

// VolumeLinks connects a volume to drives and client endpoints.
type VolumeLinks struct {
	Drives          []odata.Ref `json:"Drives,omitempty"`
	ClientEndpoints []odata.Ref `json:"ClientEndpoints,omitempty"`
}

// Drive is a physical drive backing pools.
type Drive struct {
	odata.Resource
	Status        odata.Status `json:"Status"`
	CapacityBytes int64        `json:"CapacityBytes"`
	MediaType     string       `json:"MediaType,omitempty"` // SSD, HDD
	Protocol      string       `json:"Protocol,omitempty"`
}

package redfish

import "ofmf/internal/odata"

// SystemType enumerates ComputerSystem.SystemType values used by the OFMF.
const (
	SystemTypePhysical = "Physical"
	SystemTypeComposed = "Composed"
	SystemTypeVirtual  = "Virtual"
)

// ComputerSystem models a compute node or a composed system assembled by
// the composition service.
type ComputerSystem struct {
	odata.Resource
	SystemType   string       `json:"SystemType"`
	Status       odata.Status `json:"Status"`
	PowerState   string       `json:"PowerState,omitempty"`
	Manufacturer string       `json:"Manufacturer,omitempty"`
	Model        string       `json:"Model,omitempty"`
	SerialNumber string       `json:"SerialNumber,omitempty"`
	HostName     string       `json:"HostName,omitempty"`

	ProcessorSummary *ProcessorSummary `json:"ProcessorSummary,omitempty"`
	MemorySummary    *MemorySummary    `json:"MemorySummary,omitempty"`

	Processors *odata.Ref `json:"Processors,omitempty"`
	Memory     *odata.Ref `json:"Memory,omitempty"`
	Storage    *odata.Ref `json:"Storage,omitempty"`

	Links SystemLinks `json:"Links"`
}

// ProcessorSummary aggregates the system's processor inventory.
type ProcessorSummary struct {
	Count      int    `json:"Count"`
	CoreCount  int    `json:"CoreCount,omitempty"`
	Model      string `json:"Model,omitempty"`
	TotalCores int    `json:"TotalCores,omitempty"`
}

// MemorySummary aggregates the system's memory inventory.
type MemorySummary struct {
	TotalSystemMemoryGiB float64 `json:"TotalSystemMemoryGiB"`
}

// SystemLinks connects a system to its chassis, endpoints and the resource
// blocks it was composed from.
type SystemLinks struct {
	Chassis        []odata.Ref `json:"Chassis,omitempty"`
	Endpoints      []odata.Ref `json:"Endpoints,omitempty"`
	ResourceBlocks []odata.Ref `json:"ResourceBlocks,omitempty"`
}

// Processor models a CPU, GPU or accelerator device.
type Processor struct {
	odata.Resource
	ProcessorType string       `json:"ProcessorType"` // CPU, GPU, Accelerator, DSP
	Status        odata.Status `json:"Status"`
	Manufacturer  string       `json:"Manufacturer,omitempty"`
	Model         string       `json:"Model,omitempty"`
	TotalCores    int          `json:"TotalCores,omitempty"`
	TotalThreads  int          `json:"TotalThreads,omitempty"`
	MaxSpeedMHz   int          `json:"MaxSpeedMHz,omitempty"`
	Links         ProcLinks    `json:"Links"`
}

// ProcLinks connects a processor to fabric endpoints.
type ProcLinks struct {
	Endpoints []odata.Ref `json:"Endpoints,omitempty"`
}

// Memory models a memory device: local DIMMs or fabric-attached memory
// presented by a CXL appliance.
type Memory struct {
	odata.Resource
	MemoryType       string       `json:"MemoryType,omitempty"`       // DRAM, NVDIMM_P, ...
	MemoryDeviceType string       `json:"MemoryDeviceType,omitempty"` // DDR4, HBM2, CXL
	CapacityMiB      int64        `json:"CapacityMiB"`
	AllocatedMiB     int64        `json:"AllocatedMiB,omitempty"`
	Status           odata.Status `json:"Status"`
	Links            MemLinks     `json:"Links"`
}

// MemLinks connects a memory device to fabric endpoints and chunks.
type MemLinks struct {
	Endpoints    []odata.Ref `json:"Endpoints,omitempty"`
	MemoryChunks []odata.Ref `json:"MemoryChunks,omitempty"`
}

// MemoryDomain groups memory devices that can be interleaved or chunked
// together.
type MemoryDomain struct {
	odata.Resource
	AllowsMemoryChunkCreation bool         `json:"AllowsMemoryChunkCreation"`
	MemoryChunks              *odata.Ref   `json:"MemoryChunks,omitempty"`
	InterleavableMemorySets   []MemorySet  `json:"InterleavableMemorySets,omitempty"`
	Status                    odata.Status `json:"Status"`
}

// MemorySet lists memory devices that may be interleaved together.
type MemorySet struct {
	MemorySet []odata.Ref `json:"MemorySet"`
}

// MemoryChunks is a carved region of a memory domain handed to a composed
// system.
type MemoryChunks struct {
	odata.Resource
	MemoryChunkSizeMiB int64        `json:"MemoryChunkSizeMiB"`
	AddressRangeType   string       `json:"AddressRangeType,omitempty"` // Volatile, PMEM
	IsMirrorEnabled    bool         `json:"IsMirrorEnabled,omitempty"`
	Status             odata.Status `json:"Status"`
	Links              ChunkLinks   `json:"Links"`
}

// ChunkLinks connects a memory chunk to its endpoints and source devices.
type ChunkLinks struct {
	Endpoints    []odata.Ref `json:"Endpoints,omitempty"`
	MemoryRegion []odata.Ref `json:"MemoryRegions,omitempty"`
}

// Chassis models an enclosure: a compute sled, a memory appliance shelf, a
// JBOF, or a switch enclosure.
type Chassis struct {
	odata.Resource
	ChassisType  string       `json:"ChassisType"` // Enclosure, Sled, Shelf, RackMount
	Manufacturer string       `json:"Manufacturer,omitempty"`
	Model        string       `json:"Model,omitempty"`
	Status       odata.Status `json:"Status"`
	Links        ChassisLinks `json:"Links"`
}

// ChassisLinks connects a chassis to the systems and switches it contains.
type ChassisLinks struct {
	ComputerSystems []odata.Ref `json:"ComputerSystems,omitempty"`
	Switches        []odata.Ref `json:"Switches,omitempty"`
	Drives          []odata.Ref `json:"Drives,omitempty"`
}

package redfish

import "ofmf/internal/odata"

// CompositionState enumerates ResourceBlock.CompositionStatus states.
const (
	CompositionUnused               = "Unused"
	CompositionComposed             = "Composed"
	CompositionComposedAndAvailable = "ComposedAndAvailable"
	CompositionFailed               = "Failed"
	CompositionUnavailable          = "Unavailable"
)

// ResourceBlockType enumerates the kinds of resource a block contributes.
const (
	BlockCompute        = "Compute"
	BlockProcessor      = "Processor"
	BlockMemory         = "Memory"
	BlockStorage        = "Storage"
	BlockNetwork        = "Network"
	BlockComputerSystem = "ComputerSystem"
	BlockExpansion      = "Expansion"
)

// CompositionService is the root of the composition surface: the free pool
// of resource blocks and the resource zones describing what can be
// composed together.
type CompositionService struct {
	odata.Resource
	ServiceEnabled        bool         `json:"ServiceEnabled"`
	AllowOverprovisioning bool         `json:"AllowOverprovisioning,omitempty"`
	Status                odata.Status `json:"Status"`
	ResourceBlocks        *odata.Ref   `json:"ResourceBlocks,omitempty"`
	ResourceZones         *odata.Ref   `json:"ResourceZones,omitempty"`
}

// ResourceBlock is the unit of composition: a bundle of processors, memory
// devices, drives or network endpoints that can be bound into a composed
// system.
type ResourceBlock struct {
	odata.Resource
	ResourceBlockType []string          `json:"ResourceBlockType"`
	CompositionStatus CompositionStatus `json:"CompositionStatus"`
	Status            odata.Status      `json:"Status"`

	Processors []odata.Ref `json:"Processors,omitempty"`
	Memory     []odata.Ref `json:"Memory,omitempty"`
	Storage    []odata.Ref `json:"Storage,omitempty"`
	Drives     []odata.Ref `json:"Drives,omitempty"`

	Links ResourceBlockLinks `json:"Links"`
}

// CompositionStatus reports whether a block is free or bound.
type CompositionStatus struct {
	CompositionState string `json:"CompositionState"`
	Reserved         bool   `json:"Reserved,omitempty"`
	SharingCapable   bool   `json:"SharingCapable,omitempty"`
	MaxCompositions  int    `json:"MaxCompositions,omitempty"`
}

// ResourceBlockLinks connects a block to the systems composed from it, the
// zones it belongs to, and the chassis that houses it.
type ResourceBlockLinks struct {
	ComputerSystems []odata.Ref `json:"ComputerSystems,omitempty"`
	Chassis         []odata.Ref `json:"Chassis,omitempty"`
	Zones           []odata.Ref `json:"Zones,omitempty"`
}

package redfish

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"ofmf/internal/odata"
)

func TestRootMarshalShape(t *testing.T) {
	root := Root{
		Resource:       odata.NewResource("/redfish/v1", TypeServiceRoot, "OFMF Service Root"),
		RedfishVersion: "1.15.0",
		Systems:        Ref("/redfish/v1/Systems"),
		Fabrics:        Ref("/redfish/v1/Fabrics"),
		Links:          RootLinks{Sessions: odata.NewRef("/redfish/v1/SessionService/Sessions")},
	}
	b, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["RedfishVersion"] != "1.15.0" {
		t.Errorf("RedfishVersion = %v", m["RedfishVersion"])
	}
	sys, ok := m["Systems"].(map[string]any)
	if !ok || sys["@odata.id"] != "/redfish/v1/Systems" {
		t.Errorf("Systems link wrong: %v", m["Systems"])
	}
	links, ok := m["Links"].(map[string]any)
	if !ok {
		t.Fatalf("missing Links")
	}
	if _, ok := links["Sessions"]; !ok {
		t.Error("missing Links.Sessions")
	}
}

func TestOptionalLinksOmitted(t *testing.T) {
	sys := ComputerSystem{
		Resource:   odata.NewResource("/redfish/v1/Systems/S1", TypeComputerSystem, "S1"),
		SystemType: SystemTypePhysical,
		Status:     odata.StatusOK(),
	}
	b, err := json.Marshal(sys)
	if err != nil {
		t.Fatal(err)
	}
	for _, absent := range []string{"Processors", "MemorySummary", "HostName"} {
		if strings.Contains(string(b), `"`+absent+`"`) {
			t.Errorf("empty optional member %s serialized: %s", absent, b)
		}
	}
}

func TestEndpointRoundTrip(t *testing.T) {
	ep := Endpoint{
		Resource:         odata.NewResource("/redfish/v1/Fabrics/CXL/Endpoints/E1", TypeEndpoint, "E1"),
		EndpointProtocol: ProtocolCXL,
		ConnectedEntities: []ConnectedEntity{{
			EntityType: "Memory",
			EntityRole: "Target",
			EntityLink: Ref("/redfish/v1/Chassis/MemApp/Memory/M0"),
		}},
		Identifiers: []Identifier{{DurableName: "urn:uuid:abc", DurableNameFormat: "UUID"}},
		Status:      odata.StatusOK(),
	}
	b, err := json.Marshal(ep)
	if err != nil {
		t.Fatal(err)
	}
	var back Endpoint
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.EndpointProtocol != ProtocolCXL {
		t.Errorf("protocol = %q", back.EndpointProtocol)
	}
	if len(back.ConnectedEntities) != 1 || back.ConnectedEntities[0].EntityType != "Memory" {
		t.Errorf("connected entities = %+v", back.ConnectedEntities)
	}
	if back.ConnectedEntities[0].EntityLink.ODataID != "/redfish/v1/Chassis/MemApp/Memory/M0" {
		t.Errorf("entity link = %v", back.ConnectedEntities[0].EntityLink)
	}
}

func TestConnectionMemoryChunkInfo(t *testing.T) {
	conn := Connection{
		Resource:       odata.NewResource("/redfish/v1/Fabrics/CXL/Connections/C1", TypeConnection, "C1"),
		ConnectionType: "Memory",
		Status:         odata.StatusOK(),
		MemoryChunkInfo: []MemoryChunkInfo{{
			AccessCapabilities: []string{"Read", "Write"},
			MemoryChunk:        Ref("/redfish/v1/Chassis/MemApp/MemoryDomains/D0/MemoryChunks/K1"),
		}},
		Links: ConnectionLinks{
			InitiatorEndpoints: []odata.Ref{odata.NewRef("/redfish/v1/Fabrics/CXL/Endpoints/Host1")},
			TargetEndpoints:    []odata.Ref{odata.NewRef("/redfish/v1/Fabrics/CXL/Endpoints/Mem1")},
		},
	}
	b, err := json.Marshal(conn)
	if err != nil {
		t.Fatal(err)
	}
	var back Connection
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Links.InitiatorEndpoints) != 1 || len(back.Links.TargetEndpoints) != 1 {
		t.Errorf("links = %+v", back.Links)
	}
	if back.MemoryChunkInfo[0].MemoryChunk == nil {
		t.Error("memory chunk ref lost")
	}
}

func TestResourceBlockStates(t *testing.T) {
	rb := ResourceBlock{
		Resource:          odata.NewResource("/redfish/v1/CompositionService/ResourceBlocks/B1", TypeResourceBlock, "B1"),
		ResourceBlockType: []string{BlockMemory},
		CompositionStatus: CompositionStatus{CompositionState: CompositionUnused, SharingCapable: true},
		Status:            odata.StatusOK(),
	}
	b, err := json.Marshal(rb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"CompositionState":"Unused"`) {
		t.Errorf("composition state missing: %s", b)
	}
}

func TestEventRecordTimestamp(t *testing.T) {
	ts := Timestamp(time.Date(2023, 5, 15, 12, 0, 0, 0, time.UTC))
	if ts != "2023-05-15T12:00:00Z" {
		t.Errorf("Timestamp = %q", ts)
	}
}

func TestTaskStates(t *testing.T) {
	task := Task{
		Resource:  odata.NewResource("/redfish/v1/TaskService/Tasks/T1", TypeTask, "T1"),
		TaskState: TaskRunning,
	}
	b, err := json.Marshal(task)
	if err != nil {
		t.Fatal(err)
	}
	var back Task
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.TaskState != TaskRunning {
		t.Errorf("TaskState = %q", back.TaskState)
	}
	if back.PercentComplete != 0 {
		t.Errorf("PercentComplete = %d", back.PercentComplete)
	}
}

func TestAggregationSourceDescriptor(t *testing.T) {
	src := AggregationSource{
		Resource: odata.NewResource("/redfish/v1/AggregationService/AggregationSources/A1", TypeAggregationSource, "CXL Agent"),
		HostName: "http://127.0.0.1:9001",
		Status:   odata.StatusOK(),
		Oem:      AggSourceOem{OFMF: &AgentDescriptor{Technology: ProtocolCXL, Version: "0.1"}},
	}
	b, err := json.Marshal(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"Technology":"CXL"`) {
		t.Errorf("agent descriptor missing: %s", b)
	}
}

package redfish

import (
	"time"

	"ofmf/internal/odata"
)

// EventType enumerates the Redfish event types the OFMF emits.
const (
	EventResourceAdded   = "ResourceAdded"
	EventResourceRemoved = "ResourceRemoved"
	EventResourceUpdated = "ResourceUpdated"
	EventStatusChange    = "StatusChange"
	EventAlert           = "Alert"
	EventMetricReport    = "MetricReport"
)

// EventService describes the service's event capabilities and holds the
// subscription collection.
type EventService struct {
	odata.Resource
	ServiceEnabled               bool         `json:"ServiceEnabled"`
	DeliveryRetryAttempts        int          `json:"DeliveryRetryAttempts"`
	DeliveryRetryIntervalSeconds int          `json:"DeliveryRetryIntervalSeconds"`
	EventTypesForSubscription    []string     `json:"EventTypesForSubscription"`
	ServerSentEventURI           string       `json:"ServerSentEventUri,omitempty"`
	Status                       odata.Status `json:"Status"`
	Subscriptions                *odata.Ref   `json:"Subscriptions,omitempty"`
}

// EventDestination is one subscription: where to deliver, and which events.
type EventDestination struct {
	odata.Resource
	Destination          string       `json:"Destination"`
	Protocol             string       `json:"Protocol"` // Redfish
	Context              string       `json:"Context,omitempty"`
	EventTypes           []string     `json:"EventTypes,omitempty"`
	OriginResources      []odata.Ref  `json:"OriginResources,omitempty"`
	SubordinateResources bool         `json:"SubordinateResources,omitempty"`
	Status               odata.Status `json:"Status"`
}

// Event is the payload delivered to subscribers.
type Event struct {
	ODataType string        `json:"@odata.type"`
	ID        string        `json:"Id"`
	Name      string        `json:"Name"`
	Context   string        `json:"Context,omitempty"`
	Events    []EventRecord `json:"Events"`
}

// EventRecord is one entry within an Event payload.
type EventRecord struct {
	EventType         string     `json:"EventType"`
	EventID           string     `json:"EventId"`
	EventTimestamp    string     `json:"EventTimestamp"`
	Severity          string     `json:"Severity,omitempty"`
	Message           string     `json:"Message,omitempty"`
	MessageID         string     `json:"MessageId,omitempty"`
	MessageArgs       []string   `json:"MessageArgs,omitempty"`
	OriginOfCondition *odata.Ref `json:"OriginOfCondition,omitempty"`
}

// TaskState enumerates Task.TaskState values.
const (
	TaskNew       = "New"
	TaskRunning   = "Running"
	TaskCompleted = "Completed"
	TaskException = "Exception"
	TaskCancelled = "Cancelled"
)

// TaskService holds the task collection.
type TaskService struct {
	odata.Resource
	ServiceEnabled                  bool         `json:"ServiceEnabled"`
	CompletedTaskOverWritePolicy    string       `json:"CompletedTaskOverWritePolicy,omitempty"`
	LifeCycleEventOnTaskStateChange bool         `json:"LifeCycleEventOnTaskStateChange"`
	Status                          odata.Status `json:"Status"`
	Tasks                           *odata.Ref   `json:"Tasks,omitempty"`
}

// Task is one asynchronous operation with a task monitor.
type Task struct {
	odata.Resource
	TaskState       string          `json:"TaskState"`
	TaskStatus      string          `json:"TaskStatus,omitempty"`
	PercentComplete int             `json:"PercentComplete"`
	StartTime       string          `json:"StartTime,omitempty"`
	EndTime         string          `json:"EndTime,omitempty"`
	TaskMonitor     string          `json:"TaskMonitor,omitempty"`
	Messages        []odata.Message `json:"Messages,omitempty"`
}

// SessionService holds authentication sessions.
type SessionService struct {
	odata.Resource
	ServiceEnabled bool         `json:"ServiceEnabled"`
	SessionTimeout int          `json:"SessionTimeout"` // seconds
	Status         odata.Status `json:"Status"`
	Sessions       *odata.Ref   `json:"Sessions,omitempty"`
}

// Session is one authenticated session.
type Session struct {
	odata.Resource
	UserName    string `json:"UserName"`
	CreatedTime string `json:"CreatedTime,omitempty"`
}

// TelemetryService holds metric definitions and reports.
type TelemetryService struct {
	odata.Resource
	Status                  odata.Status `json:"Status"`
	MinCollectionInterval   string       `json:"MinCollectionInterval,omitempty"`
	MetricDefinitions       *odata.Ref   `json:"MetricDefinitions,omitempty"`
	MetricReportDefinitions *odata.Ref   `json:"MetricReportDefinitions,omitempty"`
	MetricReports           *odata.Ref   `json:"MetricReports,omitempty"`
}

// MetricDefinition describes one metric's semantics.
type MetricDefinition struct {
	odata.Resource
	MetricType       string   `json:"MetricType,omitempty"`     // Numeric, Gauge, Counter
	MetricDataType   string   `json:"MetricDataType,omitempty"` // Decimal, Integer
	Units            string   `json:"Units,omitempty"`
	Accuracy         float64  `json:"Accuracy,omitempty"`
	SensingInterval  string   `json:"SensingInterval,omitempty"`
	MetricProperties []string `json:"MetricProperties,omitempty"`
}

// MetricReportDefinition schedules report generation.
type MetricReportDefinition struct {
	odata.Resource
	MetricReportDefinitionType string       `json:"MetricReportDefinitionType"` // Periodic, OnChange, OnRequest
	Schedule                   *Schedule    `json:"Schedule,omitempty"`
	ReportActions              []string     `json:"ReportActions,omitempty"`
	ReportUpdates              string       `json:"ReportUpdates,omitempty"`
	Status                     odata.Status `json:"Status"`
	Metrics                    []MetricSpec `json:"Metrics,omitempty"`
}

// Schedule gives the recurrence interval of a periodic report.
type Schedule struct {
	RecurrenceInterval string `json:"RecurrenceInterval"` // ISO8601 duration
}

// MetricSpec names one metric captured by a report definition.
type MetricSpec struct {
	MetricID         string   `json:"MetricId"`
	MetricProperties []string `json:"MetricProperties,omitempty"`
}

// MetricReport carries collected metric values.
type MetricReport struct {
	odata.Resource
	MetricReportDefinition *odata.Ref    `json:"MetricReportDefinition,omitempty"`
	Timestamp              string        `json:"Timestamp,omitempty"`
	MetricValues           []MetricValue `json:"MetricValues"`
}

// MetricValue is one sampled value.
type MetricValue struct {
	MetricID       string `json:"MetricId"`
	MetricValue    string `json:"MetricValue"`
	Timestamp      string `json:"Timestamp"`
	MetricProperty string `json:"MetricProperty,omitempty"`
}

// AggregationService is the OFMF's agent-registration surface: each fabric
// Agent registers as an AggregationSource whose resources are aggregated
// into the single Redfish tree.
type AggregationService struct {
	odata.Resource
	ServiceEnabled     bool         `json:"ServiceEnabled"`
	Status             odata.Status `json:"Status"`
	AggregationSources *odata.Ref   `json:"AggregationSources,omitempty"`
}

// AggregationSource records one registered Agent.
type AggregationSource struct {
	odata.Resource
	HostName string         `json:"HostName"` // agent callback URL
	UserName string         `json:"UserName,omitempty"`
	SNMP     map[string]any `json:"SNMP,omitempty"`
	Status   odata.Status   `json:"Status"`
	Links    AggSourceLinks `json:"Links"`
	Oem      AggSourceOem   `json:"Oem,omitempty"`
}

// AggSourceLinks lists resources owned by this source.
type AggSourceLinks struct {
	ConnectionMethod  *odata.Ref  `json:"ConnectionMethod,omitempty"`
	ResourcesAccessed []odata.Ref `json:"ResourcesAccessed,omitempty"`
}

// AggSourceOem carries the OFMF-specific agent descriptor.
type AggSourceOem struct {
	OFMF *AgentDescriptor `json:"OFMF,omitempty"`
}

// AgentDescriptor describes an Agent's technology and heartbeat state.
type AgentDescriptor struct {
	Technology    string `json:"Technology"` // CXL, NVMeOverFabrics, InfiniBand, GPU
	Version       string `json:"Version,omitempty"`
	LastHeartbeat string `json:"LastHeartbeat,omitempty"`
}

// Timestamp formats t in the RFC3339 form Redfish uses.
func Timestamp(t time.Time) string { return t.UTC().Format(time.RFC3339) }

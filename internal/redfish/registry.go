package redfish

import "ofmf/internal/odata"

// MessageRegistry is a Redfish message registry: the catalogue of
// structured messages a service emits, keyed by message id.
type MessageRegistry struct {
	odata.Resource
	Language        string                     `json:"Language"`
	RegistryPrefix  string                     `json:"RegistryPrefix"`
	RegistryVersion string                     `json:"RegistryVersion"`
	OwningEntity    string                     `json:"OwningEntity"`
	Messages        map[string]RegistryMessage `json:"Messages"`
}

// RegistryMessage documents one message.
type RegistryMessage struct {
	Description  string   `json:"Description"`
	Message      string   `json:"Message"`
	Severity     string   `json:"Severity"`
	NumberOfArgs int      `json:"NumberOfArgs"`
	ParamTypes   []string `json:"ParamTypes,omitempty"`
	Resolution   string   `json:"Resolution"`
}

// TypeMessageRegistry is the registry's @odata.type.
const TypeMessageRegistry = "#MessageRegistry.v1_6_0.MessageRegistry"

// OFMFRegistry returns the OFMF.1.0 message registry: every structured
// message this implementation emits through the event service.
func OFMFRegistry(uri odata.ID) MessageRegistry {
	return MessageRegistry{
		Resource:        odata.NewResource(uri, TypeMessageRegistry, "OFMF Message Registry"),
		Language:        "en",
		RegistryPrefix:  "OFMF",
		RegistryVersion: "1.0",
		OwningEntity:    "OpenFabrics Alliance",
		Messages: map[string]RegistryMessage{
			"SystemComposed": {
				Description:  "A composed system was assembled from pooled resources.",
				Message:      "Composed system %1 on node %2.",
				Severity:     "OK",
				NumberOfArgs: 2,
				ParamTypes:   []string{"string", "string"},
				Resolution:   "None.",
			},
			"SystemDecomposed": {
				Description:  "A composed system was released and its resources returned to the pools.",
				Message:      "Decomposed system %1.",
				Severity:     "OK",
				NumberOfArgs: 1,
				ParamTypes:   []string{"string"},
				Resolution:   "None.",
			},
			"MemoryHotAdded": {
				Description:  "Fabric-attached memory was hot-added to a live composition.",
				Message:      "Hot-added %1 MiB to composition %2.",
				Severity:     "OK",
				NumberOfArgs: 2,
				ParamTypes:   []string{"number", "string"},
				Resolution:   "None.",
			},
			"OutOfMemory": {
				Description:  "A running composition is approaching memory exhaustion.",
				Message:      "Composition %1 is approaching memory exhaustion.",
				Severity:     "Critical",
				NumberOfArgs: 1,
				ParamTypes:   []string{"string"},
				Resolution:   "The Composability Manager hot-adds fabric memory when the mitigation rule is enabled.",
			},
			"FabricLinkDown": {
				Description:  "A fabric link failed; affected flows are re-routed where paths exist.",
				Message:      "Fabric link %1 is down.",
				Severity:     "Critical",
				NumberOfArgs: 1,
				ParamTypes:   []string{"string"},
				Resolution:   "Repair the link, then re-enable the port via PATCH LinkState=Enabled.",
			},
			"FabricLinkUp": {
				Description:  "A fabric link returned to service.",
				Message:      "Fabric link %1 is up.",
				Severity:     "OK",
				NumberOfArgs: 1,
				ParamTypes:   []string{"string"},
				Resolution:   "None.",
			},
			"AgentRegistered": {
				Description:  "A technology-specific agent registered with the aggregation service.",
				Message:      "Agent %1 registered for %2.",
				Severity:     "OK",
				NumberOfArgs: 2,
				ParamTypes:   []string{"string", "string"},
				Resolution:   "None.",
			},
		},
	}
}

// Package redfish defines the DMTF Redfish and SNIA Swordfish schema types
// served by the OFMF. The subset implemented here covers the resources the
// OpenFabrics Management Framework exposes: the service root, computer
// systems, chassis, fabrics (switches, ports, endpoints, zones,
// connections), storage (pools, volumes, drives), memory (devices, chunks,
// domains), processors, the event/task/session/telemetry services, the
// aggregation service used for agent registration, and the composition
// service (resource blocks and zones).
//
// Each type embeds odata.Resource so serialized payloads carry the
// mandatory @odata annotations. Version strings follow the schema bundles
// current at the time the paper's OFMF prototype was built.
package redfish

import "ofmf/internal/odata"

// Schema @odata.type strings for the resources the OFMF serves.
const (
	TypeServiceRoot       = "#ServiceRoot.v1_15_0.ServiceRoot"
	TypeComputerSystem    = "#ComputerSystem.v1_20_0.ComputerSystem"
	TypeChassis           = "#Chassis.v1_22_0.Chassis"
	TypeFabric            = "#Fabric.v1_3_0.Fabric"
	TypeSwitch            = "#Switch.v1_9_0.Switch"
	TypePort              = "#Port.v1_9_0.Port"
	TypeEndpoint          = "#Endpoint.v1_8_0.Endpoint"
	TypeZone              = "#Zone.v1_6_1.Zone"
	TypeConnection        = "#Connection.v1_2_0.Connection"
	TypeStorage           = "#Storage.v1_15_0.Storage"
	TypeStoragePool       = "#StoragePool.v1_9_0.StoragePool"
	TypeVolume            = "#Volume.v1_9_0.Volume"
	TypeDrive             = "#Drive.v1_16_0.Drive"
	TypeMemory            = "#Memory.v1_17_0.Memory"
	TypeMemoryChunks      = "#MemoryChunks.v1_5_0.MemoryChunks"
	TypeMemoryDomain      = "#MemoryDomain.v1_5_0.MemoryDomain"
	TypeProcessor         = "#Processor.v1_18_0.Processor"
	TypeEventService      = "#EventService.v1_10_0.EventService"
	TypeEventDestination  = "#EventDestination.v1_13_0.EventDestination"
	TypeEvent             = "#Event.v1_8_0.Event"
	TypeTaskService       = "#TaskService.v1_2_0.TaskService"
	TypeTask              = "#Task.v1_7_0.Task"
	TypeSessionService    = "#SessionService.v1_1_8.SessionService"
	TypeSession           = "#Session.v1_5_0.Session"
	TypeTelemetryService  = "#TelemetryService.v1_3_1.TelemetryService"
	TypeMetricDefinition  = "#MetricDefinition.v1_3_1.MetricDefinition"
	TypeMetricReport      = "#MetricReport.v1_5_0.MetricReport"
	TypeMetricReportDef   = "#MetricReportDefinition.v1_4_2.MetricReportDefinition"
	TypeAggregationSvc    = "#AggregationService.v1_0_2.AggregationService"
	TypeAggregationSource = "#AggregationSource.v1_3_1.AggregationSource"
	TypeCompositionSvc    = "#CompositionService.v1_2_2.CompositionService"
	TypeResourceBlock     = "#ResourceBlock.v1_4_2.ResourceBlock"
	TypeResourceZone      = "#Zone.v1_6_1.Zone"

	TypeComputerSystemCollection  = "#ComputerSystemCollection.ComputerSystemCollection"
	TypeChassisCollection         = "#ChassisCollection.ChassisCollection"
	TypeFabricCollection          = "#FabricCollection.FabricCollection"
	TypeSwitchCollection          = "#SwitchCollection.SwitchCollection"
	TypePortCollection            = "#PortCollection.PortCollection"
	TypeEndpointCollection        = "#EndpointCollection.EndpointCollection"
	TypeZoneCollection            = "#ZoneCollection.ZoneCollection"
	TypeConnectionCollection      = "#ConnectionCollection.ConnectionCollection"
	TypeStorageCollection         = "#StorageCollection.StorageCollection"
	TypeStoragePoolCollection     = "#StoragePoolCollection.StoragePoolCollection"
	TypeVolumeCollection          = "#VolumeCollection.VolumeCollection"
	TypeDriveCollection           = "#DriveCollection.DriveCollection"
	TypeMemoryCollection          = "#MemoryCollection.MemoryCollection"
	TypeMemoryChunksCollection    = "#MemoryChunksCollection.MemoryChunksCollection"
	TypeMemoryDomainCollection    = "#MemoryDomainCollection.MemoryDomainCollection"
	TypeProcessorCollection       = "#ProcessorCollection.ProcessorCollection"
	TypeEventDestCollection       = "#EventDestinationCollection.EventDestinationCollection"
	TypeTaskCollection            = "#TaskCollection.TaskCollection"
	TypeSessionCollection         = "#SessionCollection.SessionCollection"
	TypeMetricReportCollection    = "#MetricReportCollection.MetricReportCollection"
	TypeMetricReportDefCollection = "#MetricReportDefinitionCollection.MetricReportDefinitionCollection"
	TypeMetricDefCollection       = "#MetricDefinitionCollection.MetricDefinitionCollection"
	TypeAggregationSrcCollection  = "#AggregationSourceCollection.AggregationSourceCollection"
	TypeResourceBlockCollection   = "#ResourceBlockCollection.ResourceBlockCollection"
	TypeResourceZoneCollection    = "#ZoneCollection.ZoneCollection"
)

// Root is the versioned service entry point at /redfish/v1.
type Root struct {
	odata.Resource
	RedfishVersion     string     `json:"RedfishVersion"`
	UUID               string     `json:"UUID,omitempty"`
	Systems            *odata.Ref `json:"Systems,omitempty"`
	Chassis            *odata.Ref `json:"Chassis,omitempty"`
	Fabrics            *odata.Ref `json:"Fabrics,omitempty"`
	Storage            *odata.Ref `json:"Storage,omitempty"`
	EventService       *odata.Ref `json:"EventService,omitempty"`
	TaskService        *odata.Ref `json:"Tasks,omitempty"`
	SessionService     *odata.Ref `json:"SessionService,omitempty"`
	TelemetryService   *odata.Ref `json:"TelemetryService,omitempty"`
	AggregationService *odata.Ref `json:"AggregationService,omitempty"`
	CompositionService *odata.Ref `json:"CompositionService,omitempty"`
	Links              RootLinks  `json:"Links"`
}

// RootLinks holds the service root's link section.
type RootLinks struct {
	Sessions odata.Ref `json:"Sessions"`
}

// Ref returns a pointer to a reference for the given id, for optional link
// members.
func Ref(id odata.ID) *odata.Ref {
	r := odata.NewRef(id)
	return &r
}

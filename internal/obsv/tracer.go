package obsv

// Span-based tracing for the OFMF, hand-rolled like the metrics
// registry so the management plane stays dependency-free. A Tracer
// starts spans that link to their parent through the request context,
// propagates identity over HTTP edges via the W3C traceparent header,
// and retires finished spans into a bounded lock-free ring buffer that
// the Oem admin Traces endpoint dumps on demand. Span durations also
// feed the ofmf_span_seconds histogram, so metrics and traces
// cross-reference by operation name, and traces whose entry span
// exceeds a configured threshold are logged automatically.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceparentHeader is the W3C trace-context header carried on every
// HTTP edge: OFMF -> fabric agent, OFMF -> event sink, client -> OFMF.
const TraceparentHeader = "traceparent"

// SpanContext is the wire identity of a position in a trace: which
// trace the caller belongs to and which span is the caller.
type SpanContext struct {
	TraceID string // 32 lowercase hex characters, not all zero
	SpanID  string // 16 lowercase hex characters, not all zero
}

// Valid reports whether both ids have the right shape.
func (sc SpanContext) Valid() bool {
	return isHexID(sc.TraceID, 32) && isHexID(sc.SpanID, 16)
}

// Traceparent renders the context in W3C traceparent form
// (version 00, sampled flag set).
func (sc SpanContext) Traceparent() string {
	return "00-" + sc.TraceID + "-" + sc.SpanID + "-01"
}

// ParseTraceparent parses a version-00 traceparent header value.
func ParseTraceparent(s string) (SpanContext, bool) {
	// 00-<32 hex>-<16 hex>-<2 hex flags>
	if len(s) != 55 || s[0] != '0' || s[1] != '0' || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	sc := SpanContext{TraceID: s[3:35], SpanID: s[36:52]}
	if !sc.Valid() || !isHex(s[53:55]) {
		return SpanContext{}, false
	}
	return sc, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func isHexID(s string, n int) bool {
	if len(s) != n || !isHex(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return true
		}
	}
	return false // all-zero ids are invalid per W3C trace context
}

// idSeq backs the fallback id source when crypto/rand fails.
var idSeq atomic.Uint64

func randomHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		return fmt.Sprintf("%0*x", 2*n, idSeq.Add(1))
	}
	return hex.EncodeToString(b)
}

func newTraceID() string { return randomHex(16) }
func newSpanID() string  { return randomHex(8) }

// spanCtxKey carries a ctxSpan through request contexts.
type spanCtxKey struct{}

// ctxSpan records the active span context and whether it was started in
// this process. A remote (adopted) parent still parents new spans, but
// only a span with no local ancestor is an entry span — the unit the
// slow-trace log reports on.
type ctxSpan struct {
	sc    SpanContext
	local bool
}

// ContextWithRemoteSpanContext attaches a span context adopted from an
// incoming traceparent header. Spans started under it parent to the
// remote caller, keeping one trace id across process boundaries.
func ContextWithRemoteSpanContext(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, ctxSpan{sc: sc})
}

// SpanContextFrom returns the active span context carried by ctx.
func SpanContextFrom(ctx context.Context) (SpanContext, bool) {
	if ctx == nil {
		return SpanContext{}, false
	}
	cs, ok := ctx.Value(spanCtxKey{}).(ctxSpan)
	return cs.sc, ok
}

// InjectHeaders stamps the outgoing request headers with the trace
// context and request id carried by ctx, if any. Every HTTP edge the
// OFMF originates (agent ops, event delivery, CLI client) calls this.
func InjectHeaders(ctx context.Context, h http.Header) {
	if sc, ok := SpanContextFrom(ctx); ok {
		h.Set(TraceparentHeader, sc.Traceparent())
	}
	if id := RequestIDFrom(ctx); id != "" {
		h.Set(RequestIDHeader, id)
	}
}

// SpanRecord is one finished span as stored in the ring buffer and
// served by the admin Traces endpoint.
type SpanRecord struct {
	TraceID  string            `json:"TraceId"`
	SpanID   string            `json:"SpanId"`
	ParentID string            `json:"ParentId,omitempty"`
	Name     string            `json:"Name"`
	Start    time.Time         `json:"Start"`
	Duration time.Duration     `json:"DurationNs"`
	Err      string            `json:"Err,omitempty"`
	Attrs    map[string]string `json:"Attrs,omitempty"`
}

// Span is an in-flight operation. End (or EndErr) is idempotent;
// methods on a nil Span are no-ops so untraced paths need no guards.
type Span struct {
	tracer *Tracer
	entry  bool // no local ancestor: slow-log candidate

	mu    sync.Mutex
	ended bool
	rec   SpanRecord
}

// Context returns the span's wire identity.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.rec.TraceID, SpanID: s.rec.SpanID}
}

// SetAttr attaches a key/value attribute to the span.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		if s.rec.Attrs == nil {
			s.rec.Attrs = make(map[string]string, 4)
		}
		s.rec.Attrs[k] = v
	}
	s.mu.Unlock()
}

// End finishes the span successfully.
func (s *Span) End() { s.EndErr(nil) }

// EndErr finishes the span, recording err's message if non-nil. The
// first call wins; later calls are ignored.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.rec.Duration = time.Since(s.rec.Start)
	if err != nil {
		s.rec.Err = err.Error()
	}
	rec := s.rec
	s.mu.Unlock()
	s.tracer.finish(&rec, s.entry)
}

// StartChild starts a span parented to s without threading a context,
// for seams (WAL group commit) where no context crosses the boundary.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.newSpan(name, SpanContext{TraceID: s.rec.TraceID, SpanID: s.rec.SpanID}, false)
}

// TracerOptions configures a Tracer; the zero value is usable.
type TracerOptions struct {
	// Capacity is the ring buffer size in spans (default 4096).
	Capacity int
	// SlowThreshold logs any entry span at least this slow; zero
	// disables slow-trace logging.
	SlowThreshold time.Duration
	// Logger receives slow-trace lines (default: none).
	Logger *slog.Logger
}

// Tracer starts spans, retires them into a bounded lock-free ring
// buffer, and feeds their durations into ofmf_span_seconds. All methods
// are safe on a nil receiver, so tracing is strictly opt-in.
type Tracer struct {
	ring   []atomic.Pointer[SpanRecord]
	cursor atomic.Uint64

	spanSeconds *HistogramVec
	slow        time.Duration
	log         *slog.Logger
}

// NewTracer builds a tracer, registering ofmf_span_seconds on reg when
// reg is non-nil.
func NewTracer(reg *Registry, opts TracerOptions) *Tracer {
	capacity := opts.Capacity
	if capacity <= 0 {
		capacity = 4096
	}
	t := &Tracer{
		ring: make([]atomic.Pointer[SpanRecord], capacity),
		slow: opts.SlowThreshold,
		log:  opts.Logger,
	}
	if t.log == nil {
		t.log = NopLogger()
	}
	if reg != nil {
		t.spanSeconds = reg.HistogramVec("ofmf_span_seconds",
			"Traced span duration in seconds, by operation name.",
			nil, "op")
	}
	return t
}

// Start begins a span named name. The parent is the span context
// carried by ctx — local or adopted from a remote caller — or a fresh
// trace when ctx carries none. The returned context carries the new
// span so children link to it and InjectHeaders propagates it.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	var parent SpanContext
	localParent := false
	if cs, ok := ctx.Value(spanCtxKey{}).(ctxSpan); ok {
		parent = cs.sc
		localParent = cs.local
	}
	sp := t.newSpan(name, parent, !localParent)
	ctx = context.WithValue(ctx, spanCtxKey{}, ctxSpan{sc: sp.Context(), local: true})
	return ctx, sp
}

// StartIfTraced begins a span only when ctx already carries a span
// context. Seams reachable from untraced paths (recovery replay,
// background sweeps) use it so they never mint orphan traces.
func (t *Tracer) StartIfTraced(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if _, ok := ctx.Value(spanCtxKey{}).(ctxSpan); !ok {
		return ctx, nil
	}
	return t.Start(ctx, name)
}

func (t *Tracer) newSpan(name string, parent SpanContext, entry bool) *Span {
	sp := &Span{
		tracer: t,
		entry:  entry,
		rec: SpanRecord{
			SpanID: newSpanID(),
			Name:   name,
			Start:  time.Now(),
		},
	}
	if parent.Valid() {
		sp.rec.TraceID = parent.TraceID
		sp.rec.ParentID = parent.SpanID
	} else {
		sp.rec.TraceID = newTraceID()
	}
	return sp
}

// Observe records a completed background operation (WAL fsync round,
// snapshot) as a root span without requiring context plumbing.
func (t *Tracer) Observe(name string, d time.Duration) {
	if t == nil {
		return
	}
	rec := &SpanRecord{
		TraceID:  newTraceID(),
		SpanID:   newSpanID(),
		Name:     name,
		Start:    time.Now().Add(-d),
		Duration: d,
	}
	t.finish(rec, false)
}

// finish retires a completed span: histogram, ring push, slow-trace log.
func (t *Tracer) finish(rec *SpanRecord, entry bool) {
	if t == nil {
		return
	}
	if t.spanSeconds != nil {
		t.spanSeconds.With(rec.Name).Observe(rec.Duration.Seconds())
	}
	i := t.cursor.Add(1) - 1
	t.ring[i%uint64(len(t.ring))].Store(rec)
	if entry && t.slow > 0 && rec.Duration >= t.slow {
		t.log.LogAttrs(context.Background(), slog.LevelWarn, "slow trace",
			slog.String("trace_id", rec.TraceID),
			slog.String("span", rec.Name),
			slog.Duration("duration", rec.Duration),
			slog.String("err", rec.Err),
		)
	}
}

// Dump returns the ring buffer's finished spans, oldest first. Spans
// retired concurrently with the dump may or may not appear.
func (t *Tracer) Dump() []SpanRecord {
	if t == nil {
		return nil
	}
	out := make([]SpanRecord, 0, len(t.ring))
	for i := range t.ring {
		if p := t.ring[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

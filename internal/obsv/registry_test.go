package obsv

import (
	"math"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %v, want 3.5", got)
	}

	g := r.Gauge("depth", "queue depth")
	g.Set(10)
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %v, want 7", got)
	}
}

func TestCounterRejectsDecrease(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestVecLabelPartitioning(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("reqs_total", "requests", "method", "code")
	v.With("GET", "200").Inc()
	v.With("GET", "200").Inc()
	v.With("POST", "500").Inc()
	if got := v.With("GET", "200").Value(); got != 2 {
		t.Errorf(`GET/200 = %v, want 2`, got)
	}
	if got := v.With("POST", "500").Value(); got != 1 {
		t.Errorf(`POST/500 = %v, want 1`, got)
	}
}

func TestVecLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("reqs_total", "requests", "method", "code")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	v.With("GET")
}

func TestRegistrationIdempotentButConflictPanics(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	a.Inc()
	if b.Value() != 1 {
		t.Error("re-registration did not return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type conflict did not panic")
		}
	}()
	r.Gauge("x_total", "x")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Errorf("sum = %v, want 56.05", h.Sum())
	}

	fams := r.Gather()
	if len(fams) != 1 {
		t.Fatalf("families = %d, want 1", len(fams))
	}
	s := fams[0].Samples[0]
	wantCum := []uint64{1, 3, 4, 5} // le=0.1, le=1, le=10, le=+Inf
	if len(s.Buckets) != len(wantCum) {
		t.Fatalf("buckets = %d, want %d", len(s.Buckets), len(wantCum))
	}
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %d (le=%v) = %d, want %d", i, b.UpperBound, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(s.Buckets[len(s.Buckets)-1].UpperBound, 1) {
		t.Error("last bucket bound is not +Inf")
	}
}

func TestFuncMetricsReadAtGatherTime(t *testing.T) {
	r := NewRegistry()
	v := 1.0
	r.CounterFunc("ticks_total", "ticks", func() float64 { return v })
	v = 42
	fams := r.Gather()
	if len(fams) != 1 || fams[0].Samples[0].Value != 42 {
		t.Errorf("gather = %+v, want single sample of 42", fams)
	}

	// Re-registration replaces the closure (fresh service, shared registry).
	r.CounterFunc("ticks_total", "ticks", func() float64 { return 7 })
	if got := r.Gather()[0].Samples[0].Value; got != 7 {
		t.Errorf("after replace = %v, want 7", got)
	}
}

func TestGatherOrdering(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "z")
	r.Counter("aa_total", "a")
	v := r.GaugeVec("mm", "m", "l")
	v.With("b").Set(1)
	v.With("a").Set(2)

	fams := r.Gather()
	if fams[0].Name != "aa_total" || fams[1].Name != "mm" || fams[2].Name != "zz_total" {
		t.Errorf("family order = %s, %s, %s", fams[0].Name, fams[1].Name, fams[2].Name)
	}
	mm := fams[1]
	if mm.Samples[0].LabelValues[0] != "a" || mm.Samples[1].LabelValues[0] != "b" {
		t.Errorf("sample order = %v", mm.Samples)
	}
}

package obsv

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundtrip(t *testing.T) {
	sc := SpanContext{TraceID: strings.Repeat("ab", 16), SpanID: strings.Repeat("cd", 8)}
	if !sc.Valid() {
		t.Fatal("well-formed context reported invalid")
	}
	got, ok := ParseTraceparent(sc.Traceparent())
	if !ok || got != sc {
		t.Fatalf("roundtrip = %+v, %v; want %+v", got, ok, sc)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := SpanContext{TraceID: strings.Repeat("ab", 16), SpanID: strings.Repeat("cd", 8)}.Traceparent()
	bad := []string{
		"",
		valid[:54],                               // truncated
		"01" + valid[2:],                         // unknown version
		strings.ToUpper(valid),                   // uppercase hex
		"00-" + strings.Repeat("0", 32) + valid[35:], // all-zero trace id
		valid[:36] + strings.Repeat("0", 16) + valid[52:], // all-zero span id
		strings.Replace(valid, "-01", "-0x", 1),  // non-hex flags
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted", s)
		}
	}
}

func TestTracerParentChildLinks(t *testing.T) {
	tr := NewTracer(NewRegistry(), TracerOptions{})
	ctx, root := tr.Start(context.Background(), "root")
	_, child := tr.Start(ctx, "child")
	grand := child.StartChild("grand")
	grand.End()
	child.EndErr(errors.New("boom"))
	root.End()

	recs := map[string]SpanRecord{}
	for _, r := range tr.Dump() {
		recs[r.Name] = r
	}
	if len(recs) != 3 {
		t.Fatalf("dump = %d spans, want 3", len(recs))
	}
	rootRec, childRec, grandRec := recs["root"], recs["child"], recs["grand"]
	if rootRec.ParentID != "" {
		t.Errorf("root has parent %q", rootRec.ParentID)
	}
	if childRec.TraceID != rootRec.TraceID || grandRec.TraceID != rootRec.TraceID {
		t.Errorf("trace ids diverge: %s / %s / %s", rootRec.TraceID, childRec.TraceID, grandRec.TraceID)
	}
	if childRec.ParentID != rootRec.SpanID {
		t.Errorf("child parent = %q, want %q", childRec.ParentID, rootRec.SpanID)
	}
	if grandRec.ParentID != childRec.SpanID {
		t.Errorf("grandchild parent = %q, want %q", grandRec.ParentID, childRec.SpanID)
	}
	if childRec.Err != "boom" {
		t.Errorf("child err = %q", childRec.Err)
	}
}

func TestStartIfTraced(t *testing.T) {
	tr := NewTracer(NewRegistry(), TracerOptions{})

	// An untraced context must not mint an orphan trace.
	_, sp := tr.StartIfTraced(context.Background(), "store.put")
	if sp != nil {
		t.Fatal("StartIfTraced minted a span on an untraced context")
	}
	if got := len(tr.Dump()); got != 0 {
		t.Fatalf("dump = %d spans, want 0", got)
	}

	// A remote-adopted context parents the new span across the wire.
	remote := SpanContext{TraceID: strings.Repeat("ab", 16), SpanID: strings.Repeat("cd", 8)}
	ctx := ContextWithRemoteSpanContext(context.Background(), remote)
	_, sp = tr.StartIfTraced(ctx, "store.put")
	if sp == nil {
		t.Fatal("no span on a traced context")
	}
	sp.End()
	recs := tr.Dump()
	if len(recs) != 1 || recs[0].TraceID != remote.TraceID || recs[0].ParentID != remote.SpanID {
		t.Fatalf("adopted span = %+v, want trace %s parent %s", recs, remote.TraceID, remote.SpanID)
	}
}

func TestRingWraparound(t *testing.T) {
	tr := NewTracer(nil, TracerOptions{Capacity: 4})
	for i := 0; i < 10; i++ {
		tr.Observe("op", time.Duration(i+1)*time.Millisecond)
	}
	recs := tr.Dump()
	if len(recs) != 4 {
		t.Fatalf("dump = %d spans, want ring capacity 4", len(recs))
	}
	// Only the newest four survive.
	for _, r := range recs {
		if r.Duration < 7*time.Millisecond {
			t.Errorf("stale span survived wraparound: %v", r.Duration)
		}
	}
}

func TestObserveFeedsHistogram(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, TracerOptions{})
	tr.Observe("wal.fsync", 3*time.Millisecond)
	tr.Observe("wal.fsync", 5*time.Millisecond)
	recs := tr.Dump()
	if len(recs) != 2 || recs[0].Name != "wal.fsync" {
		t.Fatalf("dump = %+v", recs)
	}
	if recs[0].TraceID == recs[1].TraceID {
		t.Error("Observe spans share a trace id; each should be a root")
	}
	if !strings.Contains(renderMetrics(reg), "ofmf_span_seconds") {
		t.Error("ofmf_span_seconds not exported")
	}
}

func renderMetrics(reg *Registry) string {
	var buf bytes.Buffer
	req, _ := http.NewRequest(http.MethodGet, "/metrics", nil)
	rw := &bufWriter{buf: &buf, header: http.Header{}}
	reg.Handler().ServeHTTP(rw, req)
	return buf.String()
}

type bufWriter struct {
	buf    *bytes.Buffer
	header http.Header
}

func (w *bufWriter) Header() http.Header         { return w.header }
func (w *bufWriter) Write(b []byte) (int, error) { return w.buf.Write(b) }
func (w *bufWriter) WriteHeader(int)             {}

func TestSlowTraceLogging(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(nil, TracerOptions{
		SlowThreshold: time.Nanosecond,
		Logger:        NewLogger(&buf, slog.LevelInfo),
	})

	// A child span is never an entry span, so it must not log.
	ctx, root := tr.Start(context.Background(), "entry")
	_, child := tr.Start(ctx, "child")
	time.Sleep(time.Millisecond)
	child.End()
	if strings.Contains(buf.String(), "slow trace") {
		t.Fatalf("child span logged as slow trace:\n%s", buf.String())
	}
	root.End()
	if !strings.Contains(buf.String(), "slow trace") || !strings.Contains(buf.String(), "entry") {
		t.Fatalf("entry span did not log:\n%s", buf.String())
	}
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.Start(context.Background(), "x")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	if _, sp2 := tr.StartIfTraced(ctx, "y"); sp2 != nil {
		t.Fatal("nil tracer StartIfTraced returned a span")
	}
	tr.Observe("z", time.Second)
	if tr.Dump() != nil {
		t.Fatal("nil tracer dumped spans")
	}
	// All span methods tolerate nil.
	sp.SetAttr("k", "v")
	sp.End()
	sp.EndErr(errors.New("x"))
	if c := sp.StartChild("c"); c != nil {
		t.Fatal("nil span spawned a child")
	}
	if sc := sp.Context(); sc.Valid() {
		t.Fatal("nil span has a valid context")
	}
}

func TestInjectHeaders(t *testing.T) {
	tr := NewTracer(nil, TracerOptions{})
	h := http.Header{}
	InjectHeaders(context.Background(), h)
	if got := h.Get(TraceparentHeader); got != "" {
		t.Fatalf("untraced ctx injected traceparent %q", got)
	}

	ctx, sp := tr.Start(context.Background(), "op")
	ctx = ContextWithRequestID(ctx, "deadbeef00000000")
	InjectHeaders(ctx, h)
	sc, ok := ParseTraceparent(h.Get(TraceparentHeader))
	if !ok || sc != sp.Context() {
		t.Fatalf("injected traceparent = %q, want context of %+v", h.Get(TraceparentHeader), sp.Context())
	}
	if got := h.Get(RequestIDHeader); got != "deadbeef00000000" {
		t.Errorf("injected request id = %q", got)
	}
	sp.End()
}

// TestTracerConcurrent hammers Start/SetAttr/End/Observe/Dump from many
// goroutines; run with -race to check the lock-free ring and span
// state transitions.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(NewRegistry(), TracerOptions{Capacity: 64})
	const workers, iters = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ctx, root := tr.Start(context.Background(), "root")
				_, child := tr.StartIfTraced(ctx, "child")
				child.SetAttr("i", "x")
				child.End()
				root.StartChild("side").End()
				root.EndErr(nil)
				tr.Observe("bg", time.Microsecond)
				if i%50 == 0 {
					tr.Dump()
				}
			}
		}(w)
	}
	wg.Wait()
	recs := tr.Dump()
	if len(recs) != 64 {
		t.Fatalf("dump = %d spans, want full ring of 64", len(recs))
	}
}

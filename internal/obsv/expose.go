package obsv

import (
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition format version served by
// the registry's handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler serving the registry in Prometheus
// text exposition format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_, _ = w.Write([]byte(r.Expose()))
	})
}

// Expose renders the registry in Prometheus text exposition format.
func (r *Registry) Expose() string {
	var b strings.Builder
	for _, fam := range r.Gather() {
		if fam.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", fam.Name, escapeHelp(fam.Help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam.Name, fam.Type)
		for _, s := range fam.Samples {
			switch fam.Type {
			case TypeHistogram:
				for _, bk := range s.Buckets {
					writeSeries(&b, fam.Name+"_bucket", fam.LabelNames, s.LabelValues,
						"le", formatBound(bk.UpperBound), float64(bk.Count))
				}
				writeSeries(&b, fam.Name+"_sum", fam.LabelNames, s.LabelValues, "", "", s.Sum)
				writeSeries(&b, fam.Name+"_count", fam.LabelNames, s.LabelValues, "", "", float64(s.Count))
			default:
				writeSeries(&b, fam.Name, fam.LabelNames, s.LabelValues, "", "", s.Value)
			}
		}
	}
	return b.String()
}

// writeSeries renders one sample line, appending the optional extra
// label (the histogram "le" bound) after the family's own labels.
func writeSeries(b *strings.Builder, name string, labelNames, labelValues []string, extraName, extraValue string, value float64) {
	b.WriteString(name)
	if len(labelNames) > 0 || extraName != "" {
		b.WriteByte('{')
		for i, ln := range labelNames {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(ln)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(labelValues[i]))
			b.WriteByte('"')
		}
		if extraName != "" {
			if len(labelNames) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(extraName)
			b.WriteString(`="`)
			b.WriteString(extraValue)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(value))
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatBound(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

package obsv

import "runtime"

// RegisterRuntimeMetrics exports Go runtime health into reg as
// function-backed series sampled at gather time, so /metrics and the
// SelfCollector report process health alongside request counters.
// Registration is idempotent (re-registering replaces the functions).
func RegisterRuntimeMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("ofmf_go_goroutines",
		"Number of goroutines that currently exist.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("ofmf_go_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	reg.GaugeFunc("ofmf_go_gomaxprocs",
		"Value of GOMAXPROCS, the OS-thread parallelism limit.",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
	reg.CounterFunc("ofmf_go_gc_pause_seconds_total",
		"Cumulative stop-the-world garbage collection pause time in seconds.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.PauseTotalNs) / 1e9
		})
}

package obsv

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return slog.LevelInfo, fmt.Errorf("obsv: unknown log level %q (want debug, info, warn or error)", s)
}

// ctxHandler decorates an slog.Handler so every record emitted with a
// traced context carries the request_id attribute — the property that
// lets one grep a request's whole path through service, composer and
// agent by the id returned in the X-Request-Id response header.
type ctxHandler struct{ inner slog.Handler }

func (h ctxHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h ctxHandler) Handle(ctx context.Context, rec slog.Record) error {
	if id := RequestIDFrom(ctx); id != "" {
		rec.AddAttrs(slog.String("request_id", id))
	}
	return h.inner.Handle(ctx, rec)
}

func (h ctxHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return ctxHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h ctxHandler) WithGroup(name string) slog.Handler {
	return ctxHandler{inner: h.inner.WithGroup(name)}
}

// WrapHandler decorates any slog.Handler with request-id injection.
func WrapHandler(h slog.Handler) slog.Handler { return ctxHandler{inner: h} }

// NewLogger builds a structured text logger writing to w at the given
// level, with request-id injection from context.
func NewLogger(w io.Writer, level slog.Leveler) *slog.Logger {
	return slog.New(WrapHandler(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})))
}

// NewJSONLogger builds a structured JSON logger writing to w at the
// given level, with request-id injection from context.
func NewJSONLogger(w io.Writer, level slog.Leveler) *slog.Logger {
	return slog.New(WrapHandler(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})))
}

// nopHandler discards every record without formatting it.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

// NopLogger returns a logger that drops everything — the default when a
// component is constructed without one, keeping tests quiet.
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

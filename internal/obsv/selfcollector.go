package obsv

import (
	"strconv"
	"strings"

	"ofmf/internal/redfish"
)

// SelfCollector adapts a Registry to the TelemetryService's Collector
// interface, closing the paper's telemetry loop: the OFMF's own metrics
// become a MetricReport under its Redfish tree, so the same
// subscription machinery that distributes hardware telemetry also
// distributes management-plane telemetry.
//
// Counters and gauges map to one MetricValue per series; histograms are
// summarized as <name>_count and <name>_sum so reports stay compact.
// MetricID carries the family name and MetricProperty the full series
// identity in exposition syntax.
type SelfCollector struct {
	Registry *Registry
}

// Collect renders the registry's current state as metric values.
func (c SelfCollector) Collect() []redfish.MetricValue {
	if c.Registry == nil {
		return nil
	}
	var out []redfish.MetricValue
	for _, fam := range c.Registry.Gather() {
		for _, s := range fam.Samples {
			switch fam.Type {
			case TypeHistogram:
				out = append(out,
					metricValue(fam.Name+"_count", fam.LabelNames, s.LabelValues, float64(s.Count)),
					metricValue(fam.Name+"_sum", fam.LabelNames, s.LabelValues, s.Sum),
				)
			default:
				out = append(out, metricValue(fam.Name, fam.LabelNames, s.LabelValues, s.Value))
			}
		}
	}
	return out
}

func metricValue(name string, labelNames, labelValues []string, v float64) redfish.MetricValue {
	return redfish.MetricValue{
		MetricID:       name,
		MetricValue:    strconv.FormatFloat(v, 'g', -1, 64),
		MetricProperty: seriesProperty(name, labelNames, labelValues),
	}
}

// seriesProperty renders the series identity in exposition syntax, e.g.
// ofmf_http_requests_total{class="Systems",code="200",method="GET"}.
func seriesProperty(name string, labelNames, labelValues []string) string {
	if len(labelNames) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, ln := range labelNames {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(ln)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labelValues[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

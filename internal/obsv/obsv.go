// Package obsv is the OFMF's internal observability layer: a
// dependency-free metrics registry with Prometheus text exposition,
// leveled structured logging on log/slog with request-id correlation,
// and lightweight per-request tracing carried through context.Context.
//
// The paper positions the OFMF as "a subscription-based central
// repository for telemetry information" for a composable HPC facility;
// this package turns the management plane's own behaviour — request
// latencies, compose/decompose timings, agent forwarding, event
// delivery — into first-class telemetry. The SelfCollector closes the
// loop by feeding the registry's series back through the OFMF's own
// Redfish TelemetryService as a ManagementPlane metric report.
//
// Everything here is standard library only: the module has zero
// external dependencies and the registry keeps it that way by
// implementing the Prometheus text format (version 0.0.4) directly.
package obsv

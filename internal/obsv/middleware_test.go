package obsv

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMiddlewarePanicAccounting: a panicking handler must not leak the
// in-flight gauge, must record a 500-class outcome, and the panic must
// still propagate to the server's recoverer.
func TestMiddlewarePanicAccounting(t *testing.T) {
	m := NewMetrics(NewRegistry())
	tr := NewTracer(nil, TracerOptions{})
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("handler exploded")
	}), m, nil, func(string) string { return "Test" }, tr)

	recovered := func() (v any) {
		defer func() { v = recover() }()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/x", nil))
		return nil
	}()
	if recovered == nil {
		t.Fatal("middleware swallowed the panic")
	}
	if got := m.HTTPInFlight.Value(); got != 0 {
		t.Errorf("in-flight after panic = %v, want 0", got)
	}
	if got := m.HTTPRequests.With("GET", "Test", "500").Value(); got != 1 {
		t.Errorf("500 counter = %v, want 1", got)
	}
	// The span ended despite the panic, carrying the 500 status.
	recs := tr.Dump()
	if len(recs) != 1 || recs[0].Name != "http.Test" || recs[0].Attrs["status"] != "500" {
		t.Errorf("panic span = %+v", recs)
	}
}

// TestMiddlewareUnwrap: http.ResponseController must reach the real
// writer's optional interfaces through the statusWriter wrapper.
func TestMiddlewareUnwrap(t *testing.T) {
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		u, ok := w.(interface{ Unwrap() http.ResponseWriter })
		if !ok || u.Unwrap() == nil {
			t.Error("middleware writer does not unwrap")
		}
		if err := http.NewResponseController(w).Flush(); err != nil {
			t.Errorf("ResponseController.Flush: %v", err)
		}
	}), nil, nil, nil, nil)
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

// TestMiddlewareAdoptsTraceparent: an incoming traceparent joins the
// request to the caller's trace; absent one, the middleware mints a
// fresh trace. Either way the handler's context carries the span.
func TestMiddlewareAdoptsTraceparent(t *testing.T) {
	tr := NewTracer(nil, TracerOptions{})
	var seen SpanContext
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen, _ = SpanContextFrom(r.Context())
		w.WriteHeader(http.StatusOK)
	}), nil, nil, func(string) string { return "Test" }, tr)
	srv := httptest.NewServer(h)
	defer srv.Close()

	remote := SpanContext{TraceID: strings.Repeat("ab", 16), SpanID: strings.Repeat("cd", 8)}
	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	req.Header.Set(TraceparentHeader, remote.Traceparent())
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if seen.TraceID != remote.TraceID {
		t.Errorf("handler trace id = %s, want adopted %s", seen.TraceID, remote.TraceID)
	}
	recs := tr.Dump()
	if len(recs) != 1 || recs[0].TraceID != remote.TraceID || recs[0].ParentID != remote.SpanID {
		t.Fatalf("middleware span = %+v, want parented under the remote caller", recs)
	}

	// No traceparent: a fresh trace is minted.
	resp, err = srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !seen.Valid() || seen.TraceID == remote.TraceID {
		t.Errorf("fresh request span = %+v", seen)
	}
}

package obsv

// Metric naming scheme: every series the OFMF emits about itself is
// prefixed ofmf_ and grouped by subsystem — ofmf_http_* for the REST
// surface, ofmf_compose_* for the Composability Manager, ofmf_agent_*
// for forwarded fabric operations and agent liveness, ofmf_store_* for
// the resource repository, ofmf_events_* / ofmf_sse_* for the event
// subsystem. Durations are histograms in seconds.

// Metrics bundles the OFMF's own instruments, pre-registered on one
// registry so every component shares the same exposition endpoint.
type Metrics struct {
	reg *Registry

	// HTTPRequests counts finished requests by method, route class and
	// status code: ofmf_http_requests_total.
	HTTPRequests *CounterVec
	// HTTPDuration is the request latency histogram by method and route
	// class: ofmf_http_request_duration_seconds.
	HTTPDuration *HistogramVec
	// HTTPInFlight gauges currently executing requests:
	// ofmf_http_requests_in_flight.
	HTTPInFlight *Gauge

	// ComposeOps counts compose/decompose operations by outcome:
	// ofmf_compose_ops_total.
	ComposeOps *CounterVec
	// ComposeDuration times compose/decompose operations:
	// ofmf_compose_duration_seconds.
	ComposeDuration *HistogramVec

	// AgentOps counts fabric operations forwarded to agents by fabric,
	// operation and outcome: ofmf_agent_ops_total.
	AgentOps *CounterVec
	// AgentOpDuration times forwarded fabric operations:
	// ofmf_agent_op_duration_seconds.
	AgentOpDuration *HistogramVec
	// AgentHeartbeats counts heartbeat refreshes per aggregation source:
	// ofmf_agent_heartbeats_total.
	AgentHeartbeats *CounterVec
	// AgentLastHeartbeat gauges the unix time of each source's last
	// heartbeat, the liveness signal monitoring alerts on:
	// ofmf_agent_last_heartbeat_seconds.
	AgentLastHeartbeat *GaugeVec
	// AgentLiveness gauges the liveness sweeper's verdict per
	// aggregation source: 1 live, 0.5 degraded, 0 unavailable:
	// ofmf_agent_liveness.
	AgentLiveness *GaugeVec
	// Registrations counts aggregation-source registrations by outcome
	// (created, revived, error) — the fleet churn signal:
	// ofmf_registrations_total.
	Registrations *CounterVec
	// RegistrationSeconds times one registration through the serialized
	// dedup-or-create path: ofmf_registration_seconds.
	RegistrationSeconds *Histogram

	// StoreOps counts resource-store operations by kind and shard ("all"
	// for operations spanning every shard): ofmf_store_ops_total.
	StoreOps *CounterVec
	// StoreLockWait times how long mutations waited to acquire their
	// shard's write lock, by shard — the store's headline contention
	// number before and after sharding: ofmf_store_lock_wait_seconds.
	StoreLockWait *HistogramVec
	// StoreShards gauges the configured store shard count:
	// ofmf_store_shards. Per-shard entry counts are published alongside
	// it as the ofmf_store_shard_entries gather-time gauge family (see
	// Registry.LabeledGaugeFunc; the service registers one series per
	// shard).
	StoreShards *Gauge

	// WALAppends counts mutation records appended to the store's
	// write-ahead log: ofmf_wal_appends_total.
	WALAppends *Counter
	// WALFsync times WAL group-commit fsync rounds; one round can make
	// many concurrent mutations durable: ofmf_wal_fsync_seconds.
	WALFsync *Histogram
	// SnapshotSeconds times durable snapshot capture, write and log
	// rotation: ofmf_snapshot_seconds.
	SnapshotSeconds *Histogram
	// RecoveryReplayed counts WAL records replayed at boot recovery:
	// ofmf_recovery_replayed_total.
	RecoveryReplayed *Counter
	// WALQuarantined counts WAL segments renamed aside because recovery
	// refused to replay them (found after a torn record, or holding
	// records beyond a global sequence gap). Quarantine preserves bytes
	// that may include acknowledged commits; a non-zero rate means an
	// operator should inspect the data directory:
	// ofmf_wal_quarantined_total.
	WALQuarantined *Counter

	// ReplShipped counts mutation records shipped to replication
	// followers (one increment per record per follower stream):
	// ofmf_repl_shipped_total.
	ReplShipped *Counter
	// ReplApplied counts replicated records applied by this node as a
	// follower: ofmf_repl_applied_total.
	ReplApplied *Counter
	// ReplEpoch gauges the node's current replication epoch; it bumps by
	// one at every failover: ofmf_repl_epoch.
	ReplEpoch *Gauge
	// ReplAppliedSeq gauges the last replicated sequence number this
	// node applied (follower) or committed (leader): ofmf_repl_seq.
	ReplAppliedSeq *Gauge
	// ReplAckLag times how long a committed record took to be
	// acknowledged by the first follower — the shipping lag a semi-sync
	// write waits out: ofmf_repl_ack_lag_seconds.
	ReplAckLag *Histogram

	// EventPublishSeconds times event fan-out on the publish path
	// (subscription-index match plus enqueue, or inline delivery in
	// synchronous mode): ofmf_event_publish_seconds.
	EventPublishSeconds *Histogram
	// SweepSeconds times liveness sweeper passes:
	// ofmf_sweep_seconds.
	SweepSeconds *Histogram

	// SSESubscribers gauges open server-sent-event streams:
	// ofmf_sse_subscribers.
	SSESubscribers *Gauge
	// SSEDropped counts events dropped on slow SSE consumers:
	// ofmf_sse_dropped_events_total.
	SSEDropped *Counter
}

// NewMetrics registers the OFMF instrument set on reg, along with the
// Go runtime health series (see RegisterRuntimeMetrics). Registration
// is idempotent: wiring two services onto one registry shares the
// series.
func NewMetrics(reg *Registry) *Metrics {
	RegisterRuntimeMetrics(reg)
	return &Metrics{
		reg: reg,
		HTTPRequests: reg.CounterVec("ofmf_http_requests_total",
			"HTTP requests served, by method, route class and status code.",
			"method", "class", "code"),
		HTTPDuration: reg.HistogramVec("ofmf_http_request_duration_seconds",
			"HTTP request latency in seconds, by method and route class.",
			nil, "method", "class"),
		HTTPInFlight: reg.Gauge("ofmf_http_requests_in_flight",
			"HTTP requests currently being served."),
		ComposeOps: reg.CounterVec("ofmf_compose_ops_total",
			"Compose/decompose operations, by operation and outcome.",
			"op", "outcome"),
		ComposeDuration: reg.HistogramVec("ofmf_compose_duration_seconds",
			"Compose/decompose latency in seconds, by operation and outcome.",
			nil, "op", "outcome"),
		AgentOps: reg.CounterVec("ofmf_agent_ops_total",
			"Fabric operations forwarded to agents, by fabric, operation and outcome.",
			"fabric", "op", "outcome"),
		AgentOpDuration: reg.HistogramVec("ofmf_agent_op_duration_seconds",
			"Forwarded fabric operation latency in seconds, by fabric and operation.",
			nil, "fabric", "op"),
		AgentHeartbeats: reg.CounterVec("ofmf_agent_heartbeats_total",
			"Agent heartbeat refreshes, by aggregation source.", "source"),
		AgentLastHeartbeat: reg.GaugeVec("ofmf_agent_last_heartbeat_seconds",
			"Unix time of each aggregation source's last heartbeat.", "source"),
		AgentLiveness: reg.GaugeVec("ofmf_agent_liveness",
			"Sweeper verdict per aggregation source: 1 live, 0.5 degraded, 0 unavailable.",
			"source"),
		Registrations: reg.CounterVec("ofmf_registrations_total",
			"Aggregation-source registrations, by outcome (created, revived, error).",
			"outcome"),
		RegistrationSeconds: reg.Histogram("ofmf_registration_seconds",
			"Aggregation-source registration latency in seconds.", nil),
		StoreOps: reg.CounterVec("ofmf_store_ops_total",
			"Resource store operations, by kind and shard.", "op", "shard"),
		StoreLockWait: reg.HistogramVec("ofmf_store_lock_wait_seconds",
			"Time mutations spent waiting for their shard's write lock, by shard.",
			nil, "shard"),
		StoreShards: reg.Gauge("ofmf_store_shards",
			"Configured store shard count."),
		WALAppends: reg.Counter("ofmf_wal_appends_total",
			"Mutation records appended to the store write-ahead log."),
		WALFsync: reg.Histogram("ofmf_wal_fsync_seconds",
			"WAL group-commit fsync round duration in seconds.", nil),
		SnapshotSeconds: reg.Histogram("ofmf_snapshot_seconds",
			"Durable store snapshot duration in seconds.", nil),
		RecoveryReplayed: reg.Counter("ofmf_recovery_replayed_total",
			"WAL records replayed during boot recovery."),
		WALQuarantined: reg.Counter("ofmf_wal_quarantined_total",
			"WAL segments quarantined by recovery (torn-tail successors or beyond a sequence gap)."),
		ReplShipped: reg.Counter("ofmf_repl_shipped_total",
			"Mutation records shipped to replication followers."),
		ReplApplied: reg.Counter("ofmf_repl_applied_total",
			"Replicated mutation records applied by this follower."),
		ReplEpoch: reg.Gauge("ofmf_repl_epoch",
			"Current replication epoch (leadership term)."),
		ReplAppliedSeq: reg.Gauge("ofmf_repl_seq",
			"Last replicated sequence number applied or committed by this node."),
		ReplAckLag: reg.Histogram("ofmf_repl_ack_lag_seconds",
			"Time from record commit to first follower acknowledgement.", nil),
		EventPublishSeconds: reg.Histogram("ofmf_event_publish_seconds",
			"Event publish fan-out duration in seconds (index match + enqueue).", nil),
		SweepSeconds: reg.Histogram("ofmf_sweep_seconds",
			"Liveness sweep duration in seconds.", nil),
		SSESubscribers: reg.Gauge("ofmf_sse_subscribers",
			"Open server-sent-event streams."),
		SSEDropped: reg.Counter("ofmf_sse_dropped_events_total",
			"Events dropped on slow SSE consumers."),
	}
}

// Registry returns the registry the instruments are registered on.
func (m *Metrics) Registry() *Registry { return m.reg }

// Outcome maps an operation error to the bounded outcome label.
func Outcome(err error) string {
	if err != nil {
		return "error"
	}
	return "ok"
}

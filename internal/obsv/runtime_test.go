package obsv

import (
	"strings"
	"testing"
)

func TestRuntimeMetricsExported(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	out := renderMetrics(reg)
	for _, name := range []string{
		"ofmf_go_goroutines",
		"ofmf_go_heap_alloc_bytes",
		"ofmf_go_gc_pause_seconds_total",
		"ofmf_go_gomaxprocs",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("%s missing from exposition:\n%s", name, out)
		}
	}
	// NewMetrics wires them in by default.
	m := NewMetrics(NewRegistry())
	if !strings.Contains(renderMetrics(m.Registry()), "ofmf_go_goroutines") {
		t.Error("NewMetrics does not register runtime health metrics")
	}
}

package obsv

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRequestIDContextRoundtrip(t *testing.T) {
	if got := RequestIDFrom(context.Background()); got != "" {
		t.Errorf("empty ctx id = %q", got)
	}
	ctx := ContextWithRequestID(context.Background(), "abc123")
	if got := RequestIDFrom(ctx); got != "abc123" {
		t.Errorf("id = %q, want abc123", got)
	}
	a, b := NewRequestID(), NewRequestID()
	if a == b || len(a) != 16 {
		t.Errorf("ids not unique 16-hex: %q, %q", a, b)
	}
}

func TestLoggerInjectsRequestID(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, slog.LevelInfo)
	ctx := ContextWithRequestID(context.Background(), "deadbeef00000000")
	log.InfoContext(ctx, "hello")
	if !strings.Contains(buf.String(), "request_id=deadbeef00000000") {
		t.Errorf("log line missing request_id: %s", buf.String())
	}

	// The wrapper must survive WithAttrs re-derivation.
	buf.Reset()
	log.With("component", "test").InfoContext(ctx, "hello")
	line := buf.String()
	if !strings.Contains(line, "request_id=deadbeef00000000") || !strings.Contains(line, "component=test") {
		t.Errorf("derived logger lost request_id injection: %s", line)
	}
}

func TestMiddlewareGeneratesAndAdoptsRequestID(t *testing.T) {
	m := NewMetrics(NewRegistry())
	var buf bytes.Buffer
	log := NewLogger(&buf, slog.LevelInfo)
	var seenCtx string
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seenCtx = RequestIDFrom(r.Context())
		w.WriteHeader(http.StatusTeapot)
	}), m, log, func(string) string { return "Test" }, nil)
	srv := httptest.NewServer(h)
	defer srv.Close()

	// No client id: middleware mints one and returns it.
	resp, err := srv.Client().Get(srv.URL + "/whatever")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get(RequestIDHeader)
	if id == "" {
		t.Fatal("no X-Request-Id in response")
	}
	if seenCtx != id {
		t.Errorf("handler ctx id %q != header id %q", seenCtx, id)
	}
	if !strings.Contains(buf.String(), "request_id="+id) {
		t.Errorf("request log line missing request_id=%s:\n%s", id, buf.String())
	}

	// Client-supplied id is adopted, not replaced.
	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	req.Header.Set(RequestIDHeader, "client-chosen-id")
	resp, err = srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "client-chosen-id" {
		t.Errorf("adopted id = %q, want client-chosen-id", got)
	}
	if seenCtx != "client-chosen-id" {
		t.Errorf("ctx id = %q, want client-chosen-id", seenCtx)
	}

	// Metrics recorded both requests under the classifier's class.
	if got := m.HTTPRequests.With("GET", "Test", "418").Value(); got != 2 {
		t.Errorf("requests counter = %v, want 2", got)
	}
	if got := m.HTTPDuration.With("GET", "Test").Count(); got != 2 {
		t.Errorf("duration count = %v, want 2", got)
	}
	if got := m.HTTPInFlight.Value(); got != 0 {
		t.Errorf("in-flight = %v, want 0", got)
	}
}

// TestMiddlewarePreservesFlusher matters for SSE: the status-capturing
// wrapper must still expose http.Flusher or streams stall.
func TestMiddlewarePreservesFlusher(t *testing.T) {
	flushed := false
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Error("middleware hid http.Flusher")
			return
		}
		io.WriteString(w, "data: x\n\n")
		f.Flush()
		flushed = true
	}), nil, nil, nil, nil)
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !flushed {
		t.Error("handler never flushed")
	}
}

func TestOutcome(t *testing.T) {
	if Outcome(nil) != "ok" {
		t.Errorf("Outcome(nil) = %q", Outcome(nil))
	}
	if Outcome(io.EOF) != "error" {
		t.Errorf("Outcome(err) = %q", Outcome(io.EOF))
	}
}

package obsv

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// statusWriter captures the response status code while passing Flush
// through, so SSE streaming keeps working behind the middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Middleware instruments an HTTP handler: it assigns (or adopts) the
// request id, returns it in the X-Request-Id header, carries it through
// the request context so every downstream log line is correlated, and
// records the request in the metrics bundle under classify's bounded
// route class. A nil metrics, logger or classify falls back to no-ops.
func Middleware(next http.Handler, m *Metrics, log *slog.Logger, classify func(path string) string) http.Handler {
	if log == nil {
		log = NopLogger()
	}
	if classify == nil {
		classify = func(string) string { return "all" }
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = NewRequestID()
		}
		ctx := ContextWithRequestID(r.Context(), id)
		r = r.WithContext(ctx)
		w.Header().Set(RequestIDHeader, id)

		if m != nil {
			m.HTTPInFlight.Inc()
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)

		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		class := classify(r.URL.Path)
		if m != nil {
			m.HTTPInFlight.Dec()
			m.HTTPRequests.With(r.Method, class, strconv.Itoa(status)).Inc()
			m.HTTPDuration.With(r.Method, class).Observe(elapsed.Seconds())
		}
		log.LogAttrs(ctx, slog.LevelInfo, "http request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("class", class),
			slog.Int("status", status),
			slog.Duration("duration", elapsed),
		)
	})
}

package obsv

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// statusWriter captures the response status code while passing Flush
// through, so SSE streaming keeps working behind the middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer so http.ResponseController can
// reach optional interfaces (deadlines, flush) through the middleware.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Middleware instruments an HTTP handler: it assigns (or adopts) the
// request id, returns it in the X-Request-Id header, carries it through
// the request context so every downstream log line is correlated,
// adopts (or starts) the trace context from the traceparent header, and
// records the request in the metrics bundle under classify's bounded
// route class. A nil metrics, logger, classify or tracer falls back to
// no-ops. Accounting runs in a defer, so a panicking handler still
// decrements in-flight, records a 500-class outcome, and ends its span
// before the panic propagates to the server.
func Middleware(next http.Handler, m *Metrics, log *slog.Logger, classify func(path string) string, tracer *Tracer) http.Handler {
	if log == nil {
		log = NopLogger()
	}
	if classify == nil {
		classify = func(string) string { return "all" }
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = NewRequestID()
		}
		ctx := ContextWithRequestID(r.Context(), id)
		if sc, ok := ParseTraceparent(r.Header.Get(TraceparentHeader)); ok {
			ctx = ContextWithRemoteSpanContext(ctx, sc)
		}
		class := classify(r.URL.Path)
		ctx, span := tracer.Start(ctx, "http."+class)
		span.SetAttr("method", r.Method)
		span.SetAttr("path", r.URL.Path)
		r = r.WithContext(ctx)
		w.Header().Set(RequestIDHeader, id)

		if m != nil {
			m.HTTPInFlight.Inc()
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		panicked := true
		defer func() {
			elapsed := time.Since(start)
			status := sw.status
			if status == 0 {
				if panicked {
					status = http.StatusInternalServerError
				} else {
					status = http.StatusOK
				}
			}
			span.SetAttr("status", strconv.Itoa(status))
			span.End()
			if m != nil {
				m.HTTPInFlight.Dec()
				m.HTTPRequests.With(r.Method, class, strconv.Itoa(status)).Inc()
				m.HTTPDuration.With(r.Method, class).Observe(elapsed.Seconds())
			}
			log.LogAttrs(ctx, slog.LevelInfo, "http request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("class", class),
				slog.Int("status", status),
				slog.Duration("duration", elapsed),
				slog.Bool("panic", panicked),
			)
		}()
		next.ServeHTTP(sw, r)
		panicked = false
	})
}

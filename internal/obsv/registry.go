package obsv

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric family types as rendered in exposition output.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// DefBuckets are the default histogram bucket upper bounds, in seconds,
// spanning sub-millisecond store hits to multi-second compose operations.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// atomicFloat is a float64 updated atomically through its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(d float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

func (f *atomicFloat) Set(v float64)  { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Value() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value.
type Counter struct{ v atomicFloat }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d, which must not be negative.
func (c *Counter) Add(d float64) {
	if d < 0 {
		panic("obsv: counter decrease")
	}
	c.v.Add(d)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.Value() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.Set(v) }

// Add adds d (negative d decreases).
func (g *Gauge) Add(d float64) { g.v.Add(d) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Value() }

// Histogram counts observations into fixed cumulative buckets.
type Histogram struct {
	bounds []float64       // sorted upper bounds; +Inf is implicit
	counts []atomic.Uint64 // len(bounds)+1, last is the +Inf bucket
	sum    atomicFloat
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// series is one labelled instrument inside a family.
type series struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// family groups all series of one metric name.
type family struct {
	name    string
	help    string
	typ     string
	labels  []string
	buckets []float64 // histograms only

	mu     sync.RWMutex
	series map[string]*series
}

const labelSep = "\xff"

func (f *family) get(labelValues []string) *series {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("obsv: metric %s expects %d label values, got %d",
			f.name, len(f.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, labelSep)
	f.mu.RLock()
	sr, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return sr
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if sr, ok = f.series[key]; ok {
		return sr
	}
	sr = &series{labelValues: append([]string(nil), labelValues...)}
	switch f.typ {
	case TypeCounter:
		sr.counter = &Counter{}
	case TypeGauge:
		sr.gauge = &Gauge{}
	case TypeHistogram:
		sr.hist = newHistogram(f.buckets)
	}
	f.series[key] = sr
	return sr
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct{ fam *family }

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(labelValues ...string) *Counter { return v.fam.get(labelValues).counter }

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct{ fam *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge { return v.fam.get(labelValues).gauge }

// HistogramVec is a histogram family partitioned by labels.
type HistogramVec struct{ fam *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram { return v.fam.get(labelValues).hist }

// funcMetric is a counter or gauge family whose values are computed at
// gather time from closures — used to surface counters maintained
// elsewhere (e.g. the event bus's delivery statistics, the store's
// per-shard entry counts) without double bookkeeping. An unlabelled
// func metric is a family with one series under the empty label key.
type funcMetric struct {
	name       string
	help       string
	typ        string
	labelNames []string
	series     map[string]*funcSeries // keyed by joined label values
}

// funcSeries is one labelled gather-time sample inside a funcMetric.
type funcSeries struct {
	labelValues []string
	fn          func() float64
}

// Registry is a concurrency-safe collection of metric families.
type Registry struct {
	mu    sync.RWMutex
	fams  map[string]*family
	funcs map[string]*funcMetric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family), funcs: make(map[string]*funcMetric)}
}

func (r *Registry) register(name, help, typ string, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obsv: metric %s re-registered with different type or labels", name))
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		typ:     typ,
		labels:  append([]string(nil), labels...),
		buckets: buckets,
		series:  make(map[string]*series),
	}
	r.fams[name] = f
	return f
}

// Counter registers (or returns) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, TypeCounter, nil, nil).get(nil).counter
}

// CounterVec registers (or returns) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.register(name, help, TypeCounter, labels, nil)}
}

// Gauge registers (or returns) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, TypeGauge, nil, nil).get(nil).gauge
}

// GaugeVec registers (or returns) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.register(name, help, TypeGauge, labels, nil)}
}

// Histogram registers (or returns) an unlabelled histogram with the
// given bucket upper bounds (DefBuckets when nil).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.register(name, help, TypeHistogram, nil, buckets).get(nil).hist
}

// HistogramVec registers (or returns) a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{fam: r.register(name, help, TypeHistogram, labels, buckets)}
}

func (r *Registry) registerFunc(name, help, typ string, labelNames, labelValues []string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fm, ok := r.funcs[name]
	if !ok {
		fm = &funcMetric{
			name: name, help: help, typ: typ,
			labelNames: append([]string(nil), labelNames...),
			series:     make(map[string]*funcSeries),
		}
		r.funcs[name] = fm
	}
	if fm.typ != typ || len(fm.labelNames) != len(labelNames) {
		panic(fmt.Sprintf("obsv: func metric %s re-registered with different type or labels", name))
	}
	if len(labelValues) != len(labelNames) {
		panic(fmt.Sprintf("obsv: func metric %s expects %d label values, got %d",
			name, len(labelNames), len(labelValues)))
	}
	fm.series[strings.Join(labelValues, labelSep)] = &funcSeries{
		labelValues: append([]string(nil), labelValues...), fn: fn,
	}
}

// CounterFunc registers a counter whose value is read from fn at gather
// time. Re-registering the same name replaces the function, so wiring a
// fresh service onto a shared registry stays safe.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.registerFunc(name, help, TypeCounter, nil, nil, fn)
}

// GaugeFunc registers a gauge whose value is read from fn at gather time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.registerFunc(name, help, TypeGauge, nil, nil, fn)
}

// LabeledGaugeFunc registers one series of a labelled gauge family whose
// value is read from fn at gather time. Every registration for a name
// must agree on labelNames; re-registering the same label values
// replaces that series' function.
func (r *Registry) LabeledGaugeFunc(name, help string, labelNames, labelValues []string, fn func() float64) {
	r.registerFunc(name, help, TypeGauge, labelNames, labelValues, fn)
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	UpperBound float64 // +Inf for the last bucket
	Count      uint64  // cumulative
}

// Sample is one series' state in a snapshot.
type Sample struct {
	LabelValues []string
	Value       float64  // counter and gauge
	Buckets     []Bucket // histogram
	Sum         float64  // histogram
	Count       uint64   // histogram
}

// Family is one metric family's state in a snapshot.
type Family struct {
	Name       string
	Help       string
	Type       string
	LabelNames []string
	Samples    []Sample
}

// Gather snapshots every family, sorted by name, with samples sorted by
// label values — the deterministic order exposition and the
// SelfCollector render from.
func (r *Registry) Gather() []Family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	// Snapshot func-metric series under the lock (LabeledGaugeFunc may
	// add series concurrently); the closures run after it is released.
	type funcSnap struct {
		name, help, typ string
		labelNames      []string
		series          []*funcSeries
	}
	funcs := make([]funcSnap, 0, len(r.funcs))
	for _, fm := range r.funcs {
		fs := funcSnap{name: fm.name, help: fm.help, typ: fm.typ, labelNames: fm.labelNames}
		fs.series = make([]*funcSeries, 0, len(fm.series))
		for _, sr := range fm.series {
			fs.series = append(fs.series, sr)
		}
		funcs = append(funcs, fs)
	}
	r.mu.RUnlock()

	out := make([]Family, 0, len(fams)+len(funcs))
	for _, f := range fams {
		f.mu.RLock()
		fam := Family{
			Name:       f.name,
			Help:       f.help,
			Type:       f.typ,
			LabelNames: f.labels,
			Samples:    make([]Sample, 0, len(f.series)),
		}
		for _, sr := range f.series {
			s := Sample{LabelValues: sr.labelValues}
			switch f.typ {
			case TypeCounter:
				s.Value = sr.counter.Value()
			case TypeGauge:
				s.Value = sr.gauge.Value()
			case TypeHistogram:
				h := sr.hist
				s.Sum = h.Sum()
				s.Count = h.Count()
				var cum uint64
				s.Buckets = make([]Bucket, 0, len(h.bounds)+1)
				for i, b := range h.bounds {
					cum += h.counts[i].Load()
					s.Buckets = append(s.Buckets, Bucket{UpperBound: b, Count: cum})
				}
				cum += h.counts[len(h.bounds)].Load()
				s.Buckets = append(s.Buckets, Bucket{UpperBound: math.Inf(1), Count: cum})
			}
			fam.Samples = append(fam.Samples, s)
		}
		f.mu.RUnlock()
		sort.Slice(fam.Samples, func(i, j int) bool {
			return strings.Join(fam.Samples[i].LabelValues, labelSep) <
				strings.Join(fam.Samples[j].LabelValues, labelSep)
		})
		out = append(out, fam)
	}
	for _, fm := range funcs {
		fam := Family{
			Name:       fm.name,
			Help:       fm.help,
			Type:       fm.typ,
			LabelNames: fm.labelNames,
			Samples:    make([]Sample, 0, len(fm.series)),
		}
		for _, sr := range fm.series {
			fam.Samples = append(fam.Samples, Sample{LabelValues: sr.labelValues, Value: sr.fn()})
		}
		sort.Slice(fam.Samples, func(i, j int) bool {
			return strings.Join(fam.Samples[i].LabelValues, labelSep) <
				strings.Join(fam.Samples[j].LabelValues, labelSep)
		})
		out = append(out, fam)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

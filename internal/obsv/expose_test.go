package obsv

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestExposeGolden pins the exposition output byte for byte: HELP/TYPE
// lines, family and sample ordering, label escaping, histogram bucket
// cumulation and the +Inf bucket.
func TestExposeGolden(t *testing.T) {
	r := NewRegistry()

	c := r.CounterVec("app_requests_total", "Requests served.", "method", "path")
	c.With("GET", `/x"y\z`).Add(3)
	c.With("POST", "line\nbreak").Inc()

	r.Gauge("app_in_flight", "In-flight requests.").Set(2.5)

	h := r.Histogram("app_latency_seconds", "Request latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	want := strings.Join([]string{
		`# HELP app_in_flight In-flight requests.`,
		`# TYPE app_in_flight gauge`,
		`app_in_flight 2.5`,
		`# HELP app_latency_seconds Request latency.`,
		`# TYPE app_latency_seconds histogram`,
		`app_latency_seconds_bucket{le="0.1"} 1`,
		`app_latency_seconds_bucket{le="1"} 2`,
		`app_latency_seconds_bucket{le="+Inf"} 3`,
		`app_latency_seconds_sum 5.55`,
		`app_latency_seconds_count 3`,
		`# HELP app_requests_total Requests served.`,
		`# TYPE app_requests_total counter`,
		`app_requests_total{method="GET",path="/x\"y\\z"} 3`,
		`app_requests_total{method="POST",path="line\nbreak"} 1`,
		``,
	}, "\n")
	if got := r.Expose(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("one_total", "one").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != ContentType {
		t.Errorf("Content-Type = %q, want %q", got, ContentType)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "one_total 1") {
		t.Errorf("body missing sample:\n%s", body)
	}
}

// TestConcurrentScrape exercises scrapes racing increments; run with
// -race this proves the registry's synchronization.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("ops_total", "ops", "worker")
	hist := r.HistogramVec("op_seconds", "latency", nil, "worker")

	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			label := string(rune('a' + id))
			for i := 0; i < perWorker; i++ {
				vec.With(label).Inc()
				hist.With(label).Observe(float64(i) / 1000)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				_ = r.Expose()
			}
		}
	}()
	wg.Wait()
	close(done)

	var total float64
	for _, s := range r.Gather()[1].Samples { // ops_total sorts after op_seconds
		total += s.Value
	}
	if total != workers*perWorker {
		t.Errorf("total = %v, want %d", total, workers*perWorker)
	}
}

package obsv

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// RequestIDHeader is the HTTP header carrying the request id. An id sent
// by the client (or an upstream OFMF forwarding to an agent) is adopted,
// so one compose request keeps one id across process boundaries; the
// response always echoes the id back.
const RequestIDHeader = "X-Request-Id"

type ctxKey struct{}

// reqSeq backs the fallback id source when crypto/rand fails.
var reqSeq atomic.Uint64

// NewRequestID returns a fresh 16-hex-character request id.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%016x", reqSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// ContextWithRequestID attaches a request id to the context.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// RequestIDFrom returns the request id carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}

package store

import (
	"encoding/json"
	"testing"

	"ofmf/internal/odata"
)

// FuzzPatch exercises the deep-merge PATCH path with arbitrary JSON
// documents and patches: no panics, and the result must remain a valid
// JSON object that still satisfies the merge laws (idempotence).
func FuzzPatch(f *testing.F) {
	f.Add(`{"A":1,"B":{"C":"x"}}`, `{"B":{"C":"y"},"D":[1,2]}`)
	f.Add(`{"Status":{"State":"Enabled"}}`, `{"Status":{"Health":"OK"}}`)
	f.Add(`{"A":1}`, `{"A":null}`)
	f.Add(`{}`, `{"deep":{"deeper":{"deepest":true}}}`)
	f.Add(`{"x":[{"y":1}]}`, `{"x":[{"y":2},{"z":3}]}`)
	f.Fuzz(func(t *testing.T, docJSON, patchJSON string) {
		var doc, patch map[string]any
		if err := json.Unmarshal([]byte(docJSON), &doc); err != nil || doc == nil {
			return
		}
		if err := json.Unmarshal([]byte(patchJSON), &patch); err != nil || patch == nil {
			return
		}
		s := New()
		id := odata.ID("/fuzz/doc")
		if err := s.Put(id, doc); err != nil {
			return // non-object top levels rejected by design
		}
		if err := s.Patch(id, patch, ""); err != nil {
			t.Fatalf("patch failed: %v", err)
		}
		etag1, _ := s.Etag(id)
		// Idempotence: applying the same patch again changes nothing.
		if err := s.Patch(id, patch, ""); err != nil {
			t.Fatalf("re-patch failed: %v", err)
		}
		etag2, _ := s.Etag(id)
		if etag1 != etag2 {
			t.Fatalf("patch not idempotent: %s vs %s", etag1, etag2)
		}
		// The stored document is still valid JSON.
		raw, _, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]any
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("corrupt document: %v", err)
		}
	})
}

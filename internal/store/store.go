// Package store implements the OFMF's central resource repository: a
// concurrent, URI-keyed tree of Redfish resources with collections, entity
// tags, deep-merge PATCH semantics, subtree aggregation for Agents, change
// notification hooks, and JSON import/export.
//
// Resources are stored as canonical JSON so the repository is agnostic to
// the Go schema types; handlers and agents exchange typed structs which
// are marshaled at the boundary.
//
// The package is layered: engine.go holds the pure in-memory engine
// (entry map, children index, collection cache, ETags); shard.go routes
// ids to one of N independent engine+lock shards by top-level URI
// segment; this file owns locking, change notification, and the public
// API; record.go defines the mutation-log seam — every committed
// mutation reduces to canonical put/delete Records stamped with a global
// commit sequence and handed to an optional Backend. With no backend
// attached (the zero-config default) the seam costs one nil check per
// mutation and nothing on reads. The file-based write-ahead-log backend
// lives in the store/persist subpackage.
//
// Sharding: single-resource operations touch only the owning shard's
// lock, so writers to different top-level subtrees (Fabrics vs Systems)
// never contend. Operations whose prefix spans shards — PutSubtree at
// the service root, admin restore, Export/Snapshot — use an ordered
// multi-shard commit: every shard lock is acquired in ascending index
// order, so readers observe the whole mutation or none of it, and the
// global sequence numbers assigned under the locks let recovery merge
// the per-shard logs back into one total order.
package store

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"ofmf/internal/obsv"
	"ofmf/internal/odata"
)

// Sentinel errors returned by store operations.
var (
	ErrNotFound      = errors.New("store: resource not found")
	ErrExists        = errors.New("store: resource already exists")
	ErrNotCollection = errors.New("store: not a collection")
	ErrEtagMismatch  = errors.New("store: etag mismatch")
	ErrBadPayload    = errors.New("store: payload not a JSON object")
)

// ChangeKind identifies the kind of mutation a change event describes.
type ChangeKind int

// Change kinds.
const (
	Added ChangeKind = iota
	Updated
	Removed
)

// String returns the change kind's Redfish event type name.
func (k ChangeKind) String() string {
	switch k {
	case Added:
		return "ResourceAdded"
	case Updated:
		return "ResourceUpdated"
	case Removed:
		return "ResourceRemoved"
	default:
		return fmt.Sprintf("ChangeKind(%d)", int(k))
	}
}

// Change describes one mutation of the tree. Ctx is the request
// context the mutation was performed under (context.Background() for
// mutations with no originating request); watchers that fan the change
// out over further HTTP edges use it to keep event delivery in the
// originating trace. Watchers must not use Ctx for cancellation — it
// may already be done by the time an asynchronous consumer runs.
//
// Seq is the store's mutation sequence number, assigned while the
// mutated shard's write lock is held. Unlike the WAL commit sequence it
// always advances, backend or not. Because notification runs after the
// lock is released, two watchers can observe changes to the same URI in
// either order — but their Seq values always reflect commit order, so a
// watcher keeping derived per-URI state can discard the stale one (the
// liveness sweeper's delete/recreate handling depends on this).
type Change struct {
	Kind ChangeKind
	ID   odata.ID
	Seq  uint64
	Ctx  context.Context
}

// Watcher receives change notifications. Watchers are invoked synchronously
// after the store's lock is released; implementations that do slow work
// must enqueue internally.
type Watcher func(Change)

// Store is a concurrent Redfish resource tree: N independent engine
// shards each behind their own read-write lock, plus the optional
// durability backend every committed mutation is logged to.
type Store struct {
	shards []*shard

	// seq is the global commit sequence number of the last mutation
	// record handed to the backend. It is assigned while the mutating
	// shard's write lock is held, so each shard's log stream is
	// sequence-ascending and merging all streams by Seq reconstructs the
	// total commit order. It advances only while a backend is attached.
	seq atomic.Uint64

	// mutSeq numbers every committed mutation for change notification
	// (see Change.Seq). Assigned under the mutated shard's write lock
	// like seq, but independent of it: mutSeq advances with no backend
	// attached and is not persisted.
	mutSeq atomic.Uint64

	// epoch is the replication leadership term stamped into committed
	// records (see SetEpoch); 0 when the store is not replicated.
	epoch atomic.Uint64

	// backend and sharded are written only while every shard lock is
	// held (AttachBackend/Close) and read under at least one shard lock.
	// sharded is backend when it routes per shard (see ShardedBackend)
	// with a matching shard count, nil otherwise.
	backend Backend
	sharded ShardedBackend
	// appendMu serializes sequence stamping and Append for legacy
	// single-stream backends, so their one log stays in global commit
	// order even when writers on different shards race. Always acquired
	// after shard locks, never before.
	appendMu sync.Mutex

	watchMu  sync.RWMutex
	watchers []Watcher

	// opHook holds an OpHook observing operation counts (atomic.Value so
	// hot read paths never contend on a lock for it).
	opHook atomic.Value

	// lockWait holds a LockWaitHook observing write-lock acquisition
	// waits (atomic for the same reason as opHook).
	lockWait atomic.Value

	// tracer, when set, records mutation spans for requests that already
	// belong to a trace (atomic for the same reason as opHook).
	tracer atomic.Pointer[obsv.Tracer]
}

// OpHook observes one store operation by kind: "get", "view", "etag",
// "put", "put_subtree", "create", "patch", "delete", "delete_subtree",
// "members", "collection" (cache miss, payload built) or
// "collection_cached" (served from the memoized payload). shard is the
// index of the shard the operation touched, or -1 for operations that
// touch every shard (spanning subtree ops, export, snapshot). Hooks
// must be fast and must not call back into the store.
type OpHook func(op string, shard int)

// OpNames lists every op string the hook can receive, so observers can
// pre-resolve per-op state (label sets, counters) instead of allocating
// on the hot path.
var OpNames = []string{
	"get", "view", "etag", "put", "put_subtree", "create", "patch",
	"delete", "delete_subtree", "members", "collection", "collection_cached",
}

// SetOpHook installs the operation observer, replacing any previous one.
func (s *Store) SetOpHook(h OpHook) { s.opHook.Store(h) }

// SetTracer installs the tracer mutation spans are recorded on.
// Mutations only start spans when their context already carries a trace
// (see Tracer.StartIfTraced), so recovery replay and background writes
// never mint orphan traces.
func (s *Store) SetTracer(t *obsv.Tracer) { s.tracer.Store(t) }

// traceStart opens a mutation span when ctx belongs to a trace and a
// tracer is installed; it returns nil (a no-op span) otherwise.
func (s *Store) traceStart(ctx context.Context, name string) *obsv.Span {
	t := s.tracer.Load()
	if t == nil {
		return nil
	}
	_, sp := t.StartIfTraced(ctx, name)
	return sp
}

// waitDurableTraced is waitDurable with the group-commit wait recorded
// as a wal.commit child span, separating time spent waiting on
// durability from the in-memory mutation around it.
func waitDurableTraced(sp *obsv.Span, wait func() error) error {
	if wait == nil {
		return nil
	}
	c := sp.StartChild("wal.commit")
	err := waitDurable(wait)
	c.EndErr(err)
	return err
}

func (s *Store) countOp(op string, shard int) {
	if h, ok := s.opHook.Load().(OpHook); ok && h != nil {
		h(op, shard)
	}
}

// New creates an empty store with no backend: purely in-memory. The
// shard count defaults to 1 unless the OFMF_STORE_SHARDS environment
// variable overrides it (the CI race matrix uses this to drive the
// whole suite at shards>1).
func New() *Store {
	return NewSharded(0)
}

// NewSharded creates an empty store partitioned into n shards. n <= 0
// selects the environment default (see New); the count is capped at
// maxShards.
func NewSharded(n int) *Store {
	if n <= 0 {
		n = envShards()
	}
	if n > maxShards {
		n = maxShards
	}
	s := &Store{shards: make([]*shard, n)}
	for i := range s.shards {
		s.shards[i] = &shard{eng: newEngine()}
	}
	return s
}

// Watch registers a change watcher. All subsequent mutations are reported.
func (s *Store) Watch(w Watcher) {
	s.watchMu.Lock()
	s.watchers = append(s.watchers, w)
	s.watchMu.Unlock()
}

func (s *Store) notify(changes ...Change) {
	s.watchMu.RLock()
	ws := s.watchers
	s.watchMu.RUnlock()
	for _, c := range changes {
		for _, w := range ws {
			w(c)
		}
	}
}

func canonicalize(v any) (json.RawMessage, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("store: marshal: %w", err)
	}
	if len(b) == 0 || b[0] != '{' {
		return nil, ErrBadPayload
	}
	return b, nil
}

// Put creates or replaces the resource at id with the JSON serialization of
// v, which must marshal to a JSON object. Rewriting identical content does
// not notify watchers (and skips re-hashing: the existing entry is kept).
func (s *Store) Put(id odata.ID, v any) error {
	return s.PutCtx(context.Background(), id, v)
}

// PutCtx is Put carrying the originating request context: when ctx
// belongs to a trace the mutation is recorded as a store.put span (with
// a wal.commit child for the durability wait), and the emitted Change
// carries ctx so downstream event delivery stays in the same trace.
func (s *Store) PutCtx(ctx context.Context, id odata.ID, v any) error {
	si := s.shardIndex(id)
	s.countOp("put", si)
	sp := s.traceStart(ctx, "store.put")
	raw, err := canonicalize(v)
	if err != nil {
		sp.EndErr(err)
		return err
	}
	sh := s.lockShard(si)
	kind, changed := sh.eng.put(id, raw)
	var wait func() error
	var cs uint64
	if changed {
		cs = s.mutSeq.Add(1)
		wait = s.commitShardLocked(si, []Record{{Op: OpPut, ID: id, Raw: raw}})
	}
	sh.mu.Unlock()
	if !changed {
		sp.End()
		return nil
	}
	werr := waitDurableTraced(sp, wait)
	sp.EndErr(werr)
	s.notify(Change{Kind: kind, ID: id, Seq: cs, Ctx: ctx})
	return werr
}

// Create stores v at id and fails with ErrExists if the id is taken.
func (s *Store) Create(id odata.ID, v any) error {
	return s.CreateCtx(context.Background(), id, v)
}

// CreateCtx is Create carrying the originating request context; see
// PutCtx for the tracing and change-attribution semantics.
func (s *Store) CreateCtx(ctx context.Context, id odata.ID, v any) error {
	si := s.shardIndex(id)
	s.countOp("create", si)
	sp := s.traceStart(ctx, "store.create")
	raw, err := canonicalize(v)
	if err != nil {
		sp.EndErr(err)
		return err
	}
	sh := s.lockShard(si)
	if _, ok := sh.eng.entries[id]; ok {
		sh.mu.Unlock()
		err := fmt.Errorf("%w: %s", ErrExists, id)
		sp.EndErr(err)
		return err
	}
	sh.eng.put(id, raw)
	cs := s.mutSeq.Add(1)
	wait := s.commitShardLocked(si, []Record{{Op: OpPut, ID: id, Raw: raw}})
	sh.mu.Unlock()

	werr := waitDurableTraced(sp, wait)
	sp.EndErr(werr)
	s.notify(Change{Kind: Added, ID: id, Seq: cs, Ctx: ctx})
	return werr
}

// Get returns a copy of the raw JSON and the entity tag of the resource at
// id. The returned slice is never aliased to store internals.
func (s *Store) Get(id odata.ID) (json.RawMessage, string, error) {
	si := s.shardIndex(id)
	s.countOp("get", si)
	sh := s.shards[si]
	sh.mu.RLock()
	e, ok := sh.eng.entries[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, "", fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	out := make(json.RawMessage, len(e.raw))
	copy(out, e.raw)
	return out, e.etag, nil
}

// View invokes fn with the raw JSON of the resource at id without
// copying. fn runs under the owning shard's read lock and must not
// retain or mutate the slice. It is the zero-copy alternative to Get
// for hot read paths (see BenchmarkAblationStoreRead).
func (s *Store) View(id odata.ID, fn func(raw json.RawMessage, etag string)) error {
	si := s.shardIndex(id)
	s.countOp("view", si)
	sh := s.shards[si]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.eng.entries[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	fn(e.raw, e.etag)
	return nil
}

// GetAs decodes the resource at id into out.
func (s *Store) GetAs(id odata.ID, out any) error {
	raw, _, err := s.Get(id)
	if err != nil {
		return err
	}
	return json.Unmarshal(raw, out)
}

// Etag returns the entity tag of the resource at id.
func (s *Store) Etag(id odata.ID) (string, error) {
	si := s.shardIndex(id)
	s.countOp("etag", si)
	sh := s.shards[si]
	sh.mu.RLock()
	e, ok := sh.eng.entries[id]
	sh.mu.RUnlock()
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return e.etag, nil
}

// Exists reports whether a resource (not a collection) is stored at id.
func (s *Store) Exists(id odata.ID) bool {
	sh := s.shards[s.shardIndex(id)]
	sh.mu.RLock()
	_, ok := sh.eng.entries[id]
	sh.mu.RUnlock()
	return ok
}

// Patch deep-merges patch into the resource at id. Nested objects are
// merged recursively; arrays and scalars are replaced; explicit JSON nulls
// delete the member, per Redfish PATCH semantics. If ifMatch is non-empty
// it must equal the current entity tag.
//
// The mutation is logged as the put of its merged post-state, so replay
// needs no knowledge of merge semantics.
func (s *Store) Patch(id odata.ID, patch map[string]any, ifMatch string) error {
	return s.PatchCtx(context.Background(), id, patch, ifMatch)
}

// PatchCtx is Patch carrying the originating request context; see
// PutCtx for the tracing and change-attribution semantics.
func (s *Store) PatchCtx(ctx context.Context, id odata.ID, patch map[string]any, ifMatch string) error {
	si := s.shardIndex(id)
	s.countOp("patch", si)
	sp := s.traceStart(ctx, "store.patch")
	sh := s.lockShard(si)
	e, ok := sh.eng.entries[id]
	if !ok {
		sh.mu.Unlock()
		err := fmt.Errorf("%w: %s", ErrNotFound, id)
		sp.EndErr(err)
		return err
	}
	if ifMatch != "" && ifMatch != e.etag {
		sh.mu.Unlock()
		err := fmt.Errorf("%w: %s", ErrEtagMismatch, id)
		sp.EndErr(err)
		return err
	}
	var current map[string]any
	if err := json.Unmarshal(e.raw, &current); err != nil {
		sh.mu.Unlock()
		err = fmt.Errorf("store: corrupt entry %s: %w", id, err)
		sp.EndErr(err)
		return err
	}
	merge(current, patch)
	raw, err := canonicalize(current)
	if err != nil {
		sh.mu.Unlock()
		sp.EndErr(err)
		return err
	}
	_, changed := sh.eng.put(id, raw)
	var wait func() error
	var cs uint64
	if changed {
		cs = s.mutSeq.Add(1)
		wait = s.commitShardLocked(si, []Record{{Op: OpPut, ID: id, Raw: raw}})
	}
	sh.mu.Unlock()

	if !changed {
		sp.End()
		return nil
	}
	werr := waitDurableTraced(sp, wait)
	sp.EndErr(werr)
	s.notify(Change{Kind: Updated, ID: id, Seq: cs, Ctx: ctx})
	return werr
}

// merge applies Redfish PATCH semantics: objects merge recursively, null
// deletes, everything else replaces.
func merge(dst, patch map[string]any) {
	for k, v := range patch {
		if v == nil {
			delete(dst, k)
			continue
		}
		pv, pok := v.(map[string]any)
		dv, dok := dst[k].(map[string]any)
		if pok && dok {
			merge(dv, pv)
			continue
		}
		dst[k] = v
	}
}

// Delete removes the resource at id.
func (s *Store) Delete(id odata.ID) error {
	return s.DeleteCtx(context.Background(), id)
}

// DeleteCtx is Delete carrying the originating request context; see
// PutCtx for the tracing and change-attribution semantics.
func (s *Store) DeleteCtx(ctx context.Context, id odata.ID) error {
	si := s.shardIndex(id)
	s.countOp("delete", si)
	sp := s.traceStart(ctx, "store.delete")
	sh := s.lockShard(si)
	if !sh.eng.remove(id) {
		sh.mu.Unlock()
		err := fmt.Errorf("%w: %s", ErrNotFound, id)
		sp.EndErr(err)
		return err
	}
	cs := s.mutSeq.Add(1)
	wait := s.commitShardLocked(si, []Record{{Op: OpDelete, ID: id}})
	sh.mu.Unlock()

	werr := waitDurableTraced(sp, wait)
	sp.EndErr(werr)
	s.notify(Change{Kind: Removed, ID: id, Seq: cs, Ctx: ctx})
	return werr
}

// RegisterCollection declares a collection at id with the given
// @odata.type and display name. Collection payloads are synthesized from
// the direct children present in the store and memoized until the
// membership changes. Registrations are service configuration, not tree
// state: they are not logged or exported, and the service re-declares
// them at every boot before recovery runs. A collection and its members
// always share a shard (both route on the collection's URI segment).
func (s *Store) RegisterCollection(id odata.ID, odataType, name string) {
	sh := s.shards[s.shardIndex(id)]
	sh.mu.Lock()
	sh.eng.collections[id] = collectionMeta{odataType: odataType, name: name}
	sh.eng.invalidateCollection(id)
	sh.mu.Unlock()
}

// IsCollection reports whether id names a registered collection.
func (s *Store) IsCollection(id odata.ID) bool {
	sh := s.shards[s.shardIndex(id)]
	sh.mu.RLock()
	_, ok := sh.eng.collections[id]
	sh.mu.RUnlock()
	return ok
}

// collectionFor returns the collection's metadata and memoized rendering,
// building and publishing the cache on a miss. hit reports whether the
// rendering was served from the cache. The returned collCache is
// immutable; callers may use it after the lock is released.
func (s *Store) collectionFor(id odata.ID) (collectionMeta, *collCache, int, bool, error) {
	si := s.shardIndex(id)
	sh := s.shards[si]
	sh.mu.RLock()
	meta, ok := sh.eng.collections[id]
	if !ok {
		sh.mu.RUnlock()
		return collectionMeta{}, nil, si, false, fmt.Errorf("%w: %s", ErrNotCollection, id)
	}
	c := sh.eng.collCache[id]
	sh.mu.RUnlock()
	if c != nil {
		return meta, c, si, true, nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if c = sh.eng.collCache[id]; c != nil {
		return meta, c, si, true, nil
	}
	members := sh.eng.members(id)
	payload, err := json.Marshal(odata.Collection{
		ODataID:   id,
		ODataType: meta.odataType,
		Name:      meta.name,
		Count:     len(members),
		Members:   odata.RefSlice(members),
	})
	if err != nil {
		return meta, nil, si, false, fmt.Errorf("store: collection %s: %w", id, err)
	}
	c = &collCache{members: members, payload: payload, etag: odata.EtagRaw(payload)}
	sh.eng.collCache[id] = c
	return meta, c, si, false, nil
}

func (s *Store) countCollection(shard int, hit bool) {
	if hit {
		s.countOp("collection_cached", shard)
	} else {
		s.countOp("collection", shard)
	}
}

// Collection synthesizes the collection payload at id from its current
// members, serving the memoized member list when it is still valid.
func (s *Store) Collection(id odata.ID) (odata.Collection, error) {
	meta, c, si, hit, err := s.collectionFor(id)
	if err != nil {
		return odata.Collection{}, err
	}
	s.countCollection(si, hit)
	return odata.Collection{
		ODataID:   id,
		ODataType: meta.odataType,
		Name:      meta.name,
		Count:     len(c.members),
		Members:   odata.RefSlice(c.members),
	}, nil
}

// CollectionView invokes fn with the memoized serialized payload and
// entity tag of the collection at id, building them on first use. The
// payload is immutable shared state: fn must not modify it, but may
// retain it (an invalidation publishes a fresh slice rather than
// mutating). This is the zero-copy fast path collection GETs are served
// from.
func (s *Store) CollectionView(id odata.ID, fn func(payload []byte, etag string)) error {
	_, c, si, hit, err := s.collectionFor(id)
	if err != nil {
		return err
	}
	s.countCollection(si, hit)
	fn(c.payload, c.etag)
	return nil
}

// Members returns the sorted direct members of the collection at id.
func (s *Store) Members(id odata.ID) ([]odata.ID, error) {
	_, c, si, _, err := s.collectionFor(id)
	if err != nil {
		return nil, err
	}
	s.countOp("members", si)
	out := make([]odata.ID, len(c.members))
	copy(out, c.members)
	return out, nil
}

// NextID returns the next unused positive integer name for a direct child
// of the collection, as a string. Allocation is monotonic: a per-
// collection high-water mark makes it O(1) amortized, and names are not
// reused after deletion, so a released URI can never alias a later
// resource.
func (s *Store) NextID(collection odata.ID) string {
	sh := s.shards[s.shardIndex(collection)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.eng.nextID(collection)
}

// IDs returns every stored resource identifier, sorted.
func (s *Store) IDs() []odata.ID {
	s.rlockAll()
	var ids []odata.ID
	for _, sh := range s.shards {
		for id := range sh.eng.entries {
			ids = append(ids, id)
		}
	}
	s.runlockAll()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Len returns the number of stored resources.
func (s *Store) Len() int {
	s.rlockAll()
	n := 0
	for _, sh := range s.shards {
		n += len(sh.eng.entries)
	}
	s.runlockAll()
	return n
}

// PutSubtree atomically installs a set of resources, all of which must lie
// under prefix. It is the aggregation primitive used when an Agent
// publishes or refreshes its resource subtree: existing resources under
// prefix that are absent from resources are removed, except those under a
// keep prefix — these are owned by another writer (the OFMF stores the
// Zone and Connection resources it creates on the agent's behalf) and
// survive refreshes untouched.
//
// The whole refresh is logged as one batch — the deletions and puts it
// actually performed, in that order — so a replayed log reproduces the
// refresh exactly without knowing the keep semantics.
//
// A prefix below the service root pins the refresh to one shard; a
// prefix at or above it (the admin restore path) commits across every
// shard at once, holding all locks in order so concurrent readers see
// the whole replacement or none of it.
func (s *Store) PutSubtree(prefix odata.ID, resources map[odata.ID]any, keep ...odata.ID) error {
	return s.PutSubtreeCtx(context.Background(), prefix, resources, keep...)
}

// PutSubtreeCtx is PutSubtree carrying the originating request context;
// see PutCtx for the tracing and change-attribution semantics.
func (s *Store) PutSubtreeCtx(ctx context.Context, prefix odata.ID, resources map[odata.ID]any, keep ...odata.ID) error {
	multi := len(s.shards) > 1 && spansShards(prefix)
	si := -1
	if !multi {
		si = s.shardIndex(prefix)
	}
	s.countOp("put_subtree", si)
	sp := s.traceStart(ctx, "store.put_subtree")
	// Serialize outside the lock; entity tags are computed lazily below,
	// only for payloads that actually changed — an agent heartbeat that
	// republishes an unchanged snapshot costs one marshal and one byte
	// compare per resource, nothing more.
	prepared := make(map[odata.ID]json.RawMessage, len(resources))
	for id, v := range resources {
		if !id.Under(prefix) {
			err := fmt.Errorf("store: %s outside subtree %s", id, prefix)
			sp.EndErr(err)
			return err
		}
		raw, err := canonicalize(v)
		if err != nil {
			err = fmt.Errorf("store: subtree %s: %w", id, err)
			sp.EndErr(err)
			return err
		}
		prepared[id] = raw
	}

	kept := func(id odata.ID) bool {
		for _, k := range keep {
			if id.Under(k) {
				return true
			}
		}
		return false
	}
	var changes []Change
	var batch []Record
	if multi {
		s.lockAll()
	} else {
		s.lockShard(si)
	}
	logging := s.backend != nil
	// Remove stale descendants, walking only the prefix's subtree via the
	// children index — the rest of the store is never touched. When the
	// prefix spans shards the walk is the union of every shard's subtree.
	var stale []odata.ID
	if multi {
		for _, sh := range s.shards {
			stale = sh.eng.descendants(prefix, stale)
		}
	} else {
		stale = s.shards[si].eng.descendants(prefix, nil)
	}
	for _, id := range stale {
		if kept(id) {
			continue
		}
		if _, present := prepared[id]; !present {
			s.engFor(multi, si, id).remove(id)
			changes = append(changes, Change{Kind: Removed, ID: id, Seq: s.mutSeq.Add(1), Ctx: ctx})
			if logging {
				batch = append(batch, Record{Op: OpDelete, ID: id})
			}
		}
	}
	for id, raw := range prepared {
		kind, changed := s.engFor(multi, si, id).put(id, raw)
		if !changed {
			continue
		}
		changes = append(changes, Change{Kind: kind, ID: id, Seq: s.mutSeq.Add(1), Ctx: ctx})
		if logging {
			batch = append(batch, Record{Op: OpPut, ID: id, Raw: raw})
		}
	}
	var wait func() error
	if multi {
		wait = s.commitMultiLocked(batch)
		s.unlockAll()
	} else {
		wait = s.commitShardLocked(si, batch)
		s.shards[si].mu.Unlock()
	}

	werr := waitDurableTraced(sp, wait)
	sp.EndErr(werr)
	sort.Slice(changes, func(i, j int) bool { return changes[i].ID < changes[j].ID })
	s.notify(changes...)
	return werr
}

// engFor returns the engine owning id: the routed shard for a spanning
// operation (all locks held), the pinned shard otherwise.
func (s *Store) engFor(multi bool, si int, id odata.ID) *engine {
	if multi {
		return &s.shards[s.shardIndex(id)].eng
	}
	return &s.shards[si].eng
}

// DeleteSubtree removes every resource under prefix (inclusive) and
// returns how many were removed. Like PutSubtree it walks only the
// affected subtree via the children index. A non-nil error means the
// in-memory removal happened but its log records did not reach durable
// storage, same as every other mutation.
func (s *Store) DeleteSubtree(prefix odata.ID) (int, error) {
	return s.DeleteSubtreeCtx(context.Background(), prefix)
}

// DeleteSubtreeCtx is DeleteSubtree carrying the originating request
// context; see PutCtx for the tracing and change-attribution semantics.
func (s *Store) DeleteSubtreeCtx(ctx context.Context, prefix odata.ID) (int, error) {
	multi := len(s.shards) > 1 && spansShards(prefix)
	si := -1
	if !multi {
		si = s.shardIndex(prefix)
	}
	s.countOp("delete_subtree", si)
	sp := s.traceStart(ctx, "store.delete_subtree")
	if multi {
		s.lockAll()
	} else {
		s.lockShard(si)
	}
	var ids []odata.ID
	if multi {
		for _, sh := range s.shards {
			ids = sh.eng.descendants(prefix, ids)
		}
	} else {
		ids = s.shards[si].eng.descendants(prefix, nil)
	}
	changes := make([]Change, 0, len(ids))
	var batch []Record
	logging := s.backend != nil
	for _, id := range ids {
		s.engFor(multi, si, id).remove(id)
		changes = append(changes, Change{Kind: Removed, ID: id, Seq: s.mutSeq.Add(1), Ctx: ctx})
		if logging {
			batch = append(batch, Record{Op: OpDelete, ID: id})
		}
	}
	var wait func() error
	if multi {
		wait = s.commitMultiLocked(batch)
		s.unlockAll()
	} else {
		wait = s.commitShardLocked(si, batch)
		s.shards[si].mu.Unlock()
	}
	werr := waitDurableTraced(sp, wait)
	sp.EndErr(werr)
	sort.Slice(changes, func(i, j int) bool { return changes[i].ID < changes[j].ID })
	s.notify(changes...)
	return len(changes), werr
}

// exportAllLocked serializes the whole tree keyed by URI. Callers hold
// at least the read lock on every shard.
func (s *Store) exportAllLocked() ([]byte, error) {
	n := 0
	for _, sh := range s.shards {
		n += len(sh.eng.entries)
	}
	snapshot := make(map[string]json.RawMessage, n)
	for _, sh := range s.shards {
		for id, e := range sh.eng.entries {
			snapshot[string(id)] = e.raw
		}
	}
	return json.MarshalIndent(snapshot, "", "  ")
}

// Export serializes the whole tree (resources only; collections are
// declared by the service) to indented JSON keyed by URI.
func (s *Store) Export() ([]byte, error) {
	s.rlockAll()
	defer s.runlockAll()
	return s.exportAllLocked()
}

// Snapshot returns a consistent export of the tree together with the
// commit sequence number of the last mutation it contains. Because
// mutations hold their shard's write lock while sequence numbers are
// assigned and records are handed to the backend, holding every shard's
// read lock makes the pair an exact cut of the merged log: every record
// with Seq <= seq is reflected in the export, none with Seq > seq is.
// The persistence layer builds its compacted snapshots from it.
func (s *Store) Snapshot() (data []byte, seq uint64, err error) {
	s.rlockAll()
	defer s.runlockAll()
	data, err = s.exportAllLocked()
	return data, s.seq.Load(), err
}

// Import loads resources previously produced by Export, replacing any
// entries at the same ids. Each resource flows through Put, so the
// children index, collection caches, and NextID high-water marks are
// rebuilt exactly as live mutations would have built them (recovery
// depends on this; see TestImportRebuildsDerivedState).
func (s *Store) Import(data []byte) error {
	var snapshot map[string]json.RawMessage
	if err := json.Unmarshal(data, &snapshot); err != nil {
		return fmt.Errorf("store: import: %w", err)
	}
	// Deterministic order keeps replayed logs byte-stable across boots.
	uris := make([]string, 0, len(snapshot))
	for uri := range snapshot {
		uris = append(uris, uri)
	}
	sort.Strings(uris)
	for _, uri := range uris {
		if !strings.HasPrefix(uri, "/") {
			return fmt.Errorf("store: import: non-absolute uri %q", uri)
		}
		if err := s.Put(odata.ID(uri), snapshot[uri]); err != nil {
			return fmt.Errorf("store: import %s: %w", uri, err)
		}
	}
	return nil
}

// Package store implements the OFMF's central resource repository: a
// concurrent, URI-keyed tree of Redfish resources with collections, entity
// tags, deep-merge PATCH semantics, subtree aggregation for Agents, change
// notification hooks, and JSON import/export.
//
// Resources are stored as canonical JSON so the repository is agnostic to
// the Go schema types; handlers and agents exchange typed structs which
// are marshaled at the boundary.
package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"ofmf/internal/odata"
)

// Sentinel errors returned by store operations.
var (
	ErrNotFound      = errors.New("store: resource not found")
	ErrExists        = errors.New("store: resource already exists")
	ErrNotCollection = errors.New("store: not a collection")
	ErrEtagMismatch  = errors.New("store: etag mismatch")
	ErrBadPayload    = errors.New("store: payload not a JSON object")
)

// ChangeKind identifies the kind of mutation a change event describes.
type ChangeKind int

// Change kinds.
const (
	Added ChangeKind = iota
	Updated
	Removed
)

// String returns the change kind's Redfish event type name.
func (k ChangeKind) String() string {
	switch k {
	case Added:
		return "ResourceAdded"
	case Updated:
		return "ResourceUpdated"
	case Removed:
		return "ResourceRemoved"
	default:
		return fmt.Sprintf("ChangeKind(%d)", int(k))
	}
}

// Change describes one mutation of the tree.
type Change struct {
	Kind ChangeKind
	ID   odata.ID
}

// Watcher receives change notifications. Watchers are invoked synchronously
// after the store's lock is released; implementations that do slow work
// must enqueue internally.
type Watcher func(Change)

type entry struct {
	raw  json.RawMessage
	etag string
}

type collectionMeta struct {
	odataType string
	name      string
}

// collCache is the memoized rendering of one registered collection: its
// sorted member list, the serialized payload bytes, and the payload's
// entity tag. A cache value is immutable once published — invalidation
// replaces the map entry, never mutates it — so readers may use a value
// after the store's lock is released.
type collCache struct {
	members []odata.ID
	payload []byte
	etag    string
}

// Store is a concurrent Redfish resource tree.
//
// Besides the entry map, the store maintains a parent→children index
// covering every ancestor path segment of every stored id. The index
// makes subtree operations (PutSubtree, DeleteSubtree) proportional to
// the size of the affected subtree rather than the whole store, and
// backs collection membership synthesis.
type Store struct {
	mu          sync.RWMutex
	entries     map[odata.ID]*entry
	collections map[odata.ID]collectionMeta
	children    map[odata.ID]map[odata.ID]struct{}
	collCache   map[odata.ID]*collCache
	// hiwater tracks, per parent, the largest numeric child name ever
	// linked, making NextID O(1) amortized. It never decreases, so ids
	// are not reused after deletion (which also prevents a deleted
	// resource's URI from aliasing a new one).
	hiwater map[odata.ID]int

	watchMu  sync.RWMutex
	watchers []Watcher

	// opHook holds an OpHook observing operation counts (atomic.Value so
	// hot read paths never contend on a lock for it).
	opHook atomic.Value
}

// OpHook observes one store operation by kind: "get", "view", "etag",
// "put", "put_subtree", "create", "patch", "delete", "delete_subtree",
// "members", "collection" (cache miss, payload built) or
// "collection_cached" (served from the memoized payload). Hooks must be
// fast and must not call back into the store.
type OpHook func(op string)

// SetOpHook installs the operation observer, replacing any previous one.
func (s *Store) SetOpHook(h OpHook) { s.opHook.Store(h) }

func (s *Store) countOp(op string) {
	if h, ok := s.opHook.Load().(OpHook); ok && h != nil {
		h(op)
	}
}

// New creates an empty store.
func New() *Store {
	return &Store{
		entries:     make(map[odata.ID]*entry),
		collections: make(map[odata.ID]collectionMeta),
		children:    make(map[odata.ID]map[odata.ID]struct{}),
		collCache:   make(map[odata.ID]*collCache),
		hiwater:     make(map[odata.ID]int),
	}
}

// Watch registers a change watcher. All subsequent mutations are reported.
func (s *Store) Watch(w Watcher) {
	s.watchMu.Lock()
	s.watchers = append(s.watchers, w)
	s.watchMu.Unlock()
}

func (s *Store) notify(changes ...Change) {
	s.watchMu.RLock()
	ws := s.watchers
	s.watchMu.RUnlock()
	for _, c := range changes {
		for _, w := range ws {
			w(c)
		}
	}
}

func canonicalize(v any) (json.RawMessage, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("store: marshal: %w", err)
	}
	if len(b) == 0 || b[0] != '{' {
		return nil, ErrBadPayload
	}
	return b, nil
}

func newEntry(v any) (*entry, error) {
	raw, err := canonicalize(v)
	if err != nil {
		return nil, err
	}
	return &entry{raw: raw, etag: odata.EtagRaw(raw)}, nil
}

// Put creates or replaces the resource at id with the JSON serialization of
// v, which must marshal to a JSON object. Rewriting identical content does
// not notify watchers (and skips re-hashing: the existing entry is kept).
func (s *Store) Put(id odata.ID, v any) error {
	s.countOp("put")
	raw, err := canonicalize(v)
	if err != nil {
		return err
	}
	s.mu.Lock()
	old, existed := s.entries[id]
	if existed && bytes.Equal(old.raw, raw) {
		s.mu.Unlock()
		return nil
	}
	s.entries[id] = &entry{raw: raw, etag: odata.EtagRaw(raw)}
	s.link(id)
	if !existed {
		s.invalidateCollectionLocked(id.Parent())
	}
	s.mu.Unlock()

	kind := Added
	if existed {
		kind = Updated
	}
	s.notify(Change{Kind: kind, ID: id})
	return nil
}

// Create stores v at id and fails with ErrExists if the id is taken.
func (s *Store) Create(id odata.ID, v any) error {
	s.countOp("create")
	e, err := newEntry(v)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if _, ok := s.entries[id]; ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrExists, id)
	}
	s.entries[id] = e
	s.link(id)
	s.invalidateCollectionLocked(id.Parent())
	s.mu.Unlock()

	s.notify(Change{Kind: Added, ID: id})
	return nil
}

// link records id under every ancestor so the children index forms a
// complete path tree: subtree walks reach every stored entry from any
// prefix. It also advances the parent's numeric high-water mark.
func (s *Store) link(id odata.ID) {
	for id != "/" && id != "" {
		parent := id.Parent()
		kids, ok := s.children[parent]
		if !ok {
			kids = make(map[odata.ID]struct{})
			s.children[parent] = kids
		}
		if _, ok := kids[id]; ok {
			// Already linked; ancestors must be linked too.
			return
		}
		kids[id] = struct{}{}
		if leaf := id.Leaf(); leaf != "" && leaf[0] >= '0' && leaf[0] <= '9' {
			if n, err := strconv.Atoi(leaf); err == nil && n > s.hiwater[parent] {
				s.hiwater[parent] = n
			}
		}
		id = parent
	}
}

// unlink removes id from its parent's child set, then prunes newly empty
// interior path nodes up the ancestor chain. A node survives while it is
// itself a stored entry or still has descendants.
func (s *Store) unlink(id odata.ID) {
	for id != "/" && id != "" {
		if _, isEntry := s.entries[id]; isEntry {
			return
		}
		if len(s.children[id]) > 0 {
			return
		}
		parent := id.Parent()
		kids, ok := s.children[parent]
		if !ok {
			return
		}
		delete(kids, id)
		if len(kids) == 0 {
			delete(s.children, parent)
		}
		id = parent
	}
}

// invalidateCollectionLocked drops the memoized payload of the collection
// at id (if any) after a membership change. Callers hold the write lock,
// so a reader can never observe a cache inconsistent with the entry map.
func (s *Store) invalidateCollectionLocked(id odata.ID) {
	if len(s.collCache) != 0 {
		delete(s.collCache, id)
	}
}

// descendantsLocked appends to out every stored entry id equal to or under
// prefix, walking only the prefix's subtree via the children index.
func (s *Store) descendantsLocked(prefix odata.ID, out []odata.ID) []odata.ID {
	if _, ok := s.entries[prefix]; ok {
		out = append(out, prefix)
	}
	for kid := range s.children[prefix] {
		out = s.descendantsLocked(kid, out)
	}
	return out
}

// Get returns a copy of the raw JSON and the entity tag of the resource at
// id. The returned slice is never aliased to store internals.
func (s *Store) Get(id odata.ID) (json.RawMessage, string, error) {
	s.countOp("get")
	s.mu.RLock()
	e, ok := s.entries[id]
	s.mu.RUnlock()
	if !ok {
		return nil, "", fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	out := make(json.RawMessage, len(e.raw))
	copy(out, e.raw)
	return out, e.etag, nil
}

// View invokes fn with the raw JSON of the resource at id without
// copying. fn runs under the store's read lock and must not retain or
// mutate the slice. It is the zero-copy alternative to Get for hot read
// paths (see BenchmarkAblationStoreRead).
func (s *Store) View(id odata.ID, fn func(raw json.RawMessage, etag string)) error {
	s.countOp("view")
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	fn(e.raw, e.etag)
	return nil
}

// GetAs decodes the resource at id into out.
func (s *Store) GetAs(id odata.ID, out any) error {
	raw, _, err := s.Get(id)
	if err != nil {
		return err
	}
	return json.Unmarshal(raw, out)
}

// Etag returns the entity tag of the resource at id.
func (s *Store) Etag(id odata.ID) (string, error) {
	s.countOp("etag")
	s.mu.RLock()
	e, ok := s.entries[id]
	s.mu.RUnlock()
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return e.etag, nil
}

// Exists reports whether a resource (not a collection) is stored at id.
func (s *Store) Exists(id odata.ID) bool {
	s.mu.RLock()
	_, ok := s.entries[id]
	s.mu.RUnlock()
	return ok
}

// Patch deep-merges patch into the resource at id. Nested objects are
// merged recursively; arrays and scalars are replaced; explicit JSON nulls
// delete the member, per Redfish PATCH semantics. If ifMatch is non-empty
// it must equal the current entity tag.
func (s *Store) Patch(id odata.ID, patch map[string]any, ifMatch string) error {
	s.countOp("patch")
	s.mu.Lock()
	e, ok := s.entries[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if ifMatch != "" && ifMatch != e.etag {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrEtagMismatch, id)
	}
	var current map[string]any
	if err := json.Unmarshal(e.raw, &current); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("store: corrupt entry %s: %w", id, err)
	}
	merge(current, patch)
	ne, err := newEntry(current)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	unchanged := bytes.Equal(ne.raw, e.raw)
	s.entries[id] = ne
	s.mu.Unlock()

	if !unchanged {
		s.notify(Change{Kind: Updated, ID: id})
	}
	return nil
}

// merge applies Redfish PATCH semantics: objects merge recursively, null
// deletes, everything else replaces.
func merge(dst, patch map[string]any) {
	for k, v := range patch {
		if v == nil {
			delete(dst, k)
			continue
		}
		pv, pok := v.(map[string]any)
		dv, dok := dst[k].(map[string]any)
		if pok && dok {
			merge(dv, pv)
			continue
		}
		dst[k] = v
	}
}

// Delete removes the resource at id.
func (s *Store) Delete(id odata.ID) error {
	s.countOp("delete")
	s.mu.Lock()
	if _, ok := s.entries[id]; !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	delete(s.entries, id)
	s.unlink(id)
	s.invalidateCollectionLocked(id.Parent())
	s.mu.Unlock()

	s.notify(Change{Kind: Removed, ID: id})
	return nil
}

// RegisterCollection declares a collection at id with the given
// @odata.type and display name. Collection payloads are synthesized from
// the direct children present in the store and memoized until the
// membership changes.
func (s *Store) RegisterCollection(id odata.ID, odataType, name string) {
	s.mu.Lock()
	s.collections[id] = collectionMeta{odataType: odataType, name: name}
	s.invalidateCollectionLocked(id)
	s.mu.Unlock()
}

// IsCollection reports whether id names a registered collection.
func (s *Store) IsCollection(id odata.ID) bool {
	s.mu.RLock()
	_, ok := s.collections[id]
	s.mu.RUnlock()
	return ok
}

// collectionFor returns the collection's metadata and memoized rendering,
// building and publishing the cache on a miss. hit reports whether the
// rendering was served from the cache. The returned collCache is
// immutable; callers may use it after the lock is released.
func (s *Store) collectionFor(id odata.ID) (collectionMeta, *collCache, bool, error) {
	s.mu.RLock()
	meta, ok := s.collections[id]
	if !ok {
		s.mu.RUnlock()
		return collectionMeta{}, nil, false, fmt.Errorf("%w: %s", ErrNotCollection, id)
	}
	c := s.collCache[id]
	s.mu.RUnlock()
	if c != nil {
		return meta, c, true, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c = s.collCache[id]; c != nil {
		return meta, c, true, nil
	}
	members := s.membersLocked(id)
	payload, err := json.Marshal(odata.Collection{
		ODataID:   id,
		ODataType: meta.odataType,
		Name:      meta.name,
		Count:     len(members),
		Members:   odata.RefSlice(members),
	})
	if err != nil {
		return meta, nil, false, fmt.Errorf("store: collection %s: %w", id, err)
	}
	c = &collCache{members: members, payload: payload, etag: odata.EtagRaw(payload)}
	s.collCache[id] = c
	return meta, c, false, nil
}

func (s *Store) countCollection(hit bool) {
	if hit {
		s.countOp("collection_cached")
	} else {
		s.countOp("collection")
	}
}

// Collection synthesizes the collection payload at id from its current
// members, serving the memoized member list when it is still valid.
func (s *Store) Collection(id odata.ID) (odata.Collection, error) {
	meta, c, hit, err := s.collectionFor(id)
	if err != nil {
		return odata.Collection{}, err
	}
	s.countCollection(hit)
	return odata.Collection{
		ODataID:   id,
		ODataType: meta.odataType,
		Name:      meta.name,
		Count:     len(c.members),
		Members:   odata.RefSlice(c.members),
	}, nil
}

// CollectionView invokes fn with the memoized serialized payload and
// entity tag of the collection at id, building them on first use. The
// payload is immutable shared state: fn must not modify it, but may
// retain it (an invalidation publishes a fresh slice rather than
// mutating). This is the zero-copy fast path collection GETs are served
// from.
func (s *Store) CollectionView(id odata.ID, fn func(payload []byte, etag string)) error {
	_, c, hit, err := s.collectionFor(id)
	if err != nil {
		return err
	}
	s.countCollection(hit)
	fn(c.payload, c.etag)
	return nil
}

func (s *Store) membersLocked(id odata.ID) []odata.ID {
	kids := s.children[id]
	members := make([]odata.ID, 0, len(kids))
	for k := range kids {
		if _, ok := s.entries[k]; ok {
			members = append(members, k)
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	return members
}

// Members returns the sorted direct members of the collection at id.
func (s *Store) Members(id odata.ID) ([]odata.ID, error) {
	s.countOp("members")
	_, c, _, err := s.collectionFor(id)
	if err != nil {
		return nil, err
	}
	out := make([]odata.ID, len(c.members))
	copy(out, c.members)
	return out, nil
}

// NextID returns the next unused positive integer name for a direct child
// of the collection, as a string. Allocation is monotonic: a per-
// collection high-water mark makes it O(1) amortized, and names are not
// reused after deletion, so a released URI can never alias a later
// resource.
func (s *Store) NextID(collection odata.ID) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	kids := s.children[collection]
	for i := s.hiwater[collection] + 1; ; i++ {
		name := strconv.Itoa(i)
		if _, ok := kids[collection.Append(name)]; !ok {
			return name
		}
	}
}

// IDs returns every stored resource identifier, sorted.
func (s *Store) IDs() []odata.ID {
	s.mu.RLock()
	ids := make([]odata.ID, 0, len(s.entries))
	for id := range s.entries {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Len returns the number of stored resources.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// PutSubtree atomically installs a set of resources, all of which must lie
// under prefix. It is the aggregation primitive used when an Agent
// publishes or refreshes its resource subtree: existing resources under
// prefix that are absent from resources are removed, except those under a
// keep prefix — these are owned by another writer (the OFMF stores the
// Zone and Connection resources it creates on the agent's behalf) and
// survive refreshes untouched.
func (s *Store) PutSubtree(prefix odata.ID, resources map[odata.ID]any, keep ...odata.ID) error {
	s.countOp("put_subtree")
	// Serialize outside the lock; entity tags are computed lazily below,
	// only for payloads that actually changed — an agent heartbeat that
	// republishes an unchanged snapshot costs one marshal and one byte
	// compare per resource, nothing more.
	prepared := make(map[odata.ID]json.RawMessage, len(resources))
	for id, v := range resources {
		if !id.Under(prefix) {
			return fmt.Errorf("store: %s outside subtree %s", id, prefix)
		}
		raw, err := canonicalize(v)
		if err != nil {
			return fmt.Errorf("store: subtree %s: %w", id, err)
		}
		prepared[id] = raw
	}

	kept := func(id odata.ID) bool {
		for _, k := range keep {
			if id.Under(k) {
				return true
			}
		}
		return false
	}
	var changes []Change
	s.mu.Lock()
	// Remove stale descendants, walking only the prefix's subtree via the
	// children index — the rest of the store is never touched.
	for _, id := range s.descendantsLocked(prefix, nil) {
		if kept(id) {
			continue
		}
		if _, present := prepared[id]; !present {
			delete(s.entries, id)
			s.unlink(id)
			s.invalidateCollectionLocked(id.Parent())
			changes = append(changes, Change{Kind: Removed, ID: id})
		}
	}
	for id, raw := range prepared {
		old, existed := s.entries[id]
		if existed && bytes.Equal(old.raw, raw) {
			continue
		}
		s.entries[id] = &entry{raw: raw, etag: odata.EtagRaw(raw)}
		s.link(id)
		kind := Added
		if existed {
			kind = Updated
		} else {
			s.invalidateCollectionLocked(id.Parent())
		}
		changes = append(changes, Change{Kind: kind, ID: id})
	}
	s.mu.Unlock()

	sort.Slice(changes, func(i, j int) bool { return changes[i].ID < changes[j].ID })
	s.notify(changes...)
	return nil
}

// DeleteSubtree removes every resource under prefix (inclusive) and
// returns how many were removed. Like PutSubtree it walks only the
// affected subtree via the children index.
func (s *Store) DeleteSubtree(prefix odata.ID) int {
	s.countOp("delete_subtree")
	s.mu.Lock()
	ids := s.descendantsLocked(prefix, nil)
	changes := make([]Change, 0, len(ids))
	for _, id := range ids {
		delete(s.entries, id)
		s.unlink(id)
		s.invalidateCollectionLocked(id.Parent())
		changes = append(changes, Change{Kind: Removed, ID: id})
	}
	s.mu.Unlock()
	sort.Slice(changes, func(i, j int) bool { return changes[i].ID < changes[j].ID })
	s.notify(changes...)
	return len(changes)
}

// Export serializes the whole tree (resources only; collections are
// declared by the service) to indented JSON keyed by URI.
func (s *Store) Export() ([]byte, error) {
	s.mu.RLock()
	snapshot := make(map[string]json.RawMessage, len(s.entries))
	for id, e := range s.entries {
		snapshot[string(id)] = e.raw
	}
	s.mu.RUnlock()
	return json.MarshalIndent(snapshot, "", "  ")
}

// Import loads resources previously produced by Export, replacing any
// entries at the same ids.
func (s *Store) Import(data []byte) error {
	var snapshot map[string]json.RawMessage
	if err := json.Unmarshal(data, &snapshot); err != nil {
		return fmt.Errorf("store: import: %w", err)
	}
	for uri, raw := range snapshot {
		if !strings.HasPrefix(uri, "/") {
			return fmt.Errorf("store: import: non-absolute uri %q", uri)
		}
		if err := s.Put(odata.ID(uri), raw); err != nil {
			return fmt.Errorf("store: import %s: %w", uri, err)
		}
	}
	return nil
}

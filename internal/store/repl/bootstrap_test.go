package repl

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ofmf/internal/odata"
	"ofmf/internal/service"
	"ofmf/internal/store"
	"ofmf/internal/store/persist"
)

// lateNode is a cluster member whose replication node starts after the
// leader has already accumulated history — the snapshot-bootstrap
// scenarios staggered starts that startTestCluster cannot express.
type lateNode struct {
	svc  *service.Service
	node *Node
	srv  *httptest.Server
}

func (ln *lateNode) stop() {
	if ln.node != nil {
		ln.node.Stop()
	}
	ln.srv.CloseClientConnections()
	ln.srv.Close()
	if ln.svc != nil {
		ln.svc.Close()
	}
}

// newLateNode reserves a listener (so peers can name this node before
// it runs) without building the service or replication node yet.
func newLateNode() (*lateNode, *http.ServeMux) {
	mux := http.NewServeMux()
	return &lateNode{srv: httptest.NewServer(mux)}, mux
}

// start builds the service and node on the reserved listener.
func (ln *lateNode) start(t *testing.T, mux *http.ServeMux, mut func(cfg *Config)) {
	t.Helper()
	ln.svc = service.New(service.Config{Logger: quietLogger(), DirectWrites: true})
	cfg := Config{
		Store:        ln.svc.Store(),
		Self:         ln.srv.URL,
		LeaseTimeout: 300 * time.Millisecond,
		Logger:       quietLogger(),
	}
	if mut != nil {
		mut(&cfg)
	}
	node, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln.node = node
	mux.Handle("/", ln.svc.Handler())
	mux.Handle(PathPrefix, node.Handler())
	node.Start()
}

// TestReplSnapshotBootstrapMidStream: a replica that joins after the
// leader's in-memory backlog has evicted the history it needs must
// bootstrap from a snapshot at the leader's current position and then
// catch up over the stream with no gap and no duplicate apply — ending
// byte-identical, and staying contiguous through later writes without
// another bootstrap.
func TestReplSnapshotBootstrapMidStream(t *testing.T) {
	leader, leaderMux := newLateNode()
	replica, replicaMux := newLateNode()
	defer leader.stop()
	defer replica.stop()

	leader.start(t, leaderMux, func(cfg *Config) {
		cfg.Leader = true
		cfg.Peers = []string{replica.srv.URL}
		cfg.RingSize = 64
	})

	// Push the backlog far past its ring so seq 1 is long evicted; with
	// no disk tail configured, a from-zero follower can only be served
	// by a snapshot.
	client := leader.srv.Client()
	for i := 0; i < 300; i++ {
		if _, err := postChassis(client, leader.srv.URL, fmt.Sprintf("pre-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	hub := leader.node.currentHub()
	if hub.RingFirst() <= 1 {
		t.Fatalf("backlog never trimmed (ringFirst=%d); snapshot path not exercised", hub.RingFirst())
	}

	replica.start(t, replicaMux, func(cfg *Config) {
		cfg.Peers = []string{leader.srv.URL}
	})
	waitFor(t, 5*time.Second, "replica caught up past the evicted backlog", func() bool {
		return replica.node.Status().LastSeq == hub.LastSeq()
	})

	// The stream must keep flowing contiguously after the bootstrap; a
	// second bootstrap or a sequence gap would show up as divergence or
	// a stalled LastSeq.
	for i := 0; i < 40; i++ {
		if _, err := postChassis(client, leader.srv.URL, fmt.Sprintf("post-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "replica followed post-bootstrap writes", func() bool {
		return replica.node.Status().LastSeq == hub.LastSeq()
	})

	want, err := leader.svc.Store().Export()
	if err != nil {
		t.Fatal(err)
	}
	got, err := replica.svc.Store().Export()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("replica export differs after snapshot bootstrap (%d vs %d bytes)", len(got), len(want))
	}
}

// TestReplBootstrapAcrossCompaction: with a persist-backed leader, a
// late replica is served the newest on-disk snapshot plus a WAL tail —
// across a compaction that rotated the logs — and converges without the
// leader holding its full history in memory.
func TestReplBootstrapAcrossCompaction(t *testing.T) {
	leader, leaderMux := newLateNode()
	replica, replicaMux := newLateNode()
	defer leader.stop()
	defer replica.stop()

	dir := t.TempDir()
	leader.svc = service.New(service.Config{Logger: quietLogger(), DirectWrites: true})
	b, err := persist.Open(persist.Options{Dir: dir, Shards: leader.svc.Store().ShardCount(), Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recover(leader.svc.Store()); err != nil {
		t.Fatal(err)
	}
	node, err := NewNode(Config{
		Store:        leader.svc.Store(),
		Self:         leader.srv.URL,
		Peers:        []string{replica.srv.URL},
		Leader:       true,
		RingSize:     64,
		Inner:        b,
		DiskTail:     b.ReadRecords,
		DiskFlush:    b.Flush,
		DiskSnapshot: b.LatestSnapshot,
		LeaseTimeout: 300 * time.Millisecond,
		Logger:       quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	leader.node = node
	leaderMux.Handle("/", leader.svc.Handler())
	leaderMux.Handle(PathPrefix, node.Handler())
	node.Start()

	client := leader.srv.Client()
	for i := 0; i < 120; i++ {
		if _, err := postChassis(client, leader.srv.URL, fmt.Sprintf("pre-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Compact(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if _, err := postChassis(client, leader.srv.URL, fmt.Sprintf("mid-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, seq, ok, err := b.LatestSnapshot(); err != nil || !ok || seq == 0 {
		t.Fatalf("compaction left no usable snapshot (seq=%d ok=%v err=%v)", seq, ok, err)
	}

	replica.start(t, replicaMux, func(cfg *Config) {
		cfg.Peers = []string{leader.srv.URL}
	})
	hub := leader.node.currentHub()
	waitFor(t, 5*time.Second, "replica caught up across compaction", func() bool {
		return replica.node.Status().LastSeq == hub.LastSeq()
	})

	want, err := leader.svc.Store().Export()
	if err != nil {
		t.Fatal(err)
	}
	got, err := replica.svc.Store().Export()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("replica export differs after disk bootstrap (%d vs %d bytes)", len(got), len(want))
	}
}

// TestReplPromotedLeaderDurability: a replica promoted with
// PromoteBackend gets a data directory positioned at its applied
// sequence; writes accepted after the failover must be recoverable from
// that directory by a fresh process.
func TestReplPromotedLeaderDurability(t *testing.T) {
	dir := t.TempDir()
	leader, leaderMux := newLateNode()
	replica, replicaMux := newLateNode()
	defer leader.stop()
	defer replica.stop()

	leader.start(t, leaderMux, func(cfg *Config) {
		cfg.Leader = true
		cfg.Peers = []string{replica.srv.URL}
		cfg.MinSync = 1
		cfg.SyncTimeout = 5 * time.Second
	})
	var promoted atomic.Pointer[persist.FileBackend]
	replica.start(t, replicaMux, func(cfg *Config) {
		cfg.Peers = []string{leader.srv.URL}
		cfg.PromoteBackend = func(st *store.Store, seq uint64) (store.Backend, error) {
			pb, err := persist.Open(persist.Options{Dir: dir, Shards: st.ShardCount(), Logger: quietLogger()})
			if err != nil {
				return nil, err
			}
			if err := pb.Bootstrap(st, seq); err != nil {
				pb.Close()
				return nil, err
			}
			promoted.Store(pb)
			return pb, nil
		}
	})
	waitFor(t, 5*time.Second, "follower connected", func() bool {
		return len(leader.node.Status().Followers) == 1
	})

	client := leader.srv.Client()
	var preURI string
	for i := 0; i < 10; i++ {
		uri, err := postChassis(client, leader.srv.URL, fmt.Sprintf("pre-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		preURI = string(uri)
	}
	waitFor(t, 5*time.Second, "replica converged before failover", func() bool {
		return replica.node.Status().LastSeq == leader.node.currentHub().LastSeq()
	})

	leader.node.Stop()
	leader.srv.CloseClientConnections()
	leader.srv.Close()
	leader.svc.Close()
	leader.node, leader.svc = nil, nil

	waitFor(t, 5*time.Second, "replica promoted", func() bool {
		return replica.node.Leading()
	})
	postURI, err := postChassis(replica.srv.Client(), replica.srv.URL, "post-failover")
	if err != nil {
		t.Fatalf("write on promoted leader: %v", err)
	}

	// Simulate a crash of the promoted leader: flush the WAL so the new
	// term's records are on disk, but skip the graceful close — that
	// would compact everything into a final snapshot and leave nothing
	// for replay. Recovery must rebuild from the bootstrap snapshot plus
	// the promoted term's WAL tail, and report the promoted epoch so a
	// restart continues that term.
	pb := promoted.Load()
	if pb == nil {
		t.Fatal("PromoteBackend never ran")
	}
	if err := pb.Flush(); err != nil {
		t.Fatal(err)
	}
	recovered := store.New()
	rb, err := persist.Open(persist.Options{Dir: dir, Shards: recovered.ShardCount(), Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := rb.Recover(recovered)
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	if stats.LastEpoch < 2 {
		t.Errorf("recovered WAL epoch = %d, want the promoted term >= 2", stats.LastEpoch)
	}
	for _, uri := range []string{preURI, string(postURI)} {
		if _, _, err := recovered.Get(odata.ID(uri)); err != nil {
			t.Errorf("promoted leader's data dir lost %s: %v", uri, err)
		}
	}
}

// TestReplColdReplicaDoesNotSelfPromote: a replica that boots before
// its leader (or with every peer down) has never followed any term and
// holds no data; it must keep searching rather than promote an empty
// tree into epoch 1 — an equal-epoch twin leader that fencing, which
// only acts on *higher* epochs, could never depose. Once the real
// leader comes up, the replica follows it.
func TestReplColdReplicaDoesNotSelfPromote(t *testing.T) {
	leader, leaderMux := newLateNode()
	replica, replicaMux := newLateNode()
	defer leader.stop()
	defer replica.stop()

	// Replica first; the leader's listener exists but 404s everything
	// until the leader actually starts — the cold-boot race window.
	replica.start(t, replicaMux, func(cfg *Config) {
		cfg.Peers = []string{leader.srv.URL}
	})
	time.Sleep(1 * time.Second) // many election rounds at a 300ms lease
	if replica.node.Leading() {
		t.Fatal("cold replica promoted itself before ever seeing a leader")
	}
	if got := replica.node.Status().Role; got != RoleReplica {
		t.Fatalf("cold replica role = %s, want replica", got)
	}

	leader.start(t, leaderMux, func(cfg *Config) {
		cfg.Leader = true
		cfg.Peers = []string{replica.srv.URL}
	})
	waitFor(t, 5*time.Second, "late leader adopted", func() bool {
		st := replica.node.Status()
		return st.Role == RoleReplica && st.LeaderURL == leader.srv.URL && st.Epoch == 1
	})
}

// TestReplFencingDeposesStaleLeader: an acknowledgement carrying a
// higher epoch proves a newer leader exists; the stale leader must
// refuse it, fail pending writes, demote itself, and the group must
// settle on a term above the fencing one.
func TestReplFencingDeposesStaleLeader(t *testing.T) {
	c := startTestCluster(t, 2, nil)
	leader, replica := c.nodes[0], c.nodes[1]
	waitFor(t, 5*time.Second, "follower connected", func() bool {
		return len(leader.node.Status().Followers) == 1
	})

	resp, err := http.Post(leader.URL()+"/repl/v1/ack", "application/json",
		bytes.NewReader([]byte(fmt.Sprintf(`{"Peer":%q,"Epoch":99,"Seq":0}`, replica.URL()))))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("higher-epoch ack: want 409, got %s", resp.Status)
	}
	waitFor(t, 5*time.Second, "stale leader demoted", func() bool {
		return !leader.node.Leading()
	})

	// The group recovers into a term above the fencing epoch and writes
	// flow again — through whichever node now leads.
	waitFor(t, 10*time.Second, "new term elected past the fence", func() bool {
		for _, tn := range c.nodes {
			if tn.node.Leading() && tn.node.Status().Epoch > 99 {
				return true
			}
		}
		return false
	})
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := postChassis(http.DefaultClient, c.leader().URL(), "after-fence")
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("writes never recovered after fencing: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestReplReplicaGetZeroAlloc guards the read-path acceptance bar:
// replica-mode must not add allocations to the store's zero-copy read
// path that local GETs are served from.
func TestReplReplicaGetZeroAlloc(t *testing.T) {
	c := startTestCluster(t, 2, nil)
	leader, replica := c.nodes[0], c.nodes[1]
	waitFor(t, 5*time.Second, "follower connected", func() bool {
		return len(leader.node.Status().Followers) == 1
	})
	uri, err := postChassis(leader.srv.Client(), leader.URL(), "hot")
	if err != nil {
		t.Fatal(err)
	}
	c.waitConverged(5 * time.Second)

	st := replica.svc.Store()
	allocs := testing.AllocsPerRun(1000, func() {
		if err := st.View(uri, func(raw json.RawMessage, etag string) {}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("replica store read path allocates %v per op, want 0", allocs)
	}
}

package repl

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestReplBenchHarness measures the replication numbers reported in
// BENCH_serving.json's "replication" section: aggregate read throughput
// with 1 serving node vs the full 3-node group (read replicas are the
// scaling story), the leader-commit-to-replica-apply shipping lag, and
// the wall-clock cost of a leader failover. It only runs when
// OFMF_REPL_BENCH=1 — it is a measurement harness, not a regression
// gate — and writes its JSON to OFMF_REPL_BENCH_OUT (default stdout).
//
//	OFMF_REPL_BENCH=1 go test -run TestReplBenchHarness -count=1 ./internal/store/repl
func TestReplBenchHarness(t *testing.T) {
	if os.Getenv("OFMF_REPL_BENCH") == "" {
		t.Skip("set OFMF_REPL_BENCH=1 to run the replication bench harness")
	}

	// MinSync 0: writes are acknowledged at local commit, so the ship-lag
	// samples measure pure shipping+apply, not the round trip the leader
	// already waited out.
	c := startTestCluster(t, 3, func(i int, cfg *Config) {
		cfg.MinSync = 0
	})
	leader := c.nodes[0]
	waitFor(t, 5*time.Second, "followers connected", func() bool {
		return len(leader.node.Status().Followers) == 2
	})

	// A working set comparable to the serving-path load harness.
	const seedResources = 1000
	client := leader.srv.Client()
	uris := make([]string, 0, seedResources)
	for i := 0; i < seedResources; i++ {
		uri, err := postChassis(client, leader.URL(), fmt.Sprintf("seed-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		uris = append(uris, string(uri))
	}
	c.waitConverged(10 * time.Second)

	readRPS := func(nodes []*testNode, d time.Duration) float64 {
		const workers = 16
		var total atomic.Int64
		var wg sync.WaitGroup
		stop := time.Now().Add(d)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				cl := &http.Client{}
				n := 0
				for time.Now().Before(stop) {
					tn := nodes[(w+n)%len(nodes)]
					resp, err := cl.Get(tn.URL() + uris[n%len(uris)])
					if err == nil {
						resp.Body.Close()
						if resp.StatusCode == http.StatusOK {
							n++
						}
					}
				}
				total.Add(int64(n))
			}(w)
		}
		wg.Wait()
		return float64(total.Load()) / d.Seconds()
	}

	const readWindow = 3 * time.Second
	rps1 := readRPS(c.nodes[:1], readWindow)
	rps3 := readRPS(c.nodes, readWindow)

	// Shipping lag: commit-to-apply, measured from the hub's own commit
	// timestamp (stamped under the shard lock at Offer) to the moment
	// the slowest replica's applied position crosses the sequence. The
	// poll yields between probes so the applier goroutines get the CPU
	// on small machines.
	const lagSamples = 300
	hub := leader.node.currentHub()
	commitTime := func(seq uint64) time.Time {
		hub.mu.Lock()
		defer hub.mu.Unlock()
		return hub.ring[seq-hub.ringFirst].at
	}
	lags := make([]float64, 0, lagSamples)
	for i := 0; i < lagSamples; i++ {
		if _, err := postChassis(client, leader.URL(), fmt.Sprintf("lag-%d", i)); err != nil {
			t.Fatal(err)
		}
		seq := hub.LastSeq()
		committed := commitTime(seq)
		for _, r := range c.nodes[1:] {
			for r.node.applied.Load() < seq {
				if time.Since(committed) > 5*time.Second {
					t.Fatalf("replica never applied seq %d", seq)
				}
				runtime.Gosched()
			}
		}
		lags = append(lags, float64(time.Since(committed).Microseconds()))
	}
	sort.Float64s(lags)
	pct := func(p float64) float64 { return lags[int(p*float64(len(lags)-1))] }

	// Failover: kill the leader, then hammer the survivors until a write
	// is accepted again. The measured window covers lease expiry,
	// election, promotion, and the client finding the new leader — the
	// full outage as a writer experiences it.
	failStart := time.Now()
	leader.kill()
	var failoverMS float64
	for {
		for _, tn := range c.nodes[1:] {
			if _, err := postChassis(http.DefaultClient, tn.URL(), "failover-probe"); err == nil {
				failoverMS = float64(time.Since(failStart).Microseconds()) / 1000
			}
		}
		if failoverMS > 0 {
			break
		}
		if time.Since(failStart) > 30*time.Second {
			t.Fatal("no replica accepted writes within 30s of leader death")
		}
		time.Sleep(2 * time.Millisecond)
	}
	promoted := c.leader()

	out := map[string]any{
		"date":                time.Now().Format("2006-01-02"),
		"goos":                runtime.GOOS,
		"goarch":              runtime.GOARCH,
		"gomaxprocs":          runtime.GOMAXPROCS(0),
		"nodes":               3,
		"seed_resources":      seedResources,
		"read_window_s":       readWindow.Seconds(),
		"read_rps_1_node":     rps1,
		"read_rps_3_nodes":    rps3,
		"read_scaling":        rps3 / rps1,
		"ship_lag_samples":    lagSamples,
		"ship_lag_p50_micros": pct(0.50),
		"ship_lag_p99_micros": pct(0.99),
		"lease_timeout_ms":    300,
		"failover_ms":         failoverMS,
		"failover_epoch":      promoted.node.Status().Epoch,
	}
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if path := os.Getenv("OFMF_REPL_BENCH_OUT"); path != "" {
		if err := os.WriteFile(path, append(enc, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("replication bench written to %s", path)
	} else {
		fmt.Printf("REPL_BENCH %s\n", enc)
	}
}

// Package repl replicates one OFMF resource tree across nodes by
// shipping the store's write-ahead records. One node is the leader: its
// store carries a replication-aware backend (Tee) that hands every
// committed record batch to a Hub, which reassembles global sequence
// order and streams records to followers over HTTP. Followers replay
// records through Store.Apply — the same code path boot recovery uses —
// so a replica's tree is rebuilt by exactly the mutations the leader
// performed, in commit order.
//
// # Protocol
//
// Four endpoints under /repl/v1, all served by Node.Handler:
//
//	GET  /repl/v1/status    role, epoch, last sequence, follower progress
//	GET  /repl/v1/snapshot  full-tree export + the seq/epoch it reflects
//	GET  /repl/v1/stream    NDJSON record stream from ?from=<seq>
//	POST /repl/v1/ack       follower progress acknowledgement
//
// The stream opens with a hello frame carrying the leader's epoch, then
// ships rec frames in contiguous sequence order, interleaved with ka
// keepalives that double as the leadership lease. A follower whose
// requested position has fallen out of the leader's in-memory backlog is
// first served from the on-disk WAL (when the leader persists one); if
// the position predates disk history too, the stream ends with an end
// frame telling the follower to bootstrap from /repl/v1/snapshot and
// catch up from the snapshot's sequence number.
//
// # Epochs and fencing
//
// Leadership terms are numbered by a monotonically increasing epoch,
// stamped into every record the leader commits (store.Record.Epoch).
// A follower promotes by bumping the highest epoch it has seen; the old
// leader is fenced the moment it observes the higher epoch — on an ack,
// a stream request, or a status probe — after which every in-flight and
// subsequent write on it fails with ErrFenced and the node demotes
// itself to a replica, discarding its divergent suffix via a fresh
// snapshot bootstrap.
//
// # Acknowledged-write durability
//
// With MinSync > 0 a mutation is acknowledged to the client only after
// MinSync followers confirm they applied its sequence number, so an
// acknowledged write survives the loss of the leader: at least MinSync
// replicas hold it, and the election picks the replica with the highest
// (epoch, applied seq). MinSync = 0 is asynchronous shipping — cheaper
// writes, and a failover may lose the tail that was never shipped.
//
// # Failover
//
// Election is lease-based, not quorum-based. A follower that misses
// keepalives for LeaseTimeout polls every peer: a reachable leader with
// an epoch at least its own is rejoined; otherwise the candidate with
// the highest (epoch, applied seq, smallest URL) wins, and if that is
// the local node it promotes in place — its store, already warm at the
// applied sequence, becomes the read-write tree and a new Hub starts
// backlogging from there. Nodes on the losing side of a partition can
// elect a second leader; epoch fencing bounds the damage (the stale
// leader is deposed on first contact) but writes accepted by two
// leaders during a partition diverge, with the higher epoch winning.
// Deploy an odd replica count across failure domains and size
// LeaseTimeout above expected network hiccups.
package repl

import (
	"encoding/json"
	"errors"

	"ofmf/internal/store"
)

// Role names a node's current replication role.
type Role string

// The two roles. A node's role can change at runtime: a replica
// promotes to leader when it wins an election, a fenced leader demotes
// to replica.
const (
	RoleLeader  Role = "leader"
	RoleReplica Role = "replica"
)

// ErrFenced is returned to writers on a leader that has observed a
// higher epoch: another node holds leadership and this node's store
// must no longer acknowledge mutations.
var ErrFenced = errors.New("repl: fenced by a higher epoch")

// ErrSyncTimeout is returned when a semi-synchronous write was not
// acknowledged by MinSync followers within SyncTimeout. The in-memory
// commit stands (matching the store's log-behind contract), but the
// client is told the write failed, preserving the invariant that every
// acknowledged write is on at least MinSync replicas.
var ErrSyncTimeout = errors.New("repl: follower acknowledgement timeout")

// errStaleEpoch rejects an ack or stream carrying an epoch below the
// hub's: the follower is talking to a newer term than it knows and must
// reconnect to adopt it.
var errStaleEpoch = errors.New("repl: stale epoch")

// Status is the /repl/v1/status document, served by every node.
type Status struct {
	// Self is the node's externally reachable base URL.
	Self string `json:"Self"`
	// Role is "leader" or "replica".
	Role Role `json:"Role"`
	// Epoch is the node's current leadership term.
	Epoch uint64 `json:"Epoch"`
	// LastSeq is the last committed sequence number on a leader, the
	// last applied one on a replica.
	LastSeq uint64 `json:"LastSeq"`
	// LeaderSeq is the leader's last advertised sequence number, as a
	// replica last heard it — LeaderSeq-LastSeq is the replica's lag.
	LeaderSeq uint64 `json:"LeaderSeq,omitempty"`
	// LeaderURL is the leader this replica follows (empty on a leader,
	// or while searching).
	LeaderURL string `json:"LeaderURL,omitempty"`
	// Fenced reports a deposed leader that has not finished demoting.
	Fenced bool `json:"Fenced,omitempty"`
	// MinSync is the leader's configured semi-sync follower count.
	MinSync int `json:"MinSync,omitempty"`
	// Followers maps follower peer names to their shipping progress
	// (leader only).
	Followers map[string]Progress `json:"Followers,omitempty"`
}

// Progress is one follower's shipping progress as the leader sees it.
type Progress struct {
	// AckSeq is the highest sequence number the follower acknowledged.
	AckSeq uint64 `json:"AckSeq"`
	// AgoMillis is how long ago the last ack arrived, in milliseconds.
	AgoMillis int64 `json:"AgoMillis"`
}

// snapshotDoc is the /repl/v1/snapshot payload: a full Store.Export
// plus the commit sequence number and epoch it reflects. A follower
// replacing its tree with Resources is exactly caught up to Seq.
type snapshotDoc struct {
	Seq       uint64          `json:"Seq"`
	Epoch     uint64          `json:"Epoch"`
	Resources json.RawMessage `json:"Resources"`
}

// Stream frame types. A frame is one NDJSON line on /repl/v1/stream.
const (
	frameHello = "hello" // first frame: leader epoch + last seq
	frameRec   = "rec"   // one replicated record
	frameKA    = "ka"    // keepalive; refreshes the leadership lease
	frameEnd   = "end"   // stream over; Reason says what to do next
)

// End-frame reasons.
const (
	endSnapshot = "snapshot-required" // position unservable; bootstrap from snapshot
	endBehind   = "leader-behind"     // follower is ahead of this leader; elect
	endFenced   = "fenced"            // this leader was deposed mid-stream
)

// frame is one NDJSON stream frame.
type frame struct {
	T string `json:"t"`
	// E is the leader's epoch (hello, ka, end).
	E uint64 `json:"e,omitempty"`
	// S is the leader's last committed sequence number (hello, ka).
	S uint64 `json:"s,omitempty"`
	// Reason qualifies an end frame.
	Reason string `json:"x,omitempty"`
	// Rec is the shipped record (rec frames).
	Rec *store.Record `json:"r,omitempty"`
}

// ackReq is the /repl/v1/ack request body.
type ackReq struct {
	// Peer names the acknowledging follower (its Self URL).
	Peer string `json:"Peer"`
	// Epoch is the term the follower is applying under.
	Epoch uint64 `json:"Epoch"`
	// Seq is the highest sequence number the follower has applied.
	Seq uint64 `json:"Seq"`
}

// errorDoc is the JSON body of a non-200 replication response.
type errorDoc struct {
	Code   string `json:"Code"`
	Leader string `json:"Leader,omitempty"`
	Epoch  uint64 `json:"Epoch,omitempty"`
}

package repl

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"ofmf/internal/odata"
)

// errResync asks the follower loop to restart followOnce; the snapshot
// flag has already been set when a bootstrap is required.
var errResync = errors.New("repl: resync required")

// needsSnapshot reports (and clears are done by bootstrap) whether the
// replica must replace its tree before streaming. The flag is set at
// Start, on demotion, and whenever the stream reveals a gap — never
// inferred from applied==0, which is a legitimate position on a fresh
// cluster and must not force a re-bootstrap every reconnect.
func (n *Node) needsSnapshot() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.needSnapshot
}

// bootstrap replaces the replica's tree with the leader's snapshot and
// positions the stream cursor at the snapshot's sequence number. The
// replacement goes through PutSubtree, which removes every local
// resource absent from the snapshot — including a deposed leader's
// divergent suffix — and publishes ordinary change notifications, so
// watchers (host index, SSE sequencing) stay coherent.
func (n *Node) bootstrap(ctx context.Context, leader string) error {
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, leader+"/repl/v1/snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return fmt.Errorf("repl: snapshot fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("repl: snapshot fetch: %s from %s", resp.Status, leader)
	}
	var doc snapshotDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return fmt.Errorf("repl: snapshot decode: %w", err)
	}
	var flat map[odata.ID]json.RawMessage
	if err := json.Unmarshal(doc.Resources, &flat); err != nil {
		return fmt.Errorf("repl: snapshot resources: %w", err)
	}
	resources := make(map[odata.ID]any, len(flat))
	for id, raw := range flat {
		resources[id] = raw
	}
	if err := n.st.PutSubtree(n.treeRoot, resources); err != nil {
		return fmt.Errorf("repl: snapshot install: %w", err)
	}
	n.applied.Store(doc.Seq)
	n.setEpoch(doc.Epoch)
	n.mu.Lock()
	n.needSnapshot = false
	n.mu.Unlock()
	if n.m != nil {
		n.m.ReplAppliedSeq.Set(float64(doc.Seq))
	}
	n.log.Info("repl: snapshot bootstrap complete",
		"leader", leader, "seq", doc.Seq, "epoch", doc.Epoch,
		"resources", len(flat), "duration", time.Since(start))
	return nil
}

// followOnce runs one bootstrap-if-needed + stream-and-apply cycle
// against leader, returning when the stream dies, the lease expires,
// or the leader tells the follower to do something else (resync,
// elect). Record application is strict: a record must carry exactly
// applied+1; anything later is a gap that forces a snapshot resync,
// anything earlier is a replay duplicate and is skipped.
func (n *Node) followOnce(ctx context.Context, leader string) error {
	if n.needsSnapshot() {
		if err := n.bootstrap(ctx, leader); err != nil {
			return err
		}
	}

	streamCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	// The lease: any frame resets the watchdog; silence for the full
	// lease kills the stream, sending the loop into election.
	watchdog := time.AfterFunc(n.lease, cancel)
	defer watchdog.Stop()

	from := n.applied.Load()
	url := fmt.Sprintf("%s/repl/v1/stream?from=%d&peer=%s&epoch=%d",
		leader, from, n.cfg.Self, n.epochNow())
	req, err := http.NewRequestWithContext(streamCtx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := n.streamClient.Do(req)
	if err != nil {
		return fmt.Errorf("repl: stream connect: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var ed errorDoc
		json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&ed)
		if ed.Code == "not-leader" && ed.Leader != "" {
			n.setLeader(ed.Leader)
		}
		return fmt.Errorf("repl: stream refused: %s (%s)", resp.Status, ed.Code)
	}

	// The ack pump coalesces acknowledgements: each applied batch pokes
	// it, and while one POST is in flight further applies accumulate,
	// so the next ack carries the newest position. Separate goroutine
	// so a slow ack round-trip never stalls record application.
	ackPoke := make(chan struct{}, 1)
	ackDone := make(chan struct{})
	var ackFailed atomic.Bool
	go func() {
		defer close(ackDone)
		// The first ack always goes out, even at seq 0: it is what
		// registers this follower in the leader's progress table (and
		// unblocks MinSync writes on a fresh cluster).
		var lastAcked uint64
		sent := false
		for {
			select {
			case <-streamCtx.Done():
				return
			case <-ackPoke:
			}
			seq := n.applied.Load()
			if sent && seq <= lastAcked {
				continue
			}
			if err := n.postAck(streamCtx, leader, seq); err != nil {
				if errors.Is(err, errStaleEpoch) {
					// The group moved to a newer term mid-stream;
					// reconnect to adopt it.
					ackFailed.Store(true)
					cancel()
					return
				}
				continue // transient; next poke retries with a newer seq
			}
			lastAcked, sent = seq, true
		}
	}()
	defer func() { cancel(); <-ackDone }()
	poke := func() {
		select {
		case ackPoke <- struct{}{}:
		default:
		}
	}

	dec := json.NewDecoder(resp.Body)
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			if ackFailed.Load() {
				return errResync
			}
			if streamCtx.Err() != nil && ctx.Err() == nil {
				return fmt.Errorf("repl: lease expired after %s of silence from %s", n.lease, leader)
			}
			return fmt.Errorf("repl: stream read: %w", err)
		}
		watchdog.Reset(n.lease)
		switch f.T {
		case frameHello, frameKA:
			if f.E < n.epochNow() {
				return fmt.Errorf("repl: leader %s is on old epoch %d (mine %d)", leader, f.E, n.epochNow())
			}
			n.setEpoch(f.E)
			n.leaderSeq.Store(f.S)
			poke() // re-assert progress so a restarted leader learns it
		case frameRec:
			if f.Rec == nil {
				return fmt.Errorf("repl: rec frame without record")
			}
			applied := n.applied.Load()
			switch {
			case f.Rec.Seq <= applied:
				continue // duplicate from a rewound stream position
			case f.Rec.Seq != applied+1:
				n.mu.Lock()
				n.needSnapshot = true
				n.mu.Unlock()
				return fmt.Errorf("repl: sequence gap: have %d, got %d: %w", applied, f.Rec.Seq, errResync)
			}
			if err := n.st.Apply(*f.Rec); err != nil {
				return fmt.Errorf("repl: apply seq %d: %w", f.Rec.Seq, err)
			}
			n.applied.Store(f.Rec.Seq)
			if f.Rec.Epoch > 0 {
				n.setEpoch(f.Rec.Epoch)
			}
			if n.m != nil {
				n.m.ReplApplied.Add(1)
				n.m.ReplAppliedSeq.Set(float64(f.Rec.Seq))
			}
			poke()
		case frameEnd:
			switch f.Reason {
			case endSnapshot:
				n.mu.Lock()
				n.needSnapshot = true
				n.mu.Unlock()
				return errResync
			case endFenced, endBehind:
				return fmt.Errorf("repl: leader ended stream: %s", f.Reason)
			default:
				return fmt.Errorf("repl: stream ended: %s", f.Reason)
			}
		}
	}
}

func (n *Node) epochNow() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// postAck reports the replica's applied high-water mark to the leader.
func (n *Node) postAck(ctx context.Context, leader string, seq uint64) error {
	body, _ := json.Marshal(ackReq{Peer: n.cfg.Self, Epoch: n.epochNow(), Seq: seq})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, leader+"/repl/v1/ack", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	switch resp.StatusCode {
	case http.StatusNoContent, http.StatusOK:
		return nil
	case http.StatusConflict:
		return errStaleEpoch
	default:
		return fmt.Errorf("repl: ack: %s", resp.Status)
	}
}

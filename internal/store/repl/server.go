package repl

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"ofmf/internal/store"
)

// PathPrefix is where Node.Handler expects to be mounted.
const PathPrefix = "/repl/v1/"

// Handler serves the replication protocol. Mount it at PathPrefix on
// the same listener as the Redfish tree; the endpoints carry
// operational state and raw tree data, so expose the listener only on
// the management network (the same trust domain as /metrics).
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathPrefix+"status", n.handleStatus)
	mux.HandleFunc(PathPrefix+"snapshot", n.handleSnapshot)
	mux.HandleFunc(PathPrefix+"stream", n.handleStream)
	mux.HandleFunc(PathPrefix+"ack", n.handleAck)
	return mux
}

func (n *Node) currentHub() *Hub {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role != RoleLeader {
		return nil
	}
	return n.hub
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// notLeader rejects a leader-only request, pointing the caller at the
// leader this node follows.
func (n *Node) notLeader(w http.ResponseWriter) {
	writeJSON(w, http.StatusConflict, errorDoc{Code: "not-leader", Leader: n.LeaderURL()})
}

func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, n.Status())
}

// handleSnapshot serves the bootstrap snapshot. The newest on-disk
// snapshot is preferred when the follower could stream onward from its
// sequence number (always true with a disk tail; otherwise it must
// still be inside the backlog) — that skips an all-shard export under
// the store's read locks. A diskless or compaction-lagged leader
// exports live instead.
func (n *Node) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	hub := n.currentHub()
	if hub == nil {
		n.notLeader(w)
		return
	}
	if n.cfg.DiskSnapshot != nil {
		resources, seq, ok, err := n.cfg.DiskSnapshot()
		if err == nil && ok && (n.cfg.DiskTail != nil || seq+1 >= hub.RingFirst()) {
			writeJSON(w, http.StatusOK, snapshotDoc{Seq: seq, Epoch: hub.Epoch(), Resources: resources})
			return
		}
	}
	data, seq, err := n.st.Snapshot()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, snapshotDoc{Seq: seq, Epoch: hub.Epoch(), Resources: data})
}

// streamBatch bounds how many backlogged records one ReadFrom round
// copies out while the stream holds no locks.
const streamBatch = 2048

// handleStream serves the NDJSON record stream: hello, then contiguous
// rec frames from ?from=<seq>, with ka keepalives whenever the backlog
// is idle. Positions below the in-memory backlog fall through to the
// on-disk WAL tail; positions below disk history end the stream with a
// snapshot-required frame.
func (n *Node) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if n.ctx.Err() != nil {
		// A stopped node must not hold follower streams open: its
		// listener may still accept while the process shuts down.
		http.Error(w, "node stopped", http.StatusServiceUnavailable)
		return
	}
	hub := n.currentHub()
	if hub == nil {
		n.notLeader(w)
		return
	}
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil {
		http.Error(w, "bad from", http.StatusBadRequest)
		return
	}
	if e, err := strconv.ParseUint(q.Get("epoch"), 10, 64); err == nil && e > hub.Epoch() {
		// The follower has seen a newer term than this leader: we are
		// the stale one. Fence ourselves instead of feeding it.
		hub.Fence(e)
		writeJSON(w, http.StatusConflict, errorDoc{Code: "deposed", Epoch: e})
		return
	}
	peer := q.Get("peer")
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	send := func(f frame) bool {
		if err := enc.Encode(f); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	if !send(frame{T: frameHello, E: hub.Epoch(), S: hub.LastSeq()}) {
		return
	}
	n.log.Info("repl: follower stream opened", "peer", peer, "from", from)

	ka := time.NewTicker(n.keepalive)
	defer ka.Stop()
	ctx := r.Context()
	for {
		recs, state, wait := hub.ReadFrom(from, streamBatch)
		switch state {
		case readFenced:
			send(frame{T: frameEnd, Reason: endFenced, E: hub.Epoch()})
			return
		case readAhead:
			send(frame{T: frameEnd, Reason: endBehind, E: hub.Epoch()})
			return
		case readGap:
			recs = n.diskTail(from)
			if len(recs) == 0 {
				send(frame{T: frameEnd, Reason: endSnapshot, E: hub.Epoch()})
				return
			}
		}
		if len(recs) > 0 {
			for i := range recs {
				if !send(frame{T: frameRec, Rec: &recs[i]}) {
					return
				}
			}
			from = recs[len(recs)-1].Seq
			if n.m != nil {
				n.m.ReplShipped.Add(float64(len(recs)))
			}
			continue
		}
		select {
		case <-ctx.Done():
			return
		case <-n.ctx.Done():
			return
		case <-hub.FencedCh():
			send(frame{T: frameEnd, Reason: endFenced, E: hub.Epoch()})
			return
		case <-wait:
		case <-ka.C:
			if !send(frame{T: frameKA, E: hub.Epoch(), S: hub.LastSeq()}) {
				return
			}
		}
	}
}

// diskTail reads the contiguous WAL run after fromSeq off disk, for
// followers that outran the in-memory backlog. A flush first makes the
// newest buffered appends visible, so the disk run has a chance to
// reconnect with the backlog's start.
func (n *Node) diskTail(fromSeq uint64) []store.Record {
	if n.cfg.DiskTail == nil {
		return nil
	}
	if n.cfg.DiskFlush != nil {
		if err := n.cfg.DiskFlush(); err != nil {
			n.log.Warn("repl: disk flush before tail", "err", err)
		}
	}
	recs, err := n.cfg.DiskTail(fromSeq)
	if err != nil {
		n.log.Warn("repl: disk tail", "from", fromSeq, "err", err)
		return nil
	}
	return recs
}

func (n *Node) handleAck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	hub := n.currentHub()
	if hub == nil {
		n.notLeader(w)
		return
	}
	var req ackReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad ack", http.StatusBadRequest)
		return
	}
	switch err := hub.Ack(req.Peer, req.Epoch, req.Seq); err {
	case nil:
		w.WriteHeader(http.StatusNoContent)
	case ErrFenced:
		writeJSON(w, http.StatusConflict, errorDoc{Code: "deposed", Epoch: hub.FencedBy()})
	case errStaleEpoch:
		writeJSON(w, http.StatusConflict, errorDoc{Code: "stale", Epoch: hub.Epoch()})
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

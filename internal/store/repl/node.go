package repl

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ofmf/internal/obsv"
	"ofmf/internal/odata"
	"ofmf/internal/resilience"
	"ofmf/internal/store"
)

// Config wires one node into a replication group.
type Config struct {
	// Store is the node's resource store. On a leader it gets a Tee
	// backend attached; on a replica it stays backend-less and is
	// mutated only through Store.Apply.
	Store *store.Store
	// Self is this node's externally reachable base URL
	// (e.g. http://10.0.0.1:8080); peers use it to stream from and ack
	// to this node, and elections order candidates by it.
	Self string
	// Peers are the other nodes' base URLs.
	Peers []string
	// Leader starts the node as the group's leader. Exactly one node
	// should boot with it; everyone else joins as a replica and
	// discovers the leader by polling peer status.
	Leader bool
	// TreeRoot is the subtree snapshots replace (default /redfish/v1).
	TreeRoot odata.ID
	// BootEpoch seeds a booting leader's term, normally the highest
	// epoch recovered from its WAL so a restart continues its last term
	// (minimum 1). Ignored for replicas, which adopt the leader's.
	BootEpoch uint64
	// MinSync, SyncTimeout and RingSize configure the Hub; see
	// HubConfig.
	MinSync     int
	SyncTimeout time.Duration
	RingSize    int
	// LeaseTimeout is how long a replica tolerates a silent stream
	// before suspecting the leader and holding an election. The leader
	// sends keepalives every LeaseTimeout/3. Default 3s.
	LeaseTimeout time.Duration
	// Inner is a booting leader's recovered durability backend; the Tee
	// forwards every batch to it. Nil runs the leader in-memory.
	Inner store.Backend
	// DiskTail, DiskFlush and DiskSnapshot expose the leader's on-disk
	// WAL to followers that outran the in-memory backlog (normally
	// persist.FileBackend's ReadRecords/Flush/LatestSnapshot). All
	// optional; without them a lagging follower re-bootstraps from a
	// live snapshot instead.
	DiskTail     func(fromSeq uint64) ([]store.Record, error)
	DiskFlush    func() error
	DiskSnapshot func() (resources []byte, seq uint64, ok bool, err error)
	// PromoteBackend, when set, gives a promoted replica durability: it
	// is called with the store and the applied sequence number and
	// returns a backend already positioned there (normally
	// persist.Open + FileBackend.Bootstrap). An error is logged and the
	// new leader continues in-memory — availability over durability.
	PromoteBackend func(st *store.Store, seq uint64) (store.Backend, error)
	// OnLeader and OnFollower run (outside node locks) after every role
	// change, including the initial one; the service layer uses them to
	// toggle replica read-only mode and the liveness sweeper.
	OnLeader   func(epoch uint64)
	OnFollower func(leaderURL string)
	// Client is used for status polls, snapshots and acks; default a
	// resilience client with a lease-scaled attempt timeout.
	// StreamClient is used for the long-lived record stream; default
	// resilience.NewStreamingHTTPClient. Tests inject FaultTransports
	// here.
	Client       *http.Client
	StreamClient *http.Client
	Logger       *slog.Logger
	Metrics      *obsv.Metrics
}

// Node is one member of a replication group. It serves the /repl/v1
// protocol (Handler), runs the follower loop while a replica, and owns
// the Hub while the leader.
type Node struct {
	cfg          Config
	st           *store.Store
	log          *slog.Logger
	m            *obsv.Metrics
	client       *http.Client
	streamClient *http.Client
	lease        time.Duration
	keepalive    time.Duration
	treeRoot     odata.ID

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu           sync.Mutex
	role         Role
	hub          *Hub   // leader only
	epoch        uint64 // replica: highest term seen; leader: hub's term
	leaderURL    string // replica: current leader
	needSnapshot bool

	applied   atomic.Uint64 // replica: last applied sequence number
	leaderSeq atomic.Uint64 // replica: leader's last advertised seq
}

// NewNode validates cfg and builds the node. Call Start to assume the
// configured role.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("repl: Config.Store is required")
	}
	if cfg.Self == "" {
		return nil, fmt.Errorf("repl: Config.Self is required")
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 3 * time.Second
	}
	if cfg.TreeRoot == "" {
		cfg.TreeRoot = "/redfish/v1"
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	n := &Node{
		cfg:       cfg,
		st:        cfg.Store,
		log:       cfg.Logger.With("repl_self", cfg.Self),
		m:         cfg.Metrics,
		lease:     cfg.LeaseTimeout,
		keepalive: cfg.LeaseTimeout / 3,
		treeRoot:  cfg.TreeRoot,
		role:      RoleReplica,
	}
	n.client = cfg.Client
	if n.client == nil {
		p := resilience.DefaultPolicy()
		p.AttemptTimeout = n.lease
		p.MaxAttempts = 1
		n.client = resilience.NewHTTPClient(p)
	}
	n.streamClient = cfg.StreamClient
	if n.streamClient == nil {
		n.streamClient = resilience.NewStreamingHTTPClient(resilience.DefaultPolicy())
	}
	n.ctx, n.cancel = context.WithCancel(context.Background())
	return n, nil
}

// Start assumes the configured role: a leader attaches its Tee backend
// and starts serving immediately; a replica begins the follow loop
// (leader discovery, snapshot bootstrap, stream apply, election).
func (n *Node) Start() {
	if n.cfg.Leader {
		epoch := n.cfg.BootEpoch
		if epoch == 0 {
			epoch = 1
		}
		n.mu.Lock()
		n.becomeLeaderLocked(epoch, n.st.Seq(), n.cfg.Inner)
		n.mu.Unlock()
		if n.cfg.OnLeader != nil {
			n.cfg.OnLeader(epoch)
		}
		n.log.Info("repl: serving as leader", "epoch", epoch, "seq", n.st.Seq())
		return
	}
	n.mu.Lock()
	n.role = RoleReplica
	n.needSnapshot = true
	n.mu.Unlock()
	if n.cfg.OnFollower != nil {
		n.cfg.OnFollower("")
	}
	n.wg.Add(1)
	go n.followerLoop()
}

// Stop tears the node down: the follower loop exits, streams close,
// and a leader's hub stops accepting waits. The store itself is left
// attached; the caller closes it.
func (n *Node) Stop() {
	n.cancel()
	n.mu.Lock()
	hub := n.hub
	n.mu.Unlock()
	if hub != nil {
		// Fail writes parked in WaitAcked immediately instead of letting
		// them ride out SyncTimeout on a node that is going away.
		hub.Fence(hub.Epoch())
	}
	n.wg.Wait()
}

// Leading reports whether the node currently holds leadership.
func (n *Node) Leading() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role == RoleLeader && n.hub != nil && !n.hub.Fenced()
}

// LeaderURL returns the leader the node follows, or its own Self URL
// while it leads.
func (n *Node) LeaderURL() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == RoleLeader {
		return n.cfg.Self
	}
	return n.leaderURL
}

// Status reports the node's replication state.
func (n *Node) Status() Status {
	n.mu.Lock()
	role, hub, leader, epoch := n.role, n.hub, n.leaderURL, n.epoch
	n.mu.Unlock()
	if role == RoleLeader && hub != nil {
		return Status{
			Self:      n.cfg.Self,
			Role:      RoleLeader,
			Epoch:     hub.Epoch(),
			LastSeq:   hub.LastSeq(),
			Fenced:    hub.Fenced(),
			MinSync:   n.cfg.MinSync,
			Followers: hub.Progress(),
		}
	}
	return Status{
		Self:      n.cfg.Self,
		Role:      RoleReplica,
		Epoch:     epoch,
		LastSeq:   n.applied.Load(),
		LeaderSeq: n.leaderSeq.Load(),
		LeaderURL: leader,
	}
}

// becomeLeaderLocked installs a hub and tee for a new term. Caller
// holds n.mu and fires the OnLeader callback after unlocking.
func (n *Node) becomeLeaderLocked(epoch, lastSeq uint64, inner store.Backend) {
	hub := NewHub(HubConfig{
		Epoch:       epoch,
		StartSeq:    lastSeq,
		RingSize:    n.cfg.RingSize,
		MinSync:     n.cfg.MinSync,
		SyncTimeout: n.cfg.SyncTimeout,
		Logger:      n.log,
		Metrics:     n.m,
	})
	tee := NewTee(hub, inner, n.st.ShardCount())
	n.st.SetEpoch(epoch)
	n.st.AttachBackend(tee, lastSeq)
	n.hub = hub
	n.role = RoleLeader
	n.epoch = epoch
	n.leaderURL = ""
	n.wg.Add(1)
	go n.watchFence(hub)
}

// watchFence demotes the node when its hub is deposed by a higher
// epoch: detach and close the backend (failing no further writes —
// they already fail with ErrFenced), discard the possibly divergent
// local suffix by forcing a snapshot bootstrap, and rejoin as a
// replica.
func (n *Node) watchFence(hub *Hub) {
	defer n.wg.Done()
	select {
	case <-n.ctx.Done():
		return
	case <-hub.FencedCh():
	}
	if n.ctx.Err() != nil {
		return // Stop fenced the hub; no demotion, the node is done
	}
	n.mu.Lock()
	if n.hub != hub {
		n.mu.Unlock()
		return
	}
	if err := n.st.Close(); err != nil {
		n.log.Warn("repl: closing deposed leader backend", "err", err)
	}
	n.hub = nil
	n.role = RoleReplica
	if by := hub.FencedBy(); by > n.epoch {
		n.epoch = by
	}
	n.leaderURL = ""
	n.needSnapshot = true
	// The local tail may diverge from the new leader's history; the
	// snapshot bootstrap replaces the whole tree, so reset applied and
	// let the stream position come from the snapshot.
	n.applied.Store(0)
	n.mu.Unlock()
	if n.cfg.OnFollower != nil {
		n.cfg.OnFollower("")
	}
	n.log.Warn("repl: deposed; rejoining as replica", "old_epoch", hub.Epoch(), "by_epoch", hub.FencedBy())
	n.wg.Add(1)
	go n.followerLoop()
}

// promote makes this replica the leader for a new term: epoch bumps
// past every term it has seen, the store (already caught up to the
// applied sequence) gets a fresh hub and tee, and — when configured —
// a durability backend bootstrapped at that position.
func (n *Node) promote() {
	n.mu.Lock()
	if n.role == RoleLeader {
		n.mu.Unlock()
		return
	}
	epoch := n.epoch + 1
	applied := n.applied.Load()
	var inner store.Backend
	if n.cfg.PromoteBackend != nil {
		b, err := n.cfg.PromoteBackend(n.st, applied)
		if err != nil {
			n.log.Error("repl: promote without durability", "err", err)
		} else {
			inner = b
		}
	}
	n.becomeLeaderLocked(epoch, applied, inner)
	n.mu.Unlock()
	if n.cfg.OnLeader != nil {
		n.cfg.OnLeader(epoch)
	}
	n.log.Warn("repl: promoted to leader", "epoch", epoch, "seq", applied, "durable", inner != nil)
}

// peerView is one status poll result.
type peerView struct {
	url string
	st  Status
	ok  bool
}

// pollPeers fetches every peer's status concurrently.
func (n *Node) pollPeers(ctx context.Context) []peerView {
	views := make([]peerView, len(n.cfg.Peers))
	var wg sync.WaitGroup
	for i, peer := range n.cfg.Peers {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			views[i] = peerView{url: peer}
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/repl/v1/status", nil)
			if err != nil {
				return
			}
			resp, err := n.client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			if err := json.NewDecoder(resp.Body).Decode(&views[i].st); err != nil {
				return
			}
			views[i].ok = true
		}(i, peer)
	}
	wg.Wait()
	return views
}

// electOrFind locates a leader to follow or decides this node should
// promote. A reachable, unfenced leader with an epoch at least ours
// wins outright. Otherwise the reachable replicas plus this node hold
// a deterministic election: highest epoch, then highest applied
// sequence, then smallest URL — every reachable node computes the same
// winner. Unreachable peers don't vote; a fully partitioned node
// elects itself (see the package comment on split-brain) — unless it
// has never followed any leader (epoch 0, nothing applied): a cold
// replica booting before its leader must keep looking, not promote an
// empty tree into a term that equal-epoch fencing could never depose.
func (n *Node) electOrFind(ctx context.Context) (leader string, promote bool) {
	n.mu.Lock()
	myEpoch, mySelf := n.epoch, n.cfg.Self
	n.mu.Unlock()
	myApplied := n.applied.Load()

	views := n.pollPeers(ctx)
	var bestLeader string
	var bestLeaderEpoch uint64
	for _, v := range views {
		if !v.ok || v.st.Role != RoleLeader || v.st.Fenced {
			continue
		}
		if v.st.Epoch >= myEpoch && v.st.Epoch >= bestLeaderEpoch {
			bestLeader, bestLeaderEpoch = v.url, v.st.Epoch
		}
	}
	if bestLeader != "" {
		return bestLeader, false
	}

	if myEpoch == 0 && myApplied == 0 {
		return "", false // cold replica: nothing to lead with yet
	}
	winE, winS, winURL := myEpoch, myApplied, mySelf
	for _, v := range views {
		if !v.ok || v.st.Role != RoleReplica {
			continue
		}
		e, s, u := v.st.Epoch, v.st.LastSeq, v.st.Self
		if u == "" {
			u = v.url
		}
		if e > winE || (e == winE && s > winS) || (e == winE && s == winS && u < winURL) {
			winE, winS, winURL = e, s, u
		}
	}
	return "", winURL == mySelf
}

// followerLoop is the replica's life: find (or become) the leader,
// bootstrap if needed, stream and apply until the stream dies, repeat.
func (n *Node) followerLoop() {
	defer n.wg.Done()
	retry := n.lease / 3
	if retry < 50*time.Millisecond {
		retry = 50 * time.Millisecond
	}
	for n.ctx.Err() == nil {
		leader, promote := n.electOrFind(n.ctx)
		if promote {
			n.promote()
			return
		}
		if leader == "" {
			// Another candidate won (or nobody is reachable); give the
			// winner a beat to assume leadership, then look again.
			if !sleepCtx(n.ctx, retry) {
				return
			}
			continue
		}
		n.setLeader(leader)
		err := n.followOnce(n.ctx, leader)
		if n.ctx.Err() != nil {
			return
		}
		if err != nil {
			n.log.Warn("repl: stream ended", "leader", leader, "err", err)
		}
		if !sleepCtx(n.ctx, retry/4) {
			return
		}
	}
}

func (n *Node) setLeader(url string) {
	n.mu.Lock()
	changed := n.leaderURL != url
	n.leaderURL = url
	n.mu.Unlock()
	if changed {
		if n.cfg.OnFollower != nil {
			n.cfg.OnFollower(url)
		}
		n.log.Info("repl: following", "leader", url)
	}
}

// setEpoch adopts a higher term observed from the leader.
func (n *Node) setEpoch(e uint64) {
	n.mu.Lock()
	if e > n.epoch {
		n.epoch = e
		if n.m != nil {
			n.m.ReplEpoch.Set(float64(e))
		}
	}
	n.mu.Unlock()
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

package repl

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/service"
)

// quietLogger keeps replication chatter out of test output.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// testNode is one in-process cluster member: a full OFMF service and a
// replication node sharing one listener, exactly as cmd/ofmf wires
// them.
type testNode struct {
	svc  *service.Service
	node *Node
	mux  *http.ServeMux
	srv  *httptest.Server
	dead atomic.Bool
}

func (tn *testNode) URL() string { return tn.srv.URL }

// kill simulates the process dying: open connections are severed and
// the listener stops accepting.
func (tn *testNode) kill() {
	tn.dead.Store(true)
	tn.node.Stop()
	tn.srv.CloseClientConnections()
	tn.srv.Close()
}

type testCluster struct {
	t     *testing.T
	nodes []*testNode
}

// startTestCluster builds a 1-leader/(n-1)-replica cluster. mut can
// adjust each node's Config before the node is built (MinSync, ring
// size, fault-injecting clients, ...). All listeners exist before any
// node starts, so peer discovery never races handler registration.
func startTestCluster(t *testing.T, n int, mut func(i int, cfg *Config)) *testCluster {
	t.Helper()
	c := &testCluster{t: t}
	muxes := make([]*http.ServeMux, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		muxes[i] = http.NewServeMux()
		srv := httptest.NewServer(muxes[i])
		urls[i] = srv.URL
		c.nodes = append(c.nodes, &testNode{mux: muxes[i], srv: srv})
	}
	for i := 0; i < n; i++ {
		tn := c.nodes[i]
		tn.svc = service.New(service.Config{Logger: quietLogger(), DirectWrites: true})
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		cfg := Config{
			Store:        tn.svc.Store(),
			Self:         urls[i],
			Peers:        peers,
			Leader:       i == 0,
			MinSync:      1,
			SyncTimeout:  5 * time.Second,
			LeaseTimeout: 300 * time.Millisecond,
			Logger:       quietLogger(),
		}
		if mut != nil {
			mut(i, &cfg)
		}
		svc := tn.svc
		var node *Node
		if cfg.OnLeader == nil {
			cfg.OnLeader = func(uint64) { svc.ClearReplicaMode() }
		}
		if cfg.OnFollower == nil {
			cfg.OnFollower = func(string) {
				svc.SetReplicaMode(func() string { return node.LeaderURL() }, false)
			}
		}
		var err error
		node, err = NewNode(cfg)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		tn.node = node
		tn.mux.Handle("/", tn.svc.Handler())
		tn.mux.Handle(PathPrefix, node.Handler())
	}
	for _, tn := range c.nodes {
		tn.node.Start()
	}
	t.Cleanup(func() {
		// Stop every node before closing any listener, and sever the
		// long-lived replication streams explicitly — Close alone waits
		// for active connections that would otherwise idle out a lease.
		for _, tn := range c.nodes {
			if !tn.dead.Load() {
				tn.node.Stop()
			}
		}
		for _, tn := range c.nodes {
			if !tn.dead.Load() {
				tn.srv.CloseClientConnections()
				tn.srv.Close()
			}
			tn.svc.Close()
		}
	})
	return c
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out after %s waiting for %s", d, what)
}

// waitConverged waits until every live node's applied sequence matches
// the leader's last committed one.
func (c *testCluster) waitConverged(d time.Duration) {
	c.t.Helper()
	waitFor(c.t, d, "cluster convergence", func() bool {
		var leader *testNode
		for _, tn := range c.nodes {
			if !tn.dead.Load() && tn.node.Leading() {
				leader = tn
			}
		}
		if leader == nil {
			return false
		}
		want := leader.node.Status().LastSeq
		for _, tn := range c.nodes {
			if tn.dead.Load() || tn == leader {
				continue
			}
			if tn.node.Status().LastSeq != want {
				return false
			}
		}
		return true
	})
}

func (c *testCluster) leader() *testNode {
	c.t.Helper()
	for _, tn := range c.nodes {
		if !tn.dead.Load() && tn.node.Leading() {
			return tn
		}
	}
	c.t.Fatal("no live leader")
	return nil
}

// postChassis creates one chassis through the HTTP surface and returns
// the created resource's URI. A 201 response is an acknowledged write.
func postChassis(client *http.Client, base, name string) (odata.ID, error) {
	body, _ := json.Marshal(map[string]any{"ChassisType": "Sled", "Name": name})
	resp, err := client.Post(base+string(service.ChassisURI), "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		return "", fmt.Errorf("POST chassis: %s: %s", resp.Status, data)
	}
	var created redfish.Chassis
	if err := json.Unmarshal(data, &created); err != nil {
		return "", err
	}
	return created.ODataID, nil
}

// TestReplShipAndServe is the basic shipping path: writes on the
// leader appear on every replica, replica GETs serve locally, and the
// trees converge byte-identically.
func TestReplShipAndServe(t *testing.T) {
	c := startTestCluster(t, 3, nil)
	leader := c.nodes[0]
	waitFor(t, 5*time.Second, "followers connected", func() bool {
		return len(leader.node.Status().Followers) == 2
	})

	client := leader.srv.Client()
	var uris []odata.ID
	for i := 0; i < 25; i++ {
		uri, err := postChassis(client, leader.URL(), fmt.Sprintf("sled-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		uris = append(uris, uri)
	}
	c.waitConverged(5 * time.Second)

	for _, replica := range c.nodes[1:] {
		if replica.node.Leading() {
			t.Fatal("replica claims leadership")
		}
		// Replica GETs are served from the local replicated tree, not
		// redirected: a plain client that refuses redirects must get 200.
		noRedirect := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse
		}}
		resp, err := noRedirect.Get(replica.URL() + string(uris[len(uris)-1]))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replica GET %s: %s", uris[len(uris)-1], resp.Status)
		}
	}

	want, err := leader.svc.Store().Export()
	if err != nil {
		t.Fatal(err)
	}
	for i, replica := range c.nodes[1:] {
		got, err := replica.svc.Store().Export()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("replica %d export differs from leader (%d vs %d bytes)", i+1, len(got), len(want))
		}
	}
}

// TestReplReplicaForwardsWrites: mutations against a replica carry the
// client to the leader — as a 307 with the leader's Location by
// default, transparently when the default client follows it.
func TestReplReplicaForwardsWrites(t *testing.T) {
	c := startTestCluster(t, 2, nil)
	leader, replica := c.nodes[0], c.nodes[1]
	waitFor(t, 5*time.Second, "follower connected", func() bool {
		return len(leader.node.Status().Followers) == 1
	})

	// Raw redirect first: the Location must point at the leader.
	noRedirect := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := noRedirect.Post(replica.URL()+string(service.ChassisURI), "application/json",
		bytes.NewReader([]byte(`{"ChassisType":"Sled"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("replica POST: want 307, got %s", resp.Status)
	}
	if loc := resp.Header.Get("Location"); loc != leader.URL()+string(service.ChassisURI) {
		t.Fatalf("replica POST Location = %q, want leader %q", loc, leader.URL()+string(service.ChassisURI))
	}

	// A redirect-following client lands the write on the leader.
	uri, err := postChassis(http.DefaultClient, replica.URL(), "via-replica")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := leader.svc.Store().Get(uri); err != nil {
		t.Fatalf("write via replica did not reach leader: %v", err)
	}

	// SSE follows the leader too: the event plane is leader-owned.
	resp, err = noRedirect.Get(replica.URL() + string(service.SSEURI))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("replica SSE GET: want 307, got %s", resp.Status)
	}
}

// TestReplSmoke is the failover gate `make replsmoke` runs: a
// 1-leader/2-replica cluster loses its leader under mixed load; a
// replica must promote, clients must be carried to the new leader, no
// acknowledged write may be lost, and the survivors' trees must
// converge byte-identically.
func TestReplSmoke(t *testing.T) {
	c := startTestCluster(t, 3, nil)
	first := c.nodes[0]
	waitFor(t, 5*time.Second, "followers connected", func() bool {
		return len(first.node.Status().Followers) == 2
	})

	// Writers POST against whatever node currently works, following
	// redirects like a real Redfish client; every 201 is an
	// acknowledged write and must survive the failover.
	const writers, writesPer = 4, 25
	var mu sync.Mutex
	var acked []odata.ID
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{Timeout: 2 * time.Second}
			for i := 0; i < writesPer; i++ {
				name := fmt.Sprintf("w%d-c%d", w, i)
				deadline := time.Now().Add(15 * time.Second)
				for {
					var uri odata.ID
					var err error
					for _, tn := range c.nodes {
						if tn.dead.Load() {
							continue
						}
						if uri, err = postChassis(client, tn.URL(), name); err == nil {
							break
						}
					}
					if err == nil {
						mu.Lock()
						acked = append(acked, uri)
						mu.Unlock()
						break
					}
					if time.Now().After(deadline) {
						t.Errorf("writer %d: write %d never acknowledged: %v", w, i, err)
						return
					}
					time.Sleep(10 * time.Millisecond)
				}
			}
		}(w)
	}

	// Let the load ramp, then kill the leader mid-stream.
	waitFor(t, 10*time.Second, "load ramp", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(acked) >= 10
	})
	first.kill()

	// A replica must take over.
	var promoted *testNode
	waitFor(t, 10*time.Second, "replica promotion", func() bool {
		for _, tn := range c.nodes[1:] {
			if tn.node.Leading() {
				promoted = tn
				return true
			}
		}
		return false
	})
	if got := promoted.node.Status().Epoch; got < 2 {
		t.Fatalf("promoted leader epoch = %d, want >= 2", got)
	}

	wg.Wait()
	if t.Failed() {
		return
	}
	c.waitConverged(10 * time.Second)

	// Zero acknowledged-write loss: every 201'd URI is on the new leader.
	lost := 0
	for _, uri := range acked {
		if _, _, err := promoted.svc.Store().Get(uri); err != nil {
			t.Errorf("acknowledged write lost in failover: %s", uri)
			lost++
		}
	}
	mu.Lock()
	total := len(acked)
	mu.Unlock()
	if total != writers*writesPer {
		t.Fatalf("acknowledged %d writes, want %d", total, writers*writesPer)
	}
	t.Logf("failover survived: %d acknowledged writes, %d lost, new epoch %d",
		total, lost, promoted.node.Status().Epoch)

	// Byte-identical convergence across the survivors.
	want, err := promoted.svc.Store().Export()
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range c.nodes[1:] {
		if tn == promoted || tn.dead.Load() {
			continue
		}
		got, err := tn.svc.Store().Export()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("survivor exports diverge (%d vs %d bytes)", len(got), len(want))
		}
	}
}

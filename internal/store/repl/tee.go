package repl

import "ofmf/internal/store"

// Tee is the replication-aware store backend a leader runs: every
// committed record batch is offered to the shipping Hub and, when the
// leader also persists, forwarded to the inner durability backend. The
// wait it returns completes only when the inner backend's wait does AND
// the batch's last record clears the hub's semi-sync bar — so a client
// ack means "on disk here and applied by MinSync replicas", and a
// fenced leader fails the wait instead of acknowledging a write its
// successor will never see.
type Tee struct {
	hub          *Hub
	inner        store.Backend
	shardedInner store.ShardedBackend
	shards       int
}

// NewTee wraps inner (which may be nil for a diskless leader) for a
// store with storeShards shards. The hub itself is order-insensitive —
// it reassembles the global sequence — so the tee advertises whatever
// shard count lets the inner backend keep its own ordering contract:
// storeShards when inner is nil or sharded to match (per-shard appends
// proceed without a global serialization point), 1 otherwise so the
// store serializes the single inner stream in commit order.
func NewTee(hub *Hub, inner store.Backend, storeShards int) *Tee {
	t := &Tee{hub: hub, inner: inner, shards: storeShards}
	if sb, ok := inner.(store.ShardedBackend); ok && sb.Shards() == storeShards {
		t.shardedInner = sb
	} else if inner != nil {
		t.shards = 1
	}
	if t.shards < 1 {
		t.shards = 1
	}
	return t
}

// Hub returns the shipping hub the tee feeds.
func (t *Tee) Hub() *Hub { return t.hub }

// Shards implements store.ShardedBackend.
func (t *Tee) Shards() int { return t.shards }

// Append implements store.Backend (the store uses it when the tee
// advertises a single stream).
func (t *Tee) Append(batch []store.Record) func() error {
	return t.append(-1, batch)
}

// AppendShard implements store.ShardedBackend.
func (t *Tee) AppendShard(shard int, batch []store.Record) func() error {
	return t.append(shard, batch)
}

func (t *Tee) append(shard int, batch []store.Record) func() error {
	if len(batch) == 0 {
		return nil
	}
	var innerWait func() error
	if t.shardedInner != nil && shard >= 0 {
		innerWait = t.shardedInner.AppendShard(shard, batch)
	} else if t.inner != nil {
		innerWait = t.inner.Append(batch)
	}
	t.hub.Offer(batch)
	last := batch[len(batch)-1].Seq
	return func() error {
		if innerWait != nil {
			if err := innerWait(); err != nil {
				return err
			}
		}
		return t.hub.WaitAcked(last)
	}
}

// Close closes the inner durability backend, if any. The hub outlives
// the tee only long enough for the owning node to tear it down.
func (t *Tee) Close() error {
	if t.inner != nil {
		return t.inner.Close()
	}
	return nil
}

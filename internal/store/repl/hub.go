package repl

import (
	"fmt"
	"log/slog"
	"sync"
	"time"

	"ofmf/internal/obsv"
	"ofmf/internal/store"
)

// HubConfig configures a leader's shipping hub.
type HubConfig struct {
	// Epoch is the leadership term every shipped record belongs to. A
	// hub serves exactly one term; promotion builds a new hub.
	Epoch uint64
	// StartSeq is the last sequence number committed before this hub
	// took over; the backlog begins at StartSeq+1.
	StartSeq uint64
	// RingSize bounds the in-memory backlog, in records. A follower
	// that falls further behind is served from disk (DiskTail) or told
	// to re-bootstrap from a snapshot. Default 65536.
	RingSize int
	// MinSync is how many followers must acknowledge a record before
	// the write that committed it is acknowledged to the client.
	// 0 ships asynchronously.
	MinSync int
	// SyncTimeout bounds how long a semi-sync write waits for follower
	// acks before failing with ErrSyncTimeout. Default 5s.
	SyncTimeout time.Duration
	// Logger and Metrics are optional.
	Logger  *slog.Logger
	Metrics *obsv.Metrics
}

// entry is one backlogged record plus its commit time, the base of the
// ack-lag measurement.
type entry struct {
	rec store.Record
	at  time.Time
}

// ackWaiter parks one semi-sync write until need followers acknowledge
// seq (ch is closed), the hub is fenced, or the waiter times out.
type ackWaiter struct {
	seq  uint64
	need int
	ch   chan struct{}
}

// followerState is the hub's view of one follower's progress.
type followerState struct {
	ackSeq uint64
	lastAt time.Time
}

// readState classifies a ReadFrom outcome.
type readState int

const (
	readOK     readState = iota // records returned, or wait for more
	readGap                     // position below the backlog; try disk, else snapshot
	readAhead                   // follower is ahead of this leader
	readFenced                  // hub deposed; stream must end
)

// Hub is the leader-side replication core: it reassembles the global
// commit order from per-shard append batches, keeps a bounded in-memory
// backlog for follower streams, tracks follower acknowledgements, and
// parks semi-synchronous writes until enough followers confirm.
//
// Offer is called under store shard write locks and must stay cheap;
// everything slow (waiting, streaming) happens on other goroutines.
type Hub struct {
	epoch       uint64
	ringMax     int
	minSync     int
	syncTimeout time.Duration
	log         *slog.Logger
	m           *obsv.Metrics

	mu        sync.Mutex
	next      uint64           // next contiguous sequence number expected
	pending   map[uint64]entry // stamped but not yet contiguous (cross-shard reorder)
	ring      []entry          // contiguous backlog; ring[i].rec.Seq == ringFirst+i
	ringFirst uint64           // seq of ring[0]; ringFirst+len(ring) == next
	notify    chan struct{}    // closed and replaced when the backlog grows
	fenced    bool
	fencedBy  uint64
	fencedCh  chan struct{}
	acks      map[string]*followerState
	maxAcked  uint64
	waiters   map[*ackWaiter]struct{}
}

// NewHub builds a hub for one leadership term.
func NewHub(cfg HubConfig) *Hub {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 65536
	}
	if cfg.SyncTimeout <= 0 {
		cfg.SyncTimeout = 5 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	h := &Hub{
		epoch:       cfg.Epoch,
		ringMax:     cfg.RingSize,
		minSync:     cfg.MinSync,
		syncTimeout: cfg.SyncTimeout,
		log:         cfg.Logger,
		m:           cfg.Metrics,
		next:        cfg.StartSeq + 1,
		ringFirst:   cfg.StartSeq + 1,
		pending:     make(map[uint64]entry),
		notify:      make(chan struct{}),
		fencedCh:    make(chan struct{}),
		acks:        make(map[string]*followerState),
		waiters:     make(map[*ackWaiter]struct{}),
	}
	if h.m != nil {
		h.m.ReplEpoch.Set(float64(h.epoch))
	}
	return h
}

// Epoch returns the hub's leadership term.
func (h *Hub) Epoch() uint64 { return h.epoch }

// Offer hands the hub one stamped batch from one store shard. Batches
// from different shards interleave, so records park in pending until
// the global order is contiguous, then move to the backlog and wake
// streams. Called under the shard's write lock: O(len(batch)) map and
// slice work only.
func (h *Hub) Offer(batch []store.Record) {
	if len(batch) == 0 {
		return
	}
	now := time.Now()
	h.mu.Lock()
	for _, rec := range batch {
		if rec.Seq >= h.next {
			h.pending[rec.Seq] = entry{rec: rec, at: now}
		}
	}
	grew := false
	for {
		e, ok := h.pending[h.next]
		if !ok {
			break
		}
		delete(h.pending, h.next)
		h.ring = append(h.ring, e)
		h.next++
		grew = true
	}
	if grew {
		// Trim in chunks so eviction cost amortizes to O(1) per record.
		if len(h.ring) > h.ringMax {
			drop := len(h.ring) - h.ringMax*3/4
			old := len(h.ring)
			n := copy(h.ring, h.ring[drop:])
			for i := n; i < old; i++ {
				h.ring[i] = entry{}
			}
			h.ring = h.ring[:n]
			h.ringFirst += uint64(drop)
		}
		close(h.notify)
		h.notify = make(chan struct{})
	}
	last := h.next - 1
	h.mu.Unlock()
	if grew && h.m != nil {
		h.m.ReplAppliedSeq.Set(float64(last))
	}
}

// LastSeq returns the last contiguously committed sequence number.
func (h *Hub) LastSeq() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.next - 1
}

// RingFirst returns the oldest backlogged sequence number.
func (h *Hub) RingFirst() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ringFirst
}

// ReadFrom copies out up to max backlogged records with sequence
// numbers above fromSeq. When none are available yet it returns an
// empty slice plus a channel that closes when the backlog grows; the
// other readStates report positions the backlog cannot serve.
func (h *Hub) ReadFrom(fromSeq uint64, max int) ([]store.Record, readState, <-chan struct{}) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.fenced {
		return nil, readFenced, nil
	}
	switch {
	case fromSeq >= h.next:
		return nil, readAhead, nil
	case fromSeq == h.next-1:
		return nil, readOK, h.notify
	case fromSeq+1 < h.ringFirst:
		return nil, readGap, nil
	}
	i := int(fromSeq + 1 - h.ringFirst)
	n := len(h.ring) - i
	if n > max {
		n = max
	}
	recs := make([]store.Record, n)
	for k := 0; k < n; k++ {
		recs[k] = h.ring[i+k].rec
	}
	return recs, readOK, nil
}

// Ack records a follower's applied high-water mark. An epoch above the
// hub's fences the hub (a newer leader exists); an epoch below it is
// rejected so the follower reconnects and adopts the current term.
func (h *Hub) Ack(peer string, epoch, seq uint64) error {
	if epoch > h.epoch {
		h.Fence(epoch)
		return ErrFenced
	}
	if epoch < h.epoch {
		return errStaleEpoch
	}
	now := time.Now()
	h.mu.Lock()
	fs := h.acks[peer]
	if fs == nil {
		fs = &followerState{}
		h.acks[peer] = fs
	}
	fs.lastAt = now
	if seq <= fs.ackSeq {
		h.mu.Unlock()
		return nil
	}
	fs.ackSeq = seq
	if seq > h.maxAcked {
		// First follower to confirm this position: the lag between
		// commit and this ack is what a semi-sync write waits out.
		if h.m != nil && seq >= h.ringFirst && seq < h.ringFirst+uint64(len(h.ring)) {
			h.m.ReplAckLag.Observe(now.Sub(h.ring[seq-h.ringFirst].at).Seconds())
		}
		h.maxAcked = seq
	}
	for w := range h.waiters {
		if w.seq <= seq && h.ackCountLocked(w.seq) >= w.need {
			close(w.ch)
			delete(h.waiters, w)
		}
	}
	h.mu.Unlock()
	return nil
}

func (h *Hub) ackCountLocked(seq uint64) int {
	n := 0
	for _, fs := range h.acks {
		if fs.ackSeq >= seq {
			n++
		}
	}
	return n
}

// WaitAcked blocks until MinSync followers have acknowledged seq, the
// hub is fenced, or SyncTimeout passes. With MinSync <= 0 it only
// checks the fence: asynchronous shipping acknowledges locally.
func (h *Hub) WaitAcked(seq uint64) error {
	h.mu.Lock()
	if h.fenced {
		h.mu.Unlock()
		return ErrFenced
	}
	if h.minSync <= 0 || h.ackCountLocked(seq) >= h.minSync {
		h.mu.Unlock()
		return nil
	}
	w := &ackWaiter{seq: seq, need: h.minSync, ch: make(chan struct{})}
	h.waiters[w] = struct{}{}
	h.mu.Unlock()

	t := time.NewTimer(h.syncTimeout)
	defer t.Stop()
	select {
	case <-w.ch:
		return nil
	case <-h.fencedCh:
		h.dropWaiter(w)
		return ErrFenced
	case <-t.C:
		h.dropWaiter(w)
		return fmt.Errorf("repl: seq %d not acknowledged by %d follower(s) within %s: %w",
			seq, h.minSync, h.syncTimeout, ErrSyncTimeout)
	}
}

func (h *Hub) dropWaiter(w *ackWaiter) {
	h.mu.Lock()
	delete(h.waiters, w)
	h.mu.Unlock()
}

// Fence marks the hub deposed by a higher epoch: pending and future
// writes fail with ErrFenced and every stream ends. Idempotent; the
// first observation of the higher term wins.
func (h *Hub) Fence(byEpoch uint64) {
	h.mu.Lock()
	if h.fenced {
		h.mu.Unlock()
		return
	}
	h.fenced = true
	h.fencedBy = byEpoch
	close(h.fencedCh)
	// Wake parked streams so they observe the fence and end.
	close(h.notify)
	h.notify = make(chan struct{})
	h.mu.Unlock()
	h.log.Warn("repl: leadership fenced", "epoch", h.epoch, "by_epoch", byEpoch)
}

// Fenced reports whether the hub has been deposed.
func (h *Hub) Fenced() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fenced
}

// FencedBy returns the epoch that deposed the hub (0 if not fenced).
func (h *Hub) FencedBy() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fencedBy
}

// FencedCh closes when the hub is fenced.
func (h *Hub) FencedCh() <-chan struct{} { return h.fencedCh }

// Progress snapshots every follower's shipping progress.
func (h *Hub) Progress() map[string]Progress {
	now := time.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]Progress, len(h.acks))
	for peer, fs := range h.acks {
		out[peer] = Progress{AckSeq: fs.ackSeq, AgoMillis: now.Sub(fs.lastAt).Milliseconds()}
	}
	return out
}

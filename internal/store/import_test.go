package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"ofmf/internal/odata"
)

// Import audit regression tests: an imported tree must behave exactly
// like one built through the normal mutation paths — derived state
// (children index, collection caches, id high-water marks) is rebuilt,
// not restored, so each piece gets its own regression test.

// populate builds a small tree with a registered collection, members,
// and an unrelated subtree, mirroring what a live deployment holds.
func populate(t *testing.T) *Store {
	t.Helper()
	s := New()
	s.RegisterCollection("/redfish/v1/Systems", "#ComputerSystemCollection.ComputerSystemCollection", "Systems")
	for _, id := range []odata.ID{"/redfish/v1/Systems/1", "/redfish/v1/Systems/7"} {
		if err := s.Put(id, testRes{ODataID: string(id), Name: id.Leaf()}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put("/redfish/v1/Chassis/C1", testRes{ODataID: "/redfish/v1/Chassis/C1", Name: "C1"}); err != nil {
		t.Fatal(err)
	}
	return s
}

// restore imports an export into a fresh store with the same collection
// registrations a boot would re-declare.
func restore(t *testing.T, dump []byte) *Store {
	t.Helper()
	s := New()
	s.RegisterCollection("/redfish/v1/Systems", "#ComputerSystemCollection.ComputerSystemCollection", "Systems")
	if err := s.Import(dump); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestImportRebuildsChildrenIndex(t *testing.T) {
	src := populate(t)
	dump, err := src.Export()
	if err != nil {
		t.Fatal(err)
	}
	dst := restore(t, dump)

	want, err := src.Members("/redfish/v1/Systems")
	if err != nil {
		t.Fatal(err)
	}
	got, err := dst.Members("/redfish/v1/Systems")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("members after import = %v, want %v", got, want)
	}
	// The index must also serve deletion fan-out: removing the subtree
	// under Systems must find both members.
	if n, _ := dst.DeleteSubtree("/redfish/v1/Systems/1"); n != 1 {
		t.Errorf("DeleteSubtree removed %d resources, want 1", n)
	}
	got, err = dst.Members("/redfish/v1/Systems")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "/redfish/v1/Systems/7" {
		t.Errorf("members after delete = %v", got)
	}
}

func TestImportRebuildsNextIDHighWater(t *testing.T) {
	src := New()
	for _, id := range []odata.ID{"/redfish/v1/C/1", "/redfish/v1/C/7", "/redfish/v1/C/nonnumeric"} {
		if err := src.Put(id, testRes{ODataID: string(id)}); err != nil {
			t.Fatal(err)
		}
	}
	dump, err := src.Export()
	if err != nil {
		t.Fatal(err)
	}
	dst := New()
	if err := dst.Import(dump); err != nil {
		t.Fatal(err)
	}
	// A fresh allocation must not collide with imported members: the
	// high-water mark is derived from the imported ids, so the next id
	// after 1 and 7 is 8.
	if got := dst.NextID("/redfish/v1/C"); got != "8" {
		t.Errorf("NextID after import = %q, want %q", got, "8")
	}
}

func TestImportInvalidatesCollectionCache(t *testing.T) {
	s := New()
	s.RegisterCollection("/redfish/v1/Systems", "#ComputerSystemCollection.ComputerSystemCollection", "Systems")
	// Prime the lazy collection cache while the collection is empty.
	coll, err := s.Collection("/redfish/v1/Systems")
	if err != nil {
		t.Fatal(err)
	}
	if len(coll.Members) != 0 {
		t.Fatalf("pre-import members = %v", coll.Members)
	}
	dump, err := populate(t).Export()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Import(dump); err != nil {
		t.Fatal(err)
	}
	coll, err = s.Collection("/redfish/v1/Systems")
	if err != nil {
		t.Fatal(err)
	}
	if len(coll.Members) != 2 {
		t.Errorf("post-import members = %v, want 2 entries", coll.Members)
	}
}

func TestImportExportRoundTripStable(t *testing.T) {
	src := populate(t)
	dump, err := src.Export()
	if err != nil {
		t.Fatal(err)
	}
	dst := restore(t, dump)
	again, err := dst.Export()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dump, again) {
		t.Errorf("round-trip export diverged:\n%s\nvs\n%s", dump, again)
	}
	if src.Len() != dst.Len() {
		t.Errorf("Len after import = %d, want %d", dst.Len(), src.Len())
	}
}

// captureBackend records every appended mutation, standing in for the
// WAL so replay parity can be checked without touching disk.
type captureBackend struct {
	recs []Record
}

func (c *captureBackend) Append(batch []Record) func() error {
	c.recs = append(c.recs, batch...)
	return nil
}

func (c *captureBackend) Close() error { return nil }

func TestApplyReplayMatchesOriginal(t *testing.T) {
	cap := &captureBackend{}
	src := New()
	src.AttachBackend(cap, 0)
	src.RegisterCollection("/redfish/v1/Systems", "#ComputerSystemCollection.ComputerSystemCollection", "Systems")

	// Exercise every mutation family the WAL reduces to put/delete
	// primitives: Put, Create, Patch, PutSubtree (with deletes),
	// Delete and DeleteSubtree.
	for i := 1; i <= 3; i++ {
		id := odata.ID(fmt.Sprintf("/redfish/v1/Systems/%d", i))
		if err := src.Put(id, testRes{ODataID: string(id), Name: "sys", Value: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.Create("/redfish/v1/Managers/M1", testRes{ODataID: "/redfish/v1/Managers/M1", Name: "m"}); err != nil {
		t.Fatal(err)
	}
	if err := src.Patch("/redfish/v1/Systems/2", map[string]any{"Name": "patched"}, ""); err != nil {
		t.Fatal(err)
	}
	if err := src.PutSubtree("/redfish/v1/Fabrics/F1", map[odata.ID]any{
		"/redfish/v1/Fabrics/F1":             testRes{ODataID: "/redfish/v1/Fabrics/F1", Name: "f"},
		"/redfish/v1/Fabrics/F1/Endpoints/1": testRes{ODataID: "/redfish/v1/Fabrics/F1/Endpoints/1", Name: "ep"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := src.Delete("/redfish/v1/Systems/3"); err != nil {
		t.Fatal(err)
	}
	if _, err := src.DeleteSubtree("/redfish/v1/Managers/M1"); err != nil {
		t.Fatal(err)
	}

	// Replaying the captured records through Apply — exactly what boot
	// recovery does — must reproduce the source tree and its derived
	// state, not just the raw bytes.
	dst := New()
	dst.RegisterCollection("/redfish/v1/Systems", "#ComputerSystemCollection.ComputerSystemCollection", "Systems")
	for _, rec := range cap.recs {
		if err := dst.Apply(rec); err != nil {
			t.Fatalf("apply %+v: %v", rec, err)
		}
	}
	srcDump, err := src.Export()
	if err != nil {
		t.Fatal(err)
	}
	dstDump, err := dst.Export()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(srcDump, dstDump) {
		t.Errorf("replay diverged:\n%s\nvs\n%s", srcDump, dstDump)
	}
	srcMembers, _ := src.Members("/redfish/v1/Systems")
	dstMembers, _ := dst.Members("/redfish/v1/Systems")
	if !reflect.DeepEqual(srcMembers, dstMembers) {
		t.Errorf("replayed members = %v, want %v", dstMembers, srcMembers)
	}
	if src.NextID("/redfish/v1/Systems") != dst.NextID("/redfish/v1/Systems") {
		t.Errorf("replayed NextID = %q, want %q",
			dst.NextID("/redfish/v1/Systems"), src.NextID("/redfish/v1/Systems"))
	}
}

// TestImportedTreeServesCollections is the end-to-end restore check:
// after import the collection payload (the GET hot path) must be
// coherent JSON listing the imported members.
func TestImportedTreeServesCollections(t *testing.T) {
	dump, err := populate(t).Export()
	if err != nil {
		t.Fatal(err)
	}
	dst := restore(t, dump)
	err = dst.CollectionView("/redfish/v1/Systems", func(payload []byte, etag string) {
		var coll struct {
			Count   int `json:"Members@odata.count"`
			Members []struct {
				ID string `json:"@odata.id"`
			} `json:"Members"`
		}
		if err := json.Unmarshal(payload, &coll); err != nil {
			t.Fatalf("collection payload not JSON: %v", err)
		}
		if coll.Count != 2 || len(coll.Members) != 2 {
			t.Errorf("collection after import = %+v", coll)
		}
		if etag == "" {
			t.Error("collection etag empty after import")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

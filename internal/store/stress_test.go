package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"

	"ofmf/internal/odata"
)

// TestCollectionCacheStress hammers the cached-collection read path with
// concurrent collection GET equivalents while writers churn membership
// through every mutating primitive (Put, Delete, PutSubtree refreshes).
// It verifies, during the storm and at quiesce, that every served payload
// is internally coherent, and afterwards that the cache matches a fresh
// uncached synthesis of the membership. Run under -race this doubles as
// the data-race gate for the memoized read path.
func TestCollectionCacheStress(t *testing.T) {
	const (
		readers = 4
		writers = 2
		rounds  = 3
		iters   = 150
	)
	s := New()
	coll := odata.ID("/redfish/v1/Fabrics/CXL/Endpoints")
	prefix := odata.ID("/redfish/v1/Fabrics/CXL")
	s.RegisterCollection(coll, "#EndpointCollection.EndpointCollection", "Endpoints")

	for round := 0; round < rounds; round++ {
		var readersWG, writersWG sync.WaitGroup
		stop := make(chan struct{})

		for g := 0; g < readers; g++ {
			readersWG.Add(1)
			go func() {
				defer readersWG.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					err := s.CollectionView(coll, func(payload []byte, etag string) {
						// A served payload must always be self-coherent:
						// its etag is the tag of exactly these bytes, its
						// count matches its member list, and members are
						// sorted. Membership may lag the entry map (the
						// writer may already have moved on), but the
						// rendering itself can never tear.
						if odata.EtagRaw(payload) != etag {
							t.Error("etag does not match served payload")
							return
						}
						var c odata.Collection
						if err := json.Unmarshal(payload, &c); err != nil {
							t.Errorf("payload not valid JSON: %v", err)
							return
						}
						if c.Count != len(c.Members) {
							t.Errorf("count %d != members %d", c.Count, len(c.Members))
						}
						for i := 1; i < len(c.Members); i++ {
							if c.Members[i-1].ODataID >= c.Members[i].ODataID {
								t.Error("members not strictly sorted")
								return
							}
						}
					})
					if err != nil {
						t.Errorf("CollectionView: %v", err)
						return
					}
					if _, err := s.Members(coll); err != nil {
						t.Errorf("Members: %v", err)
						return
					}
				}
			}()
		}

		for g := 0; g < writers; g++ {
			writersWG.Add(1)
			go func(g int) {
				defer writersWG.Done()
				for i := 0; i < iters; i++ {
					switch i % 4 {
					case 0, 1:
						// Agent-style refresh: a rotating window of members.
						snap := make(map[odata.ID]any, 4)
						for k := 0; k < 4; k++ {
							id := coll.Append(fmt.Sprintf("w%d-e%03d", g, (i+k)%17))
							snap[id] = map[string]any{"@odata.id": string(id), "Name": id.Leaf(), "Gen": i}
						}
						if err := s.PutSubtree(prefix, snap); err != nil {
							t.Errorf("PutSubtree: %v", err)
							return
						}
					case 2:
						id := coll.Append(fmt.Sprintf("w%d-solo", g))
						if err := s.Put(id, map[string]any{"@odata.id": string(id), "Name": "solo", "I": i}); err != nil {
							t.Errorf("Put: %v", err)
							return
						}
					case 3:
						id := coll.Append(fmt.Sprintf("w%d-solo", g))
						if err := s.Delete(id); err != nil && !errors.Is(err, ErrNotFound) {
							t.Errorf("Delete: %v", err)
							return
						}
					}
				}
			}(g)
		}

		// Let writers drain, stop readers, then assert cache coherence at
		// quiesce: the memoized members and payload must equal a fresh
		// synthesis computed from first principles (IDs + parent filter),
		// bypassing the cache entirely.
		writersWG.Wait()
		close(stop)
		readersWG.Wait()

		var fresh []odata.ID
		for _, id := range s.IDs() {
			if id.Parent() == coll {
				fresh = append(fresh, id)
			}
		}
		cached, err := s.Members(coll)
		if err != nil {
			t.Fatal(err)
		}
		if len(cached) != len(fresh) {
			t.Fatalf("round %d: cached %d members, fresh synthesis %d", round, len(cached), len(fresh))
		}
		for i := range fresh {
			if cached[i] != fresh[i] {
				t.Fatalf("round %d: member[%d] = %s, fresh %s", round, i, cached[i], fresh[i])
			}
		}
		var served odata.Collection
		if err := s.CollectionView(coll, func(p []byte, etag string) {
			if odata.EtagRaw(p) != etag {
				t.Error("quiesce: etag mismatch")
			}
			if uerr := json.Unmarshal(p, &served); uerr != nil {
				t.Errorf("quiesce: %v", uerr)
			}
		}); err != nil {
			t.Fatal(err)
		}
		if served.Count != len(fresh) {
			t.Fatalf("round %d: served count %d, fresh %d", round, served.Count, len(fresh))
		}
		for i, ref := range served.Members {
			if ref.ODataID != fresh[i] {
				t.Fatalf("round %d: payload member[%d] = %s, fresh %s", round, i, ref.ODataID, fresh[i])
			}
		}
	}
}

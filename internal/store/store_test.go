package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"ofmf/internal/odata"
)

type testRes struct {
	ODataID string `json:"@odata.id"`
	Name    string `json:"Name"`
	Value   int    `json:"Value,omitempty"`
}

func TestPutGetRoundTrip(t *testing.T) {
	s := New()
	id := odata.ID("/redfish/v1/Systems/S1")
	if err := s.Put(id, testRes{ODataID: string(id), Name: "S1", Value: 7}); err != nil {
		t.Fatal(err)
	}
	var got testRes
	if err := s.GetAs(id, &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "S1" || got.Value != 7 {
		t.Errorf("got %+v", got)
	}
}

func TestGetNotFound(t *testing.T) {
	s := New()
	if _, _, err := s.Get("/nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestCreateConflict(t *testing.T) {
	s := New()
	id := odata.ID("/redfish/v1/Systems/S1")
	if err := s.Create(id, testRes{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Create(id, testRes{Name: "b"}); !errors.Is(err, ErrExists) {
		t.Errorf("err = %v, want ErrExists", err)
	}
}

func TestPutRejectsNonObject(t *testing.T) {
	s := New()
	if err := s.Put("/x", []int{1, 2}); !errors.Is(err, ErrBadPayload) {
		t.Errorf("err = %v, want ErrBadPayload", err)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := New()
	id := odata.ID("/x/y")
	if err := s.Put(id, testRes{Name: "orig"}); err != nil {
		t.Fatal(err)
	}
	raw, _, err := s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		raw[i] = 'X'
	}
	var got testRes
	if err := s.GetAs(id, &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "orig" {
		t.Error("mutation of returned slice leaked into store")
	}
}

func TestView(t *testing.T) {
	s := New()
	id := odata.ID("/x/y")
	if err := s.Put(id, testRes{Name: "v"}); err != nil {
		t.Fatal(err)
	}
	var seen string
	var seenEtag string
	err := s.View(id, func(raw json.RawMessage, etag string) {
		seen = string(raw)
		seenEtag = etag
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen == "" || seenEtag == "" {
		t.Errorf("view = %q etag %q", seen, seenEtag)
	}
	wantEtag, _ := s.Etag(id)
	if seenEtag != wantEtag {
		t.Errorf("etag mismatch: %s vs %s", seenEtag, wantEtag)
	}
	if err := s.View("/nope", func(json.RawMessage, string) {}); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestEtagChangesOnUpdate(t *testing.T) {
	s := New()
	id := odata.ID("/x/y")
	if err := s.Put(id, testRes{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	e1, err := s.Etag(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(id, testRes{Name: "b"}); err != nil {
		t.Fatal(err)
	}
	e2, err := s.Etag(id)
	if err != nil {
		t.Fatal(err)
	}
	if e1 == e2 {
		t.Error("etag unchanged after update")
	}
}

func TestPatchDeepMerge(t *testing.T) {
	s := New()
	id := odata.ID("/x/y")
	err := s.Put(id, map[string]any{
		"Name":   "n",
		"Status": map[string]any{"State": "Enabled", "Health": "OK"},
		"Links":  map[string]any{"Endpoints": []any{"a"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = s.Patch(id, map[string]any{
		"Status": map[string]any{"Health": "Critical"},
		"Links":  map[string]any{"Endpoints": []any{"b", "c"}},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := s.GetAs(id, &got); err != nil {
		t.Fatal(err)
	}
	status := got["Status"].(map[string]any)
	if status["State"] != "Enabled" {
		t.Errorf("sibling member lost: %v", status)
	}
	if status["Health"] != "Critical" {
		t.Errorf("patch not applied: %v", status)
	}
	eps := got["Links"].(map[string]any)["Endpoints"].([]any)
	if len(eps) != 2 {
		t.Errorf("array should be replaced, got %v", eps)
	}
}

func TestPatchNullDeletes(t *testing.T) {
	s := New()
	id := odata.ID("/x/y")
	if err := s.Put(id, map[string]any{"A": 1, "B": 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Patch(id, map[string]any{"B": nil}, ""); err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := s.GetAs(id, &got); err != nil {
		t.Fatal(err)
	}
	if _, ok := got["B"]; ok {
		t.Error("null did not delete member")
	}
}

func TestPatchEtagPrecondition(t *testing.T) {
	s := New()
	id := odata.ID("/x/y")
	if err := s.Put(id, testRes{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Patch(id, map[string]any{"Name": "b"}, `"stale"`); !errors.Is(err, ErrEtagMismatch) {
		t.Errorf("err = %v, want ErrEtagMismatch", err)
	}
	etag, _ := s.Etag(id)
	if err := s.Patch(id, map[string]any{"Name": "b"}, etag); err != nil {
		t.Errorf("matching etag rejected: %v", err)
	}
}

func TestDelete(t *testing.T) {
	s := New()
	id := odata.ID("/x/y")
	if err := s.Put(id, testRes{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(id); err != nil {
		t.Fatal(err)
	}
	if s.Exists(id) {
		t.Error("still exists after delete")
	}
	if err := s.Delete(id); !errors.Is(err, ErrNotFound) {
		t.Errorf("second delete err = %v", err)
	}
}

func TestCollectionMembership(t *testing.T) {
	s := New()
	coll := odata.ID("/redfish/v1/Systems")
	s.RegisterCollection(coll, "#ComputerSystemCollection.ComputerSystemCollection", "Systems")
	for _, n := range []string{"B", "A", "C"} {
		if err := s.Put(coll.Append(n), testRes{Name: n}); err != nil {
			t.Fatal(err)
		}
	}
	c, err := s.Collection(coll)
	if err != nil {
		t.Fatal(err)
	}
	if c.Count != 3 {
		t.Fatalf("Count = %d", c.Count)
	}
	if c.Members[0].ODataID != coll.Append("A") {
		t.Errorf("not sorted: %v", c.Members)
	}
	if err := s.Delete(coll.Append("B")); err != nil {
		t.Fatal(err)
	}
	c, _ = s.Collection(coll)
	if c.Count != 2 {
		t.Errorf("Count after delete = %d", c.Count)
	}
}

func TestCollectionOnNonCollection(t *testing.T) {
	s := New()
	if _, err := s.Collection("/nope"); !errors.Is(err, ErrNotCollection) {
		t.Errorf("err = %v", err)
	}
}

func TestNextID(t *testing.T) {
	s := New()
	coll := odata.ID("/redfish/v1/Tasks")
	s.RegisterCollection(coll, "#TaskCollection.TaskCollection", "Tasks")
	if got := s.NextID(coll); got != "1" {
		t.Errorf("NextID = %q", got)
	}
	if err := s.Put(coll.Append("1"), testRes{Name: "t"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(coll.Append("2"), testRes{Name: "t"}); err != nil {
		t.Fatal(err)
	}
	if got := s.NextID(coll); got != "3" {
		t.Errorf("NextID = %q", got)
	}
	// Allocation is monotonic: deleting a member does not recycle its id,
	// so a released URI can never alias a later resource.
	if err := s.Delete(coll.Append("1")); err != nil {
		t.Fatal(err)
	}
	if got := s.NextID(coll); got != "3" {
		t.Errorf("NextID after delete = %q, want monotonic \"3\"", got)
	}
	// An externally imported higher id advances the high-water mark.
	if err := s.Put(coll.Append("7"), testRes{Name: "t"}); err != nil {
		t.Fatal(err)
	}
	if got := s.NextID(coll); got != "8" {
		t.Errorf("NextID after import = %q", got)
	}
}

func TestWatchNotifications(t *testing.T) {
	s := New()
	var mu sync.Mutex
	var seen []Change
	s.Watch(func(c Change) {
		mu.Lock()
		seen = append(seen, c)
		mu.Unlock()
	})
	id := odata.ID("/x/y")
	if err := s.Put(id, testRes{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(id, testRes{Name: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(id); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []ChangeKind{Added, Updated, Removed}
	if len(seen) != len(want) {
		t.Fatalf("seen %d changes, want %d: %v", len(seen), len(want), seen)
	}
	for i, k := range want {
		if seen[i].Kind != k || seen[i].ID != id {
			t.Errorf("change[%d] = %+v, want kind %v", i, seen[i], k)
		}
	}
}

func TestPatchNoChangeNoNotify(t *testing.T) {
	s := New()
	id := odata.ID("/x/y")
	if err := s.Put(id, testRes{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	count := 0
	s.Watch(func(Change) { count++ })
	if err := s.Patch(id, map[string]any{"Name": "a"}, ""); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("no-op patch notified %d times", count)
	}
}

func TestPutSubtreeAggregation(t *testing.T) {
	s := New()
	prefix := odata.ID("/redfish/v1/Fabrics/CXL")
	first := map[odata.ID]any{
		prefix.Append("Switches/SW1"): testRes{Name: "SW1"},
		prefix.Append("Endpoints/E1"): testRes{Name: "E1"},
		prefix.Append("Endpoints/E2"): testRes{Name: "E2"},
	}
	if err := s.PutSubtree(prefix, first); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	// Refresh: E2 gone, E3 added, SW1 updated.
	second := map[odata.ID]any{
		prefix.Append("Switches/SW1"): testRes{Name: "SW1", Value: 9},
		prefix.Append("Endpoints/E1"): testRes{Name: "E1"},
		prefix.Append("Endpoints/E3"): testRes{Name: "E3"},
	}
	if err := s.PutSubtree(prefix, second); err != nil {
		t.Fatal(err)
	}
	if s.Exists(prefix.Append("Endpoints/E2")) {
		t.Error("stale resource survived refresh")
	}
	if !s.Exists(prefix.Append("Endpoints/E3")) {
		t.Error("new resource missing")
	}
	var sw testRes
	if err := s.GetAs(prefix.Append("Switches/SW1"), &sw); err != nil {
		t.Fatal(err)
	}
	if sw.Value != 9 {
		t.Errorf("update lost: %+v", sw)
	}
}

func TestPutSubtreeRejectsOutsideResources(t *testing.T) {
	s := New()
	err := s.PutSubtree("/redfish/v1/Fabrics/CXL", map[odata.ID]any{
		"/redfish/v1/Systems/S1": testRes{Name: "S1"},
	})
	if err == nil {
		t.Fatal("expected error for resource outside subtree")
	}
}

func TestPutSubtreeDoesNotTouchOutside(t *testing.T) {
	s := New()
	if err := s.Put("/redfish/v1/Systems/S1", testRes{Name: "S1"}); err != nil {
		t.Fatal(err)
	}
	prefix := odata.ID("/redfish/v1/Fabrics/CXL")
	if err := s.PutSubtree(prefix, map[odata.ID]any{prefix.Append("Endpoints/E1"): testRes{Name: "E1"}}); err != nil {
		t.Fatal(err)
	}
	if !s.Exists("/redfish/v1/Systems/S1") {
		t.Error("subtree refresh removed resource outside prefix")
	}
}

func TestDeleteSubtree(t *testing.T) {
	s := New()
	prefix := odata.ID("/redfish/v1/Fabrics/NVMe")
	for i := 0; i < 5; i++ {
		id := prefix.Append(fmt.Sprintf("Endpoints/E%d", i))
		if err := s.Put(id, testRes{Name: "e"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put("/redfish/v1/Fabrics/CXLish", testRes{Name: "keep"}); err != nil {
		t.Fatal(err)
	}
	n, err := s.DeleteSubtree(prefix)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("removed %d, want 5", n)
	}
	if !s.Exists("/redfish/v1/Fabrics/CXLish") {
		t.Error("prefix matching removed sibling with shared string prefix")
	}
}

// failingBackend accepts appends but fails durability, standing in for a
// WAL whose flush or fsync errors.
type failingBackend struct{}

func (failingBackend) Append([]Record) func() error {
	return func() error { return errors.New("disk full") }
}
func (failingBackend) Close() error { return nil }

func TestDeleteSubtreePropagatesDurabilityError(t *testing.T) {
	s := New()
	if err := s.Put("/redfish/v1/Systems/1", testRes{Name: "s"}); err != nil {
		t.Fatal(err)
	}
	s.AttachBackend(failingBackend{}, 0)
	if _, err := s.DeleteSubtree("/redfish/v1/Systems/1"); err == nil {
		t.Fatal("DeleteSubtree swallowed the durability error")
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	s := New()
	ids := []odata.ID{"/redfish/v1/Systems/A", "/redfish/v1/Systems/B", "/redfish/v1/Chassis/C"}
	for i, id := range ids {
		if err := s.Put(id, testRes{ODataID: string(id), Name: id.Leaf(), Value: i}); err != nil {
			t.Fatal(err)
		}
	}
	data, err := s.Export()
	if err != nil {
		t.Fatal(err)
	}
	s2 := New()
	if err := s2.Import(data); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != len(ids) {
		t.Fatalf("imported %d, want %d", s2.Len(), len(ids))
	}
	for _, id := range ids {
		var a, b testRes
		if err := s.GetAs(id, &a); err != nil {
			t.Fatal(err)
		}
		if err := s2.GetAs(id, &b); err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%s: %+v != %+v", id, a, b)
		}
	}
}

func TestImportRejectsRelativeURI(t *testing.T) {
	s := New()
	if err := s.Import([]byte(`{"relative/uri": {"Name":"x"}}`)); err == nil {
		t.Error("expected error for relative uri")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	coll := odata.ID("/redfish/v1/Systems")
	s.RegisterCollection(coll, "#C.C", "Systems")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := coll.Append(fmt.Sprintf("g%d-%d", g, i))
				if err := s.Put(id, testRes{Name: "x", Value: i}); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := s.Get(id); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Collection(coll); err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 {
					if err := s.Delete(id); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestPropertyPutGetIdentity(t *testing.T) {
	s := New()
	f := func(name string, value int) bool {
		id := odata.ID("/p").Append("r")
		if err := s.Put(id, testRes{Name: name, Value: value}); err != nil {
			return false
		}
		var got testRes
		if err := s.GetAs(id, &got); err != nil {
			return false
		}
		return got.Name == name && got.Value == value
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyPatchIdempotent(t *testing.T) {
	// Applying the same patch twice yields the same document and etag.
	f := func(a, b string) bool {
		s := New()
		id := odata.ID("/p/r")
		if err := s.Put(id, map[string]any{"A": a}); err != nil {
			return false
		}
		patch := map[string]any{"B": b}
		if err := s.Patch(id, patch, ""); err != nil {
			return false
		}
		e1, _ := s.Etag(id)
		if err := s.Patch(id, patch, ""); err != nil {
			return false
		}
		e2, _ := s.Etag(id)
		return e1 == e2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCollectionViewCachedPayload(t *testing.T) {
	s := New()
	coll := odata.ID("/redfish/v1/Systems")
	s.RegisterCollection(coll, "#C.C", "Systems")
	if err := s.Put(coll.Append("A"), testRes{Name: "A"}); err != nil {
		t.Fatal(err)
	}
	var ops []string
	s.SetOpHook(func(op string, shard int) { ops = append(ops, op) })

	var p1, p2 []byte
	var e1, e2 string
	if err := s.CollectionView(coll, func(p []byte, e string) { p1, e1 = p, e }); err != nil {
		t.Fatal(err)
	}
	if err := s.CollectionView(coll, func(p []byte, e string) { p2, e2 = p, e }); err != nil {
		t.Fatal(err)
	}
	if e1 == "" || e1 != e2 {
		t.Errorf("etags %q, %q", e1, e2)
	}
	if &p1[0] != &p2[0] {
		t.Error("second view did not serve the memoized payload")
	}
	if len(ops) != 2 || ops[0] != "collection" || ops[1] != "collection_cached" {
		t.Errorf("ops = %v, want [collection collection_cached]", ops)
	}
	var decoded odata.Collection
	if err := json.Unmarshal(p1, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Count != 1 || decoded.Members[0].ODataID != coll.Append("A") {
		t.Errorf("payload = %+v", decoded)
	}
}

func TestCollectionCacheInvalidation(t *testing.T) {
	s := New()
	coll := odata.ID("/redfish/v1/Systems")
	s.RegisterCollection(coll, "#C.C", "Systems")
	etagOf := func() string {
		var e string
		if err := s.CollectionView(coll, func(_ []byte, etag string) { e = etag }); err != nil {
			t.Fatal(err)
		}
		return e
	}
	e0 := etagOf()
	if err := s.Put(coll.Append("A"), testRes{Name: "A"}); err != nil {
		t.Fatal(err)
	}
	e1 := etagOf()
	if e1 == e0 {
		t.Error("etag unchanged after member added")
	}
	// Updating a member's content leaves the collection payload alone.
	if err := s.Put(coll.Append("A"), testRes{Name: "A", Value: 9}); err != nil {
		t.Fatal(err)
	}
	if etagOf() != e1 {
		t.Error("member content update changed collection etag")
	}
	if err := s.Delete(coll.Append("A")); err != nil {
		t.Fatal(err)
	}
	if etagOf() != e0 {
		t.Error("etag after delete differs from empty-collection etag")
	}
	// Subtree refreshes invalidate too.
	if err := s.PutSubtree(coll, map[odata.ID]any{coll.Append("B"): testRes{Name: "B"}}); err != nil {
		t.Fatal(err)
	}
	members, err := s.Members(coll)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 1 || members[0] != coll.Append("B") {
		t.Errorf("members after refresh = %v", members)
	}
}

func TestSubtreeIndexInteriorEntry(t *testing.T) {
	// Deleting an interior resource must not orphan its descendants in
	// the children index: subtree walks still reach them.
	s := New()
	fab := odata.ID("/redfish/v1/Fabrics/CXL")
	if err := s.Put(fab, testRes{Name: "fabric"}); err != nil {
		t.Fatal(err)
	}
	sw := fab.Append("Switches/SW1")
	if err := s.Put(sw, testRes{Name: "SW1"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(fab); err != nil {
		t.Fatal(err)
	}
	if !s.Exists(sw) {
		t.Fatal("descendant vanished with interior delete")
	}
	if n, _ := s.DeleteSubtree(fab); n != 1 {
		t.Errorf("DeleteSubtree = %d, want 1 (the orphaned switch)", n)
	}
	if s.Exists(sw) {
		t.Error("descendant survived subtree delete")
	}
}

func TestPutSubtreeKeepsKeptAndPrunesIndex(t *testing.T) {
	s := New()
	prefix := odata.ID("/redfish/v1/Fabrics/CXL")
	zone := prefix.Append("Zones/Z1")
	if err := s.Put(zone, testRes{Name: "Z1"}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutSubtree(prefix, map[odata.ID]any{
		prefix.Append("Endpoints/E1"): testRes{Name: "E1"},
	}, prefix.Append("Zones")); err != nil {
		t.Fatal(err)
	}
	if !s.Exists(zone) {
		t.Error("kept subtree removed by refresh")
	}
	// Empty the subtree entirely; a follow-up refresh must still work
	// (index pruning must not strand stale interior nodes).
	if n, _ := s.DeleteSubtree(prefix); n != 2 {
		t.Errorf("DeleteSubtree = %d, want 2", n)
	}
	if err := s.PutSubtree(prefix, map[odata.ID]any{
		prefix.Append("Endpoints/E2"): testRes{Name: "E2"},
	}); err != nil {
		t.Fatal(err)
	}
	if !s.Exists(prefix.Append("Endpoints/E2")) {
		t.Error("refresh after full delete lost resource")
	}
}

func TestRawMessagePut(t *testing.T) {
	s := New()
	raw := json.RawMessage(`{"Name":"raw","Value":3}`)
	if err := s.Put("/x/raw", raw); err != nil {
		t.Fatal(err)
	}
	var got testRes
	if err := s.GetAs("/x/raw", &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "raw" || got.Value != 3 {
		t.Errorf("got %+v", got)
	}
}

package store

import (
	"encoding/json"
	"errors"
	"fmt"

	"ofmf/internal/odata"
)

// RecordOp identifies a log-record primitive.
type RecordOp string

// The two log primitives. Every higher-level mutation the store performs
// (Put, Create, Patch, PutSubtree, DeleteSubtree, Import) is reduced to
// an ordered batch of these before it reaches a Backend: a Patch is
// logged as the put of its merged post-state, a subtree refresh as the
// deletions and puts it actually performed. Replay is therefore
// insensitive to the original operation's semantics — applying the
// records in order through the normal Put/Delete paths reconstructs the
// tree, its children index, and its high-water marks exactly.
const (
	OpPut    RecordOp = "p"
	OpDelete RecordOp = "d"
)

// Record is one canonical committed mutation. Seq is the store's
// global monotonic commit sequence number, assigned while the mutated
// shard's write lock is held, so the union of all log streams totally
// orders the store's history even when shards log independently. Raw
// carries the post-state for OpPut and is empty for OpDelete.
//
// Epoch is the replication leadership term the record was committed
// under (see SetEpoch). It is 0 for an unreplicated store — the field
// is omitted from the WAL encoding then, keeping data directories
// byte-compatible with pre-replication layouts. After a failover the
// promoted leader stamps a higher epoch into every new record, so the
// logs themselves fence a deposed leader: two records with the same
// Seq but different Epochs identify the divergent suffix an old
// leader committed after losing leadership.
type Record struct {
	Seq   uint64          `json:"s"`
	Epoch uint64          `json:"e,omitempty"`
	Op    RecordOp        `json:"o"`
	ID    odata.ID        `json:"i"`
	Raw   json.RawMessage `json:"r,omitempty"`
}

// Backend is the store's durability seam. The zero-config store has no
// backend and stays purely in-memory; attaching one (see AttachBackend)
// makes every committed mutation flow through it.
//
// Append is invoked while a lock serializing the whole store is held
// (the store's appendMu, under the mutated shard's write lock),
// immediately after the in-memory commit, so batches reach the backend
// in exact commit order. Implementations must therefore be fast in
// Append — buffer the records and complete durability (flush, fsync,
// replication) in the returned wait function, which the store calls
// after releasing its locks. A nil wait means the batch is already
// durable. Errors surfaced by wait are returned to the mutating caller;
// the in-memory commit is not rolled back (the tree stays ahead of a
// failing log).
type Backend interface {
	Append(batch []Record) (wait func() error)
	// Close flushes buffered records and releases the backend's
	// resources. The store calls it from Store.Close after detaching.
	Close() error
}

// ShardedBackend is a Backend that keeps one log stream per store
// shard, so appends on different shards proceed without a shared
// serialization point. AppendShard is invoked while the shard's write
// lock is held; within one shard batches arrive in ascending sequence
// order, and a multi-shard commit (all locks held) may deliver one
// batch per shard. Recovery merges the streams by Record.Seq to rebuild
// the global commit order.
//
// A backend whose Shards() differs from the store's shard count is used
// through the plain Append path instead — correctness never depends on
// which stream a record landed in, only on its sequence number.
type ShardedBackend interface {
	Backend
	// Shards returns the number of log streams the backend maintains.
	Shards() int
	// AppendShard appends the batch to shard's stream; semantics match
	// Backend.Append otherwise.
	AppendShard(shard int, batch []Record) (wait func() error)
}

// Apply replays one log record through the store's normal mutation path:
// OpPut through Put, OpDelete through Delete. Recovery uses it so
// replayed state is rebuilt by exactly the code live mutations exercise
// (children index, collection invalidation, high-water marks). A delete
// of an id that is already absent is not an error — the record merely
// re-asserts an absence the snapshot already reflects.
func (s *Store) Apply(rec Record) error {
	switch rec.Op {
	case OpPut:
		return s.Put(rec.ID, rec.Raw)
	case OpDelete:
		if err := s.Delete(rec.ID); err != nil && !errors.Is(err, ErrNotFound) {
			return err
		}
		return nil
	default:
		return fmt.Errorf("store: apply: unknown record op %q", rec.Op)
	}
}

// AttachBackend installs the durability backend and fast-forwards the
// commit sequence to lastSeq (the highest sequence number the backend
// has already logged), so new records continue the recovered history.
// When the backend is sharded with a count matching the store's, each
// shard logs to its own stream; otherwise every commit funnels through
// the single Append stream. Attach after recovery has replayed the log
// — replay itself must not be re-logged — and before the store starts
// serving mutations.
func (s *Store) AttachBackend(b Backend, lastSeq uint64) {
	s.lockAll()
	s.backend = b
	s.sharded = nil
	if sb, ok := b.(ShardedBackend); ok && sb != nil && sb.Shards() == len(s.shards) {
		s.sharded = sb
	}
	s.seq.Store(lastSeq)
	s.unlockAll()
}

// Seq returns the global commit sequence number of the last mutation
// record handed to the durability backend (0 with no backend ever
// attached). The chaos harness compares it across a kill/recover cycle
// to prove WAL sequence integrity.
func (s *Store) Seq() uint64 { return s.seq.Load() }

// SetEpoch sets the replication epoch stamped into every subsequently
// committed record. The replication layer calls it when a node assumes
// (or resumes) leadership; an unreplicated store leaves it at 0.
func (s *Store) SetEpoch(e uint64) { s.epoch.Store(e) }

// Epoch returns the current replication epoch.
func (s *Store) Epoch() uint64 { return s.epoch.Load() }

// Close detaches and closes the attached backend, if any, flushing its
// buffered records. The store remains usable (in-memory only) afterwards.
func (s *Store) Close() error {
	s.lockAll()
	b := s.backend
	s.backend = nil
	s.sharded = nil
	s.unlockAll()
	if b == nil {
		return nil
	}
	return b.Close()
}

// stampLocked assigns the batch its global commit sequence numbers and
// the current replication epoch. Callers hold the write lock of every
// shard the batch touches, so the numbers land in each shard's stream
// in ascending order.
func (s *Store) stampLocked(batch []Record) {
	base := s.seq.Add(uint64(len(batch))) - uint64(len(batch))
	epoch := s.epoch.Load()
	for i := range batch {
		batch[i].Seq = base + uint64(i) + 1
		batch[i].Epoch = epoch
	}
}

// commitShardLocked stamps the batch and hands it to the backend on
// behalf of one shard. The caller holds that shard's write lock and
// calls the returned wait (via waitDurable) only after releasing it.
// With a sharded backend the append goes straight to the shard's
// stream; a legacy single-stream backend is serialized under appendMu
// so its one log stays in global sequence order across shards.
func (s *Store) commitShardLocked(shard int, batch []Record) func() error {
	if s.backend == nil || len(batch) == 0 {
		return nil
	}
	if s.sharded != nil {
		s.stampLocked(batch)
		return s.sharded.AppendShard(shard, batch)
	}
	s.appendMu.Lock()
	s.stampLocked(batch)
	wait := s.backend.Append(batch)
	s.appendMu.Unlock()
	return wait
}

// commitMultiLocked stamps a cross-shard batch and fans it out to each
// touched shard's stream, preserving the batch's global order within
// every stream. The caller holds every shard's write lock (acquired in
// index order). The returned wait completes when every stream's wait
// does, so the mutation is acknowledged only once the whole batch is
// durable.
func (s *Store) commitMultiLocked(batch []Record) func() error {
	if s.backend == nil || len(batch) == 0 {
		return nil
	}
	if s.sharded == nil {
		s.appendMu.Lock()
		s.stampLocked(batch)
		wait := s.backend.Append(batch)
		s.appendMu.Unlock()
		return wait
	}
	s.stampLocked(batch)
	per := make([][]Record, len(s.shards))
	for _, rec := range batch {
		i := s.shardIndex(rec.ID)
		per[i] = append(per[i], rec)
	}
	var waits []func() error
	for i, sub := range per {
		if len(sub) == 0 {
			continue
		}
		if w := s.sharded.AppendShard(i, sub); w != nil {
			waits = append(waits, w)
		}
	}
	switch len(waits) {
	case 0:
		return nil
	case 1:
		return waits[0]
	}
	return func() error {
		var first error
		for _, w := range waits {
			if err := w(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
}

// waitDurable runs a commit's wait function, wrapping its error.
func waitDurable(wait func() error) error {
	if wait == nil {
		return nil
	}
	if err := wait(); err != nil {
		return fmt.Errorf("store: persist: %w", err)
	}
	return nil
}

package store

import (
	"encoding/json"
	"errors"
	"fmt"

	"ofmf/internal/odata"
)

// RecordOp identifies a log-record primitive.
type RecordOp string

// The two log primitives. Every higher-level mutation the store performs
// (Put, Create, Patch, PutSubtree, DeleteSubtree, Import) is reduced to
// an ordered batch of these before it reaches a Backend: a Patch is
// logged as the put of its merged post-state, a subtree refresh as the
// deletions and puts it actually performed. Replay is therefore
// insensitive to the original operation's semantics — applying the
// records in order through the normal Put/Delete paths reconstructs the
// tree, its children index, and its high-water marks exactly.
const (
	OpPut    RecordOp = "p"
	OpDelete RecordOp = "d"
)

// Record is one canonical committed mutation. Seq is the store's
// monotonic commit sequence number, assigned under the write lock, so a
// log of records totally orders the store's history. Raw carries the
// post-state for OpPut and is empty for OpDelete.
type Record struct {
	Seq uint64          `json:"s"`
	Op  RecordOp        `json:"o"`
	ID  odata.ID        `json:"i"`
	Raw json.RawMessage `json:"r,omitempty"`
}

// Backend is the store's durability seam. The zero-config store has no
// backend and stays purely in-memory; attaching one (see AttachBackend)
// makes every committed mutation flow through it.
//
// Append is invoked while the store's write lock is held, immediately
// after the in-memory commit, so batches reach the backend in exact
// commit order. Implementations must therefore be fast in Append —
// buffer the records and complete durability (flush, fsync, replication)
// in the returned wait function, which the store calls after releasing
// its lock. A nil wait means the batch is already durable. Errors
// surfaced by wait are returned to the mutating caller; the in-memory
// commit is not rolled back (the tree stays ahead of a failing log).
type Backend interface {
	Append(batch []Record) (wait func() error)
	// Close flushes buffered records and releases the backend's
	// resources. The store calls it from Store.Close after detaching.
	Close() error
}

// Apply replays one log record through the store's normal mutation path:
// OpPut through Put, OpDelete through Delete. Recovery uses it so
// replayed state is rebuilt by exactly the code live mutations exercise
// (children index, collection invalidation, high-water marks). A delete
// of an id that is already absent is not an error — the record merely
// re-asserts an absence the snapshot already reflects.
func (s *Store) Apply(rec Record) error {
	switch rec.Op {
	case OpPut:
		return s.Put(rec.ID, rec.Raw)
	case OpDelete:
		if err := s.Delete(rec.ID); err != nil && !errors.Is(err, ErrNotFound) {
			return err
		}
		return nil
	default:
		return fmt.Errorf("store: apply: unknown record op %q", rec.Op)
	}
}

// AttachBackend installs the durability backend and fast-forwards the
// commit sequence to lastSeq (the highest sequence number the backend
// has already logged), so new records continue the recovered history.
// Attach after recovery has replayed the log — replay itself must not be
// re-logged — and before the store starts serving mutations.
func (s *Store) AttachBackend(b Backend, lastSeq uint64) {
	s.mu.Lock()
	s.backend = b
	s.seq = lastSeq
	s.mu.Unlock()
}

// Close detaches and closes the attached backend, if any, flushing its
// buffered records. The store remains usable (in-memory only) afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	b := s.backend
	s.backend = nil
	s.mu.Unlock()
	if b == nil {
		return nil
	}
	return b.Close()
}

// commitLocked stamps the batch with commit sequence numbers and hands
// it to the backend. Callers hold the write lock and call the returned
// wait (via waitDurable) only after releasing it.
func (s *Store) commitLocked(batch []Record) func() error {
	if s.backend == nil || len(batch) == 0 {
		return nil
	}
	for i := range batch {
		s.seq++
		batch[i].Seq = s.seq
	}
	return s.backend.Append(batch)
}

// waitDurable runs a commit's wait function, wrapping its error.
func waitDurable(wait func() error) error {
	if wait == nil {
		return nil
	}
	if err := wait(); err != nil {
		return fmt.Errorf("store: persist: %w", err)
	}
	return nil
}

package store

import (
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"ofmf/internal/odata"
)

// redfishRoot is the service root every Redfish resource lives under.
// Sharding strips it before routing so the top-level collections
// (Systems, Fabrics, Chassis, ...) — not the shared /redfish/v1 spine —
// are what partition the tree.
const redfishRoot = "/redfish/v1"

// maxShards bounds the shard count; beyond this the per-shard fixed cost
// (locks, maps, WAL segments) outweighs any contention win.
const maxShards = 64

// shard is one independent partition of the tree: its own lock, entry
// map, children index, collection caches, and NextID high-water marks.
// The trailing pad keeps two shards out of the same cache line when the
// allocator places them adjacently — the locks are the contended words.
type shard struct {
	mu  sync.RWMutex
	eng engine
	_   [64]byte
}

// ShardCount returns the number of shards the store was built with.
func (s *Store) ShardCount() int { return len(s.shards) }

// ShardOf returns the index of the shard that owns id. Routing is
// stable for a given shard count: tests and operators can use it to
// predict which WAL stream a resource's mutations land in.
func (s *Store) ShardOf(id odata.ID) int { return s.shardIndex(id) }

// ShardLen returns the number of resources stored in shard i. The
// telemetry report uses it to expose per-shard entry counts.
func (s *Store) ShardLen(i int) int {
	sh := s.shards[i]
	sh.mu.RLock()
	n := len(sh.eng.entries)
	sh.mu.RUnlock()
	return n
}

// envShards reads the OFMF_STORE_SHARDS override. It exists so the whole
// test suite can be driven at a different shard count (the CI race
// matrix sets it) without every call site growing a parameter.
func envShards() int {
	if v := os.Getenv("OFMF_STORE_SHARDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 1
}

// shardKey extracts the routing key of an id: its first path segment,
// with the /redfish/v1 service-root prefix stripped when present. A
// collection and all of its members therefore always share a key — every
// registered collection lives at least one segment below the root — and
// so does every resource pair connected by a parent/child walk that
// matters to a single-shard operation.
func shardKey(id odata.ID) string {
	s := string(id)
	if len(s) >= len(redfishRoot) && s[:len(redfishRoot)] == redfishRoot &&
		(len(s) == len(redfishRoot) || s[len(redfishRoot)] == '/') {
		s = s[len(redfishRoot):]
	}
	if len(s) > 0 && s[0] == '/' {
		s = s[1:]
	}
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	return s
}

// shardIndex routes an id to its shard: FNV-1a over the routing key,
// inlined so the read hot path stays allocation-free.
func (s *Store) shardIndex(id odata.ID) int {
	if len(s.shards) == 1 {
		return 0
	}
	key := shardKey(id)
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(len(s.shards)))
}

// spansShards reports whether descendants of prefix can live on
// different shards — true only for the tree spine at or above the
// service root. Any prefix with a concrete first segment (after the
// root) pins its whole subtree to one shard.
func spansShards(prefix odata.ID) bool {
	if len(prefix) > 1 {
		switch string(prefix) {
		case "/redfish", "/redfish/", redfishRoot, redfishRoot + "/":
			return true
		}
		return false
	}
	return true // "" and "/"
}

// LockWaitHook observes the time one mutation spent waiting to acquire
// its shard's write lock — the store's headline contention number.
// shard is the shard index, or -1 for a multi-shard (all-lock)
// acquisition. Hooks must be fast and must not call back into the store.
type LockWaitHook func(shard int, wait time.Duration)

// SetLockWaitHook installs the lock-wait observer, replacing any
// previous one. Only write-lock acquisitions are measured: timing the
// read path would put a clock read on the zero-alloc GET path.
func (s *Store) SetLockWaitHook(h LockWaitHook) { s.lockWait.Store(h) }

// lockShard write-locks shard i, reporting the wait to the hook.
func (s *Store) lockShard(i int) *shard {
	sh := s.shards[i]
	if h, ok := s.lockWait.Load().(LockWaitHook); ok && h != nil {
		start := time.Now()
		sh.mu.Lock()
		h(i, time.Since(start))
		return sh
	}
	sh.mu.Lock()
	return sh
}

// lockAll write-locks every shard in ascending index order — the fixed
// global order that makes multi-shard commits deadlock-free — and
// reports the total wait to the hook as shard -1.
func (s *Store) lockAll() {
	if h, ok := s.lockWait.Load().(LockWaitHook); ok && h != nil {
		start := time.Now()
		for _, sh := range s.shards {
			sh.mu.Lock()
		}
		h(-1, time.Since(start))
		return
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
}

func (s *Store) unlockAll() {
	for _, sh := range s.shards {
		sh.mu.Unlock()
	}
}

func (s *Store) rlockAll() {
	for _, sh := range s.shards {
		sh.mu.RLock()
	}
}

func (s *Store) runlockAll() {
	for _, sh := range s.shards {
		sh.mu.RUnlock()
	}
}

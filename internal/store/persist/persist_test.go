package persist

import (
	"bufio"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"ofmf/internal/odata"
	"ofmf/internal/store"
)

func res(name string) map[string]any {
	return map[string]any{"@odata.id": name, "Name": name}
}

// openStore builds a recovered, attached store on dir.
func openStore(t *testing.T, dir string, fsync bool) (*store.Store, *FileBackend, RecoveryStats) {
	t.Helper()
	st := store.New()
	b, err := Open(Options{Dir: dir, Fsync: fsync})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	stats, err := b.Recover(st)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	st.AttachBackend(b, stats.LastSeq)
	return st, b, stats
}

func export(t *testing.T, st *store.Store) map[string]json.RawMessage {
	t.Helper()
	data, err := st.Export()
	if err != nil {
		t.Fatalf("Export: %v", err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("parse export: %v", err)
	}
	return m
}

func TestDurabilityAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	st, _, _ := openStore(t, dir, true)
	if err := st.Put("/redfish/v1/Systems/a", res("a")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("/redfish/v1/Systems/b", res("b")); err != nil {
		t.Fatal(err)
	}
	if err := st.Patch("/redfish/v1/Systems/a", map[string]any{"Extra": 1.0}, ""); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete("/redfish/v1/Systems/b"); err != nil {
		t.Fatal(err)
	}
	want := export(t, st)
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st2, _, stats := openStore(t, dir, true)
	defer st2.Close()
	if got := export(t, st2); !reflect.DeepEqual(got, want) {
		t.Fatalf("restart mismatch:\n got %v\nwant %v", got, want)
	}
	// Graceful shutdown compacts, so a clean restart replays nothing.
	if stats.Replayed != 0 {
		t.Fatalf("clean restart replayed %d records, want 0", stats.Replayed)
	}
	if stats.Truncated {
		t.Fatal("clean restart reported truncation")
	}
}

func TestRecoveryWithoutCleanShutdown(t *testing.T) {
	dir := t.TempDir()
	st, _, _ := openStore(t, dir, false)
	if err := st.PutSubtree("/redfish/v1/Fabrics/CXL", map[odata.ID]any{
		"/redfish/v1/Fabrics/CXL":         res("CXL"),
		"/redfish/v1/Fabrics/CXL/Ports/1": res("p1"),
		"/redfish/v1/Fabrics/CXL/Ports/2": res("p2"),
	}); err != nil {
		t.Fatal(err)
	}
	if n, err := st.DeleteSubtree("/redfish/v1/Fabrics/CXL/Ports/2"); err != nil || n != 1 {
		t.Fatalf("DeleteSubtree = %d, %v; want 1, nil", n, err)
	}
	want := export(t, st)
	// No Close: simulate a crash. Every mutation waited for its flush,
	// so the records are in the file even though the process "died".
	st2, _, stats := openStore(t, dir, false)
	defer st2.Close()
	if got := export(t, st2); !reflect.DeepEqual(got, want) {
		t.Fatalf("crash recovery mismatch:\n got %v\nwant %v", got, want)
	}
	if stats.Replayed == 0 {
		t.Fatal("expected replayed records after unclean shutdown")
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	st, _, _ := openStore(t, dir, false)
	for _, id := range []odata.ID{"/a/1", "/a/2", "/a/3"} {
		if err := st.Put(id, res(string(id))); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash mid-write: append garbage (a torn frame) to the
	// active segment.
	segs, err := listSeqs(dir, walPrefix, walSuffix)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segment: %v", err)
	}
	active := walPath(dir, segs[len(segs)-1])
	f, err := os.OpenFile(active, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, _, stats := openStore(t, dir, false)
	defer st2.Close()
	if !stats.Truncated {
		t.Fatal("torn tail not detected")
	}
	if st2.Len() != 3 {
		t.Fatalf("recovered %d resources, want 3", st2.Len())
	}
}

// TestTornSegmentQuarantinesSuccessors covers the zombie-resurrection
// case: a torn record means every later segment is untrusted, and one of
// them can start exactly at the sequence number the fresh post-recovery
// segment would take. Recovery must rename those segments aside — not
// replay them, not silently delete them, and never append new commits
// into them — so that neither this boot nor the next resurrects records
// recovery refused.
func TestTornSegmentQuarantinesSuccessors(t *testing.T) {
	dir := t.TempDir()
	rec := func(seq uint64, id string) store.Record {
		raw, err := json.Marshal(res(id))
		if err != nil {
			t.Fatal(err)
		}
		return store.Record{Seq: seq, Op: store.OpPut, ID: odata.ID(id), Raw: raw}
	}
	writeSeg := func(start uint64, torn bool, recs ...store.Record) {
		f, err := os.Create(walPath(dir, start))
		if err != nil {
			t.Fatal(err)
		}
		bw := bufio.NewWriter(f)
		for _, r := range recs {
			payload, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			if err := writeFrame(bw, payload); err != nil {
				t.Fatal(err)
			}
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		if torn {
			if _, err := f.Write([]byte{0xde, 0xad}); err != nil {
				t.Fatal(err)
			}
		}
		f.Close()
	}
	// The segment active at the crash: seqs 1-2 committed, then a torn
	// frame.
	writeSeg(1, true, rec(1, "/a/1"), rec(2, "/a/2"))
	// An untrusted successor starting exactly at lastSeq+1 — the very
	// path recovery reuses for its fresh segment.
	writeSeg(3, false, rec(3, "/a/zombie"))

	st, _, stats := openStore(t, dir, false)
	if !stats.Truncated {
		t.Fatal("tear not detected")
	}
	if stats.Replayed != 2 {
		t.Fatalf("replayed %d records, want 2 (the committed prefix)", stats.Replayed)
	}
	if st.Exists("/a/zombie") {
		t.Fatal("record from untrusted successor segment replayed")
	}
	quarantined, err := filepath.Glob(filepath.Join(dir, "*"+quarantineSuffix))
	if err != nil || len(quarantined) != 1 {
		t.Fatalf("quarantined files = %v (%v), want exactly one", quarantined, err)
	}
	// New commits go to a fresh segment; a second boot must serve the
	// committed prefix plus the new commit, zombie still absent.
	if err := st.Put("/a/3", res("/a/3")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, _, _ := openStore(t, dir, false)
	defer st2.Close()
	if st2.Exists("/a/zombie") {
		t.Fatal("untrusted record resurrected on second boot")
	}
	for _, id := range []odata.ID{"/a/1", "/a/2", "/a/3"} {
		if !st2.Exists(id) {
			t.Fatalf("committed resource %s lost", id)
		}
	}
}

func TestOpenWALRefusesExistingFile(t *testing.T) {
	dir := t.TempDir()
	path := walPath(dir, 1)
	if err := os.WriteFile(path, []byte("leftover"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openWAL(path, 0, false, nil); err == nil {
		t.Fatal("openWAL opened an existing file instead of failing loudly")
	}
}

// flakySrc injects one snapshot failure, exercising Compact's retry path:
// after a failed snapshot the rotation has already happened, and the
// retry must not collide with the segment it created.
type flakySrc struct {
	st   *store.Store
	fail bool
}

func (f *flakySrc) Snapshot() ([]byte, uint64, error) {
	if f.fail {
		return nil, 0, errors.New("injected snapshot failure")
	}
	return f.st.Snapshot()
}

func TestCompactRetriesAfterSnapshotFailure(t *testing.T) {
	dir := t.TempDir()
	st, b, _ := openStore(t, dir, false)
	defer st.Close()
	src := &flakySrc{st: st, fail: true}
	b.StartSnapshots(src)
	if err := st.Put("/a/x", res("x")); err != nil {
		t.Fatal(err)
	}
	if err := b.Compact(); err == nil {
		t.Fatal("expected injected snapshot failure")
	}
	src.fail = false
	if err := b.Compact(); err != nil {
		t.Fatalf("Compact retry after failed snapshot: %v", err)
	}
	segs, _ := listSeqs(dir, walPrefix, walSuffix)
	if len(segs) != 1 {
		t.Fatalf("after retried compaction: %d segments, want 1", len(segs))
	}
}

func TestCompactRotatesAndPrunes(t *testing.T) {
	dir := t.TempDir()
	st, b, _ := openStore(t, dir, false)
	defer st.Close()
	b.StartSnapshots(st)
	for i := 0; i < 10; i++ {
		if err := st.Put(odata.ID("/a/"+string(rune('a'+i))), res("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	// Idempotent when nothing new was appended.
	if err := b.Compact(); err != nil {
		t.Fatalf("second Compact: %v", err)
	}
	segs, _ := listSeqs(dir, walPrefix, walSuffix)
	snaps, _ := listSeqs(dir, snapPrefix, snapSuffix)
	if len(segs) != 1 || len(snaps) != 1 {
		t.Fatalf("after compaction: %d segments, %d snapshots; want 1 and 1", len(segs), len(snaps))
	}
	// The surviving snapshot covers every mutation: replay-free restart.
	_, _, stats := openStore(t, dir, false)
	if stats.Replayed != 0 {
		t.Fatalf("replayed %d after compaction, want 0", stats.Replayed)
	}
	if stats.Resources != 10 {
		t.Fatalf("recovered %d resources, want 10", stats.Resources)
	}
}

func TestConcurrentWritersGroupCommit(t *testing.T) {
	dir := t.TempDir()
	st, _, _ := openStore(t, dir, true)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := odata.ID("/w/" + string(rune('a'+g)))
			for i := 0; i < 25; i++ {
				if err := st.Put(base.Append(string(rune('a'+i%26))), res("v")); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	want := export(t, st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, _, _ := openStore(t, dir, true)
	defer st2.Close()
	if got := export(t, st2); !reflect.DeepEqual(got, want) {
		t.Fatal("concurrent-writer recovery mismatch")
	}
}

func TestSnapshotLoopRuns(t *testing.T) {
	dir := t.TempDir()
	st, b, _ := openStore(t, dir, false)
	b.StartSnapshots(st)
	b.opts.SnapshotInterval = 0 // loop not started with 0; drive manually below
	if err := st.Put("/a/x", res("x")); err != nil {
		t.Fatal(err)
	}
	if err := b.Compact(); err != nil {
		t.Fatal(err)
	}
	snaps, _ := listSeqs(dir, snapPrefix, snapSuffix)
	if len(snaps) != 1 {
		t.Fatalf("want exactly one snapshot, got %d", len(snaps))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPeriodicSnapshotTicker(t *testing.T) {
	dir := t.TempDir()
	st := store.New()
	b, err := Open(Options{Dir: dir, Fsync: false, SnapshotInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := b.Recover(st)
	if err != nil {
		t.Fatal(err)
	}
	st.AttachBackend(b, stats.LastSeq)
	b.StartSnapshots(st)
	if err := st.Put("/a/x", res("x")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		snaps, _ := listSeqs(dir, snapPrefix, snapSuffix)
		if len(snaps) > 0 && snaps[len(snaps)-1] > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic snapshot never ran")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDataDirFilesAreScoped(t *testing.T) {
	dir := t.TempDir()
	// Unrelated files must survive compaction untouched.
	keep := filepath.Join(dir, "README.txt")
	if err := os.WriteFile(keep, []byte("operator notes"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, b, _ := openStore(t, dir, false)
	b.StartSnapshots(st)
	if err := st.Put("/a/x", res("x")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatalf("unrelated file removed: %v", err)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		name := e.Name()
		if name == "README.txt" || strings.HasPrefix(name, snapPrefix) || strings.HasPrefix(name, walPrefix) {
			continue
		}
		t.Fatalf("unexpected file in data dir: %s", name)
	}
}

package persist

import (
	"fmt"
	"sync/atomic"
	"testing"

	"ofmf/internal/odata"
	"ofmf/internal/store"
)

// benchPut measures the store's Put hot path with the given durability
// configuration, writing a fresh resource each iteration so every Put
// commits a mutation.
func benchPut(b *testing.B, st *store.Store) {
	b.ReportAllocs()
	payload := map[string]any{"@odata.type": "#Resource.Resource", "Name": "bench", "Value": 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := odata.ID(fmt.Sprintf("/redfish/v1/Bench/%d", i))
		payload["Value"] = i
		if err := st.Put(id, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALOffPut is the baseline: the pure in-memory store with no
// backend attached, the default zero-config path.
func BenchmarkWALOffPut(b *testing.B) {
	benchPut(b, store.New())
}

// BenchmarkWALPut commits every mutation to the WAL but lets the OS
// buffer the write (fsync=false): the kill-safe, not power-safe mode.
func BenchmarkWALPut(b *testing.B) {
	st := store.New()
	backend, err := Open(Options{Dir: b.TempDir(), Fsync: false})
	if err != nil {
		b.Fatal(err)
	}
	defer backend.Close()
	if _, err := backend.Recover(st); err != nil {
		b.Fatal(err)
	}
	st.AttachBackend(backend, 0)
	benchPut(b, st)
}

// BenchmarkWALFsyncPut waits for stable storage on every commit
// (group-committed). Dominated by device sync latency; concurrency
// amortizes it, which BenchmarkWALFsyncPutParallel shows.
func BenchmarkWALFsyncPut(b *testing.B) {
	st := store.New()
	backend, err := Open(Options{Dir: b.TempDir(), Fsync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer backend.Close()
	if _, err := backend.Recover(st); err != nil {
		b.Fatal(err)
	}
	st.AttachBackend(backend, 0)
	benchPut(b, st)
}

// BenchmarkWALFsyncPutParallel exercises group commit: parallel writers
// share fsyncs, so per-op latency drops well below a lone writer's.
func BenchmarkWALFsyncPutParallel(b *testing.B) {
	st := store.New()
	backend, err := Open(Options{Dir: b.TempDir(), Fsync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer backend.Close()
	if _, err := backend.Recover(st); err != nil {
		b.Fatal(err)
	}
	st.AttachBackend(backend, 0)
	b.ReportAllocs()
	var worker atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := worker.Add(1)
		i := 0
		for pb.Next() {
			i++
			id := odata.ID(fmt.Sprintf("/redfish/v1/Bench/%d-%d", w, i))
			if err := st.Put(id, map[string]any{"Name": "bench", "Value": i}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWALFsyncPutParallelSharded is the sharded write path:
// parallel writers on distinct top-level segments commit through
// per-shard WAL streams, each with its own group-commit leader, so the
// fsync queue itself is partitioned. shards=1 is the single-stream
// baseline above.
func BenchmarkWALFsyncPutParallelSharded(b *testing.B) {
	for _, n := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			st := store.NewSharded(n)
			backend, err := Open(Options{Dir: b.TempDir(), Fsync: true, Shards: n})
			if err != nil {
				b.Fatal(err)
			}
			defer backend.Close()
			stats, err := backend.Recover(st)
			if err != nil {
				b.Fatal(err)
			}
			st.AttachBackend(backend, stats.LastSeq)
			b.ReportAllocs()
			var worker atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := worker.Add(1)
				i := 0
				for pb.Next() {
					i++
					id := odata.ID(fmt.Sprintf("/redfish/v1/B%d/%d", w, i))
					if err := st.Put(id, map[string]any{"Name": "bench", "Value": i}); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

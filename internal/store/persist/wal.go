// Package persist is the store's file-based durability layer: per-shard
// append-only write-ahead logs of canonical mutation records with
// group-commit flush/fsync coalescing, periodic compacted snapshots
// built from consistent store cuts, and boot-time recovery that loads
// the newest valid snapshot, merge-replays every stream's tail by
// global sequence number, and truncates torn records left by a crash
// mid-write.
//
// On-disk layout. The single-stream layout (Options.Shards <= 1) keeps
// everything in one data directory, byte-compatible with dirs written
// before sharding existed:
//
//	snap-<seq>.json   compacted snapshot: {"Seq":N,"Resources":{uri:raw}}
//	wal-<start>.log   log segment; holds records with Seq >= start
//
//	wal-<start>.log.quarantined
//	                  segment found after a torn record, or holding
//	                  records beyond a global sequence gap; recovery
//	                  renames it aside rather than replaying or deleting
//	                  it
//
// The sharded layout (Options.Shards > 1) adds a layout.json descriptor
// and moves the WAL streams into per-shard subdirectories, while
// snapshots stay global at the top level:
//
//	layout.json            {"Version":1,"Shards":N}
//	snap-<seq>.json        global snapshot, as above
//	shard-00/wal-<start>.log ... shard-NN/wal-<start>.log
//
// Records carry globally unique, monotonically increasing sequence
// numbers regardless of which stream they land in, so recovery sorts
// the union of all streams by Seq to rebuild the total commit order.
// Recover migrates a directory between layouts automatically when the
// configured shard count differs from the one on disk.
//
// Each WAL record is framed as
//
//	| uint32 payload length | uint32 CRC-32C of payload | payload |
//
// (little-endian) where the payload is the JSON encoding of a
// store.Record. The frame makes torn tails self-identifying: a partial
// header, short payload, checksum mismatch, or undecodable payload all
// mark the end of the committed prefix, and recovery truncates the file
// there.
package persist

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"ofmf/internal/store"
)

// maxRecordBytes bounds a single record frame, rejecting garbage lengths
// in corrupt files before any allocation happens.
const maxRecordBytes = 64 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// writeFrame appends one length+CRC framed payload to bw.
func writeFrame(bw *bufio.Writer, payload []byte) error {
	if len(payload) == 0 || len(payload) > maxRecordBytes {
		return fmt.Errorf("persist: record size %d out of range", len(payload))
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	_, err := bw.Write(payload)
	return err
}

// decodeAll reads framed records from r until EOF or the first torn or
// corrupt frame. It returns the decoded records, the byte offset of the
// end of the last intact frame, and whether the stream was torn (false
// means it ended cleanly at EOF).
func decodeAll(r io.Reader) (recs []store.Record, good int64, torn bool) {
	br := bufio.NewReaderSize(r, 1<<16)
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return recs, good, err != io.EOF
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		if n == 0 || n > maxRecordBytes {
			return recs, good, true
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return recs, good, true
		}
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
			return recs, good, true
		}
		var rec store.Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, good, true
		}
		recs = append(recs, rec)
		good += int64(8 + n)
	}
}

// wal is one append-only log segment with group-commit semantics.
// Appends serialize frames into a buffered writer under mu; durability
// happens in waitFor, where the first waiter becomes the flush leader
// and flushes (and fsyncs, in fsync mode) on behalf of every commit
// queued behind it — concurrent writers pay one fsync, not one each.
type wal struct {
	path string
	f    *os.File
	base uint64 // sequence number the segment starts after; immutable

	mu      sync.Mutex // guards bw, lastSeq
	bw      *bufio.Writer
	lastSeq uint64

	syncMu     sync.Mutex
	syncCond   *sync.Cond
	syncing    bool
	flushedSeq uint64 // highest seq durable per the mode
	err        error  // sticky write/flush/sync failure

	fsync   bool
	onFsync func(time.Duration) // observes each fsync round; may be nil
}

// openWAL creates the segment at path. base is the sequence number the
// segment starts after — lastSeq/flushedSeq begin there so an empty
// segment reports the log position it was rotated at. Creation is
// exclusive: a leftover file at the path means the caller's bookkeeping
// is wrong (appending to a file whose contents we did not write could
// resurrect records recovery refused), so it fails loudly instead. The
// directory entry is fsynced before any commit can be acknowledged —
// fsyncing the file alone does not persist its existence, and a power
// failure could otherwise drop the whole segment.
func openWAL(path string, base uint64, fsync bool, onFsync func(time.Duration)) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: create wal: %w", err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: sync wal dir: %w", err)
	}
	w := &wal{path: path, f: f, base: base, bw: bufio.NewWriterSize(f, 1<<16), fsync: fsync, onFsync: onFsync}
	w.lastSeq = base
	w.flushedSeq = base
	w.syncCond = sync.NewCond(&w.syncMu)
	return w, nil
}

// append frames the batch into the segment buffer and returns a wait
// function that blocks until the batch is durable. The caller (the
// store, under its write lock, via FileBackend.Append) guarantees batches
// arrive in commit order.
func (w *wal) append(recs []store.Record) func() error {
	w.mu.Lock()
	var werr error
	for _, rec := range recs {
		payload, err := json.Marshal(rec)
		if err == nil {
			err = writeFrame(w.bw, payload)
		}
		if err != nil {
			werr = err
			break
		}
	}
	if last := recs[len(recs)-1].Seq; last > w.lastSeq {
		w.lastSeq = last
	}
	w.mu.Unlock()
	if werr != nil {
		w.fail(werr)
		return func() error { return werr }
	}
	last := recs[len(recs)-1].Seq
	return func() error { return w.waitFor(last) }
}

func (w *wal) fail(err error) {
	w.syncMu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.syncCond.Broadcast()
	w.syncMu.Unlock()
}

// seq returns the highest sequence number appended to this segment.
func (w *wal) seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastSeq
}

// waitFor blocks until every record with Seq <= seq is flushed to the OS
// (and fsynced, in fsync mode). Concurrent commits coalesce: one leader
// flushes for everyone queued behind it, and waiters arriving during a
// flush join the next round.
func (w *wal) waitFor(seq uint64) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	for {
		if w.err != nil {
			return w.err
		}
		if w.flushedSeq >= seq {
			return nil
		}
		if w.syncing {
			w.syncCond.Wait()
			continue
		}
		w.syncing = true
		w.syncMu.Unlock()

		w.mu.Lock()
		target := w.lastSeq
		err := w.bw.Flush()
		w.mu.Unlock()
		if err == nil && w.fsync {
			start := time.Now()
			err = w.f.Sync()
			if w.onFsync != nil {
				w.onFsync(time.Since(start))
			}
		}

		w.syncMu.Lock()
		w.syncing = false
		if err != nil {
			w.err = err
		} else if target > w.flushedSeq {
			w.flushedSeq = target
		}
		w.syncCond.Broadcast()
	}
}

// close flushes and fsyncs the segment (regardless of mode — a closing
// segment is about to be dropped from the active set, so it must be
// fully on disk) and closes the file.
func (w *wal) close() error {
	w.mu.Lock()
	err := w.bw.Flush()
	last := w.lastSeq
	w.mu.Unlock()
	if serr := w.f.Sync(); err == nil {
		err = serr
	}
	w.syncMu.Lock()
	if err != nil {
		if w.err == nil {
			w.err = err
		}
	} else if last > w.flushedSeq {
		w.flushedSeq = last
	}
	w.syncCond.Broadcast()
	w.syncMu.Unlock()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

package persist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	snapPrefix = "snap-"
	snapSuffix = ".json"
	walPrefix  = "wal-"
	walSuffix  = ".log"
	// quarantineSuffix marks WAL segments found after a torn record:
	// recovery refuses to replay them (the tear means they may postdate
	// lost mutations) but preserves their bytes for an operator instead of
	// deleting data that may include acknowledged commits. listSeqs never
	// matches the suffix, so quarantined files are inert until removed by
	// hand.
	quarantineSuffix = ".quarantined"
)

// snapshotFile is the on-disk snapshot format: a consistent export of
// the tree plus the commit sequence number of the last mutation it
// reflects. Recovery skips WAL records with Seq <= Seq.
type snapshotFile struct {
	Seq       uint64          `json:"Seq"`
	Resources json.RawMessage `json:"Resources"`
}

func snapPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", snapPrefix, seq, snapSuffix))
}

func walPath(dir string, start uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", walPrefix, start, walSuffix))
}

// listSeqs returns the sequence numbers parsed from dir entries named
// <prefix><16-hex-digits><suffix>, ascending. Files that merely resemble
// the pattern are ignored.
func listSeqs(dir, prefix, suffix string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
		if len(hex) != 16 {
			continue
		}
		n, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, n)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// writeSnapshot durably installs a snapshot: write to a temp file, fsync
// it, rename into place, fsync the directory. A crash at any point
// leaves either the old snapshot set or the complete new file — never a
// partially visible one.
func writeSnapshot(dir string, seq uint64, export []byte) error {
	data, err := json.Marshal(snapshotFile{Seq: seq, Resources: export})
	if err != nil {
		return fmt.Errorf("persist: snapshot encode: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("persist: snapshot temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: snapshot write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: snapshot sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: snapshot close: %w", err)
	}
	if err := os.Rename(tmp.Name(), snapPath(dir, seq)); err != nil {
		return fmt.Errorf("persist: snapshot rename: %w", err)
	}
	return syncDir(dir)
}

// loadNewestSnapshot reads the newest parseable snapshot in dir. ok is
// false when none exists. Unparseable snapshots are skipped in favour of
// older ones rather than failing the boot.
func loadNewestSnapshot(dir string) (snap snapshotFile, ok bool, skipped int, err error) {
	seqs, err := listSeqs(dir, snapPrefix, snapSuffix)
	if err != nil {
		return snapshotFile{}, false, 0, err
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		data, rerr := os.ReadFile(snapPath(dir, seqs[i]))
		if rerr == nil && json.Unmarshal(data, &snap) == nil && len(snap.Resources) > 0 {
			return snap, true, skipped, nil
		}
		skipped++
	}
	return snapshotFile{}, false, skipped, nil
}

// removeBelow deletes files of the given naming family whose sequence
// number is strictly below keep. Removal failures are ignored: stale
// files only cost disk and are retried at the next compaction.
func removeBelow(dir, prefix, suffix string, keep uint64) {
	seqs, err := listSeqs(dir, prefix, suffix)
	if err != nil {
		return
	}
	for _, seq := range seqs {
		if seq < keep {
			os.Remove(filepath.Join(dir, fmt.Sprintf("%s%016x%s", prefix, seq, suffix)))
		}
	}
}

// syncDir fsyncs a directory so renames and creations within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

package persist

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"sync"
	"time"

	"ofmf/internal/obsv"
	"ofmf/internal/store"
)

// SnapshotSource yields a consistent cut of the resource tree: the
// export plus the commit sequence number of the last mutation it
// contains. *store.Store implements it.
type SnapshotSource interface {
	Snapshot() (data []byte, seq uint64, err error)
}

// Options configures a file backend.
type Options struct {
	// Dir is the data directory; it is created if missing.
	Dir string
	// Fsync selects the durability mode. When true (the production
	// default) every mutation waits for its WAL record to reach stable
	// storage before returning; group commit coalesces concurrent
	// waiters into one fsync. When false the record still reaches the
	// OS before the mutation returns — surviving a process kill but not
	// a power failure.
	Fsync bool
	// SnapshotInterval is the cadence of compacted snapshots and WAL
	// rotation. Zero or negative disables the periodic loop; a final
	// compaction still happens on Close.
	SnapshotInterval time.Duration
	// Logger receives the backend's structured log output (default:
	// drop everything).
	Logger *slog.Logger
	// Metrics, when non-nil, receives WAL append counts, fsync and
	// snapshot durations, and the recovery replay count.
	Metrics *obsv.Metrics
	// Tracer, when non-nil, records WAL append, group-commit fsync and
	// snapshot rounds as root spans (these run outside any request
	// context), so the trace ring shows where durability time goes.
	Tracer *obsv.Tracer
}

// RecoveryStats describes one boot-time recovery.
type RecoveryStats struct {
	// SnapshotSeq is the sequence number of the snapshot loaded (0 when
	// the directory held none).
	SnapshotSeq uint64
	// Replayed is the number of WAL records applied on top of the
	// snapshot.
	Replayed int
	// Truncated reports that a torn tail (crash mid-write) was cut from
	// the log.
	Truncated bool
	// Resources is the store's resource count after recovery.
	Resources int
	// LastSeq is the highest committed sequence number recovered; pass
	// it to Store.AttachBackend.
	LastSeq uint64
	// Duration is the wall time recovery took, compaction included.
	Duration time.Duration
}

// FileBackend is the store.Backend persisting mutations to a WAL plus
// compacted snapshots in a data directory. Lifecycle:
//
//	b, _ := persist.Open(opts)
//	stats, _ := b.Recover(st)          // load snapshot, replay tail
//	st.AttachBackend(b, stats.LastSeq) // start logging new mutations
//	b.StartSnapshots(st)               // periodic compaction
//	...
//	st.Close()                         // detaches and closes b
type FileBackend struct {
	opts Options
	log  *slog.Logger

	mu          sync.Mutex // guards wal swap and compaction
	wal         *wal
	lastSnapSeq uint64

	src      SnapshotSource
	stop     chan struct{}
	loopDone chan struct{}

	closeOnce sync.Once
	closeErr  error
}

// Open prepares a file backend on dir. No file is touched beyond
// creating the directory; Recover opens the log.
func Open(opts Options) (*FileBackend, error) {
	if opts.Dir == "" {
		return nil, errors.New("persist: Options.Dir required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: data dir: %w", err)
	}
	log := opts.Logger
	if log == nil {
		log = obsv.NopLogger()
	}
	return &FileBackend{opts: opts, log: log}, nil
}

// Recover rebuilds st from the data directory: load the newest valid
// snapshot through Store.Import, replay every WAL record with a greater
// sequence number through Store.Apply (truncating a torn tail), then
// compact — write a fresh snapshot of the recovered tree, start a new
// log segment, and delete the superseded files — so the next boot loads
// one snapshot and an empty tail. Call it exactly once, before
// AttachBackend.
func (b *FileBackend) Recover(st *store.Store) (RecoveryStats, error) {
	start := time.Now()
	var stats RecoveryStats
	dir := b.opts.Dir

	snap, ok, skipped, err := loadNewestSnapshot(dir)
	if err != nil {
		return stats, err
	}
	if skipped > 0 {
		b.log.Warn("persist: skipped unreadable snapshots", "count", skipped)
	}
	if ok {
		if err := st.Import(snap.Resources); err != nil {
			return stats, fmt.Errorf("persist: snapshot import: %w", err)
		}
		stats.SnapshotSeq = snap.Seq
	}
	lastSeq := stats.SnapshotSeq

	segs, err := listSeqs(dir, walPrefix, walSuffix)
	if err != nil {
		return stats, err
	}
	for i, seg := range segs {
		path := walPath(dir, seg)
		f, err := os.Open(path)
		if err != nil {
			return stats, fmt.Errorf("persist: open segment: %w", err)
		}
		recs, good, torn := decodeAll(f)
		f.Close()
		if torn {
			stats.Truncated = true
			// A tear can only happen at the end of the log that was active
			// at the crash; segments after it are not trustworthy and must
			// never be replayed. Quarantine them BEFORE truncating the torn
			// tail — the tear is the only durable evidence they are
			// untrusted, and truncation destroys it. If we crash between
			// the rename and the truncate, the next boot sees the same torn
			// segment and reaches the same verdict. (In fsync mode a later
			// segment can hold commits that were acknowledged as durable
			// after a rotation; the rename keeps those bytes on disk for an
			// operator instead of silently deleting them.)
			for _, later := range segs[i+1:] {
				lp := walPath(dir, later)
				b.log.Warn("persist: quarantining segment after torn record",
					"segment", lp, "quarantined", lp+quarantineSuffix)
				if err := os.Rename(lp, lp+quarantineSuffix); err != nil {
					return stats, fmt.Errorf("persist: quarantine %s: %w", lp, err)
				}
			}
			if i < len(segs)-1 {
				if err := syncDir(dir); err != nil {
					return stats, fmt.Errorf("persist: sync quarantine: %w", err)
				}
			}
			b.log.Warn("persist: truncating torn log tail", "segment", path, "offset", good)
			if err := os.Truncate(path, good); err != nil {
				return stats, fmt.Errorf("persist: truncate torn tail: %w", err)
			}
		}
		for _, rec := range recs {
			if rec.Seq <= lastSeq {
				continue // already in the snapshot (or a duplicate)
			}
			if err := st.Apply(rec); err != nil {
				return stats, fmt.Errorf("persist: replay seq %d: %w", rec.Seq, err)
			}
			stats.Replayed++
			lastSeq = rec.Seq
		}
		if torn {
			break
		}
	}

	stats.LastSeq = lastSeq
	stats.Resources = st.Len()

	// Compact: the recovered tree becomes the new baseline.
	export, err := st.Export()
	if err != nil {
		return stats, fmt.Errorf("persist: recovery export: %w", err)
	}
	if err := writeSnapshot(dir, lastSeq, export); err != nil {
		return stats, err
	}
	// Every surviving segment is now superseded by the snapshot (replayed
	// records have Seq <= lastSeq, untrusted ones were renamed away), so
	// remove them all before creating the fresh segment: openWAL creates
	// exclusively and must not collide with a leftover file — an empty
	// rotated segment or a torn one truncated to zero can sit exactly at
	// walPath(lastSeq+1).
	if stale, err := listSeqs(dir, walPrefix, walSuffix); err == nil {
		for _, seg := range stale {
			os.Remove(walPath(dir, seg))
		}
	}
	w, err := openWAL(walPath(dir, lastSeq+1), lastSeq, b.opts.Fsync, b.onFsync)
	if err != nil {
		return stats, err
	}
	b.mu.Lock()
	b.wal = w
	b.lastSnapSeq = lastSeq
	b.mu.Unlock()
	// The recovered store is the natural snapshot source for the final
	// compaction on Close; StartSnapshots may override it.
	b.src = st
	removeBelow(dir, snapPrefix, snapSuffix, lastSeq)

	stats.Duration = time.Since(start)
	if m := b.opts.Metrics; m != nil {
		m.RecoveryReplayed.Add(float64(stats.Replayed))
	}
	b.log.Info("persist: recovery complete",
		"resources", stats.Resources, "replayed", stats.Replayed,
		"snapshot_seq", stats.SnapshotSeq, "truncated", stats.Truncated,
		"duration", stats.Duration)
	return stats, nil
}

func (b *FileBackend) onFsync(d time.Duration) {
	if m := b.opts.Metrics; m != nil {
		m.WALFsync.Observe(d.Seconds())
	}
	b.opts.Tracer.Observe("wal.fsync", d)
}

// Append implements store.Backend. It runs under the store's write lock,
// so it only frames the batch into the active segment's buffer; the
// returned wait completes durability after the lock is released. The
// backend's own mutex orders appends against segment rotation.
func (b *FileBackend) Append(batch []store.Record) func() error {
	start := time.Now()
	b.mu.Lock()
	w := b.wal
	if w == nil {
		b.mu.Unlock()
		return func() error { return errors.New("persist: backend not recovered or already closed") }
	}
	wait := w.append(batch)
	b.mu.Unlock()
	if m := b.opts.Metrics; m != nil {
		m.WALAppends.Add(float64(len(batch)))
	}
	b.opts.Tracer.Observe("wal.append", time.Since(start))
	return wait
}

// StartSnapshots begins the periodic snapshot/compaction loop over
// consistent cuts of src. Call it once, after AttachBackend; src is also
// used for the final compaction on Close.
func (b *FileBackend) StartSnapshots(src SnapshotSource) {
	b.src = src
	if b.opts.SnapshotInterval <= 0 {
		return
	}
	b.stop = make(chan struct{})
	b.loopDone = make(chan struct{})
	go func() {
		defer close(b.loopDone)
		t := time.NewTicker(b.opts.SnapshotInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if err := b.Compact(); err != nil {
					b.log.Error("persist: periodic snapshot failed", "err", err)
				}
			case <-b.stop:
				return
			}
		}
	}()
}

// Compact rotates the log and installs a fresh snapshot, then deletes
// the files the snapshot supersedes. It is a no-op when nothing was
// appended since the last compaction.
//
// The order matters for crash safety: rotate first, snapshot second. The
// snapshot is captured after rotation, so its sequence number covers
// every record in the retired segments — records committed in between
// land in the new segment with Seq <= the snapshot's and are skipped on
// replay (puts are idempotent post-state anyway). A crash between the
// steps leaves old snapshot + all segments: fully recoverable.
func (b *FileBackend) Compact() error {
	if b.src == nil {
		return errors.New("persist: no snapshot source; call StartSnapshots")
	}
	b.mu.Lock()
	old := b.wal
	if old == nil {
		b.mu.Unlock()
		return errors.New("persist: backend closed")
	}
	oldLast := old.seq()
	if oldLast == b.lastSnapSeq {
		b.mu.Unlock()
		return nil
	}
	// Rotate only when the active segment holds records. When it is empty
	// (a previous snapshot failed after rotation and nothing was appended
	// since) there is nothing to retire, and opening walPath(oldLast+1)
	// would collide with the active segment itself — just retry the
	// snapshot over the existing log.
	rotated := oldLast > old.base
	if rotated {
		next, err := openWAL(walPath(b.opts.Dir, oldLast+1), oldLast, b.opts.Fsync, b.onFsync)
		if err != nil {
			b.mu.Unlock()
			return err
		}
		b.wal = next
	}
	b.mu.Unlock()

	start := time.Now()
	if rotated {
		if err := old.close(); err != nil {
			return fmt.Errorf("persist: retire segment: %w", err)
		}
	}
	export, seq, err := b.src.Snapshot()
	if err != nil {
		return fmt.Errorf("persist: snapshot export: %w", err)
	}
	if err := writeSnapshot(b.opts.Dir, seq, export); err != nil {
		return err
	}
	b.mu.Lock()
	if seq > b.lastSnapSeq {
		b.lastSnapSeq = seq
	}
	b.mu.Unlock()
	removeBelow(b.opts.Dir, walPrefix, walSuffix, oldLast+1)
	removeBelow(b.opts.Dir, snapPrefix, snapSuffix, seq)
	if m := b.opts.Metrics; m != nil {
		m.SnapshotSeconds.Observe(time.Since(start).Seconds())
	}
	b.opts.Tracer.Observe("store.snapshot", time.Since(start))
	b.log.Info("persist: snapshot installed", "seq", seq, "duration", time.Since(start))
	return nil
}

// Close implements store.Backend: stop the snapshot loop, run a final
// compaction so the next boot is snapshot-only, and flush and close the
// active segment. The store calls it from Store.Close after detaching.
func (b *FileBackend) Close() error {
	b.closeOnce.Do(func() {
		if b.stop != nil {
			close(b.stop)
			<-b.loopDone
		}
		if b.src != nil {
			if err := b.Compact(); err != nil {
				b.log.Error("persist: final snapshot failed", "err", err)
				b.closeErr = err
			}
		}
		b.mu.Lock()
		w := b.wal
		b.wal = nil
		b.mu.Unlock()
		if w != nil {
			if err := w.close(); err != nil && b.closeErr == nil {
				b.closeErr = err
			}
		}
	})
	return b.closeErr
}

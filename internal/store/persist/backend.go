package persist

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"sync"
	"time"

	"ofmf/internal/obsv"
	"ofmf/internal/store"
)

// SnapshotSource yields a consistent cut of the resource tree: the
// export plus the commit sequence number of the last mutation it
// contains. *store.Store implements it.
type SnapshotSource interface {
	Snapshot() (data []byte, seq uint64, err error)
}

// Options configures a file backend.
type Options struct {
	// Dir is the data directory; it is created if missing.
	Dir string
	// Fsync selects the durability mode. When true (the production
	// default) every mutation waits for its WAL record to reach stable
	// storage before returning; group commit coalesces concurrent
	// waiters into one fsync. When false the record still reaches the
	// OS before the mutation returns — surviving a process kill but not
	// a power failure.
	Fsync bool
	// Shards is the number of independent WAL streams. 0 or 1 keeps the
	// original single-stream layout (byte-compatible with data dirs
	// written before sharding existed); higher counts give each store
	// shard its own segment stream and group-commit leader, under
	// shard-NN subdirectories. Pass the store's shard count — per-shard
	// appends only engage when the two match. A data dir written at a
	// different count is migrated automatically during Recover.
	Shards int
	// SnapshotInterval is the cadence of compacted snapshots and WAL
	// rotation. Zero or negative disables the periodic loop; a final
	// compaction still happens on Close.
	SnapshotInterval time.Duration
	// Logger receives the backend's structured log output (default:
	// drop everything).
	Logger *slog.Logger
	// Metrics, when non-nil, receives WAL append counts, fsync and
	// snapshot durations, and the recovery replay count.
	Metrics *obsv.Metrics
	// Tracer, when non-nil, records WAL append, group-commit fsync and
	// snapshot rounds as root spans (these run outside any request
	// context), so the trace ring shows where durability time goes.
	Tracer *obsv.Tracer
}

// RecoveryStats describes one boot-time recovery.
type RecoveryStats struct {
	// SnapshotSeq is the sequence number of the snapshot loaded (0 when
	// the directory held none).
	SnapshotSeq uint64
	// Replayed is the number of WAL records applied on top of the
	// snapshot.
	Replayed int
	// Truncated reports that a torn tail (crash mid-write) was cut from
	// the log.
	Truncated bool
	// Dropped is the number of decoded records NOT replayed because an
	// earlier record in the global order was lost (a sequence gap after
	// merging the per-shard streams — only possible with a sharded
	// layout). Their segments are quarantined, not deleted.
	Dropped int
	// Resources is the store's resource count after recovery.
	Resources int
	// LastSeq is the highest committed sequence number recovered; pass
	// it to Store.AttachBackend.
	LastSeq uint64
	// LastEpoch is the highest replication epoch stamped on any
	// replayed record (0 for an unreplicated history); a rebooting
	// leader seeds its term from it so epochs never move backwards
	// across a restart.
	LastEpoch uint64
	// Shards is the stream count the directory was compacted into (the
	// configured layout).
	Shards int
	// Duration is the wall time recovery took, compaction included.
	Duration time.Duration
}

// FileBackend is the store.Backend persisting mutations to per-shard
// WAL streams plus global compacted snapshots in a data directory. It
// implements store.ShardedBackend: when its stream count matches the
// store's shard count, each shard appends to its own stream with its
// own group-commit leader, so fsync batching parallelizes across
// shards. Lifecycle:
//
//	b, _ := persist.Open(opts)
//	stats, _ := b.Recover(st)          // load snapshot, merge-replay streams
//	st.AttachBackend(b, stats.LastSeq) // start logging new mutations
//	b.StartSnapshots(st)               // periodic compaction
//	...
//	st.Close()                         // detaches and closes b
type FileBackend struct {
	opts   Options
	shards int // normalized stream count (>= 1)
	log    *slog.Logger

	mu          sync.Mutex // guards wals swaps and lastSnapSeq
	wals        []*wal     // one active segment per stream; nil until Recover
	lastSnapSeq uint64

	// compactMu serializes whole compaction passes (periodic loop,
	// explicit Compact, final Close compaction) against each other; mu
	// alone only covers the rotation bookkeeping inside one pass.
	compactMu sync.Mutex

	src      SnapshotSource
	stop     chan struct{}
	loopDone chan struct{}

	closeOnce sync.Once
	closeErr  error
}

// Open prepares a file backend on dir. No file is touched beyond
// creating the directory; Recover opens the streams.
func Open(opts Options) (*FileBackend, error) {
	if opts.Dir == "" {
		return nil, errors.New("persist: Options.Dir required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: data dir: %w", err)
	}
	log := opts.Logger
	if log == nil {
		log = obsv.NopLogger()
	}
	shards := opts.Shards
	if shards < 1 {
		shards = 1
	}
	return &FileBackend{opts: opts, shards: shards, log: log}, nil
}

// Shards implements store.ShardedBackend.
func (b *FileBackend) Shards() int { return b.shards }

// Recover rebuilds st from the data directory: load the newest valid
// snapshot through Store.Import, merge every stream's records by global
// sequence number, replay the longest contiguous prefix through
// Store.Apply (truncating torn tails, quarantining untrusted segments),
// then compact into the configured layout — write a fresh snapshot of
// the recovered tree, start new log segments, and delete the superseded
// files — so the next boot loads one snapshot and empty tails. A data
// dir written at a different shard count (including the flat pre-shard
// layout) is migrated here: replay reads the on-disk layout, compaction
// writes the configured one, and every intermediate crash leaves a
// directory either layout's recovery handles. Call it exactly once,
// before AttachBackend.
func (b *FileBackend) Recover(st *store.Store) (RecoveryStats, error) {
	start := time.Now()
	var stats RecoveryStats
	dir := b.opts.Dir
	stats.Shards = b.shards

	diskShards, err := readLayout(dir)
	if err != nil {
		return stats, err
	}

	snap, ok, skipped, err := loadNewestSnapshot(dir)
	if err != nil {
		return stats, err
	}
	if skipped > 0 {
		b.log.Warn("persist: skipped unreadable snapshots", "count", skipped)
	}
	if ok {
		if err := st.Import(snap.Resources); err != nil {
			return stats, fmt.Errorf("persist: snapshot import: %w", err)
		}
		stats.SnapshotSeq = snap.Seq
	}
	lastSeq := stats.SnapshotSeq

	// Decode every stream, handling tears per stream: a tear marks the
	// end of that stream's trustworthy prefix, so its later segments are
	// quarantined and the torn tail truncated — exactly the single-
	// stream protocol, applied stream by stream.
	type sourced struct {
		rec    store.Record
		stream int
		seg    uint64
	}
	var merged []sourced
	for si := 0; si < diskShards; si++ {
		sdir := shardDir(dir, diskShards, si)
		if _, serr := os.Stat(sdir); os.IsNotExist(serr) {
			continue // a shard that never committed anything
		}
		segs, err := listSeqs(sdir, walPrefix, walSuffix)
		if err != nil {
			return stats, err
		}
		for i, seg := range segs {
			path := walPath(sdir, seg)
			f, err := os.Open(path)
			if err != nil {
				return stats, fmt.Errorf("persist: open segment: %w", err)
			}
			recs, good, torn := decodeAll(f)
			f.Close()
			if torn {
				stats.Truncated = true
				// A tear can only happen at the end of the stream that was
				// active at the crash; segments after it are not trustworthy
				// and must never be replayed. Quarantine them BEFORE
				// truncating the torn tail — the tear is the only durable
				// evidence they are untrusted, and truncation destroys it. If
				// we crash between the rename and the truncate, the next boot
				// sees the same torn segment and reaches the same verdict.
				// (In fsync mode a later segment can hold commits that were
				// acknowledged as durable after a rotation; the rename keeps
				// those bytes on disk for an operator instead of silently
				// deleting them.)
				for _, later := range segs[i+1:] {
					lp := walPath(sdir, later)
					b.log.Warn("persist: quarantining segment after torn record",
						"segment", lp, "quarantined", lp+quarantineSuffix)
					if err := os.Rename(lp, lp+quarantineSuffix); err != nil {
						return stats, fmt.Errorf("persist: quarantine %s: %w", lp, err)
					}
					b.countQuarantine()
				}
				if i < len(segs)-1 {
					if err := syncDir(sdir); err != nil {
						return stats, fmt.Errorf("persist: sync quarantine: %w", err)
					}
				}
				b.log.Warn("persist: truncating torn log tail", "segment", path, "offset", good)
				if err := os.Truncate(path, good); err != nil {
					return stats, fmt.Errorf("persist: truncate torn tail: %w", err)
				}
			}
			for _, rec := range recs {
				merged = append(merged, sourced{rec: rec, stream: si, seg: seg})
			}
			if torn {
				break
			}
		}
	}

	// Each stream is sequence-ascending (records are stamped under the
	// shard's write lock), so a stable sort by Seq is a merge that
	// reconstructs the global commit order.
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].rec.Seq < merged[j].rec.Seq })

	// Replay the longest contiguous prefix of the merged order. With one
	// stream the order is trivially gap-free; with several, a truncated
	// tail on one stream can leave later-sequence records on the others
	// — records whose commit order depends on a mutation that was lost.
	// Replay stops at the first gap: the store recovers the committed
	// prefix of the *global* history, and the dropped records' segments
	// are quarantined below rather than deleted.
	dropFrom := len(merged)
	for k, sr := range merged {
		if sr.rec.Seq <= lastSeq {
			continue // already in the snapshot (or a duplicate)
		}
		if diskShards > 1 && sr.rec.Seq != lastSeq+1 {
			dropFrom = k
			break
		}
		if err := st.Apply(sr.rec); err != nil {
			return stats, fmt.Errorf("persist: replay seq %d: %w", sr.rec.Seq, err)
		}
		stats.Replayed++
		lastSeq = sr.rec.Seq
		if sr.rec.Epoch > stats.LastEpoch {
			stats.LastEpoch = sr.rec.Epoch
		}
	}
	stats.Dropped = len(merged) - dropFrom
	quarantine := make(map[string]bool)
	for _, sr := range merged[dropFrom:] {
		quarantine[walPath(shardDir(dir, diskShards, sr.stream), sr.seg)] = true
	}
	if stats.Dropped > 0 {
		b.log.Warn("persist: dropping records after global sequence gap",
			"dropped", stats.Dropped, "last_seq", lastSeq,
			"next_seq", merged[dropFrom].rec.Seq, "segments", len(quarantine))
	}

	stats.LastSeq = lastSeq
	stats.Resources = st.Len()

	// Compact into the configured layout: the recovered tree becomes the
	// new baseline. Step order is what makes a crashed migration safe —
	// (1) snapshot at lastSeq: from here replay is optional; (2) retire
	// the old segments (quarantining any that held dropped records);
	// (3) switch the layout descriptor; (4) create the fresh streams. A
	// crash after (1) replays nothing new from the old segments; after
	// (2) the old layout is empty but described; after (3) the new
	// layout is described and empty; after (4) we are here.
	export, err := st.Export()
	if err != nil {
		return stats, fmt.Errorf("persist: recovery export: %w", err)
	}
	if err := writeSnapshot(dir, lastSeq, export); err != nil {
		return stats, err
	}
	for si := 0; si < diskShards; si++ {
		sdir := shardDir(dir, diskShards, si)
		segs, err := listSeqs(sdir, walPrefix, walSuffix)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return stats, err
		}
		for _, seg := range segs {
			p := walPath(sdir, seg)
			if quarantine[p] {
				b.log.Warn("persist: quarantining segment beyond sequence gap",
					"segment", p, "quarantined", p+quarantineSuffix)
				if err := os.Rename(p, p+quarantineSuffix); err != nil {
					return stats, fmt.Errorf("persist: quarantine %s: %w", p, err)
				}
				b.countQuarantine()
				continue
			}
			os.Remove(p)
		}
		if diskShards > 1 && diskShards != b.shards {
			// Old layout's shard dir; gone unless quarantined files remain.
			os.Remove(sdir)
		}
	}
	if diskShards != b.shards {
		if err := installLayout(dir, b.shards); err != nil {
			return stats, err
		}
		b.log.Info("persist: data dir layout migrated",
			"from_shards", diskShards, "to_shards", b.shards)
	}
	ws := make([]*wal, b.shards)
	for i := range ws {
		sdir := shardDir(dir, b.shards, i)
		if err := os.MkdirAll(sdir, 0o755); err != nil {
			return stats, fmt.Errorf("persist: shard dir: %w", err)
		}
		w, err := openWAL(walPath(sdir, lastSeq+1), lastSeq, b.opts.Fsync, b.onFsync)
		if err != nil {
			return stats, err
		}
		ws[i] = w
	}
	b.mu.Lock()
	b.wals = ws
	b.lastSnapSeq = lastSeq
	b.mu.Unlock()
	// The recovered store is the natural snapshot source for the final
	// compaction on Close; StartSnapshots may override it.
	b.src = st
	removeBelow(dir, snapPrefix, snapSuffix, lastSeq)

	stats.Duration = time.Since(start)
	if m := b.opts.Metrics; m != nil {
		m.RecoveryReplayed.Add(float64(stats.Replayed))
	}
	b.log.Info("persist: recovery complete",
		"resources", stats.Resources, "replayed", stats.Replayed,
		"snapshot_seq", stats.SnapshotSeq, "truncated", stats.Truncated,
		"dropped", stats.Dropped, "shards", b.shards,
		"duration", stats.Duration)
	return stats, nil
}

// countQuarantine records one quarantined WAL segment in the metrics
// bundle. The rename itself is always accompanied by a warning log
// carrying the quarantined path; this makes the event visible to
// monitoring that only scrapes /metrics.
func (b *FileBackend) countQuarantine() {
	if m := b.opts.Metrics; m != nil {
		m.WALQuarantined.Inc()
	}
}

func (b *FileBackend) onFsync(d time.Duration) {
	if m := b.opts.Metrics; m != nil {
		m.WALFsync.Observe(d.Seconds())
	}
	b.opts.Tracer.Observe("wal.fsync", d)
}

// AppendShard implements store.ShardedBackend. It runs under the
// shard's write lock, so it only frames the batch into that stream's
// active segment buffer; the returned wait completes durability after
// the lock is released. Streams are independent: appends on different
// shards share nothing but the backend mutex ordering them against
// rotation.
func (b *FileBackend) AppendShard(shard int, batch []store.Record) func() error {
	start := time.Now()
	b.mu.Lock()
	if b.wals == nil {
		b.mu.Unlock()
		return func() error { return errors.New("persist: backend not recovered or already closed") }
	}
	wait := b.wals[shard].append(batch)
	b.mu.Unlock()
	if m := b.opts.Metrics; m != nil {
		m.WALAppends.Add(float64(len(batch)))
	}
	b.opts.Tracer.Observe("wal.append", time.Since(start))
	return wait
}

// Append implements store.Backend for stores whose shard count differs
// from the backend's stream count (including the plain single-stream
// case). Batches arrive globally ordered (the store serializes them),
// and recovery orders by sequence number, not stream, so funneling them
// all into stream 0 is correct — it just forgoes per-shard parallelism.
func (b *FileBackend) Append(batch []store.Record) func() error {
	return b.AppendShard(0, batch)
}

// StartSnapshots begins the periodic snapshot/compaction loop over
// consistent cuts of src. Call it once, after AttachBackend; src is also
// used for the final compaction on Close.
func (b *FileBackend) StartSnapshots(src SnapshotSource) {
	b.src = src
	if b.opts.SnapshotInterval <= 0 {
		return
	}
	b.stop = make(chan struct{})
	b.loopDone = make(chan struct{})
	go func() {
		defer close(b.loopDone)
		t := time.NewTicker(b.opts.SnapshotInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if err := b.Compact(); err != nil {
					b.log.Error("persist: periodic snapshot failed", "err", err)
				}
			case <-b.stop:
				return
			}
		}
	}()
}

// Compact rotates every stream that holds records and installs a fresh
// global snapshot, then deletes the files the snapshot supersedes. It
// is a no-op when nothing was appended anywhere since the last
// compaction.
//
// The order matters for crash safety: rotate first, snapshot second.
// The snapshot is captured after rotation, so its sequence number
// covers every record in the retired segments — records committed in
// between land in the new segments with Seq <= the snapshot's and are
// skipped on replay (puts are idempotent post-state anyway). A crash
// between the steps leaves old snapshot + all segments: fully
// recoverable.
func (b *FileBackend) Compact() error {
	if b.src == nil {
		return errors.New("persist: no snapshot source; call StartSnapshots")
	}
	b.compactMu.Lock()
	defer b.compactMu.Unlock()

	b.mu.Lock()
	if b.wals == nil {
		b.mu.Unlock()
		return errors.New("persist: backend closed")
	}
	var maxLast uint64
	for _, w := range b.wals {
		if l := w.seq(); l > maxLast {
			maxLast = l
		}
	}
	if maxLast == b.lastSnapSeq {
		b.mu.Unlock()
		return nil
	}
	// Rotate only streams whose active segment holds records. An empty
	// active segment (nothing appended to that shard since the last
	// rotation, or a previous snapshot failed after rotating) has
	// nothing to retire, and opening walPath(last+1) would collide with
	// the active segment itself.
	retired := make([]*wal, len(b.wals))
	for i, w := range b.wals {
		last := w.seq()
		if last <= w.base {
			continue
		}
		next, err := openWAL(walPath(shardDir(b.opts.Dir, b.shards, i), last+1), last, b.opts.Fsync, b.onFsync)
		if err != nil {
			b.mu.Unlock()
			return err
		}
		retired[i] = w
		b.wals[i] = next
	}
	b.mu.Unlock()

	start := time.Now()
	for _, w := range retired {
		if w == nil {
			continue
		}
		if err := w.close(); err != nil {
			return fmt.Errorf("persist: retire segment: %w", err)
		}
	}
	export, seq, err := b.src.Snapshot()
	if err != nil {
		return fmt.Errorf("persist: snapshot export: %w", err)
	}
	if err := writeSnapshot(b.opts.Dir, seq, export); err != nil {
		return err
	}
	b.mu.Lock()
	if seq > b.lastSnapSeq {
		b.lastSnapSeq = seq
	}
	actives := append([]*wal(nil), b.wals...)
	b.mu.Unlock()
	for i, w := range actives {
		// Every segment older than the stream's active one is covered by
		// the snapshot: its records were appended before rotation, and
		// the snapshot cut was taken after.
		removeBelow(shardDir(b.opts.Dir, b.shards, i), walPrefix, walSuffix, w.base+1)
	}
	removeBelow(b.opts.Dir, snapPrefix, snapSuffix, seq)
	if m := b.opts.Metrics; m != nil {
		m.SnapshotSeconds.Observe(time.Since(start).Seconds())
	}
	b.opts.Tracer.Observe("store.snapshot", time.Since(start))
	b.log.Info("persist: snapshot installed", "seq", seq, "duration", time.Since(start))
	return nil
}

// Close implements store.Backend: stop the snapshot loop, run a final
// compaction so the next boot is snapshot-only, and flush and close the
// active segments. The store calls it from Store.Close after detaching.
func (b *FileBackend) Close() error {
	b.closeOnce.Do(func() {
		if b.stop != nil {
			close(b.stop)
			<-b.loopDone
		}
		if b.src != nil {
			if err := b.Compact(); err != nil {
				b.log.Error("persist: final snapshot failed", "err", err)
				b.closeErr = err
			}
		}
		b.mu.Lock()
		ws := b.wals
		b.wals = nil
		b.mu.Unlock()
		for _, w := range ws {
			if err := w.close(); err != nil && b.closeErr == nil {
				b.closeErr = err
			}
		}
	})
	return b.closeErr
}

package persist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"sort"
	"testing"

	"ofmf/internal/odata"
	"ofmf/internal/store"
)

// openStoreSharded builds a recovered, attached store with n shards on
// both the engine and the backend — matching counts are what engage the
// per-shard WAL streams.
func openStoreSharded(t *testing.T, dir string, fsync bool, n int) (*store.Store, *FileBackend, RecoveryStats) {
	t.Helper()
	st := store.NewSharded(n)
	b, err := Open(Options{Dir: dir, Fsync: fsync, Shards: n})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	stats, err := b.Recover(st)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	st.AttachBackend(b, stats.LastSeq)
	return st, b, stats
}

// randomOpsSpread mirrors randomOps but scatters ids across eight
// top-level segments so the records land in several WAL streams.
func randomOpsSpread(rng *rand.Rand, st *store.Store, n int) {
	flatIDs := make([]odata.ID, 16)
	for i := range flatIDs {
		flatIDs[i] = odata.ID(fmt.Sprintf("/redfish/v1/S%d/%d", i%8, i/8+1))
	}
	subtrees := []odata.ID{"/redfish/v1/T0", "/redfish/v1/T1"}
	payload := func() map[string]any {
		return map[string]any{"V": rng.Intn(1000), "W": fmt.Sprintf("w%d", rng.Intn(50))}
	}
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			if err := st.Put(flatIDs[rng.Intn(len(flatIDs))], payload()); err != nil {
				panic(err)
			}
		case 4, 5:
			_ = st.Patch(flatIDs[rng.Intn(len(flatIDs))], map[string]any{"P": rng.Intn(100)}, "")
		case 6:
			_ = st.Delete(flatIDs[rng.Intn(len(flatIDs))])
		case 7, 8:
			sub := subtrees[rng.Intn(len(subtrees))]
			res := map[odata.ID]any{sub: payload()}
			for j, m := 0, rng.Intn(6); j < m; j++ {
				res[sub.Append(fmt.Sprintf("%d", rng.Intn(8)+1))] = payload()
			}
			if err := st.PutSubtree(sub, res); err != nil {
				panic(err)
			}
		case 9:
			_, _ = st.DeleteSubtree(subtrees[rng.Intn(len(subtrees))])
		}
	}
}

func TestShardedDurabilityAcrossRestart(t *testing.T) {
	const n = 4
	dir := t.TempDir()
	st, _, stats := openStoreSharded(t, dir, true, n)
	if stats.Shards != n {
		t.Fatalf("fresh dir recovered with %d shards, want %d", stats.Shards, n)
	}
	rng := rand.New(rand.NewSource(42))
	randomOpsSpread(rng, st, 120)
	want := export(t, st)
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The sharded layout is on disk: descriptor plus one dir per shard.
	if _, err := readLayout(dir); err != nil {
		t.Fatalf("readLayout: %v", err)
	}
	if got, err := readLayout(dir); err != nil || got != n {
		t.Fatalf("layout says %d shards (%v), want %d", got, err, n)
	}
	for i := 0; i < n; i++ {
		if fi, err := os.Stat(shardDir(dir, n, i)); err != nil || !fi.IsDir() {
			t.Fatalf("missing shard dir %d: %v", i, err)
		}
	}

	st2, _, stats2 := openStoreSharded(t, dir, true, n)
	defer st2.Close()
	if got := export(t, st2); !reflect.DeepEqual(normalize(got), normalize(want)) {
		t.Fatalf("restart mismatch:\n got %v\nwant %v", normalize(got), normalize(want))
	}
	if stats2.Replayed != 0 {
		t.Fatalf("clean restart replayed %d records, want 0", stats2.Replayed)
	}
}

// TestLayoutMigrationRoundTrip writes a flat (shards=1) directory,
// reopens it at shards=4, then back at shards=1, checking the tree is
// identical at every step and the on-disk layout follows the
// configuration.
func TestLayoutMigrationRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, _, _ := openStore(t, dir, true)
	rng := rand.New(rand.NewSource(7))
	randomOpsSpread(rng, st, 80)
	want := normalize(export(t, st))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// 1 -> 4: the flat stream is retired into a snapshot and per-shard
	// segments appear.
	st4, _, stats4 := openStoreSharded(t, dir, true, 4)
	if got := normalize(export(t, st4)); !reflect.DeepEqual(got, want) {
		t.Fatalf("1->4 migration changed the tree:\n got %v\nwant %v", got, want)
	}
	if stats4.Shards != 4 {
		t.Fatalf("stats.Shards = %d after migration, want 4", stats4.Shards)
	}
	if n, err := readLayout(dir); err != nil || n != 4 {
		t.Fatalf("layout after 1->4: %d shards (%v)", n, err)
	}
	if segs, err := listSeqs(dir, walPrefix, walSuffix); err != nil || len(segs) != 0 {
		t.Fatalf("flat segments survived migration: %v (%v)", segs, err)
	}
	randomOpsSpread(rng, st4, 40)
	want = normalize(export(t, st4))
	if err := st4.Close(); err != nil {
		t.Fatal(err)
	}

	// 4 -> 1: back to the byte-compatible flat layout, no descriptor.
	st1, _, _ := openStoreSharded(t, dir, true, 1)
	defer st1.Close()
	if got := normalize(export(t, st1)); !reflect.DeepEqual(got, want) {
		t.Fatalf("4->1 migration changed the tree:\n got %v\nwant %v", got, want)
	}
	if _, err := os.Stat(shardDir(dir, 4, 0)); !os.IsNotExist(err) {
		t.Fatalf("shard dir survived 4->1 migration: %v", err)
	}
	if n, err := readLayout(dir); err != nil || n != 1 {
		t.Fatalf("layout after 4->1: %d shards (%v)", n, err)
	}
	if _, err := os.Stat(shardDir(dir, 4, 0)); !os.IsNotExist(err) {
		t.Fatal("shard-00 left behind after migrating back to flat")
	}
}

// TestCrashRecoveryPropertySharded re-runs the crash-consistency
// property with four WAL streams: truncate ONE shard's log at a random
// byte offset and require recovery to rebuild exactly the longest
// committed prefix of the GLOBAL order — records on intact shards whose
// sequence numbers follow the victim's lost records must be dropped,
// not replayed out of order.
func TestCrashRecoveryPropertySharded(t *testing.T) {
	const trials = 30
	const n = 4
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(0x5AAD ^ int64(trial)*2654435761))
			dir := t.TempDir()
			st, _, _ := openStoreSharded(t, dir, false, n)
			randomOpsSpread(rng, st, 40+rng.Intn(80))

			// Simulate kill -9: no Close, no compaction. Read every
			// stream's bytes, then truncate one at a random offset.
			streams := make([][]byte, n)
			paths := make([]string, n)
			for i := 0; i < n; i++ {
				sdir := shardDir(dir, n, i)
				segs, err := listSeqs(sdir, walPrefix, walSuffix)
				if err != nil || len(segs) != 1 {
					t.Fatalf("shard %d: expected one active segment, got %v (%v)", i, segs, err)
				}
				paths[i] = walPath(sdir, segs[0])
				if streams[i], err = os.ReadFile(paths[i]); err != nil {
					t.Fatal(err)
				}
			}
			victim := rng.Intn(n)
			cut := int64(rng.Intn(len(streams[victim]) + 1))
			if err := os.Truncate(paths[victim], cut); err != nil {
				t.Fatal(err)
			}

			// Oracle: decode each surviving stream, merge by global Seq,
			// and keep only the contiguous prefix above the snapshot.
			snap, ok, _, err := loadNewestSnapshot(dir)
			if err != nil || !ok {
				t.Fatalf("missing base snapshot: %v", err)
			}
			var merged []store.Record
			for i := 0; i < n; i++ {
				data := streams[i]
				if i == victim {
					data = data[:cut]
				}
				recs, _, _ := decodeAll(bytes.NewReader(data))
				merged = append(merged, recs...)
			}
			sort.SliceStable(merged, func(a, b int) bool { return merged[a].Seq < merged[b].Seq })
			last := snap.Seq
			var prefix []store.Record
			for _, rec := range merged {
				if rec.Seq != last+1 {
					break
				}
				prefix = append(prefix, rec)
				last++
			}
			var base map[string]json.RawMessage
			if err := json.Unmarshal(snap.Resources, &base); err != nil {
				t.Fatal(err)
			}
			want := oracleApply(base, prefix)

			st2, _, stats := openStoreSharded(t, dir, false, n)
			defer st2.Close()
			if stats.Replayed != len(prefix) {
				t.Fatalf("replayed %d records, oracle sees a %d-record committed prefix (dropped=%d)",
					stats.Replayed, len(prefix), stats.Dropped)
			}
			got := export(t, st2)
			if !reflect.DeepEqual(normalize(got), normalize(want)) {
				t.Fatalf("victim=%d cut=%d/%d prefix=%d:\n got  %v\n want %v",
					victim, cut, len(streams[victim]), len(prefix), normalize(got), normalize(want))
			}
		})
	}
}

// TestShardedGapQuarantine pins the deterministic core of the property
// test: losing an earlier record on one shard makes later records on
// OTHER shards unreplayable, and recovery quarantines their segments
// instead of deleting them.
func TestShardedGapQuarantine(t *testing.T) {
	const n = 4
	dir := t.TempDir()
	st, _, _ := openStoreSharded(t, dir, false, n)

	// Two resources on different shards: seq 1 lands on x's stream,
	// seq 2 on y's.
	idA := odata.ID("/redfish/v1/Systems/a")
	var idB odata.ID
	for _, cand := range []odata.ID{
		"/redfish/v1/Fabrics/b", "/redfish/v1/Chassis/b", "/redfish/v1/Storage/b",
		"/redfish/v1/Managers/b", "/redfish/v1/TaskService/b",
	} {
		if st.ShardOf(cand) != st.ShardOf(idA) {
			idB = cand
			break
		}
	}
	if idB == "" {
		t.Fatal("no second segment on a different shard")
	}
	if err := st.Put(idA, res("a")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(idB, res("b")); err != nil {
		t.Fatal(err)
	}
	x, y := st.ShardOf(idA), st.ShardOf(idB)

	// Lose shard x's record entirely (its stream becomes empty but not
	// torn), leaving a hole at seq 1 beneath shard y's seq-2 record.
	xdir := shardDir(dir, n, x)
	segs, err := listSeqs(xdir, walPrefix, walSuffix)
	if err != nil || len(segs) != 1 {
		t.Fatalf("shard %d segments: %v (%v)", x, segs, err)
	}
	if err := os.Truncate(walPath(xdir, segs[0]), 0); err != nil {
		t.Fatal(err)
	}

	st2, _, stats := openStoreSharded(t, dir, false, n)
	defer st2.Close()
	if stats.Replayed != 0 || stats.Dropped != 1 {
		t.Fatalf("replayed=%d dropped=%d, want 0 and 1", stats.Replayed, stats.Dropped)
	}
	if st2.Exists(idA) || st2.Exists(idB) {
		t.Fatal("resource beyond the sequence gap was replayed")
	}
	// The dropped record's segment sits quarantined in shard y's dir.
	ydir := shardDir(dir, n, y)
	entries, err := os.ReadDir(ydir)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range entries {
		if len(e.Name()) > len(quarantineSuffix) && e.Name()[len(e.Name())-len(quarantineSuffix):] == quarantineSuffix {
			found = true
		}
	}
	if !found {
		t.Fatalf("no quarantined segment in shard %d's dir", y)
	}
}

package persist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"testing"
	"time"

	"ofmf/internal/odata"
	"ofmf/internal/store"
)

// randomOps drives a seeded random mutation sequence against st: puts,
// patches, deletes, subtree refreshes and subtree deletions over a small
// id space, so records of every primitive land in the WAL, including
// multi-record batches that a truncation can tear in half.
func randomOps(rng *rand.Rand, st *store.Store, n int) {
	flatIDs := make([]odata.ID, 8)
	for i := range flatIDs {
		flatIDs[i] = odata.ID(fmt.Sprintf("/redfish/v1/S/%d", i+1))
	}
	const subtree = odata.ID("/redfish/v1/T")
	payload := func() map[string]any {
		return map[string]any{"V": rng.Intn(1000), "W": fmt.Sprintf("w%d", rng.Intn(50))}
	}
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // put
			if err := st.Put(flatIDs[rng.Intn(len(flatIDs))], payload()); err != nil {
				panic(err)
			}
		case 4, 5: // patch (may miss)
			_ = st.Patch(flatIDs[rng.Intn(len(flatIDs))], map[string]any{"P": rng.Intn(100)}, "")
		case 6: // delete (may miss)
			_ = st.Delete(flatIDs[rng.Intn(len(flatIDs))])
		case 7, 8: // subtree refresh: a batch of deletes + puts
			res := map[odata.ID]any{subtree: payload()}
			for j, m := 0, rng.Intn(6); j < m; j++ {
				res[subtree.Append(fmt.Sprintf("%d", rng.Intn(8)+1))] = payload()
			}
			if err := st.PutSubtree(subtree, res); err != nil {
				panic(err)
			}
		case 9: // subtree teardown: a batch of deletes
			_, _ = st.DeleteSubtree(subtree)
		}
	}
}

// oracleApply replays decoded records onto a plain map — an independent
// model of what the committed prefix of the log denotes.
func oracleApply(base map[string]json.RawMessage, recs []store.Record) map[string]json.RawMessage {
	state := make(map[string]json.RawMessage, len(base))
	for k, v := range base {
		state[k] = v
	}
	for _, rec := range recs {
		switch rec.Op {
		case store.OpPut:
			state[string(rec.ID)] = rec.Raw
		case store.OpDelete:
			delete(state, string(rec.ID))
		}
	}
	return state
}

// TestCrashRecoveryProperty is the crash-consistency property test: run
// a seeded random op sequence, truncate the WAL at a random byte offset
// (simulating kill -9 mid-write), recover, and require the recovered
// tree to equal exactly the longest committed prefix of the log, as
// judged by an independent in-memory oracle.
func TestCrashRecoveryProperty(t *testing.T) {
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(0x0FBF ^ int64(trial)*2654435761))
			dir := t.TempDir()
			st, _, _ := openStore(t, dir, false)
			randomOps(rng, st, 40+rng.Intn(80))
			// Simulate kill -9: no Close, no compaction. Records are in
			// the file because every mutation waits for its flush.
			segs, err := listSeqs(dir, walPrefix, walSuffix)
			if err != nil || len(segs) != 1 {
				t.Fatalf("expected one active segment, got %v (%v)", segs, err)
			}
			active := walPath(dir, segs[0])
			full, err := os.ReadFile(active)
			if err != nil {
				t.Fatal(err)
			}

			cut := int64(rng.Intn(len(full) + 1))
			if err := os.Truncate(active, cut); err != nil {
				t.Fatal(err)
			}

			// Oracle: decode the surviving committed prefix independently.
			intact, good, _ := decodeAll(bytes.NewReader(full[:cut]))
			if good > cut {
				t.Fatalf("decoder claimed %d good bytes from a %d-byte file", good, cut)
			}
			snap, ok, _, err := loadNewestSnapshot(dir)
			if err != nil || !ok {
				t.Fatalf("missing base snapshot: %v", err)
			}
			var base map[string]json.RawMessage
			if err := json.Unmarshal(snap.Resources, &base); err != nil {
				t.Fatal(err)
			}
			want := oracleApply(base, intact)

			st2, _, stats := openStore(t, dir, false)
			defer st2.Close()
			if stats.Replayed != len(intact) {
				t.Fatalf("replayed %d records, oracle sees %d intact", stats.Replayed, len(intact))
			}
			got := export(t, st2)
			if len(got) != len(want) || !reflect.DeepEqual(normalize(got), normalize(want)) {
				t.Fatalf("cut=%d/%d intact=%d:\n got  %v\n want %v",
					cut, len(full), len(intact), normalize(got), normalize(want))
			}
		})
	}
}

// normalize re-marshals raw values so formatting differences (compact vs
// indented) cannot cause false mismatches.
func normalize(m map[string]json.RawMessage) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		var x any
		if err := json.Unmarshal(v, &x); err != nil {
			out[k] = string(v)
			continue
		}
		b, _ := json.Marshal(x)
		out[k] = string(b)
	}
	return out
}

// TestRecovery1000Resources asserts the acceptance bound: recovering a
// 1000-resource tree from an unclean shutdown completes well under a
// second.
func TestRecovery1000Resources(t *testing.T) {
	dir := t.TempDir()
	st, _, _ := openStore(t, dir, false)
	resources := make(map[odata.ID]any, 1001)
	prefix := odata.ID("/redfish/v1/Chassis")
	resources[prefix] = res("Chassis")
	for i := 0; i < 1000; i++ {
		id := prefix.Append(fmt.Sprintf("node%04d", i))
		resources[id] = map[string]any{"@odata.id": string(id), "Name": "chassis", "Index": i}
	}
	if err := st.PutSubtree(prefix, resources); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close.
	st2, _, stats := openStore(t, dir, false)
	defer st2.Close()
	if st2.Len() != 1001 {
		t.Fatalf("recovered %d resources, want 1001", st2.Len())
	}
	if stats.Replayed != 1001 {
		t.Fatalf("replayed %d records, want 1001", stats.Replayed)
	}
	if stats.Duration >= time.Second {
		t.Fatalf("recovery of 1000 resources took %v, want well under 1s", stats.Duration)
	}
}

package persist

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"ofmf/internal/store"
)

// frames encodes records through the production writer, for seeding.
func frames(t interface{ Fatal(...any) }, recs ...store.Record) []byte {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	for _, rec := range recs {
		payload, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		if err := writeFrame(bw, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzWALDecode hammers the record decoder with arbitrary bytes. The
// decoder must never panic, must never claim more good bytes than it was
// given, and re-scanning the good prefix must be clean: the same records
// with no tear — the invariant recovery's truncation step relies on.
func FuzzWALDecode(f *testing.F) {
	valid := frames(f,
		store.Record{Seq: 1, Op: store.OpPut, ID: "/redfish/v1/S/1", Raw: json.RawMessage(`{"Name":"s1"}`)},
		store.Record{Seq: 2, Op: store.OpDelete, ID: "/redfish/v1/S/1"},
	)
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])                       // torn tail
	f.Add(append(append([]byte{}, valid...), 0xde))   // trailing garbage
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // absurd length
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, good, torn := decodeAll(bytes.NewReader(data))
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("good offset %d outside [0,%d]", good, len(data))
		}
		if !torn && good != int64(len(data)) {
			t.Fatalf("clean scan stopped at %d of %d bytes", good, len(data))
		}
		again, goodAgain, tornAgain := decodeAll(bytes.NewReader(data[:good]))
		if tornAgain {
			t.Fatal("re-scan of good prefix reported a tear")
		}
		if goodAgain != good || len(again) != len(recs) {
			t.Fatalf("re-scan diverged: %d/%d bytes, %d/%d records",
				goodAgain, good, len(again), len(recs))
		}
	})
}

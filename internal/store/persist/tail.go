package persist

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"time"

	"ofmf/internal/store"
)

// This file is the persistence layer's replication surface: segment
// tailing for followers that lag behind the leader's in-memory backlog,
// snapshot serving for bootstrap, and data-dir initialization for a
// replica promoted mid-history. The shipping protocol itself lives in
// store/repl; persist only exposes ordered reads of what is already on
// disk.

// ReadRecords returns the contiguous run of committed records with
// Seq > fromSeq currently on disk, merged across every stream in global
// sequence order. It stops (without error) at the first gap — a record
// not yet flushed, or lost to a tear — so the caller always receives a
// replayable prefix. Torn tails end their stream's contribution exactly
// as recovery would, but nothing is truncated or quarantined: this is a
// read-only tail, safe to call on a live backend.
//
// Records the active segments still hold in their write buffers are not
// visible; call Flush first when the tail must include the newest
// commits.
func (b *FileBackend) ReadRecords(fromSeq uint64) ([]store.Record, error) {
	b.mu.Lock()
	closed := b.wals == nil
	b.mu.Unlock()
	if closed {
		return nil, errors.New("persist: backend not recovered or already closed")
	}
	var merged []store.Record
	for si := 0; si < b.shards; si++ {
		sdir := shardDir(b.opts.Dir, b.shards, si)
		segs, err := listSeqs(sdir, walPrefix, walSuffix)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, err
		}
		for _, seg := range segs {
			f, err := os.Open(walPath(sdir, seg))
			if err != nil {
				if os.IsNotExist(err) {
					continue // compaction raced the listing
				}
				return nil, fmt.Errorf("persist: open segment: %w", err)
			}
			recs, _, torn := decodeAll(f)
			f.Close()
			for _, rec := range recs {
				if rec.Seq > fromSeq {
					merged = append(merged, rec)
				}
			}
			if torn {
				break
			}
		}
	}
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].Seq < merged[j].Seq })
	next := fromSeq + 1
	for k, rec := range merged {
		if rec.Seq != next {
			// Duplicates (a record both in a retired and a rewritten
			// segment) cannot happen — segments never overlap — so any
			// mismatch is a gap: return the contiguous prefix.
			return merged[:k], nil
		}
		next++
	}
	return merged, nil
}

// Flush forces every stream's buffered frames to the OS, so a
// subsequent ReadRecords observes all records appended so far. It does
// not fsync; durability still follows the backend's configured mode.
func (b *FileBackend) Flush() error {
	b.mu.Lock()
	ws := append([]*wal(nil), b.wals...)
	b.mu.Unlock()
	var first error
	for _, w := range ws {
		if w == nil {
			continue
		}
		if err := w.waitFor(w.seq()); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// LatestSnapshot returns the newest parseable on-disk snapshot: the
// exported resource map and the commit sequence number it reflects.
// ok is false when the directory holds none. Replication serves this to
// bootstrapping replicas when it is recent enough, saving a fresh
// all-shard export under the store's read locks.
func (b *FileBackend) LatestSnapshot() (resources []byte, seq uint64, ok bool, err error) {
	snap, ok, _, err := loadNewestSnapshot(b.opts.Dir)
	if err != nil || !ok {
		return nil, 0, false, err
	}
	return snap.Resources, snap.Seq, true, nil
}

// Bootstrap initializes a fresh data directory for a replica promoted
// to leader mid-history: install a snapshot of st at seq (the replica's
// applied sequence number), write the layout descriptor, and open empty
// WAL streams starting after seq. The directory must not already hold
// snapshots or WAL segments — a promoted replica's local history (if
// any) predates the replicated one and silently merging the two could
// resurrect divergent records; the caller decides what to do with a
// non-empty directory. Call instead of Recover, then AttachBackend.
func (b *FileBackend) Bootstrap(st *store.Store, seq uint64) error {
	start := time.Now()
	dir := b.opts.Dir
	for _, probe := range []struct{ prefix, suffix string }{
		{snapPrefix, snapSuffix}, {walPrefix, walSuffix},
	} {
		seqs, err := listSeqs(dir, probe.prefix, probe.suffix)
		if err != nil {
			return err
		}
		if len(seqs) > 0 {
			return fmt.Errorf("persist: bootstrap: %s holds existing %s*%s files", dir, probe.prefix, probe.suffix)
		}
	}
	if onDisk, err := readLayout(dir); err != nil {
		return err
	} else if onDisk > 1 {
		return fmt.Errorf("persist: bootstrap: %s holds a sharded layout", dir)
	}
	export, err := st.Export()
	if err != nil {
		return fmt.Errorf("persist: bootstrap export: %w", err)
	}
	if err := writeSnapshot(dir, seq, export); err != nil {
		return err
	}
	if b.shards > 1 {
		if err := installLayout(dir, b.shards); err != nil {
			return err
		}
	}
	ws := make([]*wal, b.shards)
	for i := range ws {
		sdir := shardDir(dir, b.shards, i)
		if err := os.MkdirAll(sdir, 0o755); err != nil {
			return fmt.Errorf("persist: shard dir: %w", err)
		}
		w, err := openWAL(walPath(sdir, seq+1), seq, b.opts.Fsync, b.onFsync)
		if err != nil {
			return err
		}
		ws[i] = w
	}
	b.mu.Lock()
	b.wals = ws
	b.lastSnapSeq = seq
	b.mu.Unlock()
	b.src = st
	b.log.Info("persist: bootstrapped at replicated seq",
		"seq", seq, "resources", st.Len(), "shards", b.shards,
		"duration", time.Since(start))
	return nil
}

package persist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// layoutFile is the data-dir layout descriptor, stored as layout.json at
// the top of the directory. Its absence means the original single-stream
// layout (every WAL segment at the top level) — the file exists only for
// sharded layouts, so a shards=1 data dir is byte-identical to one
// written before sharding existed.
type layoutFile struct {
	Version int `json:"Version"`
	Shards  int `json:"Shards"`
}

const (
	layoutName    = "layout.json"
	layoutVersion = 1
	// shardDirFmt names the per-shard WAL directories of a sharded
	// layout. Snapshots are always global and stay at the top level.
	shardDirFmt = "shard-%02d"
)

// shardDir returns the directory holding shard i's WAL segments: the
// data dir itself for a single-stream layout, a shard subdirectory
// otherwise.
func shardDir(dir string, shards, i int) string {
	if shards <= 1 {
		return dir
	}
	return filepath.Join(dir, fmt.Sprintf(shardDirFmt, i))
}

// readLayout reports the number of WAL streams the directory holds on
// disk: the layout descriptor's count when present, 1 (the flat legacy
// layout) otherwise.
func readLayout(dir string) (int, error) {
	data, err := os.ReadFile(filepath.Join(dir, layoutName))
	if os.IsNotExist(err) {
		return 1, nil
	}
	if err != nil {
		return 0, fmt.Errorf("persist: read layout: %w", err)
	}
	var lf layoutFile
	if err := json.Unmarshal(data, &lf); err != nil {
		return 0, fmt.Errorf("persist: parse %s: %w", layoutName, err)
	}
	if lf.Version != layoutVersion {
		return 0, fmt.Errorf("persist: unsupported layout version %d", lf.Version)
	}
	if lf.Shards < 1 {
		return 0, fmt.Errorf("persist: layout declares %d shards", lf.Shards)
	}
	return lf.Shards, nil
}

// installLayout durably records the directory's layout: write (or
// replace) the descriptor for a sharded layout, remove it for the flat
// one. The descriptor is written via temp+rename and the directory is
// fsynced, so a crash leaves either the old or the new layout fully
// described — and recovery handles both (see Recover: every step of a
// layout migration leaves a recoverable directory).
func installLayout(dir string, shards int) error {
	path := filepath.Join(dir, layoutName)
	if shards <= 1 {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("persist: remove layout: %w", err)
		}
		return syncDir(dir)
	}
	data, err := json.Marshal(layoutFile{Version: layoutVersion, Shards: shards})
	if err != nil {
		return fmt.Errorf("persist: encode layout: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "layout-*.tmp")
	if err != nil {
		return fmt.Errorf("persist: layout temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: layout write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: layout sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: layout close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("persist: layout rename: %w", err)
	}
	return syncDir(dir)
}

package store

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ofmf/internal/odata"
)

func TestShardKeyRouting(t *testing.T) {
	for _, tc := range []struct {
		id   odata.ID
		want string
	}{
		{"/redfish/v1", ""},
		{"/redfish/v1/Systems", "Systems"},
		{"/redfish/v1/Systems/1", "Systems"},
		{"/redfish/v1/Fabrics/CXL/Zones/Z1", "Fabrics"},
		{"/redfish", "redfish"},
		{"/", ""},
		{"/other/path", "other"},
	} {
		if got := shardKey(tc.id); got != tc.want {
			t.Errorf("shardKey(%q) = %q, want %q", tc.id, got, tc.want)
		}
	}
}

// TestShardCoLocation: a collection, its members, and every descendant
// of a top-level subtree must share a shard at any shard count —
// single-shard operations (Members, NextID, subtree refresh below the
// root) depend on it.
func TestShardCoLocation(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8, 16} {
		s := NewSharded(n)
		if s.ShardCount() != n {
			t.Fatalf("ShardCount = %d, want %d", s.ShardCount(), n)
		}
		for _, group := range [][]odata.ID{
			{"/redfish/v1/Systems", "/redfish/v1/Systems/1", "/redfish/v1/Systems/cpu-7/Processors/0"},
			{"/redfish/v1/Fabrics", "/redfish/v1/Fabrics/CXL", "/redfish/v1/Fabrics/CXL/Zones/Z1"},
			{"/redfish/v1/Chassis", "/redfish/v1/Chassis/enc0"},
		} {
			first := s.ShardOf(group[0])
			for _, id := range group[1:] {
				if got := s.ShardOf(id); got != first {
					t.Errorf("shards=%d: %s on shard %d, %s on shard %d", n, group[0], first, id, got)
				}
			}
		}
	}
}

func TestSpansShards(t *testing.T) {
	for _, tc := range []struct {
		prefix odata.ID
		want   bool
	}{
		{"", true},
		{"/", true},
		{"/redfish", true},
		{"/redfish/v1", true},
		{"/redfish/v1/", true},
		{"/redfish/v1/Systems", false},
		{"/redfish/v1/Fabrics/CXL", false},
		{"/other", false},
	} {
		if got := spansShards(tc.prefix); got != tc.want {
			t.Errorf("spansShards(%q) = %v, want %v", tc.prefix, got, tc.want)
		}
	}
}

// distinctSegments returns top-level segment names that map to at least
// two different shards, or skips the test when the count cannot split
// them (shards=1).
func distinctSegments(t *testing.T, s *Store) (odata.ID, odata.ID) {
	t.Helper()
	if s.ShardCount() == 1 {
		t.Skip("one shard cannot split segments")
	}
	first := odata.ID("/redfish/v1/Systems")
	for _, cand := range []odata.ID{
		"/redfish/v1/Fabrics", "/redfish/v1/Chassis", "/redfish/v1/Storage",
		"/redfish/v1/Managers", "/redfish/v1/TaskService", "/redfish/v1/EventService",
	} {
		if s.ShardOf(cand) != s.ShardOf(first) {
			return first, cand
		}
	}
	t.Fatalf("no segment found on a different shard than %s at %d shards", first, s.ShardCount())
	return "", ""
}

// TestCrossShardPutSubtreeAtomicUnderReaders flips the whole tree
// between two versions with root-spanning PutSubtree while concurrent
// Snapshot readers check they never observe a mix: the ordered
// multi-shard commit holds every shard's write lock, so a consistent
// reader sees all of a replacement or none of it.
func TestCrossShardPutSubtreeAtomicUnderReaders(t *testing.T) {
	s := NewSharded(4)
	a, b := distinctSegments(t, s)

	tree := func(version int) map[odata.ID]any {
		m := make(map[odata.ID]any)
		for _, seg := range []odata.ID{a, b} {
			for i := 0; i < 4; i++ {
				id := seg.Append(fmt.Sprintf("r%d", i))
				m[id] = map[string]any{"@odata.id": string(id), "V": version}
			}
		}
		return m
	}
	if err := s.PutSubtree("/redfish/v1", tree(0)); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var torn atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				data, _, err := s.Snapshot()
				if err != nil {
					t.Error(err)
					return
				}
				var m map[string]struct{ V int }
				if err := json.Unmarshal(data, &m); err != nil {
					t.Error(err)
					return
				}
				seen := -1
				for id, v := range m {
					if seen == -1 {
						seen = v.V
					} else if v.V != seen {
						torn.Add(1)
						t.Errorf("snapshot mixes versions: %s has V=%d, another resource V=%d", id, v.V, seen)
						return
					}
				}
			}
		}()
	}
	for i := 1; i <= 50; i++ {
		if err := s.PutSubtree("/redfish/v1", tree(i)); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	if torn.Load() > 0 {
		t.Fatalf("%d torn snapshots", torn.Load())
	}
}

// TestRestoreReplaceAcrossShards checks admin-restore semantics through
// the sharded store: a root-spanning PutSubtree replaces the whole tree,
// deleting stale resources on every shard, not just the ones the new
// set touches.
func TestRestoreReplaceAcrossShards(t *testing.T) {
	s := NewSharded(8)
	a, b := distinctSegments(t, s)

	old := map[odata.ID]any{
		a.Append("stale1"): map[string]any{"Name": "stale1"},
		b.Append("stale2"): map[string]any{"Name": "stale2"},
		b.Append("kept"):   map[string]any{"Name": "kept"},
	}
	if err := s.PutSubtree("/redfish/v1", old); err != nil {
		t.Fatal(err)
	}
	replacement := map[odata.ID]any{
		a.Append("new1"): map[string]any{"Name": "new1"},
		b.Append("kept"): map[string]any{"Name": "kept"},
	}
	if err := s.PutSubtree("/redfish/v1", replacement); err != nil {
		t.Fatal(err)
	}

	wantIDs := []odata.ID{a.Append("new1"), b.Append("kept")}
	sort.Slice(wantIDs, func(i, j int) bool { return wantIDs[i] < wantIDs[j] })
	if got := s.IDs(); !reflect.DeepEqual(got, wantIDs) {
		t.Fatalf("after replace: ids %v, want %v", got, wantIDs)
	}
	if s.Exists(a.Append("stale1")) || s.Exists(b.Append("stale2")) {
		t.Fatal("stale resources survived a cross-shard replace")
	}
}

// TestShardCountEquivalence runs one mixed mutation sequence at several
// shard counts and requires identical externally visible state: sharding
// is a concurrency structure, never a semantic one.
func TestShardCountEquivalence(t *testing.T) {
	run := func(n int) map[string]json.RawMessage {
		s := NewSharded(n)
		s.RegisterCollection("/redfish/v1/Systems", "#SystemCollection", "Systems")
		for i := 0; i < 10; i++ {
			id := odata.ID("/redfish/v1/Systems").Append(s.NextID("/redfish/v1/Systems"))
			if err := s.Create(id, map[string]any{"Name": fmt.Sprintf("sys%d", i)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Patch("/redfish/v1/Systems/3", map[string]any{"Tag": "x"}, ""); err != nil {
			t.Fatal(err)
		}
		if err := s.Delete("/redfish/v1/Systems/5"); err != nil {
			t.Fatal(err)
		}
		sub := map[odata.ID]any{
			odata.ID("/redfish/v1/Fabrics/CXL"):          map[string]any{"Name": "CXL"},
			odata.ID("/redfish/v1/Fabrics/CXL/Zones/Z1"): map[string]any{"Name": "Z1"},
		}
		if err := s.PutSubtree("/redfish/v1/Fabrics/CXL", sub); err != nil {
			t.Fatal(err)
		}
		if _, err := s.DeleteSubtree("/redfish/v1/Systems/7"); err != nil {
			t.Fatal(err)
		}
		data, err := s.Export()
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]json.RawMessage
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatal(err)
		}
		// Collections answer identically too.
		members, err := s.Members("/redfish/v1/Systems")
		if err != nil {
			t.Fatal(err)
		}
		m["__members"], _ = json.Marshal(members)
		return m
	}
	want := run(1)
	for _, n := range []int{2, 4, 8} {
		if got := run(n); !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d diverged from shards=1:\n got %v\nwant %v", n, got, want)
		}
	}
}

// TestOpHookShardLabels checks the hook receives the owning shard for
// single-shard ops and -1 for spanning ones.
func TestOpHookShardLabels(t *testing.T) {
	s := NewSharded(4)
	type call struct {
		op    string
		shard int
	}
	var mu sync.Mutex
	var calls []call
	s.SetOpHook(func(op string, shard int) {
		mu.Lock()
		calls = append(calls, call{op, shard})
		mu.Unlock()
	})
	id := odata.ID("/redfish/v1/Systems/1")
	if err := s.Put(id, map[string]any{"Name": "x"}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutSubtree("/redfish/v1", map[odata.ID]any{id: map[string]any{"Name": "y"}}); err != nil {
		t.Fatal(err)
	}
	want := []call{{"put", s.ShardOf(id)}, {"put_subtree", -1}}
	mu.Lock()
	defer mu.Unlock()
	if !reflect.DeepEqual(calls, want) {
		t.Fatalf("hook calls %v, want %v", calls, want)
	}
}

// TestLockWaitHookReportsContention checks the wait hook fires for every
// write acquisition with the shard index (or -1 for all-shard locks).
func TestLockWaitHookReportsContention(t *testing.T) {
	s := NewSharded(2)
	var single, multi atomic.Int64
	s.SetLockWaitHook(func(shard int, _ time.Duration) {
		if shard == -1 {
			multi.Add(1)
		} else {
			single.Add(1)
		}
	})
	if err := s.Put("/redfish/v1/Systems/1", map[string]any{"Name": "x"}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutSubtree("/redfish/v1", map[odata.ID]any{
		"/redfish/v1/Systems/1": map[string]any{"Name": "y"},
	}); err != nil {
		t.Fatal(err)
	}
	if single.Load() != 1 || multi.Load() != 1 {
		t.Fatalf("lock-wait hook: single=%d multi=%d, want 1 and 1", single.Load(), multi.Load())
	}
}

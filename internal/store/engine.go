package store

import (
	"bytes"
	"encoding/json"
	"sort"
	"strconv"

	"ofmf/internal/odata"
)

type entry struct {
	raw  json.RawMessage
	etag string
}

type collectionMeta struct {
	odataType string
	name      string
}

// collCache is the memoized rendering of one registered collection: its
// sorted member list, the serialized payload bytes, and the payload's
// entity tag. A cache value is immutable once published — invalidation
// replaces the map entry, never mutates it — so readers may use a value
// after the store's lock is released.
type collCache struct {
	members []odata.ID
	payload []byte
	etag    string
}

// engine is the pure in-memory resource tree: the entry map, the
// parent→children path index, registered collections with their memoized
// renderings, and the per-collection numeric high-water marks. It knows
// nothing about locking, watchers, metrics, or durability — the Store
// owns all of those and calls in while holding its lock. Keeping the
// engine free of cross-cutting concerns is what lets the persistence
// layer replay a log through exactly the code paths live mutations take.
type engine struct {
	entries     map[odata.ID]*entry
	collections map[odata.ID]collectionMeta
	children    map[odata.ID]map[odata.ID]struct{}
	collCache   map[odata.ID]*collCache
	// hiwater tracks, per parent, the largest numeric child name ever
	// linked, making NextID O(1) amortized. It never decreases, so ids
	// are not reused after deletion (which also prevents a deleted
	// resource's URI from aliasing a new one).
	hiwater map[odata.ID]int
}

func newEngine() engine {
	return engine{
		entries:     make(map[odata.ID]*entry),
		collections: make(map[odata.ID]collectionMeta),
		children:    make(map[odata.ID]map[odata.ID]struct{}),
		collCache:   make(map[odata.ID]*collCache),
		hiwater:     make(map[odata.ID]int),
	}
}

// put installs raw at id, creating or replacing the entry, and reports
// the change kind and whether anything actually changed. Rewriting
// identical content is a no-op (the existing entry, and its entity tag,
// are kept).
func (e *engine) put(id odata.ID, raw json.RawMessage) (ChangeKind, bool) {
	old, existed := e.entries[id]
	if existed && bytes.Equal(old.raw, raw) {
		return Updated, false
	}
	e.entries[id] = &entry{raw: raw, etag: odata.EtagRaw(raw)}
	e.link(id)
	if existed {
		return Updated, true
	}
	e.invalidateCollection(id.Parent())
	return Added, true
}

// remove deletes the entry at id, unlinking it from the path index and
// invalidating the parent collection. It reports whether an entry
// existed.
func (e *engine) remove(id odata.ID) bool {
	if _, ok := e.entries[id]; !ok {
		return false
	}
	delete(e.entries, id)
	e.unlink(id)
	e.invalidateCollection(id.Parent())
	return true
}

// link records id under every ancestor so the children index forms a
// complete path tree: subtree walks reach every stored entry from any
// prefix. It also advances the parent's numeric high-water mark.
func (e *engine) link(id odata.ID) {
	for id != "/" && id != "" {
		parent := id.Parent()
		kids, ok := e.children[parent]
		if !ok {
			kids = make(map[odata.ID]struct{})
			e.children[parent] = kids
		}
		if _, ok := kids[id]; ok {
			// Already linked; ancestors must be linked too.
			return
		}
		kids[id] = struct{}{}
		if leaf := id.Leaf(); leaf != "" && leaf[0] >= '0' && leaf[0] <= '9' {
			if n, err := strconv.Atoi(leaf); err == nil && n > e.hiwater[parent] {
				e.hiwater[parent] = n
			}
		}
		id = parent
	}
}

// unlink removes id from its parent's child set, then prunes newly empty
// interior path nodes up the ancestor chain. A node survives while it is
// itself a stored entry or still has descendants.
func (e *engine) unlink(id odata.ID) {
	for id != "/" && id != "" {
		if _, isEntry := e.entries[id]; isEntry {
			return
		}
		if len(e.children[id]) > 0 {
			return
		}
		parent := id.Parent()
		kids, ok := e.children[parent]
		if !ok {
			return
		}
		delete(kids, id)
		if len(kids) == 0 {
			delete(e.children, parent)
		}
		id = parent
	}
}

// invalidateCollection drops the memoized payload of the collection at id
// (if any) after a membership change. Callers hold the store's write
// lock, so a reader can never observe a cache inconsistent with the
// entry map.
func (e *engine) invalidateCollection(id odata.ID) {
	if len(e.collCache) != 0 {
		delete(e.collCache, id)
	}
}

// descendants appends to out every stored entry id equal to or under
// prefix, walking only the prefix's subtree via the children index.
func (e *engine) descendants(prefix odata.ID, out []odata.ID) []odata.ID {
	if _, ok := e.entries[prefix]; ok {
		out = append(out, prefix)
	}
	for kid := range e.children[prefix] {
		out = e.descendants(kid, out)
	}
	return out
}

// members returns the sorted direct members of the collection at id.
func (e *engine) members(id odata.ID) []odata.ID {
	kids := e.children[id]
	members := make([]odata.ID, 0, len(kids))
	for k := range kids {
		if _, ok := e.entries[k]; ok {
			members = append(members, k)
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	return members
}

// nextID returns the next unused positive integer name for a direct
// child of the collection. Allocation is monotonic from the high-water
// mark, so released names are never reused.
func (e *engine) nextID(collection odata.ID) string {
	kids := e.children[collection]
	for i := e.hiwater[collection] + 1; ; i++ {
		name := strconv.Itoa(i)
		if _, ok := kids[collection.Append(name)]; !ok {
			return name
		}
	}
}

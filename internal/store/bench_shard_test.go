package store

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"ofmf/internal/odata"
)

// benchShardCounts are the shard counts every parallel store benchmark
// runs at: 1 is the pre-sharding baseline (one global lock), the others
// show how contention falls as the tree is partitioned.
var benchShardCounts = []int{1, 4, 8}

// reportLockWait wires the lock-wait hook into the benchmark and
// reports the accumulated write-lock wait per op — the contention the
// sharding removes. On hosts with few cores ns/op barely moves (a
// single CPU serializes everything), but lock-wait/op still shows the
// convoy shrinking.
func reportLockWait(b *testing.B, s *Store) {
	var waitNS atomic.Int64
	s.SetLockWaitHook(func(_ int, wait time.Duration) { waitNS.Add(int64(wait)) })
	b.Cleanup(func() {
		if b.N > 0 {
			b.ReportMetric(float64(waitNS.Load())/float64(b.N), "lockwait-ns/op")
		}
	})
}

// BenchmarkStorePutParallel measures the pure write path under
// parallel load. Each worker owns a distinct top-level segment
// (/redfish/v1/B<w>/...), so at shards>1 writers spread across shard
// locks the way independent agents updating their own subtrees do.
func BenchmarkStorePutParallel(b *testing.B) {
	for _, n := range benchShardCounts {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			s := NewSharded(n)
			reportLockWait(b, s)
			b.ReportAllocs()
			var worker atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := worker.Add(1)
				i := 0
				for pb.Next() {
					i++
					id := odata.ID(fmt.Sprintf("/redfish/v1/B%d/%d", w, i))
					if err := s.Put(id, map[string]any{"Name": "bench", "Value": i}); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkStoreMixedParallel is the serving-shaped mix: 80% reads /
// 20% writes against a pre-seeded tree. Reads take the shard's RLock,
// so the win over shards=1 is smaller than the pure-write case — this
// is the number that predicts serving-path behavior.
func BenchmarkStoreMixedParallel(b *testing.B) {
	for _, n := range benchShardCounts {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			s := NewSharded(n)
			const segs, perSeg = 16, 64
			ids := make([]odata.ID, 0, segs*perSeg)
			for g := 0; g < segs; g++ {
				for i := 0; i < perSeg; i++ {
					id := odata.ID(fmt.Sprintf("/redfish/v1/B%d/%d", g, i))
					if err := s.Put(id, map[string]any{"Name": "bench", "Value": i}); err != nil {
						b.Fatal(err)
					}
					ids = append(ids, id)
				}
			}
			reportLockWait(b, s)
			b.ReportAllocs()
			var worker atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := int(worker.Add(1))
				i := 0
				for pb.Next() {
					i++
					id := ids[(w*perSeg+i*7)%len(ids)]
					if i%5 == 0 {
						if err := s.Put(id, map[string]any{"Name": "bench", "Value": i}); err != nil {
							b.Fatal(err)
						}
					} else if _, _, err := s.Get(id); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

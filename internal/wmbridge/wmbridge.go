// Package wmbridge connects a workload manager to the Composability
// Layer, realizing the paper's client role for batch systems: jobs
// request disaggregated resources through constraints
// ("composable:mem=32768,gpu=2,storage=1073741824"), the prolog composes
// a system for the job's nodes before it starts, and the epilog
// decomposes it when the job ends — so every allocation gets exactly the
// hardware it asked for, for exactly the job's lifetime.
package wmbridge

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"ofmf/internal/composer"
	"ofmf/internal/sim/des"
	"ofmf/internal/sim/slurm"
)

// ConstraintPrefix marks composable-resource constraints.
const ConstraintPrefix = "composable:"

// Demand is the per-node disaggregated resource request parsed from a
// job constraint.
type Demand struct {
	MemMiB       int64
	GPUSlices    int
	StorageBytes int64
}

// IsZero reports whether the demand requests nothing.
func (d Demand) IsZero() bool {
	return d.MemMiB == 0 && d.GPUSlices == 0 && d.StorageBytes == 0
}

// ParseConstraint extracts the composable demand from a job's constraint
// list. The format is "composable:key=value[,key=value...]" with keys
// mem (MiB), gpu (slices) and storage (bytes).
func ParseConstraint(constraints []string) (Demand, error) {
	var d Demand
	for _, c := range constraints {
		if !strings.HasPrefix(c, ConstraintPrefix) {
			continue
		}
		for _, kv := range strings.Split(strings.TrimPrefix(c, ConstraintPrefix), ",") {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return Demand{}, fmt.Errorf("wmbridge: malformed constraint %q", kv)
			}
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return Demand{}, fmt.Errorf("wmbridge: bad value in %q", kv)
			}
			switch key {
			case "mem":
				d.MemMiB = n
			case "gpu":
				d.GPUSlices = int(n)
			case "storage":
				d.StorageBytes = n
			default:
				return Demand{}, fmt.Errorf("wmbridge: unknown key %q", key)
			}
		}
	}
	return d, nil
}

// Composer is the subset of the Composability Manager the bridge drives;
// *composer.Composer satisfies it.
type Composer interface {
	Compose(req composer.Request) (composer.Composition, error)
	Decompose(id string) error
}

var _ Composer = (*composer.Composer)(nil)

// Bridge wires a Slurm manager's prolog/epilog to a composer.
type Bridge struct {
	composer Composer
	// ComposeSeconds and DecomposeSeconds model the wall-clock cost of the
	// management-plane round trips charged to the prolog/epilog.
	ComposeSeconds   float64
	DecomposeSeconds float64

	mu     sync.Mutex
	byJob  map[int][]string // job id -> composition ids
	counts struct {
		composed, decomposed, failed int
	}
}

// New creates a bridge over the composer.
func New(c Composer) *Bridge {
	return &Bridge{
		composer:         c,
		ComposeSeconds:   0.05,
		DecomposeSeconds: 0.05,
		byJob:            make(map[int][]string),
	}
}

// Install attaches the bridge to the manager's prolog and epilog,
// chaining any hooks already present (the BeeOND hooks, typically).
func (b *Bridge) Install(m *slurm.Manager) {
	prevProlog, prevEpilog := m.Prolog, m.Epilog
	m.Prolog = func(ctx slurm.JobContext, node string, rng *des.RNG) (float64, error) {
		dur := 0.0
		if prevProlog != nil {
			d, err := prevProlog(ctx, node, rng)
			if err != nil {
				return d, err
			}
			dur = d
		}
		d, err := b.prologNode(ctx, node)
		return dur + d, err
	}
	m.Epilog = func(ctx slurm.JobContext, node string, rng *des.RNG) (float64, error) {
		dur := 0.0
		if prevEpilog != nil {
			d, err := prevEpilog(ctx, node, rng)
			if err != nil {
				return d, err
			}
			dur = d
		}
		d, err := b.epilogNode(ctx, node)
		return dur + d, err
	}
}

// prologNode composes this node's resources when the job asked for any.
func (b *Bridge) prologNode(ctx slurm.JobContext, node string) (float64, error) {
	demand, err := ParseConstraint(ctx.Constraints)
	if err != nil {
		return 0, err
	}
	if demand.IsZero() {
		return 0, nil
	}
	comp, err := b.composer.Compose(composer.Request{
		Name:            fmt.Sprintf("job%d-%s", ctx.JobID, node),
		Cores:           1, // the workload manager owns core scheduling
		FabricMemoryMiB: demand.MemMiB,
		GPUSlices:       demand.GPUSlices,
		StorageBytes:    demand.StorageBytes,
		Node:            node,
	})
	if err != nil {
		b.mu.Lock()
		b.counts.failed++
		b.mu.Unlock()
		return b.ComposeSeconds, fmt.Errorf("wmbridge: compose for %s: %w", node, err)
	}
	b.mu.Lock()
	b.byJob[ctx.JobID] = append(b.byJob[ctx.JobID], comp.ID)
	b.counts.composed++
	b.mu.Unlock()
	return b.ComposeSeconds, nil
}

// epilogNode decomposes one of the job's compositions per node call; the
// final node call drains the list.
func (b *Bridge) epilogNode(ctx slurm.JobContext, node string) (float64, error) {
	b.mu.Lock()
	ids := b.byJob[ctx.JobID]
	var id string
	if len(ids) > 0 {
		id, b.byJob[ctx.JobID] = ids[len(ids)-1], ids[:len(ids)-1]
		if len(b.byJob[ctx.JobID]) == 0 {
			delete(b.byJob, ctx.JobID)
		}
	}
	b.mu.Unlock()
	if id == "" {
		return 0, nil
	}
	if err := b.composer.Decompose(id); err != nil {
		return b.DecomposeSeconds, fmt.Errorf("wmbridge: decompose %s: %w", id, err)
	}
	b.mu.Lock()
	b.counts.decomposed++
	b.mu.Unlock()
	return b.DecomposeSeconds, nil
}

// Stats reports how many compositions the bridge has made and released.
func (b *Bridge) Stats() (composed, decomposed, failed int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.counts.composed, b.counts.decomposed, b.counts.failed
}

// Outstanding reports compositions not yet decomposed (live jobs).
func (b *Bridge) Outstanding() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, ids := range b.byJob {
		n += len(ids)
	}
	return n
}

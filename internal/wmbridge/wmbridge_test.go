package wmbridge_test

import (
	"strings"
	"testing"

	"ofmf/internal/core"
	"ofmf/internal/sim/beeond"
	"ofmf/internal/sim/cluster"
	"ofmf/internal/sim/des"
	"ofmf/internal/sim/slurm"
	"ofmf/internal/wmbridge"
)

func TestParseConstraint(t *testing.T) {
	d, err := wmbridge.ParseConstraint([]string{"beeond", "composable:mem=32768,gpu=2,storage=1073741824"})
	if err != nil {
		t.Fatal(err)
	}
	if d.MemMiB != 32768 || d.GPUSlices != 2 || d.StorageBytes != 1073741824 {
		t.Errorf("demand = %+v", d)
	}
	// No composable constraint → zero demand.
	d, err = wmbridge.ParseConstraint([]string{"beeond"})
	if err != nil || !d.IsZero() {
		t.Errorf("demand = %+v, %v", d, err)
	}
	// Malformed inputs.
	for _, bad := range []string{"composable:mem", "composable:mem=abc", "composable:mem=-1", "composable:disk=5"} {
		if _, err := wmbridge.ParseConstraint([]string{bad}); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func newTestbed(t *testing.T, nodes int) (*core.Framework, *des.Sim, *slurm.Manager, *wmbridge.Bridge) {
	t.Helper()
	f, err := core.New(core.Config{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	sim := &des.Sim{}
	cl := cluster.NewDefault(nodes)
	m := slurm.NewManager(sim, cl, des.NewRNG(1))
	b := wmbridge.New(f.Composer)
	b.Install(m)
	return f, sim, m, b
}

func TestJobComposesAndDecomposes(t *testing.T) {
	f, sim, m, b := newTestbed(t, 4)
	id, err := m.Submit(slurm.JobSpec{
		Nodes:       2,
		Constraints: []string{"composable:mem=8192,gpu=1"},
		Run:         func(slurm.JobContext, *des.RNG) float64 { return 100 },
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(50) // mid-job: compositions live
	if got := len(f.Composer.Compositions()); got != 2 {
		t.Errorf("live compositions mid-job = %d", got)
	}
	if f.CXL.FreeMiB() != 4*256*1024-2*8192 {
		t.Errorf("cxl free mid-job = %d", f.CXL.FreeMiB())
	}
	sim.Run()
	rec, _ := m.Record(id)
	if rec.State != slurm.StateCompleted {
		t.Fatalf("state = %s (%s)", rec.State, rec.FailureReason)
	}
	if got := len(f.Composer.Compositions()); got != 0 {
		t.Errorf("live compositions after job = %d", got)
	}
	if f.CXL.FreeMiB() != 4*256*1024 {
		t.Errorf("cxl free after job = %d", f.CXL.FreeMiB())
	}
	if f.GPUs.FreeSlices() != 56 {
		t.Errorf("gpu free after job = %d", f.GPUs.FreeSlices())
	}
	composed, decomposed, failed := b.Stats()
	if composed != 2 || decomposed != 2 || failed != 0 {
		t.Errorf("stats = %d/%d/%d", composed, decomposed, failed)
	}
	if b.Outstanding() != 0 {
		t.Errorf("outstanding = %d", b.Outstanding())
	}
}

func TestJobWithoutConstraintUntouched(t *testing.T) {
	f, sim, m, b := newTestbed(t, 2)
	if _, err := m.Submit(slurm.JobSpec{
		Nodes: 2,
		Run:   func(slurm.JobContext, *des.RNG) float64 { return 10 },
	}); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	composed, _, _ := b.Stats()
	if composed != 0 {
		t.Errorf("composed = %d", composed)
	}
	if f.CXL.FreeMiB() != 4*256*1024 {
		t.Errorf("cxl touched: %d", f.CXL.FreeMiB())
	}
}

func TestComposeFailureFailsJob(t *testing.T) {
	f, sim, m, b := newTestbed(t, 2)
	_ = f
	// Demand beyond the pool: compose fails, the job fails, the node is
	// drained per Slurm error handling.
	id, err := m.Submit(slurm.JobSpec{
		Nodes:       2,
		Constraints: []string{"composable:mem=99999999"},
		Run:         func(slurm.JobContext, *des.RNG) float64 { return 10 },
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	rec, _ := m.Record(id)
	if rec.State != slurm.StateFailed {
		t.Fatalf("state = %s", rec.State)
	}
	if !strings.Contains(rec.FailureReason, "compose") {
		t.Errorf("reason = %q", rec.FailureReason)
	}
	_, _, failed := b.Stats()
	if failed == 0 {
		t.Error("failure not counted")
	}
	// Any compositions made for earlier nodes were rolled back via epilog...
	// prolog failure skips epilog, so the bridge may hold orphans; they are
	// bounded by the job's node count and visible via Outstanding.
	if b.Outstanding() > 2 {
		t.Errorf("outstanding = %d", b.Outstanding())
	}
}

func TestBridgeChainsBeeondHooks(t *testing.T) {
	// Both the BeeOND filesystem hooks and the composability bridge run in
	// the same prolog; durations add up.
	f, err := core.New(core.Config{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sim := &des.Sim{}
	cl := cluster.NewDefault(4)
	m := slurm.NewManager(sim, cl, des.NewRNG(2))

	fsByJob := make(map[int]*beeond.FS)
	m.Prolog = func(ctx slurm.JobContext, node string, rng *des.RNG) (float64, error) {
		fs, ok := fsByJob[ctx.JobID]
		if !ok {
			fs = beeond.New(beeond.DefaultConfig(), ctx.Nodes)
			fsByJob[ctx.JobID] = fs
		}
		return fs.StartNode(node, rng)
	}
	b := wmbridge.New(f.Composer)
	b.ComposeSeconds = 0.2
	b.Install(m)

	id, err := m.Submit(slurm.JobSpec{
		Nodes:       4,
		Constraints: []string{"beeond", "composable:mem=1024"},
		Run:         func(slurm.JobContext, *des.RNG) float64 { return 5 },
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	rec, _ := m.Record(id)
	if rec.State != slurm.StateCompleted {
		t.Fatalf("state = %s (%s)", rec.State, rec.FailureReason)
	}
	// Prolog includes both the filesystem assembly (~1.6 s) and the
	// compose round-trip (0.2 s).
	if rec.PrologSeconds < 1.0 {
		t.Errorf("prolog = %.2f s, beeond hook missing", rec.PrologSeconds)
	}
	composed, _, _ := b.Stats()
	if composed != 4 {
		t.Errorf("composed = %d", composed)
	}
}

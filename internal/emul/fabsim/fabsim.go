// Package fabsim emulates a network fabric: switches, ports, links and
// attached endpoints, with shortest-path routing, zoning enforcement,
// per-link bandwidth accounting and link-failure injection. It is the
// hardware substrate behind the OFMF's generic fabric Agent — the paper's
// testbeds attach real InfiniBand or Slingshot fabric managers here; the
// emulator exposes the same operations those managers perform.
package fabsim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Sentinel errors.
var (
	ErrUnknownNode   = errors.New("fabsim: unknown node")
	ErrUnknownLink   = errors.New("fabsim: unknown link")
	ErrNoRoute       = errors.New("fabsim: no route")
	ErrNotZoned      = errors.New("fabsim: endpoints not in a common zone")
	ErrBandwidth     = errors.New("fabsim: insufficient bandwidth")
	ErrUnknownZone   = errors.New("fabsim: unknown zone")
	ErrUnknownFlow   = errors.New("fabsim: unknown flow")
	ErrDuplicateNode = errors.New("fabsim: duplicate node")
	ErrSelfLink      = errors.New("fabsim: link endpoints identical")
	ErrZoneExists    = errors.New("fabsim: zone already exists")
)

// NodeKind distinguishes switches from endpoints.
type NodeKind int

// Node kinds.
const (
	KindSwitch NodeKind = iota
	KindEndpoint
)

// Node is one fabric element.
type Node struct {
	ID   string
	Kind NodeKind
}

// Link joins two nodes with a capacity.
type Link struct {
	A, B         string
	CapacityGbps float64
	up           bool
	reserved     float64
}

// Up reports whether the link is operational.
func (l *Link) Up() bool { return l.up }

// ReservedGbps reports the bandwidth currently reserved on the link.
func (l *Link) ReservedGbps() float64 { return l.reserved }

// Event describes a fabric state change delivered to listeners.
type Event struct {
	Kind string // LinkDown, LinkUp, ZoneCreated, ZoneDeleted, FlowReserved, FlowReleased
	Link string // link key for link events
	Zone string // zone id for zone events
}

// Listener receives fabric events.
type Listener func(Event)

// Flow is a reserved bandwidth allocation along a route.
type Flow struct {
	ID    string
	From  string
	To    string
	Gbps  float64
	Route []string // node ids including both endpoints
}

// Fabric is the emulated interconnect.
type Fabric struct {
	mu        sync.RWMutex
	nodes     map[string]Node
	links     map[string]*Link
	adj       map[string][]string
	zones     map[string]map[string]struct{}
	flows     map[string]*Flow
	nextFlow  int
	listeners []Listener
}

// New creates an empty fabric.
func New() *Fabric {
	return &Fabric{
		nodes: make(map[string]Node),
		links: make(map[string]*Link),
		adj:   make(map[string][]string),
		zones: make(map[string]map[string]struct{}),
		flows: make(map[string]*Flow),
	}
}

// Subscribe registers a listener for fabric events.
func (f *Fabric) Subscribe(l Listener) {
	f.mu.Lock()
	f.listeners = append(f.listeners, l)
	f.mu.Unlock()
}

func (f *Fabric) emit(ev Event) {
	f.mu.RLock()
	ls := f.listeners
	f.mu.RUnlock()
	for _, l := range ls {
		l(ev)
	}
}

// linkKey produces the canonical key for an undirected link.
func linkKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// AddSwitch adds a switch node.
func (f *Fabric) AddSwitch(id string) error { return f.addNode(id, KindSwitch) }

// AddEndpoint adds an endpoint node (host HCA, device port).
func (f *Fabric) AddEndpoint(id string) error { return f.addNode(id, KindEndpoint) }

func (f *Fabric) addNode(id string, kind NodeKind) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.nodes[id]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateNode, id)
	}
	f.nodes[id] = Node{ID: id, Kind: kind}
	return nil
}

// AddLink joins two existing nodes with the given capacity. Links start up.
func (f *Fabric) AddLink(a, b string, capacityGbps float64) error {
	if a == b {
		return ErrSelfLink
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.nodes[a]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, a)
	}
	if _, ok := f.nodes[b]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, b)
	}
	key := linkKey(a, b)
	if _, ok := f.links[key]; ok {
		return nil // idempotent
	}
	f.links[key] = &Link{A: a, B: b, CapacityGbps: capacityGbps, up: true}
	f.adj[a] = append(f.adj[a], b)
	f.adj[b] = append(f.adj[b], a)
	return nil
}

// Nodes returns all node ids, sorted.
func (f *Fabric) Nodes() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	ids := make([]string, 0, len(f.nodes))
	for id := range f.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Endpoints returns all endpoint node ids, sorted.
func (f *Fabric) Endpoints() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var ids []string
	for id, n := range f.nodes {
		if n.Kind == KindEndpoint {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// Switches returns all switch node ids, sorted.
func (f *Fabric) Switches() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var ids []string
	for id, n := range f.nodes {
		if n.Kind == KindSwitch {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// Link returns a snapshot of the link between a and b.
func (f *Fabric) Link(a, b string) (Link, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	l, ok := f.links[linkKey(a, b)]
	if !ok {
		return Link{}, fmt.Errorf("%w: %s-%s", ErrUnknownLink, a, b)
	}
	return *l, nil
}

// Links returns snapshots of every link, sorted by key.
func (f *Fabric) Links() []Link {
	f.mu.RLock()
	defer f.mu.RUnlock()
	keys := make([]string, 0, len(f.links))
	for k := range f.links {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Link, len(keys))
	for i, k := range keys {
		out[i] = *f.links[k]
	}
	return out
}

// FailLink marks the link between a and b down and notifies listeners.
func (f *Fabric) FailLink(a, b string) error { return f.setLink(a, b, false) }

// RestoreLink marks the link between a and b up and notifies listeners.
func (f *Fabric) RestoreLink(a, b string) error { return f.setLink(a, b, true) }

func (f *Fabric) setLink(a, b string, up bool) error {
	key := linkKey(a, b)
	f.mu.Lock()
	l, ok := f.links[key]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("%w: %s-%s", ErrUnknownLink, a, b)
	}
	changed := l.up != up
	l.up = up
	f.mu.Unlock()
	if changed {
		kind := "LinkDown"
		if up {
			kind = "LinkUp"
		}
		f.emit(Event{Kind: kind, Link: key})
	}
	return nil
}

// CreateZone defines a zone containing the given endpoint ids.
func (f *Fabric) CreateZone(id string, endpoints []string) error {
	f.mu.Lock()
	if _, ok := f.zones[id]; ok {
		f.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrZoneExists, id)
	}
	for _, ep := range endpoints {
		n, ok := f.nodes[ep]
		if !ok || n.Kind != KindEndpoint {
			f.mu.Unlock()
			return fmt.Errorf("%w: %s", ErrUnknownNode, ep)
		}
	}
	set := make(map[string]struct{}, len(endpoints))
	for _, ep := range endpoints {
		set[ep] = struct{}{}
	}
	f.zones[id] = set
	f.mu.Unlock()
	f.emit(Event{Kind: "ZoneCreated", Zone: id})
	return nil
}

// DeleteZone removes a zone.
func (f *Fabric) DeleteZone(id string) error {
	f.mu.Lock()
	if _, ok := f.zones[id]; !ok {
		f.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownZone, id)
	}
	delete(f.zones, id)
	f.mu.Unlock()
	f.emit(Event{Kind: "ZoneDeleted", Zone: id})
	return nil
}

// Zones returns the ids of all zones, sorted.
func (f *Fabric) Zones() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	ids := make([]string, 0, len(f.zones))
	for id := range f.zones {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// ZoneMembers returns a zone's endpoint ids, sorted.
func (f *Fabric) ZoneMembers(id string) ([]string, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	set, ok := f.zones[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownZone, id)
	}
	members := make([]string, 0, len(set))
	for m := range set {
		members = append(members, m)
	}
	sort.Strings(members)
	return members, nil
}

// sameZoneLocked reports whether a and b share a zone. With no zones
// defined the fabric is open (default zoning).
func (f *Fabric) sameZoneLocked(a, b string) bool {
	if len(f.zones) == 0 {
		return true
	}
	for _, set := range f.zones {
		if _, oka := set[a]; oka {
			if _, okb := set[b]; okb {
				return true
			}
		}
	}
	return false
}

// Route computes a shortest path from a to b over operational links,
// enforcing zoning when both are endpoints. The returned path includes
// both endpoints.
func (f *Fabric) Route(a, b string) ([]string, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.routeLocked(a, b)
}

func (f *Fabric) routeLocked(a, b string) ([]string, error) {
	na, ok := f.nodes[a]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, a)
	}
	nb, ok := f.nodes[b]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, b)
	}
	if na.Kind == KindEndpoint && nb.Kind == KindEndpoint && !f.sameZoneLocked(a, b) {
		return nil, fmt.Errorf("%w: %s and %s", ErrNotZoned, a, b)
	}
	// BFS over up links.
	prev := map[string]string{a: a}
	queue := []string{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == b {
			break
		}
		neighbors := append([]string(nil), f.adj[cur]...)
		sort.Strings(neighbors) // deterministic routing
		for _, nxt := range neighbors {
			if _, seen := prev[nxt]; seen {
				continue
			}
			l := f.links[linkKey(cur, nxt)]
			if l == nil || !l.up {
				continue
			}
			// Traffic never transits through another endpoint.
			if f.nodes[nxt].Kind == KindEndpoint && nxt != b {
				continue
			}
			prev[nxt] = cur
			queue = append(queue, nxt)
		}
	}
	if _, ok := prev[b]; !ok {
		return nil, fmt.Errorf("%w: %s -> %s", ErrNoRoute, a, b)
	}
	var path []string
	for cur := b; ; cur = prev[cur] {
		path = append(path, cur)
		if cur == a {
			break
		}
	}
	// Reverse.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

// Reserve routes a flow from a to b and reserves gbps along every link of
// the path. It fails without side effects if any link lacks headroom.
func (f *Fabric) Reserve(a, b string, gbps float64) (*Flow, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	path, err := f.routeLocked(a, b)
	if err != nil {
		return nil, err
	}
	for i := 0; i+1 < len(path); i++ {
		l := f.links[linkKey(path[i], path[i+1])]
		if l.reserved+gbps > l.CapacityGbps {
			return nil, fmt.Errorf("%w: link %s-%s (%.0f of %.0f Gbps used)",
				ErrBandwidth, l.A, l.B, l.reserved, l.CapacityGbps)
		}
	}
	for i := 0; i+1 < len(path); i++ {
		f.links[linkKey(path[i], path[i+1])].reserved += gbps
	}
	f.nextFlow++
	flow := &Flow{
		ID:    fmt.Sprintf("flow-%d", f.nextFlow),
		From:  a,
		To:    b,
		Gbps:  gbps,
		Route: path,
	}
	f.flows[flow.ID] = flow
	return cloneFlow(flow), nil
}

// Release frees the bandwidth held by a flow.
func (f *Fabric) Release(flowID string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	flow, ok := f.flows[flowID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownFlow, flowID)
	}
	for i := 0; i+1 < len(flow.Route); i++ {
		l := f.links[linkKey(flow.Route[i], flow.Route[i+1])]
		if l != nil {
			l.reserved -= flow.Gbps
			if l.reserved < 0 {
				l.reserved = 0
			}
		}
	}
	delete(f.flows, flowID)
	return nil
}

// Flows returns snapshots of active flows, sorted by id.
func (f *Fabric) Flows() []Flow {
	f.mu.RLock()
	defer f.mu.RUnlock()
	ids := make([]string, 0, len(f.flows))
	for id := range f.flows {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]Flow, len(ids))
	for i, id := range ids {
		out[i] = *cloneFlow(f.flows[id])
	}
	return out
}

// RerouteBroken re-routes flows whose path crosses a down link. It returns
// the ids of flows successfully re-routed and of flows left stranded.
func (f *Fabric) RerouteBroken() (rerouted, stranded []string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ids := make([]string, 0, len(f.flows))
	for id := range f.flows {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		flow := f.flows[id]
		if f.routeUpLocked(flow.Route) {
			continue
		}
		// Free old reservations first so the new path can reuse healthy links.
		for i := 0; i+1 < len(flow.Route); i++ {
			if l := f.links[linkKey(flow.Route[i], flow.Route[i+1])]; l != nil {
				l.reserved -= flow.Gbps
				if l.reserved < 0 {
					l.reserved = 0
				}
			}
		}
		path, err := f.routeLocked(flow.From, flow.To)
		if err == nil {
			ok := true
			for i := 0; i+1 < len(path); i++ {
				l := f.links[linkKey(path[i], path[i+1])]
				if l.reserved+flow.Gbps > l.CapacityGbps {
					ok = false
					break
				}
			}
			if ok {
				for i := 0; i+1 < len(path); i++ {
					f.links[linkKey(path[i], path[i+1])].reserved += flow.Gbps
				}
				flow.Route = path
				rerouted = append(rerouted, id)
				continue
			}
		}
		delete(f.flows, id)
		stranded = append(stranded, id)
	}
	return rerouted, stranded
}

func (f *Fabric) routeUpLocked(path []string) bool {
	for i := 0; i+1 < len(path); i++ {
		l := f.links[linkKey(path[i], path[i+1])]
		if l == nil || !l.up {
			return false
		}
	}
	return true
}

func cloneFlow(fl *Flow) *Flow {
	c := *fl
	c.Route = append([]string(nil), fl.Route...)
	return &c
}

package fabsim

import "fmt"

// TopologySpec summarizes a built topology for callers that need to
// enumerate the generated element ids.
type TopologySpec struct {
	Switches  []string
	Endpoints []string
}

// BuildStar wires n endpoints to one central switch. Endpoint ids are
// prefix0..prefix{n-1}; the switch id is "sw0".
func BuildStar(f *Fabric, prefix string, n int, linkGbps float64) (TopologySpec, error) {
	spec := TopologySpec{}
	if err := f.AddSwitch("sw0"); err != nil {
		return spec, err
	}
	spec.Switches = []string{"sw0"}
	for i := 0; i < n; i++ {
		ep := fmt.Sprintf("%s%d", prefix, i)
		if err := f.AddEndpoint(ep); err != nil {
			return spec, err
		}
		if err := f.AddLink(ep, "sw0", linkGbps); err != nil {
			return spec, err
		}
		spec.Endpoints = append(spec.Endpoints, ep)
	}
	return spec, nil
}

// BuildFatTree wires a two-level fat tree: nLeaf leaf switches each hosting
// hostsPerLeaf endpoints, fully connected to nSpine spine switches.
// Endpoint ids are prefix{leaf}-{host}; switches are leaf{i} and spine{j}.
func BuildFatTree(f *Fabric, prefix string, nLeaf, nSpine, hostsPerLeaf int, edgeGbps, coreGbps float64) (TopologySpec, error) {
	spec := TopologySpec{}
	for j := 0; j < nSpine; j++ {
		id := fmt.Sprintf("spine%d", j)
		if err := f.AddSwitch(id); err != nil {
			return spec, err
		}
		spec.Switches = append(spec.Switches, id)
	}
	for i := 0; i < nLeaf; i++ {
		leaf := fmt.Sprintf("leaf%d", i)
		if err := f.AddSwitch(leaf); err != nil {
			return spec, err
		}
		spec.Switches = append(spec.Switches, leaf)
		for j := 0; j < nSpine; j++ {
			if err := f.AddLink(leaf, fmt.Sprintf("spine%d", j), coreGbps); err != nil {
				return spec, err
			}
		}
		for h := 0; h < hostsPerLeaf; h++ {
			ep := fmt.Sprintf("%s%d-%d", prefix, i, h)
			if err := f.AddEndpoint(ep); err != nil {
				return spec, err
			}
			if err := f.AddLink(ep, leaf, edgeGbps); err != nil {
				return spec, err
			}
			spec.Endpoints = append(spec.Endpoints, ep)
		}
	}
	return spec, nil
}

// BuildDragonfly wires groups of routers: routers within a group are fully
// meshed, each pair of groups is joined by one global link, and each
// router hosts hostsPerRouter endpoints.
func BuildDragonfly(f *Fabric, prefix string, groups, routersPerGroup, hostsPerRouter int, localGbps, globalGbps, edgeGbps float64) (TopologySpec, error) {
	spec := TopologySpec{}
	router := func(g, r int) string { return fmt.Sprintf("g%dr%d", g, r) }
	for g := 0; g < groups; g++ {
		for r := 0; r < routersPerGroup; r++ {
			id := router(g, r)
			if err := f.AddSwitch(id); err != nil {
				return spec, err
			}
			spec.Switches = append(spec.Switches, id)
			for h := 0; h < hostsPerRouter; h++ {
				ep := fmt.Sprintf("%sg%dr%d-%d", prefix, g, r, h)
				if err := f.AddEndpoint(ep); err != nil {
					return spec, err
				}
				if err := f.AddLink(ep, id, edgeGbps); err != nil {
					return spec, err
				}
				spec.Endpoints = append(spec.Endpoints, ep)
			}
		}
		// Local full mesh.
		for a := 0; a < routersPerGroup; a++ {
			for b := a + 1; b < routersPerGroup; b++ {
				if err := f.AddLink(router(g, a), router(g, b), localGbps); err != nil {
					return spec, err
				}
			}
		}
	}
	// One global link per group pair, spread across routers round-robin.
	for ga := 0; ga < groups; ga++ {
		for gb := ga + 1; gb < groups; gb++ {
			ra := gb % routersPerGroup
			rb := ga % routersPerGroup
			if err := f.AddLink(router(ga, ra), router(gb, rb), globalGbps); err != nil {
				return spec, err
			}
		}
	}
	return spec, nil
}

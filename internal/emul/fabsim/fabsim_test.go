package fabsim

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func starFabric(t *testing.T, n int) (*Fabric, TopologySpec) {
	t.Helper()
	f := New()
	spec, err := BuildStar(f, "h", n, 100)
	if err != nil {
		t.Fatal(err)
	}
	return f, spec
}

func TestBuildStar(t *testing.T) {
	f, spec := starFabric(t, 4)
	if len(spec.Endpoints) != 4 || len(spec.Switches) != 1 {
		t.Fatalf("spec = %+v", spec)
	}
	if got := len(f.Links()); got != 4 {
		t.Errorf("links = %d", got)
	}
	if got := len(f.Endpoints()); got != 4 {
		t.Errorf("endpoints = %d", got)
	}
}

func TestRouteThroughSwitch(t *testing.T) {
	f, _ := starFabric(t, 3)
	path, err := f.Route("h0", "h2")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"h0", "sw0", "h2"}
	if len(path) != 3 || path[0] != want[0] || path[1] != want[1] || path[2] != want[2] {
		t.Errorf("path = %v", path)
	}
}

func TestRouteNeverTransitsEndpoint(t *testing.T) {
	f := New()
	for _, n := range []string{"a", "b", "c"} {
		if err := f.AddEndpoint(n); err != nil {
			t.Fatal(err)
		}
	}
	// a-b-c chain through endpoint b: no route a->c allowed.
	if err := f.AddLink("a", "b", 100); err != nil {
		t.Fatal(err)
	}
	if err := f.AddLink("b", "c", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Route("a", "c"); !errors.Is(err, ErrNoRoute) {
		t.Errorf("err = %v, want ErrNoRoute", err)
	}
}

func TestRouteUnknownNode(t *testing.T) {
	f, _ := starFabric(t, 2)
	if _, err := f.Route("h0", "ghost"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("err = %v", err)
	}
}

func TestLinkFailureBlocksRoute(t *testing.T) {
	f, _ := starFabric(t, 2)
	if err := f.FailLink("h1", "sw0"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Route("h0", "h1"); !errors.Is(err, ErrNoRoute) {
		t.Errorf("err = %v", err)
	}
	if err := f.RestoreLink("h1", "sw0"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Route("h0", "h1"); err != nil {
		t.Errorf("route after restore: %v", err)
	}
}

func TestFailoverAlternatePath(t *testing.T) {
	// Two-spine fat tree: failing one spine path must reroute via the other.
	f := New()
	spec, err := BuildFatTree(f, "n", 2, 2, 1, 100, 400)
	if err != nil {
		t.Fatal(err)
	}
	a, b := spec.Endpoints[0], spec.Endpoints[1]
	path, err := f.Route(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 5 { // host-leaf-spine-leaf-host
		t.Fatalf("path = %v", path)
	}
	usedSpine := path[2]
	if err := f.FailLink(path[1], usedSpine); err != nil {
		t.Fatal(err)
	}
	path2, err := f.Route(a, b)
	if err != nil {
		t.Fatalf("no failover path: %v", err)
	}
	if path2[2] == usedSpine {
		t.Errorf("reroute still uses failed spine: %v", path2)
	}
}

func TestZoningEnforced(t *testing.T) {
	f, _ := starFabric(t, 4)
	if err := f.CreateZone("z1", []string{"h0", "h1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Route("h0", "h1"); err != nil {
		t.Errorf("zoned route failed: %v", err)
	}
	if _, err := f.Route("h0", "h2"); !errors.Is(err, ErrNotZoned) {
		t.Errorf("cross-zone route err = %v", err)
	}
	if err := f.DeleteZone("z1"); err != nil {
		t.Fatal(err)
	}
	// No zones → open fabric again.
	if _, err := f.Route("h0", "h2"); err != nil {
		t.Errorf("open route failed: %v", err)
	}
}

func TestZoneValidation(t *testing.T) {
	f, _ := starFabric(t, 2)
	if err := f.CreateZone("z", []string{"sw0"}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("switch in zone err = %v", err)
	}
	if err := f.CreateZone("z", []string{"h0"}); err != nil {
		t.Fatal(err)
	}
	if err := f.CreateZone("z", []string{"h1"}); !errors.Is(err, ErrZoneExists) {
		t.Errorf("duplicate zone err = %v", err)
	}
	if err := f.DeleteZone("ghost"); !errors.Is(err, ErrUnknownZone) {
		t.Errorf("delete unknown err = %v", err)
	}
	members, err := f.ZoneMembers("z")
	if err != nil || len(members) != 1 || members[0] != "h0" {
		t.Errorf("members = %v, %v", members, err)
	}
}

func TestReserveAndRelease(t *testing.T) {
	f, _ := starFabric(t, 2)
	flow, err := f.Reserve("h0", "h1", 60)
	if err != nil {
		t.Fatal(err)
	}
	l, err := f.Link("h0", "sw0")
	if err != nil {
		t.Fatal(err)
	}
	if l.ReservedGbps() != 60 {
		t.Errorf("reserved = %f", l.ReservedGbps())
	}
	// Second flow exceeding capacity fails without partial reservation.
	if _, err := f.Reserve("h0", "h1", 60); !errors.Is(err, ErrBandwidth) {
		t.Fatalf("err = %v", err)
	}
	l, _ = f.Link("h0", "sw0")
	if l.ReservedGbps() != 60 {
		t.Errorf("failed reserve leaked: %f", l.ReservedGbps())
	}
	if err := f.Release(flow.ID); err != nil {
		t.Fatal(err)
	}
	l, _ = f.Link("h0", "sw0")
	if l.ReservedGbps() != 0 {
		t.Errorf("release did not free: %f", l.ReservedGbps())
	}
	if err := f.Release(flow.ID); !errors.Is(err, ErrUnknownFlow) {
		t.Errorf("double release err = %v", err)
	}
}

func TestRerouteBroken(t *testing.T) {
	f := New()
	spec, err := BuildFatTree(f, "n", 2, 2, 1, 100, 400)
	if err != nil {
		t.Fatal(err)
	}
	a, b := spec.Endpoints[0], spec.Endpoints[1]
	flow, err := f.Reserve(a, b, 50)
	if err != nil {
		t.Fatal(err)
	}
	spine := flow.Route[2]
	if err := f.FailLink(flow.Route[1], spine); err != nil {
		t.Fatal(err)
	}
	rerouted, stranded := f.RerouteBroken()
	if len(rerouted) != 1 || len(stranded) != 0 {
		t.Fatalf("rerouted = %v, stranded = %v", rerouted, stranded)
	}
	flows := f.Flows()
	if len(flows) != 1 {
		t.Fatal("flow lost")
	}
	if flows[0].Route[2] == spine {
		t.Errorf("still routed via failed spine: %v", flows[0].Route)
	}
	// Old path released: the failed link holds no reservation.
	l, _ := f.Link(flow.Route[1], spine)
	if l.ReservedGbps() != 0 {
		t.Errorf("stale reservation on failed link: %f", l.ReservedGbps())
	}
}

func TestRerouteStrandsWhenNoPath(t *testing.T) {
	f, _ := starFabric(t, 2)
	flow, err := f.Reserve("h0", "h1", 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.FailLink("h1", "sw0"); err != nil {
		t.Fatal(err)
	}
	rerouted, stranded := f.RerouteBroken()
	if len(rerouted) != 0 || len(stranded) != 1 || stranded[0] != flow.ID {
		t.Errorf("rerouted = %v, stranded = %v", rerouted, stranded)
	}
	if len(f.Flows()) != 0 {
		t.Error("stranded flow not removed")
	}
}

func TestEvents(t *testing.T) {
	f, _ := starFabric(t, 2)
	var mu sync.Mutex
	var evs []Event
	f.Subscribe(func(e Event) {
		mu.Lock()
		evs = append(evs, e)
		mu.Unlock()
	})
	if err := f.FailLink("h0", "sw0"); err != nil {
		t.Fatal(err)
	}
	if err := f.FailLink("h0", "sw0"); err != nil { // no duplicate event
		t.Fatal(err)
	}
	if err := f.RestoreLink("h0", "sw0"); err != nil {
		t.Fatal(err)
	}
	if err := f.CreateZone("z", []string{"h0"}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	kinds := make([]string, len(evs))
	for i, e := range evs {
		kinds[i] = e.Kind
	}
	want := []string{"LinkDown", "LinkUp", "ZoneCreated"}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("event[%d] = %s, want %s", i, kinds[i], want[i])
		}
	}
}

func TestDuplicateAndSelfLinks(t *testing.T) {
	f := New()
	if err := f.AddSwitch("s"); err != nil {
		t.Fatal(err)
	}
	if err := f.AddSwitch("s"); !errors.Is(err, ErrDuplicateNode) {
		t.Errorf("dup node err = %v", err)
	}
	if err := f.AddLink("s", "s", 1); !errors.Is(err, ErrSelfLink) {
		t.Errorf("self link err = %v", err)
	}
	if err := f.AddLink("s", "ghost", 1); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown link err = %v", err)
	}
}

func TestBuildFatTreeShape(t *testing.T) {
	f := New()
	spec, err := BuildFatTree(f, "n", 4, 2, 8, 100, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Endpoints) != 32 {
		t.Errorf("endpoints = %d", len(spec.Endpoints))
	}
	if len(spec.Switches) != 6 {
		t.Errorf("switches = %d", len(spec.Switches))
	}
	// links: 4 leaves * 2 spines + 32 host links = 40
	if got := len(f.Links()); got != 40 {
		t.Errorf("links = %d", got)
	}
}

func TestBuildDragonflyConnectivity(t *testing.T) {
	f := New()
	spec, err := BuildDragonfly(f, "n", 3, 2, 2, 200, 400, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Endpoints) != 12 {
		t.Fatalf("endpoints = %d", len(spec.Endpoints))
	}
	// Every endpoint pair must be routable.
	for i, a := range spec.Endpoints {
		for _, b := range spec.Endpoints[i+1:] {
			if _, err := f.Route(a, b); err != nil {
				t.Fatalf("route %s->%s: %v", a, b, err)
			}
		}
	}
}

func TestPropertyRouteSymmetricLength(t *testing.T) {
	f := New()
	spec, err := BuildFatTree(f, "n", 3, 2, 4, 100, 400)
	if err != nil {
		t.Fatal(err)
	}
	n := len(spec.Endpoints)
	prop := func(i, j uint8) bool {
		a := spec.Endpoints[int(i)%n]
		b := spec.Endpoints[int(j)%n]
		if a == b {
			return true
		}
		p1, err1 := f.Route(a, b)
		p2, err2 := f.Route(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return len(p1) == len(p2)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyReserveReleaseInvariant(t *testing.T) {
	// After any sequence of reserve/release pairs, total reservation is zero.
	f, _ := starFabric(t, 4)
	prop := func(ops []uint8) bool {
		var flows []string
		for _, op := range ops {
			a := fmt.Sprintf("h%d", int(op)%4)
			b := fmt.Sprintf("h%d", (int(op)+1)%4)
			fl, err := f.Reserve(a, b, 1)
			if err != nil {
				return false
			}
			flows = append(flows, fl.ID)
		}
		for _, id := range flows {
			if err := f.Release(id); err != nil {
				return false
			}
		}
		for _, l := range f.Links() {
			if l.ReservedGbps() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentReserveRelease(t *testing.T) {
	f := New()
	if _, err := BuildFatTree(f, "n", 4, 4, 4, 1e9, 1e9); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			a := fmt.Sprintf("n%d-0", g%4)
			b := fmt.Sprintf("n%d-1", (g+1)%4)
			for i := 0; i < 50; i++ {
				fl, err := f.Reserve(a, b, 1)
				if err != nil {
					t.Error(err)
					return
				}
				if err := f.Release(fl.ID); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, l := range f.Links() {
		if l.ReservedGbps() != 0 {
			t.Errorf("leaked reservation on %s-%s: %f", l.A, l.B, l.ReservedGbps())
		}
	}
}

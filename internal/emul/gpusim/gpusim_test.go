package gpusim

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func newPool(t *testing.T) *Pool {
	t.Helper()
	p := New()
	if err := p.AddGPU("gpu0", "A100", 40960, 7); err != nil {
		t.Fatal(err)
	}
	if err := p.AddGPU("gpu1", "A100", 40960, 7); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCarveAccountsSlices(t *testing.T) {
	p := newPool(t)
	id, err := p.Carve("gpu0", 3)
	if err != nil {
		t.Fatal(err)
	}
	if free := p.FreeSlices(); free != 11 {
		t.Errorf("free = %d", free)
	}
	part, err := p.Partition(id)
	if err != nil {
		t.Fatal(err)
	}
	if part.GPU != "gpu0" || part.Slices != 3 {
		t.Errorf("partition = %+v", part)
	}
}

func TestCarveOverCapacity(t *testing.T) {
	p := newPool(t)
	if _, err := p.Carve("gpu0", 8); !errors.Is(err, ErrNoCapacity) {
		t.Errorf("err = %v", err)
	}
	if _, err := p.Carve("ghost", 1); !errors.Is(err, ErrUnknownGPU) {
		t.Errorf("err = %v", err)
	}
}

func TestCarveAnyPicksMostFree(t *testing.T) {
	p := newPool(t)
	if _, err := p.Carve("gpu0", 4); err != nil {
		t.Fatal(err)
	}
	id, err := p.CarveAny(2)
	if err != nil {
		t.Fatal(err)
	}
	part, _ := p.Partition(id)
	if part.GPU != "gpu1" {
		t.Errorf("picked %s, want gpu1", part.GPU)
	}
	if _, err := p.CarveAny(8); !errors.Is(err, ErrNoCapacity) {
		t.Errorf("err = %v", err)
	}
}

func TestAttachDetachLifecycle(t *testing.T) {
	p := newPool(t)
	id, _ := p.Carve("gpu0", 1)
	if err := p.Attach(id, "node1"); err != nil {
		t.Fatal(err)
	}
	if err := p.Attach(id, "node2"); !errors.Is(err, ErrAlreadyAttached) {
		t.Errorf("double attach err = %v", err)
	}
	if err := p.Delete(id); !errors.Is(err, ErrAttached) {
		t.Errorf("delete attached err = %v", err)
	}
	if err := p.Detach(id); err != nil {
		t.Fatal(err)
	}
	if err := p.Detach(id); !errors.Is(err, ErrNotAttached) {
		t.Errorf("double detach err = %v", err)
	}
	if err := p.Delete(id); err != nil {
		t.Fatal(err)
	}
	if free := p.FreeSlices(); free != 14 {
		t.Errorf("free = %d", free)
	}
}

func TestEvents(t *testing.T) {
	p := newPool(t)
	var mu sync.Mutex
	var kinds []string
	p.Subscribe(func(e Event) {
		mu.Lock()
		kinds = append(kinds, e.Kind)
		mu.Unlock()
	})
	id, _ := p.Carve("gpu0", 1)
	_ = p.Attach(id, "n1")
	_ = p.Detach(id)
	_ = p.Delete(id)
	mu.Lock()
	defer mu.Unlock()
	want := []string{"PartitionCreated", "Attached", "Detached", "PartitionDeleted"}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("event[%d] = %s", i, kinds[i])
		}
	}
}

func TestDuplicateGPU(t *testing.T) {
	p := newPool(t)
	if err := p.AddGPU("gpu0", "x", 1, 1); !errors.Is(err, ErrDuplicate) {
		t.Errorf("err = %v", err)
	}
}

func TestPropertySliceConservation(t *testing.T) {
	prop := func(ops []uint8) bool {
		p := New()
		if err := p.AddGPU("g", "m", 1, 1000); err != nil {
			return false
		}
		var ids []string
		total := 0
		for _, op := range ops {
			n := int(op)%7 + 1
			id, err := p.Carve("g", n)
			if err != nil {
				return false
			}
			ids = append(ids, id)
			total += n
		}
		if p.FreeSlices() != 1000-total {
			return false
		}
		for _, id := range ids {
			if err := p.Delete(id); err != nil {
				return false
			}
		}
		return p.FreeSlices() == 1000
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentCarveDelete(t *testing.T) {
	p := New()
	if err := p.AddGPU("g", "m", 1, 100000); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id, err := p.Carve("g", 2)
				if err != nil {
					t.Error(err)
					return
				}
				if err := p.Attach(id, "h"); err != nil {
					t.Error(err)
					return
				}
				if err := p.Detach(id); err != nil {
					t.Error(err)
					return
				}
				if err := p.Delete(id); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if p.FreeSlices() != 100000 {
		t.Errorf("free = %d", p.FreeSlices())
	}
}

func TestListings(t *testing.T) {
	p := newPool(t)
	gpus := p.GPUs()
	if len(gpus) != 2 || gpus[0].ID != "gpu0" || gpus[0].FreeSlices() != 7 {
		t.Errorf("gpus = %+v", gpus)
	}
	id, _ := p.Carve("gpu1", 2)
	parts := p.Partitions()
	if len(parts) != 1 || parts[0].ID != id {
		t.Errorf("partitions = %+v", parts)
	}
}

// Package gpusim emulates a pooled GPU appliance: accelerator devices that
// can be partitioned (MIG-style fractional slices) and attached to hosts
// over the fabric. It provides the GPU composition substrate the paper
// lists in the OFMF project scope ("Network, GPU, and CPU Composition").
package gpusim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Sentinel errors.
var (
	ErrUnknownGPU       = errors.New("gpusim: unknown gpu")
	ErrUnknownPartition = errors.New("gpusim: unknown partition")
	ErrDuplicate        = errors.New("gpusim: duplicate id")
	ErrNoCapacity       = errors.New("gpusim: insufficient slices")
	ErrAttached         = errors.New("gpusim: partition attached")
	ErrNotAttached      = errors.New("gpusim: partition not attached")
	ErrAlreadyAttached  = errors.New("gpusim: partition already attached")
)

// GPU is one accelerator device. A GPU exposes Slices equal shares
// (MIG-style); a partition consumes one or more slices.
type GPU struct {
	ID        string
	Model     string
	MemoryMiB int64
	Slices    int
	used      int
}

// FreeSlices reports the unpartitioned slice count.
func (g *GPU) FreeSlices() int { return g.Slices - g.used }

// Partition is a carved GPU share attachable to one host.
type Partition struct {
	ID     string
	GPU    string
	Slices int
	Host   string // empty when detached
}

// Event describes a pool state change.
type Event struct {
	Kind      string // PartitionCreated, PartitionDeleted, Attached, Detached
	Partition string
	Host      string
}

// Listener receives pool events.
type Listener func(Event)

// Pool is the emulated GPU appliance.
type Pool struct {
	mu         sync.Mutex
	gpus       map[string]*GPU
	partitions map[string]*Partition
	nextPart   int
	listeners  []Listener
}

// New creates an empty pool.
func New() *Pool {
	return &Pool{gpus: make(map[string]*GPU), partitions: make(map[string]*Partition)}
}

// Subscribe registers a listener for pool events.
func (p *Pool) Subscribe(l Listener) {
	p.mu.Lock()
	p.listeners = append(p.listeners, l)
	p.mu.Unlock()
}

func (p *Pool) emit(ev Event) {
	p.mu.Lock()
	ls := p.listeners
	p.mu.Unlock()
	for _, l := range ls {
		l(ev)
	}
}

// AddGPU installs a device with the given slice count.
func (p *Pool) AddGPU(id, model string, memoryMiB int64, slices int) error {
	if slices < 1 {
		slices = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.gpus[id]; ok {
		return fmt.Errorf("%w: gpu %s", ErrDuplicate, id)
	}
	p.gpus[id] = &GPU{ID: id, Model: model, MemoryMiB: memoryMiB, Slices: slices}
	return nil
}

// Carve creates a partition of the given slice count on the GPU.
func (p *Pool) Carve(gpuID string, slices int) (string, error) {
	if slices < 1 {
		slices = 1
	}
	p.mu.Lock()
	g, ok := p.gpus[gpuID]
	if !ok {
		p.mu.Unlock()
		return "", fmt.Errorf("%w: %s", ErrUnknownGPU, gpuID)
	}
	if g.used+slices > g.Slices {
		p.mu.Unlock()
		return "", fmt.Errorf("%w: gpu %s has %d slices free, need %d",
			ErrNoCapacity, gpuID, g.Slices-g.used, slices)
	}
	g.used += slices
	p.nextPart++
	id := fmt.Sprintf("part-%d", p.nextPart)
	p.partitions[id] = &Partition{ID: id, GPU: gpuID, Slices: slices}
	p.mu.Unlock()
	p.emit(Event{Kind: "PartitionCreated", Partition: id})
	return id, nil
}

// CarveAny creates a partition on whichever GPU has the most free slices.
func (p *Pool) CarveAny(slices int) (string, error) {
	if slices < 1 {
		slices = 1
	}
	p.mu.Lock()
	var best string
	bestFree := -1
	ids := make([]string, 0, len(p.gpus))
	for id := range p.gpus {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		g := p.gpus[id]
		free := g.Slices - g.used
		if free >= slices && free > bestFree {
			best, bestFree = id, free
		}
	}
	p.mu.Unlock()
	if best == "" {
		return "", fmt.Errorf("%w: no gpu with %d slices free", ErrNoCapacity, slices)
	}
	return p.Carve(best, slices)
}

// Delete frees a partition; it must be detached.
func (p *Pool) Delete(partID string) error {
	p.mu.Lock()
	part, ok := p.partitions[partID]
	if !ok {
		p.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownPartition, partID)
	}
	if part.Host != "" {
		p.mu.Unlock()
		return fmt.Errorf("%w: %s on %s", ErrAttached, partID, part.Host)
	}
	if g, ok := p.gpus[part.GPU]; ok {
		g.used -= part.Slices
	}
	delete(p.partitions, partID)
	p.mu.Unlock()
	p.emit(Event{Kind: "PartitionDeleted", Partition: partID})
	return nil
}

// Attach binds the partition to a host.
func (p *Pool) Attach(partID, host string) error {
	p.mu.Lock()
	part, ok := p.partitions[partID]
	if !ok {
		p.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownPartition, partID)
	}
	if part.Host != "" {
		p.mu.Unlock()
		return fmt.Errorf("%w: %s on %s", ErrAlreadyAttached, partID, part.Host)
	}
	part.Host = host
	p.mu.Unlock()
	p.emit(Event{Kind: "Attached", Partition: partID, Host: host})
	return nil
}

// Detach unbinds the partition from its host.
func (p *Pool) Detach(partID string) error {
	p.mu.Lock()
	part, ok := p.partitions[partID]
	if !ok {
		p.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownPartition, partID)
	}
	if part.Host == "" {
		p.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotAttached, partID)
	}
	host := part.Host
	part.Host = ""
	p.mu.Unlock()
	p.emit(Event{Kind: "Detached", Partition: partID, Host: host})
	return nil
}

// GPUs returns snapshots of all devices, sorted by id.
func (p *Pool) GPUs() []GPU {
	p.mu.Lock()
	defer p.mu.Unlock()
	ids := make([]string, 0, len(p.gpus))
	for id := range p.gpus {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]GPU, len(ids))
	for i, id := range ids {
		out[i] = *p.gpus[id]
	}
	return out
}

// Partitions returns snapshots of all partitions, sorted by id.
func (p *Pool) Partitions() []Partition {
	p.mu.Lock()
	defer p.mu.Unlock()
	ids := make([]string, 0, len(p.partitions))
	for id := range p.partitions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]Partition, len(ids))
	for i, id := range ids {
		out[i] = *p.partitions[id]
	}
	return out
}

// Partition returns a snapshot of the partition with the given id.
func (p *Pool) Partition(id string) (Partition, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	part, ok := p.partitions[id]
	if !ok {
		return Partition{}, fmt.Errorf("%w: %s", ErrUnknownPartition, id)
	}
	return *part, nil
}

// FreeSlices reports the total free slices across the pool.
func (p *Pool) FreeSlices() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	free := 0
	for _, g := range p.gpus {
		free += g.Slices - g.used
	}
	return free
}

// Package nvmesim emulates an NVMe-over-Fabrics storage target: drives
// grouped into capacity pools, volumes (namespaces) carved from pools and
// exported through subsystems, and host connections establishing
// controllers. It stands in for the JBOF/disaggregated-storage appliances
// the paper's composable architecture pools, exposing the operations an
// NVMe-oF fabric agent performs.
package nvmesim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Sentinel errors.
var (
	ErrUnknownPool      = errors.New("nvmesim: unknown pool")
	ErrUnknownVolume    = errors.New("nvmesim: unknown volume")
	ErrUnknownSubsystem = errors.New("nvmesim: unknown subsystem")
	ErrUnknownHost      = errors.New("nvmesim: unknown connection")
	ErrCapacity         = errors.New("nvmesim: insufficient capacity")
	ErrVolumeBusy       = errors.New("nvmesim: volume attached to subsystem")
	ErrDuplicate        = errors.New("nvmesim: duplicate id")
	ErrNotAttached      = errors.New("nvmesim: volume not attached")
	ErrAlreadyAttached  = errors.New("nvmesim: volume already attached")
	ErrNotConnected     = errors.New("nvmesim: host not connected")
	ErrAlreadyConnected = errors.New("nvmesim: host already connected")
	ErrACL              = errors.New("nvmesim: host not allowed by subsystem")
)

// Pool is a capacity pool backed by drives.
type Pool struct {
	ID            string
	CapacityBytes int64
	allocated     int64
}

// AllocatedBytes reports the bytes carved into volumes.
func (p *Pool) AllocatedBytes() int64 { return p.allocated }

// Volume is a provisioned namespace.
type Volume struct {
	ID        string
	Pool      string
	Bytes     int64
	Subsystem string // empty when unattached
}

// Subsystem is an NVMe subsystem (NQN) exporting namespaces to hosts.
type Subsystem struct {
	NQN        string
	allowed    map[string]struct{} // host NQNs; empty = allow any
	namespaces map[string]struct{} // volume ids
	hosts      map[string]struct{} // connected host NQNs
}

// Namespaces returns the attached volume ids, sorted.
func (s *Subsystem) Namespaces() []string { return sortedKeys(s.namespaces) }

// Hosts returns the connected host NQNs, sorted.
func (s *Subsystem) Hosts() []string { return sortedKeys(s.hosts) }

func sortedKeys(m map[string]struct{}) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Event describes a target state change.
type Event struct {
	Kind      string // VolumeCreated, VolumeDeleted, Attached, Detached, HostConnected, HostDisconnected
	Volume    string
	Subsystem string
	Host      string
}

// Listener receives target events.
type Listener func(Event)

// Target is the emulated NVMe-oF target.
type Target struct {
	mu         sync.Mutex
	pools      map[string]*Pool
	volumes    map[string]*Volume
	subsystems map[string]*Subsystem
	nextVolume int
	listeners  []Listener
}

// New creates an empty target.
func New() *Target {
	return &Target{
		pools:      make(map[string]*Pool),
		volumes:    make(map[string]*Volume),
		subsystems: make(map[string]*Subsystem),
	}
}

// Subscribe registers a listener for target events.
func (t *Target) Subscribe(l Listener) {
	t.mu.Lock()
	t.listeners = append(t.listeners, l)
	t.mu.Unlock()
}

func (t *Target) emit(ev Event) {
	t.mu.Lock()
	ls := t.listeners
	t.mu.Unlock()
	for _, l := range ls {
		l(ev)
	}
}

// AddPool installs a capacity pool.
func (t *Target) AddPool(id string, capacityBytes int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.pools[id]; ok {
		return fmt.Errorf("%w: pool %s", ErrDuplicate, id)
	}
	t.pools[id] = &Pool{ID: id, CapacityBytes: capacityBytes}
	return nil
}

// AddSubsystem installs a subsystem. allowedHosts restricts which host
// NQNs may connect; empty means any host.
func (t *Target) AddSubsystem(nqn string, allowedHosts []string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.subsystems[nqn]; ok {
		return fmt.Errorf("%w: subsystem %s", ErrDuplicate, nqn)
	}
	allowed := make(map[string]struct{}, len(allowedHosts))
	for _, h := range allowedHosts {
		allowed[h] = struct{}{}
	}
	t.subsystems[nqn] = &Subsystem{
		NQN:        nqn,
		allowed:    allowed,
		namespaces: make(map[string]struct{}),
		hosts:      make(map[string]struct{}),
	}
	return nil
}

// AllowHost adds a host NQN to a subsystem's access list.
func (t *Target) AllowHost(subsysNQN, hostNQN string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.subsystems[subsysNQN]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownSubsystem, subsysNQN)
	}
	s.allowed[hostNQN] = struct{}{}
	return nil
}

// CreateVolume carves a volume from the pool and returns its id.
func (t *Target) CreateVolume(poolID string, bytes int64) (string, error) {
	t.mu.Lock()
	p, ok := t.pools[poolID]
	if !ok {
		t.mu.Unlock()
		return "", fmt.Errorf("%w: %s", ErrUnknownPool, poolID)
	}
	if p.allocated+bytes > p.CapacityBytes {
		t.mu.Unlock()
		return "", fmt.Errorf("%w: pool %s has %d bytes free, need %d",
			ErrCapacity, poolID, p.CapacityBytes-p.allocated, bytes)
	}
	p.allocated += bytes
	t.nextVolume++
	id := fmt.Sprintf("vol-%d", t.nextVolume)
	t.volumes[id] = &Volume{ID: id, Pool: poolID, Bytes: bytes}
	t.mu.Unlock()
	t.emit(Event{Kind: "VolumeCreated", Volume: id})
	return id, nil
}

// DeleteVolume frees a volume. The volume must be detached.
func (t *Target) DeleteVolume(id string) error {
	t.mu.Lock()
	v, ok := t.volumes[id]
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownVolume, id)
	}
	if v.Subsystem != "" {
		t.mu.Unlock()
		return fmt.Errorf("%w: %s in %s", ErrVolumeBusy, id, v.Subsystem)
	}
	if p, ok := t.pools[v.Pool]; ok {
		p.allocated -= v.Bytes
	}
	delete(t.volumes, id)
	t.mu.Unlock()
	t.emit(Event{Kind: "VolumeDeleted", Volume: id})
	return nil
}

// Attach exports the volume as a namespace of the subsystem.
func (t *Target) Attach(volumeID, subsysNQN string) error {
	t.mu.Lock()
	v, ok := t.volumes[volumeID]
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownVolume, volumeID)
	}
	s, ok := t.subsystems[subsysNQN]
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownSubsystem, subsysNQN)
	}
	if v.Subsystem != "" {
		t.mu.Unlock()
		return fmt.Errorf("%w: %s in %s", ErrAlreadyAttached, volumeID, v.Subsystem)
	}
	v.Subsystem = subsysNQN
	s.namespaces[volumeID] = struct{}{}
	t.mu.Unlock()
	t.emit(Event{Kind: "Attached", Volume: volumeID, Subsystem: subsysNQN})
	return nil
}

// Detach removes the volume from its subsystem.
func (t *Target) Detach(volumeID string) error {
	t.mu.Lock()
	v, ok := t.volumes[volumeID]
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownVolume, volumeID)
	}
	if v.Subsystem == "" {
		t.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotAttached, volumeID)
	}
	nqn := v.Subsystem
	if s, ok := t.subsystems[nqn]; ok {
		delete(s.namespaces, volumeID)
	}
	v.Subsystem = ""
	t.mu.Unlock()
	t.emit(Event{Kind: "Detached", Volume: volumeID, Subsystem: nqn})
	return nil
}

// Connect establishes a host controller on the subsystem. The host must be
// on the subsystem's access list (when one is configured).
func (t *Target) Connect(hostNQN, subsysNQN string) error {
	t.mu.Lock()
	s, ok := t.subsystems[subsysNQN]
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownSubsystem, subsysNQN)
	}
	if len(s.allowed) > 0 {
		if _, ok := s.allowed[hostNQN]; !ok {
			t.mu.Unlock()
			return fmt.Errorf("%w: %s on %s", ErrACL, hostNQN, subsysNQN)
		}
	}
	if _, ok := s.hosts[hostNQN]; ok {
		t.mu.Unlock()
		return fmt.Errorf("%w: %s on %s", ErrAlreadyConnected, hostNQN, subsysNQN)
	}
	s.hosts[hostNQN] = struct{}{}
	t.mu.Unlock()
	t.emit(Event{Kind: "HostConnected", Subsystem: subsysNQN, Host: hostNQN})
	return nil
}

// Disconnect tears down the host's controller on the subsystem.
func (t *Target) Disconnect(hostNQN, subsysNQN string) error {
	t.mu.Lock()
	s, ok := t.subsystems[subsysNQN]
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownSubsystem, subsysNQN)
	}
	if _, ok := s.hosts[hostNQN]; !ok {
		t.mu.Unlock()
		return fmt.Errorf("%w: %s on %s", ErrNotConnected, hostNQN, subsysNQN)
	}
	delete(s.hosts, hostNQN)
	t.mu.Unlock()
	t.emit(Event{Kind: "HostDisconnected", Subsystem: subsysNQN, Host: hostNQN})
	return nil
}

// Pool returns a snapshot of the pool with the given id.
func (t *Target) Pool(id string) (Pool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.pools[id]
	if !ok {
		return Pool{}, fmt.Errorf("%w: %s", ErrUnknownPool, id)
	}
	return *p, nil
}

// Pools returns snapshots of all pools, sorted by id.
func (t *Target) Pools() []Pool {
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := make([]string, 0, len(t.pools))
	for id := range t.pools {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]Pool, len(ids))
	for i, id := range ids {
		out[i] = *t.pools[id]
	}
	return out
}

// Volume returns a snapshot of the volume with the given id.
func (t *Target) Volume(id string) (Volume, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	v, ok := t.volumes[id]
	if !ok {
		return Volume{}, fmt.Errorf("%w: %s", ErrUnknownVolume, id)
	}
	return *v, nil
}

// Volumes returns snapshots of all volumes, sorted by id.
func (t *Target) Volumes() []Volume {
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := make([]string, 0, len(t.volumes))
	for id := range t.volumes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]Volume, len(ids))
	for i, id := range ids {
		out[i] = *t.volumes[id]
	}
	return out
}

// SubsystemInfo returns a snapshot of the subsystem with the given NQN.
func (t *Target) SubsystemInfo(nqn string) (Subsystem, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.subsystems[nqn]
	if !ok {
		return Subsystem{}, fmt.Errorf("%w: %s", ErrUnknownSubsystem, nqn)
	}
	cp := Subsystem{NQN: s.NQN, allowed: cloneSet(s.allowed), namespaces: cloneSet(s.namespaces), hosts: cloneSet(s.hosts)}
	return cp, nil
}

// Subsystems returns all subsystem NQNs, sorted.
func (t *Target) Subsystems() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return sortedKeys(toSet(t.subsystems))
}

func toSet[V any](m map[string]V) map[string]struct{} {
	out := make(map[string]struct{}, len(m))
	for k := range m {
		out[k] = struct{}{}
	}
	return out
}

func cloneSet(m map[string]struct{}) map[string]struct{} {
	out := make(map[string]struct{}, len(m))
	for k := range m {
		out[k] = struct{}{}
	}
	return out
}

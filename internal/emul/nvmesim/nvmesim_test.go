package nvmesim

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

const (
	subsys = "nqn.2023-05.org.ofmf:subsys1"
	hostA  = "nqn.2023-05.org.ofmf:hostA"
	hostB  = "nqn.2023-05.org.ofmf:hostB"
)

func newTarget(t *testing.T) *Target {
	t.Helper()
	tg := New()
	if err := tg.AddPool("pool0", 1_000_000); err != nil {
		t.Fatal(err)
	}
	if err := tg.AddSubsystem(subsys, nil); err != nil {
		t.Fatal(err)
	}
	return tg
}

func TestVolumeLifecycle(t *testing.T) {
	tg := newTarget(t)
	id, err := tg.CreateVolume("pool0", 100_000)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := tg.Pool("pool0")
	if p.AllocatedBytes() != 100_000 {
		t.Errorf("allocated = %d", p.AllocatedBytes())
	}
	if err := tg.DeleteVolume(id); err != nil {
		t.Fatal(err)
	}
	p, _ = tg.Pool("pool0")
	if p.AllocatedBytes() != 0 {
		t.Errorf("allocated after delete = %d", p.AllocatedBytes())
	}
	if err := tg.DeleteVolume(id); !errors.Is(err, ErrUnknownVolume) {
		t.Errorf("double delete err = %v", err)
	}
}

func TestCreateVolumeOverCapacity(t *testing.T) {
	tg := newTarget(t)
	if _, err := tg.CreateVolume("pool0", 2_000_000); !errors.Is(err, ErrCapacity) {
		t.Errorf("err = %v", err)
	}
	if _, err := tg.CreateVolume("ghost", 1); !errors.Is(err, ErrUnknownPool) {
		t.Errorf("err = %v", err)
	}
}

func TestAttachDetach(t *testing.T) {
	tg := newTarget(t)
	id, err := tg.CreateVolume("pool0", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := tg.Attach(id, subsys); err != nil {
		t.Fatal(err)
	}
	if err := tg.Attach(id, subsys); !errors.Is(err, ErrAlreadyAttached) {
		t.Errorf("double attach err = %v", err)
	}
	s, err := tg.SubsystemInfo(subsys)
	if err != nil {
		t.Fatal(err)
	}
	if ns := s.Namespaces(); len(ns) != 1 || ns[0] != id {
		t.Errorf("namespaces = %v", ns)
	}
	if err := tg.DeleteVolume(id); !errors.Is(err, ErrVolumeBusy) {
		t.Errorf("busy delete err = %v", err)
	}
	if err := tg.Detach(id); err != nil {
		t.Fatal(err)
	}
	if err := tg.Detach(id); !errors.Is(err, ErrNotAttached) {
		t.Errorf("double detach err = %v", err)
	}
	if err := tg.DeleteVolume(id); err != nil {
		t.Fatal(err)
	}
}

func TestHostConnectACL(t *testing.T) {
	tg := New()
	if err := tg.AddSubsystem(subsys, []string{hostA}); err != nil {
		t.Fatal(err)
	}
	if err := tg.Connect(hostB, subsys); !errors.Is(err, ErrACL) {
		t.Errorf("ACL err = %v", err)
	}
	if err := tg.Connect(hostA, subsys); err != nil {
		t.Fatal(err)
	}
	if err := tg.Connect(hostA, subsys); !errors.Is(err, ErrAlreadyConnected) {
		t.Errorf("double connect err = %v", err)
	}
	if err := tg.AllowHost(subsys, hostB); err != nil {
		t.Fatal(err)
	}
	if err := tg.Connect(hostB, subsys); err != nil {
		t.Errorf("connect after allow: %v", err)
	}
	s, _ := tg.SubsystemInfo(subsys)
	if got := s.Hosts(); len(got) != 2 {
		t.Errorf("hosts = %v", got)
	}
	if err := tg.Disconnect(hostA, subsys); err != nil {
		t.Fatal(err)
	}
	if err := tg.Disconnect(hostA, subsys); !errors.Is(err, ErrNotConnected) {
		t.Errorf("double disconnect err = %v", err)
	}
}

func TestOpenSubsystemAllowsAnyHost(t *testing.T) {
	tg := newTarget(t)
	if err := tg.Connect(hostB, subsys); err != nil {
		t.Errorf("open subsystem rejected host: %v", err)
	}
}

func TestDuplicateIDs(t *testing.T) {
	tg := newTarget(t)
	if err := tg.AddPool("pool0", 1); !errors.Is(err, ErrDuplicate) {
		t.Errorf("err = %v", err)
	}
	if err := tg.AddSubsystem(subsys, nil); !errors.Is(err, ErrDuplicate) {
		t.Errorf("err = %v", err)
	}
}

func TestEvents(t *testing.T) {
	tg := newTarget(t)
	var mu sync.Mutex
	var kinds []string
	tg.Subscribe(func(e Event) {
		mu.Lock()
		kinds = append(kinds, e.Kind)
		mu.Unlock()
	})
	id, _ := tg.CreateVolume("pool0", 10)
	_ = tg.Attach(id, subsys)
	_ = tg.Connect(hostA, subsys)
	_ = tg.Disconnect(hostA, subsys)
	_ = tg.Detach(id)
	_ = tg.DeleteVolume(id)
	mu.Lock()
	defer mu.Unlock()
	want := []string{"VolumeCreated", "Attached", "HostConnected", "HostDisconnected", "Detached", "VolumeDeleted"}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("event[%d] = %s, want %s", i, kinds[i], want[i])
		}
	}
}

func TestListings(t *testing.T) {
	tg := newTarget(t)
	v1, _ := tg.CreateVolume("pool0", 10)
	v2, _ := tg.CreateVolume("pool0", 20)
	vols := tg.Volumes()
	if len(vols) != 2 || vols[0].ID != v1 || vols[1].ID != v2 {
		t.Errorf("volumes = %v", vols)
	}
	if got := tg.Subsystems(); len(got) != 1 || got[0] != subsys {
		t.Errorf("subsystems = %v", got)
	}
	if got := tg.Pools(); len(got) != 1 || got[0].ID != "pool0" {
		t.Errorf("pools = %v", got)
	}
}

func TestPropertyPoolConservation(t *testing.T) {
	prop := func(sizes []uint16) bool {
		tg := New()
		if err := tg.AddPool("p", 1<<40); err != nil {
			return false
		}
		var ids []string
		var sum int64
		for _, s := range sizes {
			size := int64(s) + 1
			id, err := tg.CreateVolume("p", size)
			if err != nil {
				return false
			}
			ids = append(ids, id)
			sum += size
		}
		p, _ := tg.Pool("p")
		if p.AllocatedBytes() != sum {
			return false
		}
		for _, id := range ids {
			if err := tg.DeleteVolume(id); err != nil {
				return false
			}
		}
		p, _ = tg.Pool("p")
		return p.AllocatedBytes() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentVolumeOps(t *testing.T) {
	tg := newTarget(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id, err := tg.CreateVolume("pool0", 16)
				if err != nil {
					t.Error(err)
					return
				}
				if err := tg.Attach(id, subsys); err != nil {
					t.Error(err)
					return
				}
				if err := tg.Detach(id); err != nil {
					t.Error(err)
					return
				}
				if err := tg.DeleteVolume(id); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	p, _ := tg.Pool("pool0")
	if p.AllocatedBytes() != 0 {
		t.Errorf("allocated = %d", p.AllocatedBytes())
	}
}

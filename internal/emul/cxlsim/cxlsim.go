// Package cxlsim emulates a CXL fabric-attached memory appliance: a pool
// of memory devices behind a CXL switch whose capacity can be carved into
// chunks and bound to host ports. It models the operations a real CXL 2.0
// switch's fabric manager performs — logical-device carving, bind/unbind
// with realistic latency, multi-headed sharing — so the OFMF's CXL Agent
// exercises the same code paths the paper's hardware would.
package cxlsim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Sentinel errors.
var (
	ErrUnknownDevice = errors.New("cxlsim: unknown device")
	ErrUnknownChunk  = errors.New("cxlsim: unknown chunk")
	ErrUnknownPort   = errors.New("cxlsim: unknown port")
	ErrCapacity      = errors.New("cxlsim: insufficient capacity")
	ErrAlreadyBound  = errors.New("cxlsim: chunk already bound to port")
	ErrNotBound      = errors.New("cxlsim: chunk not bound to port")
	ErrChunkBusy     = errors.New("cxlsim: chunk has active bindings")
	ErrHeadLimit     = errors.New("cxlsim: multi-head limit reached")
	ErrDuplicate     = errors.New("cxlsim: duplicate id")
)

// Device is one memory device (an expander module) in the appliance.
type Device struct {
	ID          string
	CapacityMiB int64
	MediaType   string // DRAM, PMEM
	allocated   int64
}

// AllocatedMiB reports the capacity carved out of the device.
func (d *Device) AllocatedMiB() int64 { return d.allocated }

// Chunk is a carved memory region that can be bound to host ports.
type Chunk struct {
	ID       string
	Device   string
	SizeMiB  int64
	MaxHeads int
	bound    map[string]struct{}
}

// BoundPorts returns the ports the chunk is currently bound to, sorted.
func (c *Chunk) BoundPorts() []string {
	ports := make([]string, 0, len(c.bound))
	for p := range c.bound {
		ports = append(ports, p)
	}
	sort.Strings(ports)
	return ports
}

// Event describes an appliance state change.
type Event struct {
	Kind  string // ChunkCreated, ChunkReleased, Bound, Unbound
	Chunk string
	Port  string
}

// Listener receives appliance events.
type Listener func(Event)

// LatencyModel gives the simulated durations of management operations.
// The defaults approximate published CXL switch bind/unbind times.
type LatencyModel struct {
	Carve  time.Duration
	Bind   time.Duration
	Unbind time.Duration
}

// DefaultLatency returns the default management-operation latency model.
func DefaultLatency() LatencyModel {
	return LatencyModel{Carve: 2 * time.Millisecond, Bind: 10 * time.Millisecond, Unbind: 5 * time.Millisecond}
}

// Appliance is the emulated memory appliance.
type Appliance struct {
	latency LatencyModel
	sleep   func(time.Duration)

	mu        sync.Mutex
	devices   map[string]*Device
	chunks    map[string]*Chunk
	ports     map[string]struct{}
	nextChunk int
	listeners []Listener

	binds   int64
	unbinds int64
}

// Option configures the appliance.
type Option func(*Appliance)

// WithLatency overrides the management latency model.
func WithLatency(m LatencyModel) Option { return func(a *Appliance) { a.latency = m } }

// WithoutSleep disables real sleeping for management latency; operations
// still account their nominal durations but return immediately (used by
// fast tests and the discrete-event harness).
func WithoutSleep() Option { return func(a *Appliance) { a.sleep = func(time.Duration) {} } }

// New creates an empty appliance.
func New(opts ...Option) *Appliance {
	a := &Appliance{
		latency: DefaultLatency(),
		sleep:   time.Sleep,
		devices: make(map[string]*Device),
		chunks:  make(map[string]*Chunk),
		ports:   make(map[string]struct{}),
	}
	for _, o := range opts {
		o(a)
	}
	return a
}

// Subscribe registers a listener for appliance events.
func (a *Appliance) Subscribe(l Listener) {
	a.mu.Lock()
	a.listeners = append(a.listeners, l)
	a.mu.Unlock()
}

func (a *Appliance) emit(ev Event) {
	a.mu.Lock()
	ls := a.listeners
	a.mu.Unlock()
	for _, l := range ls {
		l(ev)
	}
}

// AddDevice installs a memory device.
func (a *Appliance) AddDevice(id string, capacityMiB int64, mediaType string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.devices[id]; ok {
		return fmt.Errorf("%w: device %s", ErrDuplicate, id)
	}
	a.devices[id] = &Device{ID: id, CapacityMiB: capacityMiB, MediaType: mediaType}
	return nil
}

// AddPort installs a host-facing port.
func (a *Appliance) AddPort(id string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.ports[id]; ok {
		return fmt.Errorf("%w: port %s", ErrDuplicate, id)
	}
	a.ports[id] = struct{}{}
	return nil
}

// Devices returns snapshots of all devices, sorted by id.
func (a *Appliance) Devices() []Device {
	a.mu.Lock()
	defer a.mu.Unlock()
	ids := make([]string, 0, len(a.devices))
	for id := range a.devices {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]Device, len(ids))
	for i, id := range ids {
		out[i] = *a.devices[id]
	}
	return out
}

// Ports returns all port ids, sorted.
func (a *Appliance) Ports() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	ids := make([]string, 0, len(a.ports))
	for id := range a.ports {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// FreeMiB reports the total uncarved capacity across devices.
func (a *Appliance) FreeMiB() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var free int64
	for _, d := range a.devices {
		free += d.CapacityMiB - d.allocated
	}
	return free
}

// Carve allocates a chunk of sizeMiB from the given device. maxHeads
// bounds simultaneous bindings (1 = exclusive; >1 = multi-headed shared
// memory). It returns the chunk id.
func (a *Appliance) Carve(deviceID string, sizeMiB int64, maxHeads int) (string, error) {
	if maxHeads < 1 {
		maxHeads = 1
	}
	a.mu.Lock()
	d, ok := a.devices[deviceID]
	if !ok {
		a.mu.Unlock()
		return "", fmt.Errorf("%w: %s", ErrUnknownDevice, deviceID)
	}
	if d.allocated+sizeMiB > d.CapacityMiB {
		a.mu.Unlock()
		return "", fmt.Errorf("%w: device %s has %d MiB free, need %d",
			ErrCapacity, deviceID, d.CapacityMiB-d.allocated, sizeMiB)
	}
	d.allocated += sizeMiB
	a.nextChunk++
	id := fmt.Sprintf("chunk-%d", a.nextChunk)
	a.chunks[id] = &Chunk{
		ID:       id,
		Device:   deviceID,
		SizeMiB:  sizeMiB,
		MaxHeads: maxHeads,
		bound:    make(map[string]struct{}),
	}
	a.mu.Unlock()
	a.sleep(a.latency.Carve)
	a.emit(Event{Kind: "ChunkCreated", Chunk: id})
	return id, nil
}

// CarveAny allocates a chunk from whichever device has the most free
// capacity (best-fit-decreasing heuristic used by pooled appliances).
func (a *Appliance) CarveAny(sizeMiB int64, maxHeads int) (string, error) {
	a.mu.Lock()
	var best string
	var bestFree int64 = -1
	ids := make([]string, 0, len(a.devices))
	for id := range a.devices {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		d := a.devices[id]
		free := d.CapacityMiB - d.allocated
		if free >= sizeMiB && free > bestFree {
			best, bestFree = id, free
		}
	}
	a.mu.Unlock()
	if best == "" {
		return "", fmt.Errorf("%w: no device with %d MiB free", ErrCapacity, sizeMiB)
	}
	return a.Carve(best, sizeMiB, maxHeads)
}

// Release frees a chunk. The chunk must have no active bindings.
func (a *Appliance) Release(chunkID string) error {
	a.mu.Lock()
	c, ok := a.chunks[chunkID]
	if !ok {
		a.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownChunk, chunkID)
	}
	if len(c.bound) > 0 {
		a.mu.Unlock()
		return fmt.Errorf("%w: %s bound to %v", ErrChunkBusy, chunkID, c.BoundPorts())
	}
	if d, ok := a.devices[c.Device]; ok {
		d.allocated -= c.SizeMiB
	}
	delete(a.chunks, chunkID)
	a.mu.Unlock()
	a.emit(Event{Kind: "ChunkReleased", Chunk: chunkID})
	return nil
}

// Bind attaches the chunk to a host port. Binding takes the configured
// bind latency, emulating the switch fabric manager's virtual-to-physical
// binding operation.
func (a *Appliance) Bind(chunkID, portID string) error {
	a.mu.Lock()
	c, ok := a.chunks[chunkID]
	if !ok {
		a.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownChunk, chunkID)
	}
	if _, ok := a.ports[portID]; !ok {
		a.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownPort, portID)
	}
	if _, ok := c.bound[portID]; ok {
		a.mu.Unlock()
		return fmt.Errorf("%w: %s -> %s", ErrAlreadyBound, chunkID, portID)
	}
	if len(c.bound) >= c.MaxHeads {
		a.mu.Unlock()
		return fmt.Errorf("%w: %s limited to %d heads", ErrHeadLimit, chunkID, c.MaxHeads)
	}
	c.bound[portID] = struct{}{}
	a.binds++
	a.mu.Unlock()
	a.sleep(a.latency.Bind)
	a.emit(Event{Kind: "Bound", Chunk: chunkID, Port: portID})
	return nil
}

// Unbind detaches the chunk from a host port.
func (a *Appliance) Unbind(chunkID, portID string) error {
	a.mu.Lock()
	c, ok := a.chunks[chunkID]
	if !ok {
		a.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownChunk, chunkID)
	}
	if _, ok := c.bound[portID]; !ok {
		a.mu.Unlock()
		return fmt.Errorf("%w: %s -> %s", ErrNotBound, chunkID, portID)
	}
	delete(c.bound, portID)
	a.unbinds++
	a.mu.Unlock()
	a.sleep(a.latency.Unbind)
	a.emit(Event{Kind: "Unbound", Chunk: chunkID, Port: portID})
	return nil
}

// Chunk returns a snapshot of the chunk with the given id.
func (a *Appliance) Chunk(id string) (Chunk, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	c, ok := a.chunks[id]
	if !ok {
		return Chunk{}, fmt.Errorf("%w: %s", ErrUnknownChunk, id)
	}
	return snapshotChunk(c), nil
}

// Chunks returns snapshots of all chunks, sorted by id.
func (a *Appliance) Chunks() []Chunk {
	a.mu.Lock()
	defer a.mu.Unlock()
	ids := make([]string, 0, len(a.chunks))
	for id := range a.chunks {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]Chunk, len(ids))
	for i, id := range ids {
		out[i] = snapshotChunk(a.chunks[id])
	}
	return out
}

func snapshotChunk(c *Chunk) Chunk {
	cp := *c
	cp.bound = make(map[string]struct{}, len(c.bound))
	for p := range c.bound {
		cp.bound[p] = struct{}{}
	}
	return cp
}

// Counters reports lifetime bind/unbind counts (telemetry).
func (a *Appliance) Counters() (binds, unbinds int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.binds, a.unbinds
}

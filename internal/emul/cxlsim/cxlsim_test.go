package cxlsim

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func newAppliance(t *testing.T) *Appliance {
	t.Helper()
	a := New(WithoutSleep())
	if err := a.AddDevice("dev0", 1024, "DRAM"); err != nil {
		t.Fatal(err)
	}
	if err := a.AddDevice("dev1", 2048, "DRAM"); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"p0", "p1", "p2"} {
		if err := a.AddPort(p); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

func TestCarveAccountsCapacity(t *testing.T) {
	a := newAppliance(t)
	id, err := a.Carve("dev0", 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	if free := a.FreeMiB(); free != 1024+2048-512 {
		t.Errorf("free = %d", free)
	}
	c, err := a.Chunk(id)
	if err != nil {
		t.Fatal(err)
	}
	if c.SizeMiB != 512 || c.Device != "dev0" {
		t.Errorf("chunk = %+v", c)
	}
}

func TestCarveRejectsOverCapacity(t *testing.T) {
	a := newAppliance(t)
	if _, err := a.Carve("dev0", 2000, 1); !errors.Is(err, ErrCapacity) {
		t.Errorf("err = %v", err)
	}
	if _, err := a.Carve("ghost", 10, 1); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("err = %v", err)
	}
}

func TestCarveAnyPicksMostFree(t *testing.T) {
	a := newAppliance(t)
	id, err := a.CarveAny(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := a.Chunk(id)
	if c.Device != "dev1" { // dev1 has 2048 free vs dev0's 1024
		t.Errorf("device = %s", c.Device)
	}
	if _, err := a.CarveAny(4096, 1); !errors.Is(err, ErrCapacity) {
		t.Errorf("err = %v", err)
	}
}

func TestBindUnbindLifecycle(t *testing.T) {
	a := newAppliance(t)
	id, err := a.Carve("dev0", 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Bind(id, "p0"); err != nil {
		t.Fatal(err)
	}
	c, _ := a.Chunk(id)
	if got := c.BoundPorts(); len(got) != 1 || got[0] != "p0" {
		t.Errorf("bound = %v", got)
	}
	if err := a.Bind(id, "p0"); !errors.Is(err, ErrAlreadyBound) {
		t.Errorf("double bind err = %v", err)
	}
	// Exclusive chunk: second port rejected.
	if err := a.Bind(id, "p1"); !errors.Is(err, ErrHeadLimit) {
		t.Errorf("head limit err = %v", err)
	}
	if err := a.Unbind(id, "p0"); err != nil {
		t.Fatal(err)
	}
	if err := a.Unbind(id, "p0"); !errors.Is(err, ErrNotBound) {
		t.Errorf("double unbind err = %v", err)
	}
	binds, unbinds := a.Counters()
	if binds != 1 || unbinds != 1 {
		t.Errorf("counters = %d/%d", binds, unbinds)
	}
}

func TestMultiHeadedSharing(t *testing.T) {
	a := newAppliance(t)
	id, err := a.Carve("dev1", 256, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Bind(id, "p0"); err != nil {
		t.Fatal(err)
	}
	if err := a.Bind(id, "p1"); err != nil {
		t.Fatal(err)
	}
	if err := a.Bind(id, "p2"); !errors.Is(err, ErrHeadLimit) {
		t.Errorf("third head err = %v", err)
	}
}

func TestReleaseRequiresUnbound(t *testing.T) {
	a := newAppliance(t)
	id, err := a.Carve("dev0", 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Bind(id, "p0"); err != nil {
		t.Fatal(err)
	}
	if err := a.Release(id); !errors.Is(err, ErrChunkBusy) {
		t.Errorf("busy release err = %v", err)
	}
	if err := a.Unbind(id, "p0"); err != nil {
		t.Fatal(err)
	}
	if err := a.Release(id); err != nil {
		t.Fatal(err)
	}
	if free := a.FreeMiB(); free != 3072 {
		t.Errorf("free after release = %d", free)
	}
	if err := a.Release(id); !errors.Is(err, ErrUnknownChunk) {
		t.Errorf("double release err = %v", err)
	}
}

func TestBindValidation(t *testing.T) {
	a := newAppliance(t)
	if err := a.Bind("ghost", "p0"); !errors.Is(err, ErrUnknownChunk) {
		t.Errorf("err = %v", err)
	}
	id, _ := a.Carve("dev0", 10, 1)
	if err := a.Bind(id, "ghost"); !errors.Is(err, ErrUnknownPort) {
		t.Errorf("err = %v", err)
	}
}

func TestDuplicateIDs(t *testing.T) {
	a := newAppliance(t)
	if err := a.AddDevice("dev0", 1, "DRAM"); !errors.Is(err, ErrDuplicate) {
		t.Errorf("err = %v", err)
	}
	if err := a.AddPort("p0"); !errors.Is(err, ErrDuplicate) {
		t.Errorf("err = %v", err)
	}
}

func TestEvents(t *testing.T) {
	a := newAppliance(t)
	var mu sync.Mutex
	var kinds []string
	a.Subscribe(func(e Event) {
		mu.Lock()
		kinds = append(kinds, e.Kind)
		mu.Unlock()
	})
	id, _ := a.Carve("dev0", 10, 1)
	_ = a.Bind(id, "p0")
	_ = a.Unbind(id, "p0")
	_ = a.Release(id)
	mu.Lock()
	defer mu.Unlock()
	want := []string{"ChunkCreated", "Bound", "Unbound", "ChunkReleased"}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("event[%d] = %s, want %s", i, kinds[i], want[i])
		}
	}
}

func TestPropertyCapacityConservation(t *testing.T) {
	// For any sequence of carves and releases, free + allocated == total.
	prop := func(sizes []uint16) bool {
		a := New(WithoutSleep())
		if err := a.AddDevice("d", 1_000_000, "DRAM"); err != nil {
			return false
		}
		var carved []string
		var sum int64
		for _, s := range sizes {
			size := int64(s%4096) + 1
			id, err := a.Carve("d", size, 1)
			if err != nil {
				return false
			}
			carved = append(carved, id)
			sum += size
		}
		if a.FreeMiB() != 1_000_000-sum {
			return false
		}
		for _, id := range carved {
			if err := a.Release(id); err != nil {
				return false
			}
		}
		return a.FreeMiB() == 1_000_000
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentCarveBind(t *testing.T) {
	a := New(WithoutSleep())
	if err := a.AddDevice("d", 1_000_000, "DRAM"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := a.AddPort(portName(i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id, err := a.Carve("d", 16, 1)
				if err != nil {
					t.Error(err)
					return
				}
				if err := a.Bind(id, portName(g)); err != nil {
					t.Error(err)
					return
				}
				if err := a.Unbind(id, portName(g)); err != nil {
					t.Error(err)
					return
				}
				if err := a.Release(id); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if free := a.FreeMiB(); free != 1_000_000 {
		t.Errorf("free = %d after balanced workload", free)
	}
}

func portName(i int) string { return string(rune('a' + i)) }

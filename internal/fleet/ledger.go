package fleet

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"ofmf/internal/events"
	"ofmf/internal/redfish"
)

// agentReceipt tracks what one agent's events looked like on arrival at
// a counting sink: how many, whether any sequence number repeated or
// went backwards. The spool keeps per-agent delivery FIFO and the bus
// keeps per-subscription delivery FIFO, so any dup or order violation
// is a real serving-path bug, not scheduling noise.
type agentReceipt struct {
	count      int
	lastSeq    int
	dups       int
	orderViols int
	seen       map[int]bool
}

// countingSink is an in-process bus subscriber that classifies every
// record it receives: agent events (ID "fAAAAA-SSSSSS") feed per-agent
// receipts, liveness events ("liveness-N") and everything else are
// counted. One sink is one conservation unit: the bus's Delivered
// counter includes each record delivered to it.
type countingSink struct {
	mu       sync.Mutex
	agentEvs int64
	liveness int64
	other    int64
	perAgent map[int]*agentReceipt
}

func newCountingSink() *countingSink {
	return &countingSink{perAgent: make(map[int]*agentReceipt)}
}

// sink returns the events.Sink wired into the bus.
func (c *countingSink) sink() events.Sink {
	return events.SinkFunc(func(_ context.Context, ev redfish.Event) error {
		c.mu.Lock()
		defer c.mu.Unlock()
		for _, rec := range ev.Events {
			agentIdx, seq, ok := parseFleetEventID(rec.EventID)
			switch {
			case ok:
				c.agentEvs++
				r := c.perAgent[agentIdx]
				if r == nil {
					r = &agentReceipt{lastSeq: -1, seen: make(map[int]bool)}
					c.perAgent[agentIdx] = r
				}
				if r.seen[seq] {
					r.dups++
				}
				r.seen[seq] = true
				if seq <= r.lastSeq {
					r.orderViols++
				}
				r.lastSeq = seq
				r.count++
			case strings.HasPrefix(rec.EventID, "liveness-"):
				c.liveness++
			default:
				c.other++
			}
		}
		return nil
	})
}

// parseFleetEventID decodes the harness's "f%05d-%06d" event IDs.
func parseFleetEventID(id string) (agentIdx, seq int, ok bool) {
	if len(id) != 13 || id[0] != 'f' || id[6] != '-' {
		return 0, 0, false
	}
	if _, err := fmt.Sscanf(id, "f%05d-%06d", &agentIdx, &seq); err != nil {
		return 0, 0, false
	}
	return agentIdx, seq, true
}

// snapshot returns the sink's totals and a copy of the per-agent
// receipts.
func (c *countingSink) snapshot() (agentEvs, liveness, other int64, per map[int]agentReceipt) {
	c.mu.Lock()
	defer c.mu.Unlock()
	per = make(map[int]agentReceipt, len(c.perAgent))
	for idx, r := range c.perAgent {
		per[idx] = *r
	}
	return c.agentEvs, c.liveness, c.other, per
}

package fleet

import (
	"fmt"
	"sort"

	"ofmf/internal/events"
	"ofmf/internal/odata"
)

// The invariant checkers are pure functions over plain data so they can
// be unit-tested without standing up a fleet; Fleet methods gather the
// inputs and collect the returned violation strings.

// checkSources validates the AggregationSources collection against the
// expected host set: every expected host registered exactly once, no
// duplicate sources for one host, no ghost sources for hosts nobody
// owns. sources maps source URI → HostName as stored.
func checkSources(sources map[odata.ID]string, expectedHosts map[string]bool) []string {
	var v []string
	byHost := make(map[string][]odata.ID, len(sources))
	for uri, host := range sources {
		byHost[host] = append(byHost[host], uri)
	}
	for host, uris := range byHost {
		if len(uris) > 1 {
			sort.Slice(uris, func(i, j int) bool { return uris[i] < uris[j] })
			v = append(v, fmt.Sprintf("duplicate sources for host %s: %v", host, uris))
		}
		if !expectedHosts[host] {
			v = append(v, fmt.Sprintf("ghost source(s) %v for unknown host %q", uris, host))
		}
	}
	for host := range expectedHosts {
		if len(byHost[host]) == 0 {
			v = append(v, fmt.Sprintf("missing source for host %s", host))
		}
	}
	sort.Strings(v)
	return v
}

// checkConservation asserts the event bus ledger over one incarnation:
// with subs match-all subscriptions live for the whole window, every
// published record must land in exactly one delivery-outcome counter
// per subscription. base is the stats snapshot taken right after the
// subscriptions were created, end the snapshot after the queues
// quiesced.
func checkConservation(base, end events.Stats, subs int) []string {
	pub := end.Published - base.Published
	delivered := end.Delivered - base.Delivered
	failed := end.Failed - base.Failed
	dropped := end.Dropped - base.Dropped
	closed := end.DroppedClosed - base.DroppedClosed
	accounted := delivered + failed + dropped + closed
	if accounted != pub*int64(subs) {
		return []string{fmt.Sprintf(
			"event conservation broken: published %d × %d subs = %d, accounted %d (delivered %d + failed %d + dropped %d + dropped-closed %d)",
			pub, subs, pub*int64(subs), accounted, delivered, failed, dropped, closed)}
	}
	return nil
}

// checkAgentLedger asserts per-agent event accounting: everything an
// agent emitted is delivered, still spooled, or counted as dropped
// (spool overflow or crash loss) — and what the OFMF received matches
// what the spool claims it delivered, exactly once, in order.
func checkAgentLedger(idx int, emitted int, delivered, dropped int64, backlog int, rcv agentReceipt) []string {
	var v []string
	if int64(emitted) != delivered+dropped+int64(backlog) {
		v = append(v, fmt.Sprintf(
			"agent %05d spool ledger broken: emitted %d != delivered %d + dropped %d + backlog %d",
			idx, emitted, delivered, dropped, backlog))
	}
	if int64(rcv.count) != delivered {
		v = append(v, fmt.Sprintf(
			"agent %05d receipt mismatch: OFMF received %d, spool delivered %d",
			idx, rcv.count, delivered))
	}
	if rcv.dups > 0 {
		v = append(v, fmt.Sprintf("agent %05d: %d duplicate events received", idx, rcv.dups))
	}
	if rcv.orderViols > 0 {
		v = append(v, fmt.Sprintf("agent %05d: %d out-of-order events received", idx, rcv.orderViols))
	}
	return v
}

// checkLiveness diffs the sweeper's converged verdicts against ground
// truth. expected maps each live source URI to the level the harness's
// own heartbeat record implies; got is the sweeper's snapshot.
func checkLiveness(got, expected map[odata.ID]int) []string {
	var v []string
	for uri, want := range expected {
		lvl, ok := got[uri]
		if !ok {
			v = append(v, fmt.Sprintf("sweeper lost source %s (want level %d)", uri, want))
			continue
		}
		if lvl != want {
			v = append(v, fmt.Sprintf("liveness not converged for %s: sweeper %d, ground truth %d", uri, lvl, want))
		}
	}
	for uri := range got {
		if _, ok := expected[uri]; !ok {
			v = append(v, fmt.Sprintf("sweeper tracks ghost source %s", uri))
		}
	}
	sort.Strings(v)
	return v
}

package fleet

// Result is one scenario run's outcome, shaped for the repo's
// BENCH_serving.json `fleet_churn` section.
type Result struct {
	Scenario string `json:"scenario"`
	Agents   int    `json:"agents"`
	Seed     int64  `json:"seed"`

	// RegistrationPerSec is the initial cold-registration throughput;
	// ReregistrationPerSec the mass re-registration (revive) throughput
	// where the scenario exercises one (storm, killrecover).
	RegistrationPerSec   float64 `json:"registration_per_s"`
	ReregistrationPerSec float64 `json:"reregistration_per_s,omitempty"`

	// SweepP99Ms is the 99th-percentile liveness sweep duration.
	SweepP99Ms float64 `json:"sweep_p99_ms"`

	// Convergence measures the scenario's final heal: virtual seconds of
	// simulated clock and wall milliseconds of real time until the
	// sweeper's verdicts matched ground truth.
	ConvergenceVirtualS float64 `json:"convergence_virtual_s"`
	ConvergenceWallMs   float64 `json:"convergence_wall_ms"`

	// EventsPublished counts bus publishes over the final incarnation.
	EventsPublished int64 `json:"events_published"`

	// Recovery stats (killrecover only): WAL records replayed and the
	// wall time of the recover-and-reattach boot.
	RecoveryReplayed int     `json:"recovery_replayed,omitempty"`
	RecoveryMs       float64 `json:"recovery_ms,omitempty"`

	// Violations lists every end-state invariant breach; empty means the
	// run converged clean.
	Violations []string `json:"violations,omitempty"`
}

// Failed reports whether the run breached any invariant.
func (r Result) Failed() bool { return len(r.Violations) > 0 }

package fleet

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"ofmf/internal/agent"
	"ofmf/internal/events"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/resilience"
)

// fleetPolicy is the resilience policy the simulated agents run under:
// a small retry budget with near-zero backoff (faults are injected, not
// real, so there is nothing to wait out) and the circuit breaker
// disabled — a breaker's real-time cool-down would stall a virtual-time
// scenario for seconds after every heal.
func fleetPolicy() resilience.Policy {
	return resilience.Policy{
		AttemptTimeout: time.Second,
		MaxAttempts:    3,
		Backoff:        resilience.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond, Jitter: 0.5},
		Breaker:        resilience.BreakerConfig{Threshold: -1},
	}
}

// simAgent is one emulated fleet endpoint: an agent.Remote wired
// through a per-agent seeded FaultTransport over the in-memory
// transport, plus the harness's ground truth about it — when its last
// heartbeat actually succeeded, whether it is currently "running" —
// against which the OFMF's converged state is judged.
type simAgent struct {
	idx  int
	key  string // fault-schedule key
	host string // callback URL, the registration dedup key
	conn *agent.Remote
	ft   *resilience.FaultTransport

	mu     sync.Mutex
	source odata.ID
	// lastOK is the virtual timestamp of the agent's last heartbeat (or
	// registration) the OFMF acknowledged — the harness's ground truth
	// for what the liveness sweeper should conclude.
	lastOK  time.Time
	beating bool
	emitted int // event sequence counter, survives crashes
}

func newSimAgent(idx int, seed int64, mem *memTransport, faults *resilience.ScriptedFaults) *simAgent {
	key := fmt.Sprintf("agent-%05d", idx)
	a := &simAgent{
		idx:  idx,
		key:  key,
		host: "http://" + key + ".sim:9000",
	}
	// Each agent derives its own seed so fault sequences are per-agent
	// deterministic regardless of scheduling interleavings.
	a.ft = &resilience.FaultTransport{
		Base:  mem,
		Seed:  seed + int64(idx)*7919,
		Rules: faults.Bind(key),
	}
	a.conn = &agent.Remote{
		BaseURL:     "http://ofmf.sim",
		CallbackURL: a.host,
		Client: &http.Client{Transport: &resilience.Transport{
			Base:      a.ft,
			Policy:    fleetPolicy(),
			Retryable: resilience.RetryAll,
		}},
		SpoolSize: 256,
	}
	return a
}

// fabricURI is the root of the agent's published subtree.
func (a *simAgent) fabricURI() odata.ID {
	return odata.ID(fmt.Sprintf("/redfish/v1/Fabrics/Sim%05d", a.idx))
}

// register announces the agent, stamping the heartbeat with virtual
// now so the liveness sweeper's verdicts are clock-deterministic (the
// service would otherwise stamp wall time on revival).
func (a *simAgent) register(vnow time.Time) error {
	src := redfish.AggregationSource{
		HostName: a.host,
		Oem: redfish.AggSourceOem{OFMF: &redfish.AgentDescriptor{
			Technology: "sim",
			Version:    "1.0",
			LastHeartbeat: redfish.Timestamp(vnow),
		}},
	}
	uri, err := a.conn.Register(src)
	if err != nil {
		return err
	}
	a.mu.Lock()
	a.source = uri
	a.lastOK = vnow
	a.beating = true
	a.mu.Unlock()
	return nil
}

// publishSubtree installs the agent's small fabric subtree (one fabric,
// two endpoints) through the OEM aggregation endpoint.
func (a *simAgent) publishSubtree() error {
	root := a.fabricURI()
	res := map[odata.ID]any{
		root: redfish.Fabric{
			Resource:   odata.NewResource(root, redfish.TypeFabric, "Sim Fabric "+root.Leaf()),
			FabricType: "Ethernet",
			Status:     odata.StatusOK(),
		},
	}
	for i := 0; i < 2; i++ {
		ep := root.Append(fmt.Sprintf("Endpoints/%d", i))
		res[ep] = odata.NewResource(ep, redfish.TypeEndpoint, fmt.Sprintf("EP %d", i))
	}
	return a.conn.PublishSubtree(root, res)
}

// beat sends one heartbeat stamped with virtual now, updating ground
// truth only on success.
func (a *simAgent) beat(vnow time.Time) error {
	a.mu.Lock()
	uri := a.source
	a.mu.Unlock()
	if uri == "" {
		return fmt.Errorf("fleet: agent %d never registered", a.idx)
	}
	if err := a.conn.TouchSource(uri, redfish.Timestamp(vnow)); err != nil {
		return err
	}
	a.mu.Lock()
	a.lastOK = vnow
	a.mu.Unlock()
	return nil
}

// emit publishes n hardware events. Event IDs encode (agent, sequence)
// — "f00042-000007" — so receivers can verify per-agent ordering and
// exactly-once delivery.
func (a *simAgent) emit(n int) {
	a.mu.Lock()
	start := a.emitted
	a.emitted += n
	a.mu.Unlock()
	origin := a.fabricURI()
	for i := 0; i < n; i++ {
		rec := events.Record(redfish.EventAlert,
			fmt.Sprintf("f%05d-%06d", a.idx, start+i),
			"sim hardware event", origin)
		a.conn.PublishEvent(rec)
	}
}

// crash models the agent process dying: heartbeats stop and the
// in-memory spool is lost (counted as dropped).
func (a *simAgent) crash() {
	a.mu.Lock()
	a.beating = false
	a.mu.Unlock()
	a.conn.DropSpool()
}

// isBeating reports whether the agent is currently running.
func (a *simAgent) isBeating() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.beating
}

// groundTruth returns the agent's source URI and last acknowledged
// heartbeat instant.
func (a *simAgent) groundTruth() (odata.ID, time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.source, a.lastOK
}

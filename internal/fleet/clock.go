// Package fleet is the OFMF chaos harness: a seeded, deterministic
// fleet simulator that registers thousands of emulated agents against
// one in-process OFMF, drives scripted churn scenarios — agent
// crash/restart, network partition and link flap, heartbeat and
// re-registration storms, a full OFMF kill/recover cycle with WAL
// replay — and asserts end-state invariants after each: no ghost or
// duplicate aggregation sources, event counts conserved across the
// agent spools, the bus queues and SSE, liveness verdicts converged to
// ground truth, and store/WAL sequence integrity.
//
// Everything time-dependent runs on a virtual clock so a 90-second
// heartbeat-expiry scenario completes in milliseconds and a given
// (agents, seed, scenario) triple replays identically.
package fleet

import (
	"sync"
	"time"
)

// epoch anchors the virtual clock at a fixed instant so timestamps in
// stored heartbeats are identical across runs.
var epoch = time.Unix(1700000000, 0).UTC()

// vclock is the fleet's shared virtual clock. Agents stamp heartbeats
// from it and the liveness sweeper reads it, so staleness is a pure
// function of scripted advances, never of host scheduling.
type vclock struct {
	mu  sync.Mutex
	now time.Time
}

func newClock() *vclock { return &vclock{now: epoch} }

// Now returns the current virtual instant.
func (c *vclock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new instant.
func (c *vclock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return c.now
}

package fleet

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
)

// errOFMFDown is what an agent sees while the simulated OFMF is killed.
var errOFMFDown = errors.New("fleet: ofmf down: connection refused")

// memTransport carries agent HTTP traffic to the in-process OFMF
// without sockets: each round trip is a direct ServeHTTP call. The
// handler pointer is swappable, so an OFMF kill/recover cycle is a
// store+swap — nil while down (every request fails like a connection
// refused), the new incarnation's handler after recovery.
type memTransport struct {
	handler atomic.Pointer[http.Handler]
}

func newMemTransport(h http.Handler) *memTransport {
	m := &memTransport{}
	m.set(h)
	return m
}

func (m *memTransport) set(h http.Handler) { m.handler.Store(&h) }

// kill makes every subsequent request fail until set is called again.
func (m *memTransport) kill() { m.handler.Store(nil) }

// RoundTrip implements http.RoundTripper.
func (m *memTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	hp := m.handler.Load()
	if hp == nil {
		return nil, errOFMFDown
	}
	rec := httptest.NewRecorder()
	(*hp).ServeHTTP(rec, req)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}

package fleet

import (
	"bytes"
	"fmt"
	"time"

	"ofmf/internal/resilience"
	"ofmf/internal/service"
)

// Step is one scripted action against a running fleet. Steps run in
// order; a returned error aborts the scenario (harness failure), while
// invariant breaches are recorded via Fleet.violate and reported in the
// Result.
type Step struct {
	Name string
	Run  func(f *Fleet) error
}

// Script is a deterministic churn scenario: a named sequence of steps,
// optionally requiring WAL persistence.
type Script struct {
	Name    string
	Persist bool
	Steps   []Step
}

// ScenarioNames lists the built-in scenarios in canonical order.
func ScenarioNames() []string {
	return []string{"crash", "partition", "storm", "killrecover"}
}

// Scenario returns the named built-in script.
func Scenario(name string) (Script, error) {
	switch name {
	case "crash":
		return CrashScript(), nil
	case "partition":
		return PartitionScript(), nil
	case "storm":
		return StormScript(), nil
	case "killrecover":
		return KillRecoverScript(), nil
	default:
		return Script{}, fmt.Errorf("fleet: unknown scenario %q (have %v)", name, ScenarioNames())
	}
}

// CrashScript kills 20%% of the fleet, watches the sweeper walk the
// victims through Degraded to Unavailable while the survivors stay OK,
// then restarts them and requires full reconvergence.
func CrashScript() Script {
	var victims []*simAgent
	requireLevel := func(f *Fleet, want int, phase string) {
		snap := f.sweeper.SourcesSnapshot()
		for _, a := range victims {
			uri, _ := a.groundTruth()
			if lvl, ok := snap[uri]; !ok || lvl != want {
				f.violate("crash/%s: victim %s at level %d (tracked %v), want %d", phase, uri, lvl, ok, want)
			}
		}
	}
	return Script{Name: "crash", Steps: []Step{
		{"warmup", func(f *Fleet) error {
			for i := 0; i < 2; i++ {
				f.beatRound(f.opts.Liveness.Interval)
				f.emitRound(1)
			}
			f.sweep()
			return nil
		}},
		{"crash-20pct", func(f *Fleet) error {
			victims = f.pickAgents(0.20)
			for _, a := range victims {
				a.crash()
			}
			return nil
		}},
		{"age-to-degraded", func(f *Fleet) error {
			// 4 intervals without victim beats pushes their age past
			// StaleAfter (3×) while survivors keep beating.
			for i := 0; i < 4; i++ {
				f.beatRound(f.opts.Liveness.Interval)
			}
			f.converge(12)
			requireLevel(f, service.LiveDegraded, "degraded")
			return nil
		}},
		{"age-to-unavailable", func(f *Fleet) error {
			for i := 0; i < 7; i++ {
				f.beatRound(f.opts.Liveness.Interval)
			}
			f.converge(12)
			requireLevel(f, service.LiveUnavailable, "unavailable")
			return nil
		}},
		{"restart", func(f *Fleet) error {
			if err := f.restartCrashed(); err != nil {
				return err
			}
			f.recordConvergence()
			requireLevel(f, service.LiveOK, "restarted")
			return nil
		}},
	}}
}

// PartitionScript cuts 30%% of the fleet off entirely (connection
// refused) and gives another 20%% a flapping link, runs churn rounds
// with event traffic spooling behind the partition, heals, and requires
// the spools to drain and liveness to reconverge.
func PartitionScript() Script {
	return Script{Name: "partition", Steps: []Step{
		{"partition", func(f *Fleet) error {
			picked := f.pickAgents(0.50)
			nDeny := len(picked) * 3 / 5 // 30% of fleet denied, 20% flapping
			for i, a := range picked {
				if i < nDeny {
					f.faults.Set(a.key, resilience.FaultRule{Deny: true})
				} else {
					// Latency stays zero: injected delays plus per-attempt
					// timeouts could fail a request the server already
					// processed, breaking the exactly-once receipt invariant.
					f.faults.Set(a.key, resilience.FaultRule{ErrorRate: 0.4})
				}
			}
			return nil
		}},
		{"churn", func(f *Fleet) error {
			for i := 0; i < 6; i++ {
				f.beatRound(f.opts.Liveness.Interval)
				f.emitRound(2)
				f.sweep()
			}
			return nil
		}},
		{"heal", func(f *Fleet) error {
			f.healAll()
			// The next successful beat doubles as the reconnect signal that
			// drains each agent's spool.
			f.beatRound(f.opts.Liveness.Interval)
			return nil
		}},
		{"converge", func(f *Fleet) error {
			f.recordConvergence()
			for _, a := range f.agents {
				if n := a.conn.EventBacklog(); n != 0 {
					f.violate("partition: agent %05d still spools %d events after heal", a.idx, n)
				}
			}
			return nil
		}},
	}}
}

// StormScript hammers the registration and heartbeat paths: heartbeat
// bursts, a full-fleet re-registration storm that must mint zero new
// sources, delete-then-recreate churn on 5%% of sources, and an event
// burst — then requires the sweeper's index to match the store exactly.
func StormScript() Script {
	return Script{Name: "storm", Steps: []Step{
		{"beat-storm", func(f *Fleet) error {
			for i := 0; i < 3; i++ {
				f.beatRound(time.Second)
			}
			return nil
		}},
		{"reregister-storm", func(f *Fleet) error {
			rate, err := f.registerAll(false)
			if err != nil {
				return err
			}
			f.res.ReregistrationPerSec = rate
			sources, err := f.storedSources()
			if err != nil {
				return err
			}
			if len(sources) != len(f.agents) {
				f.violate("storm: re-registration changed source count: %d sources for %d agents", len(sources), len(f.agents))
			}
			return nil
		}},
		{"delete-recreate-5pct", func(f *Fleet) error {
			vnow := f.clock.Now()
			for _, a := range f.pickAgents(0.05) {
				old, _ := a.groundTruth()
				if err := f.svc.Store().Delete(old); err != nil {
					return fmt.Errorf("delete %s: %w", old, err)
				}
				if err := a.register(vnow); err != nil {
					return fmt.Errorf("recreate %s: %w", a.host, err)
				}
				if cur, _ := a.groundTruth(); cur == old {
					f.violate("storm: recreate of %s reused deleted URI %s", a.host, old)
				}
			}
			return nil
		}},
		{"event-burst", func(f *Fleet) error {
			f.emitRound(5)
			return nil
		}},
		{"converge", func(f *Fleet) error {
			f.recordConvergence()
			// The sweeper's index must mirror the store exactly — stale
			// deadlines from deleted incarnations must be gone.
			sources, err := f.storedSources()
			if err != nil {
				return err
			}
			if snap := f.sweeper.SourcesSnapshot(); len(snap) != len(sources) {
				f.violate("storm: sweeper tracks %d sources, store holds %d", len(snap), len(sources))
			}
			return nil
		}},
	}}
}

// KillRecoverScript kills the OFMF mid-flight (no graceful shutdown, no
// final snapshot), boots a fresh incarnation that must rebuild the
// whole fleet's state from real WAL replay byte-for-byte, then rides
// out a full-fleet re-registration storm from agents that never heard
// the OFMF died.
func KillRecoverScript() Script {
	var preSeq uint64
	var preExport []byte
	return Script{Name: "killrecover", Persist: true, Steps: []Step{
		{"traffic", func(f *Fleet) error {
			for i := 0; i < 2; i++ {
				f.beatRound(f.opts.Liveness.Interval)
				f.emitRound(2)
			}
			f.sweep()
			return nil
		}},
		{"kill", func(f *Fleet) error {
			// Settle and snapshot the ledger first: incarnation counters die
			// with the bus.
			f.checkConservationNow()
			preSeq = f.svc.Store().Seq()
			var err error
			if preExport, err = f.svc.Store().Export(); err != nil {
				return err
			}
			f.kill()
			return nil
		}},
		{"recover", func(f *Fleet) error {
			start := time.Now()
			stats, err := f.boot()
			if err != nil {
				return err
			}
			f.res.RecoveryMs = float64(time.Since(start)) / float64(time.Millisecond)
			f.res.RecoveryReplayed = stats.Replayed
			if stats.Dropped != 0 {
				f.violate("killrecover: recovery dropped %d WAL records", stats.Dropped)
			}
			if stats.Replayed < len(f.agents) {
				f.violate("killrecover: only %d WAL records replayed for %d agents", stats.Replayed, len(f.agents))
			}
			if stats.LastSeq != preSeq {
				f.violate("killrecover: WAL sequence diverged: pre-kill %d, recovered %d", preSeq, stats.LastSeq)
			}
			ex, err := f.svc.Store().Export()
			if err != nil {
				return err
			}
			if !bytes.Equal(ex, preExport) {
				f.violate("killrecover: recovered store differs from pre-kill state (%d bytes vs %d)", len(ex), len(preExport))
			}
			return nil
		}},
		{"mass-reregister", func(f *Fleet) error {
			rate, err := f.registerAll(false)
			if err != nil {
				return err
			}
			f.res.ReregistrationPerSec = rate
			return nil
		}},
		{"resume", func(f *Fleet) error {
			f.beatRound(f.opts.Liveness.Interval)
			f.emitRound(2)
			f.recordConvergence()
			return nil
		}},
	}}
}

package fleet

import (
	"strings"
	"testing"

	"ofmf/internal/events"
	"ofmf/internal/odata"
)

func TestCheckSources(t *testing.T) {
	expected := map[string]bool{"h1": true, "h2": true, "h3": true}
	clean := map[odata.ID]string{"/s/1": "h1", "/s/2": "h2", "/s/3": "h3"}
	if v := checkSources(clean, expected); len(v) != 0 {
		t.Fatalf("clean set reported violations: %v", v)
	}
	dirty := map[odata.ID]string{
		"/s/1": "h1", "/s/2": "h1", // duplicate for h1
		"/s/3": "h2",
		"/s/4": "ghost-host", // nobody owns it
		// h3 missing
	}
	v := checkSources(dirty, expected)
	if len(v) != 3 {
		t.Fatalf("want 3 violations, got %d: %v", len(v), v)
	}
	joined := strings.Join(v, "\n")
	for _, want := range []string{"duplicate sources for host h1", "ghost source", "missing source for host h3"} {
		if !strings.Contains(joined, want) {
			t.Errorf("violations missing %q:\n%s", want, joined)
		}
	}
}

func TestCheckConservation(t *testing.T) {
	base := events.Stats{Published: 10, Delivered: 30, Failed: 1, Dropped: 2, DroppedClosed: 3}
	// 90 publishes × 2 subs = 180, split across the four outcome counters.
	end := events.Stats{Published: 100, Delivered: 30 + 170, Failed: 1 + 4, Dropped: 2 + 5, DroppedClosed: 3 + 1}
	if v := checkConservation(base, end, 2); len(v) != 0 {
		t.Fatalf("balanced ledger reported violations: %v", v)
	}
	end.Delivered++ // one phantom delivery
	if v := checkConservation(base, end, 2); len(v) != 1 {
		t.Fatalf("unbalanced ledger not caught: %v", v)
	}
}

func TestCheckAgentLedger(t *testing.T) {
	ok := agentReceipt{count: 7}
	if v := checkAgentLedger(3, 10, 7, 2, 1, ok); len(v) != 0 {
		t.Fatalf("balanced agent ledger reported violations: %v", v)
	}
	// emitted != delivered + dropped + backlog
	if v := checkAgentLedger(3, 11, 7, 2, 1, ok); len(v) != 1 {
		t.Fatalf("spool ledger break not caught: %v", v)
	}
	// receiver saw fewer than the spool claims it delivered
	if v := checkAgentLedger(3, 10, 7, 2, 1, agentReceipt{count: 6}); len(v) != 1 {
		t.Fatalf("receipt mismatch not caught: %v", v)
	}
	if v := checkAgentLedger(3, 10, 7, 2, 1, agentReceipt{count: 7, dups: 1, orderViols: 2}); len(v) != 2 {
		t.Fatalf("dup/order breaks not caught: %v", v)
	}
}

func TestCheckLiveness(t *testing.T) {
	got := map[odata.ID]int{"/s/1": 0, "/s/2": 1}
	want := map[odata.ID]int{"/s/1": 0, "/s/2": 1}
	if v := checkLiveness(got, want); len(v) != 0 {
		t.Fatalf("converged state reported violations: %v", v)
	}
	got["/s/2"] = 2                          // wrong level
	got["/s/3"] = 0                          // ghost track
	want["/s/4"] = 1                         // lost source
	if v := checkLiveness(got, want); len(v) != 3 {
		t.Fatalf("want 3 violations, got %d: %v", len(v), v)
	}
}

func TestParseFleetEventID(t *testing.T) {
	idx, seq, ok := parseFleetEventID("f00042-000007")
	if !ok || idx != 42 || seq != 7 {
		t.Fatalf("parse: got (%d,%d,%v)", idx, seq, ok)
	}
	for _, bad := range []string{"", "liveness-3", "f0042-000007", "x00042-000007", "f00042_000007"} {
		if _, _, ok := parseFleetEventID(bad); ok {
			t.Errorf("parsed junk id %q", bad)
		}
	}
}

// runScenario stands up a small fleet and runs one scenario to a clean
// converged end state.
func runScenario(t *testing.T, name string, agents int, seed int64) Result {
	t.Helper()
	opts := Options{Agents: agents, Seed: seed}
	if name == "killrecover" {
		opts.PersistDir = t.TempDir()
	}
	f, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sc, err := Scenario(name)
	if err != nil {
		t.Fatalf("Scenario(%s): %v", name, err)
	}
	res, err := f.Run(sc)
	if err != nil {
		t.Fatalf("%s: harness error: %v", name, err)
	}
	for _, v := range res.Violations {
		t.Errorf("%s: invariant violated: %s", name, v)
	}
	return res
}

// TestFleetSmallChaos drives every scenario with a 100-agent fleet —
// the deterministic CI-gate configuration (make chaossmoke runs the
// same shape under -race via cmd/ofmfchaos).
func TestFleetSmallChaos(t *testing.T) {
	for _, name := range ScenarioNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			res := runScenario(t, name, 100, 42)
			if res.EventsPublished == 0 {
				t.Errorf("%s: no events published", name)
			}
			if res.RegistrationPerSec <= 0 {
				t.Errorf("%s: registration rate not measured", name)
			}
		})
	}
}

// TestFleetDeterministic runs the partition scenario twice with one
// seed and requires identical virtual-time outcomes: same events
// published, same convergence cost in virtual seconds.
func TestFleetDeterministic(t *testing.T) {
	a := runScenario(t, "partition", 60, 7)
	b := runScenario(t, "partition", 60, 7)
	if a.EventsPublished != b.EventsPublished {
		t.Errorf("events published diverged: %d vs %d", a.EventsPublished, b.EventsPublished)
	}
	if a.ConvergenceVirtualS != b.ConvergenceVirtualS {
		t.Errorf("virtual convergence diverged: %v vs %v", a.ConvergenceVirtualS, b.ConvergenceVirtualS)
	}
}

func TestFleetRequiresSeed(t *testing.T) {
	if _, err := New(Options{Agents: 1}); err == nil {
		t.Fatal("fleet accepted a zero seed")
	}
}

func TestKillRecoverRequiresPersistDir(t *testing.T) {
	f, err := New(Options{Agents: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(KillRecoverScript()); err == nil {
		t.Fatal("killrecover ran without a persistence directory")
	}
}

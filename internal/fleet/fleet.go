package fleet

import (
	"bufio"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"ofmf/internal/events"
	"ofmf/internal/obsv"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/resilience"
	"ofmf/internal/service"
	"ofmf/internal/store/persist"
)

// Options parameterizes a fleet run.
type Options struct {
	// Agents is the fleet size (required, ≥ 1).
	Agents int
	// Seed drives every random choice — fault sequences, churn victim
	// selection. It is REQUIRED to be non-zero: an unseeded chaos run
	// cannot be replayed, so the wall-clock fallback FaultTransport
	// would otherwise use is rejected here (see
	// resilience.FaultTransport.EffectiveSeed).
	Seed int64
	// StoreShards partitions the OFMF's store (default 8).
	StoreShards int
	// Workers bounds driver concurrency for fleet-wide operations
	// (default 64).
	Workers int
	// PersistDir, when non-empty, runs the OFMF on a write-ahead log in
	// that directory. Required by the killrecover scenario.
	PersistDir string
	// Sinks is the number of in-process counting subscriptions
	// (default 2); SSEStreams the number of live SSE connections
	// (default 2). Both participate in the conservation ledger.
	Sinks      int
	SSEStreams int
	// Liveness tunes the sweeper (defaults: 10s interval, 30s stale,
	// 90s unavailable — all in virtual time).
	Liveness service.LivenessConfig
	// Logger receives harness progress (default: drop everything).
	Logger *slog.Logger
}

func (o Options) withDefaults() (Options, error) {
	if o.Agents < 1 {
		return o, fmt.Errorf("fleet: Agents must be ≥ 1 (got %d)", o.Agents)
	}
	if o.Seed == 0 {
		return o, fmt.Errorf("fleet: explicit non-zero Seed required for reproducibility")
	}
	if o.StoreShards <= 0 {
		o.StoreShards = 8
	}
	if o.Workers <= 0 {
		o.Workers = 64
	}
	if o.Sinks <= 0 {
		o.Sinks = 2
	}
	if o.SSEStreams < 0 {
		o.SSEStreams = 0
	} else if o.SSEStreams == 0 {
		o.SSEStreams = 2
	}
	if o.Liveness.Interval <= 0 {
		o.Liveness.Interval = 10 * time.Second
	}
	if o.Liveness.StaleAfter <= 0 {
		o.Liveness.StaleAfter = 3 * o.Liveness.Interval
	}
	if o.Liveness.UnavailableAfter <= 0 {
		o.Liveness.UnavailableAfter = 3 * o.Liveness.StaleAfter
	}
	if o.Logger == nil {
		o.Logger = obsv.NopLogger()
	}
	return o, nil
}

// Fleet drives one simulated fleet against one in-process OFMF.
type Fleet struct {
	opts   Options
	rng    *rand.Rand
	clock  *vclock
	faults *resilience.ScriptedFaults
	mem    *memTransport
	agents []*simAgent

	svc     *service.Service
	sweeper *service.LivenessSweeper
	backend *persist.FileBackend

	httpSrv   *httptest.Server
	sseWG     sync.WaitGroup
	sseBodies []io.Closer

	sinks     []*countingSink
	statsBase events.Stats
	subCount  int

	sweepDur   []time.Duration
	violations []string

	res Result
}

// New builds a fleet; Run executes a scenario against it.
func New(opts Options) (*Fleet, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	f := &Fleet{
		opts:   opts,
		rng:    rand.New(rand.NewSource(opts.Seed)),
		clock:  newClock(),
		faults: resilience.NewScriptedFaults(),
		mem:    &memTransport{},
	}
	f.agents = make([]*simAgent, opts.Agents)
	for i := range f.agents {
		f.agents[i] = newSimAgent(i, opts.Seed, f.mem, f.faults)
	}
	// Counting sinks live as long as the fleet, not one OFMF incarnation:
	// per-agent receipts must stay cumulative across a kill/recover cycle
	// to match the agents' cumulative delivery counters.
	f.sinks = make([]*countingSink, opts.Sinks)
	for i := range f.sinks {
		f.sinks[i] = newCountingSink()
	}
	// Surface the seed actually in effect so any run can be replayed
	// from its log line alone.
	opts.Logger.Info("fleet: seeded",
		"seed", opts.Seed,
		"agents", opts.Agents,
		"agent0_transport_seed", f.agents[0].ft.EffectiveSeed())
	return f, nil
}

// violate records an invariant violation.
func (f *Fleet) violate(format string, args ...any) {
	f.violations = append(f.violations, fmt.Sprintf(format, args...))
}

// boot stands up one OFMF incarnation: service, optional WAL recovery,
// liveness sweeper on the virtual clock, conservation subscribers, and
// the ledger baseline. Returns the recovery stats (zero on a fresh
// directory or without persistence).
func (f *Fleet) boot() (persist.RecoveryStats, error) {
	off := false
	f.svc = service.New(service.Config{
		Name:        "OFMF chaos sim",
		StoreShards: f.opts.StoreShards,
		Logger:      f.opts.Logger,
		// Change events off: the conservation ledger tracks exactly the
		// records the fleet itself emits (agent events + liveness), and
		// 10k registrations' worth of ResourceAdded noise would drown
		// the signal without adding coverage.
		ChangeEvents: &off,
		Events: events.Config{
			// Deep queues: receipt invariants require zero bus-side drops
			// at full fleet scale.
			QueueDepth: 1 << 20,
		},
	})
	var stats persist.RecoveryStats
	if f.opts.PersistDir != "" {
		b, err := persist.Open(persist.Options{
			Dir:    f.opts.PersistDir,
			Fsync:  false, // process-kill durability is enough for the sim
			Shards: f.opts.StoreShards,
			Logger: f.opts.Logger,
		})
		if err != nil {
			return stats, err
		}
		if stats, err = b.Recover(f.svc.Store()); err != nil {
			return stats, err
		}
		f.svc.Store().AttachBackend(b, stats.LastSeq)
		f.backend = b
	}
	f.sweeper = f.svc.NewLivenessSweeper(f.opts.Liveness)
	f.sweeper.SetClock(f.clock.Now)
	f.mem.set(f.svc.Handler())

	// Conservation subscribers: every one is match-all, so each publish
	// must be accounted once per subscription.
	for i, cs := range f.sinks {
		if _, err := f.svc.Bus().Subscribe(cs.sink(), events.Filter{}, fmt.Sprintf("fleet-sink-%d", i)); err != nil {
			return stats, err
		}
	}
	f.httpSrv = httptest.NewServer(f.svc.Handler())
	for i := 0; i < f.opts.SSEStreams; i++ {
		if err := f.openSSEStream(); err != nil {
			return stats, err
		}
	}
	f.subCount = f.opts.Sinks + f.opts.SSEStreams
	if got := len(f.svc.Bus().Subscriptions()); got != f.subCount {
		return stats, fmt.Errorf("fleet: expected %d subscriptions, bus has %d", f.subCount, got)
	}
	f.statsBase = f.svc.Bus().Stats()
	return stats, nil
}

// openSSEStream connects one server-sent-events client and drains it on
// a background goroutine until the server goes away.
func (f *Fleet) openSSEStream() error {
	resp, err := f.httpSrv.Client().Get(f.httpSrv.URL + string(service.SSEURI))
	if err != nil {
		return fmt.Errorf("fleet: sse connect: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return fmt.Errorf("fleet: sse connect: %s", resp.Status)
	}
	f.sseBodies = append(f.sseBodies, resp.Body)
	f.sseWG.Add(1)
	go func() {
		defer f.sseWG.Done()
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64*1024), 1<<20)
		for sc.Scan() {
			// Frames are drained, not asserted on: the bus-level ledger
			// (Delivered includes SSE subscriptions) is the invariant.
		}
	}()
	return nil
}

// closeSSE disconnects the SSE clients. The client side must close
// first: the stream handlers only return when their connection dies,
// and httptest's Close blocks until all in-flight requests finish.
func (f *Fleet) closeSSE() {
	for _, b := range f.sseBodies {
		_ = b.Close()
	}
	f.sseBodies = nil
	f.sseWG.Wait()
}

// kill simulates an OFMF process death: agent traffic starts failing,
// SSE clients are cut, the bus dies — but the store's WAL backend is
// ABANDONED, not closed, so no graceful-shutdown snapshot happens and
// the next boot must do real WAL replay.
func (f *Fleet) kill() {
	f.mem.kill()
	f.closeSSE()
	f.httpSrv.Close()
	f.svc.Bus().Close()
	f.backend = nil // abandoned: file contents are the crash state
	f.svc = nil
	f.sweeper = nil
}

// close tears the current incarnation down gracefully (end of run).
func (f *Fleet) close() {
	if f.svc == nil {
		return
	}
	f.closeSSE()
	f.httpSrv.Close()
	f.svc.Close()
	f.svc = nil
}

// runParallel applies fn to every index in [0, n) on Workers
// goroutines, partitioned deterministically (worker w owns i ≡ w mod
// W) so each agent's operation sequence is scheduling-independent.
// Returns the number of errors and the first one.
func (f *Fleet) runParallel(n int, fn func(i int) error) (int, error) {
	w := f.opts.Workers
	if w > n {
		w = n
	}
	var wg sync.WaitGroup
	errCounts := make([]int, w)
	firsts := make([]error, w)
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for i := wi; i < n; i += w {
				if err := fn(i); err != nil {
					errCounts[wi]++
					if firsts[wi] == nil {
						firsts[wi] = err
					}
				}
			}
		}(wi)
	}
	wg.Wait()
	total := 0
	var first error
	for wi := 0; wi < w; wi++ {
		total += errCounts[wi]
		if first == nil {
			first = firsts[wi]
		}
	}
	return total, first
}

// registerAll registers every agent (and publishes its subtree),
// returning the wall-clock registration rate.
func (f *Fleet) registerAll(withSubtrees bool) (perSec float64, err error) {
	vnow := f.clock.Now()
	start := time.Now()
	errs, first := f.runParallel(len(f.agents), func(i int) error {
		if err := f.agents[i].register(vnow); err != nil {
			return err
		}
		if withSubtrees {
			return f.agents[i].publishSubtree()
		}
		return nil
	})
	elapsed := time.Since(start)
	if errs > 0 {
		return 0, fmt.Errorf("fleet: %d/%d registrations failed: %w", errs, len(f.agents), first)
	}
	return float64(len(f.agents)) / elapsed.Seconds(), nil
}

// beatRound advances the virtual clock by d and has every running agent
// send one heartbeat. Beat failures are expected under faults — ground
// truth only advances on success.
func (f *Fleet) beatRound(d time.Duration) {
	vnow := f.clock.Advance(d)
	f.runParallel(len(f.agents), func(i int) error {
		a := f.agents[i]
		if !a.isBeating() {
			return nil
		}
		_ = a.beat(vnow) // failure = no ground-truth advance
		return nil
	})
}

// emitRound has every running agent publish n hardware events.
func (f *Fleet) emitRound(n int) {
	f.runParallel(len(f.agents), func(i int) error {
		if f.agents[i].isBeating() {
			f.agents[i].emit(n)
		}
		return nil
	})
}

// sweep runs one timed liveness pass.
func (f *Fleet) sweep() {
	start := time.Now()
	f.sweeper.Sweep()
	f.sweepDur = append(f.sweepDur, time.Since(start))
}

// expectedLevels computes ground truth: for every agent whose source
// exists, the liveness level its last acknowledged heartbeat implies at
// virtual now — the same thresholds the sweeper applies.
func (f *Fleet) expectedLevels() map[odata.ID]int {
	vnow := f.clock.Now()
	out := make(map[odata.ID]int, len(f.agents))
	for _, a := range f.agents {
		uri, lastOK := a.groundTruth()
		if uri == "" || !f.svc.Store().Exists(uri) {
			continue
		}
		age := vnow.Sub(lastOK)
		switch {
		case age >= f.opts.Liveness.UnavailableAfter:
			out[uri] = service.LiveUnavailable
		case age >= f.opts.Liveness.StaleAfter:
			out[uri] = service.LiveDegraded
		default:
			out[uri] = service.LiveOK
		}
	}
	return out
}

// converge sweeps until the sweeper's verdicts match ground truth,
// advancing the virtual clock one second between attempts (transitions
// schedule immediate-reconcile deadlines, so one extra pass usually
// suffices). Returns the virtual and wall time it took, recording a
// violation on timeout.
func (f *Fleet) converge(maxSweeps int) (virtual time.Duration, wall time.Duration) {
	vstart, wstart := f.clock.Now(), time.Now()
	for i := 0; i < maxSweeps; i++ {
		f.sweep()
		if len(checkLiveness(f.sweeper.SourcesSnapshot(), f.expectedLevels())) == 0 {
			return f.clock.Now().Sub(vstart), time.Since(wstart)
		}
		f.clock.Advance(time.Second)
	}
	for _, v := range checkLiveness(f.sweeper.SourcesSnapshot(), f.expectedLevels()) {
		f.violate("%s", v)
	}
	return f.clock.Now().Sub(vstart), time.Since(wstart)
}

// recordConvergence runs the scenario's final convergence and stores
// its cost in the result.
func (f *Fleet) recordConvergence() {
	v, w := f.converge(12)
	f.res.ConvergenceVirtualS = v.Seconds()
	f.res.ConvergenceWallMs = float64(w) / float64(time.Millisecond)
}

// quiesce waits until the event bus has no queued or in-flight
// deliveries, so counters can be compared exactly.
func (f *Fleet) quiesce() error {
	deadline := time.Now().Add(60 * time.Second)
	for {
		p := f.svc.Bus().Pool()
		if p.Queued == 0 && p.Busy == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet: bus did not quiesce: %d queued, %d busy", p.Queued, p.Busy)
		}
		time.Sleep(time.Millisecond)
	}
}

// checkConservationNow quiesces the bus and asserts the incarnation's
// event ledger.
func (f *Fleet) checkConservationNow() {
	if err := f.quiesce(); err != nil {
		f.violate("%v", err)
		return
	}
	for _, v := range checkConservation(f.statsBase, f.svc.Bus().Stats(), f.subCount) {
		f.violate("%s", v)
	}
}

// storedSources reads URI → HostName for every member of the
// AggregationSources collection.
func (f *Fleet) storedSources() (map[odata.ID]string, error) {
	members, err := f.svc.Store().Members(service.AggregationSourcesURI)
	if err != nil {
		return nil, err
	}
	out := make(map[odata.ID]string, len(members))
	for _, uri := range members {
		var src redfish.AggregationSource
		if err := f.svc.Store().GetAs(uri, &src); err != nil {
			return nil, fmt.Errorf("fleet: read %s: %w", uri, err)
		}
		out[uri] = src.HostName
	}
	return out, nil
}

// checkSourcesNow asserts no ghost/duplicate/missing aggregation
// sources against the full agent set.
func (f *Fleet) checkSourcesNow() {
	sources, err := f.storedSources()
	if err != nil {
		f.violate("%v", err)
		return
	}
	expected := make(map[string]bool, len(f.agents))
	for _, a := range f.agents {
		expected[a.host] = true
	}
	for _, v := range checkSources(sources, expected) {
		f.violate("%s", v)
	}
}

// checkAgentLedgersNow asserts per-agent event accounting against the
// first counting sink's receipts.
func (f *Fleet) checkAgentLedgersNow() {
	_, _, _, per := f.sinks[0].snapshot()
	for _, a := range f.agents {
		a.mu.Lock()
		emitted := a.emitted
		a.mu.Unlock()
		delivered, dropped := a.conn.EventsDelivered(), a.conn.EventsDropped()
		for _, v := range checkAgentLedger(a.idx, emitted, delivered, dropped, a.conn.EventBacklog(), per[a.idx]) {
			f.violate("%s", v)
		}
	}
}

// checkLivenessNow asserts sweeper convergence against ground truth.
func (f *Fleet) checkLivenessNow() {
	for _, v := range checkLiveness(f.sweeper.SourcesSnapshot(), f.expectedLevels()) {
		f.violate("%s", v)
	}
}

// healAll clears every scripted fault.
func (f *Fleet) healAll() { f.faults.ClearAll() }

// pickAgents deterministically samples frac of the fleet.
func (f *Fleet) pickAgents(frac float64) []*simAgent {
	n := int(float64(len(f.agents)) * frac)
	if n < 1 {
		n = 1
	}
	perm := f.rng.Perm(len(f.agents))[:n]
	sort.Ints(perm)
	picked := make([]*simAgent, n)
	for i, idx := range perm {
		picked[i] = f.agents[idx]
	}
	return picked
}

// sweepP99 returns the 99th-percentile sweep duration observed so far.
func (f *Fleet) sweepP99() time.Duration {
	if len(f.sweepDur) == 0 {
		return 0
	}
	d := append([]time.Duration(nil), f.sweepDur...)
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	return d[(len(d)*99)/100]
}

// Run executes the scenario end to end and returns its result. The
// returned error reports harness failures (setup, store errors);
// invariant violations are reported in Result.Violations.
func (f *Fleet) Run(sc Script) (Result, error) {
	if sc.Persist && f.opts.PersistDir == "" {
		return Result{}, fmt.Errorf("fleet: scenario %q requires Options.PersistDir", sc.Name)
	}
	f.res = Result{Scenario: sc.Name, Agents: f.opts.Agents, Seed: f.opts.Seed}
	if _, err := f.boot(); err != nil {
		return f.res, err
	}
	defer f.close()

	rate, err := f.registerAll(true)
	if err != nil {
		return f.res, err
	}
	f.res.RegistrationPerSec = rate
	f.sweep() // seed the sweeper's index

	for _, step := range sc.Steps {
		f.opts.Logger.Info("fleet: step", "scenario", sc.Name, "step", step.Name)
		if err := step.Run(f); err != nil {
			return f.res, fmt.Errorf("fleet: scenario %s step %s: %w", sc.Name, step.Name, err)
		}
	}

	// End-state invariants, common to every scenario.
	f.checkConservationNow()
	f.checkSourcesNow()
	f.checkAgentLedgersNow()
	f.checkLivenessNow()
	if f.opts.PersistDir != "" && f.svc.Store().Seq() == 0 {
		f.violate("store committed nothing to the WAL despite persistence")
	}

	f.res.SweepP99Ms = float64(f.sweepP99()) / float64(time.Millisecond)
	st := f.svc.Bus().Stats()
	f.res.EventsPublished = st.Published - f.statsBase.Published
	f.res.Violations = append(f.res.Violations, f.violations...)
	f.violations = nil
	return f.res, nil
}

// restartCrashed brings every crashed agent back: re-register (a
// revive, since the source still exists) and beat once.
func (f *Fleet) restartCrashed() error {
	vnow := f.clock.Now()
	errs, first := f.runParallel(len(f.agents), func(i int) error {
		a := f.agents[i]
		if a.isBeating() {
			return nil
		}
		if err := a.register(vnow); err != nil {
			return err
		}
		return a.beat(vnow)
	})
	if errs > 0 {
		return fmt.Errorf("fleet: %d restarts failed: %w", errs, first)
	}
	return nil
}

// Package sessions implements the Redfish SessionService: token-based
// authentication for OFMF clients. A session is created by POSTing
// credentials to the session collection; the returned X-Auth-Token
// authenticates subsequent requests until the session expires or is
// deleted.
package sessions

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Sentinel errors.
var (
	ErrInvalidCredentials = errors.New("sessions: invalid credentials")
	ErrInvalidToken       = errors.New("sessions: invalid or expired token")
	ErrNotFound           = errors.New("sessions: session not found")
)

// Credentials validates a username/password pair. The OFMF testbed uses a
// static table; production deployments would wire LDAP or similar.
type Credentials func(user, password string) bool

// StaticCredentials builds a Credentials check from a fixed table.
func StaticCredentials(table map[string]string) Credentials {
	return func(user, password string) bool {
		want, ok := table[user]
		return ok && want == password
	}
}

// Session is one live authenticated session.
type Session struct {
	ID      string
	User    string
	Token   string
	Created time.Time
	Expires time.Time
}

// Service manages sessions.
type Service struct {
	check   Credentials
	timeout time.Duration
	now     func() time.Time

	mu      sync.Mutex
	nextID  int
	byID    map[string]*Session
	byToken map[string]*Session
}

// Option configures the service.
type Option func(*Service)

// WithClock overrides the time source (tests).
func WithClock(now func() time.Time) Option { return func(s *Service) { s.now = now } }

// NewService creates a session service. timeout bounds session lifetime.
func NewService(check Credentials, timeout time.Duration, opts ...Option) *Service {
	s := &Service{
		check:   check,
		timeout: timeout,
		now:     time.Now,
		byID:    make(map[string]*Session),
		byToken: make(map[string]*Session),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Timeout returns the configured session lifetime.
func (s *Service) Timeout() time.Duration { return s.timeout }

// Login validates credentials and creates a session.
func (s *Service) Login(user, password string) (*Session, error) {
	if !s.check(user, password) {
		return nil, ErrInvalidCredentials
	}
	tok := make([]byte, 16)
	if _, err := rand.Read(tok); err != nil {
		return nil, fmt.Errorf("sessions: token generation: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	now := s.now()
	sess := &Session{
		ID:      fmt.Sprintf("%d", s.nextID),
		User:    user,
		Token:   hex.EncodeToString(tok),
		Created: now,
		Expires: now.Add(s.timeout),
	}
	s.byID[sess.ID] = sess
	s.byToken[sess.Token] = sess
	return copySession(sess), nil
}

// Validate checks a token and returns the owning session. Expired sessions
// are reaped lazily.
func (s *Service) Validate(token string) (*Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.byToken[token]
	if !ok {
		return nil, ErrInvalidToken
	}
	if s.now().After(sess.Expires) {
		delete(s.byID, sess.ID)
		delete(s.byToken, sess.Token)
		return nil, ErrInvalidToken
	}
	return copySession(sess), nil
}

// Logout deletes the session with the given id.
func (s *Service) Logout(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.byID[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	delete(s.byID, id)
	delete(s.byToken, sess.Token)
	return nil
}

// Get returns the session with the given id if it is still valid.
func (s *Service) Get(id string) (*Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if s.now().After(sess.Expires) {
		delete(s.byID, sess.ID)
		delete(s.byToken, sess.Token)
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return copySession(sess), nil
}

// List returns the ids of live sessions.
func (s *Service) List() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	ids := make([]string, 0, len(s.byID))
	for id, sess := range s.byID {
		if now.After(sess.Expires) {
			continue
		}
		ids = append(ids, id)
	}
	return ids
}

func copySession(s *Session) *Session {
	c := *s
	return &c
}

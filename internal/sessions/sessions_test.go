package sessions

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func newTestService(now *time.Time) *Service {
	check := StaticCredentials(map[string]string{"admin": "secret"})
	return NewService(check, time.Hour, WithClock(func() time.Time { return *now }))
}

func TestLoginValidate(t *testing.T) {
	now := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	svc := newTestService(&now)
	sess, err := svc.Login("admin", "secret")
	if err != nil {
		t.Fatal(err)
	}
	if sess.Token == "" || sess.ID == "" {
		t.Fatalf("session = %+v", sess)
	}
	got, err := svc.Validate(sess.Token)
	if err != nil {
		t.Fatal(err)
	}
	if got.User != "admin" {
		t.Errorf("user = %q", got.User)
	}
}

func TestLoginRejectsBadCredentials(t *testing.T) {
	now := time.Now()
	svc := newTestService(&now)
	if _, err := svc.Login("admin", "wrong"); !errors.Is(err, ErrInvalidCredentials) {
		t.Errorf("err = %v", err)
	}
	if _, err := svc.Login("ghost", "secret"); !errors.Is(err, ErrInvalidCredentials) {
		t.Errorf("err = %v", err)
	}
}

func TestValidateRejectsUnknownToken(t *testing.T) {
	now := time.Now()
	svc := newTestService(&now)
	if _, err := svc.Validate("bogus"); !errors.Is(err, ErrInvalidToken) {
		t.Errorf("err = %v", err)
	}
}

func TestExpiry(t *testing.T) {
	now := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	svc := newTestService(&now)
	sess, err := svc.Login("admin", "secret")
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Hour)
	if _, err := svc.Validate(sess.Token); !errors.Is(err, ErrInvalidToken) {
		t.Errorf("expired token accepted: %v", err)
	}
	if _, err := svc.Get(sess.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("expired session retrievable: %v", err)
	}
}

func TestLogout(t *testing.T) {
	now := time.Now()
	svc := newTestService(&now)
	sess, err := svc.Login("admin", "secret")
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Logout(sess.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Validate(sess.Token); !errors.Is(err, ErrInvalidToken) {
		t.Errorf("token valid after logout: %v", err)
	}
	if err := svc.Logout(sess.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("double logout err = %v", err)
	}
}

func TestListExcludesExpired(t *testing.T) {
	now := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	svc := newTestService(&now)
	if _, err := svc.Login("admin", "secret"); err != nil {
		t.Fatal(err)
	}
	now = now.Add(30 * time.Minute)
	if _, err := svc.Login("admin", "secret"); err != nil {
		t.Fatal(err)
	}
	now = now.Add(45 * time.Minute) // first has expired, second has not
	if got := len(svc.List()); got != 1 {
		t.Errorf("List = %d sessions, want 1", got)
	}
}

func TestTokensUnique(t *testing.T) {
	now := time.Now()
	svc := newTestService(&now)
	seen := make(map[string]bool)
	for i := 0; i < 50; i++ {
		sess, err := svc.Login("admin", "secret")
		if err != nil {
			t.Fatal(err)
		}
		if seen[sess.Token] {
			t.Fatal("duplicate token issued")
		}
		seen[sess.Token] = true
	}
}

func TestReturnedSessionIsCopy(t *testing.T) {
	now := time.Now()
	svc := newTestService(&now)
	sess, err := svc.Login("admin", "secret")
	if err != nil {
		t.Fatal(err)
	}
	tok := sess.Token
	sess.Token = "mutated"
	if _, err := svc.Validate(tok); err != nil {
		t.Error("mutating returned session affected service state")
	}
}

func TestConcurrentLoginValidate(t *testing.T) {
	now := time.Now()
	svc := newTestService(&now)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess, err := svc.Login("admin", "secret")
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := svc.Validate(sess.Token); err != nil {
				t.Error(err)
			}
			if err := svc.Logout(sess.ID); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := len(svc.List()); got != 0 {
		t.Errorf("sessions remaining = %d", got)
	}
}

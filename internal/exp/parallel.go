package exp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers bounds the goroutines used to fan experiment replications
// out across cores. 0 means "use GOMAXPROCS".
var maxWorkers atomic.Int32

// SetMaxWorkers bounds the parallelism of experiment runs. n <= 0
// restores the default (one worker per GOMAXPROCS core); n == 1 forces
// fully sequential execution. Results are bit-identical for any setting:
// every replication draws from an RNG stream split off the root generator
// before the fan-out, in the same fixed order the sequential loops used.
func SetMaxWorkers(n int) {
	if n < 0 {
		n = 0
	}
	maxWorkers.Store(int32(n))
}

// workers resolves the current worker count for n items.
func workers(n int) int {
	w := int(maxWorkers.Load())
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelFor runs fn(i) for i in [0, n) across the configured worker
// count. Work is handed out through an atomic counter so uneven item
// costs (e.g. 128-node reps next to 1-node reps) still balance. With one
// worker it degenerates to a plain loop on the calling goroutine. fn must
// write its result to a pre-assigned slot; parallelFor imposes no output
// ordering of its own.
func parallelFor(n int, fn func(i int)) {
	w := workers(n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

package exp

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"testing"

	"ofmf/internal/sim/interfere"
	"ofmf/internal/sim/lustre"
	"ofmf/internal/sim/workload"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{10, 12, 14})
	if s.N != 3 || s.Mean != 12 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.SD-2) > 1e-9 {
		t.Errorf("sd = %f", s.SD)
	}
	// t(2) = 4.303 → CI = 4.303 * 2 / sqrt(3) ≈ 4.968
	if math.Abs(s.CI95-4.968) > 0.01 {
		t.Errorf("ci = %f", s.CI95)
	}
	if s.Min != 10 || s.Max != 14 {
		t.Errorf("min/max = %f/%f", s.Min, s.Max)
	}
	if got := Summarize(nil); got.N != 0 {
		t.Errorf("empty = %+v", got)
	}
	one := Summarize([]float64{5})
	if one.Mean != 5 || one.CI95 != 0 {
		t.Errorf("single = %+v", one)
	}
}

func TestPercentile(t *testing.T) {
	samples := []float64{5, 1, 3, 2, 4}
	if got := Percentile(samples, 50); got != 3 {
		t.Errorf("p50 = %f", got)
	}
	if got := Percentile(samples, 100); got != 5 {
		t.Errorf("p100 = %f", got)
	}
	if got := Percentile(samples, 1); got != 1 {
		t.Errorf("p1 = %f", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty = %f", got)
	}
}

func TestHPLTableMatchesGenerator(t *testing.T) {
	for _, row := range workload.HPLTable() {
		gen := workload.HPLParams(row.Nodes)
		if gen.P != row.P || gen.Q != row.Q {
			t.Errorf("n=%d: generated grid %dx%d, table %dx%d", row.Nodes, gen.P, gen.Q, row.P, row.Q)
		}
		// N extrapolation reproduces the published sizes to within 2 rows
		// (the authors' rounding).
		if d := gen.N - row.N; d < -2 || d > 2 {
			t.Errorf("n=%d: generated N %d, table %d", row.Nodes, gen.N, row.N)
		}
		if gen.P*gen.Q != 56*row.Nodes {
			t.Errorf("n=%d: grid %dx%d does not cover %d ranks", row.Nodes, gen.P, gen.Q, 56*row.Nodes)
		}
	}
}

func TestHPLBaseRuntimeUnder15Minutes(t *testing.T) {
	// "When run alone, this takes less than 15 minutes to complete", and
	// sizes were chosen to approximately preserve the runtime.
	base1 := workload.BaseRuntime(1)
	for _, row := range workload.HPLTable() {
		rt := workload.BaseRuntime(row.Nodes)
		if rt >= 900 {
			t.Errorf("n=%d: base runtime %.0f s >= 15 min", row.Nodes, rt)
		}
		if math.Abs(rt-base1)/base1 > 0.02 {
			t.Errorf("n=%d: runtime %.0f s drifts from single-node %.0f s", row.Nodes, rt, base1)
		}
	}
}

func TestIORTableValues(t *testing.T) {
	rows := workload.DefaultIOR().Rows()
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	want := map[string]string{
		"[srun] -n": "56",
		"-t":        "512",
		"-T":        "20",
		"-D":        "60",
		"-i":        "1048576",
		"-a":        "POSIX",
		"-s":        "1024",
		"-F":        "enabled",
		"-Y":        "enabled",
	}
	got := make(map[string]string)
	for _, r := range rows {
		got[r.Parameter] = r.Value
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %q, want %q", k, got[k], v)
		}
	}
	if files := workload.DefaultIOR().Files(128); files != 56*128 {
		t.Errorf("files = %d", files)
	}
}

func TestTable1IsolationShape(t *testing.T) {
	// The paper's isolation column: CPU- and memory-bound strong,
	// network medium-to-strong, all I/O profiles weak.
	want := map[string]string{
		"CPU-bound":       "Strong",
		"Memory-bound":    "Strong",
		"Network-bound":   "Medium-to-Strong",
		"IOPs-bound":      "Weak",
		"Bandwidth-bound": "Weak",
		"Metadata-bound":  "Weak",
	}
	for _, p := range workload.Profiles() {
		if got := p.Isolation(); got != want[p.Name] {
			t.Errorf("%s isolation = %s, want %s (slowdown %.3f)",
				p.Name, got, want[p.Name], p.CoScheduledSlowdown())
		}
	}
}

// fastFig3 keeps CI runtimes low while preserving the statistics.
func fastFig3() Fig3Config {
	cfg := DefaultFig3()
	cfg.NodeCounts = []int{2, 64, 128}
	cfg.Reps = 7
	return cfg
}

func findPoint(points []Fig3Point, c Class, n int) Fig3Point {
	for _, p := range points {
		if p.Class == c && p.Nodes == n {
			return p
		}
	}
	return Fig3Point{}
}

func TestFig3ShapeTargets(t *testing.T) {
	points := RunFig3(fastFig3())

	// Single IOR node slows a 128-node HPL by 7–13 %.
	single := findPoint(points, SingleBeeOND, 128)
	if s := single.Slowdown(); s < 0.05 || s > 0.16 {
		t.Errorf("Single BeeOND @128 slowdown = %.1f%%, want ≈7–13%%", s*100)
	}

	// Matching BeeOND (no meta) at 128 nodes: 47–52 % extended runtime.
	noMeta := findPoint(points, MatchingBeeONDNoMeta, 128)
	if s := noMeta.Slowdown(); s < 0.44 || s > 0.56 {
		t.Errorf("Matching BeeOND (no meta) @128 slowdown = %.1f%%, want ≈47–52%%", s*100)
	}

	// Metadata placement makes no definitive difference.
	withMeta := findPoint(points, MatchingBeeOND, 128)
	if d := math.Abs(withMeta.Slowdown() - noMeta.Slowdown()); d > 0.05 {
		t.Errorf("meta placement difference = %.1f%%, want indistinct (<5%%)", d*100)
	}

	// Matching Lustre leaves HPL essentially unaffected (it is in fact
	// slightly faster than HPL-only, which carries idle daemons).
	lus := findPoint(points, MatchingLustre, 128)
	if s := lus.Slowdown(); s > 0.005 {
		t.Errorf("Matching Lustre @128 slowdown = %.1f%%, want ≈0", s*100)
	}

	// Matching-load impact grows with node count.
	small := findPoint(points, MatchingBeeOND, 2)
	if small.Slowdown() >= withMeta.Slowdown() {
		t.Errorf("matching impact did not grow with scale: %.1f%% @2 vs %.1f%% @128",
			small.Slowdown()*100, withMeta.Slowdown()*100)
	}
}

// TestFig3ParallelDeterminism pins the contract that parallel fan-out
// must not change results: for a fixed seed, RunFig3 produces bit-
// identical samples whether replications run on one worker or many, and
// that output matches a golden digest recorded from the sequential
// implementation. Any drift in RNG stream assignment, work ordering, or
// float evaluation would change the digest.
func TestFig3ParallelDeterminism(t *testing.T) {
	cfg := Fig3Config{
		NodeCounts:   []int{1, 4},
		Reps:         5,
		LustreReps:   2,
		Seed:         20230515,
		Interference: interfere.DefaultConfig(),
		Lustre:       lustre.DefaultConfig(),
	}
	digest := func() string {
		h := sha256.New()
		for _, p := range RunFig3(cfg) {
			_ = binary.Write(h, binary.LittleEndian, int64(p.Class))
			_ = binary.Write(h, binary.LittleEndian, int64(p.Nodes))
			for _, s := range p.Samples {
				_ = binary.Write(h, binary.LittleEndian, math.Float64bits(s))
			}
		}
		return hex.EncodeToString(h.Sum(nil)[:8])
	}

	defer SetMaxWorkers(0)
	SetMaxWorkers(1)
	seq := digest()
	for _, w := range []int{2, 8} {
		SetMaxWorkers(w)
		if got := digest(); got != seq {
			t.Errorf("workers=%d digest %s != sequential %s", w, got, seq)
		}
	}
	// Golden value from the sequential implementation; guards against the
	// fan-out silently reordering RNG stream assignment.
	const golden = "6d1e39a38c3c19d5"
	if seq != golden {
		t.Errorf("sequential digest %s != golden %s", seq, golden)
	}
}

func TestFig4IdleDaemonOverhead(t *testing.T) {
	cfg := DefaultFig3()
	cfg.NodeCounts = []int{2, 64}
	cfg.Reps = 8
	points := RunFig4(cfg)
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	var at2, at64 Fig4Point
	for _, p := range points {
		switch p.Nodes {
		case 2:
			at2 = p
		case 64:
			at64 = p
		}
	}
	// "For the 64-node HPL cases, this impact was likely between 0.9 and 2.5%."
	if at64.OverheadFrac < 0.005 || at64.OverheadFrac > 0.03 {
		t.Errorf("overhead @64 = %.2f%%, want ≈0.9–2.5%%", at64.OverheadFrac*100)
	}
	// "This impact grows with the size of the job."
	if at64.OverheadFrac <= at2.OverheadFrac {
		t.Errorf("overhead did not grow: %.2f%% @2 vs %.2f%% @64",
			at2.OverheadFrac*100, at64.OverheadFrac*100)
	}
	// HPL-only (with daemons) is slower than Lustre+IOR — the paper's
	// surprising finding.
	if at64.WithDaemons.Mean <= at64.LustreIOR.Mean {
		t.Error("idle-daemon arm not slower than Lustre arm")
	}
}

func TestLifecycleUnderPaperBounds(t *testing.T) {
	points, err := RunLifecycle(DefaultLifecycle())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 9 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Assemble.Max >= 3 {
			t.Errorf("assemble @%d nodes = %.2f s, want < 3 s", p.Nodes, p.Assemble.Max)
		}
		if p.Teardown.Max >= 6 {
			t.Errorf("teardown @%d nodes = %.2f s, want < 6 s", p.Nodes, p.Teardown.Max)
		}
	}
	// Scale independence: 512-node assembly within 25 % of 2-node.
	first, last := points[0], points[len(points)-1]
	if RelDiff(last.Assemble.Mean, first.Assemble.Mean) > 0.25 {
		t.Errorf("assembly grew with scale: %.2f s @2 vs %.2f s @512",
			first.Assemble.Mean, last.Assemble.Mean)
	}
}

func TestSlurmLifecycleRoles(t *testing.T) {
	res, err := RunSlurmLifecycle(8, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Record
	if rec.State.String() != "COMPLETED" {
		t.Fatalf("state = %s (%s)", rec.State, rec.FailureReason)
	}
	if rec.PrologSeconds >= 3 {
		t.Errorf("prolog = %.2f s", rec.PrologSeconds)
	}
	if rec.EpilogSeconds >= 6 {
		t.Errorf("epilog = %.2f s", rec.EpilogSeconds)
	}
	if res.MetaNode != "node001" {
		t.Errorf("meta node = %s", res.MetaNode)
	}
	if res.RolesByNode["node001"] != "mgmtd+meta+storage+client" {
		t.Errorf("lowest node role = %s", res.RolesByNode["node001"])
	}
	if res.RolesByNode["node002"] != "storage+client" {
		t.Errorf("other node role = %s", res.RolesByNode["node002"])
	}
}

func TestSlurmDrivenFig3CrossValidates(t *testing.T) {
	// The analytic harness (RunFig3) and the end-to-end Slurm path
	// (RunFig3Slurm) must agree: same mechanisms, different plumbing.
	cfg := DefaultFig3()
	cfg.NodeCounts = []int{16}
	cfg.Reps = 8
	direct := findPoint(RunFig3(cfg), MatchingBeeOND, 16)

	viaSlurm, err := RunFig3Slurm(cfg, MatchingBeeOND, 16)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(RelDiff(viaSlurm.Runtime.Mean, direct.Runtime.Mean)); d > 0.03 {
		t.Errorf("paths disagree by %.1f%%: slurm %.1f s vs direct %.1f s",
			d*100, viaSlurm.Runtime.Mean, direct.Runtime.Mean)
	}
	// Filesystem lifecycle bounds hold inside the job too.
	if viaSlurm.Prolog.Max >= 3 {
		t.Errorf("prolog max = %.2f s", viaSlurm.Prolog.Max)
	}
	if viaSlurm.Epilog.Max >= 6 {
		t.Errorf("epilog max = %.2f s", viaSlurm.Epilog.Max)
	}

	// The Lustre arm carries no prolog cost (no beeond constraint).
	lus, err := RunFig3Slurm(cfg, MatchingLustre, 16)
	if err != nil {
		t.Fatal(err)
	}
	if lus.Prolog.Max != 0 {
		t.Errorf("lustre prolog = %.2f s, want 0", lus.Prolog.Max)
	}
}

func TestSlurmLifecycleFailureDrainsNode(t *testing.T) {
	// Inject a certain hardware start failure: the job must FAIL and the
	// offending node must be drained for inspection — the paper's error
	// handling path.
	cfg := DefaultLifecycle().FS
	cfg.StartFailProb = 1
	res, err := RunSlurmLifecycleFS(4, 100, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Record.State.String() != "FAILED" {
		t.Fatalf("state = %s", res.Record.State)
	}
	if res.Record.FailureReason == "" {
		t.Error("no failure reason recorded")
	}
	if len(res.DrainedNodes) != 1 {
		t.Errorf("drained = %v", res.DrainedNodes)
	}
}

func TestFig1ComposableBeatsStatic(t *testing.T) {
	cfg := DefaultFig1()
	cfg.Nodes = 8
	cfg.Jobs = 48
	res, err := RunFig1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Composable.JobsPlaced < res.Static.JobsPlaced {
		t.Errorf("composable placed %d < static %d", res.Composable.JobsPlaced, res.Static.JobsPlaced)
	}
	if res.Composable.StrandedFrac >= res.Static.StrandedFrac {
		t.Errorf("composable stranding %.1f%% not below static %.1f%%",
			res.Composable.StrandedFrac*100, res.Static.StrandedFrac*100)
	}
}

func TestScaleSweepSmall(t *testing.T) {
	points, err := RunScale(ScaleConfig{TreeSizes: []int{100, 1000}, Ops: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.GetP50 <= 0 || p.PatchP50 <= 0 || p.ComposePerSec <= 0 {
			t.Errorf("degenerate point %+v", p)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{
		Title:  "t",
		Header: []string{"A", "Blong"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	out := tab.String()
	if out == "" {
		t.Fatal("empty render")
	}
	for _, want := range []string{"t\n", "A", "Blong", "333"} {
		if !contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Smoke-render every real table.
	if Table1().String() == "" || Table2().String() == "" || Table3().String() == "" {
		t.Error("empty paper table")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && index(s, sub) >= 0
}

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// Package exp is the evaluation harness: it regenerates every table and
// figure of the paper from the simulation substrates and the real OFMF
// stack, with repetition counts and confidence intervals matching the
// paper's methodology (7–10 repetitions, 95 % confidence intervals).
package exp

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the statistics of one measurement cell.
type Summary struct {
	N    int
	Mean float64
	SD   float64
	CI95 float64 // half-width of the 95 % confidence interval
	Min  float64
	Max  float64
}

// Summarize computes mean, standard deviation, and the t-based 95 %
// confidence half-width of the samples.
func Summarize(samples []float64) Summary {
	n := len(samples)
	if n == 0 {
		return Summary{}
	}
	var sum float64
	mn, mx := samples[0], samples[0]
	for _, v := range samples {
		sum += v
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	mean := sum / float64(n)
	var ss float64
	for _, v := range samples {
		d := v - mean
		ss += d * d
	}
	s := Summary{N: n, Mean: mean, Min: mn, Max: mx}
	if n > 1 {
		s.SD = math.Sqrt(ss / float64(n-1))
		s.CI95 = tQuantile(n-1) * s.SD / math.Sqrt(float64(n))
	}
	return s
}

// tQuantile returns the two-sided 95 % Student-t quantile for the given
// degrees of freedom.
func tQuantile(df int) float64 {
	table := []float64{
		0: 0,
		1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
		6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
		11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
		16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
		21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
		26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
	}
	if df <= 0 {
		return 0
	}
	if df < len(table) {
		return table[df]
	}
	return 1.96
}

// Percentile returns the p-th percentile (0–100) of the samples using
// nearest-rank.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// RelDiff returns (a-b)/b.
func RelDiff(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return (a - b) / b
}

// FmtSeconds renders a duration cell as seconds with CI.
func (s Summary) FmtSeconds() string {
	return fmt.Sprintf("%.1f ± %.1f s", s.Mean, s.CI95)
}

// FmtPercent renders a fraction cell as a percentage with CI scaled the
// same way.
func FmtPercent(frac float64) string { return fmt.Sprintf("%.1f%%", frac*100) }

package exp

import (
	"fmt"
	"time"

	"ofmf/internal/composer"
	"ofmf/internal/core"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/service"
)

// ScaleConfig parameterizes the management-layer scalability study: the
// paper's §Design Considerations requires "the management layer must be
// scalable to handle hardware telemetry, device state, device
// capabilities, and management information from large numbers of
// resources".
type ScaleConfig struct {
	// TreeSizes are the resource counts to populate before measuring.
	TreeSizes []int
	// Ops is the number of timed operations per cell.
	Ops int
}

// DefaultScale sweeps 100 to 100k resources.
func DefaultScale() ScaleConfig {
	return ScaleConfig{TreeSizes: []int{100, 1000, 10000, 100000}, Ops: 2000}
}

// ScalePoint is one tree-size row.
type ScalePoint struct {
	Resources     int
	GetP50        time.Duration
	GetP99        time.Duration
	PatchP50      time.Duration
	PatchP99      time.Duration
	ComposePerSec float64
}

// RunScale populates a service tree at each size and measures read and
// write latency plus end-to-end composition throughput.
func RunScale(cfg ScaleConfig) ([]ScalePoint, error) {
	if len(cfg.TreeSizes) == 0 {
		cfg = DefaultScale()
	}
	var out []ScalePoint
	for _, size := range cfg.TreeSizes {
		pt, err := runScaleCell(size, cfg.Ops)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

func runScaleCell(size, ops int) (ScalePoint, error) {
	svc := service.New(service.Config{DirectWrites: true})
	defer svc.Close()
	st := svc.Store()

	ids := make([]odata.ID, size)
	for i := 0; i < size; i++ {
		id := service.ChassisURI.Append(fmt.Sprintf("c%06d", i))
		ids[i] = id
		err := st.Put(id, redfish.Chassis{
			Resource:    odata.NewResource(id, redfish.TypeChassis, id.Leaf()),
			ChassisType: "Sled",
			Status:      odata.StatusOK(),
		})
		if err != nil {
			return ScalePoint{}, err
		}
	}

	getLat := make([]float64, 0, ops)
	for i := 0; i < ops; i++ {
		id := ids[i*7919%size]
		t0 := time.Now()
		if _, _, err := st.Get(id); err != nil {
			return ScalePoint{}, err
		}
		getLat = append(getLat, float64(time.Since(t0)))
	}
	patchLat := make([]float64, 0, ops)
	for i := 0; i < ops; i++ {
		id := ids[i*104729%size]
		t0 := time.Now()
		if err := st.Patch(id, map[string]any{"Description": fmt.Sprintf("gen-%d", i)}, ""); err != nil {
			return ScalePoint{}, err
		}
		patchLat = append(patchLat, float64(time.Since(t0)))
	}

	// Composition throughput on a small live testbed (independent of the
	// synthetic tree size but reported alongside for context).
	f, err := core.New(core.Config{Nodes: 8, CXLDevices: 8, CXLDeviceMiB: 1 << 20})
	if err != nil {
		return ScalePoint{}, err
	}
	defer f.Close()
	const rounds = 50
	t0 := time.Now()
	for i := 0; i < rounds; i++ {
		comp, err := f.Composer.Compose(composer.Request{Cores: 1, FabricMemoryMiB: 64})
		if err != nil {
			return ScalePoint{}, err
		}
		if err := f.Composer.Decompose(comp.ID); err != nil {
			return ScalePoint{}, err
		}
	}
	elapsed := time.Since(t0)

	return ScalePoint{
		Resources:     size,
		GetP50:        time.Duration(Percentile(getLat, 50)),
		GetP99:        time.Duration(Percentile(getLat, 99)),
		PatchP50:      time.Duration(Percentile(patchLat, 50)),
		PatchP99:      time.Duration(Percentile(patchLat, 99)),
		ComposePerSec: float64(rounds) / elapsed.Seconds(),
	}, nil
}

// ScaleTable renders the sweep.
func ScaleTable(points []ScalePoint) Table {
	t := Table{
		Title:  "OFMF management-layer scalability",
		Header: []string{"Resources", "GET p50", "GET p99", "PATCH p50", "PATCH p99", "Compose+decompose/s"},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Resources),
			p.GetP50.String(), p.GetP99.String(),
			p.PatchP50.String(), p.PatchP99.String(),
			fmt.Sprintf("%.0f", p.ComposePerSec),
		})
	}
	return t
}

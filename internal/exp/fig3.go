package exp

import (
	"fmt"

	"ofmf/internal/sim/beeond"
	"ofmf/internal/sim/cluster"
	"ofmf/internal/sim/des"
	"ofmf/internal/sim/interfere"
	"ofmf/internal/sim/lustre"
	"ofmf/internal/sim/workload"
)

// Class is one of the paper's five experiment classes (§Experimental
// Procedure).
type Class int

// The five classes.
const (
	HPLOnly Class = iota
	MatchingLustre
	SingleBeeOND
	MatchingBeeOND
	MatchingBeeONDNoMeta
)

// Classes lists every experiment class in presentation order.
func Classes() []Class {
	return []Class{HPLOnly, MatchingLustre, SingleBeeOND, MatchingBeeOND, MatchingBeeONDNoMeta}
}

// String names the class as the paper does.
func (c Class) String() string {
	switch c {
	case HPLOnly:
		return "HPL-Only"
	case MatchingLustre:
		return "Matching Lustre"
	case SingleBeeOND:
		return "Single BeeOND"
	case MatchingBeeOND:
		return "Matching BeeOND"
	case MatchingBeeONDNoMeta:
		return "Matching BeeOND (no meta)"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Fig3Config parameterizes the multinode interference experiment.
type Fig3Config struct {
	// NodeCounts are the HPL sizes; default {1,2,4,...,128} per Table II.
	NodeCounts []int
	// Reps is the repetition count; the paper ran 7–10 (Lustre arms 3).
	Reps int
	// LustreReps overrides the Matching Lustre repetition count (paper: 3).
	LustreReps int
	// Seed makes the experiment reproducible.
	Seed uint64
	// Interference calibrates the steal model.
	Interference interfere.Config
	// Lustre calibrates the central-filesystem arm.
	Lustre lustre.Config
}

// DefaultFig3 matches the paper's setup.
func DefaultFig3() Fig3Config {
	return Fig3Config{
		NodeCounts:   []int{1, 2, 4, 8, 16, 32, 64, 128},
		Reps:         8,
		LustreReps:   3,
		Seed:         20230515,
		Interference: interfere.DefaultConfig(),
		Lustre:       lustre.DefaultConfig(),
	}
}

// Fig3Point is one (class, node count) cell of the figure.
type Fig3Point struct {
	Class   Class
	Nodes   int
	Runtime Summary
	// BaselineMean is the HPL-Only mean at the same node count, for
	// relative-impact reporting.
	BaselineMean float64
	Samples      []float64
}

// Slowdown reports the relative runtime increase over the HPL-Only arm.
func (p Fig3Point) Slowdown() float64 { return RelDiff(p.Runtime.Mean, p.BaselineMean) }

// RunFig3 reproduces Figure 3: HPL execution times with and without IOR
// processes co-located within the partition, across the five classes.
// Replications run in parallel across cores (see SetMaxWorkers); results
// are bit-identical to a sequential run because every replication's RNG
// stream is split off the root generator up front, in the sequential
// loop's order, before any work is fanned out.
func RunFig3(cfg Fig3Config) []Fig3Point {
	if len(cfg.NodeCounts) == 0 {
		cfg = DefaultFig3()
	}
	root := des.NewRNG(cfg.Seed)

	type rep struct {
		class Class
		n     int
		rng   *des.RNG
		out   *float64
	}
	type cell struct {
		class   Class
		n       int
		samples []float64
	}
	var work []rep
	var cells []cell
	for _, class := range Classes() {
		for _, n := range cfg.NodeCounts {
			reps := cfg.Reps
			if class == MatchingLustre && cfg.LustreReps > 0 {
				reps = cfg.LustreReps
			}
			c := cell{class: class, n: n, samples: make([]float64, reps)}
			for r := 0; r < reps; r++ {
				// Split mutates root, so this must stay on the single
				// planning goroutine, in loop order.
				work = append(work, rep{
					class: class,
					n:     n,
					rng:   root.Split(uint64(class)<<32 ^ uint64(n)<<8 ^ uint64(r)),
					out:   &c.samples[r],
				})
			}
			cells = append(cells, c)
		}
	}

	parallelFor(len(work), func(i int) {
		w := work[i]
		*w.out = runOnce(cfg, w.class, w.n, w.rng)
	})

	var points []Fig3Point
	baselines := make(map[int]float64)
	for _, c := range cells {
		pt := Fig3Point{Class: c.class, Nodes: c.n, Runtime: Summarize(c.samples), Samples: c.samples}
		if c.class == HPLOnly {
			baselines[c.n] = pt.Runtime.Mean
		}
		pt.BaselineMean = baselines[c.n]
		points = append(points, pt)
	}
	return points
}

// runOnce simulates one experiment: an n-node HPL sharing an allocation
// with the class's IOR arrangement.
func runOnce(cfg Fig3Config, class Class, n int, rng *des.RNG) float64 {
	loads := nodeLoads(cfg, class, n)
	model := workload.HPLModel{Nodes: n}
	return model.Run(rng, func(node, phase int, r *des.RNG) float64 {
		return interfere.Sample(cfg.Interference, loads[node], r)
	})
}

// nodeLoads builds the per-HPL-node filesystem load for the class,
// following the paper's process layout: the allocation is sorted by
// hostname; HPL occupies the first n compute slots (after the optional
// dedicated metadata node), IOR the remainder; BeeOND spans the entire
// allocation with the lowest node as Mgmtd/Meta.
func nodeLoads(cfg Fig3Config, class Class, n int) []interfere.NodeLoad {
	ior := workload.DefaultIOR()
	loads := make([]interfere.NodeLoad, n)

	switch class {
	case HPLOnly:
		// BeeOND daemons configured and started (same job scripts), but no
		// storage operations.
		for i := range loads {
			loads[i] = interfere.NodeLoad{DaemonsResident: true, MetaServer: i == 0}
		}

	case MatchingLustre:
		// No BeeOND daemons loaded; IOR targets external Lustre servers,
		// leaving only residual fabric-level impact on compute nodes.
		lc := cfg.Lustre
		if lc.ComputeImpact == 0 && lc.ComputeImpactSD == 0 {
			lc = lustre.DefaultConfig()
		}
		for i := range loads {
			loads[i] = interfere.NodeLoad{
				ExternalResidual:   lc.ComputeImpact,
				ExternalResidualSD: lc.ComputeImpactSD,
			}
		}

	case SingleBeeOND, MatchingBeeOND, MatchingBeeONDNoMeta:
		iorNodes := 1
		if class != SingleBeeOND {
			iorNodes = n
		}
		dedicatedMeta := 0
		if class == MatchingBeeONDNoMeta {
			dedicatedMeta = 1
		}
		total := dedicatedMeta + n + iorNodes
		allNodes := make([]string, total)
		for i := range allNodes {
			allNodes[i] = cluster.NodeName(i)
		}
		fs := beeond.New(beeond.DefaultConfig(), allNodes)
		files := fs.Stripe(ior.Files(iorNodes))
		meta := fs.MetaNode()
		// HPL nodes are allocation slots [dedicatedMeta, dedicatedMeta+n).
		for i := 0; i < n; i++ {
			name := allNodes[dedicatedMeta+i]
			loads[i] = interfere.NodeLoad{
				DaemonsResident: true,
				ActiveFiles:     files[name],
				MetaServer:      name == meta,
			}
		}
	}
	return loads
}

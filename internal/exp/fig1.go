package exp

import (
	"fmt"

	"ofmf/internal/composer"
	"ofmf/internal/core"
	"ofmf/internal/sim/des"
)

// Fig1Config parameterizes the stranded-resources experiment behind
// Figure 1: the same total hardware budget deployed two ways — statically
// provisioned into every node ("all of the options") versus pooled behind
// the OFMF and composed on demand.
type Fig1Config struct {
	// Nodes is the compute-node count (default 16).
	Nodes int
	// CoresPerNode (default 56).
	CoresPerNode int
	// StaticMemMiB is the memory provisioned in every node in the static
	// arm (default 256 GiB); the composable arm pools the same total.
	StaticMemMiB int64
	// StaticGPUSlices is the accelerator capacity per node in the static
	// arm (default 14 = two 7-slice GPUs); pooled in the composable arm.
	StaticGPUSlices int
	// Jobs is the number of submissions drawn from the mix (default 64).
	Jobs int
	// Seed drives the job mix.
	Seed uint64
}

// DefaultFig1 returns the default setup.
func DefaultFig1() Fig1Config {
	return Fig1Config{
		Nodes:           16,
		CoresPerNode:    56,
		StaticMemMiB:    256 * 1024,
		StaticGPUSlices: 14,
		Jobs:            64,
		Seed:            7,
	}
}

// JobDemand is one job's resource request.
type JobDemand struct {
	Cores     int
	MemMiB    int64
	GPUSlices int
}

// JobMix draws a heterogeneous HPC job mix: compute-only, memory-heavy,
// GPU, and mixed jobs in realistic proportions.
func JobMix(cfg Fig1Config, rng *des.RNG) []JobDemand {
	jobs := make([]JobDemand, 0, cfg.Jobs)
	for i := 0; i < cfg.Jobs; i++ {
		var j JobDemand
		switch pick := rng.Float64(); {
		case pick < 0.40: // compute-only
			j = JobDemand{Cores: 8 + rng.Intn(24), MemMiB: 16 * 1024}
		case pick < 0.65: // memory-heavy
			j = JobDemand{Cores: 4 + rng.Intn(12), MemMiB: int64(128+rng.Intn(128)) * 1024}
		case pick < 0.85: // GPU
			j = JobDemand{Cores: 4 + rng.Intn(8), MemMiB: 32 * 1024, GPUSlices: 2 + rng.Intn(10)}
		default: // mixed heavyweight
			j = JobDemand{Cores: 16 + rng.Intn(16), MemMiB: int64(64+rng.Intn(96)) * 1024, GPUSlices: 1 + rng.Intn(6)}
		}
		jobs = append(jobs, j)
	}
	return jobs
}

// ArmResult summarizes one deployment arm after placing the mix.
type ArmResult struct {
	Name       string
	JobsPlaced int
	JobsTotal  int
	CoreUtil   float64
	MemUtil    float64
	GPUUtil    float64
	// StrandedFrac is the provisioned capacity that cannot serve any
	// queued job (weighted mean over the three resource classes).
	StrandedFrac float64
}

// Fig1Result pairs the two arms.
type Fig1Result struct {
	Static     ArmResult
	Composable ArmResult
}

// RunFig1 places the same job mix on both arms and reports utilization.
func RunFig1(cfg Fig1Config) (Fig1Result, error) {
	if cfg.Nodes == 0 {
		cfg = DefaultFig1()
	}
	rng := des.NewRNG(cfg.Seed)
	jobs := JobMix(cfg, rng)

	static := placeStatic(cfg, jobs)

	comp, err := placeComposable(cfg, jobs)
	if err != nil {
		return Fig1Result{}, err
	}
	return Fig1Result{Static: static, Composable: comp}, nil
}

// placeStatic packs jobs onto statically provisioned nodes under the
// exclusive-node allocation conventional HPC schedulers use: a job takes
// whole nodes, and every resource of those nodes — used or not — is
// assigned to it. A CPU-only job therefore strands its nodes' GPUs and
// surplus memory, the exact mechanism the paper's Figure 1 illustrates.
func placeStatic(cfg Fig1Config, jobs []JobDemand) ArmResult {
	freeNodes := cfg.Nodes
	res := ArmResult{Name: "Static provisioning", JobsTotal: len(jobs)}
	var usedCores int
	var usedMem int64
	var usedSlices int
	for _, j := range jobs {
		need := (j.Cores + cfg.CoresPerNode - 1) / cfg.CoresPerNode
		// The job's memory and GPU demand must also fit in the nodes it
		// takes, or it needs more of them.
		for need*int(cfg.StaticMemMiB) < int(j.MemMiB) || need*cfg.StaticGPUSlices < j.GPUSlices {
			need++
		}
		if need > freeNodes {
			continue
		}
		freeNodes -= need
		usedCores += j.Cores
		usedMem += j.MemMiB
		usedSlices += j.GPUSlices
		res.JobsPlaced++
	}
	totCores := cfg.Nodes * cfg.CoresPerNode
	totMem := int64(cfg.Nodes) * cfg.StaticMemMiB
	totSlices := cfg.Nodes * cfg.StaticGPUSlices
	res.CoreUtil = float64(usedCores) / float64(totCores)
	res.MemUtil = float64(usedMem) / float64(totMem)
	res.GPUUtil = float64(usedSlices) / float64(totSlices)
	res.StrandedFrac = 1 - (res.CoreUtil+res.MemUtil+res.GPUUtil)/3
	return res
}

// placeComposable routes the same jobs through the real Composability
// Manager over pooled hardware of identical total size.
func placeComposable(cfg Fig1Config, jobs []JobDemand) (ArmResult, error) {
	gpus := cfg.Nodes * cfg.StaticGPUSlices / 7
	if gpus < 1 {
		gpus = 1
	}
	f, err := core.New(core.Config{
		Nodes:        cfg.Nodes,
		CoresPerNode: cfg.CoresPerNode,
		CXLDevices:   cfg.Nodes,
		CXLDeviceMiB: cfg.StaticMemMiB,
		GPUs:         gpus,
		SlicesPerGPU: 7,
		Policy:       composer.BestFit{},
	})
	if err != nil {
		return ArmResult{}, err
	}
	defer f.Close()

	res := ArmResult{Name: "Composable (OFMF)", JobsTotal: len(jobs)}
	var usedCores int
	var usedMem int64
	var usedSlices int
	for i, j := range jobs {
		req := composer.Request{
			Name:            fmt.Sprintf("mixjob-%d", i),
			Cores:           j.Cores,
			FabricMemoryMiB: j.MemMiB,
			GPUSlices:       j.GPUSlices,
		}
		if _, err := f.Composer.Compose(req); err != nil {
			continue // job does not fit; resources stay pooled for others
		}
		res.JobsPlaced++
		usedCores += j.Cores
		usedMem += j.MemMiB
		usedSlices += j.GPUSlices
	}
	totCores := cfg.Nodes * cfg.CoresPerNode
	totMem := int64(cfg.Nodes) * cfg.StaticMemMiB
	totSlices := gpus * 7
	res.CoreUtil = float64(usedCores) / float64(totCores)
	res.MemUtil = float64(usedMem) / float64(totMem)
	res.GPUUtil = float64(usedSlices) / float64(totSlices)
	res.StrandedFrac = 1 - (res.CoreUtil+res.MemUtil+res.GPUUtil)/3
	return res, nil
}

// Fig1Table renders the comparison.
func Fig1Table(r Fig1Result) Table {
	row := func(a ArmResult) []string {
		return []string{
			a.Name,
			fmt.Sprintf("%d / %d", a.JobsPlaced, a.JobsTotal),
			FmtPercent(a.CoreUtil),
			FmtPercent(a.MemUtil),
			FmtPercent(a.GPUUtil),
			FmtPercent(a.StrandedFrac),
		}
	}
	return Table{
		Title:  "Figure 1: stranded resources — static vs composable deployment of the same hardware",
		Header: []string{"Arm", "Jobs placed", "Core util", "Memory util", "GPU util", "Stranded"},
		Rows:   [][]string{row(r.Static), row(r.Composable)},
	}
}

package exp

import (
	"fmt"

	"ofmf/internal/sim/beeond"
	"ofmf/internal/sim/cluster"
	"ofmf/internal/sim/des"
	"ofmf/internal/sim/interfere"
	"ofmf/internal/sim/lustre"
	"ofmf/internal/sim/slurm"
	"ofmf/internal/sim/workload"
)

// SlurmFig3Point is one measurement taken through the full workload-
// manager path: the experiment runs as an actual Slurm job whose prolog
// assembles the BeeOND filesystem over the allocation, whose compute
// phase runs the HPL interference model against the filesystem state the
// prolog actually built, and whose epilog tears everything down.
type SlurmFig3Point struct {
	Class   Class
	Nodes   int
	Runtime Summary
	Prolog  Summary
	Epilog  Summary
}

// RunFig3Slurm reproduces a Figure 3 cell end-to-end through the Slurm
// simulator. It exists to cross-validate RunFig3: both paths must agree,
// since RunFig3 derives node loads analytically while this derives them
// from the live filesystem instance the prolog builds.
func RunFig3Slurm(cfg Fig3Config, class Class, n int) (SlurmFig3Point, error) {
	if cfg.Reps == 0 {
		cfg = DefaultFig3()
	}
	root := des.NewRNG(cfg.Seed)

	// Split every replication's stream off the root generator before the
	// fan-out; Split mutates root, so the order here fixes the result for
	// any worker count.
	rngs := make([]*des.RNG, cfg.Reps)
	for rep := 0; rep < cfg.Reps; rep++ {
		rngs[rep] = root.Split(uint64(class)<<40 ^ uint64(n)<<16 ^ uint64(rep))
	}

	runtimes := make([]float64, cfg.Reps)
	prologs := make([]float64, cfg.Reps)
	epilogs := make([]float64, cfg.Reps)
	errs := make([]error, cfg.Reps)
	parallelFor(cfg.Reps, func(rep int) {
		rec, err := runSlurmRep(cfg, class, n, rngs[rep])
		if err != nil {
			errs[rep] = err
			return
		}
		runtimes[rep] = rec.RunSeconds()
		prologs[rep] = rec.PrologSeconds
		epilogs[rep] = rec.EpilogSeconds
	})
	// Report the first failure in replication order, matching what the
	// sequential loop would have surfaced.
	for _, err := range errs {
		if err != nil {
			return SlurmFig3Point{}, err
		}
	}
	return SlurmFig3Point{
		Class:   class,
		Nodes:   n,
		Runtime: Summarize(runtimes),
		Prolog:  Summarize(prologs),
		Epilog:  Summarize(epilogs),
	}, nil
}

// runSlurmRep executes one replication: it builds a private simulator,
// cluster and workload manager, submits the job and returns its record.
// Everything it touches is replication-local, so replications are safe to
// run concurrently.
func runSlurmRep(cfg Fig3Config, class Class, n int, rng *des.RNG) (slurm.JobRecord, error) {
	ior := workload.DefaultIOR()

	iorNodes := 0
	dedicatedMeta := 0
	useBeeond := true
	switch class {
	case HPLOnly:
	case MatchingLustre:
		iorNodes = n
		useBeeond = false
	case SingleBeeOND:
		iorNodes = 1
	case MatchingBeeOND:
		iorNodes = n
	case MatchingBeeONDNoMeta:
		iorNodes = n
		dedicatedMeta = 1
	}
	total := dedicatedMeta + n + iorNodes

	sim := &des.Sim{}
	cl := cluster.NewDefault(total)
	m := slurm.NewManager(sim, cl, rng.Split(1))

	var fs *beeond.FS
	if useBeeond {
		m.Prolog = func(ctx slurm.JobContext, node string, hr *des.RNG) (float64, error) {
			if !ctx.HasConstraint("beeond") {
				return 0, nil
			}
			if fs == nil {
				fs = beeond.New(beeond.DefaultConfig(), ctx.Nodes)
			}
			return fs.StartNode(node, hr)
		}
		m.Epilog = func(ctx slurm.JobContext, node string, hr *des.RNG) (float64, error) {
			if !ctx.HasConstraint("beeond") {
				return 0, nil
			}
			return fs.StopNode(node, hr)
		}
	}

	var constraints []string
	if useBeeond {
		constraints = []string{"beeond"}
	}
	runModel := func(ctx slurm.JobContext, jr *des.RNG) float64 {
		loads := slurmNodeLoads(cfg, class, n, dedicatedMeta, iorNodes, ior, ctx, fs)
		model := workload.HPLModel{Nodes: n}
		return model.Run(jr, func(node, phase int, r *des.RNG) float64 {
			return interfere.Sample(cfg.Interference, loads[node], r)
		})
	}
	id, err := m.Submit(slurm.JobSpec{Nodes: total, Constraints: constraints, Run: runModel})
	if err != nil {
		return slurm.JobRecord{}, err
	}
	sim.Run()
	rec, err := m.Record(id)
	if err != nil {
		return slurm.JobRecord{}, err
	}
	if rec.State != slurm.StateCompleted {
		return slurm.JobRecord{}, fmt.Errorf("exp: job %d %s: %s", id, rec.State, rec.FailureReason)
	}
	return rec, nil
}

// slurmNodeLoads derives per-HPL-node loads from the live allocation: the
// filesystem the prolog assembled stripes the IOR files, and the HPL
// slots follow the paper's layout (dedicated metadata node first when
// requested, then HPL, then IOR nodes).
func slurmNodeLoads(cfg Fig3Config, class Class, n, dedicatedMeta, iorNodes int, ior workload.IORConfig, ctx slurm.JobContext, fs *beeond.FS) []interfere.NodeLoad {
	loads := make([]interfere.NodeLoad, n)
	switch class {
	case HPLOnly:
		for i := range loads {
			loads[i] = interfere.NodeLoad{DaemonsResident: true, MetaServer: ctx.Nodes[i] == fs.MetaNode()}
		}
	case MatchingLustre:
		lc := cfg.Lustre
		if lc.ComputeImpact == 0 && lc.ComputeImpactSD == 0 {
			lc = lustre.DefaultConfig()
		}
		for i := range loads {
			loads[i] = interfere.NodeLoad{ExternalResidual: lc.ComputeImpact, ExternalResidualSD: lc.ComputeImpactSD}
		}
	default:
		files := fs.Stripe(ior.Files(iorNodes))
		meta := fs.MetaNode()
		for i := 0; i < n; i++ {
			name := ctx.Nodes[dedicatedMeta+i]
			loads[i] = interfere.NodeLoad{
				DaemonsResident: true,
				ActiveFiles:     files[name],
				MetaServer:      name == meta,
			}
		}
	}
	return loads
}

package exp

import (
	"fmt"
	"strings"

	"ofmf/internal/sim/workload"
)

// Table renders an aligned plain-text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as RFC 4180 CSV for plotting pipelines.
func (t Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Table1 regenerates Table I: profiles, benchmarks and the isolation
// classification measured from the contention model.
func Table1() Table {
	t := Table{
		Title:  "Table I: performance profiles and measured isolation",
		Header: []string{"Profile", "Description", "Benchmark", "Co-sched slowdown", "Isolation"},
	}
	for _, p := range workload.Profiles() {
		t.Rows = append(t.Rows, []string{
			p.Name, p.Description, p.Benchmark,
			FmtPercent(p.CoScheduledSlowdown()), p.Isolation(),
		})
	}
	return t
}

// Table2 regenerates Table II: HPL parameters by node count, from the
// extrapolation rule, alongside the paper's published values.
func Table2() Table {
	t := Table{
		Title:  "Table II: HPL parameters by node count",
		Header: []string{"Node Count", "Row Count (N)", "Grid P", "Grid Q", "Generated N", "Base runtime"},
	}
	for _, row := range workload.HPLTable() {
		gen := workload.HPLParams(row.Nodes)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", row.Nodes),
			fmt.Sprintf("%d", row.N),
			fmt.Sprintf("%d", row.P),
			fmt.Sprintf("%d", row.Q),
			fmt.Sprintf("%d", gen.N),
			fmt.Sprintf("%.0f s", workload.BaseRuntime(row.Nodes)),
		})
	}
	return t
}

// Table3 regenerates Table III: the IOR parameters.
func Table3() Table {
	t := Table{
		Title:  "Table III: IOR parameters",
		Header: []string{"Parameter", "Description", "Value"},
	}
	for _, row := range workload.DefaultIOR().Rows() {
		t.Rows = append(t.Rows, []string{row.Parameter, row.Description, row.Value})
	}
	return t
}

// Fig3Table renders Figure 3's data as a table: one row per (class, node
// count) with runtime, CI and slowdown vs the HPL-Only arm.
func Fig3Table(points []Fig3Point) Table {
	t := Table{
		Title:  "Figure 3: HPL execution time with and without co-located IOR (mean ± 95% CI)",
		Header: []string{"Class", "Nodes", "Runtime", "Slowdown vs HPL-Only"},
	}
	for _, p := range points {
		slow := "-"
		if p.Class != HPLOnly && p.BaselineMean > 0 {
			slow = FmtPercent(p.Slowdown())
		}
		t.Rows = append(t.Rows, []string{
			p.Class.String(),
			fmt.Sprintf("%d", p.Nodes),
			p.Runtime.FmtSeconds(),
			slow,
		})
	}
	return t
}

// Fig4Table renders Figure 4's data: idle-daemon overhead per node count.
func Fig4Table(points []Fig4Point) Table {
	t := Table{
		Title:  "Figure 4: HPL-only (idle BeeOND daemons) vs Lustre+IOR (no daemons)",
		Header: []string{"Nodes", "HPL-only (daemons)", "Lustre+IOR", "Idle-daemon overhead", "Range"},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Nodes),
			p.WithDaemons.FmtSeconds(),
			p.LustreIOR.FmtSeconds(),
			FmtPercent(p.OverheadFrac),
			fmt.Sprintf("[%s, %s]", FmtPercent(p.OverheadLow), FmtPercent(p.OverheadHigh)),
		})
	}
	return t
}

// LifecycleTable renders the BeeOND assembly/teardown sweep.
func LifecycleTable(points []LifecyclePoint) Table {
	t := Table{
		Title:  "BeeOND lifecycle: assembly < 3 s, teardown < 6 s at every scale",
		Header: []string{"Nodes", "Assemble", "Teardown"},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Nodes),
			fmt.Sprintf("%.2f ± %.2f s (max %.2f)", p.Assemble.Mean, p.Assemble.CI95, p.Assemble.Max),
			fmt.Sprintf("%.2f ± %.2f s (max %.2f)", p.Teardown.Mean, p.Teardown.CI95, p.Teardown.Max),
		})
	}
	return t
}

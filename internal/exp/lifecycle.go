package exp

import (
	"fmt"

	"ofmf/internal/sim/beeond"
	"ofmf/internal/sim/cluster"
	"ofmf/internal/sim/des"
	"ofmf/internal/sim/slurm"
)

// LifecycleConfig parameterizes the BeeOND assembly/teardown experiment
// validating the paper's claim: "complete stable private BeeOND
// filesystems in under 3 seconds and disassembled and erased in under 6
// seconds, regardless of the scale of the compute node allocation".
type LifecycleConfig struct {
	NodeCounts []int
	Reps       int
	Seed       uint64
	FS         beeond.Config
}

// DefaultLifecycle sweeps allocations from 2 to 512 nodes.
func DefaultLifecycle() LifecycleConfig {
	return LifecycleConfig{
		NodeCounts: []int{2, 4, 8, 16, 32, 64, 128, 256, 512},
		Reps:       10,
		Seed:       42,
		FS:         beeond.DefaultConfig(),
	}
}

// LifecyclePoint is one node-count row.
type LifecyclePoint struct {
	Nodes    int
	Assemble Summary
	Teardown Summary
}

// RunLifecycle measures assembly and teardown wall time across scales.
// Replications run in parallel (see SetMaxWorkers) with bit-identical
// results: RNG streams are split off the root sequentially, in the same
// order the sequential loop used, before any work is fanned out.
func RunLifecycle(cfg LifecycleConfig) ([]LifecyclePoint, error) {
	if len(cfg.NodeCounts) == 0 {
		cfg = DefaultLifecycle()
	}
	root := des.NewRNG(cfg.Seed)

	type item struct {
		nIdx     int
		nodes    []string
		rng      *des.RNG
		up, down *float64
	}
	ups := make([][]float64, len(cfg.NodeCounts))
	downs := make([][]float64, len(cfg.NodeCounts))
	var work []item
	for ni, n := range cfg.NodeCounts {
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = cluster.NodeName(i)
		}
		ups[ni] = make([]float64, cfg.Reps)
		downs[ni] = make([]float64, cfg.Reps)
		for rep := 0; rep < cfg.Reps; rep++ {
			work = append(work, item{
				nIdx:  ni,
				nodes: nodes,
				rng:   root.Split(uint64(n)<<16 ^ uint64(rep)),
				up:    &ups[ni][rep],
				down:  &downs[ni][rep],
			})
		}
	}

	errs := make([]error, len(work))
	parallelFor(len(work), func(i int) {
		w := work[i]
		// beeond.New copies the shared node list, so concurrent
		// replications at the same scale never alias filesystem state.
		fs := beeond.New(cfg.FS, w.nodes)
		a, err := fs.Assemble(w.rng)
		if err != nil {
			errs[i] = fmt.Errorf("exp: assemble %d nodes: %w", cfg.NodeCounts[w.nIdx], err)
			return
		}
		d, err := fs.Disassemble(w.rng)
		if err != nil {
			errs[i] = fmt.Errorf("exp: disassemble %d nodes: %w", cfg.NodeCounts[w.nIdx], err)
			return
		}
		*w.up = a
		*w.down = d
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	out := make([]LifecyclePoint, 0, len(cfg.NodeCounts))
	for ni, n := range cfg.NodeCounts {
		out = append(out, LifecyclePoint{Nodes: n, Assemble: Summarize(ups[ni]), Teardown: Summarize(downs[ni])})
	}
	return out, nil
}

// SlurmLifecycleResult captures a full job lifecycle through the Slurm
// simulator with BeeOND prolog/epilog integration: the end-to-end path of
// the paper's §Integration with Slurm.
type SlurmLifecycleResult struct {
	Record      slurm.JobRecord
	MetaNode    string
	RolesByNode map[string]string
	// DrainedNodes lists nodes Slurm drained after hook failures.
	DrainedNodes []string
}

// RunSlurmLifecycle submits one n-node job with the "beeond" constraint
// through the Slurm simulator; the prolog assembles the filesystem, the
// epilog disassembles and reformats.
func RunSlurmLifecycle(n int, runSeconds float64, seed uint64) (SlurmLifecycleResult, error) {
	return RunSlurmLifecycleFS(n, runSeconds, seed, beeond.DefaultConfig())
}

// RunSlurmLifecycleFS is RunSlurmLifecycle with an explicit filesystem
// timing/failure model — used for failure-injection experiments: a
// hardware-related prolog failure must fail the job and drain the node,
// exactly as the paper's error handling describes.
func RunSlurmLifecycleFS(n int, runSeconds float64, seed uint64, fsCfg beeond.Config) (SlurmLifecycleResult, error) {
	sim := &des.Sim{}
	cl := cluster.NewDefault(n)
	m := slurm.NewManager(sim, cl, des.NewRNG(seed))

	fsByJob := make(map[int]*beeond.FS)
	fsFor := func(ctx slurm.JobContext) *beeond.FS {
		fs, ok := fsByJob[ctx.JobID]
		if !ok {
			fs = beeond.New(fsCfg, ctx.Nodes)
			fsByJob[ctx.JobID] = fs
		}
		return fs
	}
	m.Prolog = func(ctx slurm.JobContext, node string, rng *des.RNG) (float64, error) {
		if !ctx.HasConstraint("beeond") {
			return 0, nil
		}
		return fsFor(ctx).StartNode(node, rng)
	}
	m.Epilog = func(ctx slurm.JobContext, node string, rng *des.RNG) (float64, error) {
		if !ctx.HasConstraint("beeond") {
			return 0, nil
		}
		return fsFor(ctx).StopNode(node, rng)
	}

	id, err := m.Submit(slurm.JobSpec{
		Nodes:       n,
		Constraints: []string{"beeond"},
		Run:         func(slurm.JobContext, *des.RNG) float64 { return runSeconds },
	})
	if err != nil {
		return SlurmLifecycleResult{}, err
	}
	sim.Run()
	rec, err := m.Record(id)
	if err != nil {
		return SlurmLifecycleResult{}, err
	}
	fs := fsByJob[id]
	roles := make(map[string]string, len(rec.Nodes))
	meta := ""
	if fs != nil {
		meta = fs.MetaNode()
		for _, node := range rec.Nodes {
			role, err := fs.RoleOf(node)
			if err != nil {
				return SlurmLifecycleResult{}, err
			}
			roles[node] = role.String()
		}
	}
	return SlurmLifecycleResult{
		Record:       rec,
		MetaNode:     meta,
		RolesByNode:  roles,
		DrainedNodes: cl.Drained(),
	}, nil
}

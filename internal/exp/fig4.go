package exp

// Fig4Point is one node-count row of Figure 4: the detailed comparison of
// HPL-only runs (with idle BeeOND daemons resident) against HPL running
// alongside IOR targeting Lustre (no BeeOND daemons).
type Fig4Point struct {
	Nodes       int
	WithDaemons Summary // HPL-Only arm (idle BeeOND daemons loaded)
	LustreIOR   Summary // Matching Lustre arm (no daemons, IOR external)
	// OverheadFrac is the relative slowdown idle daemons impose:
	// (WithDaemons - LustreIOR) / LustreIOR.
	OverheadFrac float64
	// OverheadLow/High bound the overhead using each arm's CI.
	OverheadLow, OverheadHigh float64
}

// RunFig4 reproduces Figure 4, reusing the Figure 3 simulation with both
// arms at full repetition count.
func RunFig4(cfg Fig3Config) []Fig4Point {
	if len(cfg.NodeCounts) == 0 {
		cfg = DefaultFig3()
		cfg.NodeCounts = []int{1, 2, 4, 8, 16, 32, 64}
	}
	cfg.LustreReps = cfg.Reps // full repetitions for the variance study
	points := RunFig3(cfg)

	byNode := make(map[int]*Fig4Point)
	var order []int
	for _, p := range points {
		fp, ok := byNode[p.Nodes]
		if !ok {
			fp = &Fig4Point{Nodes: p.Nodes}
			byNode[p.Nodes] = fp
			order = append(order, p.Nodes)
		}
		switch p.Class {
		case HPLOnly:
			fp.WithDaemons = p.Runtime
		case MatchingLustre:
			fp.LustreIOR = p.Runtime
		}
	}
	var out []Fig4Point
	for _, n := range order {
		fp := byNode[n]
		if fp.LustreIOR.Mean > 0 {
			fp.OverheadFrac = RelDiff(fp.WithDaemons.Mean, fp.LustreIOR.Mean)
			fp.OverheadLow = RelDiff(fp.WithDaemons.Mean-fp.WithDaemons.CI95, fp.LustreIOR.Mean+fp.LustreIOR.CI95)
			fp.OverheadHigh = RelDiff(fp.WithDaemons.Mean+fp.WithDaemons.CI95, fp.LustreIOR.Mean-fp.LustreIOR.CI95)
		}
		out = append(out, *fp)
	}
	return out
}

package resilience

import (
	"context"
	"io"
	"net/http"
	"sync"
	"time"
)

// Transport applies a Policy to every request: each attempt runs under
// its own deadline, transport errors and 5xx/429 responses are retried
// (idempotent requests only, within the retry budget) behind jittered
// exponential backoff, and a per-peer circuit breaker fails calls fast
// while a peer is down, probing it again after a cool-down.
type Transport struct {
	// Base performs the actual round trips (default
	// http.DefaultTransport).
	Base http.RoundTripper
	// Policy is the fault-handling configuration; zero-valued fields
	// take DefaultPolicy values.
	Policy Policy
	// Retryable decides whether a request may consume more than one
	// attempt. Nil means idempotent methods only (GET, HEAD, PUT,
	// DELETE, OPTIONS). Control-plane edges whose POSTs are
	// idempotent by construction (subtree replace, heartbeat,
	// collection registration) override this.
	Retryable func(*http.Request) bool

	mu       sync.Mutex
	breakers *BreakerSet
}

// NewHTTPClient wraps a Transport with the given policy in an
// http.Client. The client's own Timeout is left at zero: attempt
// deadlines, retries and breaker behaviour all live in the transport.
func NewHTTPClient(p Policy) *http.Client {
	return &http.Client{Transport: &Transport{Policy: p}}
}

// NewStreamingHTTPClient builds a client for long-lived connections
// (SSE): no per-attempt deadline, no retries, but still breaker-guarded
// so a wedged peer fails fast.
func NewStreamingHTTPClient(p Policy) *http.Client {
	p.AttemptTimeout = -1
	p.MaxAttempts = 1
	return &http.Client{Transport: &Transport{Policy: p}}
}

// RetryAll marks every request retryable. Use only on edges whose
// operations are idempotent by construction.
func RetryAll(*http.Request) bool { return true }

func idempotent(req *http.Request) bool {
	switch req.Method {
	case http.MethodGet, http.MethodHead, http.MethodPut, http.MethodDelete, http.MethodOptions:
		return true
	}
	return false
}

// Breaker returns the circuit breaker guarding peer, creating it if
// needed — callers can inspect breaker state for logs and metrics.
func (t *Transport) Breaker(peer string) *Breaker {
	return t.breakerSet().For(peer)
}

// breakerSet lazily builds the per-peer breaker map so a zero-valued
// &Transport{Policy: p} literal works without a constructor.
func (t *Transport) breakerSet() *BreakerSet {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.breakers == nil {
		t.breakers = NewBreakerSet(t.Policy.withDefaults().Breaker)
	}
	return t.breakers
}

// retryableStatus reports whether a response status indicates a
// transient server-side condition worth retrying and counting against
// the breaker.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout,
		http.StatusInternalServerError:
		return true
	}
	return false
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	p := t.Policy.withDefaults()
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	br := t.Breaker(req.URL.Host)

	retryable := t.Retryable
	if retryable == nil {
		retryable = idempotent
	}
	attempts := p.MaxAttempts
	// A consumed body that cannot be rewound forces a single attempt.
	if !retryable(req) || (req.Body != nil && req.GetBody == nil) {
		attempts = 1
	}

	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-req.Context().Done():
				return nil, req.Context().Err()
			case <-time.After(p.Backoff.Delay(attempt)):
			}
			if req.GetBody != nil {
				body, err := req.GetBody()
				if err != nil {
					return nil, err
				}
				req.Body = body
			}
		}
		if err := br.Allow(); err != nil {
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, err
		}

		attemptReq := req
		cancel := context.CancelFunc(func() {})
		if p.AttemptTimeout > 0 {
			var ctx context.Context
			ctx, cancel = context.WithTimeout(req.Context(), p.AttemptTimeout)
			attemptReq = req.Clone(ctx)
		}
		resp, err := base.RoundTrip(attemptReq)
		switch {
		case err != nil:
			cancel()
			br.Record(false)
			lastErr = err
		case retryableStatus(resp.StatusCode):
			br.Record(false)
			if attempt+1 < attempts {
				// Retiring this response: release its resources.
				_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
				resp.Body.Close()
				cancel()
			} else {
				// Hand the final response to the caller; closing the
				// body releases the attempt context.
				resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
				return resp, nil
			}
		default:
			br.Record(true)
			resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
			return resp, nil
		}
	}
	return nil, lastErr
}

// cancelBody releases the per-attempt context when the response body is
// closed, so the deadline also bounds body reads without leaking a
// cancel function on the success path.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

// Close closes the wrapped body and releases the attempt context.
func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

package resilience

import (
	"net/http"
	"sync"
	"time"
)

// FaultRule is one scripted fault condition applied to a request in
// place of a FaultTransport's static configuration. The zero rule is a
// healthy link: no latency, no failures.
type FaultRule struct {
	// ErrorRate in [0,1] is the probability the request fails with
	// ErrInjected before reaching the wire (link flap).
	ErrorRate float64
	// Latency is added before any other behaviour.
	Latency time.Duration
	// Deny fails every request immediately, like a connection refused
	// from a partitioned peer.
	Deny bool
	// BlackHole hangs the request until its context expires, like a
	// wedged peer.
	BlackHole bool
}

// ScriptedFaults is a keyed table of fault rules that a chaos scenario
// mutates as it runs: partition a set of agents (Deny), flap their
// links (ErrorRate), heal them (Clear), all without racing against the
// transports' own fields. Keys are chosen by the harness — one per
// agent, or one per network segment shared by many transports.
type ScriptedFaults struct {
	mu    sync.RWMutex
	rules map[string]FaultRule
}

// NewScriptedFaults returns an empty (all links healthy) schedule.
func NewScriptedFaults() *ScriptedFaults {
	return &ScriptedFaults{rules: make(map[string]FaultRule)}
}

// Set installs the rule for key, replacing any previous one.
func (s *ScriptedFaults) Set(key string, r FaultRule) {
	s.mu.Lock()
	s.rules[key] = r
	s.mu.Unlock()
}

// Clear heals the link for key.
func (s *ScriptedFaults) Clear(key string) {
	s.mu.Lock()
	delete(s.rules, key)
	s.mu.Unlock()
}

// ClearAll heals every link.
func (s *ScriptedFaults) ClearAll() {
	s.mu.Lock()
	s.rules = make(map[string]FaultRule)
	s.mu.Unlock()
}

// RuleFor returns the rule for key, if one is installed.
func (s *ScriptedFaults) RuleFor(key string) (FaultRule, bool) {
	s.mu.RLock()
	r, ok := s.rules[key]
	s.mu.RUnlock()
	return r, ok
}

// Active returns the number of keys with a rule installed.
func (s *ScriptedFaults) Active() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.rules)
}

// Bind returns a FaultTransport.Rules hook that always consults key's
// rule, ignoring the request — the shape used when each agent has its
// own transport and the key identifies the agent.
func (s *ScriptedFaults) Bind(key string) func(*http.Request) (FaultRule, bool) {
	return func(*http.Request) (FaultRule, bool) { return s.RuleFor(key) }
}

// BindByHost returns a Rules hook keyed by the request's target host,
// for transports shared across many destinations.
func (s *ScriptedFaults) BindByHost() func(*http.Request) (FaultRule, bool) {
	return func(req *http.Request) (FaultRule, bool) { return s.RuleFor(req.URL.Host) }
}

package resilience

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
)

type okTransport struct{ calls int }

func (t *okTransport) RoundTrip(*http.Request) (*http.Response, error) {
	t.calls++
	return &http.Response{StatusCode: 200, Body: io.NopCloser(strings.NewReader("ok"))}, nil
}

func TestScriptedFaultsDenyAndHeal(t *testing.T) {
	sched := NewScriptedFaults()
	base := &okTransport{}
	ft := &FaultTransport{Base: base, Seed: 1, Rules: sched.Bind("agent-1")}
	req, _ := http.NewRequest(http.MethodGet, "http://ofmf.example/redfish/v1", nil)

	if _, err := ft.RoundTrip(req); err != nil {
		t.Fatalf("healthy link failed: %v", err)
	}
	sched.Set("agent-1", FaultRule{Deny: true})
	if _, err := ft.RoundTrip(req); !errors.Is(err, ErrInjected) {
		t.Fatalf("partitioned link err = %v, want ErrInjected", err)
	}
	if sched.Active() != 1 {
		t.Fatalf("Active = %d, want 1", sched.Active())
	}
	sched.Clear("agent-1")
	if _, err := ft.RoundTrip(req); err != nil {
		t.Fatalf("healed link failed: %v", err)
	}
	if base.calls != 2 {
		t.Fatalf("base saw %d calls, want 2 (deny must not reach the wire)", base.calls)
	}
}

func TestScriptedFaultsRuleOverridesErrorRate(t *testing.T) {
	sched := NewScriptedFaults()
	base := &okTransport{}
	// Static rate 1.0 — but an installed zero-value rule overrides it to
	// a healthy link, proving rules replace (not compose with) statics.
	ft := &FaultTransport{Base: base, Seed: 1, ErrorRate: 1, Rules: sched.Bind("a")}
	req, _ := http.NewRequest(http.MethodGet, "http://ofmf.example/", nil)
	if _, err := ft.RoundTrip(req); !errors.Is(err, ErrInjected) {
		t.Fatalf("static rate ignored without rule: %v", err)
	}
	sched.Set("a", FaultRule{})
	if _, err := ft.RoundTrip(req); err != nil {
		t.Fatalf("zero rule did not override static rate: %v", err)
	}
	sched.Set("a", FaultRule{ErrorRate: 1})
	if _, err := ft.RoundTrip(req); !errors.Is(err, ErrInjected) {
		t.Fatalf("rule rate 1.0 did not inject: %v", err)
	}
}

func TestEffectiveSeed(t *testing.T) {
	ft := &FaultTransport{Seed: 42}
	if got := ft.EffectiveSeed(); got != 42 {
		t.Fatalf("EffectiveSeed = %d, want 42", got)
	}
	unseeded := &FaultTransport{}
	if got := unseeded.EffectiveSeed(); got == 0 {
		t.Fatal("unseeded transport reported seed 0")
	}
}

package resilience

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestBackoffDelayBoundsAndCap(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 400 * time.Millisecond, Jitter: 0.5}
	if got := b.Delay(0); got != 0 {
		t.Errorf("Delay(0) = %v", got)
	}
	nominal := []time.Duration{100, 200, 400, 400, 400}
	for i, want := range nominal {
		want *= time.Millisecond
		for trial := 0; trial < 50; trial++ {
			d := b.Delay(i + 1)
			if d > want || d < want/2 {
				t.Fatalf("Delay(%d) = %v, want within [%v, %v]", i+1, d, want/2, want)
			}
		}
	}
}

func TestBackoffZeroBase(t *testing.T) {
	if d := (Backoff{}).Delay(3); d != 0 {
		t.Errorf("zero backoff Delay = %v", d)
	}
}

func TestBreakerOpensHalfOpensAndRecovers(t *testing.T) {
	now := time.Unix(1000, 0)
	br := NewBreaker(BreakerConfig{Threshold: 3, OpenFor: time.Second, HalfOpenProbes: 1})
	br.SetClock(func() time.Time { return now })

	for i := 0; i < 3; i++ {
		if err := br.Allow(); err != nil {
			t.Fatalf("closed breaker rejected attempt %d: %v", i, err)
		}
		br.Record(false)
	}
	if s := br.State(); s != StateOpen {
		t.Fatalf("state after threshold failures = %s", s)
	}
	if err := br.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker allowed a call (err=%v)", err)
	}

	// After the cool-down one probe is admitted, further calls rejected.
	now = now.Add(time.Second)
	if s := br.State(); s != StateHalfOpen {
		t.Fatalf("state after cool-down = %s", s)
	}
	if err := br.Allow(); err != nil {
		t.Fatalf("half-open breaker rejected the probe: %v", err)
	}
	if err := br.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// Probe failure re-opens; probe success closes.
	br.Record(false)
	if s := br.State(); s != StateOpen {
		t.Fatalf("state after failed probe = %s", s)
	}
	now = now.Add(time.Second)
	if err := br.Allow(); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	br.Record(true)
	if s := br.State(); s != StateClosed {
		t.Fatalf("state after successful probe = %s", s)
	}
	if err := br.Allow(); err != nil {
		t.Fatalf("closed breaker rejected: %v", err)
	}
}

func TestBreakerDisabled(t *testing.T) {
	br := NewBreaker(BreakerConfig{Threshold: -1})
	for i := 0; i < 100; i++ {
		if err := br.Allow(); err != nil {
			t.Fatal(err)
		}
		br.Record(false)
	}
}

func TestTransportRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	client := NewHTTPClient(Policy{
		MaxAttempts: 5,
		Backoff:     Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
	})
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok" {
		t.Fatalf("status=%d body=%q", resp.StatusCode, body)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3", got)
	}
}

func TestTransportDoesNotRetryNonIdempotent(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	client := NewHTTPClient(Policy{MaxAttempts: 4, Backoff: Backoff{Base: time.Millisecond}})
	resp, err := client.Post(srv.URL, "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("POST consumed %d attempts, want 1", got)
	}
}

func TestTransportRetryAllRewindsBody(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		if string(body) != `{"n":1}` {
			t.Errorf("attempt %d saw body %q", calls.Load(), body)
		}
		if calls.Add(1) < 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()

	client := &http.Client{Transport: &Transport{
		Policy:    Policy{MaxAttempts: 3, Backoff: Backoff{Base: time.Millisecond}},
		Retryable: RetryAll,
	}}
	resp, err := client.Post(srv.URL, "application/json", strings.NewReader(`{"n":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("server saw %d calls", got)
	}
}

func TestTransportAttemptTimeoutUnwedgesBlackHole(t *testing.T) {
	fault := &FaultTransport{Seed: 1}
	fault.SetBlackHole(true)
	client := &http.Client{Transport: &Transport{
		Base: fault,
		Policy: Policy{
			AttemptTimeout: 20 * time.Millisecond,
			MaxAttempts:    2,
			Backoff:        Backoff{Base: time.Millisecond},
		},
	}}
	start := time.Now()
	_, err := client.Get("http://blackhole.invalid/x")
	if err == nil {
		t.Fatal("expected error from black-holed transport")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("black-holed request took %v; per-attempt timeout not applied", elapsed)
	}
	if fault.Attempts() != 2 {
		t.Errorf("attempts = %d, want 2", fault.Attempts())
	}
}

func TestTransportBreakerFailsFast(t *testing.T) {
	fault := &FaultTransport{ErrorRate: 1, Seed: 42}
	tr := &Transport{
		Base: fault,
		Policy: Policy{
			AttemptTimeout: 50 * time.Millisecond,
			MaxAttempts:    1,
			Breaker:        BreakerConfig{Threshold: 3, OpenFor: time.Hour},
		},
	}
	client := &http.Client{Transport: tr}
	for i := 0; i < 3; i++ {
		if _, err := client.Get("http://peer.invalid/x"); err == nil {
			t.Fatal("expected injected failure")
		}
	}
	if s := tr.Breaker("peer.invalid").State(); s != StateOpen {
		t.Fatalf("breaker state = %s", s)
	}
	before := fault.Attempts()
	if _, err := client.Get("http://peer.invalid/x"); err == nil || !strings.Contains(err.Error(), "circuit open") {
		t.Fatalf("expected fail-fast circuit error, got %v", err)
	}
	if fault.Attempts() != before {
		t.Error("open breaker still let a request reach the transport")
	}
	// The breaker is per peer: a different host is unaffected.
	if err := tr.Breaker("other.invalid").Allow(); err != nil {
		t.Errorf("unrelated peer tripped: %v", err)
	}
}

func TestFaultTransportErrorRateAndCounters(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()
	fault := &FaultTransport{ErrorRate: 0.3, Seed: 7}
	client := &http.Client{Transport: fault}
	failures := 0
	const n = 500
	for i := 0; i < n; i++ {
		resp, err := client.Get(srv.URL)
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("unexpected error kind: %v", err)
			}
			failures++
			continue
		}
		resp.Body.Close()
	}
	if failures < n/5 || failures > n/2 {
		t.Errorf("injected failures = %d of %d, want ≈30%%", failures, n)
	}
	if fault.Attempts() != n || fault.Injected() != int64(failures) {
		t.Errorf("counters: attempts=%d injected=%d failures=%d", fault.Attempts(), fault.Injected(), failures)
	}
}

func TestFaultTransportLatencyRespectsContext(t *testing.T) {
	fault := &FaultTransport{Latency: time.Hour, Seed: 1}
	req, _ := http.NewRequest(http.MethodGet, "http://peer.invalid/", nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := fault.RoundTrip(req.WithContext(ctx)); err == nil {
		t.Fatal("expected context deadline error")
	}
	if time.Since(start) > time.Second {
		t.Fatal("latency injection ignored the request context")
	}
}

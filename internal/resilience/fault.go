package resilience

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the base error of failures produced by FaultTransport.
var ErrInjected = errors.New("resilience: injected fault")

// FaultTransport is an http.RoundTripper that injects faults in front
// of a real transport, so tests can drive the whole control plane —
// agents, event delivery, the CLI — through flaky and wedged network
// conditions without touching the code under test.
//
// Modes compose: each request first waits Latency, then (while
// black-holed) blocks until its context is cancelled, then fails with
// probability ErrorRate, and only then reaches Base.
type FaultTransport struct {
	// Base performs the surviving round trips (default
	// http.DefaultTransport).
	Base http.RoundTripper
	// ErrorRate in [0,1] is the probability a request fails with
	// ErrInjected before reaching the wire.
	ErrorRate float64
	// Latency is added to every request before any other behaviour.
	Latency time.Duration
	// Seed makes the fault sequence deterministic when non-zero. When
	// zero the transport seeds itself from the wall clock — fine for
	// one-off tests, but a reproducibility bug in a chaos harness, so
	// fleet mode requires an explicit seed (see EffectiveSeed).
	Seed int64
	// Rules, when set, is consulted per request; a returned rule
	// overrides ErrorRate and Latency and can deny or black-hole the
	// request. Chaos scenarios script partitions and link flap through
	// it (see ScriptedFaults) without racing on the struct fields.
	Rules func(*http.Request) (FaultRule, bool)

	blackhole atomic.Bool
	attempts  atomic.Int64
	injected  atomic.Int64

	once       sync.Once
	seededWith int64
	mu         sync.Mutex
	rng        *rand.Rand
}

// SetBlackHole toggles black-hole mode: requests hang (consuming their
// context budget) instead of failing fast, emulating a wedged server.
func (f *FaultTransport) SetBlackHole(on bool) { f.blackhole.Store(on) }

// Attempts returns the number of round trips seen, including injected
// failures.
func (f *FaultTransport) Attempts() int64 { return f.attempts.Load() }

// Injected returns the number of failures injected so far.
func (f *FaultTransport) Injected() int64 { return f.injected.Load() }

func (f *FaultTransport) seedRNG() {
	f.once.Do(func() {
		seed := f.Seed
		if seed == 0 {
			seed = time.Now().UnixNano()
		}
		f.seededWith = seed
		f.rng = rand.New(rand.NewSource(seed))
	})
}

// EffectiveSeed forces the RNG to seed now and returns the seed in
// effect — the configured Seed, or the wall-clock fallback an unseeded
// transport chose. Harnesses that must be reproducible call it up
// front, reject the fallback, and log the value alongside their run
// parameters.
func (f *FaultTransport) EffectiveSeed() int64 {
	f.seedRNG()
	return f.seededWith
}

func (f *FaultTransport) roll() float64 {
	f.seedRNG()
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Float64()
}

// RoundTrip implements http.RoundTripper.
func (f *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f.attempts.Add(1)
	errorRate, latency := f.ErrorRate, f.Latency
	hole := f.blackhole.Load()
	if f.Rules != nil {
		if rule, ok := f.Rules(req); ok {
			errorRate, latency = rule.ErrorRate, rule.Latency
			hole = hole || rule.BlackHole
			if rule.Deny {
				// A partitioned peer refuses immediately, before any
				// latency or probability roll.
				f.injected.Add(1)
				return nil, fmt.Errorf("%w: connection refused (partitioned)", ErrInjected)
			}
		}
	}
	if latency > 0 {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(latency):
		}
	}
	if hole {
		f.injected.Add(1)
		// A wedged server never answers: burn the caller's deadline.
		<-req.Context().Done()
		return nil, fmt.Errorf("%w: black hole: %v", ErrInjected, req.Context().Err())
	}
	if errorRate > 0 && f.roll() < errorRate {
		f.injected.Add(1)
		return nil, fmt.Errorf("%w: connection reset (rate %.2f)", ErrInjected, errorRate)
	}
	base := f.Base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}

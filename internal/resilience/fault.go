package resilience

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the base error of failures produced by FaultTransport.
var ErrInjected = errors.New("resilience: injected fault")

// FaultTransport is an http.RoundTripper that injects faults in front
// of a real transport, so tests can drive the whole control plane —
// agents, event delivery, the CLI — through flaky and wedged network
// conditions without touching the code under test.
//
// Modes compose: each request first waits Latency, then (while
// black-holed) blocks until its context is cancelled, then fails with
// probability ErrorRate, and only then reaches Base.
type FaultTransport struct {
	// Base performs the surviving round trips (default
	// http.DefaultTransport).
	Base http.RoundTripper
	// ErrorRate in [0,1] is the probability a request fails with
	// ErrInjected before reaching the wire.
	ErrorRate float64
	// Latency is added to every request before any other behaviour.
	Latency time.Duration
	// Seed makes the fault sequence deterministic when non-zero.
	Seed int64

	blackhole atomic.Bool
	attempts  atomic.Int64
	injected  atomic.Int64

	once sync.Once
	mu   sync.Mutex
	rng  *rand.Rand
}

// SetBlackHole toggles black-hole mode: requests hang (consuming their
// context budget) instead of failing fast, emulating a wedged server.
func (f *FaultTransport) SetBlackHole(on bool) { f.blackhole.Store(on) }

// Attempts returns the number of round trips seen, including injected
// failures.
func (f *FaultTransport) Attempts() int64 { return f.attempts.Load() }

// Injected returns the number of failures injected so far.
func (f *FaultTransport) Injected() int64 { return f.injected.Load() }

func (f *FaultTransport) roll() float64 {
	f.once.Do(func() {
		seed := f.Seed
		if seed == 0 {
			seed = time.Now().UnixNano()
		}
		f.rng = rand.New(rand.NewSource(seed))
	})
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Float64()
}

// RoundTrip implements http.RoundTripper.
func (f *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f.attempts.Add(1)
	if f.Latency > 0 {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(f.Latency):
		}
	}
	if f.blackhole.Load() {
		f.injected.Add(1)
		// A wedged server never answers: burn the caller's deadline.
		<-req.Context().Done()
		return nil, fmt.Errorf("%w: black hole: %v", ErrInjected, req.Context().Err())
	}
	if f.ErrorRate > 0 && f.roll() < f.ErrorRate {
		f.injected.Add(1)
		return nil, fmt.Errorf("%w: connection reset (rate %.2f)", ErrInjected, f.ErrorRate)
	}
	base := f.Base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}

// Package resilience hardens the OFMF↔Agent control plane against an
// imperfect network. The paper's architecture concentrates all
// composition state in one centralized manager, which makes the
// management path itself the availability bottleneck: every HTTP edge
// (agent registration and subtree publishing, heartbeats, webhook event
// delivery, forwarded fabric mutations, the operator CLI) must survive
// slow, flaky and wedged peers without silently losing work.
//
// The package provides one Policy type bundling the fault-handling
// knobs — per-attempt timeout, capped exponential backoff with jitter,
// a retry budget for idempotent operations, and a per-peer circuit
// breaker with half-open probing — plus a Transport that applies the
// policy as an http.RoundTripper, and a fault-injecting transport used
// by tests to drive the control plane through configurable error rates,
// added latency and black-hole (wedged server) conditions.
package resilience

import (
	"math/rand"
	"time"
)

// Policy bundles the fault-handling knobs for one HTTP edge. The zero
// value is usable: every field falls back to the DefaultPolicy value.
type Policy struct {
	// AttemptTimeout bounds each individual attempt, including reading
	// the response body. Zero means the default; negative means no
	// per-attempt deadline (streaming connections such as SSE).
	AttemptTimeout time.Duration
	// MaxAttempts is the retry budget: the total number of tries,
	// including the first (default 4). Only requests the Transport
	// considers retryable consume more than one attempt.
	MaxAttempts int
	// Backoff is the sleep schedule between attempts.
	Backoff Backoff
	// Breaker configures the per-peer circuit breaker.
	Breaker BreakerConfig
}

// DefaultPolicy is the control-plane default: 5s per attempt, 4 total
// tries with 50ms..2s jittered exponential backoff, and a breaker that
// opens after 5 consecutive failures for 2s.
func DefaultPolicy() Policy {
	return Policy{
		AttemptTimeout: 5 * time.Second,
		MaxAttempts:    4,
		Backoff:        Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second, Jitter: 0.5},
		Breaker:        BreakerConfig{Threshold: 5, OpenFor: 2 * time.Second, HalfOpenProbes: 1},
	}
}

// withDefaults fills zero-valued fields from DefaultPolicy.
func (p Policy) withDefaults() Policy {
	def := DefaultPolicy()
	if p.AttemptTimeout == 0 {
		p.AttemptTimeout = def.AttemptTimeout
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = def.MaxAttempts
	}
	if p.Backoff.Base <= 0 {
		p.Backoff.Base = def.Backoff.Base
	}
	if p.Backoff.Max <= 0 {
		p.Backoff.Max = def.Backoff.Max
	}
	if p.Backoff.Jitter == 0 {
		p.Backoff.Jitter = def.Backoff.Jitter
	}
	if p.Breaker.Threshold == 0 {
		p.Breaker.Threshold = def.Breaker.Threshold
	}
	if p.Breaker.OpenFor <= 0 {
		p.Breaker.OpenFor = def.Breaker.OpenFor
	}
	if p.Breaker.HalfOpenProbes <= 0 {
		p.Breaker.HalfOpenProbes = def.Breaker.HalfOpenProbes
	}
	return p
}

// Backoff computes capped exponential backoff with jitter: attempt n
// (1-based) sleeps min(Max, Base·2^(n-1)), randomized downward by up to
// the Jitter fraction so synchronized retries from many peers spread
// out instead of stampeding the recovering server.
type Backoff struct {
	// Base is the nominal delay before the first retry.
	Base time.Duration
	// Max caps the exponential growth.
	Max time.Duration
	// Jitter in (0,1] randomizes each delay into
	// [(1-Jitter)·d, d]. Zero or out-of-range values mean 0.5.
	Jitter float64
}

// Delay returns the sleep before retry attempt n (1-based). Attempts
// below 1 return 0.
func (b Backoff) Delay(attempt int) time.Duration {
	if attempt < 1 || b.Base <= 0 {
		return 0
	}
	d := b.Base
	for i := 1; i < attempt; i++ {
		d *= 2
		if b.Max > 0 && d >= b.Max {
			d = b.Max
			break
		}
	}
	if b.Max > 0 && d > b.Max {
		d = b.Max
	}
	j := b.Jitter
	if j <= 0 || j > 1 {
		j = 0.5
	}
	// Full-jitter within the top j fraction: [(1-j)·d, d].
	return time.Duration((1 - j*rand.Float64()) * float64(d))
}

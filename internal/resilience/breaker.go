package resilience

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrOpen is returned (wrapped) when a circuit breaker rejects a call
// without attempting it.
var ErrOpen = errors.New("resilience: circuit open")

// BreakerConfig tunes a circuit breaker.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that opens the
	// breaker (default 5). Negative disables the breaker entirely.
	Threshold int
	// OpenFor is how long the breaker rejects calls before allowing
	// half-open probes.
	OpenFor time.Duration
	// HalfOpenProbes bounds concurrent trial calls in the half-open
	// state; further calls are rejected until a probe settles.
	HalfOpenProbes int
}

// Breaker state values reported by State.
const (
	StateClosed   = "closed"
	StateOpen     = "open"
	StateHalfOpen = "half-open"
)

// Breaker is a per-peer circuit breaker. Consecutive failures open it;
// while open every call fails fast with ErrOpen; after OpenFor it
// admits a bounded number of probes (half-open), and a probe success
// closes it again.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu       sync.Mutex
	state    string
	failures int
	openedAt time.Time
	probes   int
}

// NewBreaker builds a breaker; zero-valued config fields take the
// DefaultPolicy values.
func NewBreaker(cfg BreakerConfig) *Breaker {
	def := DefaultPolicy().Breaker
	if cfg.Threshold == 0 {
		cfg.Threshold = def.Threshold
	}
	if cfg.OpenFor <= 0 {
		cfg.OpenFor = def.OpenFor
	}
	if cfg.HalfOpenProbes <= 0 {
		cfg.HalfOpenProbes = def.HalfOpenProbes
	}
	return &Breaker{cfg: cfg, now: time.Now, state: StateClosed}
}

// SetClock overrides the breaker's time source (tests).
func (b *Breaker) SetClock(now func() time.Time) {
	b.mu.Lock()
	b.now = now
	b.mu.Unlock()
}

// State returns the current breaker state, refreshing the open→half-open
// transition first.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refreshLocked()
	return b.state
}

func (b *Breaker) refreshLocked() {
	if b.state == StateOpen && b.now().Sub(b.openedAt) >= b.cfg.OpenFor {
		b.state = StateHalfOpen
		b.probes = 0
	}
}

// Allow reports whether a call may proceed. In the half-open state it
// reserves one probe slot; the caller must follow up with Record.
func (b *Breaker) Allow() error {
	if b.cfg.Threshold < 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refreshLocked()
	switch b.state {
	case StateOpen:
		return fmt.Errorf("%w (retry in %v)", ErrOpen, b.cfg.OpenFor-b.now().Sub(b.openedAt))
	case StateHalfOpen:
		if b.probes >= b.cfg.HalfOpenProbes {
			return fmt.Errorf("%w (probe in flight)", ErrOpen)
		}
		b.probes++
	}
	return nil
}

// Record feeds the outcome of an allowed call back into the breaker.
func (b *Breaker) Record(success bool) {
	if b.cfg.Threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateHalfOpen:
		if success {
			b.state = StateClosed
			b.failures = 0
		} else {
			b.state = StateOpen
			b.openedAt = b.now()
		}
		b.probes = 0
	default:
		if success {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.state = StateOpen
			b.openedAt = b.now()
		}
	}
}

// BreakerSet keys breakers by peer (host:port), creating them on first
// use so one flapping agent cannot trip calls to healthy ones.
type BreakerSet struct {
	cfg BreakerConfig

	mu       sync.Mutex
	breakers map[string]*Breaker
}

// NewBreakerSet builds an empty set using cfg for new breakers.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	return &BreakerSet{cfg: cfg, breakers: make(map[string]*Breaker)}
}

// For returns the breaker for peer, creating it if needed.
func (s *BreakerSet) For(peer string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	br, ok := s.breakers[peer]
	if !ok {
		br = NewBreaker(s.cfg)
		s.breakers[peer] = br
	}
	return br
}

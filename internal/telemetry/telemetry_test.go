package telemetry

import (
	"errors"
	"strconv"
	"sync"
	"testing"
	"time"

	"ofmf/internal/odata"
	"ofmf/internal/redfish"
)

const base = odata.ID("/redfish/v1/TelemetryService")

type sink struct {
	mu      sync.Mutex
	mirrors map[odata.ID]any
	events  []redfish.EventRecord
}

func newSink() *sink { return &sink{mirrors: make(map[odata.ID]any)} }

func (s *sink) mirror(id odata.ID, res any) {
	s.mu.Lock()
	s.mirrors[id] = res
	s.mu.Unlock()
}

func (s *sink) notify(rec redfish.EventRecord) {
	s.mu.Lock()
	s.events = append(s.events, rec)
	s.mu.Unlock()
}

func TestDefineMetric(t *testing.T) {
	sk := newSink()
	svc := NewService(base, sk.mirror, sk.notify)
	if err := svc.DefineMetric("FreeMemoryMiB", "Gauge", "MiB"); err != nil {
		t.Fatal(err)
	}
	if err := svc.DefineMetric("FreeMemoryMiB", "Gauge", "MiB"); !errors.Is(err, ErrDuplicate) {
		t.Errorf("dup err = %v", err)
	}
	if got := svc.Metrics(); len(got) != 1 || got[0] != "FreeMemoryMiB" {
		t.Errorf("metrics = %v", got)
	}
	if _, ok := sk.mirrors[base.Append("MetricDefinitions", "FreeMemoryMiB")]; !ok {
		t.Error("definition not mirrored")
	}
}

func TestGenerateOnRequest(t *testing.T) {
	sk := newSink()
	fixed := time.Date(2023, 5, 15, 0, 0, 0, 0, time.UTC)
	svc := NewService(base, sk.mirror, sk.notify, WithClock(func() time.Time { return fixed }))

	value := 42.5
	coll := CollectorFunc(func() []redfish.MetricValue {
		return []redfish.MetricValue{Gauge("FreeMemoryMiB", "/redfish/v1/Chassis/App/Memory", value)}
	})
	if err := svc.DefineReport("memory", 0, coll); err != nil {
		t.Fatal(err)
	}
	report, err := svc.Generate("memory")
	if err != nil {
		t.Fatal(err)
	}
	if len(report.MetricValues) != 1 {
		t.Fatalf("values = %v", report.MetricValues)
	}
	mv := report.MetricValues[0]
	if mv.MetricValue != "42.5" || mv.Timestamp != "2023-05-15T00:00:00Z" {
		t.Errorf("value = %+v", mv)
	}

	// Second generation reflects new source state (Overwrite semantics).
	value = 10
	report, err = svc.Generate("memory")
	if err != nil {
		t.Fatal(err)
	}
	if report.MetricValues[0].MetricValue != "10" {
		t.Errorf("value = %+v", report.MetricValues[0])
	}

	sk.mu.Lock()
	defer sk.mu.Unlock()
	if len(sk.events) != 2 {
		t.Errorf("events = %d", len(sk.events))
	}
	if sk.events[0].EventType != redfish.EventMetricReport {
		t.Errorf("event type = %s", sk.events[0].EventType)
	}
}

func TestGenerateUnknown(t *testing.T) {
	svc := NewService(base, nil, nil)
	if _, err := svc.Generate("ghost"); !errors.Is(err, ErrUnknownReportDef) {
		t.Errorf("err = %v", err)
	}
}

func TestDuplicateReport(t *testing.T) {
	svc := NewService(base, nil, nil)
	if err := svc.DefineReport("r", 0); err != nil {
		t.Fatal(err)
	}
	if err := svc.DefineReport("r", 0); !errors.Is(err, ErrDuplicate) {
		t.Errorf("err = %v", err)
	}
}

func TestPeriodicRun(t *testing.T) {
	sk := newSink()
	svc := NewService(base, sk.mirror, sk.notify)
	var count int64
	var mu sync.Mutex
	coll := CollectorFunc(func() []redfish.MetricValue {
		mu.Lock()
		count++
		c := count
		mu.Unlock()
		return []redfish.MetricValue{Gauge("Ticks", "", float64(c))}
	})
	if err := svc.DefineReport("ticks", 5*time.Millisecond, coll); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		svc.Run(stop)
		close(done)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		c := count
		mu.Unlock()
		if c >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic collection never ran")
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	<-done

	// The mirrored report carries the latest value.
	sk.mu.Lock()
	res, ok := sk.mirrors[base.Append("MetricReports", "ticks")]
	sk.mu.Unlock()
	if !ok {
		t.Fatal("report not mirrored")
	}
	report := res.(redfish.MetricReport)
	if _, err := strconv.ParseFloat(report.MetricValues[0].MetricValue, 64); err != nil {
		t.Errorf("value not numeric: %v", report.MetricValues[0])
	}
}

func TestMultipleCollectorsMerged(t *testing.T) {
	svc := NewService(base, nil, nil)
	c1 := CollectorFunc(func() []redfish.MetricValue { return []redfish.MetricValue{Gauge("A", "", 1)} })
	c2 := CollectorFunc(func() []redfish.MetricValue { return []redfish.MetricValue{Gauge("B", "", 2), Gauge("C", "", 3)} })
	if err := svc.DefineReport("multi", 0, c1, c2); err != nil {
		t.Fatal(err)
	}
	report, err := svc.Generate("multi")
	if err != nil {
		t.Fatal(err)
	}
	if len(report.MetricValues) != 3 {
		t.Errorf("values = %v", report.MetricValues)
	}
}

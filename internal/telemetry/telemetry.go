// Package telemetry implements the OFMF TelemetryService: metric
// definitions, report definitions, and periodic or on-request metric
// report generation from pluggable collectors. The paper positions the
// OFMF as "a subscription-based central repository for telemetry
// information"; this package produces the MetricReport resources and the
// MetricReport events subscribers receive.
package telemetry

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ofmf/internal/odata"
	"ofmf/internal/redfish"
)

// Sentinel errors.
var (
	ErrUnknownReportDef = errors.New("telemetry: unknown report definition")
	ErrDuplicate        = errors.New("telemetry: duplicate id")
)

// Collector produces current metric values for one source.
type Collector interface {
	// Collect returns the source's metric samples; MetricID and
	// MetricValue must be set, Timestamp is filled by the service.
	Collect() []redfish.MetricValue
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func() []redfish.MetricValue

// Collect calls f.
func (f CollectorFunc) Collect() []redfish.MetricValue { return f() }

// Mirror persists telemetry resources into the OFMF tree.
type Mirror func(id odata.ID, resource any)

// Notifier publishes MetricReport events.
type Notifier func(rec redfish.EventRecord)

// Service manages metric and report definitions and generates reports.
type Service struct {
	base   odata.ID // the TelemetryService URI
	mirror Mirror
	notify Notifier
	now    func() time.Time

	mu         sync.Mutex
	defs       map[string]redfish.MetricDefinition
	reportDefs map[string]*reportDef
	nextReport int
	eventSeq   int
}

type reportDef struct {
	id         string
	kind       string // Periodic, OnRequest
	interval   time.Duration
	collectors []Collector
	stop       chan struct{}
}

// Option configures the service.
type Option func(*Service)

// WithClock overrides the time source (tests).
func WithClock(now func() time.Time) Option { return func(s *Service) { s.now = now } }

// NewService creates a telemetry service rooted at base (the
// TelemetryService URI). mirror and notify may be nil.
func NewService(base odata.ID, mirror Mirror, notify Notifier, opts ...Option) *Service {
	s := &Service{
		base:       base,
		mirror:     mirror,
		notify:     notify,
		now:        time.Now,
		defs:       make(map[string]redfish.MetricDefinition),
		reportDefs: make(map[string]*reportDef),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// DefineMetric registers a metric definition and mirrors it.
func (s *Service) DefineMetric(id, metricType, units string) error {
	s.mu.Lock()
	if _, ok := s.defs[id]; ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: metric %s", ErrDuplicate, id)
	}
	uri := s.base.Append("MetricDefinitions", id)
	def := redfish.MetricDefinition{
		Resource:       odata.NewResource(uri, redfish.TypeMetricDefinition, id),
		MetricType:     metricType,
		MetricDataType: "Decimal",
		Units:          units,
	}
	s.defs[id] = def
	s.mu.Unlock()
	if s.mirror != nil {
		s.mirror(uri, def)
	}
	return nil
}

// Metrics returns the registered metric definition ids, sorted.
func (s *Service) Metrics() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.defs))
	for id := range s.defs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// DefineReport registers a report definition fed by the given collectors.
// interval > 0 makes it periodic (Run starts the ticker); interval == 0
// makes it on-request (use Generate).
func (s *Service) DefineReport(id string, interval time.Duration, collectors ...Collector) error {
	s.mu.Lock()
	if _, ok := s.reportDefs[id]; ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: report %s", ErrDuplicate, id)
	}
	kind := "OnRequest"
	if interval > 0 {
		kind = "Periodic"
	}
	rd := &reportDef{id: id, kind: kind, interval: interval, collectors: collectors}
	s.reportDefs[id] = rd
	s.mu.Unlock()

	uri := s.base.Append("MetricReportDefinitions", id)
	res := redfish.MetricReportDefinition{
		Resource:                   odata.NewResource(uri, redfish.TypeMetricReportDef, id),
		MetricReportDefinitionType: kind,
		ReportActions:              []string{"RedfishEvent", "LogToMetricReportsCollection"},
		ReportUpdates:              "Overwrite",
		Status:                     odata.StatusOK(),
	}
	if interval > 0 {
		res.Schedule = &redfish.Schedule{RecurrenceInterval: fmt.Sprintf("PT%dS", int(interval/time.Second))}
	}
	if s.mirror != nil {
		s.mirror(uri, res)
	}
	return nil
}

// Generate collects and mirrors one report for the definition, returning
// the report resource.
func (s *Service) Generate(defID string) (redfish.MetricReport, error) {
	s.mu.Lock()
	rd, ok := s.reportDefs[defID]
	if !ok {
		s.mu.Unlock()
		return redfish.MetricReport{}, fmt.Errorf("%w: %s", ErrUnknownReportDef, defID)
	}
	collectors := rd.collectors
	s.eventSeq++
	seq := s.eventSeq
	s.mu.Unlock()

	ts := redfish.Timestamp(s.now())
	var values []redfish.MetricValue
	for _, c := range collectors {
		for _, v := range c.Collect() {
			if v.Timestamp == "" {
				v.Timestamp = ts
			}
			values = append(values, v)
		}
	}
	uri := s.base.Append("MetricReports", defID)
	report := redfish.MetricReport{
		Resource:               odata.NewResource(uri, redfish.TypeMetricReport, defID),
		MetricReportDefinition: redfish.Ref(s.base.Append("MetricReportDefinitions", defID)),
		Timestamp:              ts,
		MetricValues:           values,
	}
	if s.mirror != nil {
		s.mirror(uri, report)
	}
	if s.notify != nil {
		ref := odata.NewRef(uri)
		s.notify(redfish.EventRecord{
			EventType:         redfish.EventMetricReport,
			EventID:           fmt.Sprintf("telemetry-%d", seq),
			EventTimestamp:    ts,
			Message:           fmt.Sprintf("metric report %s: %d values", defID, len(values)),
			MessageID:         "TelemetryService.1.0.MetricReportGenerated",
			OriginOfCondition: &ref,
		})
	}
	return report, nil
}

// Run starts the periodic tickers for all periodic report definitions and
// blocks until stop is closed.
func (s *Service) Run(stop <-chan struct{}) {
	s.mu.Lock()
	var periodic []*reportDef
	for _, rd := range s.reportDefs {
		if rd.interval > 0 {
			periodic = append(periodic, rd)
		}
	}
	s.mu.Unlock()

	var wg sync.WaitGroup
	for _, rd := range periodic {
		wg.Add(1)
		go func(rd *reportDef) {
			defer wg.Done()
			tick := time.NewTicker(rd.interval)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					_, _ = s.Generate(rd.id)
				}
			}
		}(rd)
	}
	wg.Wait()
}

// Gauge builds a metric value for a float sample.
func Gauge(metricID, property string, value float64) redfish.MetricValue {
	return redfish.MetricValue{
		MetricID:       metricID,
		MetricValue:    fmt.Sprintf("%g", value),
		MetricProperty: property,
	}
}

package events

import (
	"encoding/json"
	"fmt"
	"sync"

	"ofmf/internal/obsv"
	"ofmf/internal/redfish"
)

// envelope carries one publish's event record together with its lazily
// built wire encoding. The encoding is computed at most once per
// publish and shared by every subscription, webhook POST, retry attempt
// and SSE frame of that publish; the only per-subscription variation in
// the Redfish Event payload — the subscriber's Context string — is
// spliced into a copy of the shared bytes without re-marshaling the
// records, and subscriptions with no Context share the base slice
// outright.
type envelope struct {
	rec  redfish.EventRecord
	recs []redfish.EventRecord // single-element slice shared by struct-level sinks
	sc   obsv.SpanContext

	once sync.Once
	head []byte // `{"@odata.type":…,"Id":…,"Name":"OFMF Event"` — Context splices after this
	tail []byte // `,"Events":[…]}` — the marshaled records, the O(payload) part
	base []byte // head+tail: the payload for subscriptions with no Context
	err  error
}

func newEnvelope(rec redfish.EventRecord, sc obsv.SpanContext) *envelope {
	return &envelope{rec: rec, recs: []redfish.EventRecord{rec}, sc: sc}
}

// encode marshals the record list once. onEncode fires on the one
// execution that performs the marshal (the bus's Encodes statistic).
func (e *envelope) encode(onEncode func()) {
	e.once.Do(func() {
		recsJSON, err := json.Marshal(e.recs)
		if err != nil {
			e.err = fmt.Errorf("events: marshal: %w", err)
			return
		}
		if onEncode != nil {
			onEncode()
		}
		idJSON, err := json.Marshal(e.rec.EventID)
		if err != nil {
			e.err = fmt.Errorf("events: marshal id: %w", err)
			return
		}
		// Assemble head and tail as subslices of one buffer so base is
		// contiguous and Context-free deliveries share it with no copy.
		buf := make([]byte, 0, len(recsJSON)+len(idJSON)+64)
		buf = append(buf, `{"@odata.type":"`...)
		buf = append(buf, redfish.TypeEvent...)
		buf = append(buf, `","Id":`...)
		buf = append(buf, idJSON...)
		buf = append(buf, `,"Name":"OFMF Event"`...)
		headLen := len(buf)
		buf = append(buf, `,"Events":`...)
		buf = append(buf, recsJSON...)
		buf = append(buf, '}')
		e.base = buf
		e.head = buf[:headLen]
		e.tail = buf[headLen:]
	})
}

// body returns the wire payload for a subscription with the given
// Context. An empty Context returns the shared base bytes (zero copy);
// otherwise the Context member is spliced between the shared head and
// tail. Callers must treat the result as read-only.
func (e *envelope) body(subContext string, onEncode func()) ([]byte, error) {
	e.encode(onEncode)
	if e.err != nil {
		return nil, e.err
	}
	if subContext == "" {
		return e.base, nil
	}
	ctxJSON, err := json.Marshal(subContext)
	if err != nil {
		return nil, fmt.Errorf("events: marshal context: %w", err)
	}
	out := make([]byte, 0, len(e.base)+len(ctxJSON)+len(`,"Context":`))
	out = append(out, e.head...)
	out = append(out, `,"Context":`...)
	out = append(out, ctxJSON...)
	out = append(out, e.tail...)
	return out, nil
}

// event builds the struct form for in-process sinks that take a
// redfish.Event. The Events slice is shared across subscriptions; sinks
// must not mutate it.
func (e *envelope) event(subContext string) redfish.Event {
	return redfish.Event{
		ODataType: redfish.TypeEvent,
		ID:        e.rec.EventID,
		Name:      "OFMF Event",
		Context:   subContext,
		Events:    e.recs,
	}
}
